#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "timing/variant.hpp"

namespace nemfpga {
namespace {

ArchParams paper_arch() {
  ArchParams a;
  a.W = 118;
  return a;
}

TEST(Variant, BaselineViewSelfConsistent) {
  const auto v = make_view(paper_arch(), FpgaVariant::kCmosBaseline);
  EXPECT_GT(v.tile_pitch, 5e-6);
  EXPECT_LT(v.tile_pitch, 50e-6);
  EXPECT_GT(v.c_wire_segment, 1e-15);
  EXPECT_GT(v.t_wire_stage, 1e-12);
  EXPECT_TRUE(v.lb_buffers_present);
  EXPECT_TRUE(v.wire_buffer.level_restorer);
  EXPECT_GT(v.wire_buffer.input_vt_drop, 0.0);
  EXPECT_GT(v.area.routing_sram, 0.0);
  EXPECT_DOUBLE_EQ(v.area.relay_layer, 0.0);
}

TEST(Variant, BaselineSwitchIsPassTransistor) {
  const auto v = make_view(paper_arch(), FpgaVariant::kCmosBaseline);
  EXPECT_GT(v.sw.leak_per_switch, 0.0);
  EXPECT_GT(v.sw.r_on, fig11_equivalent().ron);  // worse than the relay
}

TEST(Variant, NemSwitchIsRelay) {
  const auto v = make_view(paper_arch(), FpgaVariant::kNemNaive);
  EXPECT_DOUBLE_EQ(v.sw.r_on, fig11_equivalent().ron);
  EXPECT_DOUBLE_EQ(v.sw.leak_per_switch, 0.0);  // zero off-state leakage
  EXPECT_DOUBLE_EQ(v.sw.c_off_load, fig11_equivalent().coff);
}

TEST(Variant, NaiveKeepsBuffersOptimizedRemovesThem) {
  const auto naive = make_view(paper_arch(), FpgaVariant::kNemNaive);
  EXPECT_TRUE(naive.lb_buffers_present);
  EXPECT_FALSE(naive.wire_buffer.level_restorer);  // full swing input
  const auto opt = make_view(paper_arch(), FpgaVariant::kNemOptimized);
  EXPECT_FALSE(opt.lb_buffers_present);
  EXPECT_TRUE(opt.lb_input_buffer.chain.stage_mults.empty());
  EXPECT_TRUE(opt.lb_output_buffer.chain.stage_mults.empty());
}

TEST(Variant, StackingShrinksTile) {
  const auto cmos = make_view(paper_arch(), FpgaVariant::kCmosBaseline);
  const auto naive = make_view(paper_arch(), FpgaVariant::kNemNaive);
  const auto opt = make_view(paper_arch(), FpgaVariant::kNemOptimized, 4.0);
  // Paper Sec 3.4: ~1.8x without the technique, ~2.1x with it.
  const double naive_red = cmos.area.footprint / naive.area.footprint;
  const double opt_red = cmos.area.footprint / opt.area.footprint;
  EXPECT_GT(naive_red, 1.5);
  EXPECT_LT(naive_red, 2.1);
  EXPECT_GT(opt_red, 1.9);
  EXPECT_LT(opt_red, 2.5);
  EXPECT_GT(opt_red, naive_red);
}

TEST(Variant, RelayLayerLimitsOptimizedFootprint) {
  const auto opt = make_view(paper_arch(), FpgaVariant::kNemOptimized, 4.0);
  EXPECT_GT(opt.area.relay_layer, opt.area.cmos_plane);
  EXPECT_DOUBLE_EQ(opt.area.footprint, opt.area.relay_layer);
}

TEST(Variant, NemWireStageFasterThanCmosAtFullSize) {
  const auto cmos = make_view(paper_arch(), FpgaVariant::kCmosBaseline);
  const auto nem = make_view(paper_arch(), FpgaVariant::kNemOptimized, 1.0);
  EXPECT_LT(nem.t_wire_stage, cmos.t_wire_stage);
  EXPECT_LT(nem.t_input_path, cmos.t_input_path);
  EXPECT_LT(nem.t_output_path, cmos.t_output_path);
}

class DownsizeViewSweep : public ::testing::TestWithParam<double> {};

TEST_P(DownsizeViewSweep, DownsizingTradesDelayForLeakage) {
  const double d = GetParam();
  const auto base = make_view(paper_arch(), FpgaVariant::kNemOptimized, 1.0);
  const auto down = make_view(paper_arch(), FpgaVariant::kNemOptimized, d);
  if (d > 1.0) {
    // At the same load, a downsized chain is never faster; the full stage
    // delay can wobble slightly because smaller buffers also shrink the
    // tile (and hence the wire load) through the area fixed point.
    EXPECT_GE(down.wire_buffer.delay(base.c_wire_segment),
              base.wire_buffer.delay(base.c_wire_segment) - 1e-15);
    EXPECT_LE(down.wire_buffer.leakage_power(),
              base.wire_buffer.leakage_power());
    EXPECT_LE(down.wire_buffer.area_mwta(), base.wire_buffer.area_mwta());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DownsizeViewSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

// Historical make_view silently clamped an unusable downsize to 1.0;
// the registry refactor turned the swallowed parameter into a named
// error (no silent clamping, no surprise electrical views).
TEST(Variant, DownsizeOutsideOptimizedIsRejected) {
  EXPECT_THROW(make_view(paper_arch(), FpgaVariant::kCmosBaseline, 8.0),
               std::invalid_argument);
  EXPECT_THROW(make_view(paper_arch(), FpgaVariant::kNemNaive, 8.0),
               std::invalid_argument);
  EXPECT_THROW(make_view(paper_arch(), "rram", 2.0), std::invalid_argument);
  // The error is named after the parameter and points at the backend.
  try {
    make_view(paper_arch(), FpgaVariant::kCmosBaseline, 2.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("wire_buffer_downsize"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'cmos'"), std::string::npos) << msg;
  }
  // An explicit 1.0 stays valid everywhere (it is the neutral value).
  EXPECT_NO_THROW(make_view(paper_arch(), FpgaVariant::kCmosBaseline, 1.0));
}

TEST(Variant, DownsizeOutsidePaperRangeIsRejected) {
  for (const double bad : {0.5, 0.0, -1.0, 8.5, 100.0}) {
    EXPECT_THROW(make_view(paper_arch(), FpgaVariant::kNemOptimized, bad),
                 std::invalid_argument)
        << "downsize " << bad;
  }
  EXPECT_NO_THROW(make_view(paper_arch(), FpgaVariant::kNemOptimized, 8.0));
}

TEST(Variant, LogicDelaysIndependentOfFabric) {
  const auto cmos = make_view(paper_arch(), FpgaVariant::kCmosBaseline);
  const auto nem = make_view(paper_arch(), FpgaVariant::kNemOptimized);
  EXPECT_DOUBLE_EQ(cmos.t_lut, nem.t_lut);
  EXPECT_DOUBLE_EQ(cmos.t_clk_q, nem.t_clk_q);
  EXPECT_DOUBLE_EQ(cmos.t_setup, nem.t_setup);
}

}  // namespace
}  // namespace nemfpga
