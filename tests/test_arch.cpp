#include <gtest/gtest.h>

#include "arch/arch_model.hpp"
#include "arch/rr_graph.hpp"

namespace nemfpga {
namespace {

TEST(ArchParams, Table1Defaults) {
  const ArchParams a;
  EXPECT_EQ(a.N, 10u);
  EXPECT_EQ(a.K, 4u);
  EXPECT_EQ(a.L, 4u);
  EXPECT_DOUBLE_EQ(a.fc_in, 0.2);
  EXPECT_DOUBLE_EQ(a.fc_out, 0.1);
  EXPECT_EQ(a.fs, 3u);
  EXPECT_EQ(a.lb_inputs(), 22u);   // I = K(N+1)/2
  EXPECT_EQ(a.lb_outputs(), 10u);
}

TEST(ArchParams, FcTrackCounts) {
  ArchParams a;
  a.W = 118;
  EXPECT_EQ(a.fc_in_tracks(), 24u);   // 0.2 * 118 = 23.6 -> 24
  EXPECT_EQ(a.fc_out_tracks(), 12u);  // 0.1 * 118 = 11.8 -> 12
  a.W = 2;
  EXPECT_GE(a.fc_in_tracks(), 1u);    // never zero
}

TEST(TileComposition, CountsScaleWithArch) {
  ArchParams a;
  a.W = 118;
  const auto c = tile_composition(a);
  EXPECT_EQ(c.luts, 10u);
  EXPECT_EQ(c.flip_flops, 10u);
  EXPECT_EQ(c.lut_sram_bits, 160u);                    // N * 2^K
  EXPECT_EQ(c.crossbar_switches, 40u * 32u);           // N*K muxes of I+N
  EXPECT_EQ(c.cb_switches, 22u * 24u);
  EXPECT_EQ(c.wire_buffers, 2u * 118u / 4u);           // 2W/L wire starts
  EXPECT_EQ(c.lb_input_buffers, 22u);
  EXPECT_EQ(c.lb_output_buffers, 10u);
  EXPECT_GT(c.routing_sram_bits, 0u);
  EXPECT_EQ(c.total_routing_switches(),
            c.crossbar_switches + c.cb_switches + c.sb_switches);

  ArchParams wider = a;
  wider.W = 236;
  const auto c2 = tile_composition(wider);
  EXPECT_GT(c2.cb_switches, c.cb_switches);
  EXPECT_GT(c2.sb_switches, c.sb_switches);
}

TEST(TileArea, NemStackingShrinksFootprint) {
  ArchParams a;
  a.W = 118;
  const auto comp = tile_composition(a);
  BufferAreas bufs{20.0, 25.0, 60.0};
  const auto cmos = tile_area(comp, RoutingFabric::kCmosPassTransistor, bufs);
  const auto nem = tile_area(comp, RoutingFabric::kNemRelay, bufs);
  EXPECT_GT(cmos.footprint, 0.0);
  EXPECT_DOUBLE_EQ(cmos.relay_layer, 0.0);
  EXPECT_GT(nem.relay_layer, 0.0);
  EXPECT_DOUBLE_EQ(nem.routing_switches, 0.0);
  EXPECT_DOUBLE_EQ(nem.routing_sram, 0.0);
  EXPECT_LT(nem.footprint, cmos.footprint);
  // Footprint respects both planes.
  EXPECT_GE(nem.footprint, nem.cmos_plane - 1e-18);
  EXPECT_GE(nem.footprint, nem.relay_layer - 1e-18);
  EXPECT_GT(tile_pitch(cmos), tile_pitch(nem));
}

TEST(TileArea, RemovingBuffersShrinksCmosPlane) {
  ArchParams a;
  a.W = 118;
  const auto comp = tile_composition(a);
  const auto with = tile_area(comp, RoutingFabric::kNemRelay, {20.0, 25.0, 60.0});
  const auto without = tile_area(comp, RoutingFabric::kNemRelay, {0.0, 0.0, 20.0});
  EXPECT_LT(without.cmos_plane, with.cmos_plane);
}

TEST(GridSize, FitsBlocksAndIos) {
  const ArchParams a;
  const auto [nx, ny] = grid_size_for(a, 100, 50);
  EXPECT_GE(nx * ny, 100u);
  EXPECT_GE(2 * (nx + ny) * a.io_per_pad, 50u);
  const auto [bx, by] = grid_size_for(a, 1719, 300);
  EXPECT_GE(bx * by, 1719u);
  EXPECT_EQ(bx, by);
}

class RrGraphTest : public ::testing::Test {
 protected:
  static ArchParams small_arch() {
    ArchParams a;
    a.W = 12;
    return a;
  }
  RrGraphTest() : g(small_arch(), 6, 6) {}
  RrGraph g;
};

TEST_F(RrGraphTest, GridClassification) {
  EXPECT_TRUE(g.is_lb(1, 1));
  EXPECT_TRUE(g.is_lb(6, 6));
  EXPECT_FALSE(g.is_lb(0, 3));
  EXPECT_TRUE(g.is_io(0, 3));
  EXPECT_TRUE(g.is_io(3, 7));
  EXPECT_FALSE(g.is_io(0, 0));  // corner
  EXPECT_FALSE(g.is_io(7, 7));
  EXPECT_THROW(g.site(0, 0), std::out_of_range);
}

TEST_F(RrGraphTest, SitesHaveExpectedPins) {
  // Pins are pooled: one OPIN node of capacity N, one IPIN of capacity I
  // (input pins are equivalent through the full LB crossbar).
  const auto& lb = g.site(3, 3);
  ASSERT_EQ(lb.opins.size(), 1u);
  ASSERT_EQ(lb.ipins.size(), 1u);
  EXPECT_EQ(lb.pin_count_opin, 10u);
  EXPECT_EQ(lb.pin_count_ipin, 22u);
  EXPECT_EQ(g.node(lb.opins[0]).capacity, 10u);
  EXPECT_EQ(g.node(lb.ipins[0]).capacity, 22u);
  EXPECT_EQ(g.node(lb.source).capacity, 10u);
  EXPECT_EQ(g.node(lb.sink).capacity, 22u);
  const auto& io = g.site(0, 2);
  EXPECT_EQ(io.pin_count_opin, small_arch().io_per_pad);
  EXPECT_EQ(g.node(io.opins[0]).capacity, small_arch().io_per_pad);
}

TEST_F(RrGraphTest, SourceReachesOpins) {
  const auto& lb = g.site(2, 2);
  const auto es = g.edges(lb.source);
  EXPECT_EQ(es.size(), lb.opins.size());
  for (const auto& e : es) {
    EXPECT_EQ(g.node(e.to).type, RrType::kOpin);
    EXPECT_EQ(e.sw, RrSwitch::kInternal);
  }
}

TEST_F(RrGraphTest, OpinsDriveWireStarts) {
  const auto& lb = g.site(3, 3);
  std::size_t wire_edges = 0;
  for (RrNodeId o : lb.opins) {
    for (const auto& e : g.edges(o)) {
      EXPECT_EQ(e.sw, RrSwitch::kOpinToWire);
      const RrNode& w = g.node(e.to);
      EXPECT_TRUE(w.type == RrType::kChanX || w.type == RrType::kChanY);
      ++wire_edges;
    }
  }
  EXPECT_GT(wire_edges, 0u);
}

TEST_F(RrGraphTest, IpinsFeedSinkOnly) {
  const auto& lb = g.site(4, 4);
  for (RrNodeId i : lb.ipins) {
    const auto es = g.edges(i);
    ASSERT_EQ(es.size(), 1u);
    EXPECT_EQ(es[0].to, lb.sink);
  }
  // And the sink has no out-edges.
  EXPECT_TRUE(g.edges(lb.sink).empty());
}

TEST_F(RrGraphTest, WiresHaveBoundedLengthAndFanout) {
  const auto arch = small_arch();
  std::size_t wires = 0;
  for (RrNodeId id = 0; id < g.node_count(); ++id) {
    const RrNode& n = g.node(id);
    if (n.type != RrType::kChanX && n.type != RrType::kChanY) continue;
    ++wires;
    EXPECT_GE(n.length, 1u);
    EXPECT_LE(n.length, arch.L);
    std::size_t w2w = 0;
    for (const auto& e : g.edges(id)) {
      if (e.sw == RrSwitch::kWireToWire) ++w2w;
    }
    EXPECT_LE(w2w, arch.fs);  // Fs = 3
  }
  EXPECT_EQ(wires, g.wire_count());
  EXPECT_GT(wires, 0u);
}

TEST_F(RrGraphTest, InteriorWiresGetFullFsFanout) {
  // A full-length wire ending well inside the fabric must see exactly Fs
  // switch-box targets.
  const auto arch = small_arch();
  bool found = false;
  for (RrNodeId id = 0; id < g.node_count(); ++id) {
    const RrNode& n = g.node(id);
    if (n.type != RrType::kChanX || n.length != arch.L) continue;
    const std::size_t end = n.increasing ? n.x_hi : n.x_lo;
    if (end < 2 || end > 4 || n.y_lo < 2 || n.y_lo > 4) continue;
    std::size_t w2w = 0;
    for (const auto& e : g.edges(id)) w2w += (e.sw == RrSwitch::kWireToWire);
    EXPECT_EQ(w2w, arch.fs);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RrGraphTest, TracksFullyTiled) {
  // Every (track, position) in every channel is covered by exactly one
  // wire: sum of wire lengths equals W * span * n_channels.
  const auto arch = small_arch();
  std::size_t covered = 0;
  for (RrNodeId id = 0; id < g.node_count(); ++id) {
    const RrNode& n = g.node(id);
    if (n.type == RrType::kChanX || n.type == RrType::kChanY) {
      covered += n.length;
    }
  }
  const std::size_t expect =
      arch.W * 6 * (7 + 7);  // span 6, 7 CHANX + 7 CHANY channels
  EXPECT_EQ(covered, expect);
}

TEST_F(RrGraphTest, EdgesLandInsideGraph) {
  for (RrNodeId id = 0; id < g.node_count(); ++id) {
    for (const auto& e : g.edges(id)) {
      ASSERT_LT(e.to, g.node_count());
    }
  }
  EXPECT_GT(g.edge_count(), g.node_count());
}

TEST(RrGraphSmall, RejectsBadParameters) {
  ArchParams a;
  a.W = 12;
  EXPECT_THROW(RrGraph(a, 0, 4), std::invalid_argument);
  ArchParams bad;
  bad.W = 1;
  EXPECT_THROW(RrGraph(bad, 4, 4), std::invalid_argument);
}

class RrGraphWidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RrGraphWidthSweep, NodeCountScalesWithW) {
  ArchParams a;
  a.W = GetParam();
  const RrGraph g(a, 4, 4);
  // Wires per channel ~ W/L per start position * positions.
  EXPECT_GT(g.wire_count(), a.W);
  // Connectivity sanity: a route out of every LB opin exists.
  const auto& lb = g.site(2, 2);
  bool any = false;
  for (RrNodeId o : lb.opins) any = any || !g.edges(o).empty();
  EXPECT_TRUE(any);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RrGraphWidthSweep,
                         ::testing::Values(4, 8, 20, 40, 118));

}  // namespace
}  // namespace nemfpga
