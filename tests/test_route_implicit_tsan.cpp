// ThreadSanitizer coverage for the partition-parallel route stage over
// the implicit RR backend: the region scheduler's phase 2 routes whole
// interior nets concurrently (one worker per partition) against shared
// occupancy read via the coordinate-computed graph. In a plain build
// this is a fast smoke plus the 1-vs-8-thread bit-identity contract; in
// an NF_TSAN build (cmake -DNF_TSAN=ON) it is the race check the
// partition protocol is certified against — workers may only read the
// frozen occupancy and the (stateless) implicit graph, and write their
// own partition's deferred-op log, so TSan must stay silent. Kept to
// two iterations (route + rip/classify/partition round) so the tier1
// suite stays fast even under TSan's ~10x slowdown.
#include <gtest/gtest.h>

#include "netlist/mcnc.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

TEST(RouteImplicitTsan, PartitionSchedulerIsRaceFreeAndThreadInvariant) {
  Netlist nl = generate_benchmark("tseng");
  ArchParams arch;
  arch.W = 48;
  Packing pk = pack_netlist(nl, arch);
  const auto [nx, ny] =
      grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
  PlaceOptions popt;
  popt.inner_num = 0.3;
  const Placement pl = place(nl, pk, arch, nx, ny, popt);
  const ImplicitRrGraph g(arch, pl.nx, pl.ny);

  RouteOptions opt;  // defaults: lookahead on, net_parallel on
  opt.rr_backend = RrBackend::kImplicit;
  opt.partition_parallel = true;
  opt.max_iterations = 2;  // iteration 2 runs the rip/classify/partition path
  // A net is interior only when its whole dilated window (bb + bb_margin
  // + wire reach L-1, so >= 2*(margin+3)+1 tiles wide) fits one region.
  // tseng's grid is only ~13 tiles, so the default margin/region sizes
  // would classify every net as boundary and the parallel phase would
  // never dispatch; shrink the margin and widen the regions so corner
  // nets really route concurrently here.
  opt.bb_margin = 1;
  opt.partition_size = 9;

  RoutingResult r1, r8;
  {
    ThreadPool narrow(1);
    ThreadPool::ScopedUse use(narrow);
    r1 = route_all(g, pl, opt);
  }
  {
    ThreadPool wide(8);
    ThreadPool::ScopedUse use(wide);
    r8 = route_all(g, pl, opt);
  }

  // Two iterations rarely clear congestion; what matters is that the
  // partition stage really dispatched concurrent batches...
  EXPECT_EQ(r8.iterations, 2u);
  EXPECT_GT(r8.counters.batches, 0u);
  EXPECT_GT(r8.counters.nets_routed, 0u);

  // ...and that the trees are bit-identical at any thread count (the
  // interior/boundary classification and serial replay order depend only
  // on the routing state, never on worker interleaving).
  ASSERT_EQ(r1.trees.size(), r8.trees.size());
  for (std::size_t n = 0; n < r1.trees.size(); ++n) {
    ASSERT_EQ(r1.trees[n].source, r8.trees[n].source) << "net " << n;
    ASSERT_EQ(r1.trees[n].edges, r8.trees[n].edges) << "net " << n;
    ASSERT_EQ(r1.trees[n].sinks, r8.trees[n].sinks) << "net " << n;
  }
}

}  // namespace
}  // namespace nemfpga
