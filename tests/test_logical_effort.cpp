#include <gtest/gtest.h>

#include <cmath>

#include "circuit/buffer.hpp"
#include "circuit/logical_effort.hpp"

namespace nemfpga {
namespace {

CmosTech tech() { return CmosTech{}; }

TEST(LogicalEffort, FirstStageIsMinimum) {
  const auto chain = design_optimal_chain(tech(), 100e-15);
  ASSERT_FALSE(chain.stage_mults.empty());
  EXPECT_DOUBLE_EQ(chain.stage_mults.front(), 1.0);
}

TEST(LogicalEffort, StagesGrowGeometrically) {
  const auto chain = design_optimal_chain(tech(), 100e-15);
  ASSERT_GE(chain.stages(), 2u);
  const double f = chain.stage_mults[1] / chain.stage_mults[0];
  EXPECT_GT(f, 1.5);
  for (std::size_t i = 1; i < chain.stages(); ++i) {
    EXPECT_NEAR(chain.stage_mults[i] / chain.stage_mults[i - 1], f, 1e-9);
  }
}

TEST(LogicalEffort, OptimalFanoutNearFour) {
  // Textbook result [Weste 10]: delay-optimal stage effort ~3.6–4 with
  // self-loading included.
  const auto chain = design_optimal_chain(tech(), 1000e-15, 12);
  ASSERT_GE(chain.stages(), 2u);
  const double f = chain.stage_mults[1] / chain.stage_mults[0];
  EXPECT_GT(f, 2.5);
  EXPECT_LT(f, 6.0);
}

TEST(LogicalEffort, BiggerLoadNeedsMoreStages) {
  const auto small = design_optimal_chain(tech(), 5e-15);
  const auto big = design_optimal_chain(tech(), 2000e-15);
  EXPECT_GE(big.stages(), small.stages());
  EXPECT_GT(big.stages(), 1u);
}

TEST(LogicalEffort, OptimalBeatsNeighbors) {
  // The chosen stage count must beat one-more / one-fewer stage designs.
  const double c_load = 300e-15;
  const auto best = design_optimal_chain(tech(), c_load, 10);
  const double d_best = best.delay(c_load);
  const std::size_t n = best.stages();
  for (std::size_t alt : {n - 1, n + 1}) {
    if (alt == 0 || alt == n || alt > 10) continue;
    InverterChain cand;
    cand.tech = tech();
    const double h = c_load / tech().min_inverter_input_cap();
    const double f = std::pow(h, 1.0 / static_cast<double>(alt));
    double m = 1.0;
    for (std::size_t i = 0; i < alt; ++i) {
      cand.stage_mults.push_back(m);
      m *= f;
    }
    EXPECT_LE(d_best, cand.delay(c_load) + 1e-18);
  }
}

TEST(LogicalEffort, DelayMonotoneInLoad) {
  const auto chain = design_optimal_chain(tech(), 100e-15);
  EXPECT_LT(chain.delay(50e-15), chain.delay(100e-15));
  EXPECT_LT(chain.delay(100e-15), chain.delay(400e-15));
}

TEST(LogicalEffort, EnergyAndLeakageScaleWithChainSize) {
  const auto small = design_optimal_chain(tech(), 10e-15);
  const auto big = design_optimal_chain(tech(), 1000e-15);
  EXPECT_GT(big.switching_energy(1000e-15), small.switching_energy(10e-15));
  EXPECT_GT(big.leakage_power(), small.leakage_power());
  EXPECT_GT(big.area_mwta(), small.area_mwta());
}

TEST(LogicalEffort, InvalidArguments) {
  EXPECT_THROW(design_optimal_chain(tech(), 0.0), std::invalid_argument);
  EXPECT_THROW(design_optimal_chain(tech(), -1e-15), std::invalid_argument);
  EXPECT_THROW(design_optimal_chain(tech(), 1e-15, 0), std::invalid_argument);
  EXPECT_THROW(design_downsized_chain(tech(), 1e-15, 0.5),
               std::invalid_argument);
}

// The paper's downsizing sweep: pretend loads 1x..8x smaller. Downsized
// chains must trade monotonically: never faster, never more power-hungry
// than the previous size.
class DownsizeSweep : public ::testing::TestWithParam<double> {};

TEST_P(DownsizeSweep, TradesDelayForPower) {
  const double d = GetParam();
  const double c_load = 200e-15;  // a segment wire load
  const auto full = design_optimal_chain(tech(), c_load);
  const auto down = design_downsized_chain(tech(), c_load, d);
  // Evaluated at the REAL load:
  EXPECT_GE(down.delay(c_load), full.delay(c_load) - 1e-18);
  EXPECT_LE(down.leakage_power(), full.leakage_power() + 1e-18);
  EXPECT_LE(down.switching_energy(c_load),
            full.switching_energy(c_load) + 1e-30);
  EXPECT_LE(down.area_mwta(), full.area_mwta() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DownsizeSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

TEST(RoutingBuffer, CmosBufferCarriesRestorerOverheads) {
  const Tech22nm t = default_tech22();
  const double c_load = 150e-15;
  const auto cmos = make_cmos_routing_buffer(t, c_load);
  const auto nem = make_nem_wire_buffer(t, c_load);
  EXPECT_TRUE(cmos.level_restorer);
  EXPECT_FALSE(nem.level_restorer);
  EXPECT_GT(cmos.input_vt_drop, 0.0);
  EXPECT_DOUBLE_EQ(nem.input_vt_drop, 0.0);
  // Same load, same chain design — but the CMOS one pays for the keeper and
  // the slow degraded edge.
  EXPECT_GT(cmos.delay(c_load), nem.delay(c_load));
  EXPECT_GT(cmos.leakage_power(), nem.leakage_power());
  EXPECT_GT(cmos.switching_energy(c_load), nem.switching_energy(c_load));
  EXPECT_GT(cmos.area_mwta(), nem.area_mwta());
}

TEST(RoutingBuffer, UnrestoredDegradedInputLeaksBadly) {
  // Why restorers exist: strip the keeper but keep the degraded input and
  // leakage explodes.
  const Tech22nm t = default_tech22();
  auto buf = make_cmos_routing_buffer(t, 100e-15);
  const double restored = buf.leakage_power();
  buf.level_restorer = false;  // degraded input now unrestored
  EXPECT_GT(buf.leakage_power(), 10.0 * restored);
}

TEST(RoutingBuffer, DownsizedNemBufferSweep) {
  const Tech22nm t = default_tech22();
  const double c_load = 200e-15;
  double prev_delay = 0.0;
  double prev_leak = 1e9;
  for (double d : {1.0, 2.0, 4.0, 8.0}) {
    const auto buf = make_nem_wire_buffer(t, c_load, d);
    EXPECT_GE(buf.delay(c_load), prev_delay);
    EXPECT_LE(buf.leakage_power(), prev_leak);
    prev_delay = buf.delay(c_load);
    prev_leak = buf.leakage_power();
  }
  EXPECT_THROW(make_nem_wire_buffer(t, c_load, 0.9), std::invalid_argument);
}

TEST(RoutingBuffer, InputCapTracksFirstStage) {
  const Tech22nm t = default_tech22();
  const auto buf = make_nem_wire_buffer(t, 100e-15);
  EXPECT_DOUBLE_EQ(buf.input_cap(), buf.chain.input_cap());
  EXPECT_GT(buf.input_cap(), 0.0);
}

}  // namespace
}  // namespace nemfpga
