#include <gtest/gtest.h>

#include "device/thermal.hpp"

namespace nemfpga {
namespace {

TEST(Thermal, LeakageUnityAtReference) {
  const ThermalModel m;
  EXPECT_NEAR(cmos_leakage_multiplier(m, m.t_ref_c), 1.0, 1e-12);
}

TEST(Thermal, LeakageDoublesPerSlope) {
  const ThermalModel m;
  EXPECT_NEAR(cmos_leakage_multiplier(m, m.t_ref_c + m.leak_doubling_c), 2.0,
              1e-9);
  EXPECT_NEAR(cmos_leakage_multiplier(m, m.t_ref_c + 3 * m.leak_doubling_c),
              8.0, 1e-6);
  // Cold operation reduces leakage.
  EXPECT_LT(cmos_leakage_multiplier(m, -40.0), 1.0);
}

TEST(Thermal, HotCmosLeaksOrdersOfMagnitudeMore) {
  const ThermalModel m;
  // At the 125 C silicon limit: tens of times the 25 C leakage.
  EXPECT_GT(cmos_leakage_multiplier(m, m.cmos_max_c), 20.0);
}

TEST(Thermal, RelayVpiDriftIsMild) {
  const ThermalModel m;
  const RelayDesign d = scaled_relay_22nm();
  // Across the full industrial range the drift stays within ~1%.
  EXPECT_LT(std::abs(relay_vpi_drift(d, m, 125.0)), 0.01);
  EXPECT_LT(std::abs(relay_vpi_drift(d, m, -40.0)), 0.01);
  // Even at 500 C ([Wang 11] territory) the shift is a few percent and
  // the hysteresis window survives.
  const double drift500 = relay_vpi_drift(d, m, 500.0);
  EXPECT_LT(std::abs(drift500), 0.05);
  const RelayDesign hot = relay_at_temperature(d, m, 500.0);
  EXPECT_GT(hot.hysteresis_window(), 0.0);
  EXPECT_LT(hot.pull_out_voltage(), hot.pull_in_voltage());
}

TEST(Thermal, SofteningLowersVpi) {
  const ThermalModel m;
  const RelayDesign d = fabricated_relay();
  // Higher T -> softer beam -> lower Vpi (negative drift).
  EXPECT_LT(relay_vpi_drift(d, m, 200.0), 0.0);
  EXPECT_GT(relay_vpi_drift(d, m, -40.0), 0.0);
}

TEST(Thermal, MaterialLimitGuard) {
  ThermalModel m;
  m.youngs_tc = -1e-3;  // exaggerated softening
  EXPECT_THROW(relay_at_temperature(fabricated_relay(), m, 1200.0),
               std::invalid_argument);
}

class ThermalSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThermalSweep, WindowStaysOrderedAcrossTemperature) {
  const double t_c = GetParam();
  const ThermalModel m;
  const RelayDesign hot =
      relay_at_temperature(scaled_relay_22nm(), m, t_c);
  EXPECT_GT(hot.pull_in_voltage(), hot.pull_out_voltage());
  EXPECT_GT(hot.pull_out_voltage(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Temps, ThermalSweep,
                         ::testing::Values(-40.0, 25.0, 125.0, 300.0, 500.0));

}  // namespace
}  // namespace nemfpga
