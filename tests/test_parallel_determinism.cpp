// The hard requirement of the parallel execution layer: every
// Monte-Carlo / CAD result in this codebase must be bit-identical at any
// NF_THREADS setting, because EXPERIMENTS.md records exact numbers. Each
// test below runs the same workload through a 1-thread pool and a
// heavily oversubscribed 8-thread pool and compares results exactly.
#include <gtest/gtest.h>

#include "core/study.hpp"
#include "device/variation.hpp"
#include "netlist/synth_gen.hpp"
#include "program/yield.hpp"
#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

TEST(ParallelDeterminism, ProgrammingYieldBitIdenticalAcrossThreadCounts) {
  ThreadPool serial(1), wide(8);
  VariationSpec spec = fabricated_variation();
  spec.sigma_thickness_rel *= 1.5;

  YieldResult r1, r8;
  {
    ThreadPool::ScopedUse use(serial);
    Rng rng(123);
    r1 = programming_yield(fabricated_relay(), spec, 8, 8, 64, rng,
                           VoltagePolicy::kPerArrayCalibrated);
  }
  {
    ThreadPool::ScopedUse use(wide);
    Rng rng(123);
    r8 = programming_yield(fabricated_relay(), spec, 8, 8, 64, rng,
                           VoltagePolicy::kPerArrayCalibrated);
  }
  EXPECT_EQ(r1.trials, r8.trials);
  EXPECT_EQ(r1.good_arrays, r8.good_arrays);
  EXPECT_DOUBLE_EQ(r1.mean_worst_margin, r8.mean_worst_margin);
}

TEST(ParallelDeterminism, SamplePopulationParallelBitIdentical) {
  ThreadPool serial(1), wide(8);
  std::vector<RelaySample> p1, p8;
  {
    ThreadPool::ScopedUse use(serial);
    Rng rng(7);
    p1 = sample_population_parallel(fabricated_relay(),
                                    fabricated_variation(), 500, rng);
  }
  {
    ThreadPool::ScopedUse use(wide);
    Rng rng(7);
    p8 = sample_population_parallel(fabricated_relay(),
                                    fabricated_variation(), 500, rng);
  }
  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1[i].vpi, p8[i].vpi) << "relay " << i;
    EXPECT_DOUBLE_EQ(p1[i].vpo, p8[i].vpo) << "relay " << i;
  }
}

TEST(ParallelDeterminism, SamplePopulationParallelAdvancesParentOnce) {
  // The fork point must consume exactly one draw so downstream use of the
  // parent generator stays reproducible.
  Rng a(5), b(5);
  (void)sample_population_parallel(fabricated_relay(), fabricated_variation(),
                                   50, a);
  (void)b.next_u64();
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

const FlowResult& shared_flow() {
  static const FlowResult flow = [] {
    SynthSpec spec;
    spec.name = "par-det";
    spec.n_luts = 200;
    spec.n_inputs = 16;
    spec.n_outputs = 12;
    spec.n_latches = 40;
    FlowOptions opt;
    opt.arch.W = 64;
    return run_flow(generate_netlist(spec), opt);
  }();
  return flow;
}

TEST(ParallelDeterminism, RunStudyBitIdenticalAcrossThreadCounts) {
  ThreadPool serial(1), wide(8);
  const auto& flow = shared_flow();

  StudyResult s1, s8;
  {
    ThreadPool::ScopedUse use(serial);
    s1 = run_study(flow);
  }
  {
    ThreadPool::ScopedUse use(wide);
    s8 = run_study(flow);
  }
  ASSERT_EQ(s1.sweep.size(), s8.sweep.size());
  EXPECT_DOUBLE_EQ(s1.baseline.critical_path, s8.baseline.critical_path);
  EXPECT_DOUBLE_EQ(s1.naive.metrics.critical_path,
                   s8.naive.metrics.critical_path);
  EXPECT_DOUBLE_EQ(s1.naive.metrics.dynamic_power,
                   s8.naive.metrics.dynamic_power);
  for (std::size_t i = 0; i < s1.sweep.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.sweep[i].metrics.critical_path,
                     s8.sweep[i].metrics.critical_path);
    EXPECT_DOUBLE_EQ(s1.sweep[i].metrics.dynamic_power,
                     s8.sweep[i].metrics.dynamic_power);
    EXPECT_DOUBLE_EQ(s1.sweep[i].metrics.leakage_power,
                     s8.sweep[i].metrics.leakage_power);
    EXPECT_DOUBLE_EQ(s1.sweep[i].metrics.area, s8.sweep[i].metrics.area);
  }
  EXPECT_DOUBLE_EQ(s1.preferred.downsize, s8.preferred.downsize);
}

TEST(ParallelDeterminism, ChannelWidthIdenticalAcrossThreadCounts) {
  // The probe schedule is a fixed 4-way speculation, so Wmin must not
  // depend on how many threads execute the probes.
  ThreadPool serial(1), wide(8);
  const auto& flow = shared_flow();

  ChannelWidthResult w1, w8;
  {
    ThreadPool::ScopedUse use(serial);
    w1 = find_min_channel_width(flow.arch, flow.placement, 32);
  }
  {
    ThreadPool::ScopedUse use(wide);
    w8 = find_min_channel_width(flow.arch, flow.placement, 32);
  }
  EXPECT_EQ(w1.w_min, w8.w_min);
  EXPECT_EQ(w1.w_low_stress, w8.w_low_stress);
  EXPECT_GT(w1.w_min, 0u);
}

}  // namespace
}  // namespace nemfpga
