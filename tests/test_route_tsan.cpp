// ThreadSanitizer coverage for the net-parallel route stage: one
// PathFinder iteration with batched speculative routing on a wide pool.
// In a plain build this is a fast smoke of the batch scheduler; in an
// NF_TSAN build (cmake -DNF_TSAN=ON) it is the race check the
// deterministic-parallelism design is certified against — workers must
// only read the frozen shared state and write their own scratch arena,
// so TSan must stay silent. Kept to a single iteration so the tier1
// suite stays fast even under TSan's ~10x slowdown.
#include <gtest/gtest.h>

#include "netlist/mcnc.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

TEST(RouteTsan, OneParallelIterationIsRaceFree) {
  Netlist nl = generate_benchmark("tseng");
  ArchParams arch;
  arch.W = 48;
  Packing pk = pack_netlist(nl, arch);
  const auto [nx, ny] =
      grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
  PlaceOptions popt;
  popt.inner_num = 0.3;
  const Placement pl = place(nl, pk, arch, nx, ny, popt);
  const RrGraph g(arch, pl.nx, pl.ny);

  ThreadPool wide(8);
  ThreadPool::ScopedUse use(wide);

  RouteOptions opt;  // defaults: lookahead on, net_parallel on
  opt.max_iterations = 1;
  const RoutingResult r = route_all(g, pl, opt);

  // One iteration rarely clears congestion; what matters here is that
  // the batched route stage really ran concurrent members.
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_GT(r.counters.batches, 0u);
  EXPECT_GT(r.counters.nets_routed, 0u);
}

}  // namespace
}  // namespace nemfpga
