#include <gtest/gtest.h>

#include <cmath>

#include "program/waveform.hpp"
#include "program/yield.hpp"

namespace nemfpga {
namespace {

CrossbarExperimentConfig fast_config() {
  // Shrink the durations for unit-test speed (dynamics are quasi-static
  // relative to the electrical time constants anyway).
  CrossbarExperimentConfig cfg;
  cfg.slot_duration = 0.5e-3;
  cfg.test_duration = 2e-3;
  cfg.reset_duration = 1e-3;
  cfg.dt = 2e-6;
  return cfg;
}

TEST(CrossbarExperiment, SingleRelayConfiguration) {
  CrossbarPattern target(2, 2);
  target.set(0, 0, true);
  const auto res = run_crossbar_experiment(target, fast_config());
  EXPECT_TRUE(res.programmed_correctly) << "programming failed";
  EXPECT_TRUE(res.test_passed) << "drain waveforms wrong";
  EXPECT_TRUE(res.reset_verified) << "drains not quiet after reset";
  EXPECT_TRUE(res.pass);
}

TEST(CrossbarExperiment, ClosedRelayPassesPulseOpenBlocksIt) {
  CrossbarPattern target(2, 2);
  target.set(0, 1, true);  // beam1 -> drain0 only
  const auto cfg = fast_config();
  const auto res = run_crossbar_experiment(target, cfg);
  ASSERT_TRUE(res.pass);
  // Drain0 checks see the scope-divided beam amplitude; drain1 stays ~0.
  const double divider = cfg.scope_r / (cfg.scope_r + cfg.relay_ron);
  bool drain0_active = false;
  for (const auto& chk : res.test_checks) {
    if (chk.drain == 0 && std::fabs(chk.expected) > 0.1) {
      EXPECT_NEAR(std::fabs(chk.expected), cfg.pulse_amplitude * divider,
                  0.05);
      drain0_active = true;
    }
    if (chk.drain == 1) {
      EXPECT_NEAR(chk.expected, 0.0, 1e-9);
    }
  }
  EXPECT_TRUE(drain0_active);
}

TEST(CrossbarExperiment, AllSixteenConfigurationsPass) {
  // Fig 5: "all configurations exhaustively verified".
  const auto cfg = fast_config();
  for (const auto& target : CrossbarPattern::all_patterns(2, 2)) {
    const auto res = run_crossbar_experiment(target, cfg);
    EXPECT_TRUE(res.pass) << "failed configuration";
  }
}

TEST(CrossbarExperiment, OpposedPulsesCancelOnSharedDrain) {
  // Both relays on drain0 closed: the 180°-shifted beams fight through
  // equal Ron and the drain sits near 0 — the quasi-static check must
  // predict and confirm this.
  CrossbarPattern target(2, 2);
  target.set(0, 0, true);
  target.set(0, 1, true);
  const auto res = run_crossbar_experiment(target, fast_config());
  ASSERT_TRUE(res.pass);
  for (const auto& chk : res.test_checks) {
    if (chk.drain == 0) {
      EXPECT_NEAR(chk.expected, 0.0, 1e-6);
    }
  }
}

TEST(CrossbarExperiment, WaveformsCoverAllPhases) {
  CrossbarPattern target(2, 2);
  target.set(1, 0, true);
  const auto cfg = fast_config();
  const auto res = run_crossbar_experiment(target, cfg);
  ASSERT_FALSE(res.waveforms.empty());
  const double t_total = cfg.slot_duration * 3 + cfg.test_duration +
                         cfg.reset_duration;
  EXPECT_NEAR(res.waveforms.back().time, t_total, 1e-4);
  EXPECT_EQ(res.beam_nodes.size(), 2u);
  EXPECT_EQ(res.gate_nodes.size(), 2u);
  EXPECT_EQ(res.drain_nodes.size(), 2u);
}

TEST(CrossbarExperiment, GateWaveformHitsProgrammingLevels) {
  CrossbarPattern target(2, 2);
  target.set(0, 0, true);
  const auto cfg = fast_config();
  const auto res = run_crossbar_experiment(target, cfg);
  double g0_max = 0.0;
  for (const auto& p : res.waveforms) {
    g0_max = std::max(g0_max, p.v[res.gate_nodes[0]]);
  }
  EXPECT_NEAR(g0_max, cfg.voltages.vhold + cfg.voltages.vselect, 0.05);
}

TEST(CrossbarExperiment, RelayCountMismatchThrows) {
  CrossbarPattern target(2, 2);
  std::vector<RelaySample> wrong(3);
  EXPECT_THROW(run_crossbar_experiment(target, wrong, fast_config()),
               std::invalid_argument);
}

TEST(Yield, PerfectAtZeroVariation) {
  Rng rng(1);
  const VariationSpec none{};
  const auto res =
      programming_yield(fabricated_relay(), none, 4, 4, 20, rng,
                        VoltagePolicy::kFixedNominal);
  EXPECT_EQ(res.trials, 20u);
  EXPECT_DOUBLE_EQ(res.yield(), 1.0);
  EXPECT_GT(res.mean_worst_margin, 0.0);
}

TEST(Yield, CalibratedBeatsFixedUnderVariation) {
  Rng rng1(2), rng2(2);
  VariationSpec spec = fabricated_variation();
  spec.sigma_thickness_rel *= 2.0;  // stress it
  spec.sigma_gap_rel *= 2.0;
  const auto fixed = programming_yield(fabricated_relay(), spec, 8, 8, 60,
                                       rng1, VoltagePolicy::kFixedNominal);
  const auto cal =
      programming_yield(fabricated_relay(), spec, 8, 8, 60, rng2,
                        VoltagePolicy::kPerArrayCalibrated);
  EXPECT_GE(cal.yield(), fixed.yield());
}

TEST(Yield, DropsWithArraySize) {
  VariationSpec spec = fabricated_variation();
  spec.sigma_thickness_rel *= 2.5;
  spec.sigma_gap_rel *= 2.5;
  Rng rng_small(3), rng_big(3);
  const auto small = programming_yield(fabricated_relay(), spec, 2, 2, 80,
                                       rng_small, VoltagePolicy::kPerArrayCalibrated);
  const auto big = programming_yield(fabricated_relay(), spec, 16, 16, 80,
                                     rng_big, VoltagePolicy::kPerArrayCalibrated);
  EXPECT_GE(small.yield(), big.yield());
  EXPECT_LT(big.yield(), 1.0);
}

TEST(Yield, ZeroTrials) {
  Rng rng(4);
  const auto res = programming_yield(fabricated_relay(), {}, 2, 2, 0, rng,
                                     VoltagePolicy::kFixedNominal);
  EXPECT_DOUBLE_EQ(res.yield(), 0.0);
}


class CrossbarSizeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(CrossbarSizeSweep, LargerArraysProgramAndTestCorrectly) {
  // The Fig 5 experiment generalizes beyond 2x2: half-select programming
  // plus the electrical test phase must hold at any array size (the paper
  // argues feasibility up to millions of switches).
  const auto [rows, cols] = GetParam();
  CrossbarPattern target(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      target.set(r, c, (r * cols + c) % 3 == 0);
    }
  }
  auto cfg = fast_config();
  cfg.slot_duration = 0.4e-3;  // one slot per row: keep runtime bounded
  const auto res = run_crossbar_experiment(target, cfg);
  EXPECT_TRUE(res.programmed_correctly);
  EXPECT_TRUE(res.test_passed);
  EXPECT_TRUE(res.reset_verified);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossbarSizeSweep,
                         ::testing::Values(std::make_pair(3u, 3u),
                                           std::make_pair(4u, 4u),
                                           std::make_pair(2u, 4u),
                                           std::make_pair(4u, 2u)));

TEST(CrossbarExperiment, VariedRelaysStillPass) {
  // Per-device variation within the calibrated spread must not break the
  // paper's programming voltages on a nominal-size crossbar.
  Rng rng(77);
  const auto pop =
      sample_population(fabricated_relay(), fabricated_variation(), 4, rng);
  CrossbarPattern target(2, 2);
  target.set(0, 1, true);
  target.set(1, 0, true);
  const auto res = run_crossbar_experiment(target, pop, fast_config());
  EXPECT_TRUE(res.programmed_correctly);
  EXPECT_TRUE(res.test_passed);
}

}  // namespace
}  // namespace nemfpga
