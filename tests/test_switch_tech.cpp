// Unit coverage for the switch-technology backend registry
// (device/switch_tech.hpp): name lookup, legacy alias resolution, the
// unknown-name error contract (must list the registered choices), the
// policy bundles each built-in backend advertises, and runtime
// registration of an experimental backend.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "device/switch_tech.hpp"
#include "timing/variant.hpp"

namespace nemfpga {
namespace {

TEST(SwitchTech, FourBackendsRegisteredInOrder) {
  const auto names = registered_switch_technologies();
  ASSERT_GE(names.size(), 4u);
  EXPECT_EQ(names[0], "cmos");
  EXPECT_EQ(names[1], "nem-naive");
  EXPECT_EQ(names[2], "nem-opt");
  EXPECT_EQ(names[3], "rram");
  for (std::string_view n : names) {
    EXPECT_TRUE(switch_technology_registered(n)) << n;
    EXPECT_EQ(switch_technology(n).name(), n);
  }
}

TEST(SwitchTech, LegacyAliasesResolveToCanonicalBackends) {
  EXPECT_EQ(switch_technology("nem").name(), "nem-naive");
  EXPECT_EQ(switch_technology("nem_naive").name(), "nem-naive");
  EXPECT_EQ(switch_technology("nem_opt").name(), "nem-opt");
  EXPECT_EQ(switch_technology("nem-optimized").name(), "nem-opt");
  EXPECT_TRUE(switch_technology_registered("nem_opt"));
}

TEST(SwitchTech, UnknownNameErrorListsRegisteredChoices) {
  EXPECT_FALSE(switch_technology_registered("finfet"));
  try {
    (void)switch_technology("finfet");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'finfet'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cmos"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nem-naive"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nem-opt"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rram"), std::string::npos) << msg;
  }
}

TEST(SwitchTech, EnumAliasesAgreeWithRegistry) {
  EXPECT_EQ(variant_backend_name(FpgaVariant::kCmosBaseline), "cmos");
  EXPECT_EQ(variant_backend_name(FpgaVariant::kNemNaive), "nem-naive");
  EXPECT_EQ(variant_backend_name(FpgaVariant::kNemOptimized), "nem-opt");
}

TEST(SwitchTech, PoliciesMatchTheLegacyBranches) {
  const auto& cmos = switch_technology("cmos");
  EXPECT_DOUBLE_EQ(cmos.area_policy().switch_mwta_factor, 1.0);
  EXPECT_TRUE(cmos.area_policy().config_bits_in_plane);
  EXPECT_DOUBLE_EQ(cmos.area_policy().stacked_cell_area, 0.0);
  EXPECT_TRUE(cmos.buffer_policy().lb_buffers_present);
  EXPECT_FALSE(cmos.buffer_policy().full_swing);
  EXPECT_FALSE(cmos.buffer_policy().supports_wire_downsize);

  const auto& naive = switch_technology("nem-naive");
  EXPECT_DOUBLE_EQ(naive.area_policy().switch_mwta_factor, 0.0);
  EXPECT_FALSE(naive.area_policy().config_bits_in_plane);
  EXPECT_GT(naive.area_policy().stacked_cell_area, 0.0);
  EXPECT_TRUE(naive.buffer_policy().lb_buffers_present);
  EXPECT_TRUE(naive.buffer_policy().full_swing);
  EXPECT_FALSE(naive.buffer_policy().supports_wire_downsize);

  const auto& opt = switch_technology("nem-opt");
  EXPECT_FALSE(opt.buffer_policy().lb_buffers_present);
  EXPECT_TRUE(opt.buffer_policy().supports_wire_downsize);
  // Same relay, same stacked layer as naive.
  EXPECT_DOUBLE_EQ(opt.area_policy().stacked_cell_area,
                   naive.area_policy().stacked_cell_area);
}

TEST(SwitchTech, ElectricalFiguresComeFromTheDeviceModels) {
  const Tech22nm tech;
  const RelayEquivalent relay = fig11_equivalent();
  const auto cmos = switch_technology("cmos").electrical(tech, relay);
  const auto nem = switch_technology("nem-naive").electrical(tech, relay);
  EXPECT_GT(cmos.r_on, nem.r_on);  // pass gate worse than the relay
  EXPECT_DOUBLE_EQ(nem.r_on, relay.ron);
  EXPECT_DOUBLE_EQ(nem.leak_per_switch, 0.0);
  EXPECT_GT(cmos.leak_per_switch, 0.0);
  // SRAM bits leak for cmos; mechanical state does not.
  EXPECT_GT(switch_technology("cmos").config_leak_per_bit(tech), 0.0);
  EXPECT_DOUBLE_EQ(switch_technology("nem-opt").config_leak_per_bit(tech),
                   0.0);
}

TEST(SwitchTech, RramSitsBetweenCmosAndNem) {
  const Tech22nm tech;
  const RelayEquivalent relay = fig11_equivalent();
  const auto& rram = switch_technology("rram");
  const auto el = rram.electrical(tech, relay);
  const auto cmos = switch_technology("cmos").electrical(tech, relay);
  // LRS is in the pass-gate resistance class (same order of magnitude,
  // far above the relay's contact resistance); HRS sneak leakage is
  // finite but well under a pass transistor plus its SRAM cell.
  EXPECT_GT(el.r_on, relay.ron);
  EXPECT_LT(el.r_on, 2.0 * cmos.r_on);
  EXPECT_GT(el.leak_per_switch, 0.0);
  EXPECT_DOUBLE_EQ(rram.config_leak_per_bit(tech), 0.0);  // nonvolatile
  // 4T1R: programming transistors stay in the plane, cell stacks above.
  EXPECT_GT(rram.area_policy().switch_mwta_factor, 1.0);
  EXPECT_FALSE(rram.area_policy().config_bits_in_plane);
  EXPECT_GT(rram.area_policy().stacked_cell_area, 0.0);
  EXPECT_TRUE(rram.buffer_policy().full_swing);
}

// A minimal experimental backend to exercise runtime registration.
class TestOnlyTech final : public SwitchTechnology {
 public:
  explicit TestOnlyTech(std::string name) : name_(std::move(name)) {}
  std::string_view name() const override { return name_; }
  SwitchElectrical electrical(const Tech22nm&,
                              const RelayEquivalent&) const override {
    return {};
  }
  SwitchAreaPolicy area_policy() const override { return {}; }
  SwitchBufferPolicy buffer_policy() const override { return {}; }
  double config_leak_per_bit(const Tech22nm&) const override { return 0.0; }

 private:
  std::string name_;
};

TEST(SwitchTech, RuntimeRegistrationExtendsTheRegistry) {
  ASSERT_FALSE(switch_technology_registered("test-only"));
  register_switch_technology(std::make_unique<TestOnlyTech>("test-only"));
  EXPECT_TRUE(switch_technology_registered("test-only"));
  EXPECT_EQ(switch_technology("test-only").name(), "test-only");
  // The joined error/help string picks the new backend up too.
  EXPECT_NE(registered_switch_technology_names().find("test-only"),
            std::string::npos);
  // Duplicate names are rejected (first registration wins).
  EXPECT_THROW(
      register_switch_technology(std::make_unique<TestOnlyTech>("cmos")),
      std::invalid_argument);
  EXPECT_THROW(
      register_switch_technology(std::make_unique<TestOnlyTech>("nem")),
      std::invalid_argument);  // aliases are reserved names too
}

}  // namespace
}  // namespace nemfpga
