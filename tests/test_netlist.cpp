#include <gtest/gtest.h>

#include "netlist/blif.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/netlist.hpp"
#include "netlist/synth_gen.hpp"

namespace nemfpga {
namespace {

Netlist tiny() {
  // 2 PIs -> LUT -> FF -> PO, plus a second LUT fed by the FF.
  Netlist nl("tiny");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId x = nl.add_net("x");
  const NetId q = nl.add_net("q");
  const NetId y = nl.add_net("y");
  nl.add_input("a", a);
  nl.add_input("b", b);
  nl.add_lut("lut_x", {a, b}, x, {"11 1"});
  nl.add_latch("ff_q", x, q);
  nl.add_lut("lut_y", {q, a}, y, {"1- 1"});
  nl.add_output("y", y);
  return nl;
}

TEST(Netlist, CountsAndLookups) {
  Netlist nl = tiny();
  EXPECT_EQ(nl.lut_count(), 2u);
  EXPECT_EQ(nl.latch_count(), 1u);
  EXPECT_EQ(nl.input_count(), 2u);
  EXPECT_EQ(nl.output_count(), 1u);
  EXPECT_EQ(nl.net_count(), 5u);
  EXPECT_EQ(nl.max_lut_inputs(), 2u);
  EXPECT_EQ(nl.find_net("q"), nl.net_by_name("q"));
  EXPECT_EQ(nl.find_net("nope"), kInvalidId);
  nl.validate();
}

TEST(Netlist, FanoutAccounting) {
  const Netlist nl = tiny();
  // Net "a" feeds lut_x and lut_y.
  EXPECT_EQ(nl.net(nl.find_net("a")).fanout(), 2u);
  EXPECT_GT(nl.average_fanout(), 0.5);
}

TEST(Netlist, RejectsDoubleDriver) {
  Netlist nl;
  const NetId n = nl.add_net("n");
  nl.add_input("i", n);
  EXPECT_THROW(nl.add_input("j", n), std::invalid_argument);
}

TEST(Netlist, RejectsDuplicateNetName) {
  Netlist nl;
  nl.add_net("n");
  EXPECT_THROW(nl.add_net("n"), std::invalid_argument);
}

TEST(Netlist, ValidateCatchesUndrivenNet) {
  Netlist nl;
  const NetId n = nl.add_net("floating");
  nl.add_output("o", n);
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, ValidateCatchesCombinationalLoop) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_lut("l1", {b}, a);
  nl.add_lut("l2", {a}, b);
  EXPECT_THROW(nl.validate(), std::runtime_error);
}

TEST(Netlist, LatchBreaksLoop) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId q = nl.add_net("q");
  nl.add_lut("l1", {q}, a);
  nl.add_latch("ff", a, q);
  nl.validate();  // no throw: the loop passes through the latch
}

TEST(Blif, ParsesMappedNetlist) {
  const std::string text = R"(
# comment
.model demo
.inputs a b c
.outputs f
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.end
)";
  const Netlist nl = read_blif_string(text);
  EXPECT_EQ(nl.model_name(), "demo");
  EXPECT_EQ(nl.input_count(), 3u);
  EXPECT_EQ(nl.output_count(), 1u);
  EXPECT_EQ(nl.lut_count(), 2u);
  const Block& lut = nl.block(nl.net(nl.find_net("f")).driver);
  EXPECT_EQ(lut.truth_table.size(), 2u);
  EXPECT_EQ(lut.truth_table[0], "1- 1");
}

TEST(Blif, ParsesLatches) {
  const std::string text = R"(
.model seq
.inputs d
.outputs y
.latch t q re clk 2
.names d t
1 1
.names q y
1 1
.end
)";
  const Netlist nl = read_blif_string(text);
  EXPECT_EQ(nl.latch_count(), 1u);
  nl.validate();
}

TEST(Blif, HandlesContinuationLines) {
  const std::string text =
      ".model c\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
  const Netlist nl = read_blif_string(text);
  EXPECT_EQ(nl.input_count(), 2u);
}

TEST(Blif, RejectsMalformedInput) {
  EXPECT_THROW(read_blif_string(".inputs a\n"), std::runtime_error);  // no .model
  EXPECT_THROW(read_blif_string(".model m\n.foo\n"), std::runtime_error);
  EXPECT_THROW(read_blif_string(".model m\n.latch x\n"), std::runtime_error);
  EXPECT_THROW(
      read_blif_string(".model m\n.inputs a b c d e\n.outputs f\n"
                       ".names a b c d e f\n11111 1\n.end\n",
                       /*max_lut_inputs=*/4),
      std::runtime_error);
  // Output that is never driven.
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs zz\n.end\n"),
               std::runtime_error);
}

TEST(Blif, RoundTripPreservesStructure) {
  const Netlist nl = tiny();
  const std::string text = write_blif_string(nl);
  const Netlist back = read_blif_string(text);
  EXPECT_EQ(back.lut_count(), nl.lut_count());
  EXPECT_EQ(back.latch_count(), nl.latch_count());
  EXPECT_EQ(back.input_count(), nl.input_count());
  EXPECT_EQ(back.output_count(), nl.output_count());
  EXPECT_EQ(back.net_count(), nl.net_count());
  // And a second round trip is textually stable.
  EXPECT_EQ(write_blif_string(back), text);
}

TEST(SynthGen, MeetsSpecCounts) {
  SynthSpec spec;
  spec.name = "unit";
  spec.n_luts = 500;
  spec.n_inputs = 20;
  spec.n_outputs = 15;
  spec.n_latches = 60;
  const Netlist nl = generate_netlist(spec);
  EXPECT_EQ(nl.lut_count(), 500u);
  EXPECT_EQ(nl.latch_count(), 60u);
  EXPECT_EQ(nl.input_count(), 20u);
  EXPECT_GE(nl.output_count(), 15u);  // sink-less nets promoted to POs
  EXPECT_LE(nl.max_lut_inputs(), 4u);
  nl.validate();
}

TEST(SynthGen, DeterministicInName) {
  SynthSpec spec;
  spec.name = "repeat";
  spec.n_luts = 200;
  const auto a = write_blif_string(generate_netlist(spec));
  const auto b = write_blif_string(generate_netlist(spec));
  EXPECT_EQ(a, b);
  spec.name = "different";
  EXPECT_NE(write_blif_string(generate_netlist(spec)), a);
}

TEST(SynthGen, RealisticFanout) {
  SynthSpec spec;
  spec.name = "fanout-check";
  spec.n_luts = 2000;
  spec.n_inputs = 40;
  spec.n_latches = 100;
  const Netlist nl = generate_netlist(spec);
  // Mapped circuits average a few sinks per net, with a long-tail max.
  EXPECT_GT(nl.average_fanout(), 1.2);
  EXPECT_LT(nl.average_fanout(), 8.0);
  std::size_t max_fanout = 0;
  for (const auto& n : nl.nets()) max_fanout = std::max(max_fanout, n.fanout());
  EXPECT_GT(max_fanout, 10u);
}

TEST(SynthGen, Validation) {
  SynthSpec bad;
  bad.n_luts = 0;
  EXPECT_THROW(generate_netlist(bad), std::invalid_argument);
  SynthSpec worse;
  worse.n_luts = 10;
  worse.n_latches = 11;
  EXPECT_THROW(generate_netlist(worse), std::invalid_argument);
}

TEST(Mcnc, CatalogsComplete) {
  EXPECT_EQ(mcnc20().size(), 20u);
  EXPECT_EQ(pistorius_large().size(), 4u);
  // All four large ones exceed 10K 4-LUTs, as the paper states.
  for (const auto& b : pistorius_large()) EXPECT_GT(b.luts, 10000u);
  EXPECT_EQ(benchmark_info("clma").luts, 8383u);
  EXPECT_EQ(benchmark_info("sudoku_check").luts, 17188u);
  EXPECT_THROW(benchmark_info("nope"), std::invalid_argument);
}

TEST(Mcnc, GeneratesCatalogEntry) {
  const Netlist nl = generate_benchmark("tseng");
  EXPECT_EQ(nl.lut_count(), 1047u);
  EXPECT_EQ(nl.latch_count(), 385u);
  nl.validate();
}

class McncGeneration : public ::testing::TestWithParam<const char*> {};

TEST_P(McncGeneration, GeneratesValidCircuit) {
  const Netlist nl = generate_benchmark(GetParam());
  EXPECT_EQ(nl.lut_count(), benchmark_info(GetParam()).luts);
  nl.validate();
}

INSTANTIATE_TEST_SUITE_P(SmallSuite, McncGeneration,
                         ::testing::Values("alu4", "ex5p", "s298", "apex4",
                                           "misex3", "tseng"));

}  // namespace
}  // namespace nemfpga
