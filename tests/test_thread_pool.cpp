#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  pool.parallel_for(n, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SerialPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [&](std::size_t i) {
                                   if (i == 437) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a throwing loop and keeps working.
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, EveryBodyThrowingStillReportsOne) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64, [&](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(ThreadPool, NestedCallsRunSeriallyWithoutDeadlock) {
  ThreadPool pool(4);
  ThreadPool::ScopedUse use(pool);
  const std::size_t outer = 16, inner = 64;
  std::vector<std::atomic<int>> visits(outer * inner);
  parallel_for(outer, [&](std::size_t i) {
    // Nested call: must execute inline on this worker, not re-enter the
    // pool (which could deadlock with all workers blocked on children).
    parallel_for(inner, [&](std::size_t j) {
      visits[i * inner + j].fetch_add(1);
    });
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(8);
  ThreadPool::ScopedUse use(pool);
  // std::string is not trivially default-meaningful, proving slots don't
  // rely on default construction.
  const auto out = parallel_map(
      200, [](std::size_t i) { return "v" + std::to_string(i * i); });
  ASSERT_EQ(out.size(), 200u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], "v" + std::to_string(i * i));
  }
}

TEST(ThreadPool, ScopedUseRoutesFreeFunctionsAndRestores) {
  ThreadPool a(2), b(3);
  EXPECT_EQ(&ThreadPool::current(), &ThreadPool::global());
  {
    ThreadPool::ScopedUse use_a(a);
    EXPECT_EQ(&ThreadPool::current(), &a);
    {
      ThreadPool::ScopedUse use_b(b);
      EXPECT_EQ(&ThreadPool::current(), &b);
    }
    EXPECT_EQ(&ThreadPool::current(), &a);
  }
  EXPECT_EQ(&ThreadPool::current(), &ThreadPool::global());
}

TEST(ThreadPool, LargeOversubscribedSum) {
  // More threads than cores and more tasks than chunks: the claimed
  // index ranges must still tile [0, n) exactly.
  ThreadPool pool(16);
  const std::size_t n = 100000;
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(n, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace nemfpga
