#include <gtest/gtest.h>

#include <cmath>

#include "circuit/spice.hpp"

namespace nemfpga {
namespace {

TEST(PwlWave, ConstantAndInterpolation) {
  PwlWave flat(3.3);
  EXPECT_DOUBLE_EQ(flat.at(-1.0), 3.3);
  EXPECT_DOUBLE_EQ(flat.at(100.0), 3.3);

  PwlWave ramp({{0.0, 0.0}, {1.0, 2.0}});
  EXPECT_DOUBLE_EQ(ramp.at(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(ramp.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(ramp.at(2.0), 2.0);
}

TEST(PwlWave, AddAndValidation) {
  PwlWave w;
  w.add(0.0, 1.0);
  w.add(1.0, 5.0);
  EXPECT_DOUBLE_EQ(w.at(0.5), 3.0);
  EXPECT_THROW(w.add(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(PwlWave({{1.0, 0.0}, {0.0, 1.0}}), std::invalid_argument);
}

TEST(Transient, RcChargingMatchesAnalytic) {
  // V -R- n1 -C- gnd : v(t) = V (1 - exp(-t/RC))
  Circuit ckt;
  const auto vin = ckt.add_node("vin");
  const auto n1 = ckt.add_node("n1");
  ckt.add_voltage_source(vin, PwlWave(1.0));
  const double r = 1e3, c = 1e-9;  // tau = 1us
  ckt.add_resistor(vin, n1, r);
  ckt.add_capacitor(n1, Circuit::ground(), c);

  TransientSim sim(ckt, 1e-8);  // dt = tau/100
  const auto tr = sim.run(5e-6);
  ASSERT_FALSE(tr.empty());
  for (const auto& p : tr) {
    const double expect = 1.0 * (1.0 - std::exp(-p.time / (r * c)));
    EXPECT_NEAR(p.v[n1], expect, 0.02);
  }
  EXPECT_NEAR(tr.back().v[n1], 1.0, 1e-2);
}

TEST(Transient, ResistiveDividerSteadyState) {
  Circuit ckt;
  const auto vin = ckt.add_node();
  const auto mid = ckt.add_node();
  ckt.add_voltage_source(vin, PwlWave(2.0));
  ckt.add_resistor(vin, mid, 1e3);
  ckt.add_resistor(mid, Circuit::ground(), 3e3);
  TransientSim sim(ckt, 1e-9);
  const auto tr = sim.run(1e-7);
  EXPECT_NEAR(tr.back().v[mid], 1.5, 1e-9);
}

TEST(Transient, OpenSwitchBlocksClosedSwitchConducts) {
  Circuit ckt;
  const auto vin = ckt.add_node();
  const auto out = ckt.add_node();
  ckt.add_voltage_source(vin, PwlWave(1.0));
  const auto sw = ckt.add_switch(vin, out, 100.0);
  ckt.add_resistor(out, Circuit::ground(), 10e3);
  ckt.add_capacitor(out, Circuit::ground(), 1e-12);

  TransientSim sim(ckt, 1e-10);
  auto tr = sim.run(5e-8);
  EXPECT_NEAR(tr.back().v[out], 0.0, 1e-6);  // open: no signal

  ckt.set_switch(sw, true);
  TransientSim sim2(ckt, 1e-10);
  tr = sim2.run(5e-8);
  EXPECT_NEAR(tr.back().v[out], 1.0 * 10e3 / 10.1e3, 1e-3);  // divider
}

TEST(Transient, StepHookCanToggleSwitchMidRun) {
  // Emulates a relay pulling in when the gate waveform crosses a threshold.
  Circuit ckt;
  const auto gate = ckt.add_node("gate");
  const auto sig = ckt.add_node("sig");
  const auto out = ckt.add_node("out");
  ckt.add_voltage_source(gate, PwlWave({{0.0, 0.0}, {1e-6, 5.0}}));
  ckt.add_voltage_source(sig, PwlWave(1.0));
  const auto sw = ckt.add_switch(sig, out, 100.0);
  ckt.add_resistor(out, Circuit::ground(), 100e3);
  ckt.add_capacitor(out, Circuit::ground(), 1e-13);

  double t_closed = -1.0;
  TransientSim sim(ckt, 1e-9);
  const auto tr = sim.run(1e-6, 1, [&](double t, const std::vector<double>& v) {
    if (v[gate] > 2.5 && !ckt.switch_closed(sw)) {
      ckt.set_switch(sw, true);
      t_closed = t;
    }
  });
  EXPECT_GT(t_closed, 0.4e-6);
  EXPECT_LT(t_closed, 0.6e-6);
  EXPECT_NEAR(tr.back().v[out], 1.0, 1e-2);
}

TEST(Transient, FloatingCapacitorCouples) {
  // A step on one plate of a floating cap kicks the other plate before the
  // leak resistor discharges it.
  Circuit ckt;
  const auto a = ckt.add_node();
  const auto b = ckt.add_node();
  ckt.add_voltage_source(a, PwlWave({{0.0, 0.0}, {1e-9, 0.0}, {1.1e-9, 1.0}}));
  ckt.add_capacitor(a, b, 1e-12);
  ckt.add_resistor(b, Circuit::ground(), 1e6);  // slow leak
  TransientSim sim(ckt, 1e-11);
  const auto tr = sim.run(2e-9);
  double peak = 0.0;
  for (const auto& p : tr) peak = std::max(peak, p.v[b]);
  EXPECT_GT(peak, 0.5);  // coupled kick
}

TEST(Transient, SampleEveryDecimatesOutput) {
  Circuit ckt;
  const auto vin = ckt.add_node();
  ckt.add_voltage_source(vin, PwlWave(1.0));
  ckt.add_resistor(vin, Circuit::ground(), 1e3);
  TransientSim sim(ckt, 1e-9);
  const auto full = sim.run(1e-7, 1);
  const auto dec = sim.run(1e-7, 10);
  EXPECT_GT(full.size(), 5 * dec.size());
}

TEST(Circuit, Validation) {
  Circuit ckt;
  const auto a = ckt.add_node();
  EXPECT_THROW(ckt.add_resistor(a, 99, 1e3), std::out_of_range);
  EXPECT_THROW(ckt.add_resistor(a, Circuit::ground(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(ckt.add_capacitor(a, Circuit::ground(), -1e-15),
               std::invalid_argument);
  EXPECT_THROW(ckt.add_voltage_source(Circuit::ground(), PwlWave(1.0)),
               std::out_of_range);
  EXPECT_THROW(ckt.add_switch(a, 99, 100.0), std::out_of_range);
  EXPECT_THROW(ckt.add_switch(a, Circuit::ground(), -5.0),
               std::invalid_argument);
  EXPECT_THROW(TransientSim(ckt, 0.0), std::invalid_argument);
  TransientSim sim(ckt, 1e-9);
  EXPECT_THROW(sim.run(0.0), std::invalid_argument);
}

TEST(Transient, AgreesWithElmoreTimeScale) {
  // A 3-segment RC ladder's 50% point should land within ~2x of its Elmore
  // delay (Elmore is an upper-ish bound for monotone RC responses).
  Circuit ckt;
  const auto vin = ckt.add_node();
  ckt.add_voltage_source(vin, PwlWave({{0.0, 0.0}, {1e-12, 1.0}}));
  CktNodeId prev = vin;
  const double r = 1e3, c = 1e-12;
  CktNodeId last = 0;
  for (int i = 0; i < 3; ++i) {
    const auto n = ckt.add_node();
    ckt.add_resistor(prev, n, r);
    ckt.add_capacitor(n, Circuit::ground(), c);
    prev = last = n;
  }
  const double elmore = r * 3 * c + r * 2 * c + r * c;
  TransientSim sim(ckt, 1e-11);
  const auto tr = sim.run(20 * elmore);
  double t50 = 0.0;
  for (const auto& p : tr) {
    if (p.v[last] >= 0.5) {
      t50 = p.time;
      break;
    }
  }
  EXPECT_GT(t50, 0.3 * elmore);
  EXPECT_LT(t50, 2.0 * elmore);
}

}  // namespace
}  // namespace nemfpga
