// Edge cases of crossbar programming and the half-select window:
// degenerate array shapes, program→readback roundtrips for empty/full
// patterns, reprogramming after reset, and voltages placed exactly on the
// window boundaries (where the >= pull-in / <= release hysteresis rules
// make strictness matter).
#include <gtest/gtest.h>

#include "device/nem_relay.hpp"
#include "program/crossbar.hpp"
#include "program/half_select.hpp"

namespace nemfpga {
namespace {

ProgrammingVoltages nominal_window(const RelayDesign& d) {
  PopulationEnvelope env;
  env.vpi_min = env.vpi_max = d.pull_in_voltage();
  env.vpo_min = env.vpo_max = d.pull_out_voltage();
  env.min_hysteresis = env.vpi_min - env.vpo_max;
  const auto v = solve_program_window(env);
  EXPECT_TRUE(v.has_value());
  return *v;
}

TEST(CrossbarEdges, EmptyPatternProgramsToAllOpen) {
  const RelayDesign d = fabricated_relay();
  const auto v = nominal_window(d);
  for (const auto [rows, cols] :
       {std::pair<std::size_t, std::size_t>{1, 1}, {1, 7}, {7, 1}, {4, 4}}) {
    RelayCrossbar xbar(rows, cols, d);
    const CrossbarPattern target(rows, cols, false);
    const CrossbarPattern got = program_half_select(xbar, target, v);
    EXPECT_EQ(got, target) << rows << "x" << cols;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        EXPECT_FALSE(xbar.pulled_in(r, c));
      }
    }
  }
}

TEST(CrossbarEdges, FullPatternProgramsToAllClosed) {
  const RelayDesign d = fabricated_relay();
  const auto v = nominal_window(d);
  for (const auto [rows, cols] :
       {std::pair<std::size_t, std::size_t>{1, 1}, {1, 6}, {6, 1}, {5, 3}}) {
    RelayCrossbar xbar(rows, cols, d);
    const CrossbarPattern target(rows, cols, true);
    EXPECT_EQ(program_half_select(xbar, target, v), target)
        << rows << "x" << cols;
  }
}

TEST(CrossbarEdges, SingleRowAndSingleColumnArbitraryPatterns) {
  const RelayDesign d = fabricated_relay();
  const auto v = nominal_window(d);
  {
    RelayCrossbar xbar(1, 5, d);
    CrossbarPattern t(1, 5);
    t.set(0, 0, true);
    t.set(0, 3, true);
    EXPECT_EQ(program_half_select(xbar, t, v), t);
  }
  {
    RelayCrossbar xbar(5, 1, d);
    CrossbarPattern t(5, 1);
    t.set(1, 0, true);
    t.set(4, 0, true);
    EXPECT_EQ(program_half_select(xbar, t, v), t);
  }
}

TEST(CrossbarEdges, ReprogramAfterResetReplacesThePattern) {
  const RelayDesign d = fabricated_relay();
  const auto v = nominal_window(d);
  RelayCrossbar xbar(3, 3, d);
  CrossbarPattern a(3, 3);
  a.set(0, 0, true);
  a.set(1, 1, true);
  a.set(2, 2, true);
  EXPECT_EQ(program_half_select(xbar, a, v), a);

  // Second programming run on the same array: the internal reset must
  // erase the diagonal before the complement pattern goes in.
  CrossbarPattern b(3, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) b.set(r, c, !a.at(r, c));
  }
  EXPECT_EQ(program_half_select(xbar, b, v), b);

  // Explicit reset releases everything.
  xbar.reset();
  EXPECT_EQ(xbar.state(), CrossbarPattern(3, 3, false));
}

TEST(CrossbarEdges, ZeroDimensionPatternsAreRejected) {
  EXPECT_THROW(CrossbarPattern(0, 3), std::invalid_argument);
  EXPECT_THROW(CrossbarPattern(3, 0), std::invalid_argument);
}

TEST(CrossbarEdges, PatternSizeMismatchIsRejected) {
  const RelayDesign d = fabricated_relay();
  const auto v = nominal_window(d);
  RelayCrossbar xbar(2, 2, d);
  const CrossbarPattern wrong(2, 3);
  EXPECT_THROW(program_half_select(xbar, wrong, v), std::invalid_argument);
}

// ---- Boundary voltages: exactly at the window edges. ----------------------
// The relay state rules are: VGS >= Vpi pulls in, VGS <= Vpo releases.
// voltages_work_for is strict at all three edges, so equality must be
// reported as NOT working even where the idealized mechanics would happen
// to do the right thing — zero noise margin is a failed window.

TEST(HalfSelectBoundary, HalfSelectExactlyAtPullInIsRejectedAndMisprograms) {
  const RelayDesign d = fabricated_relay();
  const double vpi = d.pull_in_voltage();
  const double vpo = d.pull_out_voltage();
  // vhold + vselect == vpi exactly.
  ProgrammingVoltages v;
  v.vhold = vpo + 0.25 * (vpi - vpo);
  v.vselect = vpi - v.vhold;
  EXPECT_FALSE(voltages_work_for(vpi, vpo, v));

  // Mechanically, every half-selected relay on a selected row pulls in:
  // programming a single-1 pattern closes the whole row.
  RelayCrossbar xbar(2, 2, d);
  CrossbarPattern t(2, 2);
  t.set(0, 0, true);
  const CrossbarPattern got = program_half_select(xbar, t, v);
  EXPECT_TRUE(got.at(0, 1)) << "half-selected relay should have pulled in "
                               "at the VGS == Vpi boundary";
  EXPECT_NE(got, t);
}

TEST(HalfSelectBoundary, FullSelectExactlyAtPullInIsRejected) {
  const RelayDesign d = fabricated_relay();
  const double vpi = d.pull_in_voltage();
  const double vpo = d.pull_out_voltage();
  // vhold + 2*vselect == vpi exactly: pull-in fires (>=) so the pattern
  // programs, but the margin is zero and the window must be rejected.
  ProgrammingVoltages v;
  v.vhold = vpo + 0.25 * (vpi - vpo);
  v.vselect = (vpi - v.vhold) / 2.0;
  EXPECT_FALSE(voltages_work_for(vpi, vpo, v));

  RelayCrossbar xbar(2, 2, d);
  CrossbarPattern t(2, 2);
  t.set(1, 1, true);
  EXPECT_EQ(program_half_select(xbar, t, v), t);
}

TEST(HalfSelectBoundary, HoldExactlyAtPullOutIsRejectedAndLosesState) {
  const RelayDesign d = fabricated_relay();
  const double vpi = d.pull_in_voltage();
  const double vpo = d.pull_out_voltage();
  // vhold == vpo exactly: the retention bias releases (<=) everything.
  ProgrammingVoltages v;
  v.vhold = vpo;
  v.vselect = 0.6 * (vpi - vpo);
  EXPECT_FALSE(voltages_work_for(vpi, vpo, v));

  RelayCrossbar xbar(2, 2, d);
  const CrossbarPattern t(2, 2, true);
  const CrossbarPattern got = program_half_select(xbar, t, v);
  EXPECT_EQ(got, CrossbarPattern(2, 2, false))
      << "retention at VGS == Vpo must release every relay";
}

TEST(HalfSelectBoundary, SolvedWindowHasStrictlyInteriorVoltages) {
  const RelayDesign d = fabricated_relay();
  const auto v = nominal_window(d);
  const double vpi = d.pull_in_voltage();
  const double vpo = d.pull_out_voltage();
  EXPECT_GT(v.vhold, vpo);
  EXPECT_LT(v.vhold + v.vselect, vpi);
  EXPECT_GT(v.vhold + 2.0 * v.vselect, vpi);
  EXPECT_TRUE(voltages_work_for(vpi, vpo, v));
}

}  // namespace
}  // namespace nemfpga
