#include <gtest/gtest.h>

#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "netlist/synth_gen.hpp"

namespace nemfpga {
namespace {

TEST(EvalCover, SingleRowPatterns) {
  EXPECT_TRUE(eval_cover({"11 1"}, {true, true}));
  EXPECT_FALSE(eval_cover({"11 1"}, {true, false}));
  EXPECT_TRUE(eval_cover({"1- 1"}, {true, false}));
  EXPECT_TRUE(eval_cover({"1- 1"}, {true, true}));
  EXPECT_FALSE(eval_cover({"1- 1"}, {false, true}));
  EXPECT_TRUE(eval_cover({"0 1"}, {false}));
}

TEST(EvalCover, MultiRowIsSumOfProducts) {
  // XOR as a two-row cover.
  const std::vector<std::string> xor2 = {"10 1", "01 1"};
  EXPECT_FALSE(eval_cover(xor2, {false, false}));
  EXPECT_TRUE(eval_cover(xor2, {true, false}));
  EXPECT_TRUE(eval_cover(xor2, {false, true}));
  EXPECT_FALSE(eval_cover(xor2, {true, true}));
}

TEST(EvalCover, EmptyCoverDefaultsToAnd) {
  EXPECT_TRUE(eval_cover({}, {true, true, true}));
  EXPECT_FALSE(eval_cover({}, {true, false, true}));
}

TEST(Activity, InverterChainPropagatesToggles) {
  // in -> NOT -> NOT -> out : every net toggles exactly when the PI does.
  const Netlist nl = read_blif_string(R"(
.model chain
.inputs a
.outputs y
.names a t
0 1
.names t y
0 1
.end
)");
  ActivityOptions opt;
  opt.vectors = 2000;
  opt.input_toggle_prob = 0.5;
  const auto act = estimate_activity(nl, opt);
  const NetId a = nl.find_net("a");
  const NetId t = nl.find_net("t");
  const NetId y = nl.find_net("y");
  EXPECT_NEAR(act.net_activity[a], 0.5, 0.05);
  EXPECT_NEAR(act.net_activity[t], act.net_activity[a], 1e-12);
  EXPECT_NEAR(act.net_activity[y], act.net_activity[a], 1e-12);
}

TEST(Activity, AndGateReducesActivity) {
  // AND of two independent inputs toggles less than either input.
  const Netlist nl = read_blif_string(R"(
.model andg
.inputs a b
.outputs y
.names a b y
11 1
.end
)");
  ActivityOptions opt;
  opt.vectors = 4000;
  const auto act = estimate_activity(nl, opt);
  const NetId y = nl.find_net("y");
  const NetId a = nl.find_net("a");
  EXPECT_LT(act.net_activity[y], act.net_activity[a]);
  // P(1) of an AND of two p=0.5 inputs is ~0.25.
  EXPECT_NEAR(act.net_p1[y], 0.25, 0.05);
}

TEST(Activity, RegisterDelaysButPreservesRate) {
  // A toggling signal through a latch toggles at the same average rate.
  const Netlist nl = read_blif_string(R"(
.model reg
.inputs d
.outputs q
.latch t q re clk 2
.names d t
1 1
.end
)");
  ActivityOptions opt;
  opt.vectors = 3000;
  const auto act = estimate_activity(nl, opt);
  EXPECT_NEAR(act.net_activity[nl.find_net("q")],
              act.net_activity[nl.find_net("d")], 0.08);
}

TEST(Activity, SyntheticCircuitStatisticsSane) {
  SynthSpec spec;
  spec.name = "activity-syn";
  spec.n_luts = 300;
  spec.n_inputs = 20;
  spec.n_latches = 50;
  const Netlist nl = generate_netlist(spec);
  ActivityOptions opt;
  opt.vectors = 400;
  const auto act = estimate_activity(nl, opt);
  ASSERT_EQ(act.net_activity.size(), nl.net_count());
  for (NetId n = 0; n < nl.net_count(); ++n) {
    EXPECT_GE(act.net_activity[n], 0.0);
    EXPECT_LE(act.net_activity[n], 1.0);
    EXPECT_GE(act.net_p1[n], 0.0);
    EXPECT_LE(act.net_p1[n], 1.0);
  }
  // Logic attenuates: internal activity below the PI toggle rate but
  // nonzero on average.
  EXPECT_GT(act.mean_activity, 0.0005);
  EXPECT_LT(act.mean_activity, 0.6);
}

TEST(Activity, DeterministicForSeed) {
  SynthSpec spec;
  spec.name = "activity-det";
  spec.n_luts = 100;
  const Netlist nl = generate_netlist(spec);
  ActivityOptions opt;
  opt.vectors = 200;
  const auto a1 = estimate_activity(nl, opt);
  const auto a2 = estimate_activity(nl, opt);
  EXPECT_EQ(a1.net_activity, a2.net_activity);
}

TEST(Activity, RejectsZeroVectors) {
  SynthSpec spec;
  spec.name = "activity-zero";
  spec.n_luts = 10;
  const Netlist nl = generate_netlist(spec);
  ActivityOptions opt;
  opt.vectors = 0;
  EXPECT_THROW(estimate_activity(nl, opt), std::invalid_argument);
}

}  // namespace
}  // namespace nemfpga
