#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/linear.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace nemfpga {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, FromStringIsStable) {
  Rng a = Rng::from_string("clma"), b = Rng::from_string("clma");
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c = Rng::from_string("clma", 1);
  Rng d = Rng::from_string("alu4");
  EXPECT_NE(Rng::from_string("clma").next_u64(), c.next_u64());
  EXPECT_NE(Rng::from_string("clma").next_u64(), d.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = rng.uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% of expectation
  }
}

TEST(Rng, UniformIntZeroThrows) {
  // Regression: n == 0 used to compute (0ULL - n) % n, a division by zero.
  Rng rng(19);
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, ForkStreamsAreIndependentAndReproducible) {
  Rng a(42), b(42);
  // Same parent state + same index -> identical child stream.
  Rng c1 = a.fork(3), c2 = b.fork(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
  // Different indices off one fork point -> different streams.
  Rng base(7);
  const std::uint64_t stream = base.next_u64();
  Rng d0 = Rng::from_stream(stream, 0);
  Rng d1 = Rng::from_stream(stream, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (d0.next_u64() == d1.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkAdvancesParentByOneDraw) {
  Rng a(9), b(9);
  (void)a.fork(0);
  (void)b.next_u64();
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkMatchesFromStream) {
  Rng a(11), b(11);
  const std::uint64_t stream = b.next_u64();
  Rng f = a.fork(5);
  Rng s = Rng::from_stream(stream, 5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(f.next_u64(), s.next_u64());
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(st.mean(), 5.0, 0.03);
  EXPECT_NEAR(st.stddev(), 2.0, 0.03);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RunningStats, BasicMoments) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats st;
  EXPECT_EQ(st.count(), 0u);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  // Regression: empty min()/max() used to return the sentinel 0.0, which
  // read as a legitimate measurement in the bench tables.
  EXPECT_THROW(st.min(), std::logic_error);
  EXPECT_THROW(st.max(), std::logic_error);
  st.add(3.5);
  EXPECT_DOUBLE_EQ(st.mean(), 3.5);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  EXPECT_DOUBLE_EQ(st.min(), 3.5);
  EXPECT_DOUBLE_EQ(st.max(), 3.5);
}

TEST(Stats, GeometricMean) {
  std::vector<double> v{1.0, 10.0, 100.0};
  EXPECT_NEAR(geometric_mean(v), 10.0, 1e-9);
  std::vector<double> w{4.0, 9.0};
  EXPECT_NEAR(geometric_mean(w), 6.0, 1e-9);
  std::vector<double> bad{1.0, -1.0};
  EXPECT_THROW(geometric_mean(bad), std::invalid_argument);
  std::vector<double> empty;
  EXPECT_THROW(geometric_mean(empty), std::invalid_argument);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101), std::invalid_argument);
}

TEST(Stats, PercentileMatchesSortedReference) {
  // The nth_element-based selection must agree bit-for-bit with the
  // sort-then-interpolate definition at every rank, shuffled input.
  Rng rng(31);
  std::vector<double> values(257);
  for (auto& x : values) x = rng.uniform(-100.0, 100.0);

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.0, 1.0, 12.5, 33.3, 50.0, 66.6, 90.0, 99.0, 100.0}) {
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    const double expected = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
    EXPECT_DOUBLE_EQ(percentile(values, p), expected) << "p=" << p;
  }
}

TEST(Histogram, BinningAndOutOfRangeTracking) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // underflow (regression: used to fold into bin 0)
  h.add(15.0);  // overflow  (regression: used to fold into bin 9)
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
  EXPECT_FALSE(h.to_string("label").empty());
  EXPECT_NE(h.to_string().find("below"), std::string::npos);
  EXPECT_NE(h.to_string().find("above"), std::string::npos);
  Histogram in_range(0.0, 1.0, 2);
  in_range.add(0.25);
  EXPECT_EQ(in_range.to_string().find("below"), std::string::npos);
  EXPECT_EQ(in_range.to_string().find("above"), std::string::npos);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Linear, SolvesIdentity) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) a.at(i, i) = 1.0;
  LuSolver lu;
  ASSERT_TRUE(lu.factor(a));
  auto x = lu.solve({1.0, 2.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Linear, SolvesGeneralSystem) {
  // 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3
  Matrix a(2, 2);
  a.at(0, 0) = 2;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 3;
  LuSolver lu;
  ASSERT_TRUE(lu.factor(a));
  auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linear, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 1;
  a.at(1, 1) = 0;
  LuSolver lu;
  ASSERT_TRUE(lu.factor(a));
  auto x = lu.solve({7.0, 9.0});
  EXPECT_NEAR(x[0], 9.0, 1e-12);
  EXPECT_NEAR(x[1], 7.0, 1e-12);
}

TEST(Linear, DetectsSingular) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 4;
  LuSolver lu;
  EXPECT_FALSE(lu.factor(a));
}

TEST(Linear, RandomSystemRoundTrip) {
  Rng rng(23);
  const std::size_t n = 20;
  Matrix a(n, n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = rng.uniform(-5, 5);
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1, 1);
    a.at(i, i) += 10.0;  // diagonally dominant -> well conditioned
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
  }
  LuSolver lu;
  ASSERT_TRUE(lu.factor(a));
  auto x = lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Linear, SolveSizeMismatchThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = a.at(1, 1) = 1.0;
  LuSolver lu;
  ASSERT_TRUE(lu.factor(a));
  EXPECT_THROW(lu.solve({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Table, FormatsAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::num(1.5, 1)});
  t.add_row({"b", TextTable::ratio(2.0)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2.00x"), std::string::npos);
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Units, Constants) {
  EXPECT_NEAR(kEps0, 8.854e-12, 1e-14);
  EXPECT_DOUBLE_EQ(275 * nano, 2.75e-7);
  EXPECT_DOUBLE_EQ(20 * atto, 2e-17);
}

}  // namespace
}  // namespace nemfpga
