// Minimal regression tests for parser bugs surfaced by the verification
// harness (tests/prop/, fuzz_parsers). Each test pins the exact input
// class that used to misbehave.
#include <gtest/gtest.h>

#include "netlist/blif.hpp"
#include "place/place_io.hpp"

namespace nemfpga {
namespace {

// A '\' continuation used to glue the last token of the continued line to
// the first token of the next (".inputs a b\" + "c" parsed as "a bc").
TEST(BlifRegression, ContinuationIsATokenSeparator) {
  const std::string folded =
      ".model top\n"
      ".inputs a \\\n"
      "b\\\n"
      "c\n"
      ".outputs y\n"
      ".names a b \\\n"
      "c y\n"
      "111 1\n"
      ".end\n";
  const Netlist nl = read_blif_string(folded);
  EXPECT_NE(nl.find_net("a"), kInvalidId);
  EXPECT_NE(nl.find_net("b"), kInvalidId);
  EXPECT_NE(nl.find_net("c"), kInvalidId);
  EXPECT_EQ(nl.find_net("bc"), kInvalidId);

  const std::string flat =
      ".model top\n"
      ".inputs a b c\n"
      ".outputs y\n"
      ".names a b c y\n"
      "111 1\n"
      ".end\n";
  EXPECT_EQ(write_blif_string(nl), write_blif_string(read_blif_string(flat)));
}

// Negative array dimensions used to wrap through unsigned stream
// extraction into huge accepted values.
TEST(PlacementRegression, NegativeDimensionsAreRejected) {
  EXPECT_THROW(read_placement_string(
                   "Array size: -1 x -1 logic blocks\nb0\t1\t1\t0\n", 1),
               std::runtime_error);
  EXPECT_THROW(read_placement_string(
                   "Array size: 3 x -4 logic blocks\nb0\t1\t1\t0\n", 1),
               std::runtime_error);
}

// Negative coordinates in a block row wrapped the same way.
TEST(PlacementRegression, NegativeCoordinatesAreRejected) {
  EXPECT_THROW(read_placement_string(
                   "Array size: 4 x 4 logic blocks\nb0\t-2\t1\t0\n", 1),
               std::runtime_error);
}

// Non-numeric / overflowing block indices escaped as std::invalid_argument
// / std::out_of_range from std::stoul instead of the parser's documented
// std::runtime_error.
TEST(PlacementRegression, MalformedBlockIndicesThrowRuntimeError) {
  EXPECT_THROW(read_placement_string(
                   "Array size: 4 x 4 logic blocks\nbZ\t1\t1\t0\n", 1),
               std::runtime_error);
  EXPECT_THROW(
      read_placement_string("Array size: 4 x 4 logic blocks\n"
                            "b18446744073709551616\t1\t1\t0\n",
                            1),
      std::runtime_error);
}

// Valid placements still parse after the stricter validation.
TEST(PlacementRegression, ValidPlacementStillRoundTrips) {
  const std::string text =
      "Array size: 2 x 2 logic blocks\n"
      "#block\tx\ty\tsubblk\n"
      "b0\t1\t1\t0\n"
      "b1\t2\t2\t3\n";
  const Placement pl = read_placement_string(text, 2);
  EXPECT_EQ(pl.nx, 2u);
  EXPECT_EQ(pl.ny, 2u);
  EXPECT_EQ(pl.locs[1].sub, 3u);
}

}  // namespace
}  // namespace nemfpga
