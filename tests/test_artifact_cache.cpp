// Unit coverage for the content-addressed artifact cache (ISSUE 9):
// key canonicalization (the per-type "what does this artifact depend
// on" rules of flow_artifacts.hpp, in both directions), LRU eviction
// under byte pressure, single-flight construction, builder-failure
// retry, and the built-vs-hit accounting flag. The cross-thread
// bit-identity of the artifacts themselves is prop_flow_cache's job.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "arch/lookahead.hpp"
#include "service/artifact_cache.hpp"
#include "service/flow_artifacts.hpp"

namespace nemfpga {
namespace {

// ---------------------------------------------------------------------
// Key canonicalization. Over-keying halves the hit rate silently,
// under-keying aliases different artifacts — pin both directions.

TEST(ArtifactKeys, LookaheadIgnoresWidthAndFcFields) {
  // The lookahead builds over a thin canonical graph that overrides
  // W = 2L, fc = 1.0 and dense_fanout, so none of those four may key.
  ArchParams a;
  ArchParams b = a;
  b.W = a.W * 2;
  b.fc_in = 0.9;
  b.fc_out = 0.9;
  b.dense_fanout = true;
  EXPECT_EQ(lookahead_key(a, 12, 12, nullptr),
            lookahead_key(b, 12, 12, nullptr));
}

TEST(ArtifactKeys, LookaheadKeysOnFabricGeometry) {
  const ArchParams a;
  const std::string base = lookahead_key(a, 12, 12, nullptr);
  ArchParams m;

  m = a;
  m.L = a.L + 1;
  EXPECT_NE(lookahead_key(m, 12, 12, nullptr), base);
  m = a;
  m.N = a.N + 2;
  EXPECT_NE(lookahead_key(m, 12, 12, nullptr), base);
  m = a;
  m.K = a.K + 1;
  EXPECT_NE(lookahead_key(m, 12, 12, nullptr), base);
  m = a;
  m.fs = a.fs + 1;
  EXPECT_NE(lookahead_key(m, 12, 12, nullptr), base);
  m = a;
  m.io_per_pad = a.io_per_pad + 1;
  EXPECT_NE(lookahead_key(m, 12, 12, nullptr), base);
  EXPECT_NE(lookahead_key(a, 13, 12, nullptr), base);
  EXPECT_NE(lookahead_key(a, 12, 13, nullptr), base);
}

TEST(ArtifactKeys, LookaheadDelayProfileKeysSeparately) {
  const ArchParams a;
  DelayProfile p1;
  p1.t_wire_stage = 1e-10;
  p1.t_input_path = 2e-10;
  DelayProfile p2 = p1;
  p2.t_wire_stage = 1.0000000000000002e-10;  // 1 ulp away — must split.

  const std::string congestion = lookahead_key(a, 12, 12, nullptr);
  const std::string delay1 = lookahead_key(a, 12, 12, &p1);
  const std::string delay2 = lookahead_key(a, 12, 12, &p2);
  EXPECT_NE(congestion, delay1);
  EXPECT_NE(delay1, delay2);
  EXPECT_EQ(delay1, lookahead_key(a, 12, 12, &p1));
}

TEST(ArtifactKeys, RrGraphKeysOnWidthAndBackend) {
  const ArchParams a;
  ArchParams wide = a;
  wide.W = a.W + 2;
  ArchParams fc = a;
  fc.fc_in = 0.25;

  const std::string base = rr_graph_key(a, 12, 12, RrBackend::kExplicit);
  EXPECT_NE(rr_graph_key(wide, 12, 12, RrBackend::kExplicit), base);
  EXPECT_NE(rr_graph_key(fc, 12, 12, RrBackend::kExplicit), base);
  EXPECT_NE(rr_graph_key(a, 12, 12, RrBackend::kImplicit), base);
  EXPECT_EQ(rr_graph_key(a, 12, 12, RrBackend::kExplicit), base);
}

TEST(ArtifactKeys, DelayModelKeysOnVariant) {
  const ArchParams a;
  const std::string cmos =
      delay_model_key(a, 12, 12, FpgaVariant::kCmosBaseline);
  EXPECT_NE(delay_model_key(a, 12, 12, FpgaVariant::kNemNaive), cmos);
  EXPECT_NE(delay_model_key(a, 12, 12, FpgaVariant::kNemOptimized), cmos);
  EXPECT_EQ(delay_model_key(a, 12, 12, FpgaVariant::kCmosBaseline), cmos);
}

TEST(ArtifactKeys, SwitchBlockPatternKeysEveryArtifactKind) {
  // sb_pattern changes the RR edge sets, so it joins the shared fabric
  // prefix — every artifact kind must split on it (the lookahead table
  // is pattern-independent under dense_fanout, but the issue keys it
  // anyway; see the key-rules comment in flow_artifacts.hpp).
  const ArchParams a;
  for (SbPattern p :
       {SbPattern::kSubset, SbPattern::kUniversal, SbPattern::kCustom}) {
    ArchParams m = a;
    m.sb_pattern = p;
    EXPECT_NE(rr_graph_key(m, 12, 12, RrBackend::kExplicit),
              rr_graph_key(a, 12, 12, RrBackend::kExplicit))
        << sb_pattern_name(p);
    EXPECT_NE(rr_graph_key(m, 12, 12, RrBackend::kImplicit),
              rr_graph_key(a, 12, 12, RrBackend::kImplicit))
        << sb_pattern_name(p);
    EXPECT_NE(lookahead_key(m, 12, 12, nullptr),
              lookahead_key(a, 12, 12, nullptr))
        << sb_pattern_name(p);
    EXPECT_NE(delay_model_key(m, 12, 12, "cmos"),
              delay_model_key(a, 12, 12, "cmos"))
        << sb_pattern_name(p);
  }
  // The custom rotation keys only when the pattern is custom…
  ArchParams c1 = a, c2 = a;
  c1.sb_pattern = c2.sb_pattern = SbPattern::kCustom;
  c1.sb_custom_rot = 3;
  c2.sb_custom_rot = 7;
  EXPECT_NE(rr_graph_key(c1, 12, 12, RrBackend::kExplicit),
            rr_graph_key(c2, 12, 12, RrBackend::kExplicit));
  // …and a dormant rotation never splits the key space.
  ArchParams w1 = a, w2 = a;
  w1.sb_custom_rot = 3;
  w2.sb_custom_rot = 7;
  EXPECT_EQ(rr_graph_key(w1, 12, 12, RrBackend::kExplicit),
            rr_graph_key(w2, 12, 12, RrBackend::kExplicit));
}

TEST(ArtifactKeys, DelayModelKeysOnRegistryName) {
  // The delay-model key carries the registry name itself, so any future
  // registered backend splits the key space without touching this code.
  const ArchParams a;
  const std::vector<std::string> backends = {"cmos", "nem-naive", "nem-opt",
                                             "rram"};
  for (std::size_t i = 0; i < backends.size(); ++i) {
    for (std::size_t j = i + 1; j < backends.size(); ++j) {
      EXPECT_NE(delay_model_key(a, 12, 12, backends[i]),
                delay_model_key(a, 12, 12, backends[j]))
          << backends[i] << " vs " << backends[j];
    }
  }
  // The enum convenience overload lands on the same key as the name,
  // and legacy alias spellings canonicalize (no duplicate cache entries).
  EXPECT_EQ(delay_model_key(a, 12, 12, FpgaVariant::kNemOptimized),
            delay_model_key(a, 12, 12, "nem-opt"));
  EXPECT_EQ(delay_model_key(a, 12, 12, "nem_opt"),
            delay_model_key(a, 12, 12, "nem-opt"));
  EXPECT_EQ(delay_model_key(a, 12, 12, "nem"),
            delay_model_key(a, 12, 12, "nem-naive"));
}

TEST(ArtifactKeys, NamespacesAreDisjoint) {
  // The cache stores values type-erased and trusts the key prefix to
  // identify the type — the helpers must never collide.
  const ArchParams a;
  DelayProfile p;
  const std::vector<std::string> keys = {
      rr_graph_key(a, 12, 12, RrBackend::kExplicit),
      rr_graph_key(a, 12, 12, RrBackend::kImplicit),
      lookahead_key(a, 12, 12, nullptr),
      lookahead_key(a, 12, 12, &p),
      delay_model_key(a, 12, 12, FpgaVariant::kCmosBaseline),
  };
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
    }
  }
}

// ---------------------------------------------------------------------
// get_or_build semantics.

std::shared_ptr<const int> make_int(int v) {
  return std::make_shared<const int>(v);
}

TEST(ArtifactCache, MissThenHitSharesOneValue) {
  ArtifactCache cache;
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return make_int(42);
  };
  const auto bytes = [](const int&) { return std::size_t{64}; };

  bool built = false;
  const auto a = cache.get_or_build<int>("k", build, bytes, &built);
  EXPECT_TRUE(built);
  const auto b = cache.get_or_build<int>("k", build, bytes, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(*a, 42);

  const ArtifactCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.resident_bytes, 64u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ArtifactCache, DistinctKeysBuildIndependently) {
  ArtifactCache cache;
  const auto bytes = [](const int&) { return std::size_t{8}; };
  const auto a = cache.get_or_build<int>("a", [] { return make_int(1); }, bytes);
  const auto b = cache.get_or_build<int>("b", [] { return make_int(2); }, bytes);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedUnderBytePressure) {
  ArtifactCache cache(256);  // room for two 100-byte entries
  const auto bytes = [](const int&) { return std::size_t{100}; };
  const auto build = [](int v) { return [v] { return make_int(v); }; };

  auto a = cache.get_or_build<int>("a", build(1), bytes);
  auto b = cache.get_or_build<int>("b", build(2), bytes);
  // Touch "a" so "b" becomes the LRU entry.
  cache.get_or_build<int>("a", build(1), bytes);
  auto c = cache.get_or_build<int>("c", build(3), bytes);

  ArtifactCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.resident_bytes, 256u);

  // Eviction only drops the cache's reference — the held value lives on.
  EXPECT_EQ(*b, 2);
  // "b" was evicted (LRU); "a" and "c" are still resident.
  bool built = true;
  cache.get_or_build<int>("a", build(1), bytes, &built);
  EXPECT_FALSE(built);
  cache.get_or_build<int>("c", build(3), bytes, &built);
  EXPECT_FALSE(built);
  // Re-requesting "b" rebuilds — and its insertion evicts the new LRU
  // ("a", touched before "c" above).
  cache.get_or_build<int>("b", build(2), bytes, &built);
  EXPECT_TRUE(built);
  s = cache.stats();
  EXPECT_EQ(s.evictions, 2u);
  cache.get_or_build<int>("a", build(1), bytes, &built);
  EXPECT_TRUE(built);
}

TEST(ArtifactCache, NeverEvictsTheEntryJustInserted) {
  // A single artifact bigger than the whole budget must still be
  // inserted and survive its own insertion's eviction pass.
  ArtifactCache cache(64);
  const auto bytes = [](const int&) { return std::size_t{1000}; };
  auto a = cache.get_or_build<int>("big", [] { return make_int(7); }, bytes);
  EXPECT_EQ(cache.stats().entries, 1u);

  bool built = true;
  auto b = cache.get_or_build<int>("big", [] { return make_int(7); }, bytes,
                                   &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(a.get(), b.get());
}

TEST(ArtifactCache, ClearDropsEntriesKeepsCounters) {
  ArtifactCache cache;
  const auto bytes = [](const int&) { return std::size_t{8}; };
  cache.get_or_build<int>("a", [] { return make_int(1); }, bytes);
  cache.get_or_build<int>("a", [] { return make_int(1); }, bytes);
  cache.clear();

  ArtifactCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);

  bool built = false;
  cache.get_or_build<int>("a", [] { return make_int(1); }, bytes, &built);
  EXPECT_TRUE(built);
}

// ---------------------------------------------------------------------
// Single-flight: the first requester of an absent key is the sole
// builder; concurrent requesters block and share the one result.

TEST(ArtifactCache, SingleFlightBuildsOnceUnderContention) {
  ArtifactCache cache;
  constexpr int kThreads = 8;

  std::mutex mu;
  std::condition_variable cv;
  int waiting = 0;
  bool release = false;
  std::atomic<int> builds{0};

  // The builder blocks until every other thread has had ample time to
  // pile onto the same key, then releases — if single-flight were
  // broken, a second build would run during the window.
  const auto build = [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    builds.fetch_add(1);
    return make_int(99);
  };
  const auto bytes = [](const int&) { return std::size_t{8}; };

  std::vector<std::shared_ptr<const int>> results(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++waiting;
      }
      cv.notify_all();
      results[i] = cache.get_or_build<int>("hot", build, bytes);
    });
  }
  {
    // Wait until all threads are at least launched into get_or_build,
    // then open the gate.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return waiting == kThreads; });
    release = true;
  }
  cv.notify_all();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[i].get(), results[0].get());
  }
  const ArtifactCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  // Everyone who didn't build either waited on the in-flight build or
  // arrived after it published — the split is timing dependent, but the
  // total reuse count is exact.
  EXPECT_EQ(s.hits + s.single_flight_waits,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ArtifactCache, FailedBuildWakesWaitersWhoRetry) {
  ArtifactCache cache;
  std::atomic<int> attempts{0};
  const auto build = [&]() -> std::shared_ptr<const int> {
    if (attempts.fetch_add(1) == 0) {
      throw std::runtime_error("flaky");
    }
    return make_int(5);
  };
  const auto bytes = [](const int&) { return std::size_t{8}; };

  EXPECT_THROW(cache.get_or_build<int>("k", build, bytes),
               std::runtime_error);
  EXPECT_EQ(cache.stats().failed_builds, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);

  // The failed claim was removed — the next requester becomes a fresh
  // builder and succeeds.
  bool built = false;
  const auto v = cache.get_or_build<int>("k", build, bytes, &built);
  EXPECT_TRUE(built);
  EXPECT_EQ(*v, 5);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ArtifactCache, ConcurrentFailureRetriesConverge) {
  // First builder throws while others wait; one of the waiters must
  // pick up the claim and everyone eventually gets the value.
  ArtifactCache cache;
  std::atomic<int> attempts{0};
  const auto build = [&]() -> std::shared_ptr<const int> {
    if (attempts.fetch_add(1) == 0) {
      // Give the other threads time to become waiters.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      throw std::runtime_error("first build fails");
    }
    return make_int(11);
  };
  const auto bytes = [](const int&) { return std::size_t{8}; };

  constexpr int kThreads = 4;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (;;) {
        try {
          const auto v = cache.get_or_build<int>("k", build, bytes);
          EXPECT_EQ(*v, 11);
          ok.fetch_add(1);
          return;
        } catch (const std::runtime_error&) {
          // The thread that owned the failed build rethrows; retry like
          // a real caller would.
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(cache.stats().failed_builds, 1u);
}

}  // namespace
}  // namespace nemfpga
