// ThreadSanitizer coverage for the speculative-batch placement stage: a
// full anneal with wide batches (plus the directed generators and the
// timing-driven second anneal) on an 8-thread pool. In a plain build
// this is a fast smoke of the batch scheduler; in an NF_TSAN build
// (cmake -DNF_TSAN=ON) it is the race check the frozen-state
// speculative-commit protocol is certified against — batch workers must
// only read the frozen placement state and write their own proposal
// slot, so TSan must stay silent.
#include <gtest/gtest.h>

#include "arch/rr_graph.hpp"
#include "netlist/synth_gen.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

TEST(PlaceTsan, BatchAnnealIsRaceFree) {
  SynthSpec spec;
  spec.name = "place-tsan";
  spec.n_luts = 300;
  spec.n_inputs = 16;
  spec.n_outputs = 12;
  spec.n_latches = 30;
  Netlist nl = generate_netlist(spec);
  ArchParams arch;
  arch.W = 30;
  Packing pk = pack_netlist(nl, arch);
  const auto [nx, ny] =
      grid_size_for(arch, pk.clusters.size(), pk.io_block_count());

  ThreadPool wide(8);
  ThreadPool::ScopedUse use(wide);

  PlaceOptions opt;
  opt.inner_num = 0.3;
  opt.batch_moves = 32;
  opt.directed_moves = true;
  opt.timing_driven = true;
  const Placement pl = place(nl, pk, arch, nx, ny, opt);

  check_placement(pk, arch, pl);
  EXPECT_GT(pl.counters.batches, 0u);
  EXPECT_GT(pl.counters.accepted, 0u);
}

}  // namespace
}  // namespace nemfpga
