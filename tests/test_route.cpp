#include <gtest/gtest.h>

#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/overuse.hpp"
#include "route/route.hpp"
#include "util/rng.hpp"

namespace nemfpga {
namespace {

struct Flow {
  Netlist nl;
  ArchParams arch;
  Packing pk;
  Placement pl;

  Flow(std::size_t n_luts, std::size_t w, const char* name) {
    SynthSpec spec;
    spec.name = name;
    spec.n_luts = n_luts;
    spec.n_inputs = 16;
    spec.n_outputs = 12;
    spec.n_latches = n_luts / 12;
    nl = generate_netlist(spec);
    arch.W = w;
    pk = pack_netlist(nl, arch);
    const auto [nx, ny] = grid_size_for(
        arch, pk.clusters.size(), pk.io_block_count());
    pl = place(nl, pk, arch, nx, ny);
  }
};

TEST(Route, RoutesSmallDesign) {
  Flow f(120, 40, "route-small");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  const auto r = route_all(g, f.pl);
  ASSERT_TRUE(r.success) << "overused=" << r.overused_nodes
                         << " after " << r.iterations << " iterations";
  check_routing(g, f.pl, r);
  EXPECT_GT(r.wire_segments_used, 0u);
  EXPECT_GT(r.total_wire_tiles, 0.0);
}

TEST(Route, EveryNetHasTreeReachingAllSinks) {
  Flow f(150, 40, "route-sinks");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  const auto r = route_all(g, f.pl);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.trees.size(), f.pl.nets.size());
  for (std::size_t n = 0; n < f.pl.nets.size(); ++n) {
    // sinks recorded per sink block (shared SINKs may repeat).
    EXPECT_EQ(r.trees[n].sinks.size(), f.pl.nets[n].sinks.size());
    EXPECT_FALSE(r.trees[n].edges.empty());
  }
}

TEST(Route, FailsGracefullyWhenTooNarrow) {
  Flow f(150, 40, "route-narrow");
  ArchParams narrow = f.arch;
  narrow.W = 4;
  const RrGraph g(narrow, f.pl.nx, f.pl.ny);
  RouteOptions opt;
  opt.max_iterations = 6;
  const auto r = route_all(g, f.pl, opt);
  EXPECT_FALSE(r.success);
}

TEST(Route, WiderChannelRoutesFasterOrEqual) {
  Flow f(150, 40, "route-width");
  ArchParams wide = f.arch;
  wide.W = 60;
  const RrGraph g1(f.arch, f.pl.nx, f.pl.ny);
  const RrGraph g2(wide, f.pl.nx, f.pl.ny);
  const auto r1 = route_all(g1, f.pl);
  const auto r2 = route_all(g2, f.pl);
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  // Iteration counts are not strictly monotone in W (tap patterns shift),
  // but a wider fabric must not be drastically harder to converge.
  EXPECT_LE(r2.iterations, 2 * r1.iterations + 4);
}

TEST(Route, MinChannelWidthSearch) {
  Flow f(120, 40, "route-wmin");
  const auto cw = find_min_channel_width(f.arch, f.pl, 32);
  EXPECT_GT(cw.w_min, 2u);
  EXPECT_LT(cw.w_min, 80u);
  // 1.2x low-stress policy, rounded even.
  EXPECT_GE(cw.w_low_stress, cw.w_min);
  EXPECT_EQ(cw.w_low_stress % 2, 0u);
  EXPECT_LE(cw.w_low_stress,
            static_cast<std::size_t>(1.2 * cw.w_min + 2.5));

  // Routing exactly at Wmin succeeds; at Wmin-2 it must not.
  ArchParams at = f.arch;
  at.W = cw.w_min;
  const RrGraph g_at(at, f.pl.nx, f.pl.ny);
  EXPECT_TRUE(route_all(g_at, f.pl).success);
  if (cw.w_min > 4) {
    ArchParams below = f.arch;
    below.W = cw.w_min - 2;
    const RrGraph g_below(below, f.pl.nx, f.pl.ny);
    RouteOptions opt;
    opt.max_iterations = 30;
    EXPECT_FALSE(route_all(g_below, f.pl, opt).success);
  }
}

TEST(Route, MinChannelWidthReportsInfeasibleAtCap) {
  // Deliberately unroutable fabric: the grow cap sits far below this
  // design's real Wmin (~20), so the search must saturate and return the
  // explicit infeasible status — not a garbage width (w_min/w_low_stress
  // were previously left 0-but-"valid", and callers consumed them).
  Flow f(150, 40, "route-infeasible");
  RouteOptions opt;
  opt.max_channel_width = 6;
  opt.max_iterations = 8;  // keep each doomed probe quick
  const auto cw = find_min_channel_width(f.arch, f.pl, 4, opt);
  EXPECT_FALSE(cw.feasible);
  EXPECT_EQ(cw.w_min, 0u);
  EXPECT_EQ(cw.w_low_stress, 0u);
  EXPECT_EQ(cw.w_cap, 6u);

  // The identical search without the cap is feasible — the verdict comes
  // from the cap, not from the design.
  RouteOptions uncapped;
  uncapped.max_iterations = 30;
  const auto ok = find_min_channel_width(f.arch, f.pl, 4, uncapped);
  EXPECT_TRUE(ok.feasible);
  EXPECT_GT(ok.w_min, 6u);
}

TEST(Route, DeterministicResult) {
  Flow f(100, 40, "route-det");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  const auto r1 = route_all(g, f.pl);
  const auto r2 = route_all(g, f.pl);
  ASSERT_TRUE(r1.success);
  ASSERT_EQ(r1.trees.size(), r2.trees.size());
  for (std::size_t n = 0; n < r1.trees.size(); ++n) {
    EXPECT_EQ(r1.trees[n].edges, r2.trees[n].edges);
  }
}

TEST(OveruseTracker, IncDecMaintainsExactCountAndFlags) {
  OveruseTracker t(std::vector<std::uint16_t>{1, 2, 1, 3});
  EXPECT_EQ(t.overused_count(), 0u);
  EXPECT_TRUE(t.consistent());

  t.inc(0);  // occ=1 cap=1 — full but not overused
  EXPECT_FALSE(t.overused(0));
  EXPECT_EQ(t.overused_count(), 0u);

  t.inc(0);  // occ=2 — overused
  EXPECT_TRUE(t.overused(0));
  EXPECT_EQ(t.overused_count(), 1u);
  EXPECT_TRUE(t.consistent());

  t.inc(1);
  t.inc(1);
  t.inc(1);  // occ=3 cap=2 — overused
  EXPECT_EQ(t.overused_count(), 2u);

  t.dec(0);  // back to occ=1 — clears
  EXPECT_FALSE(t.overused(0));
  EXPECT_EQ(t.overused_count(), 1u);
  EXPECT_TRUE(t.consistent());
}

TEST(OveruseTracker, RipUpRerouteChurnStaysConsistent) {
  // Deterministic random inc/dec churn, never letting occ go negative,
  // validated against the O(V) ground-truth recount.
  const std::size_t n = 64;
  std::vector<std::uint16_t> cap(n);
  Rng rng(1234);
  for (auto& c : cap) c = static_cast<std::uint16_t>(1 + rng.next_u64() % 3);
  OveruseTracker t(cap);
  std::vector<int> occ(n, 0);
  for (int step = 0; step < 5000; ++step) {
    const RrNodeId id = rng.next_u64() % n;
    if (occ[id] > 0 && rng.next_u64() % 2) {
      --occ[id];
      t.dec(id);
    } else {
      ++occ[id];
      t.inc(id);
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(t.consistent()) << "step " << step;
    }
  }
  EXPECT_TRUE(t.consistent());
}

TEST(OveruseTracker, ForEachVisitsEachOverusedOnceAndCompacts) {
  OveruseTracker t(std::vector<std::uint16_t>{1, 1, 1, 1});
  t.inc(0);
  t.inc(0);  // over by 1
  t.inc(2);
  t.inc(2);
  t.inc(2);  // over by 2
  t.inc(3);
  t.inc(3);  // over by 1, then cleared again below
  t.dec(3);

  std::vector<std::pair<RrNodeId, int>> seen;
  t.for_each_overused([&](RrNodeId id, int over) {
    seen.emplace_back(id, over);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<RrNodeId, int>{0, 1}));
  EXPECT_EQ(seen[1], (std::pair<RrNodeId, int>{2, 2}));
  EXPECT_TRUE(t.consistent());

  // Re-overusing a still-listed node must not double-visit it.
  t.inc(3);
  seen.clear();
  t.for_each_overused([&](RrNodeId id, int) { seen.emplace_back(id, 0); });
  ASSERT_EQ(seen.size(), 3u);
  std::vector<RrNodeId> ids;
  for (const auto& [id, over] : seen) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<RrNodeId>{0, 2, 3}));
}

TEST(Route, PruneRipupConvergesToLegalRouting) {
  // Branch-level rip-up is an opt-in policy that changes trees (it is
  // deliberately NOT bit-compatible with the default full rip-up); it
  // must still converge to a legal routing.
  Flow f(150, 40, "route-prune");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  RouteOptions opt;
  opt.prune_ripup = true;
  const auto r = route_all(g, f.pl, opt);
  ASSERT_TRUE(r.success) << "overused=" << r.overused_nodes;
  check_routing(g, f.pl, r);
}

TEST(Route, CheckRoutingCatchesWrongSource) {
  Flow f(100, 40, "route-check-src");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  auto r = route_all(g, f.pl);
  ASSERT_TRUE(r.success);
  r.trees[0].source = r.trees[0].source + 1;
  EXPECT_THROW(check_routing(g, f.pl, r), std::logic_error);
}

TEST(Route, CheckRoutingCatchesDisconnectedEdge) {
  Flow f(100, 40, "route-check-edge");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  auto r = route_all(g, f.pl);
  ASSERT_TRUE(r.success);
  // Point the first edge's parent at a node the tree never reached.
  std::size_t victim = r.trees.size();
  for (std::size_t n = 0; n < r.trees.size(); ++n) {
    if (!r.trees[n].edges.empty()) {
      victim = n;
      break;
    }
  }
  ASSERT_LT(victim, r.trees.size());
  auto& e = r.trees[victim].edges.front();
  e.first = (e.first + 1 == g.node_count()) ? e.first - 1 : e.first + 1;
  EXPECT_THROW(check_routing(g, f.pl, r), std::logic_error);
}

TEST(Route, CheckRoutingCatchesCapacityViolation) {
  Flow f(100, 40, "route-check-cap");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  auto r = route_all(g, f.pl);
  ASSERT_TRUE(r.success);
  // Occupancy is deduped per net, so the violation must span two nets:
  // splice a unit-capacity wire already used by one tree into a second
  // tree, hanging it off that tree's own source so the edge itself is
  // connected. The wire then carries two nets against capacity 1.
  RrNodeId wire = kNoRrNode;
  std::size_t owner = r.trees.size();
  for (std::size_t n = 0; n < r.trees.size() && wire == kNoRrNode; ++n) {
    for (const auto& [from, to] : r.trees[n].edges) {
      const auto ty = g.node(to).type;
      if ((ty == RrType::kChanX || ty == RrType::kChanY) &&
          g.node(to).capacity == 1) {
        wire = to;
        owner = n;
        break;
      }
    }
  }
  ASSERT_NE(wire, kNoRrNode);
  std::size_t other = r.trees.size();
  for (std::size_t n = 0; n < r.trees.size(); ++n) {
    if (n == owner) continue;
    bool uses = false;
    for (const auto& [from, to] : r.trees[n].edges) {
      if (to == wire) uses = true;
    }
    if (!uses) {
      other = n;
      break;
    }
  }
  ASSERT_LT(other, r.trees.size());
  r.trees[other].edges.emplace_back(r.trees[other].source, wire);
  EXPECT_THROW(check_routing(g, f.pl, r), std::logic_error);
}

TEST(Route, CheckRoutingCatchesCorruption) {
  Flow f(100, 40, "route-check");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  auto r = route_all(g, f.pl);
  ASSERT_TRUE(r.success);
  check_routing(g, f.pl, r);
  // Corrupt: drop one tree's edges.
  ASSERT_FALSE(r.trees.empty());
  std::size_t victim = 0;
  for (std::size_t n = 0; n < r.trees.size(); ++n) {
    if (!f.pl.nets[n].sinks.empty()) {
      victim = n;
      break;
    }
  }
  r.trees[victim].edges.clear();
  EXPECT_THROW(check_routing(g, f.pl, r), std::logic_error);
}

TEST(Route, MediumBenchmarkEndToEnd) {
  // ex5p (1064 LUTs) through pack/place/route at a generous width.
  const Netlist nl = generate_benchmark("ex5p");
  ArchParams arch;
  arch.W = 60;
  const auto pk = pack_netlist(nl, arch);
  const auto [nx, ny] =
      grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
  PlaceOptions popt;
  popt.inner_num = 0.3;  // keep the unit test quick
  const auto pl = place(nl, pk, arch, nx, ny, popt);
  const RrGraph g(arch, nx, ny);
  const auto r = route_all(g, pl);
  ASSERT_TRUE(r.success);
  check_routing(g, pl, r);
}

}  // namespace
}  // namespace nemfpga
