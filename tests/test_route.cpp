#include <gtest/gtest.h>

#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"

namespace nemfpga {
namespace {

struct Flow {
  Netlist nl;
  ArchParams arch;
  Packing pk;
  Placement pl;

  Flow(std::size_t n_luts, std::size_t w, const char* name) {
    SynthSpec spec;
    spec.name = name;
    spec.n_luts = n_luts;
    spec.n_inputs = 16;
    spec.n_outputs = 12;
    spec.n_latches = n_luts / 12;
    nl = generate_netlist(spec);
    arch.W = w;
    pk = pack_netlist(nl, arch);
    const auto [nx, ny] = grid_size_for(
        arch, pk.clusters.size(), pk.io_block_count());
    pl = place(nl, pk, arch, nx, ny);
  }
};

TEST(Route, RoutesSmallDesign) {
  Flow f(120, 40, "route-small");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  const auto r = route_all(g, f.pl);
  ASSERT_TRUE(r.success) << "overused=" << r.overused_nodes
                         << " after " << r.iterations << " iterations";
  check_routing(g, f.pl, r);
  EXPECT_GT(r.wire_segments_used, 0u);
  EXPECT_GT(r.total_wire_tiles, 0.0);
}

TEST(Route, EveryNetHasTreeReachingAllSinks) {
  Flow f(150, 40, "route-sinks");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  const auto r = route_all(g, f.pl);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.trees.size(), f.pl.nets.size());
  for (std::size_t n = 0; n < f.pl.nets.size(); ++n) {
    // sinks recorded per sink block (shared SINKs may repeat).
    EXPECT_EQ(r.trees[n].sinks.size(), f.pl.nets[n].sinks.size());
    EXPECT_FALSE(r.trees[n].edges.empty());
  }
}

TEST(Route, FailsGracefullyWhenTooNarrow) {
  Flow f(150, 40, "route-narrow");
  ArchParams narrow = f.arch;
  narrow.W = 4;
  const RrGraph g(narrow, f.pl.nx, f.pl.ny);
  RouteOptions opt;
  opt.max_iterations = 6;
  const auto r = route_all(g, f.pl, opt);
  EXPECT_FALSE(r.success);
}

TEST(Route, WiderChannelRoutesFasterOrEqual) {
  Flow f(150, 40, "route-width");
  ArchParams wide = f.arch;
  wide.W = 60;
  const RrGraph g1(f.arch, f.pl.nx, f.pl.ny);
  const RrGraph g2(wide, f.pl.nx, f.pl.ny);
  const auto r1 = route_all(g1, f.pl);
  const auto r2 = route_all(g2, f.pl);
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  // Iteration counts are not strictly monotone in W (tap patterns shift),
  // but a wider fabric must not be drastically harder to converge.
  EXPECT_LE(r2.iterations, 2 * r1.iterations + 4);
}

TEST(Route, MinChannelWidthSearch) {
  Flow f(120, 40, "route-wmin");
  const auto cw = find_min_channel_width(f.arch, f.pl, 32);
  EXPECT_GT(cw.w_min, 2u);
  EXPECT_LT(cw.w_min, 80u);
  // 1.2x low-stress policy, rounded even.
  EXPECT_GE(cw.w_low_stress, cw.w_min);
  EXPECT_EQ(cw.w_low_stress % 2, 0u);
  EXPECT_LE(cw.w_low_stress,
            static_cast<std::size_t>(1.2 * cw.w_min + 2.5));

  // Routing exactly at Wmin succeeds; at Wmin-2 it must not.
  ArchParams at = f.arch;
  at.W = cw.w_min;
  const RrGraph g_at(at, f.pl.nx, f.pl.ny);
  EXPECT_TRUE(route_all(g_at, f.pl).success);
  if (cw.w_min > 4) {
    ArchParams below = f.arch;
    below.W = cw.w_min - 2;
    const RrGraph g_below(below, f.pl.nx, f.pl.ny);
    RouteOptions opt;
    opt.max_iterations = 30;
    EXPECT_FALSE(route_all(g_below, f.pl, opt).success);
  }
}

TEST(Route, DeterministicResult) {
  Flow f(100, 40, "route-det");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  const auto r1 = route_all(g, f.pl);
  const auto r2 = route_all(g, f.pl);
  ASSERT_TRUE(r1.success);
  ASSERT_EQ(r1.trees.size(), r2.trees.size());
  for (std::size_t n = 0; n < r1.trees.size(); ++n) {
    EXPECT_EQ(r1.trees[n].edges, r2.trees[n].edges);
  }
}

TEST(Route, CheckRoutingCatchesCorruption) {
  Flow f(100, 40, "route-check");
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  auto r = route_all(g, f.pl);
  ASSERT_TRUE(r.success);
  check_routing(g, f.pl, r);
  // Corrupt: drop one tree's edges.
  ASSERT_FALSE(r.trees.empty());
  std::size_t victim = 0;
  for (std::size_t n = 0; n < r.trees.size(); ++n) {
    if (!f.pl.nets[n].sinks.empty()) {
      victim = n;
      break;
    }
  }
  r.trees[victim].edges.clear();
  EXPECT_THROW(check_routing(g, f.pl, r), std::logic_error);
}

TEST(Route, MediumBenchmarkEndToEnd) {
  // ex5p (1064 LUTs) through pack/place/route at a generous width.
  const Netlist nl = generate_benchmark("ex5p");
  ArchParams arch;
  arch.W = 60;
  const auto pk = pack_netlist(nl, arch);
  const auto [nx, ny] =
      grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
  PlaceOptions popt;
  popt.inner_num = 0.3;  // keep the unit test quick
  const auto pl = place(nl, pk, arch, nx, ny, popt);
  const RrGraph g(arch, nx, ny);
  const auto r = route_all(g, pl);
  ASSERT_TRUE(r.success);
  check_routing(g, pl, r);
}

}  // namespace
}  // namespace nemfpga
