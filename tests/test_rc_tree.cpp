#include <gtest/gtest.h>

#include "circuit/rc_tree.hpp"

namespace nemfpga {
namespace {

TEST(RcTree, SingleRcSegment) {
  RcTree t;
  const auto n = t.add_node(0, 1000.0, 1e-15);
  EXPECT_DOUBLE_EQ(t.elmore_delay(n), 1000.0 * 1e-15);
}

TEST(RcTree, DriverResistanceSeesTotalCap) {
  RcTree t;
  t.add_cap(0, 2e-15);
  const auto n = t.add_node(0, 500.0, 1e-15);
  // r_drive * (2f + 1f) + 500 * 1f
  EXPECT_DOUBLE_EQ(t.elmore_delay(n, 1000.0), 1000.0 * 3e-15 + 500.0 * 1e-15);
}

TEST(RcTree, LadderMatchesClosedForm) {
  // Uniform ladder of k segments: Elmore = sum_{i=1..k} (i * R) * C ... built
  // the other way: delay to end = R*C*k(k+1)/2 for per-segment R, C.
  RcTree t;
  RcNodeId prev = 0;
  const double r = 100.0, c = 1e-15;
  const int k = 10;
  for (int i = 0; i < k; ++i) prev = t.add_node(prev, r, c);
  // Edge i (1-based from root) sees (k - i + 1) caps below it.
  double expect = 0.0;
  for (int i = 1; i <= k; ++i) expect += r * c * (k - i + 1);
  EXPECT_NEAR(t.elmore_delay(prev), expect, 1e-25);
}

TEST(RcTree, BranchingCountsOnlyDownstreamCap) {
  //      root --r1-- a --r2-- b
  //                   \--r3-- c
  RcTree t;
  const auto a = t.add_node(0, 100.0, 1e-15);
  const auto b = t.add_node(a, 200.0, 2e-15);
  const auto c = t.add_node(a, 300.0, 3e-15);
  // Delay to b: r1*(Ca+Cb+Cc) + r2*Cb
  EXPECT_NEAR(t.elmore_delay(b), 100.0 * 6e-15 + 200.0 * 2e-15, 1e-27);
  // Delay to c: r1*(Ca+Cb+Cc) + r3*Cc — r2/Cb do not appear.
  EXPECT_NEAR(t.elmore_delay(c), 100.0 * 6e-15 + 300.0 * 3e-15, 1e-27);
}

TEST(RcTree, ElmoreAllAgreesWithSingle) {
  RcTree t;
  const auto a = t.add_node(0, 10.0, 1e-15);
  const auto b = t.add_node(a, 20.0, 2e-15);
  const auto c = t.add_node(0, 30.0, 3e-15);
  const auto all = t.elmore_all(5.0);
  for (RcNodeId n : {a, b, c}) {
    EXPECT_DOUBLE_EQ(all[n], t.elmore_delay(n, 5.0));
  }
}

TEST(RcTree, DownstreamCap) {
  RcTree t;
  t.add_cap(0, 1e-15);
  const auto a = t.add_node(0, 10.0, 2e-15);
  const auto b = t.add_node(a, 10.0, 4e-15);
  t.add_node(a, 10.0, 8e-15);
  EXPECT_DOUBLE_EQ(t.downstream_cap(0), 15e-15);
  EXPECT_DOUBLE_EQ(t.downstream_cap(a), 14e-15);
  EXPECT_DOUBLE_EQ(t.downstream_cap(b), 4e-15);
  EXPECT_DOUBLE_EQ(t.total_cap(), 15e-15);
}

TEST(RcTree, AddCapIncreasesDelay) {
  RcTree t;
  const auto a = t.add_node(0, 100.0, 1e-15);
  const double before = t.elmore_delay(a);
  t.add_cap(a, 1e-15);
  EXPECT_GT(t.elmore_delay(a), before);
}

TEST(RcTree, InvalidArguments) {
  RcTree t;
  EXPECT_THROW(t.add_node(5, 1.0, 1e-15), std::out_of_range);
  EXPECT_THROW(t.add_node(0, -1.0, 1e-15), std::invalid_argument);
  EXPECT_THROW(t.add_node(0, 1.0, -1e-15), std::invalid_argument);
  EXPECT_THROW(t.add_cap(7, 1e-15), std::out_of_range);
  EXPECT_THROW(t.add_cap(0, -1e-15), std::invalid_argument);
  EXPECT_THROW(t.elmore_delay(9), std::out_of_range);
  EXPECT_THROW(t.downstream_cap(9), std::out_of_range);
}

class RcLadderLength : public ::testing::TestWithParam<int> {};

TEST_P(RcLadderLength, DelayGrowsQuadratically) {
  // Unbuffered wire delay grows ~quadratically with length — the reason
  // segment wires need buffers at all.
  const int k = GetParam();
  auto ladder_delay = [](int n) {
    RcTree t;
    RcNodeId prev = 0;
    for (int i = 0; i < n; ++i) prev = t.add_node(prev, 50.0, 1e-15);
    return t.elmore_delay(prev);
  };
  const double d1 = ladder_delay(k);
  const double d2 = ladder_delay(2 * k);
  EXPECT_GT(d2, 3.0 * d1);  // superlinear
  EXPECT_LT(d2, 4.5 * d1);  // ~quadratic
}

INSTANTIATE_TEST_SUITE_P(Sweep, RcLadderLength, ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace nemfpga
