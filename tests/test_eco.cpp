// Edge-case regressions for the incremental ECO flow (src/flow/eco.hpp):
// no-op identity, transactional rejection leaving every layer
// bit-identical, deltas on an infeasible base routing, combinational-cycle
// edits degrading to the zero-slack criticality fallback instead of
// crashing, and targeted reroute scope for a single block move. The
// randomized differential coverage lives in tests/prop/prop_eco_diff.cpp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flow/eco.hpp"
#include "netlist/synth_gen.hpp"
#include "route/route.hpp"
#include "util/rng.hpp"
#include "verify/generators.hpp"
#include "verify/oracles.hpp"

namespace nemfpga {
namespace {

SynthSpec small_spec(const char* name, std::size_t n_luts,
                     std::size_t n_latches) {
  SynthSpec spec;
  spec.name = name;
  spec.n_luts = n_luts;
  spec.n_inputs = 8;
  spec.n_outputs = 6;
  spec.n_latches = n_latches;
  return spec;
}

EcoOptions easy_options() {
  EcoOptions opt;
  opt.arch.W = 22;  // generous: edits should stay routable
  opt.route.max_iterations = 60;
  opt.place.inner_num = 0.1;
  return opt;
}

std::vector<std::vector<NetId>> all_pins(const Netlist& nl) {
  std::vector<std::vector<NetId>> pins;
  for (const Block& b : nl.blocks()) pins.push_back(b.inputs);
  return pins;
}

BlockId first_lut(const Netlist& nl, std::size_t min_inputs = 1) {
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    if (nl.block(b).type == BlockType::kLut &&
        nl.block(b).inputs.size() >= min_inputs) {
      return b;
    }
  }
  return kInvalidId;
}

TEST(Eco, NoopDeltaIsIdentity) {
  EcoFlow flow(generate_netlist(small_spec("eco-noop", 40, 6)),
               easy_options());
  ASSERT_TRUE(flow.routed());
  const double cp = flow.critical_path_s();
  const RoutingResult before = flow.routing();

  const EcoResult r = flow.apply(NetlistDelta{});
  EXPECT_EQ(r.status, EcoStatus::kNoop);
  EXPECT_TRUE(r.legal);
  EXPECT_TRUE(r.timing_valid);
  EXPECT_EQ(r.critical_path_s, cp);
  EXPECT_EQ(r.nets_invalidated, 0u);
  EXPECT_EQ(r.nets_rerouted, 0u);
  EXPECT_EQ(r.blocks_moved, 0u);
  EXPECT_EQ(flow.applies(), 0u);  // a no-op is not an apply
  EXPECT_EQ(verify::diff_routing(before, flow.routing()), "");
}

TEST(Eco, RejectedDeltaLeavesStateBitIdentical) {
  EcoFlow flow(generate_netlist(small_spec("eco-reject", 40, 6)),
               easy_options());
  ASSERT_TRUE(flow.routed());
  const BlockId lut = first_lut(flow.netlist(), 2);
  ASSERT_NE(lut, kInvalidId);

  const auto pins = all_pins(flow.netlist());
  const std::vector<BlockLoc> locs = flow.placement().locs;
  const RoutingResult before = flow.routing();
  const double cp = flow.critical_path_s();

  // A valid op followed by an invalid one: the whole delta must roll back.
  NetlistDelta d;
  d.ops.push_back(EcoOp::retarget(lut, 0, 0));
  d.ops.push_back(EcoOp::disconnect(lut, 99));  // pin out of range
  const EcoResult r = flow.apply(d);
  EXPECT_EQ(r.status, EcoStatus::kRejected);
  EXPECT_FALSE(r.reject_reason.empty());
  EXPECT_EQ(all_pins(flow.netlist()), pins);
  for (std::size_t i = 0; i < locs.size(); ++i) {
    EXPECT_EQ(flow.placement().locs[i].x, locs[i].x);
    EXPECT_EQ(flow.placement().locs[i].y, locs[i].y);
  }
  EXPECT_EQ(verify::diff_routing(before, flow.routing()), "");
  EXPECT_EQ(flow.critical_path_s(), cp);

  // K overflow on connect rejects too (stacking past the cluster cap).
  NetlistDelta over;
  for (std::size_t i = 0; i <= flow.arch().K; ++i) {
    over.ops.push_back(EcoOp::connect(lut, 0));
  }
  const EcoResult r2 = flow.apply(over);
  EXPECT_EQ(r2.status, EcoStatus::kRejected);
  EXPECT_EQ(all_pins(flow.netlist()), pins);
}

TEST(Eco, DeltaOnInfeasibleRoutingReportsUnroutable) {
  EcoOptions opt;
  opt.arch.W = 2;  // starved channels: unroutable by construction
  opt.route.max_iterations = 12;
  opt.route.max_channel_width = 2;
  opt.place.inner_num = 0.1;
  EcoFlow flow(generate_netlist(small_spec("eco-starved", 60, 0)), opt);
  ASSERT_FALSE(flow.routed());  // the ctor must record, not throw

  // The session width really is infeasible in the find_min sense.
  const ChannelWidthResult w = find_min_channel_width(
      opt.arch, flow.placement(), opt.arch.W, opt.route);
  EXPECT_FALSE(w.feasible);

  // A valid edit on the unroutable base: applied (the netlist mutates),
  // but reported kUnroutable with timing invalid — and no crash.
  const BlockId lut = first_lut(flow.netlist());
  ASSERT_NE(lut, kInvalidId);
  const NetId old_net = flow.netlist().block(lut).inputs[0];
  const NetId new_net = old_net == 0 ? 1 : 0;
  NetlistDelta d;
  d.ops.push_back(EcoOp::retarget(lut, 0, new_net));
  const EcoResult r = flow.apply(d);
  EXPECT_EQ(r.status, EcoStatus::kUnroutable);
  EXPECT_FALSE(r.legal);
  EXPECT_FALSE(r.timing_valid);
  EXPECT_EQ(flow.netlist().block(lut).inputs[0], new_net);

  // The session keeps accepting deltas after the failure.
  NetlistDelta back;
  back.ops.push_back(EcoOp::retarget(lut, 0, old_net));
  const EcoResult r2 = flow.apply(back);
  EXPECT_EQ(r2.status, EcoStatus::kUnroutable);
  EXPECT_EQ(flow.netlist().block(lut).inputs[0], old_net);
}

TEST(Eco, CombinationalCycleEditDegradesGracefully) {
  // No latches: every LUT output net is retargetable and any LUT->LUT
  // loop is a true combinational cycle.
  EcoFlow flow(generate_netlist(small_spec("eco-cycle", 30, 0)),
               easy_options());
  ASSERT_TRUE(flow.routed());
  ASSERT_FALSE(flow.has_comb_cycle());
  const double cp_before = flow.critical_path_s();
  ASSERT_GT(cp_before, 0.0);

  const BlockId lut = first_lut(flow.netlist());
  ASSERT_NE(lut, kInvalidId);
  const NetId old_net = flow.netlist().block(lut).inputs[0];
  const NetId self = flow.netlist().block(lut).output;

  // Self-loop: the LUT reads its own output. Must hit the zero-slack
  // criticality fallback, not analyze_timing's cycle throw.
  NetlistDelta d;
  d.ops.push_back(EcoOp::retarget(lut, 0, self));
  const EcoResult r = flow.apply(d);
  ASSERT_EQ(r.status, EcoStatus::kOk);
  EXPECT_TRUE(r.legal);
  EXPECT_TRUE(r.cycle_detected);
  EXPECT_FALSE(r.timing_valid);
  EXPECT_EQ(r.critical_path_s, 0.0);
  EXPECT_TRUE(flow.has_comb_cycle());

  // Breaking the cycle restores full timing.
  NetlistDelta back;
  back.ops.push_back(EcoOp::retarget(lut, 0, old_net));
  const EcoResult r2 = flow.apply(back);
  ASSERT_EQ(r2.status, EcoStatus::kOk);
  EXPECT_FALSE(r2.cycle_detected);
  EXPECT_TRUE(r2.timing_valid);
  EXPECT_GT(r2.critical_path_s, 0.0);
  EXPECT_FALSE(flow.has_comb_cycle());
  EXPECT_EQ(flow.critical_path_s(), r2.critical_path_s);
}

TEST(Eco, SingleMoveReroutesOnlyAffectedNets) {
  EcoOptions opt = easy_options();
  opt.replace_touched = false;  // the move is the only placement change
  EcoFlow flow(generate_netlist(small_spec("eco-move", 40, 6)), opt);
  ASSERT_TRUE(flow.routed());

  // A free core site for logic block 0.
  std::size_t fx = 0, fy = 0;
  bool found = false;
  for (std::size_t y = 1; y <= flow.ny() && !found; ++y) {
    for (std::size_t x = 1; x <= flow.nx() && !found; ++x) {
      bool occ = false;
      for (const BlockLoc& l : flow.placement().locs) {
        if (l.x == x && l.y == y && l.sub == 0) {
          occ = true;
          break;
        }
      }
      if (!occ) {
        fx = x;
        fy = y;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "grid has no free core site";

  // Nets touching packed block 0 — the exact invalidation set.
  std::size_t affected = 0;
  for (const PlacedNet& pn : flow.placement().nets) {
    bool touches = pn.driver == 0;
    for (std::size_t s : pn.sinks) touches = touches || s == 0;
    if (touches) ++affected;
  }
  ASSERT_GT(affected, 0u);

  NetlistDelta d;
  d.ops.push_back(EcoOp::move_block(0, fx, fy, 0));
  const EcoResult r = flow.apply(d);
  ASSERT_EQ(r.status, EcoStatus::kOk);
  EXPECT_TRUE(r.legal);
  EXPECT_EQ(r.blocks_moved, 1u);
  EXPECT_EQ(r.nets_invalidated, affected);
  // Congestion can pull extra nets in, but never fewer than invalidated
  // and never the whole design for one move on a generous fabric.
  EXPECT_GE(r.nets_rerouted, affected);
  EXPECT_LT(r.nets_rerouted, flow.placement().nets.size());
  EXPECT_EQ(flow.placement().locs[0].x, fx);
  EXPECT_EQ(flow.placement().locs[0].y, fy);
}

// Harness health: the edit-stream generator must actually exercise both
// the apply and the rejection paths (a generator drifting to all-rejects
// or all-accepts would silently hollow out prop_eco_diff).
TEST(Eco, EditStreamGeneratorCoversApplyAndReject) {
  std::size_t ok = 0, rejected = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    Rng rng = Rng::from_stream(0xec0ec0ull, s);
    verify::EcoCase c = verify::gen_eco_case(rng);
    c.n_edits = 6;
    EcoOptions opt;
    opt.arch = c.design.arch;
    opt.route = c.design.route;
    opt.place.seed = c.design.place_seed;
    opt.place.inner_num = c.design.place_inner_num;
    EcoFlow flow(generate_netlist(c.design.spec), opt);
    if (!flow.routed()) continue;
    for (std::size_t step = 0; step < c.n_edits; ++step) {
      Rng erng = Rng::from_stream(c.edit_seed, step);
      const NetlistDelta d = verify::gen_eco_delta(
          erng, flow.netlist(), flow.packing(), flow.arch(), flow.nx(),
          flow.ny(), flow.placement().locs);
      switch (flow.apply(d).status) {
        case EcoStatus::kOk: ++ok; break;
        case EcoStatus::kRejected: ++rejected; break;
        default: break;
      }
    }
  }
  EXPECT_GE(ok, 10u);
  EXPECT_GE(rejected, 3u);
}

}  // namespace
}  // namespace nemfpga
