#include <gtest/gtest.h>

#include "device/beam_dynamics.hpp"
#include "device/nem_relay.hpp"
#include "util/units.hpp"

namespace nemfpga {
namespace {

TEST(PullInDynamics, AboveVpiSwitches) {
  const RelayDesign d = scaled_relay_22nm();
  const auto ev = simulate_pull_in(d, 1.2 * d.pull_in_voltage(), 1e-6);
  EXPECT_TRUE(ev.switched);
  EXPECT_GT(ev.delay, 0.0);
}

TEST(PullInDynamics, BelowVpiDoesNotSwitch) {
  const RelayDesign d = scaled_relay_22nm();
  const auto ev = simulate_pull_in(d, 0.8 * d.pull_in_voltage(), 2e-7);
  EXPECT_FALSE(ev.switched);
}

TEST(PullInDynamics, ScaledDeviceDelayExceedsOneNanosecond) {
  // The paper's motivation: mechanical switching delays > 1 ns make relays
  // unsuitable for logic, but FPGA routing switches never toggle at runtime.
  const RelayDesign d = scaled_relay_22nm();
  const auto ev = simulate_pull_in(d, 1.5 * d.pull_in_voltage(), 1e-6);
  ASSERT_TRUE(ev.switched);
  EXPECT_GT(ev.delay, 1e-9);
  EXPECT_LT(ev.delay, 1e-6);
}

TEST(PullInDynamics, FabricatedDeviceMuchSlower) {
  const RelayDesign fab = fabricated_relay();
  const RelayDesign scaled = scaled_relay_22nm();
  const auto ev_fab = simulate_pull_in(fab, 1.5 * fab.pull_in_voltage(), 1e-2);
  const auto ev_scaled =
      simulate_pull_in(scaled, 1.5 * scaled.pull_in_voltage(), 1e-6);
  ASSERT_TRUE(ev_fab.switched);
  ASSERT_TRUE(ev_scaled.switched);
  EXPECT_GT(ev_fab.delay, 100.0 * ev_scaled.delay);
}

TEST(PullInDynamics, HigherOverdriveIsFaster) {
  const RelayDesign d = scaled_relay_22nm();
  const double vpi = d.pull_in_voltage();
  const auto slow = simulate_pull_in(d, 1.05 * vpi, 1e-5);
  const auto fast = simulate_pull_in(d, 2.0 * vpi, 1e-5);
  ASSERT_TRUE(slow.switched);
  ASSERT_TRUE(fast.switched);
  EXPECT_LT(fast.delay, slow.delay);
}

TEST(PullInDynamics, TrajectoryRecordedAndMonotoneAtContact) {
  const RelayDesign d = scaled_relay_22nm();
  const auto ev =
      simulate_pull_in(d, 1.3 * d.pull_in_voltage(), 1e-6, true);
  ASSERT_TRUE(ev.switched);
  ASSERT_GT(ev.trajectory.size(), 10u);
  EXPECT_DOUBLE_EQ(ev.trajectory.front().displacement, 0.0);
  const double contact = d.geometry.gap - d.geometry.gap_min;
  EXPECT_GE(ev.trajectory.back().displacement, contact * 0.99);
  // Time strictly increases.
  for (std::size_t i = 1; i < ev.trajectory.size(); ++i) {
    EXPECT_GT(ev.trajectory[i].time, ev.trajectory[i - 1].time);
  }
}

TEST(ReleaseDynamics, BelowVpoReleases) {
  const RelayDesign d = scaled_relay_22nm();
  const auto ev = simulate_release(d, 0.5 * d.pull_out_voltage(), 1e-6);
  EXPECT_TRUE(ev.switched);
  EXPECT_GT(ev.delay, 0.0);
}

TEST(ReleaseDynamics, AboveVpoHolds) {
  const RelayDesign d = scaled_relay_22nm();
  const double v_hold =
      0.5 * (d.pull_out_voltage() + d.pull_in_voltage());
  const auto ev = simulate_release(d, v_hold, 1e-7);
  EXPECT_FALSE(ev.switched);
}

TEST(ReleaseDynamics, ZeroVoltsAlwaysReleasesHealthyDevice) {
  // The reset phase of the crossbar experiment: all gates to 0 V.
  const auto ev = simulate_release(fabricated_relay(), 0.0, 1.0);
  EXPECT_TRUE(ev.switched);
}

TEST(ReleaseDynamics, StuckDeviceNeverReleases) {
  RelayDesign d = scaled_relay_22nm();
  d.adhesion_force =
      2.0 * d.stiffness() * (d.geometry.gap - d.geometry.gap_min);
  const auto ev = simulate_release(d, 0.0, 1e-7);
  EXPECT_FALSE(ev.switched);
}

TEST(Equilibrium, SmallBiasSmallDeflection) {
  const RelayDesign d = fabricated_relay();
  const double x = equilibrium_displacement(d, 0.2 * d.pull_in_voltage());
  EXPECT_GT(x, 0.0);
  EXPECT_LT(x, d.geometry.gap / 10.0);
}

TEST(Equilibrium, DeflectionGrowsWithBias) {
  const RelayDesign d = fabricated_relay();
  const double vpi = d.pull_in_voltage();
  double prev = 0.0;
  for (double f : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    const double x = equilibrium_displacement(d, f * vpi);
    EXPECT_GT(x, prev);
    prev = x;
  }
  // The stable branch ends at 1/3 of the gap (electromechanical instability,
  // [Kaajakari 09]) — deflection just below Vpi approaches g0/3.
  EXPECT_LT(prev, d.geometry.gap / 3.0 + 1e-12);
  EXPECT_GT(prev, d.geometry.gap / 6.0);
}

TEST(Equilibrium, AtOrAboveVpiThrows) {
  const RelayDesign d = fabricated_relay();
  EXPECT_THROW(equilibrium_displacement(d, d.pull_in_voltage()),
               std::invalid_argument);
}

TEST(Dynamics, RejectsBadTimeBounds) {
  const RelayDesign d = scaled_relay_22nm();
  EXPECT_THROW(simulate_pull_in(d, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(simulate_release(d, 1.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace nemfpga
