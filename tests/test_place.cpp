#include <gtest/gtest.h>

#include <cstdint>

#include "netlist/synth_gen.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"

namespace nemfpga {
namespace {

struct Fixture {
  Netlist nl;
  ArchParams arch;
  Packing pk;

  explicit Fixture(std::size_t n_luts = 200, const char* name = "place-fix") {
    SynthSpec spec;
    spec.name = name;
    spec.n_luts = n_luts;
    spec.n_inputs = 16;
    spec.n_outputs = 12;
    spec.n_latches = n_luts / 10;
    nl = generate_netlist(spec);
    arch.W = 30;
    pk = pack_netlist(nl, arch);
  }
};

TEST(PlacedNets, ExtractionSkipsAbsorbedNets) {
  Fixture f;
  const auto nets = extract_placed_nets(f.nl, f.pk);
  EXPECT_GT(nets.size(), 0u);
  for (const auto& n : nets) {
    EXPECT_FALSE(f.pk.net_absorbed[n.net]);
    EXPECT_NE(n.driver, kInvalidId);
    EXPECT_FALSE(n.sinks.empty());
    for (std::size_t s : n.sinks) EXPECT_NE(s, n.driver);
  }
}

TEST(Place, ProducesLegalPlacement) {
  Fixture f;
  const std::size_t n = 6;  // 36 >= #clusters for 200 LUTs
  ASSERT_GE(n * n, f.pk.clusters.size());
  const auto pl = place(f.nl, f.pk, f.arch, n, n);
  check_placement(f.pk, f.arch, pl);
  EXPECT_EQ(pl.nx, n);
  EXPECT_EQ(pl.ny, n);
}

TEST(Place, ImprovesOverInitialOrdering) {
  Fixture f(400, "place-improve");
  const std::size_t n = 8;
  // A zero-effort anneal approximates the initial placement.
  PlaceOptions lazy;
  lazy.inner_num = 0.001;
  const auto before = place(f.nl, f.pk, f.arch, n, n, lazy);
  PlaceOptions full;
  full.inner_num = 1.0;
  const auto after = place(f.nl, f.pk, f.arch, n, n, full);
  EXPECT_LT(placement_cost(after), placement_cost(before) * 0.8);
}

TEST(Place, FinalCostMatchesRecomputed) {
  Fixture f;
  const auto pl = place(f.nl, f.pk, f.arch, 6, 6);
  EXPECT_NEAR(pl.final_cost, placement_cost(pl),
              1e-6 * std::max(1.0, pl.final_cost));
}

TEST(Place, DeterministicForSeed) {
  Fixture f;
  PlaceOptions opt;
  opt.seed = 42;
  const auto a = place(f.nl, f.pk, f.arch, 6, 6, opt);
  const auto b = place(f.nl, f.pk, f.arch, 6, 6, opt);
  ASSERT_EQ(a.locs.size(), b.locs.size());
  for (std::size_t i = 0; i < a.locs.size(); ++i) {
    EXPECT_EQ(a.locs[i].x, b.locs[i].x);
    EXPECT_EQ(a.locs[i].y, b.locs[i].y);
    EXPECT_EQ(a.locs[i].sub, b.locs[i].sub);
  }
}

TEST(Place, DifferentSeedsDifferButBothLegal) {
  Fixture f;
  PlaceOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  const auto a = place(f.nl, f.pk, f.arch, 6, 6, o1);
  const auto b = place(f.nl, f.pk, f.arch, 6, 6, o2);
  check_placement(f.pk, f.arch, a);
  check_placement(f.pk, f.arch, b);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.locs.size(); ++i) {
    any_diff = any_diff || a.locs[i].x != b.locs[i].x ||
               a.locs[i].y != b.locs[i].y;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Place, ThrowsWhenGridTooSmall) {
  Fixture f;
  EXPECT_THROW(place(f.nl, f.pk, f.arch, 2, 2), std::invalid_argument);
}

TEST(Place, IoBlocksStayOnBorder) {
  Fixture f;
  const auto pl = place(f.nl, f.pk, f.arch, 6, 6);
  for (std::size_t b = 0; b < f.pk.blocks.size(); ++b) {
    if (f.pk.blocks[b].type == PackedType::kLogic) continue;
    const auto& l = pl.locs[b];
    const bool bx = (l.x == 0 || l.x == 7);
    const bool by = (l.y == 0 || l.y == 7);
    EXPECT_TRUE(bx != by) << "IO at (" << l.x << "," << l.y << ")";
  }
}


TEST(Place, TimingDrivenModeProducesLegalPlacement) {
  Fixture f(300, "place-td");
  PlaceOptions td;
  td.timing_driven = true;
  const auto pl = place(f.nl, f.pk, f.arch, 7, 7, td);
  check_placement(f.pk, f.arch, pl);
  // The weighted cost is still consistent with its own recomputation
  // under unit weights (placement_cost uses unweighted bb).
  EXPECT_GT(placement_cost(pl), 0.0);
}

// Bit-exact pin on the timing-driven placement result. The criticality
// estimate feeding the refinement anneal was deduplicated into the shared
// placement_net_criticality utility (src/place/place.hpp), consumed by
// both the annealer and the incremental STA's iteration-1 seed; this
// checksum was captured on the pre-refactor annealer-private code, so it
// proves the extraction changed nothing.
TEST(Place, TimingDrivenGoldenChecksum) {
  Fixture f(300, "place-td-golden");
  PlaceOptions td;
  td.timing_driven = true;
  td.seed = 7;
  const auto pl = place(f.nl, f.pk, f.arch, 7, 7, td);
  check_placement(f.pk, f.arch, pl);
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](std::uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  for (const auto& l : pl.locs) {
    mix(l.x);
    mix(l.y);
    mix(l.sub);
  }
  EXPECT_EQ(h, 1506985621632584956ull);
}

TEST(Place, TimingDrivenRefinesWirelengthPlacement) {
  Fixture f(300, "place-td2");
  PlaceOptions wl, td;
  td.timing_driven = true;
  const auto a = place(f.nl, f.pk, f.arch, 7, 7, wl);
  const auto b = place(f.nl, f.pk, f.arch, 7, 7, td);
  check_placement(f.pk, f.arch, b);
  // The refinement phase actually moves blocks...
  std::size_t moved = 0;
  for (std::size_t i = 0; i < a.locs.size(); ++i) {
    moved += (a.locs[i].x != b.locs[i].x || a.locs[i].y != b.locs[i].y);
  }
  EXPECT_GT(moved, 0u);
  // ...without wrecking wirelength (within 2x of the WL-only result).
  EXPECT_LT(placement_cost(b), 2.0 * placement_cost(a));
}

}  // namespace
}  // namespace nemfpga
