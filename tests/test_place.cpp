#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/synth_gen.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

struct Fixture {
  Netlist nl;
  ArchParams arch;
  Packing pk;

  explicit Fixture(std::size_t n_luts = 200, const char* name = "place-fix") {
    SynthSpec spec;
    spec.name = name;
    spec.n_luts = n_luts;
    spec.n_inputs = 16;
    spec.n_outputs = 12;
    spec.n_latches = n_luts / 10;
    nl = generate_netlist(spec);
    arch.W = 30;
    pk = pack_netlist(nl, arch);
  }
};

TEST(PlacedNets, ExtractionSkipsAbsorbedNets) {
  Fixture f;
  const auto nets = extract_placed_nets(f.nl, f.pk);
  EXPECT_GT(nets.size(), 0u);
  for (const auto& n : nets) {
    EXPECT_FALSE(f.pk.net_absorbed[n.net]);
    EXPECT_NE(n.driver, kInvalidId);
    EXPECT_FALSE(n.sinks.empty());
    for (std::size_t s : n.sinks) EXPECT_NE(s, n.driver);
  }
}

TEST(Place, ProducesLegalPlacement) {
  Fixture f;
  const std::size_t n = 6;  // 36 >= #clusters for 200 LUTs
  ASSERT_GE(n * n, f.pk.clusters.size());
  const auto pl = place(f.nl, f.pk, f.arch, n, n);
  check_placement(f.pk, f.arch, pl);
  EXPECT_EQ(pl.nx, n);
  EXPECT_EQ(pl.ny, n);
}

TEST(Place, ImprovesOverInitialOrdering) {
  Fixture f(400, "place-improve");
  const std::size_t n = 8;
  // A zero-effort anneal approximates the initial placement.
  PlaceOptions lazy;
  lazy.inner_num = 0.001;
  const auto before = place(f.nl, f.pk, f.arch, n, n, lazy);
  PlaceOptions full;
  full.inner_num = 1.0;
  const auto after = place(f.nl, f.pk, f.arch, n, n, full);
  EXPECT_LT(placement_cost(after), placement_cost(before) * 0.8);
}

TEST(Place, FinalCostMatchesRecomputed) {
  Fixture f;
  const auto pl = place(f.nl, f.pk, f.arch, 6, 6);
  EXPECT_NEAR(pl.final_cost, placement_cost(pl),
              1e-6 * std::max(1.0, pl.final_cost));
}

TEST(Place, DeterministicForSeed) {
  Fixture f;
  PlaceOptions opt;
  opt.seed = 42;
  const auto a = place(f.nl, f.pk, f.arch, 6, 6, opt);
  const auto b = place(f.nl, f.pk, f.arch, 6, 6, opt);
  ASSERT_EQ(a.locs.size(), b.locs.size());
  for (std::size_t i = 0; i < a.locs.size(); ++i) {
    EXPECT_EQ(a.locs[i].x, b.locs[i].x);
    EXPECT_EQ(a.locs[i].y, b.locs[i].y);
    EXPECT_EQ(a.locs[i].sub, b.locs[i].sub);
  }
}

TEST(Place, DifferentSeedsDifferButBothLegal) {
  Fixture f;
  PlaceOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  const auto a = place(f.nl, f.pk, f.arch, 6, 6, o1);
  const auto b = place(f.nl, f.pk, f.arch, 6, 6, o2);
  check_placement(f.pk, f.arch, a);
  check_placement(f.pk, f.arch, b);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.locs.size(); ++i) {
    any_diff = any_diff || a.locs[i].x != b.locs[i].x ||
               a.locs[i].y != b.locs[i].y;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Place, ThrowsWhenGridTooSmall) {
  Fixture f;
  EXPECT_THROW(place(f.nl, f.pk, f.arch, 2, 2), std::invalid_argument);
}

TEST(Place, IoBlocksStayOnBorder) {
  Fixture f;
  const auto pl = place(f.nl, f.pk, f.arch, 6, 6);
  for (std::size_t b = 0; b < f.pk.blocks.size(); ++b) {
    if (f.pk.blocks[b].type == PackedType::kLogic) continue;
    const auto& l = pl.locs[b];
    const bool bx = (l.x == 0 || l.x == 7);
    const bool by = (l.y == 0 || l.y == 7);
    EXPECT_TRUE(bx != by) << "IO at (" << l.x << "," << l.y << ")";
  }
}


TEST(Place, TimingDrivenModeProducesLegalPlacement) {
  Fixture f(300, "place-td");
  PlaceOptions td;
  td.timing_driven = true;
  const auto pl = place(f.nl, f.pk, f.arch, 7, 7, td);
  check_placement(f.pk, f.arch, pl);
  // The weighted cost is still consistent with its own recomputation
  // under unit weights (placement_cost uses unweighted bb).
  EXPECT_GT(placement_cost(pl), 0.0);
}

// Bit-exact pin on the timing-driven placement result. The criticality
// estimate feeding the refinement anneal was deduplicated into the shared
// placement_net_criticality utility (src/place/place.hpp), consumed by
// both the annealer and the incremental STA's iteration-1 seed; this
// checksum was captured on the pre-refactor annealer-private code, so it
// proves the extraction changed nothing.
TEST(Place, TimingDrivenGoldenChecksum) {
  Fixture f(300, "place-td-golden");
  PlaceOptions td;
  td.timing_driven = true;
  td.seed = 7;
  const auto pl = place(f.nl, f.pk, f.arch, 7, 7, td);
  check_placement(f.pk, f.arch, pl);
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&](std::uint64_t v) { h = (h ^ v) * 1099511628211ull; };
  for (const auto& l : pl.locs) {
    mix(l.x);
    mix(l.y);
    mix(l.sub);
  }
  EXPECT_EQ(h, 1506985621632584956ull);
}

TEST(Place, TimingDrivenRefinesWirelengthPlacement) {
  Fixture f(300, "place-td2");
  PlaceOptions wl, td;
  td.timing_driven = true;
  const auto a = place(f.nl, f.pk, f.arch, 7, 7, wl);
  const auto b = place(f.nl, f.pk, f.arch, 7, 7, td);
  check_placement(f.pk, f.arch, b);
  // The refinement phase actually moves blocks...
  std::size_t moved = 0;
  for (std::size_t i = 0; i < a.locs.size(); ++i) {
    moved += (a.locs[i].x != b.locs[i].x || a.locs[i].y != b.locs[i].y);
  }
  EXPECT_GT(moved, 0u);
  // ...without wrecking wirelength (within 2x of the WL-only result).
  EXPECT_LT(placement_cost(b), 2.0 * placement_cost(a));
}

TEST(Place, FinalWeightedCostEqualsFinalCostWithoutTiming) {
  Fixture f;
  const auto pl = place(f.nl, f.pk, f.arch, 6, 6);
  EXPECT_EQ(pl.final_weighted_cost, pl.final_cost);
}

// With timing on, final_cost stays comparable to placement_cost (it is
// the unweighted bounding-box sum) while final_weighted_cost is the
// criticality-weighted objective the second anneal minimized (weights
// are 1 + tw*crit^2 >= 1, so it can only be larger).
TEST(Place, TimingDrivenReportsBothCosts) {
  Fixture f(300, "place-wcost");
  PlaceOptions td;
  td.timing_driven = true;
  const auto pl = place(f.nl, f.pk, f.arch, 7, 7, td);
  EXPECT_NEAR(pl.final_cost, placement_cost(pl),
              1e-9 * std::max(1.0, pl.final_cost));
  EXPECT_GE(pl.final_weighted_cost, pl.final_cost);
}

TEST(Place, DirectedMovesAreLegalAndDeterministic) {
  Fixture f(300, "place-directed");
  PlaceOptions opt;
  opt.directed_moves = true;
  opt.seed = 11;
  const auto a = place(f.nl, f.pk, f.arch, 7, 7, opt);
  check_placement(f.pk, f.arch, a);
  EXPECT_GT(a.counters.directed, 0u);
  const auto b = place(f.nl, f.pk, f.arch, 7, 7, opt);
  ASSERT_EQ(a.locs.size(), b.locs.size());
  for (std::size_t i = 0; i < a.locs.size(); ++i) {
    EXPECT_EQ(a.locs[i].x, b.locs[i].x);
    EXPECT_EQ(a.locs[i].y, b.locs[i].y);
    EXPECT_EQ(a.locs[i].sub, b.locs[i].sub);
  }
}

// The naive (full-rescan) kernel is a perf baseline, not a different
// algorithm: it must reproduce the incremental kernel's placement
// bit-for-bit.
TEST(Place, NaiveKernelMatchesIncremental) {
  Fixture f;
  PlaceOptions fast, naive;
  naive.naive_cost = true;
  const auto a = place(f.nl, f.pk, f.arch, 6, 6, fast);
  const auto b = place(f.nl, f.pk, f.arch, 6, 6, naive);
  ASSERT_EQ(a.locs.size(), b.locs.size());
  for (std::size_t i = 0; i < a.locs.size(); ++i) {
    EXPECT_EQ(a.locs[i].x, b.locs[i].x);
    EXPECT_EQ(a.locs[i].y, b.locs[i].y);
  }
  EXPECT_EQ(a.final_cost, b.final_cost);
}

TEST(Place, BatchModeIsThreadCountInvariant) {
  Fixture f(300, "place-batch");
  PlaceOptions opt;
  opt.batch_moves = 16;
  opt.directed_moves = true;
  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    ThreadPool::ScopedUse use(pool);
    return place(f.nl, f.pk, f.arch, 7, 7, opt);
  };
  const auto a = run(1);
  const auto b = run(2);
  const auto c = run(8);
  check_placement(f.pk, f.arch, a);
  EXPECT_GT(a.counters.batches, 0u);
  ASSERT_EQ(a.locs.size(), b.locs.size());
  for (std::size_t i = 0; i < a.locs.size(); ++i) {
    EXPECT_EQ(a.locs[i].x, b.locs[i].x);
    EXPECT_EQ(a.locs[i].y, b.locs[i].y);
    EXPECT_EQ(a.locs[i].sub, b.locs[i].sub);
    EXPECT_EQ(a.locs[i].x, c.locs[i].x);
    EXPECT_EQ(a.locs[i].y, c.locs[i].y);
    EXPECT_EQ(a.locs[i].sub, c.locs[i].sub);
  }
  EXPECT_EQ(a.final_cost, b.final_cost);
  EXPECT_EQ(a.final_cost, c.final_cost);
  EXPECT_EQ(a.counters.accepted, c.counters.accepted);
  EXPECT_EQ(a.counters.conflicts, c.counters.conflicts);
  EXPECT_EQ(a.counters.replays, c.counters.replays);
}

// Batch sizes 0 and 1 both mean "the serial discipline" and must agree
// with each other (and, by the golden tests above, with the seed
// annealer).
TEST(Place, BatchSizeOneKeepsSerialDiscipline) {
  Fixture f;
  PlaceOptions zero, one;
  one.batch_moves = 1;
  const auto a = place(f.nl, f.pk, f.arch, 6, 6, zero);
  const auto b = place(f.nl, f.pk, f.arch, 6, 6, one);
  ASSERT_EQ(a.locs.size(), b.locs.size());
  for (std::size_t i = 0; i < a.locs.size(); ++i) {
    EXPECT_EQ(a.locs[i].x, b.locs[i].x);
    EXPECT_EQ(a.locs[i].y, b.locs[i].y);
  }
}

// Regression: placement_net_criticality used to leave LUTs on
// combinational cycles with arrival time 0 (they never drain from the
// topological pass), silently under-weighting every net on the cycle.
// It must now warn once on stderr and treat those nets as fully
// critical.
TEST(PlaceCriticality, CombinationalCycleWarnsAndFallsBackCritical) {
  Netlist nl("cycle");
  const NetId in = nl.add_net("in");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_input("pi", in);
  nl.add_lut("A", {in, b}, a);  // A and B form a 2-LUT loop
  nl.add_lut("B", {a}, b);
  nl.add_output("po", a);

  // Identity block->placed-block mapping on a 1x4 strip.
  std::vector<BlockLoc> locs(4);
  for (std::size_t i = 0; i < locs.size(); ++i) locs[i] = {i, 1, 0};
  std::vector<PlacedNet> nets(3);
  nets[0] = {in, 0, {1}};
  nets[1] = {a, 1, {2, 3}};
  nets[2] = {b, 2, {1}};

  testing::internal::CaptureStderr();
  const auto crit = placement_net_criticality(nl, nets, locs);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("combinational cycle"), std::string::npos) << err;
  EXPECT_NE(err.find("2 LUT(s)"), std::string::npos) << err;
  ASSERT_EQ(crit.size(), nets.size());
  // Every net here touches a cyclic LUT: zero-slack fallback = 1.0.
  for (double c : crit) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(PlaceCriticality, AcyclicNetlistEmitsNoWarning) {
  Netlist nl("chain");
  const NetId in = nl.add_net("in");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.add_input("pi", in);
  nl.add_lut("A", {in}, a);
  nl.add_lut("B", {a}, b);
  nl.add_output("po", b);

  std::vector<BlockLoc> locs(4);
  for (std::size_t i = 0; i < locs.size(); ++i) locs[i] = {i, 1, 0};
  std::vector<PlacedNet> nets(3);
  nets[0] = {in, 0, {1}};
  nets[1] = {a, 1, {2}};
  nets[2] = {b, 2, {3}};

  testing::internal::CaptureStderr();
  const auto crit = placement_net_criticality(nl, nets, locs);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("combinational cycle"), std::string::npos) << err;
  ASSERT_EQ(crit.size(), nets.size());
  // The single path is the critical path: every net on it is critical,
  // and nothing needed the cycle fallback to get there.
  for (double c : crit) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

}  // namespace
}  // namespace nemfpga
