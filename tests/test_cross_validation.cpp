// Cross-validation of the analytic delay models against the SPICE-lite
// transient engine — the same consistency check the paper's flow gets from
// HSPICE (Fig 10). Behavioral inverters are built from switch primitives
// plus a step hook (pull-up/pull-down toggled by the input crossing
// Vdd/2), so the transient solver exercises the full chain.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/logical_effort.hpp"
#include "circuit/spice.hpp"
#include "device/cmos.hpp"

namespace nemfpga {
namespace {

/// Transient 50%-crossing delay of an inverter chain driving c_load,
/// simulated with behavioral inverters on the SPICE-lite engine.
double simulate_chain_delay(const InverterChain& chain, double c_load) {
  const CmosTech& t = chain.tech;
  Circuit ckt;
  const auto vdd = ckt.add_node("vdd");
  ckt.add_voltage_source(vdd, PwlWave(t.vdd));
  const auto in = ckt.add_node("in");
  // Hold the input low long enough for the chain to settle to its DC
  // state, then step it (rising edge into the first inverter).
  const double t0 = 500e-12;
  ckt.add_voltage_source(in,
                         PwlWave({{0.0, 0.0}, {t0, 0.0}, {t0 + 1e-13, t.vdd}}));

  struct Stage {
    CktNodeId out;
    SwitchId pull_up, pull_down;
    CktNodeId input;
    bool inverted_input_high = false;
  };
  std::vector<Stage> stages;
  CktNodeId prev = in;
  for (std::size_t i = 0; i < chain.stages(); ++i) {
    const double mult = chain.stage_mults[i];
    const auto out = ckt.add_node("s" + std::to_string(i));
    Stage st;
    st.out = out;
    st.input = prev;
    // Drive resistance scales inversely with the stage size.
    const double r = t.min_inverter_resistance() / mult;
    st.pull_up = ckt.add_switch(out, vdd, r);
    st.pull_down = ckt.add_switch(out, Circuit::ground(), r);
    // Self load plus the next stage's input capacitance.
    ckt.add_capacitor(out, Circuit::ground(),
                      mult * t.min_inverter_self_cap());
    if (i + 1 < chain.stages()) {
      ckt.add_capacitor(out, Circuit::ground(),
                        chain.stage_mults[i + 1] * t.min_inverter_input_cap());
    } else {
      ckt.add_capacitor(out, Circuit::ground(), c_load);
    }
    stages.push_back(st);
    prev = out;
  }

  // Initialize switch states for a low input so [0, t0] settles to DC.
  bool level = false;  // input low
  for (auto& st : stages) {
    ckt.set_switch(st.pull_down, level);
    ckt.set_switch(st.pull_up, !level);
    level = !level;  // each stage inverts
  }

  const double dt = 0.2e-12;
  TransientSim sim(ckt, dt);
  const auto tr = sim.run(
      t0 + 5e-9, 1, [&](double, const std::vector<double>& v) {
        for (auto& st : stages) {
          const bool in_high = v[st.input] > 0.5 * t.vdd;
          ckt.set_switch(st.pull_down, in_high);
          ckt.set_switch(st.pull_up, !in_high);
        }
      });

  // 50% crossing of the final output after the step (rising or falling by
  // stage parity; the chain settled to the opposite level during [0, t0]).
  const CktNodeId out = stages.back().out;
  const bool final_rises = (chain.stages() % 2 == 0);
  for (const auto& p : tr) {
    if (p.time <= t0) continue;
    if (final_rises && p.v[out] >= 0.5 * chain.tech.vdd) return p.time - t0;
    if (!final_rises && p.v[out] <= 0.5 * chain.tech.vdd) return p.time - t0;
  }
  return -1.0;
}

class ChainCrossValidation : public ::testing::TestWithParam<double> {};

TEST_P(ChainCrossValidation, AnalyticDelayMatchesTransient) {
  const double c_load = GetParam();
  const CmosTech tech;
  const auto chain = design_optimal_chain(tech, c_load);
  const double analytic = chain.delay(c_load);
  const double simulated = simulate_chain_delay(chain, c_load);
  ASSERT_GT(simulated, 0.0) << "no output transition observed";
  // Elmore ln(2) vs full transient: agreement well within 2x is the
  // expected modelling band (HSPICE-vs-Elmore shows the same spread).
  EXPECT_GT(simulated, 0.4 * analytic);
  EXPECT_LT(simulated, 2.2 * analytic);
}

INSTANTIATE_TEST_SUITE_P(Loads, ChainCrossValidation,
                         ::testing::Values(5e-15, 20e-15, 100e-15, 400e-15));

TEST(ChainCrossValidation, DownsizedChainSlowerInTransientToo) {
  const CmosTech tech;
  const double c_load = 150e-15;
  const auto full = design_optimal_chain(tech, c_load);
  const auto down = design_downsized_chain(tech, c_load, 8.0);
  const double t_full = simulate_chain_delay(full, c_load);
  const double t_down = simulate_chain_delay(down, c_load);
  ASSERT_GT(t_full, 0.0);
  ASSERT_GT(t_down, 0.0);
  // The paper's downsizing trade-off must hold in the transient domain.
  EXPECT_GT(t_down, t_full);
}

TEST(ChainCrossValidation, MonotoneInLoad) {
  const CmosTech tech;
  const auto chain = design_optimal_chain(tech, 50e-15);
  const double t1 = simulate_chain_delay(chain, 25e-15);
  const double t2 = simulate_chain_delay(chain, 100e-15);
  ASSERT_GT(t1, 0.0);
  ASSERT_GT(t2, 0.0);
  EXPECT_GT(t2, t1);
}

}  // namespace
}  // namespace nemfpga
