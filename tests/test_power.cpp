#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "netlist/synth_gen.hpp"
#include "power/power.hpp"

namespace nemfpga {
namespace {

struct PowerFixture {
  // One shared flow at the paper's operating point (W = 118, a mid-size
  // sequential circuit) — the regime the Fig 9 breakdown describes.
  const FlowResult& flow;
  PowerFixture() : flow(shared()) {}
  static const FlowResult& shared() {
    static const FlowResult f = [] {
      SynthSpec spec;
      spec.name = "power-fix";
      spec.n_luts = 1200;
      spec.n_inputs = 30;
      spec.n_outputs = 24;
      spec.n_latches = 300;
      FlowOptions opt;
      opt.arch.W = 118;
      return run_flow(generate_netlist(spec), opt);
    }();
    return f;
  }
  PowerBreakdown run(FpgaVariant v, double downsize = 1.0,
                     PowerOptions popt = {}) const {
    const auto view = make_view(flow.arch, v, downsize);
    const auto t = analyze_timing(flow.netlist, flow.packing, flow.placement,
                                  flow.graph_view(), flow.routing, view);
    return analyze_power(flow.netlist, flow.packing, flow.placement,
                         flow.graph_view(), flow.routing, view, t, popt);
  }
};

TEST(Power, AllComponentsPositiveForBaseline) {
  PowerFixture f;
  const auto p = f.run(FpgaVariant::kCmosBaseline);
  EXPECT_GT(p.dyn_wires, 0.0);
  EXPECT_GT(p.dyn_routing_buffers, 0.0);
  EXPECT_GT(p.dyn_luts, 0.0);
  EXPECT_GT(p.dyn_clocking, 0.0);
  EXPECT_GT(p.leak_routing_buffers, 0.0);
  EXPECT_GT(p.leak_routing_sram, 0.0);
  EXPECT_GT(p.leak_pass_transistors, 0.0);
  EXPECT_GT(p.leak_luts, 0.0);
  EXPECT_NEAR(p.total(), p.dynamic_total() + p.leakage_total(), 1e-12);
}

TEST(Power, BaselineBreakdownMatchesFig9) {
  // Fig 9: dynamic ~ wires 40% / buffers 30% / LUTs 20% / clock 10%;
  // leakage ~ buffers 70% / SRAM 12% / pass transistors 10% / LUTs 8%.
  // Tolerances are generous — the shape is what matters.
  PowerFixture f;
  const auto p = f.run(FpgaVariant::kCmosBaseline);
  const double dyn = p.dynamic_total();
  EXPECT_NEAR(p.dyn_wires / dyn, 0.40, 0.15);
  EXPECT_NEAR(p.dyn_routing_buffers / dyn, 0.30, 0.12);
  EXPECT_NEAR(p.dyn_luts / dyn, 0.20, 0.12);
  EXPECT_NEAR(p.dyn_clocking / dyn, 0.10, 0.08);
  // Ordering: wires > buffers > LUTs > clock.
  EXPECT_GT(p.dyn_wires, p.dyn_routing_buffers);
  EXPECT_GT(p.dyn_routing_buffers, p.dyn_luts);
  EXPECT_GT(p.dyn_luts, p.dyn_clocking);

  const double leak = p.leakage_total();
  EXPECT_NEAR(p.leak_routing_buffers / leak, 0.70, 0.12);
  EXPECT_NEAR(p.leak_routing_sram / leak, 0.12, 0.08);
  EXPECT_NEAR(p.leak_pass_transistors / leak, 0.10, 0.08);
  EXPECT_NEAR(p.leak_luts / leak, 0.08, 0.06);
  EXPECT_GT(p.leak_routing_buffers, p.leak_routing_sram);
}

TEST(Power, NemEliminatesSramAndSwitchLeakage) {
  PowerFixture f;
  const auto p = f.run(FpgaVariant::kNemNaive);
  EXPECT_DOUBLE_EQ(p.leak_routing_sram, 0.0);
  EXPECT_DOUBLE_EQ(p.leak_pass_transistors, 0.0);
  EXPECT_GT(p.leak_routing_buffers, 0.0);  // buffers still there
}

TEST(Power, OptimizedNemCutsLeakageHard) {
  PowerFixture f;
  PowerOptions iso;  // same frequency for a fair static comparison
  iso.frequency = 500e6;
  const auto base = f.run(FpgaVariant::kCmosBaseline, 1.0, iso);
  const auto opt = f.run(FpgaVariant::kNemOptimized, 8.0, iso);
  const double reduction = base.leakage_total() / opt.leakage_total();
  // Paper headline: ~10x leakage reduction.
  EXPECT_GT(reduction, 5.0);
  EXPECT_LT(reduction, 20.0);
}

TEST(Power, OptimizedNemHalvesDynamicAtIsoFrequency) {
  PowerFixture f;
  PowerOptions iso;
  iso.frequency = 500e6;
  const auto base = f.run(FpgaVariant::kCmosBaseline, 1.0, iso);
  const auto opt = f.run(FpgaVariant::kNemOptimized, 4.0, iso);
  const double reduction = base.dynamic_total() / opt.dynamic_total();
  // Paper headline: ~2x dynamic reduction.
  EXPECT_GT(reduction, 1.5);
  EXPECT_LT(reduction, 3.5);
}

TEST(Power, DynamicScalesWithFrequency) {
  PowerFixture f;
  PowerOptions f1, f2;
  f1.frequency = 100e6;
  f2.frequency = 200e6;
  const auto p1 = f.run(FpgaVariant::kCmosBaseline, 1.0, f1);
  const auto p2 = f.run(FpgaVariant::kCmosBaseline, 1.0, f2);
  EXPECT_NEAR(p2.dynamic_total() / p1.dynamic_total(), 2.0, 1e-6);
  // Leakage is frequency independent.
  EXPECT_NEAR(p2.leakage_total(), p1.leakage_total(), 1e-15);
}

TEST(Power, DynamicScalesWithActivity) {
  PowerFixture f;
  PowerOptions a1, a2;
  a1.frequency = a2.frequency = 300e6;
  a1.activity = 0.10;
  a2.activity = 0.20;
  const auto p1 = f.run(FpgaVariant::kCmosBaseline, 1.0, a1);
  const auto p2 = f.run(FpgaVariant::kCmosBaseline, 1.0, a2);
  // Clock power has activity 1 regardless; the rest doubles.
  EXPECT_GT(p2.dynamic_total(), 1.6 * p1.dynamic_total());
  EXPECT_NEAR(p2.dyn_clocking, p1.dyn_clocking, 1e-15);
  EXPECT_NEAR(p2.dyn_wires, 2.0 * p1.dyn_wires, 1e-12);
}

TEST(Power, FailedRoutingRejected) {
  PowerFixture f;
  const auto view = make_view(f.flow.arch, FpgaVariant::kCmosBaseline);
  TimingResult t;
  RoutingResult bad;
  bad.success = false;
  EXPECT_THROW(analyze_power(f.flow.netlist, f.flow.packing, f.flow.placement,
                             f.flow.graph_view(), bad, view, t),
               std::invalid_argument);
}

}  // namespace
}  // namespace nemfpga
