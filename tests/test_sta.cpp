#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "netlist/synth_gen.hpp"
#include "timing/sta.hpp"

namespace nemfpga {
namespace {

FlowResult small_flow(const char* name = "sta-fix", std::size_t n_luts = 150,
                      std::size_t n_latches = 20) {
  SynthSpec spec;
  spec.name = name;
  spec.n_luts = n_luts;
  spec.n_inputs = 14;
  spec.n_outputs = 10;
  spec.n_latches = n_latches;
  FlowOptions opt;
  opt.arch.W = 48;
  return run_flow(generate_netlist(spec), opt);
}

TEST(Sta, ProducesPositiveCriticalPath) {
  const auto flow = small_flow();
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  const auto t = analyze_timing(flow.netlist, flow.packing, flow.placement,
                                *flow.graph, flow.routing, view);
  EXPECT_GT(t.critical_path, 10e-12);
  EXPECT_LT(t.critical_path, 1e-6);
  EXPECT_GT(t.geomean_net_delay, 0.0);
}

TEST(Sta, ArrivalTimesMonotoneAlongPaths) {
  const auto flow = small_flow();
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  const auto t = analyze_timing(flow.netlist, flow.packing, flow.placement,
                                *flow.graph, flow.routing, view);
  const Netlist& nl = flow.netlist;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type != BlockType::kLut) continue;
    for (NetId n : blk.inputs) {
      // A LUT's arrival strictly exceeds each of its drivers' (by at least
      // the LUT delay).
      EXPECT_GE(t.arrival[b], t.arrival[nl.net(n).driver] + view.t_lut - 1e-15);
    }
  }
}

TEST(Sta, CriticalPathCoversWorstEndpoint) {
  const auto flow = small_flow();
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  const auto t = analyze_timing(flow.netlist, flow.packing, flow.placement,
                                *flow.graph, flow.routing, view);
  for (BlockId b = 0; b < flow.netlist.block_count(); ++b) {
    // No block's arrival may exceed the critical path (endpoint margins
    // like setup come on top, so compare loosely).
    EXPECT_LE(t.arrival[b], t.critical_path + 1e-12);
  }
}

TEST(Sta, NemVariantIsFasterAtFullBuffers) {
  // The paper's premise: relay routing (no Vt drop, low Ron) speeds up
  // application critical paths.
  const auto flow = small_flow();
  const auto cmos = analyze_timing(
      flow.netlist, flow.packing, flow.placement, *flow.graph, flow.routing,
      make_view(flow.arch, FpgaVariant::kCmosBaseline));
  const auto nem = analyze_timing(
      flow.netlist, flow.packing, flow.placement, *flow.graph, flow.routing,
      make_view(flow.arch, FpgaVariant::kNemOptimized, 1.0));
  EXPECT_LT(nem.critical_path, cmos.critical_path);
}

TEST(Sta, DeepDownsizingSlowsNemVariant) {
  const auto flow = small_flow();
  const auto d1 = analyze_timing(
      flow.netlist, flow.packing, flow.placement, *flow.graph, flow.routing,
      make_view(flow.arch, FpgaVariant::kNemOptimized, 1.0));
  const auto d8 = analyze_timing(
      flow.netlist, flow.packing, flow.placement, *flow.graph, flow.routing,
      make_view(flow.arch, FpgaVariant::kNemOptimized, 8.0));
  EXPECT_GT(d8.critical_path, d1.critical_path);
}

TEST(Sta, RoutedNetDelaysPositiveAndOrdered) {
  const auto flow = small_flow();
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  for (std::size_t i = 0; i < flow.placement.nets.size(); ++i) {
    const auto d = routed_net_delays(*flow.graph, flow.routing.trees[i],
                                     flow.placement.nets[i], flow.placement,
                                     view);
    ASSERT_EQ(d.size(), flow.placement.nets[i].sinks.size());
    for (double x : d) {
      EXPECT_GT(x, 0.0);
      EXPECT_LT(x, 100e-9);
    }
  }
}

TEST(Sta, PurelyCombinationalCircuitWorks) {
  const auto flow = small_flow("sta-comb", 120, 0);
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  const auto t = analyze_timing(flow.netlist, flow.packing, flow.placement,
                                *flow.graph, flow.routing, view);
  EXPECT_GT(t.critical_path, 0.0);
}

TEST(Sta, MismatchedRoutingThrows) {
  const auto flow = small_flow();
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  RoutingResult empty;
  EXPECT_THROW(analyze_timing(flow.netlist, flow.packing, flow.placement,
                              *flow.graph, empty, view),
               std::invalid_argument);
}

}  // namespace
}  // namespace nemfpga
