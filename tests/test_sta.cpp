#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "netlist/synth_gen.hpp"
#include "timing/sta.hpp"

namespace nemfpga {
namespace {

FlowResult small_flow(const char* name = "sta-fix", std::size_t n_luts = 150,
                      std::size_t n_latches = 20) {
  SynthSpec spec;
  spec.name = name;
  spec.n_luts = n_luts;
  spec.n_inputs = 14;
  spec.n_outputs = 10;
  spec.n_latches = n_latches;
  FlowOptions opt;
  opt.arch.W = 48;
  return run_flow(generate_netlist(spec), opt);
}

TEST(Sta, ProducesPositiveCriticalPath) {
  const auto flow = small_flow();
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  const auto t = analyze_timing(flow.netlist, flow.packing, flow.placement,
                                flow.graph_view(), flow.routing, view);
  EXPECT_GT(t.critical_path, 10e-12);
  EXPECT_LT(t.critical_path, 1e-6);
  EXPECT_GT(t.geomean_net_delay, 0.0);
}

TEST(Sta, ArrivalTimesMonotoneAlongPaths) {
  const auto flow = small_flow();
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  const auto t = analyze_timing(flow.netlist, flow.packing, flow.placement,
                                flow.graph_view(), flow.routing, view);
  const Netlist& nl = flow.netlist;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type != BlockType::kLut) continue;
    for (NetId n : blk.inputs) {
      // A LUT's arrival strictly exceeds each of its drivers' (by at least
      // the LUT delay).
      EXPECT_GE(t.arrival[b], t.arrival[nl.net(n).driver] + view.t_lut - 1e-15);
    }
  }
}

TEST(Sta, CriticalPathCoversWorstEndpoint) {
  const auto flow = small_flow();
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  const auto t = analyze_timing(flow.netlist, flow.packing, flow.placement,
                                flow.graph_view(), flow.routing, view);
  for (BlockId b = 0; b < flow.netlist.block_count(); ++b) {
    // No block's arrival may exceed the critical path (endpoint margins
    // like setup come on top, so compare loosely).
    EXPECT_LE(t.arrival[b], t.critical_path + 1e-12);
  }
}

TEST(Sta, NemVariantIsFasterAtFullBuffers) {
  // The paper's premise: relay routing (no Vt drop, low Ron) speeds up
  // application critical paths.
  const auto flow = small_flow();
  const auto cmos = analyze_timing(
      flow.netlist, flow.packing, flow.placement, flow.graph_view(), flow.routing,
      make_view(flow.arch, FpgaVariant::kCmosBaseline));
  const auto nem = analyze_timing(
      flow.netlist, flow.packing, flow.placement, flow.graph_view(), flow.routing,
      make_view(flow.arch, FpgaVariant::kNemOptimized, 1.0));
  EXPECT_LT(nem.critical_path, cmos.critical_path);
}

TEST(Sta, DeepDownsizingSlowsNemVariant) {
  const auto flow = small_flow();
  const auto d1 = analyze_timing(
      flow.netlist, flow.packing, flow.placement, flow.graph_view(), flow.routing,
      make_view(flow.arch, FpgaVariant::kNemOptimized, 1.0));
  const auto d8 = analyze_timing(
      flow.netlist, flow.packing, flow.placement, flow.graph_view(), flow.routing,
      make_view(flow.arch, FpgaVariant::kNemOptimized, 8.0));
  EXPECT_GT(d8.critical_path, d1.critical_path);
}

TEST(Sta, RoutedNetDelaysPositiveAndOrdered) {
  const auto flow = small_flow();
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  for (std::size_t i = 0; i < flow.placement.nets.size(); ++i) {
    const auto d = routed_net_delays(flow.graph_view(), flow.routing.trees[i],
                                     flow.placement.nets[i], flow.placement,
                                     view);
    ASSERT_EQ(d.size(), flow.placement.nets[i].sinks.size());
    for (double x : d) {
      EXPECT_GT(x, 0.0);
      EXPECT_LT(x, 100e-9);
    }
  }
}

TEST(Sta, PurelyCombinationalCircuitWorks) {
  const auto flow = small_flow("sta-comb", 120, 0);
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  const auto t = analyze_timing(flow.netlist, flow.packing, flow.placement,
                                flow.graph_view(), flow.routing, view);
  EXPECT_GT(t.critical_path, 0.0);
}

TEST(Sta, MismatchedRoutingThrows) {
  const auto flow = small_flow();
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  RoutingResult empty;
  EXPECT_THROW(analyze_timing(flow.netlist, flow.packing, flow.placement,
                              flow.graph_view(), empty, view),
               std::invalid_argument);
}

// One NetDelayScratch reused across fabrics of different node counts (the
// ECO session pattern: the graph can shrink or grow between evaluations).
// Stale epoch stamps from the larger fabric must never leak into the
// smaller one — every evaluation must match a fresh one-shot scratch.
TEST(Sta, DelayScratchSurvivesFabricResize) {
  const auto big = small_flow("sta-scratch-big", 200, 12);
  const auto small = small_flow("sta-scratch-small", 60, 4);
  ASSERT_NE(big.graph_view().node_count(), small.graph_view().node_count());
  const auto view = make_view(big.arch, FpgaVariant::kCmosBaseline);

  NetDelayScratch shared;  // lives across both fabrics, both directions
  std::vector<double> out;
  for (const auto* f : {&big, &small, &big}) {
    for (std::size_t i = 0; i < f->placement.nets.size(); ++i) {
      routed_net_delays(*f->graph, f->routing.trees[i], f->placement.nets[i],
                        f->placement, view, shared, out);
      const auto fresh =
          routed_net_delays(*f->graph, f->routing.trees[i],
                            f->placement.nets[i], f->placement, view);
      ASSERT_EQ(out, fresh) << "net " << i << " diverged after a resize";
    }
  }
}

// The 32-bit epoch counter re-zeroes before it would wrap: a wrapped
// counter re-hitting old stamp values would read garbage as "known".
TEST(Sta, DelayScratchRezeroesAtEpochWrap) {
  const auto flow = small_flow("sta-wrap", 60, 4);
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  NetDelayScratch scratch;
  std::vector<double> out;
  const auto eval = [&](std::size_t i) {
    routed_net_delays(flow.graph_view(), flow.routing.trees[i],
                      flow.placement.nets[i], flow.placement, view, scratch,
                      out);
    return out;
  };
  const auto fresh0 = eval(0);

  // Park the counter one evaluation short of wrap; the next call runs at
  // cur == max, the one after must detect the impending wrap and re-zero.
  scratch.cur = std::numeric_limits<std::uint32_t>::max() - 1;
  EXPECT_EQ(eval(0), fresh0);
  EXPECT_EQ(scratch.cur, std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(eval(0), fresh0);  // would alias stale stamps without the reset
  EXPECT_EQ(scratch.cur, 1u);
}

// The incremental-STA router hook bakes the connection CSR and level
// order from the design shape at construction; under ECO the netlist
// changes between routing sessions. A stale hook must refuse loudly
// (logic_error), not silently mis-map criticalities — even for edits that
// keep every block/net count identical (pin-count signature).
TEST(Sta, IncrementalStaHookRefusesShapeChange) {
  auto flow = small_flow("sta-hook-guard", 80, 6);
  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  const auto hook = make_incremental_sta(flow.netlist, flow.packing,
                                         flow.placement, flow.graph_view(), view,
                                         1.0, 0.99);
  const std::vector<std::size_t> no_dirty;
  hook->update(flow.graph_view(), flow.routing.trees, no_dirty, 1);  // healthy

  // Wrong tree count: the classic mismatch.
  std::vector<RouteTree> extra = flow.routing.trees;
  extra.emplace_back();
  EXPECT_THROW(hook->update(flow.graph_view(), extra, no_dirty, 2),
               std::logic_error);

  // A pin edit that changes no block/net/tree count — only the total pin
  // signature catches it.
  BlockId lut = kInvalidId;
  for (BlockId b = 0; b < flow.netlist.block_count(); ++b) {
    if (flow.netlist.block(b).type == BlockType::kLut) {
      lut = b;
      break;
    }
  }
  ASSERT_NE(lut, kInvalidId);
  flow.netlist.connect_input(lut, flow.netlist.block(lut).inputs[0]);
  EXPECT_THROW(hook->update(flow.graph_view(), flow.routing.trees, no_dirty, 2),
               std::logic_error);
}

}  // namespace
}  // namespace nemfpga
