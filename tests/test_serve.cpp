// Unit coverage for the serve surface: the flat-JSON protocol codec,
// request -> FlowJob translation, the job scheduler's future semantics,
// and a real TCP round-trip against ServeServer on an ephemeral port
// (flow, pipelined flows, stats, malformed requests, shutdown). The
// concurrency/determinism story is tests/test_serve_tsan.cpp.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "netlist/mcnc.hpp"
#include "service/job_scheduler.hpp"
#include "service/json_io.hpp"
#include "service/server.hpp"

namespace nemfpga {
namespace {

// ---------------------------------------------------------------------
// JSON codec.

TEST(JsonIo, ParsesFlatObject) {
  const JsonObject o = parse_json_object(
      R"({"op":"flow","benchmark":"tseng","w":64,"timing":true,)"
      R"("locality":0.5,"note":"a\"b\\c\n"})");
  EXPECT_EQ(o.get_string("op"), "flow");
  EXPECT_EQ(o.get_string("benchmark"), "tseng");
  EXPECT_EQ(o.get_number("w"), 64.0);
  EXPECT_TRUE(o.get_bool("timing"));
  EXPECT_EQ(o.get_number("locality"), 0.5);
  EXPECT_EQ(o.get_string("note"), "a\"b\\c\n");
  EXPECT_FALSE(o.has("missing"));
  EXPECT_EQ(o.get_string("missing", "def"), "def");
  EXPECT_EQ(o.get_number("missing", 7.0), 7.0);
}

TEST(JsonIo, ParsesEmptyObjectAndWhitespace) {
  EXPECT_TRUE(parse_json_object("{}").fields.empty());
  const JsonObject o = parse_json_object("  { \"a\" : 1 , \"b\" : null }  ");
  EXPECT_EQ(o.get_number("a"), 1.0);
  EXPECT_TRUE(o.has("b"));
}

TEST(JsonIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_json_object(""), std::runtime_error);
  EXPECT_THROW(parse_json_object("not json"), std::runtime_error);
  EXPECT_THROW(parse_json_object("{\"a\":1"), std::runtime_error);
  EXPECT_THROW(parse_json_object("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parse_json_object("{\"a\":1} trailing"), std::runtime_error);
  // Nested containers are explicitly outside the protocol.
  EXPECT_THROW(parse_json_object("{\"a\":{}}"), std::runtime_error);
  EXPECT_THROW(parse_json_object("{\"a\":[1,2]}"), std::runtime_error);
}

TEST(JsonIo, WriterRoundTripsThroughParser) {
  JsonWriter w;
  w.field("s", "he\"llo\n");
  w.field("d", 0.1);
  w.field("u", std::uint64_t{18446744073709551615ull});
  w.field("b", true);
  const JsonObject o = parse_json_object(w.str());
  EXPECT_EQ(o.get_string("s"), "he\"llo\n");
  EXPECT_EQ(o.get_number("d"), 0.1);  // %.17g round-trips exactly
  EXPECT_TRUE(o.get_bool("b"));
  // 2^64-1 exceeds double precision — which is exactly why checksums
  // travel as hex strings, not numbers.
  EXPECT_TRUE(o.has("u"));
}

// ---------------------------------------------------------------------
// Request -> FlowJob.

TEST(JobFromJson, BenchmarkRequestHonorsOverrides) {
  ServeOptions defaults;
  const JsonObject o = parse_json_object(
      R"({"op":"flow","benchmark":"tseng","w":64,"seed":7,)"
      R"("timing":true,"variant":"nem_opt"})");
  const FlowJob job = job_from_json(o, defaults);
  EXPECT_EQ(job.name, "tseng");
  EXPECT_GT(job.netlist.block_count(), 0u);
  EXPECT_EQ(job.opt.arch.W, 64u);
  EXPECT_EQ(job.opt.place.seed, 7u);
  EXPECT_TRUE(job.opt.route.timing_driven);
  EXPECT_EQ(job.opt.timing_backend, "nem-opt");
}

TEST(JobFromJson, SynthRequestAndDefaults) {
  ServeOptions defaults;
  defaults.arch.W = 50;
  const FlowJob job = job_from_json(
      parse_json_object(R"({"op":"flow","synth_luts":200})"), defaults);
  EXPECT_EQ(job.name, "synth-200");
  EXPECT_EQ(job.opt.arch.W, 50u) << "defaults.arch must flow through";
  EXPECT_FALSE(job.opt.route.timing_driven);
  EXPECT_EQ(job.opt.timing_backend, "cmos");
}

TEST(JobFromJson, RejectsInvalidSpecs) {
  ServeOptions defaults;
  EXPECT_THROW(job_from_json(parse_json_object(R"({"op":"flow"})"), defaults),
               std::runtime_error);
  EXPECT_THROW(
      job_from_json(parse_json_object(R"({"op":"flow","synth_luts":0})"),
                    defaults),
      std::runtime_error);
  EXPECT_THROW(
      job_from_json(
          parse_json_object(R"({"op":"flow","benchmark":"tseng","w":1})"),
          defaults),
      std::runtime_error);
  EXPECT_THROW(job_from_json(parse_json_object(
                                 R"({"op":"flow","benchmark":"tseng",)"
                                 R"("variant":"ecl"})"),
                             defaults),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Scheduler.

TEST(JobScheduler, RunsJobsAndCounts) {
  ArtifactCache cache;
  JobScheduler sched(cache, 2);
  EXPECT_EQ(sched.workers(), 2u);

  FlowJob job;
  job.name = "tseng";
  job.netlist = generate_benchmark("tseng");
  job.opt.arch.W = 64;
  std::future<FlowJobResult> f1 = sched.submit(job);
  std::future<FlowJobResult> f2 = sched.submit(std::move(job));

  const FlowJobResult r1 = f1.get();
  const FlowJobResult r2 = f2.get();
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r1.tree_checksum, r2.tree_checksum)
      << "same job spec must give an identical routing";
  EXPECT_EQ(r1.w, 64u);
  EXPECT_GT(r1.route_iterations, 0u);
  EXPECT_GT(r1.wall_s, 0.0);

  const JobScheduler::Counters c = sched.counters();
  EXPECT_EQ(c.submitted, 2u);
  EXPECT_EQ(c.completed, 2u);
  EXPECT_EQ(c.failed, 0u);
  // Both jobs share one fabric: one build per artifact, reuse for the
  // rest (lookahead + RR graph at minimum).
  const ArtifactCache::Stats s = cache.stats();
  EXPECT_GE(s.hits + s.single_flight_waits, 1u);
}

TEST(JobScheduler, FlowFailureIsAResultNotACrash) {
  ArtifactCache cache;
  JobScheduler sched(cache, 1);
  FlowJob job;
  job.name = "unroutable";
  job.netlist = generate_benchmark("tseng");
  job.opt.arch.W = 2;  // far below Wmin — router must give up
  const FlowJobResult r = sched.submit(std::move(job)).get();
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(sched.counters().failed, 1u);
}

// ---------------------------------------------------------------------
// Socket round-trip.

class LineClient {
 public:
  explicit LineClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    const std::string out = line + "\n";
    ASSERT_EQ(::send(fd_, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
  }

  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

TEST(ServeServer, SocketRoundTrip) {
  ServeOptions opt;
  opt.port = 0;  // ephemeral
  opt.workers = 2;
  ServeServer server(opt);
  ASSERT_GT(server.port(), 0);
  std::thread runner([&] { server.run(); });

  {
    LineClient client(server.port());
    // Pipelined: both jobs land on the scheduler before either response
    // is read; responses must come back in request order.
    client.send_line(
        R"({"op":"flow","id":1,"benchmark":"tseng","w":64,"seed":1})");
    client.send_line(
        R"({"op":"flow","id":2,"benchmark":"tseng","w":64,"seed":2})");
    client.send_line(R"({"op":"bogus","id":3})");
    client.send_line("{malformed");

    const JsonObject r1 = parse_json_object(client.recv_line());
    EXPECT_EQ(r1.get_number("id"), 1.0);
    EXPECT_TRUE(r1.get_bool("ok"));
    EXPECT_EQ(r1.get_number("w"), 64.0);
    EXPECT_EQ(r1.get_string("tree_checksum").substr(0, 2), "0x");

    const JsonObject r2 = parse_json_object(client.recv_line());
    EXPECT_EQ(r2.get_number("id"), 2.0);
    EXPECT_TRUE(r2.get_bool("ok"));
    EXPECT_NE(r2.get_string("tree_checksum"), r1.get_string("tree_checksum"))
        << "different placement seeds should route differently";

    const JsonObject r3 = parse_json_object(client.recv_line());
    EXPECT_EQ(r3.get_number("id"), 3.0);
    EXPECT_FALSE(r3.get_bool("ok", true));

    const JsonObject r4 = parse_json_object(client.recv_line());
    EXPECT_FALSE(r4.get_bool("ok", true))
        << "malformed request must error, not kill the connection";

    client.send_line(R"({"op":"stats"})");
    const JsonObject st = parse_json_object(client.recv_line());
    EXPECT_TRUE(st.get_bool("ok"));
    EXPECT_EQ(st.get_number("jobs_completed"), 2.0);
    EXPECT_GE(st.get_number("cache_misses"), 1.0);
    EXPECT_GE(st.get_number("cache_hits") +
                  st.get_number("cache_single_flight_waits"),
              1.0)
        << "second tseng job must reuse the first one's artifacts";
    EXPECT_GT(st.get_number("cache_resident_bytes"), 0.0);

    client.send_line(R"({"op":"shutdown","id":9})");
    const JsonObject bye = parse_json_object(client.recv_line());
    EXPECT_EQ(bye.get_number("id"), 9.0);
    EXPECT_TRUE(bye.get_bool("shutting_down"));
  }
  runner.join();
}

TEST(ServeServer, HandleRequestLineIsTheSynchronousPath) {
  ServeOptions opt;
  opt.port = 0;
  opt.workers = 1;
  ServeServer server(opt);

  const JsonObject r = parse_json_object(server.handle_request_line(
      R"({"op":"flow","benchmark":"tseng","w":64})"));
  EXPECT_TRUE(r.get_bool("ok"));
  EXPECT_EQ(r.get_string("name"), "tseng");

  const JsonObject e =
      parse_json_object(server.handle_request_line(R"({"op":"nope"})"));
  EXPECT_FALSE(e.get_bool("ok", true));
  server.shutdown();
}

}  // namespace
}  // namespace nemfpga
