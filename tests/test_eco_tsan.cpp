// ThreadSanitizer coverage for ECO reroutes on the shared pool: an
// EcoFlow session whose seeded route_incremental sessions run the
// net-parallel (batched) scheduler with 8 workers. Workers search against
// an immutable cost snapshot and commit serially, and the ECO layers
// around them (packing refresh, splice, local re-place, cached-delay STA)
// are strictly serial — so the whole replay must be bit-identical at 1, 2
// and 8 threads. Under -DNF_TSAN=ON this certifies the no-race contract;
// in a plain build it is a fast determinism smoke. Matches the
// test_*_tsan pattern (test_route_tsan, test_place_tsan).
#include <gtest/gtest.h>

#include <vector>

#include "flow/eco.hpp"
#include "netlist/mcnc.hpp"
#include "util/thread_pool.hpp"
#include "verify/oracles.hpp"

namespace nemfpga {
namespace {

/// A deterministic three-delta edit session: pin retargets on the first
/// wide LUT, an explicit block move to the first free core site, and a
/// swap of two logic blocks. Derived from the flow state, so every
/// thread-count replay sees identical deltas.
std::vector<NetlistDelta> session_deltas(const EcoFlow& flow) {
  std::vector<NetlistDelta> deltas;
  const Netlist& nl = flow.netlist();

  BlockId lut = kInvalidId;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    if (nl.block(b).type == BlockType::kLut &&
        nl.block(b).inputs.size() >= 2) {
      lut = b;
      break;
    }
  }
  if (lut != kInvalidId) {
    NetlistDelta d;
    const NetId cur = nl.block(lut).inputs[0];
    d.ops.push_back(EcoOp::retarget(lut, 0, cur == 0 ? 1 : 0));
    d.ops.push_back(EcoOp::retarget(lut, 1, cur));
    deltas.push_back(std::move(d));
  }

  for (std::size_t y = 1; y <= flow.ny(); ++y) {
    for (std::size_t x = 1; x <= flow.nx(); ++x) {
      bool occ = false;
      for (const BlockLoc& l : flow.placement().locs) {
        occ = occ || (l.x == x && l.y == y && l.sub == 0);
      }
      if (!occ) {
        NetlistDelta d;
        d.ops.push_back(EcoOp::move_block(0, x, y, 0));
        deltas.push_back(std::move(d));
        y = flow.ny() + 1;  // done
        break;
      }
    }
  }

  if (flow.packing().clusters.size() >= 2) {
    NetlistDelta d;
    d.ops.push_back(EcoOp::swap_blocks(0, 1));
    deltas.push_back(std::move(d));
  }
  return deltas;
}

TEST(EcoTsan, ConcurrentRerouteIsRaceFreeAndThreadCountInvariant) {
  const auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    ThreadPool::ScopedUse use(pool);
    EcoOptions opt;
    opt.arch.W = 48;
    opt.route.net_parallel = true;
    opt.place.inner_num = 0.3;
    EcoFlow flow(generate_benchmark("tseng"), opt);
    EXPECT_TRUE(flow.routed());
    // The base compile already ran concurrent batches on the pool.
    EXPECT_GT(flow.routing().counters.batches, 0u);

    struct Out {
      std::vector<EcoStatus> statuses;
      std::uint64_t batches = 0;
      RoutingResult routing;
      double cp = 0.0;
    };
    Out out;
    for (const NetlistDelta& d : session_deltas(flow)) {
      const EcoResult r = flow.apply(d);
      out.statuses.push_back(r.status);
      EXPECT_EQ(r.status, EcoStatus::kOk);
      EXPECT_TRUE(r.legal);
      out.batches += flow.routing().counters.batches;
    }
    out.routing = flow.routing();
    out.cp = flow.critical_path_s();
    return out;
  };

  const auto o1 = run(1);
  const auto o2 = run(2);
  const auto o8 = run(8);

  ASSERT_EQ(o1.statuses.size(), 3u);
  for (const auto* o : {&o2, &o8}) {
    EXPECT_EQ(o->statuses, o1.statuses);
    EXPECT_EQ(o->batches, o1.batches);  // identical schedules
    const std::string d = verify::diff_routing(o->routing, o1.routing);
    EXPECT_EQ(d, "") << d;
    EXPECT_EQ(o->cp, o1.cp);  // bitwise, not tolerance
  }
}

}  // namespace
}  // namespace nemfpga
