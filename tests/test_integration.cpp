#include <gtest/gtest.h>

#include "core/study.hpp"
#include "netlist/blif.hpp"
#include "netlist/simulate.hpp"
#include "netlist/synth_gen.hpp"

namespace nemfpga {
namespace {

TEST(Integration, BlifRoundTripThroughFullFlow) {
  // Generate -> serialize to BLIF -> re-parse -> full flow -> study.
  SynthSpec spec;
  spec.name = "integ-blif";
  spec.n_luts = 200;
  spec.n_inputs = 16;
  spec.n_outputs = 12;
  spec.n_latches = 30;
  const Netlist original = generate_netlist(spec);
  const Netlist reparsed = read_blif_string(write_blif_string(original), 4);

  FlowOptions opt;
  opt.arch.W = 48;
  const auto flow = run_flow(reparsed, opt);
  EXPECT_TRUE(flow.routed());
  const auto st = run_study(flow);
  EXPECT_GT(st.baseline.critical_path, 0.0);
  EXPECT_GT(st.preferred.vs.leakage_reduction, 1.0);
}

TEST(Integration, PassThroughNetPiToPo) {
  // A primary input wired straight to a primary output must survive the
  // whole flow (IO pad to IO pad routing, STA endpoint).
  Netlist nl("passthrough");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId y = nl.add_net("y");
  nl.add_input("a", a);
  nl.add_input("b", b);
  nl.add_output("a_out", a);  // direct PI -> PO
  nl.add_lut("l", {a, b}, y, {"11 1"});
  nl.add_output("y", y);

  FlowOptions opt;
  opt.arch.W = 24;
  const auto flow = run_flow(std::move(nl), opt);
  EXPECT_TRUE(flow.routed());
  const auto m = evaluate_variant(flow, FpgaVariant::kCmosBaseline);
  EXPECT_GT(m.critical_path, 0.0);
}

TEST(Integration, ActivityInformedStudyConsistent) {
  SynthSpec spec;
  spec.name = "integ-act";
  spec.n_luts = 250;
  spec.n_inputs = 18;
  spec.n_outputs = 14;
  spec.n_latches = 40;
  const Netlist nl = generate_netlist(spec);
  ActivityOptions aopt;
  aopt.vectors = 300;
  const auto act = estimate_activity(nl);

  FlowOptions opt;
  opt.arch.W = 48;
  const auto flow = run_flow(nl, opt);

  PowerOptions sim;
  sim.net_activity = &act.net_activity;
  const auto st = run_study(flow, default_downsizes(), sim);
  // The headline shape survives realistic activities.
  EXPECT_GT(st.preferred.vs.leakage_reduction, 4.0);
  EXPECT_GT(st.preferred.vs.dynamic_reduction, 1.3);
  EXPECT_GE(st.preferred.vs.speedup, 1.0);
  // Leakage is activity-independent: must match the flat-activity study.
  const auto flat = run_study(flow);
  EXPECT_NEAR(st.baseline.leakage_power, flat.baseline.leakage_power, 1e-12);
}

TEST(Integration, SameNetlistTwoWidthsBothRoute) {
  SynthSpec spec;
  spec.name = "integ-widths";
  spec.n_luts = 150;
  spec.n_inputs = 14;
  const Netlist nl = generate_netlist(spec);
  for (std::size_t w : {48, 96}) {
    FlowOptions opt;
    opt.arch.W = w;
    const auto flow = run_flow(nl, opt);
    EXPECT_TRUE(flow.routed()) << "W=" << w;
    check_routing(flow.graph_view(), flow.placement, flow.routing);
  }
}

TEST(Integration, LatchHeavyCircuit) {
  // FF-dominated designs (like bigkey/dsip) stress BLE pairing and the
  // sequential timing paths.
  SynthSpec spec;
  spec.name = "integ-latchy";
  spec.n_luts = 200;
  spec.n_inputs = 24;
  spec.n_outputs = 20;
  spec.n_latches = 190;
  const Netlist nl = generate_netlist(spec);
  FlowOptions opt;
  opt.arch.W = 48;
  const auto flow = run_flow(nl, opt);
  const auto m = evaluate_variant(flow, FpgaVariant::kNemOptimized, 4.0);
  EXPECT_GT(m.critical_path, 0.0);
  EXPECT_GT(m.power.dyn_clocking, 0.0);
}

}  // namespace
}  // namespace nemfpga
