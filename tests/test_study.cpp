#include <gtest/gtest.h>

#include "core/study.hpp"
#include "netlist/synth_gen.hpp"

namespace nemfpga {
namespace {

const FlowResult& shared_flow() {
  static const FlowResult flow = [] {
    SynthSpec spec;
    spec.name = "study-fix";
    spec.n_luts = 400;
    spec.n_inputs = 20;
    spec.n_outputs = 16;
    spec.n_latches = 80;
    FlowOptions opt;
    opt.arch.W = 64;
    return run_flow(generate_netlist(spec), opt);
  }();
  return flow;
}

TEST(Flow, RunsEndToEnd) {
  const auto& flow = shared_flow();
  EXPECT_TRUE(flow.routed());
  EXPECT_GT(flow.packing.clusters.size(), 0u);
  EXPECT_EQ(flow.routing.trees.size(), flow.placement.nets.size());
}

TEST(Flow, UnroutableWidthThrows) {
  SynthSpec spec;
  spec.name = "study-tiny";
  spec.n_luts = 120;
  spec.n_inputs = 14;
  FlowOptions opt;
  opt.arch.W = 4;
  opt.route.max_iterations = 5;
  EXPECT_THROW(run_flow(generate_netlist(spec), opt), std::runtime_error);
}

TEST(Study, HeadlineNumbersMatchPaper) {
  // Abstract: "10-fold reduction in leakage power, 2-fold reduction in
  // dynamic power, and 2-fold reduction in area, simultaneously, without
  // application speed penalty" (bands are generous; shape matters).
  const auto st = run_study(shared_flow());
  const auto& p = st.preferred;
  EXPECT_GE(p.vs.speedup, 1.0);                 // no speed penalty
  EXPECT_GT(p.vs.dynamic_reduction, 1.5);       // ~2x
  EXPECT_LT(p.vs.dynamic_reduction, 3.5);
  EXPECT_GT(p.vs.leakage_reduction, 5.0);       // ~10x
  EXPECT_LT(p.vs.leakage_reduction, 20.0);
  EXPECT_GT(p.vs.area_reduction, 1.8);          // ~2x
  EXPECT_LT(p.vs.area_reduction, 2.6);
}

TEST(Study, NaiveMatchesChen10bShape) {
  // Sec 3.4: without the technique — ~1.8x area, ~1.3x dynamic, ~2x
  // leakage at similar speed.
  const auto st = run_study(shared_flow());
  EXPECT_GT(st.naive.vs.area_reduction, 1.5);
  EXPECT_LT(st.naive.vs.area_reduction, 2.1);
  EXPECT_GT(st.naive.vs.dynamic_reduction, 1.1);
  EXPECT_LT(st.naive.vs.dynamic_reduction, 2.2);
  EXPECT_GT(st.naive.vs.leakage_reduction, 1.5);
  EXPECT_LT(st.naive.vs.leakage_reduction, 3.0);
  EXPECT_GT(st.naive.vs.speedup, 1.0);
}

TEST(Study, TechniqueBeatsNaiveOnEveryPowerAxis) {
  const auto st = run_study(shared_flow());
  EXPECT_GT(st.preferred.vs.dynamic_reduction, st.naive.vs.dynamic_reduction);
  EXPECT_GT(st.preferred.vs.leakage_reduction, st.naive.vs.leakage_reduction);
  EXPECT_GE(st.preferred.vs.area_reduction, st.naive.vs.area_reduction);
}

TEST(Study, SweepTradesSpeedForPower) {
  const auto st = run_study(shared_flow());
  ASSERT_GE(st.sweep.size(), 3u);
  for (std::size_t i = 1; i < st.sweep.size(); ++i) {
    // Deeper downsizing: never leakier, and not meaningfully faster (the
    // area fixed point lets very shallow downsizes shrink the tile and
    // wobble the speed by a few percent).
    EXPECT_LE(st.sweep[i].vs.speedup, st.sweep[i - 1].vs.speedup * 1.05);
    EXPECT_GE(st.sweep[i].vs.leakage_reduction,
              st.sweep[i - 1].vs.leakage_reduction - 1e-9);
  }
}

TEST(Study, AreaConstantAcrossSweep) {
  // The relay layer limits the optimized tile, so downsizing the buffers
  // does not shrink the footprint further (matches the paper's single
  // area number for the whole trade-off curve).
  const auto st = run_study(shared_flow());
  for (std::size_t i = 1; i < st.sweep.size(); ++i) {
    EXPECT_NEAR(st.sweep[i].metrics.area, st.sweep[1].metrics.area,
                0.05 * st.sweep[1].metrics.area);
  }
}

TEST(Study, EvaluateVariantRequiresRoutedFlow) {
  FlowResult unrouted;
  unrouted.routing.success = false;
  EXPECT_THROW(evaluate_variant(unrouted, FpgaVariant::kCmosBaseline),
               std::invalid_argument);
}

TEST(Study, EmptySweepRejected) {
  EXPECT_THROW(run_study(shared_flow(), {}), std::invalid_argument);
}

TEST(Study, CompareRatiosSane) {
  VariantMetrics a, b;
  a.critical_path = 2.0;
  a.dynamic_power = 4.0;
  a.leakage_power = 10.0;
  a.area = 6.0;
  b.critical_path = 1.0;
  b.dynamic_power = 2.0;
  b.leakage_power = 1.0;
  b.area = 3.0;
  const auto r = compare(a, b);
  EXPECT_DOUBLE_EQ(r.speedup, 2.0);
  EXPECT_DOUBLE_EQ(r.dynamic_reduction, 2.0);
  EXPECT_DOUBLE_EQ(r.leakage_reduction, 10.0);
  EXPECT_DOUBLE_EQ(r.area_reduction, 2.0);
}

}  // namespace
}  // namespace nemfpga
