#include <gtest/gtest.h>

#include "program/crossbar.hpp"
#include "program/half_select.hpp"

namespace nemfpga {
namespace {

RelayDesign nominal() { return fabricated_relay(); }

TEST(CrossbarPattern, SetGetAndEquality) {
  CrossbarPattern p(2, 3);
  EXPECT_FALSE(p.at(1, 2));
  p.set(1, 2, true);
  EXPECT_TRUE(p.at(1, 2));
  CrossbarPattern q(2, 3);
  EXPECT_NE(p, q);
  q.set(1, 2, true);
  EXPECT_EQ(p, q);
  EXPECT_THROW(p.at(2, 0), std::out_of_range);
  EXPECT_THROW(p.set(0, 3, true), std::out_of_range);
  EXPECT_THROW(CrossbarPattern(0, 3), std::invalid_argument);
}

TEST(CrossbarPattern, AllPatternsEnumerates) {
  const auto all = CrossbarPattern::all_patterns(2, 2);
  EXPECT_EQ(all.size(), 16u);
  // All distinct.
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]);
    }
  }
  EXPECT_THROW(CrossbarPattern::all_patterns(5, 5), std::invalid_argument);
}

TEST(RelayCrossbar, StartsReleased) {
  RelayCrossbar x(2, 2, nominal());
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) EXPECT_FALSE(x.pulled_in(r, c));
  }
}

TEST(RelayCrossbar, BiasPullsInOnlyFullSelected) {
  RelayCrossbar x(2, 2, nominal());
  const double vpi = nominal().pull_in_voltage();
  // Row 0 full-select on column 1 only.
  x.apply_bias({vpi + 0.5, 0.0}, {vpi / 2.0, 0.0});
  EXPECT_FALSE(x.pulled_in(0, 0));  // sees vpi+0.5 - vpi/2 < vpi
  EXPECT_TRUE(x.pulled_in(0, 1));   // sees vpi+0.5
  EXPECT_FALSE(x.pulled_in(1, 0));
  EXPECT_FALSE(x.pulled_in(1, 1));
}

TEST(RelayCrossbar, NegativeColumnVoltageAddsToVgs) {
  // The -Vselect column drive increases |VGS| (gate minus source).
  RelayCrossbar x(1, 1, nominal());
  const double vpi = nominal().pull_in_voltage();
  x.apply_bias({vpi - 0.5}, {-1.0});  // |VGS| = vpi + 0.5
  EXPECT_TRUE(x.pulled_in(0, 0));
}

TEST(RelayCrossbar, ResetReleasesAll) {
  RelayCrossbar x(2, 2, nominal());
  const double vpi = nominal().pull_in_voltage();
  x.apply_bias({vpi + 1, vpi + 1}, {0.0, 0.0});
  EXPECT_TRUE(x.pulled_in(0, 0));
  x.reset();
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) EXPECT_FALSE(x.pulled_in(r, c));
  }
}

TEST(RelayCrossbar, StateRoundTrip) {
  RelayCrossbar x(2, 2, nominal());
  const double vpi = nominal().pull_in_voltage();
  x.apply_bias({vpi + 1, 0.0}, {0.0, 0.0});
  const auto s = x.state();
  EXPECT_TRUE(s.at(0, 0));
  EXPECT_TRUE(s.at(0, 1));
  EXPECT_FALSE(s.at(1, 0));
}

TEST(RelayCrossbar, Validation) {
  EXPECT_THROW(RelayCrossbar(0, 2, nominal()), std::invalid_argument);
  RelayCrossbar x(2, 2, nominal());
  EXPECT_THROW(x.apply_bias({0.0}, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(x.apply_bias({0.0, 0.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(x.pulled_in(2, 0), std::out_of_range);
  std::vector<RelaySample> three(3);
  EXPECT_THROW(RelayCrossbar(2, 2, three), std::invalid_argument);
}

TEST(HalfSelect, PaperVoltagesWorkForNominalDevice) {
  const RelayDesign d = nominal();
  EXPECT_TRUE(voltages_work_for(d.pull_in_voltage(), d.pull_out_voltage(),
                                paper_crossbar_voltages()));
}

TEST(HalfSelect, SolverBalancesMargins) {
  PopulationEnvelope env;
  env.vpi_min = 5.4;
  env.vpi_max = 6.8;
  env.vpo_min = 2.0;
  env.vpo_max = 3.4;
  env.min_hysteresis = 2.0;
  const auto v = solve_program_window(env);
  ASSERT_TRUE(v.has_value());
  const auto m = noise_margins(env, *v);
  EXPECT_NEAR(m.hold, m.half_select, 1e-9);
  EXPECT_NEAR(m.half_select, m.full_select, 1e-9);
  EXPECT_GT(m.worst(), 0.0);
  EXPECT_TRUE(voltages_work_for(env, *v));
}

TEST(HalfSelect, SolverInfeasibleWhenSpreadExceedsWindow) {
  PopulationEnvelope env;
  env.vpi_min = 5.0;
  env.vpi_max = 7.0;   // spread 2.0
  env.vpo_max = 4.5;   // window to vpi_min only 0.5
  const auto v = solve_program_window(env);
  EXPECT_FALSE(v.has_value());
}

TEST(HalfSelect, FeasibilityMatchesPaperCondition) {
  // Solver succeeds  <=>  (Vpi,min - Vpo,max) > (Vpi,max - Vpi,min).
  for (double vpo_max : {2.0, 3.0, 4.0, 5.0}) {
    for (double vpi_spread : {0.2, 0.8, 1.6, 3.0}) {
      PopulationEnvelope env;
      env.vpi_min = 6.0 - vpi_spread / 2.0;
      env.vpi_max = 6.0 + vpi_spread / 2.0;
      env.vpo_max = vpo_max;
      const bool expect = (env.vpi_min - env.vpo_max) > (env.vpi_max - env.vpi_min);
      EXPECT_EQ(solve_program_window(env).has_value(), expect)
          << "vpo_max=" << vpo_max << " spread=" << vpi_spread;
    }
  }
}

TEST(HalfSelect, RejectsNonPositiveLevels) {
  EXPECT_FALSE(voltages_work_for(6.0, 3.0, {0.0, 1.0}));
  EXPECT_FALSE(voltages_work_for(6.0, 3.0, {5.0, 0.0}));
  PopulationEnvelope env;
  env.vpi_min = env.vpi_max = 6.0;
  env.vpo_max = 3.0;
  EXPECT_FALSE(voltages_work_for(env, {-1.0, 1.0}));
}

TEST(HalfSelect, ProgramsEveryPatternOnNominal2x2) {
  // The paper exhaustively verified all configurations of the 2x2 crossbar.
  const auto v = paper_crossbar_voltages();
  for (const auto& target : CrossbarPattern::all_patterns(2, 2)) {
    RelayCrossbar x(2, 2, nominal());
    const auto got = program_half_select(x, target, v);
    EXPECT_EQ(got, target);
  }
}

TEST(HalfSelect, ReprogrammingOverwritesPreviousPattern) {
  const auto v = paper_crossbar_voltages();
  RelayCrossbar x(2, 2, nominal());
  CrossbarPattern diag(2, 2);
  diag.set(0, 0, true);
  diag.set(1, 1, true);
  EXPECT_EQ(program_half_select(x, diag, v), diag);
  CrossbarPattern anti(2, 2);
  anti.set(0, 1, true);
  anti.set(1, 0, true);
  EXPECT_EQ(program_half_select(x, anti, v), anti);
}

TEST(HalfSelect, ProgramsLargerArrays) {
  // An 8x8 array with per-array calibrated voltages and mild variation.
  Rng rng(21);
  VariationSpec spec = fabricated_variation();
  auto pop = sample_population(fabricated_relay(), spec, 64, rng);
  const auto env = envelope(pop);
  const auto v = solve_program_window(env);
  ASSERT_TRUE(v.has_value());

  RelayCrossbar x(8, 8, pop);
  CrossbarPattern target(8, 8);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) target.set(r, c, (r + c) % 3 == 0);
  }
  EXPECT_EQ(program_half_select(x, target, *v), target);
}

TEST(HalfSelect, PatternSizeMismatchThrows) {
  RelayCrossbar x(2, 2, nominal());
  CrossbarPattern wrong(3, 2);
  EXPECT_THROW(program_half_select(x, wrong, paper_crossbar_voltages()),
               std::invalid_argument);
}

TEST(HalfSelect, MarginsMatchFig6Structure) {
  // Build the Fig 6 population and verify the reported noise margins are
  // positive but small (the paper calls them "very small").
  Rng rng = Rng::from_string("fig6");
  const auto pop =
      sample_population(fabricated_relay(), fabricated_variation(), 100, rng);
  const auto env = envelope(pop);
  const auto v = solve_program_window(env);
  ASSERT_TRUE(v.has_value());
  const auto m = noise_margins(env, *v);
  EXPECT_GT(m.worst(), 0.0);
  EXPECT_LT(m.worst(), 0.8);  // small compared to the ~3.5 V window
}

}  // namespace
}  // namespace nemfpga
