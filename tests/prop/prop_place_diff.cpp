// Differential property for the placer's incremental bounding-box cost
// engine (place.hpp NetCostModel) against the full-rescan oracle in
// src/verify/reference_place.cpp, over randomized move sequences: per-net
// boxes and costs must agree bitwise after every commit, the incremental
// and naive kernels must produce bit-identical deltas, and the tracked
// total must stay within 1e-9 relative of a from-scratch recompute. Plus
// whole-placer properties: every randomized configuration (speculative
// batches, directed generators, timing-driven second anneal) yields a
// legal placement with a consistent reported cost, and batch-mode
// placements are bit-identical at 1, 2 and 8 threads.
#include <gtest/gtest.h>

#include <vector>

#include "place/place.hpp"
#include "util/thread_pool.hpp"
#include "verify/generators.hpp"
#include "verify/oracles.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

void run_cost_sequence(Rng& rng) {
  DesignCase c = gen_design_case(rng);
  c.place_batch = 0;  // the move sequence below drives the model directly
  c.place_timing = false;
  const BuiltDesign d = build_design(c);
  if (d.pl.nets.empty()) return;

  const std::vector<PlacedNet>& nets = d.pl.nets;
  const std::size_t n_blocks = d.pl.locs.size();
  NetCostModel model(&nets, n_blocks);
  std::vector<double> w(nets.size(), 1.0);
  if (rng.chance(0.5)) {
    for (auto& x : w) x = 1.0 + 4.0 * rng.uniform();
  }
  model.set_weights(w);
  std::vector<BlockLoc> locs = d.pl.locs;
  model.rebuild(locs);
  prop_require_close(model.total_cost(),
                     reference_placement_cost(nets, w, locs), 1e-9,
                     "rebuild total vs full rescan");

  NetCostModel::Pending pend, pend_naive;
  const std::size_t moves = 40 + rng.uniform_int(160);
  for (std::size_t m = 0; m < moves; ++m) {
    const std::size_t a = rng.uniform_int(n_blocks);
    const BlockLoc old_a = locs[a];
    BlockLoc new_a;
    new_a.x = rng.uniform_int(d.nx + 2);
    new_a.y = rng.uniform_int(d.ny + 2);
    new_a.sub = old_a.sub;
    std::size_t b = NetCostModel::kNoBlock;
    BlockLoc new_b;
    if (rng.chance(0.5)) {
      const std::size_t cand = rng.uniform_int(n_blocks);
      if (cand != a) {
        b = cand;
        // Usually a swap (b takes a's old site); sometimes an unrelated
        // second move — the model supports both.
        if (rng.chance(0.7)) {
          new_b = old_a;
        } else {
          new_b.x = rng.uniform_int(d.nx + 2);
          new_b.y = rng.uniform_int(d.ny + 2);
          new_b.sub = locs[b].sub;
        }
      }
    }

    pend.clear();
    pend_naive.clear();
    const double delta = model.propose(locs, a, new_a, b, new_b, pend);
    const double delta_naive =
        model.propose_naive(locs, a, new_a, b, new_b, pend_naive);
    prop_require(delta == delta_naive,
                 "incremental and naive kernels disagree on the delta");

    if (rng.chance(0.3)) continue;  // rejected move: nothing to undo

    model.commit(pend);
    locs[a] = new_a;
    if (b != NetCostModel::kNoBlock) locs[b] = new_b;

    for (const auto& pn : pend.nets) {
      const ReferenceNetBox ref = reference_net_box(nets[pn.net], locs);
      const NetCostModel::Box& box = model.box(pn.net);
      prop_require(box.x_lo == ref.x_lo && box.x_hi == ref.x_hi &&
                       box.y_lo == ref.y_lo && box.y_hi == ref.y_hi,
                   "committed box disagrees with full rescan");
      prop_require(
          box.cost == reference_net_cost(nets[pn.net], w[pn.net], locs),
          "committed net cost is not bit-identical to the oracle");
    }
    prop_require_close(model.total_cost(),
                       reference_placement_cost(nets, w, locs), 1e-9,
                       "tracked total drifted from the full rescan");
  }
}

TEST(PropPlaceDiff, IncrementalCostMatchesFullRescan) {
  const PropConfig cfg = PropConfig::from_env(200);
  const PropResult res =
      check_seeds("place_cost_diff", cfg, run_cost_sequence);
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 200u);
}

void run_place_case(Rng& rng) {
  const DesignCase c = gen_design_case(rng);
  const BuiltDesign d = build_design(c);
  check_placement(d.pk, d.arch, d.pl);  // throws on an illegal placement
  prop_require_close(d.pl.final_cost, placement_cost(d.pl), 1e-9,
                     "final_cost vs placement_cost");
  if (!c.place_timing) {
    prop_require(d.pl.final_weighted_cost == d.pl.final_cost,
                 "weighted cost must equal unweighted without timing");
  }
  prop_require(d.pl.counters.proposed >= d.pl.counters.accepted,
               "accepted moves exceed proposals");
}

TEST(PropPlaceDiff, RandomConfigsPlaceLegallyWithConsistentCost) {
  const PropConfig cfg = PropConfig::from_env(100);
  const PropResult res = check_seeds("place_legal", cfg, run_place_case);
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 100u);
}

TEST(PropPlaceDiff, BatchPlacementIsThreadCountInvariant) {
  ThreadPool p1(1), p2(2), p8(8);
  const PropConfig cfg = PropConfig::from_env(25);
  const PropResult res = check_seeds("place_threads", cfg, [&](Rng& rng) {
    DesignCase c = gen_design_case(rng);
    c.place_batch = 2 + rng.uniform_int(31);
    auto run = [&](ThreadPool& p) {
      ThreadPool::ScopedUse use(p);
      return build_design(c).pl;
    };
    const Placement a = run(p1);
    const Placement b = run(p2);
    const Placement d = run(p8);
    for (std::size_t i = 0; i < a.locs.size(); ++i) {
      prop_require(a.locs[i].x == b.locs[i].x && a.locs[i].y == b.locs[i].y &&
                       a.locs[i].sub == b.locs[i].sub,
                   "1-thread vs 2-thread placement diverged");
      prop_require(a.locs[i].x == d.locs[i].x && a.locs[i].y == d.locs[i].y &&
                       a.locs[i].sub == d.locs[i].sub,
                   "1-thread vs 8-thread placement diverged");
    }
    prop_require(a.final_cost == b.final_cost && a.final_cost == d.final_cost,
                 "final cost diverged across thread counts");
    prop_require(a.counters.accepted == b.counters.accepted &&
                     a.counters.accepted == d.counters.accepted &&
                     a.counters.conflicts == b.counters.conflicts &&
                     a.counters.conflicts == d.counters.conflicts &&
                     a.counters.replays == b.counters.replays &&
                     a.counters.replays == d.counters.replays,
                 "work counters diverged across thread counts");
  });
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 25u);
}

}  // namespace
}  // namespace nemfpga::verify
