// Differential property: the optimized, allocation-free PathFinder
// (route_all) must agree bit-for-bit with the naive reference router
// (verify::reference_route_all) — same trees, same iteration count, same
// overuse and wire census — over hundreds of randomized small designs
// spanning both rip-up modes, varying A* weights and bounding boxes.
#include <gtest/gtest.h>

#include "arch/rr_graph.hpp"
#include "route/route.hpp"
#include "verify/generators.hpp"
#include "verify/oracles.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

TEST(PropRouteDiff, OptimizedMatchesReferenceBitForBit) {
  const PropConfig cfg = PropConfig::from_env(200);
  const PropResult res = check(
      "route_diff", cfg, gen_design_case,
      [](const DesignCase& c) {
        const BuiltDesign d = build_design(c);
        const RrGraph g(d.arch, d.nx, d.ny);
        const RoutingResult fast = route_all(g, d.pl, c.route);
        const RoutingResult ref = reference_route_all(g, d.pl, c.route);
        const std::string diff = diff_routing(fast, ref);
        prop_require(diff.empty(), "route_all vs reference: " + diff);
        // When the routing succeeded it must also be legal.
        if (fast.success) check_routing(g, d.pl, fast);
      },
      shrink_design_case);
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 200u);
}

}  // namespace
}  // namespace nemfpga::verify
