// Differential property: the optimized, allocation-free PathFinder
// (route_all) must agree bit-for-bit with the naive reference router
// (verify::reference_route_all) — same trees, same iteration count, same
// overuse and wire census — over hundreds of randomized small designs
// spanning both rip-up modes, varying A* weights and bounding boxes, both
// RR backends (the production router on the case's backend, the reference
// always on the stored-adjacency graph — so implicit-backend cases also
// prove cross-backend bit-identity end-to-end) and the region-partitioned
// scheduler.
#include <gtest/gtest.h>

#include <memory>

#include "arch/rr_graph.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"
#include "util/thread_pool.hpp"
#include "verify/generators.hpp"
#include "verify/oracles.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

TEST(PropRouteDiff, OptimizedMatchesReferenceBitForBit) {
  const PropConfig cfg = PropConfig::from_env(200);
  const PropResult res = check(
      "route_diff", cfg, gen_design_case,
      [](const DesignCase& c) {
        const BuiltDesign d = build_design(c);
        const RrGraph eg(d.arch, d.nx, d.ny);
        const std::unique_ptr<ImplicitRrGraph> ig =
            c.route.rr_backend == RrBackend::kImplicit
                ? std::make_unique<ImplicitRrGraph>(d.arch, d.nx, d.ny)
                : nullptr;
        // Production router on the case's backend; reference always on
        // the explicit graph.
        const RrGraphView g = ig ? RrGraphView(*ig) : RrGraphView(eg);
        // Timing-driven cases pair the production incremental STA with
        // the naive full-recompute reference hook (one instance per
        // router — hooks are stateful), so the diff below also proves the
        // two timing implementations steer both routers identically.
        const ElectricalView view =
            make_view(d.arch, FpgaVariant::kCmosBaseline);
        std::unique_ptr<RouterTimingHook> fast_hook, ref_hook;
        RouteOptions fast_opt = c.route, ref_opt = c.route;
        if (c.route.timing_driven) {
          fast_hook = make_incremental_sta(d.nl, d.pk, d.pl, g, view,
                                           c.route.criticality_exp,
                                           c.route.max_criticality);
          ref_hook = make_reference_sta(d.nl, d.pk, d.pl, eg, view,
                                        c.route.criticality_exp,
                                        c.route.max_criticality);
          fast_opt.timing_hook = fast_hook.get();
          ref_opt.timing_hook = ref_hook.get();
        }
        const RoutingResult fast = route_all(g, d.pl, fast_opt);
        const RoutingResult ref = reference_route_all(eg, d.pl, ref_opt);
        const std::string diff = diff_routing(fast, ref);
        prop_require(diff.empty(), "route_all vs reference: " + diff);
        // When the routing succeeded it must also be legal.
        if (fast.success) check_routing(g, d.pl, fast);
        if (fast.success && ig) check_routing(RrGraphView(eg), d.pl, fast);
      },
      shrink_design_case);
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 200u);
}

// The deterministic-parallelism contract, as a property: with
// net_parallel on, the batched router — or, for partition_parallel
// cases, the region-partitioned router — must produce bit-identical
// trees,
// iteration counts and work counters at 1, 2 and 8 threads — the batch
// schedule and the commit/replay order may depend only on (graph,
// placement, options). scratch_grows is the single documented exception
// (per-worker arena warm-up).
TEST(PropRouteDiff, RoutingIsThreadCountInvariant) {
  const PropConfig cfg = PropConfig::from_env(60);
  ThreadPool one(1), two(2), eight(8);
  const PropResult res = check(
      "route_threads", cfg, gen_design_case,
      [&](const DesignCase& c) {
        DesignCase pc = c;
        pc.route.net_parallel = true;  // always exercise a scheduler
        const BuiltDesign d = build_design(pc);
        const RrGraph eg(d.arch, d.nx, d.ny);
        const std::unique_ptr<ImplicitRrGraph> ig =
            pc.route.rr_backend == RrBackend::kImplicit
                ? std::make_unique<ImplicitRrGraph>(d.arch, d.nx, d.ny)
                : nullptr;
        const RrGraphView g = ig ? RrGraphView(*ig) : RrGraphView(eg);
        const ElectricalView view =
            make_view(d.arch, FpgaVariant::kCmosBaseline);
        auto run = [&](ThreadPool& pool) {
          ThreadPool::ScopedUse use(pool);
          // Fresh hook per run: a hook instance serves one route_all.
          std::unique_ptr<RouterTimingHook> hook;
          RouteOptions ropt = pc.route;
          if (ropt.timing_driven) {
            hook = make_incremental_sta(d.nl, d.pk, d.pl, g, view,
                                        ropt.criticality_exp,
                                        ropt.max_criticality);
            ropt.timing_hook = hook.get();
          }
          return route_all(g, d.pl, ropt);
        };
        const RoutingResult r1 = run(one);
        const RoutingResult r2 = run(two);
        const RoutingResult r8 = run(eight);
        const std::string d2 = diff_routing(r2, r1);
        prop_require(d2.empty(), "2 threads vs 1: " + d2);
        const std::string d8 = diff_routing(r8, r1);
        prop_require(d8.empty(), "8 threads vs 1: " + d8);
        for (const RoutingResult* r : {&r2, &r8}) {
          prop_require(r->counters.heap_pushes == r1.counters.heap_pushes,
                       "heap_pushes vary with thread count");
          prop_require(
              r->counters.nodes_expanded == r1.counters.nodes_expanded,
              "nodes_expanded vary with thread count");
          prop_require(r->counters.batches == r1.counters.batches,
                       "batches vary with thread count");
          prop_require(
              r->counters.conflict_replays == r1.counters.conflict_replays,
              "conflict_replays vary with thread count");
        }
      },
      shrink_design_case);
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 60u);
}

}  // namespace
}  // namespace nemfpga::verify
