// Properties of the half-select programming scheme (paper Sec 2.3) over
// random varied relay populations:
//   - solve_program_window succeeds exactly when the balanced-window
//     margin (2 Vpi,min - Vpo,max - Vpi,max)/4 is positive;
//   - a solved window satisfies every relay in the envelope it was solved
//     from, with all three noise margins equal;
//   - programming any pattern on that population's crossbar reads back
//     exactly the target;
//   - feasibility (min hysteresis > Vpi spread) is necessary for a window.
#include <gtest/gtest.h>

#include <cmath>

#include "program/half_select.hpp"
#include "verify/generators.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

TEST(PropHalfSelect, WindowSolvingAndProgrammingOverVariedPopulations) {
  const PropConfig cfg = PropConfig::from_env(200);
  const PropResult res = check_seeds("halfselect", cfg, [](Rng& rng) {
    const RelayDesign nominal = gen_relay_design(rng);
    const VariationSpec spec = gen_variation_spec(rng);
    const std::size_t rows = 1 + rng.uniform_int(5);
    const std::size_t cols = 1 + rng.uniform_int(5);
    auto pop = sample_population(nominal, spec, rows * cols, rng);
    const PopulationEnvelope env = envelope(pop);

    const double m =
        (2.0 * env.vpi_min - env.vpo_max - env.vpi_max) / 4.0;
    const auto v = solve_program_window(env);
    prop_require(v.has_value() == (m > 0.0),
                 "window solvability disagrees with balanced-margin sign");
    if (!v) return;

    // A window implies feasibility (the converse does not hold).
    prop_require(half_select_feasible(env),
                 "window exists but population reported infeasible");
    prop_require(voltages_work_for(env, *v),
                 "solved window fails its own envelope");
    const NoiseMargins nm = noise_margins(env, *v);
    prop_require(nm.worst() > 0.0, "non-positive noise margin");
    prop_require_close(nm.hold, nm.half_select, 1e-9, "hold vs half margins");
    prop_require_close(nm.hold, nm.full_select, 1e-9, "hold vs full margins");
    for (const auto& s : pop) {
      prop_require(voltages_work_for(s.vpi, s.vpo, *v),
                   "envelope window fails an individual relay");
    }

    // The window programs arbitrary patterns on this exact population.
    RelayCrossbar xbar(rows, cols, pop);
    for (int k = 0; k < 3; ++k) {
      const CrossbarPattern target =
          gen_pattern(rng, rows, cols, 0.1 + 0.3 * k);
      const CrossbarPattern got = program_half_select(xbar, target, *v);
      prop_require(got == target, "programmed pattern != target");
    }
  });
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 200u);
}

}  // namespace
}  // namespace nemfpga::verify
