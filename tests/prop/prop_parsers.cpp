// Parser properties: BLIF and placement serialization round-trips are
// stable, line continuations are token separators (the regression class
// the fuzz harness surfaced), and malformed inputs fail with a clean
// exception rather than crashing or being silently accepted.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "netlist/blif.hpp"
#include "netlist/mcnc.hpp"
#include "place/place_io.hpp"
#include "verify/generators.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

/// Replace some single spaces with "\<newline>" continuations — a legal
/// rewrite that must not change what the file means.
std::string inject_continuations(const std::string& text, Rng& rng) {
  std::string out;
  out.reserve(text.size() + 16);
  for (char ch : text) {
    if (ch == ' ' && rng.chance(0.25)) {
      out += "\\\n";
    } else {
      out += ch;
    }
  }
  return out;
}

TEST(PropParsers, BlifRoundTripIsStable) {
  const PropConfig cfg = PropConfig::from_env(200);
  const PropResult res = check_seeds("blif_roundtrip", cfg, [](Rng& rng) {
    const std::string text = gen_blif_text(rng);
    const Netlist nl = read_blif_string(text);
    const std::string again = write_blif_string(nl);
    prop_require(text == again, "write(read(write(nl))) != write(nl)");

    // Continuations anywhere a space was: same netlist.
    Rng mut = rng;
    const std::string folded = inject_continuations(text, mut);
    const Netlist nl2 = read_blif_string(folded);
    prop_require(write_blif_string(nl2) == text,
                 "line continuation changed the parsed netlist");
  });
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 200u);
}

TEST(PropParsers, PlacementRoundTripIsStable) {
  const PropConfig cfg = PropConfig::from_env(200);
  const PropResult res = check_seeds("placement_roundtrip", cfg,
                                     [](Rng& rng) {
    std::size_t blocks = 0;
    const std::string text = gen_placement_text(rng, blocks);
    const Placement pl = read_placement_string(text, blocks);
    prop_require(write_placement_string(pl) == text,
                 "placement round-trip not stable");
  });
  EXPECT_TRUE(res.ok()) << res.report();
}

TEST(PropParsers, TruncatedBlifAlwaysThrowsCleanly) {
  const PropConfig cfg = PropConfig::from_env(200);
  const PropResult res = check_seeds("blif_truncation", cfg, [](Rng& rng) {
    const std::string text = gen_blif_text(rng);
    // Any strict prefix either parses (only when it happens to stay
    // well-formed) or throws std::exception — never anything else.
    const std::size_t cut = rng.uniform_int(text.size());
    try {
      (void)read_blif_string(text.substr(0, cut));
    } catch (const std::exception&) {
      // expected failure mode
    }
  });
  EXPECT_TRUE(res.ok()) << res.report();
}

TEST(PropParsers, UnknownBenchmarkNamesThrowCleanly) {
  const PropConfig cfg = PropConfig::from_env(200);
  const PropResult res = check_seeds("mcnc_lookup", cfg, [](Rng& rng) {
    std::string name;
    const std::size_t len = rng.uniform_int(12);
    for (std::size_t i = 0; i < len; ++i) {
      name += static_cast<char>(32 + rng.uniform_int(95));
    }
    try {
      const auto& info = benchmark_info(name);
      prop_require(info.name == name, "lookup returned wrong entry");
    } catch (const std::exception&) {
      // expected for non-catalog names
    }
  });
  EXPECT_TRUE(res.ok()) << res.report();
}

TEST(PropParsers, NegativeAndMalformedPlacementNumbersRejected) {
  // Directed cases for the strict numeric validation (these used to wrap
  // through unsigned stream extraction or escape as std::invalid_argument).
  EXPECT_THROW(read_placement_string(
                   "Array size: -1 x -1 logic blocks\nb0\t1\t1\t0\n", 1),
               std::runtime_error);
  EXPECT_THROW(read_placement_string(
                   "Array size: 4 x 4 logic blocks\nb0\t-2\t1\t0\n", 1),
               std::runtime_error);
  EXPECT_THROW(read_placement_string(
                   "Array size: 4 x 4 logic blocks\nbX\t1\t1\t0\n", 1),
               std::runtime_error);
  EXPECT_THROW(
      read_placement_string(
          "Array size: 4 x 4 logic blocks\n"
          "b99999999999999999999999999\t1\t1\t0\n",
          1),
      std::runtime_error);
}

}  // namespace
}  // namespace nemfpga::verify
