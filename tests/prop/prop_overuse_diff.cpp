// Differential property for the incremental OveruseTracker against the
// full-rescan ReferenceOveruse, over random inc/dec operation sequences —
// plus the harness's own canary: a deliberately off-by-one tracker must be
// caught by the same property, proving the differential test has teeth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "route/overuse.hpp"
#include "verify/oracles.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

/// Drive `tracker` and the reference through one random operation
/// sequence, checking agreement after every step. `Tracker` needs
/// inc/dec/occ/overused/overused_count.
template <typename Tracker>
void run_sequence(Rng& rng, bool check_list) {
  const std::size_t n = 1 + rng.uniform_int(64);
  std::vector<std::uint16_t> cap(n);
  for (auto& c : cap) {
    c = static_cast<std::uint16_t>(rng.uniform_int(4));  // 0..3, 0 legal
  }
  Tracker tracker(cap);
  ReferenceOveruse ref(cap);
  std::vector<std::uint32_t> occ(n, 0);  // to keep dec legal (occ > 0)

  const std::size_t ops = 50 + rng.uniform_int(400);
  for (std::size_t op = 0; op < ops; ++op) {
    const std::size_t id = rng.uniform_int(n);
    if (occ[id] > 0 && rng.chance(0.4)) {
      --occ[id];
      tracker.dec(id);
      ref.dec(id);
    } else {
      ++occ[id];
      tracker.inc(id);
      ref.inc(id);
    }
    prop_require(tracker.occ(id) == ref.occ(id), "occ mismatch");
    prop_require(tracker.overused(id) == ref.overused(id),
                 "overused flag mismatch at touched node");
    prop_require(tracker.overused_count() == ref.overused_count(),
                 "overused_count mismatch: " +
                     std::to_string(tracker.overused_count()) + " vs " +
                     std::to_string(ref.overused_count()));
  }
  for (std::size_t i = 0; i < n; ++i) {
    prop_require(tracker.overused(i) == ref.overused(i),
                 "overused flag mismatch in final sweep");
  }
  if constexpr (requires(Tracker& t) { t.consistent(); }) {
    prop_require(tracker.consistent(), "tracker self-consistency");
  }
  if (check_list) {
    // for_each_overused must visit exactly the overused set, once each.
    if constexpr (requires(Tracker& t) {
                    t.for_each_overused([](RrNodeId, int) {});
                  }) {
      std::vector<std::size_t> visited;
      tracker.for_each_overused([&](RrNodeId id, int over) {
        prop_require(over == static_cast<int>(ref.occ(id)) -
                                 static_cast<int>(cap[id]),
                     "for_each_overused wrong overuse amount");
        visited.push_back(id);
      });
      std::sort(visited.begin(), visited.end());
      prop_require(std::adjacent_find(visited.begin(), visited.end()) ==
                       visited.end(),
                   "for_each_overused visited a node twice");
      prop_require(visited == ref.overused_nodes(),
                   "for_each_overused visited set != rescan set");
    }
  }
}

TEST(PropOveruseDiff, IncrementalMatchesFullRescan) {
  const PropConfig cfg = PropConfig::from_env(300);
  const PropResult res = check_seeds("overuse_diff", cfg, [](Rng& rng) {
    run_sequence<OveruseTracker>(rng, /*check_list=*/true);
  });
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 300u);
}

/// Canary: a replica tracker with the classic off-by-one (">= cap"
/// instead of "> cap") in the overuse predicate. The differential
/// property must flag it — if this test ever observes the canary passing,
/// the harness has lost its teeth.
class BuggyTracker {
 public:
  explicit BuggyTracker(std::vector<std::uint16_t> cap)
      : cap_(std::move(cap)), occ_(cap_.size(), 0) {}
  void inc(std::size_t id) { ++occ_[id]; }
  void dec(std::size_t id) { --occ_[id]; }
  std::uint16_t occ(std::size_t id) const { return occ_[id]; }
  bool overused(std::size_t id) const { return occ_[id] >= cap_[id]; }
  std::size_t overused_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < occ_.size(); ++i) {
      if (overused(i)) ++n;
    }
    return n;
  }

 private:
  std::vector<std::uint16_t> cap_;
  std::vector<std::uint16_t> occ_;
};

TEST(PropOveruseDiff, CanaryOffByOneIsCaught) {
  PropConfig cfg;  // fixed seed: the canary must be caught deterministically
  cfg.cases = 50;
  const PropResult res = check_seeds("overuse_canary", cfg, [](Rng& rng) {
    run_sequence<BuggyTracker>(rng, /*check_list=*/false);
  });
  ASSERT_FALSE(res.ok())
      << "injected off-by-one overuse bug was NOT detected — the "
         "differential harness is broken";
  EXPECT_NE(res.message.find("mismatch"), std::string::npos) << res.message;
}

}  // namespace
}  // namespace nemfpga::verify
