// Differential property for the artifact cache and the concurrent flow
// scheduler (ISSUE 9): a flow run through the shared content-addressed
// cache — cold (this flow builds the artifacts) or warm (a previous flow
// built them) — must be bit-identical to the classic self-contained
// run_flow, and randomized concurrent job mixes through JobScheduler
// must each be bit-identical to their solo flows regardless of worker
// count, submission order or cache pressure. The cache may only change
// who pays the build cost, never a single routed bit.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "netlist/synth_gen.hpp"
#include "service/artifact_cache.hpp"
#include "service/job_scheduler.hpp"
#include "verify/generators.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

FlowOptions case_options(const DesignCase& c) {
  FlowOptions opt;
  opt.arch = c.arch;
  opt.route = c.route;
  opt.place.seed = c.place_seed;
  opt.place.inner_num = c.place_inner_num;
  return opt;
}

/// The identity surface a flow is compared on: routing bits, placement
/// cost and (when timing driven) the critical path.
struct FlowFingerprint {
  bool routed = false;
  std::uint64_t checksum = 0;
  double placement_cost = 0.0;
  double critical_path_s = 0.0;
  std::size_t iterations = 0;

  static FlowFingerprint of(const FlowResult& r) {
    FlowFingerprint f;
    f.routed = r.routed();
    f.checksum = routing_tree_checksum(r.routing);
    f.placement_cost = r.placement.final_cost;
    f.critical_path_s = r.routing.critical_path_s;
    f.iterations = r.routing.iterations;
    return f;
  }
  static FlowFingerprint of(const FlowJobResult& r) {
    FlowFingerprint f;
    f.routed = r.ok;
    f.checksum = r.tree_checksum;
    f.placement_cost = r.placement_cost;
    f.critical_path_s = r.critical_path_s;
    f.iterations = r.route_iterations;
    return f;
  }
};

void require_same(const FlowFingerprint& got, const FlowFingerprint& ref,
                  const std::string& what) {
  prop_require(got.routed == ref.routed, what + ": routed mismatch");
  prop_require(got.checksum == ref.checksum,
               what + ": tree checksum mismatch");
  prop_require(got.placement_cost == ref.placement_cost,
               what + ": placement cost not bit-identical");
  prop_require(got.critical_path_s == ref.critical_path_s,
               what + ": critical path not bit-identical");
  prop_require(got.iterations == ref.iterations,
               what + ": iteration count mismatch");
}

/// Widen the case's channel enough that run_flow (fixed W, throws on
/// failure) routes reliably; the property is about artifact identity,
/// not Wmin search.
DesignCase routable(DesignCase c) {
  if (c.arch.W < 24) c.arch.W = 24;
  return c;
}

TEST(PropFlowCache, CachedFlowsAreBitIdenticalToSelfContained) {
  const PropConfig cfg = PropConfig::from_env(40);
  const PropResult res = check_seeds("flow_cache_diff", cfg, [&](Rng& rng) {
    const DesignCase c = routable(gen_design_case(rng));
    const FlowOptions opt = case_options(c);
    const Netlist nl = generate_netlist(c.spec);

    FlowFingerprint ref;
    try {
      ref = FlowFingerprint::of(run_flow(nl, opt));
    } catch (const std::runtime_error&) {
      return;  // unroutable case — nothing to compare
    }

    ArtifactCache cache;
    FlowOptions cached = opt;
    cached.artifact_cache = &cache;
    // Cold: this flow is the builder of every artifact it needs.
    require_same(FlowFingerprint::of(run_flow(nl, cached)), ref, "cold");
    const ArtifactCache::Stats after_cold = cache.stats();
    prop_require(after_cold.misses > 0, "cold flow built nothing?");
    // Warm: every artifact comes out of the cache.
    require_same(FlowFingerprint::of(run_flow(nl, cached)), ref, "warm");
    prop_require(cache.stats().misses == after_cold.misses,
                 "warm flow rebuilt an artifact (over-keying?)");
    prop_require(cache.stats().hits > after_cold.hits,
                 "warm flow never touched the cache");
  });
  EXPECT_TRUE(res.ok()) << res.report();
}

// No artifact-key aliasing across the switch-technology backend and
// switch-block pattern axes: every (backend, sb_pattern) combination
// shares ONE cache, and each must still be bit-identical to its own
// self-contained flow. An under-keyed cache would serve combo A's RR
// graph / lookahead / delay model to combo B and trip the comparison;
// the miss counter must also tick for every combination (each brings at
// least one artifact no earlier combination could have built) and then
// hold still on a warm re-run.
TEST(PropFlowCache, BackendsAndPatternsNeverAliasArtifacts) {
  const PropConfig cfg = PropConfig::from_env(8);
  const PropResult res = check_seeds("flow_cache_alias", cfg, [&](Rng& rng) {
    DesignCase c = routable(gen_design_case(rng));
    c.route.timing_driven = true;  // the delay model is the backend-keyed
                                   // artifact; exercise it every case
    c.arch.sb_pattern = SbPattern::kWilton;
    const Netlist nl = generate_netlist(c.spec);

    struct Combo {
      const char* backend;
      SbPattern pattern;
    };
    const Combo combos[] = {
        {"cmos", SbPattern::kWilton},     {"nem-opt", SbPattern::kWilton},
        {"cmos", SbPattern::kSubset},     {"rram", SbPattern::kUniversal},
        {"nem-naive", SbPattern::kCustom}};

    ArtifactCache cache;
    std::size_t prev_misses = 0;
    for (const Combo& combo : combos) {
      FlowOptions opt = case_options(c);
      opt.timing_backend = combo.backend;
      opt.arch.sb_pattern = combo.pattern;

      FlowFingerprint ref;
      try {
        ref = FlowFingerprint::of(run_flow(nl, opt));
      } catch (const std::runtime_error&) {
        continue;  // this pattern cannot route the case at this W
      }

      FlowOptions cached = opt;
      cached.artifact_cache = &cache;
      const std::string what = std::string(combo.backend) + "/" +
                               std::string(sb_pattern_name(combo.pattern));
      require_same(FlowFingerprint::of(run_flow(nl, cached)), ref, what);
      const ArtifactCache::Stats cold = cache.stats();
      prop_require(cold.misses > prev_misses,
                   what + ": no new artifact built (key aliasing?)");
      // Warm re-run of the same combination: nothing new to build.
      require_same(FlowFingerprint::of(run_flow(nl, cached)), ref,
                   what + " warm");
      prop_require(cache.stats().misses == cold.misses,
                   what + ": warm flow rebuilt an artifact (over-keying?)");
      prev_misses = cold.misses;
    }
  });
  EXPECT_TRUE(res.ok()) << res.report();
}

TEST(PropFlowCache, ConcurrentJobMixesMatchSoloFlows) {
  const PropConfig cfg = PropConfig::from_env(12);
  const PropResult res = check_seeds("flow_cache_sched", cfg, [&](Rng& rng) {
    // Draw a small family of cases: a base fabric plus mutations that
    // share it (same arch, different seeds — maximum cache contention)
    // and ones that do not (different W / timing).
    std::vector<DesignCase> cases;
    const DesignCase base = routable(gen_design_case(rng));
    cases.push_back(base);
    for (int i = 0; i < 3; ++i) {
      DesignCase m = base;
      m.place_seed = base.place_seed + 1 + rng.uniform_int(100);
      if (rng.chance(0.4)) m.arch.W = base.arch.W + 4 + rng.uniform_int(8);
      if (rng.chance(0.3)) m.route.timing_driven = !m.route.timing_driven;
      cases.push_back(m);
    }

    std::vector<FlowFingerprint> solo;
    std::vector<bool> throws;
    for (const DesignCase& c : cases) {
      try {
        solo.push_back(
            FlowFingerprint::of(run_flow(generate_netlist(c.spec),
                                         case_options(c))));
        throws.push_back(false);
      } catch (const std::runtime_error&) {
        solo.emplace_back();
        throws.push_back(true);
      }
    }

    const std::size_t workers = 1 + rng.uniform_int(7);
    // Budget coin: half the runs use a tiny cache so eviction churns
    // mid-batch; identity must hold either way.
    ArtifactCache cache(rng.chance(0.5) ? (std::size_t{1} << 16)
                                        : ArtifactCache::kDefaultMaxBytes);
    JobScheduler sched(cache, workers);
    std::vector<std::future<FlowJobResult>> futs;
    std::vector<std::size_t> order;
    for (int round = 0; round < 2; ++round) {
      for (std::size_t i = 0; i < cases.size(); ++i) {
        FlowJob job;
        job.name = "case-" + std::to_string(i);
        job.netlist = generate_netlist(cases[i].spec);
        job.opt = case_options(cases[i]);
        futs.push_back(sched.submit(std::move(job)));
        order.push_back(i);
      }
    }
    for (std::size_t j = 0; j < futs.size(); ++j) {
      const FlowJobResult got = futs[j].get();
      const std::size_t i = order[j];
      const std::string what = "workers=" + std::to_string(workers) +
                               " job#" + std::to_string(j);
      if (throws[i]) {
        prop_require(!got.ok, what + ": solo flow failed but job ok");
        continue;
      }
      prop_require(got.ok, what + ": " + got.error);
      require_same(FlowFingerprint::of(got), solo[i], what);
    }
  });
  EXPECT_TRUE(res.ok()) << res.report();
}

}  // namespace
}  // namespace nemfpga::verify
