// Differential property for the deterministic-parallelism contract: the
// thread-pool Monte-Carlo kernels (programming_yield,
// sample_population_parallel) must be bit-identical to their plain serial
// reference loops, at one thread and at eight, from the same fork point.
#include <gtest/gtest.h>

#include <cmath>

#include "program/yield.hpp"
#include "util/thread_pool.hpp"
#include "verify/generators.hpp"
#include "verify/oracles.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

void require_same_yield(const YieldResult& a, const YieldResult& b) {
  prop_require(a.trials == b.trials, "trials mismatch");
  prop_require(a.good_arrays == b.good_arrays,
               "good_arrays mismatch: " + std::to_string(a.good_arrays) +
                   " vs " + std::to_string(b.good_arrays));
  prop_require(a.mean_worst_margin == b.mean_worst_margin,
               "mean_worst_margin not bit-identical");
}

TEST(PropParallelDiff, YieldMatchesSerialReferenceAtAnyThreadCount) {
  const PropConfig cfg = PropConfig::from_env(200);
  ThreadPool wide(8);
  const PropResult res = check_seeds("yield_diff", cfg, [&](Rng& rng) {
    const RelayDesign nominal = gen_relay_design(rng);
    const VariationSpec spec = gen_variation_spec(rng);
    const std::size_t rows = 1 + rng.uniform_int(6);
    const std::size_t cols = 1 + rng.uniform_int(6);
    const std::size_t trials = 8 + rng.uniform_int(25);
    const VoltagePolicy policy = rng.chance(0.5)
                                     ? VoltagePolicy::kFixedNominal
                                     : VoltagePolicy::kPerArrayCalibrated;
    const std::uint64_t fork = rng.next_u64();

    Rng r_ref = Rng::from_stream(fork, 0);
    const YieldResult ref = reference_programming_yield(
        nominal, spec, rows, cols, trials, r_ref, policy);
    {
      ThreadPool serial(1);
      ThreadPool::ScopedUse use(serial);
      Rng r = Rng::from_stream(fork, 0);
      require_same_yield(
          programming_yield(nominal, spec, rows, cols, trials, r, policy),
          ref);
    }
    {
      ThreadPool::ScopedUse use(wide);
      Rng r = Rng::from_stream(fork, 0);
      require_same_yield(
          programming_yield(nominal, spec, rows, cols, trials, r, policy),
          ref);
    }
  });
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 200u);
}

TEST(PropParallelDiff, PopulationSamplingMatchesSerialReference) {
  const PropConfig cfg = PropConfig::from_env(200);
  ThreadPool wide(8);
  const PropResult res = check_seeds("population_diff", cfg, [&](Rng& rng) {
    const RelayDesign nominal = gen_relay_design(rng);
    const VariationSpec spec = gen_variation_spec(rng);
    const std::size_t n = rng.uniform_int(200);
    const std::uint64_t fork = rng.next_u64();

    Rng r_ref = Rng::from_stream(fork, 0);
    const auto ref =
        reference_sample_population_parallel(nominal, spec, n, r_ref);
    const auto require_same = [&](const std::vector<RelaySample>& got) {
      prop_require(got.size() == ref.size(), "population size mismatch");
      for (std::size_t i = 0; i < ref.size(); ++i) {
        prop_require(got[i].vpi == ref[i].vpi && got[i].vpo == ref[i].vpo,
                     "relay " + std::to_string(i) +
                         " voltages not bit-identical");
      }
    };
    {
      ThreadPool serial(1);
      ThreadPool::ScopedUse use(serial);
      Rng r = Rng::from_stream(fork, 0);
      require_same(sample_population_parallel(nominal, spec, n, r));
    }
    {
      ThreadPool::ScopedUse use(wide);
      Rng r = Rng::from_stream(fork, 0);
      require_same(sample_population_parallel(nominal, spec, n, r));
    }
  });
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 200u);
}

}  // namespace
}  // namespace nemfpga::verify
