// Full-flow differential property for the incremental ECO flow
// (src/flow/eco.hpp). Randomized edit streams — pin connects/disconnects/
// retargets, block moves and swaps, compounding over 1..12 deltas — replay
// through a live EcoFlow session while every applied delta is checked
// against from-scratch recomputation of the same state:
//
//   * routing stays legal (check_routing) with overuse == 0,
//   * the touched-clusters-only packing refresh matches the from-scratch
//     oracle (reference_refresh_packing) bitwise,
//   * the spliced placed-net list matches extract_placed_nets bitwise,
//   * the cached-delay CP matches a full analyze_timing to 1e-12,
//   * a rejected delta leaves netlist, placement and routing bit-identical,
//   * the final state routes from scratch and its CP sits inside a pinned
//     envelope of the freshly negotiated routing's CP,
//   * the whole replay is bit-identical at 1, 2 and 8 threads.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "flow/eco.hpp"
#include "netlist/synth_gen.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"
#include "util/thread_pool.hpp"
#include "verify/generators.hpp"
#include "verify/oracles.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

constexpr double kStaTol = 1e-12;
/// Pinned CP quality envelope: the ECO state's critical path vs a fresh
/// route_all negotiation of the identical (netlist, packing, placement).
/// Seeded reroutes keep old wires, so some drift is expected; 2x in
/// either direction bounds it while staying far from flakiness.
constexpr double kCpEnvelope = 2.0;

EcoOptions eco_options(const DesignCase& c) {
  EcoOptions o;
  o.arch = c.arch;
  o.route = c.route;
  o.place.seed = c.place_seed;
  o.place.inner_num = c.place_inner_num;
  o.place.batch_moves = c.place_batch;
  o.place.directed_moves = c.place_directed;
  o.place.timing_driven = c.place_timing;
  o.seed = c.place_seed;
  return o;
}

NetlistDelta draw_delta(const EcoCase& c, std::size_t step,
                        const EcoFlow& flow) {
  Rng erng = Rng::from_stream(c.edit_seed, step);
  return gen_eco_delta(erng, flow.netlist(), flow.packing(), flow.arch(),
                       flow.nx(), flow.ny(), flow.placement().locs);
}

std::vector<std::vector<NetId>> snapshot_pins(const Netlist& nl) {
  std::vector<std::vector<NetId>> pins;
  pins.reserve(nl.block_count());
  for (const Block& b : nl.blocks()) pins.push_back(b.inputs);
  return pins;
}

bool locs_equal(const std::vector<BlockLoc>& a,
                const std::vector<BlockLoc>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].x != b[i].x || a[i].y != b[i].y || a[i].sub != b[i].sub) {
      return false;
    }
  }
  return true;
}

void require_placed_nets_match(const std::vector<PlacedNet>& eco,
                               const std::vector<PlacedNet>& scratch,
                               const std::string& at) {
  prop_require(eco.size() == scratch.size(),
               "placed-net count " + std::to_string(eco.size()) + " vs " +
                   std::to_string(scratch.size()) + at);
  for (std::size_t i = 0; i < eco.size(); ++i) {
    prop_require(eco[i].net == scratch[i].net &&
                     eco[i].driver == scratch[i].driver &&
                     eco[i].sinks == scratch[i].sinks,
                 "placed-net slot " + std::to_string(i) +
                     " diverges from extract_placed_nets" + at);
  }
}

/// Replay one edit stream with the full per-apply differential checks.
void replay_with_checks(const EcoCase& c) {
  const EcoOptions opt = eco_options(c.design);
  EcoFlow flow(generate_netlist(c.design.spec), opt);
  if (!flow.routed()) return;  // unroutable base: vacuous case
  const ElectricalView view = make_view(opt.arch, opt.timing_backend);

  for (std::size_t step = 0; step < c.n_edits; ++step) {
    const NetlistDelta delta = draw_delta(c, step, flow);
    const std::string at =
        " (step " + std::to_string(step) + ": " + delta.describe() + ")";

    const auto pins_snap = snapshot_pins(flow.netlist());
    const std::vector<BlockLoc> locs_snap = flow.placement().locs;
    const RoutingResult route_snap = flow.routing();

    const EcoResult r = flow.apply(delta);
    switch (r.status) {
      case EcoStatus::kRejected: {
        prop_require(!r.reject_reason.empty(),
                     "rejection without a reason" + at);
        prop_require(snapshot_pins(flow.netlist()) == pins_snap,
                     "rejected delta mutated the netlist" + at);
        prop_require(locs_equal(flow.placement().locs, locs_snap),
                     "rejected delta moved a block" + at);
        const std::string dr = diff_routing(route_snap, flow.routing());
        prop_require(dr.empty(),
                     "rejected delta touched the routing: " + dr + at);
        break;
      }
      case EcoStatus::kOk: {
        prop_require(r.legal && flow.routed(),
                     "kOk without a legal routing" + at);
        check_routing(flow.graph(), flow.placement(), flow.routing());
        prop_require(flow.routing().overused_nodes == 0,
                     "overuse after a legal apply" + at);
        prop_require(r.overused_nodes == 0,
                     "EcoResult reports overuse on a legal apply" + at);

        const Packing ref =
            reference_refresh_packing(flow.netlist(), flow.packing());
        const std::string dp = diff_packing(flow.packing(), ref);
        prop_require(dp.empty(), "packing refresh diverged: " + dp + at);

        require_placed_nets_match(
            flow.placement().nets,
            extract_placed_nets(flow.netlist(), flow.packing()), at);

        prop_require(r.cycle_detected == flow.has_comb_cycle(),
                     "cycle flag disagrees with the netlist probe" + at);
        if (r.timing_valid) {
          const TimingResult full = analyze_timing(
              flow.netlist(), flow.packing(), flow.placement(), flow.graph(),
              flow.routing(), view);
          prop_require_close(flow.critical_path_s(), full.critical_path,
                             kStaTol, "cached-delay CP vs analyze_timing" + at);
        } else {
          prop_require(r.cycle_detected,
                       "timing invalid on a routed, cycle-free state" + at);
        }
        break;
      }
      case EcoStatus::kUnroutable: {
        // The fallback already re-ran route_all from scratch, so this is
        // exactly the set of states a from-scratch flow cannot route
        // either. Later edits may make the design routable again.
        prop_require(!flow.routed(), "kUnroutable with a live routing" + at);
        break;
      }
      case EcoStatus::kNoop:
        prop_fail("generator produced an empty delta" + at);
    }
  }

  // Final-state scratch comparison: a fresh route_all over the ECO's
  // exact (netlist, packing, placement) must agree on routability, and
  // the ECO routing's CP must sit inside the pinned envelope of the
  // freshly negotiated one.
  if (!flow.routed()) return;
  RouteOptions ropt = opt.route;
  std::unique_ptr<RouterTimingHook> hook;
  if (ropt.timing_driven && !flow.has_comb_cycle()) {
    hook = make_incremental_sta(flow.netlist(), flow.packing(),
                                flow.placement(), flow.graph(), view,
                                ropt.criticality_exp, ropt.max_criticality);
    ropt.timing_hook = hook.get();
  } else {
    ropt.timing_driven = false;
    ropt.timing_hook = nullptr;
  }
  const RoutingResult scratch = route_all(flow.graph(), flow.placement(), ropt);
  if (!scratch.success) return;  // seeded negotiation out-routed scratch
  check_routing(flow.graph(), flow.placement(), scratch);
  prop_require(scratch.overused_nodes == 0, "scratch route left overuse");
  if (!flow.has_comb_cycle()) {
    const TimingResult eco_t = analyze_timing(
        flow.netlist(), flow.packing(), flow.placement(), flow.graph(),
        flow.routing(), view);
    const TimingResult scr_t = analyze_timing(
        flow.netlist(), flow.packing(), flow.placement(), flow.graph(),
        scratch, view);
    if (scr_t.critical_path > 0.0 && eco_t.critical_path > 0.0) {
      const double ratio = eco_t.critical_path / scr_t.critical_path;
      prop_require(ratio <= kCpEnvelope && ratio >= 1.0 / kCpEnvelope,
                   "final CP outside the pinned envelope: ratio " +
                       std::to_string(ratio));
    }
  }
}

// The headline harness: >= 200 randomized edit streams, each apply
// differentially checked against from-scratch recomputation.
TEST(PropEcoDiff, ReplayMatchesFromScratch) {
  const PropConfig cfg = PropConfig::from_env(200);
  const PropResult res = check("eco_diff", cfg, gen_eco_case,
                               replay_with_checks, shrink_eco_case);
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 200u);
}

// The whole replay — base compile, every apply, the final state — must be
// bit-identical at 1, 2 and 8 threads: per-apply statuses, move/reroute
// counts, the final trees and the final CP (compared exactly, not to
// tolerance). Run under TSan this is also the concurrency soundness check
// for ECO reroutes on the shared pool.
TEST(PropEcoDiff, ReplayIsThreadCountInvariant) {
  const PropConfig cfg = PropConfig::from_env(40);
  ThreadPool one(1), two(2), eight(8);

  struct ReplayOut {
    std::vector<EcoStatus> statuses;
    std::vector<std::size_t> rerouted;
    RoutingResult routing;
    double cp = 0.0;
    bool routed = false;
  };

  const PropResult res = check(
      "eco_threads", cfg, gen_eco_case,
      [&](const EcoCase& c) {
        auto run = [&](ThreadPool& pool) {
          ThreadPool::ScopedUse use(pool);
          EcoOptions opt = eco_options(c.design);
          opt.route.net_parallel = true;  // always exercise the scheduler
          EcoFlow flow(generate_netlist(c.design.spec), opt);
          ReplayOut out;
          for (std::size_t step = 0; step < c.n_edits; ++step) {
            const EcoResult r = flow.apply(draw_delta(c, step, flow));
            out.statuses.push_back(r.status);
            out.rerouted.push_back(r.nets_rerouted);
          }
          out.routing = flow.routing();
          out.cp = flow.critical_path_s();
          out.routed = flow.routed();
          return out;
        };
        const ReplayOut o1 = run(one);
        const ReplayOut o2 = run(two);
        const ReplayOut o8 = run(eight);
        for (const ReplayOut* o : {&o2, &o8}) {
          prop_require(o->statuses == o1.statuses,
                       "apply statuses vary with thread count");
          prop_require(o->rerouted == o1.rerouted,
                       "reroute counts vary with thread count");
          prop_require(o->routed == o1.routed,
                       "routability varies with thread count");
          const std::string d = diff_routing(o->routing, o1.routing);
          prop_require(d.empty(), "final routing varies with threads: " + d);
          prop_require(o->cp == o1.cp,  // bitwise, not tolerance
                       "critical path varies with thread count");
        }
      },
      shrink_eco_case);
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 40u);
}

// Quality envelope, width dimension: a state the ECO session reports as
// legally routed at the session width W must actually have Wmin <= W when
// probed from scratch (find_min_channel_width re-routes the final
// placement fresh at each candidate width).
TEST(PropEcoDiff, SessionWidthBoundsWmin) {
  const PropConfig cfg = PropConfig::from_env(15);
  const PropResult res = check(
      "eco_wmin", cfg, gen_eco_case,
      [](const EcoCase& c) {
        EcoCase cc = c;
        cc.n_edits = std::min<std::size_t>(cc.n_edits, 4);  // width probes
                                                            // dominate cost
        const EcoOptions opt = eco_options(cc.design);
        EcoFlow flow(generate_netlist(cc.design.spec), opt);
        if (!flow.routed()) return;
        for (std::size_t step = 0; step < cc.n_edits; ++step) {
          (void)flow.apply(draw_delta(cc, step, flow));
        }
        if (!flow.routed()) return;
        RouteOptions ropt = opt.route;
        ropt.timing_hook = nullptr;
        ropt.lookahead = nullptr;  // width-dependent graphs: rebuild per probe
        const ChannelWidthResult w = find_min_channel_width(
            opt.arch, flow.placement(), opt.arch.W, ropt);
        prop_require(w.feasible,
                     "ECO-legal state probes as unroutable at any width");
        prop_require(w.w_min <= opt.arch.W,
                     "Wmin " + std::to_string(w.w_min) +
                         " exceeds the session width " +
                         std::to_string(opt.arch.W));
      },
      shrink_eco_case);
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 15u);
}

}  // namespace
}  // namespace nemfpga::verify
