// Differential property for the incremental STA behind the timing-driven
// router: over randomized rip-up/reroute sequences, the production
// epoch-stamped levelized hook (make_incremental_sta) must agree with the
// naive full-recompute oracle (verify::make_reference_sta) on the
// critical path, the worst slack and *every* per-connection criticality
// to 1e-12 relative — and timing-driven routing itself must stay
// bit-identical at any thread count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "arch/rr_graph.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"
#include "util/thread_pool.hpp"
#include "verify/generators.hpp"
#include "verify/oracles.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

constexpr double kTol = 1e-12;

/// Compare every query the router makes between the two hooks.
void require_hooks_agree(const RouterTimingHook& fast,
                         const RouterTimingHook& ref, const Placement& pl,
                         std::size_t round) {
  const std::string at = " (round " + std::to_string(round) + ")";
  prop_require_close(fast.critical_path(), ref.critical_path(), kTol,
                     "critical_path" + at);
  prop_require_close(fast.worst_slack(), ref.worst_slack(), kTol,
                     "worst_slack" + at);
  for (std::size_t n = 0; n < pl.nets.size(); ++n) {
    for (std::size_t j = 0; j < pl.nets[n].sinks.size(); ++j) {
      prop_require_close(fast.criticality(n, j), ref.criticality(n, j),
                         kTol,
                         "criticality(net " + std::to_string(n) + ", slot " +
                             std::to_string(j) + ")" + at);
    }
  }
}

// Randomized rip-up sequences: two legal routings of the same design give
// every net an A-tree and a B-tree; each round toggles a random subset of
// nets between them (that is exactly what a PathFinder iteration's rip-up
// set looks like to the hook) and updates both hooks with the same dirty
// list — duplicates included sometimes, as route_all can deliver after a
// conflict replay. The incremental result must match the full recompute
// after every round, including the first (all-nets) update.
TEST(PropStaIncremental, IncrementalMatchesFullRecompute) {
  const PropConfig cfg = PropConfig::from_env(40);
  const PropResult res = check_seeds("sta_incremental", cfg, [](Rng& rng) {
    DesignCase c = gen_design_case(rng);
    c.route.timing_driven = false;  // the two base routings stay untimed
    const BuiltDesign d = build_design(c);
    const RrGraph g(d.arch, d.nx, d.ny);

    const RoutingResult ra = route_all(g, d.pl, c.route);
    RouteOptions alt = c.route;
    alt.astar_factor = 0.0;  // legacy heuristic: different, equally legal
    alt.astar_fac = 1.3;
    alt.bb_margin += 2;
    const RoutingResult rb = route_all(g, d.pl, alt);
    if (!ra.success || !rb.success) return;  // unroutable case: skip

    const ElectricalView view = make_view(d.arch, FpgaVariant::kCmosBaseline);
    const double cexp = 1.0 + 0.5 * rng.uniform_int(5);
    const double mcrit = rng.chance(0.5) ? 0.99 : 0.999;
    const auto fast = make_incremental_sta(d.nl, d.pk, d.pl, g, view, cexp,
                                           mcrit);
    const auto ref = make_reference_sta(d.nl, d.pk, d.pl, g, view, cexp,
                                        mcrit);

    std::vector<RouteTree> trees = ra.trees;
    std::vector<char> uses_b(trees.size(), 0);
    std::vector<std::size_t> dirty;

    // Iteration 1: placement-seeded criticalities, no routed trees yet.
    fast->update(g, trees, dirty, 1);
    ref->update(g, trees, dirty, 1);
    for (std::size_t n = 0; n < d.pl.nets.size(); ++n) {
      for (std::size_t j = 0; j < d.pl.nets[n].sinks.size(); ++j) {
        prop_require_close(fast->criticality(n, j), ref->criticality(n, j),
                           kTol, "seed criticality(net " +
                                     std::to_string(n) + ", slot " +
                                     std::to_string(j) + ")");
      }
    }

    const std::size_t rounds = 3 + rng.uniform_int(4);
    for (std::size_t round = 0; round < rounds; ++round) {
      dirty.clear();
      if (round > 0) {  // the first real update sees an empty rip-up set
        const std::size_t flips = 1 + rng.uniform_int(trees.size());
        for (std::size_t k = 0; k < flips; ++k) {
          const std::size_t n = rng.uniform_int(trees.size());
          uses_b[n] ^= 1;
          trees[n] = uses_b[n] ? rb.trees[n] : ra.trees[n];
          dirty.push_back(n);
          if (rng.chance(0.15)) dirty.push_back(n);  // duplicate delivery
        }
      }
      fast->update(g, trees, dirty, 2 + round);
      ref->update(g, trees, dirty, 2 + round);
      require_hooks_agree(*fast, *ref, d.pl, round);
    }
  });
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 40u);
}

// Timing-driven routing at 1, 2 and 8 threads must produce bit-identical
// trees, iteration counts, critical path and STA work counters — the
// timing hook is updated on the serial orchestration path and queried
// read-only from workers, so nothing may depend on the thread count.
TEST(PropStaIncremental, TimingDrivenRoutingIsThreadCountInvariant) {
  const PropConfig cfg = PropConfig::from_env(30);
  ThreadPool one(1), two(2), eight(8);
  const PropResult res = check(
      "sta_threads", cfg, gen_design_case,
      [&](const DesignCase& c) {
        DesignCase pc = c;
        pc.route.timing_driven = true;
        pc.route.net_parallel = true;  // always exercise the scheduler
        const BuiltDesign d = build_design(pc);
        const RrGraph g(d.arch, d.nx, d.ny);
        const ElectricalView view =
            make_view(d.arch, FpgaVariant::kCmosBaseline);
        auto run = [&](ThreadPool& pool) {
          ThreadPool::ScopedUse use(pool);
          const auto hook = make_incremental_sta(d.nl, d.pk, d.pl, g, view,
                                                 pc.route.criticality_exp,
                                                 pc.route.max_criticality);
          RouteOptions ropt = pc.route;
          ropt.timing_hook = hook.get();
          return route_all(g, d.pl, ropt);
        };
        const RoutingResult r1 = run(one);
        const RoutingResult r2 = run(two);
        const RoutingResult r8 = run(eight);
        const std::string d2 = diff_routing(r2, r1);
        prop_require(d2.empty(), "2 threads vs 1: " + d2);
        const std::string d8 = diff_routing(r8, r1);
        prop_require(d8.empty(), "8 threads vs 1: " + d8);
        for (const RoutingResult* r : {&r2, &r8}) {
          prop_require(
              r->counters.sta_net_evals == r1.counters.sta_net_evals,
              "sta_net_evals vary with thread count");
          prop_require(
              r->counters.sta_block_updates == r1.counters.sta_block_updates,
              "sta_block_updates vary with thread count");
          prop_require(r->counters.heap_pushes == r1.counters.heap_pushes,
                       "heap_pushes vary with thread count");
        }
      },
      shrink_design_case);
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 30u);
}

}  // namespace
}  // namespace nemfpga::verify
