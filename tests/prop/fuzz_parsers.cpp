// Deterministic mutation-style fuzzer for the text parsers (BLIF,
// placement, benchmark-name lookup). Seeds a corpus of valid inputs, then
// applies random structure-breaking mutations — truncation, span deletion
// and duplication, token splicing, garbage bytes, bit flips — and requires
// every parse to either succeed or throw std::exception. Anything else
// (crash, leak, UB) is the sanitizer build's job to catch; the driver
// itself never aborts on a parse error.
//
// Usage: fuzz_parsers [--iters N] [--seed S]
// Registered as the `fuzz_smoke` ctest (label "fuzz"); tools/run_fuzz.sh
// wraps longer campaigns. Replay: the failing iteration index and seed are
// printed, and --seed/--iters reproduce the exact input sequence.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "netlist/blif.hpp"
#include "netlist/mcnc.hpp"
#include "place/place_io.hpp"
#include "verify/generators.hpp"

namespace nemfpga::verify {
namespace {

std::string mutate(std::string s, Rng& rng) {
  const int n_muts = 1 + static_cast<int>(rng.uniform_int(4));
  for (int m = 0; m < n_muts; ++m) {
    if (s.empty()) {
      s += static_cast<char>(rng.uniform_int(256));
      continue;
    }
    switch (rng.uniform_int(7)) {
      case 0:  // truncate
        s.resize(rng.uniform_int(s.size() + 1));
        break;
      case 1: {  // delete a span
        const std::size_t a = rng.uniform_int(s.size());
        const std::size_t len = 1 + rng.uniform_int(64);
        s.erase(a, len);
        break;
      }
      case 2: {  // duplicate a span elsewhere
        const std::size_t a = rng.uniform_int(s.size());
        const std::size_t len =
            1 + rng.uniform_int(std::min<std::size_t>(64, s.size() - a));
        const std::string span = s.substr(a, len);
        s.insert(rng.uniform_int(s.size() + 1), span);
        break;
      }
      case 3: {  // garbage bytes (full 0..255 range, incl. NUL)
        const std::size_t a = rng.uniform_int(s.size() + 1);
        std::string junk;
        const std::size_t len = 1 + rng.uniform_int(16);
        for (std::size_t i = 0; i < len; ++i) {
          junk += static_cast<char>(rng.uniform_int(256));
        }
        s.insert(a, junk);
        break;
      }
      case 4: {  // bit flip
        const std::size_t a = rng.uniform_int(s.size());
        s[a] = static_cast<char>(s[a] ^ (1 << rng.uniform_int(8)));
        break;
      }
      case 5: {  // splice: swap two halves at random token-ish boundaries
        const std::size_t a = rng.uniform_int(s.size());
        s = s.substr(a) + s.substr(0, a);
        break;
      }
      default: {  // keyword splice: inject a directive mid-stream
        static const char* kw[] = {".model", ".inputs", ".outputs",
                                   ".names", ".latch",  ".end",
                                   "\\\n",   "\t",      "Array size:"};
        s.insert(rng.uniform_int(s.size() + 1),
                 kw[rng.uniform_int(sizeof(kw) / sizeof(kw[0]))]);
        break;
      }
    }
  }
  return s;
}

int run(std::size_t iters, std::uint64_t seed) {
  // Corpus of valid inputs to mutate from.
  Rng corpus_rng = Rng::from_stream(seed, 0);
  std::vector<std::string> blifs;
  std::vector<std::pair<std::string, std::size_t>> placements;
  for (int i = 0; i < 8; ++i) {
    blifs.push_back(gen_blif_text(corpus_rng));
    std::size_t blocks = 0;
    std::string p = gen_placement_text(corpus_rng, blocks);
    placements.emplace_back(std::move(p), blocks);
  }
  blifs.push_back(".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n");
  blifs.push_back("");
  placements.emplace_back("Array size: 1 x 1 logic blocks\nb0 1 1 0\n", 1);

  std::size_t parsed_ok = 0, parse_errors = 0;
  for (std::size_t it = 0; it < iters; ++it) {
    Rng rng = Rng::from_stream(seed, it + 1);
    try {
      switch (rng.uniform_int(3)) {
        case 0: {
          const std::string in =
              mutate(blifs[rng.uniform_int(blifs.size())], rng);
          (void)read_blif_string(in, 2 + rng.uniform_int(7));
          ++parsed_ok;
          break;
        }
        case 1: {
          const auto& [text, blocks] =
              placements[rng.uniform_int(placements.size())];
          const std::string in = mutate(text, rng);
          (void)read_placement_string(in, blocks);
          ++parsed_ok;
          break;
        }
        default: {
          std::string name;
          const std::size_t len = rng.uniform_int(16);
          for (std::size_t i = 0; i < len; ++i) {
            name += static_cast<char>(rng.uniform_int(256));
          }
          (void)benchmark_info(name);
          ++parsed_ok;
          break;
        }
      }
    } catch (const std::exception&) {
      ++parse_errors;  // clean rejection — the expected outcome
    } catch (...) {
      std::fprintf(stderr,
                   "fuzz_parsers: non-std exception at iteration %zu "
                   "(replay: --seed %llu --iters %zu)\n",
                   it, static_cast<unsigned long long>(seed), it + 1);
      return 1;
    }
  }
  std::printf("fuzz_parsers: %zu iterations, %zu parsed, %zu rejected, "
              "0 crashes\n",
              iters, parsed_ok, parse_errors);
  return 0;
}

}  // namespace
}  // namespace nemfpga::verify

int main(int argc, char** argv) {
  std::size_t iters = 10000;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--iters") && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--iters N] [--seed S]\n", argv[0]);
      return 2;
    }
  }
  return nemfpga::verify::run(iters, seed);
}
