// Differential property for static timing analysis: the epoch-stamped,
// queue-based analyze_timing against the recursive map-based reference.
// Both evaluate identical arc expressions, so arrivals and the critical
// path must agree to tight floating-point tolerance across random designs
// and all three electrical variants.
#include <gtest/gtest.h>

#include <memory>

#include "arch/rr_graph.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"
#include "verify/generators.hpp"
#include "verify/oracles.hpp"
#include "verify/prop.hpp"

namespace nemfpga::verify {
namespace {

TEST(PropStaDiff, QueueTopoMatchesRecursiveReference) {
  const PropConfig cfg = PropConfig::from_env(200);
  const PropResult res = check(
      "sta_diff", cfg, gen_design_case,
      [](const DesignCase& c) {
        DesignCase rc = c;
        // STA needs a successful routing: widen the channel until the
        // design routes (deterministic in the descriptor, so shrinking
        // and replay rebuild the same routing).
        BuiltDesign d = build_design(rc);
        RoutingResult routing;
        const RrGraph* used = nullptr;
        std::unique_ptr<RrGraph> g;
        for (; rc.arch.W <= 128; rc.arch.W += 8) {
          d.arch.W = rc.arch.W;
          g = std::make_unique<RrGraph>(d.arch, d.nx, d.ny);
          routing = route_all(*g, d.pl, rc.route);
          if (routing.success) {
            used = g.get();
            break;
          }
        }
        prop_require(used != nullptr, "design unroutable even at W=128");

        for (const FpgaVariant variant :
             {FpgaVariant::kCmosBaseline, FpgaVariant::kNemNaive,
              FpgaVariant::kNemOptimized}) {
          const ElectricalView view = make_view(d.arch, variant);
          const TimingResult fast =
              analyze_timing(d.nl, d.pk, d.pl, *used, routing, view);
          const TimingResult ref =
              reference_analyze_timing(d.nl, d.pk, d.pl, *used, routing,
                                       view);
          prop_require_close(fast.critical_path, ref.critical_path, 1e-12,
                             "critical_path");
          prop_require_close(fast.geomean_net_delay, ref.geomean_net_delay,
                             1e-12, "geomean_net_delay");
          prop_require(fast.arrival.size() == ref.arrival.size(),
                       "arrival vector size");
          for (std::size_t b = 0; b < fast.arrival.size(); ++b) {
            prop_require_close(fast.arrival[b], ref.arrival[b], 1e-12,
                               "arrival[" + std::to_string(b) + "]");
          }
        }
      },
      shrink_design_case);
  EXPECT_TRUE(res.ok()) << res.report();
  EXPECT_GE(res.cases_run, cfg.only_case ? 1u : 200u);
}

}  // namespace
}  // namespace nemfpga::verify
