// ThreadSanitizer + determinism coverage for the concurrent flow
// scheduler: mixed-architecture job batches (different widths, timing
// on/off, different variants — so RR graphs, lookahead tables and delay
// models are built, shared and evicted concurrently) run at 1, 2 and 8
// workers, and every result must be bit-identical to a solo run_flow of
// the same spec. Under -DNF_TSAN=ON this certifies the cache's
// single-flight protocol and the scheduler's no-shared-mutable-state
// contract; in a plain build it is the determinism smoke. Matches the
// test_*_tsan pattern (test_route_tsan, test_eco_tsan).
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"
#include "service/job_scheduler.hpp"

namespace nemfpga {
namespace {

struct JobSpec {
  std::string name;
  std::size_t synth_luts = 0;  ///< 0 means the tseng benchmark.
  std::size_t w = 64;
  std::uint64_t seed = 1;
  bool timing = false;
  std::string backend = "cmos";
};

Netlist spec_netlist(const JobSpec& s) {
  if (s.synth_luts == 0) return generate_benchmark("tseng");
  SynthSpec spec;
  spec.n_luts = s.synth_luts;
  spec.name = s.name;
  return generate_netlist(spec);
}

FlowJob spec_job(const JobSpec& s) {
  FlowJob job;
  job.name = s.name;
  job.netlist = spec_netlist(s);
  job.opt.arch.W = s.w;
  job.opt.place.seed = s.seed;
  job.opt.route.timing_driven = s.timing;
  job.opt.timing_backend = s.backend;
  return job;
}

/// The mixed-arch batch: two fabrics' worth of widths, congestion and
/// timing flows, two electrical variants — enough key diversity that a
/// run exercises every artifact type while same-fabric jobs contend on
/// shared entries.
std::vector<JobSpec> mixed_specs() {
  return {
      {"synth-a", 180, 48, 1, false, "cmos"},
      {"synth-a-timing", 180, 48, 2, true, "cmos"},
      {"synth-a-nem", 180, 64, 3, true, "nem-opt"},
      {"synth-b", 320, 56, 4, false, "cmos"},
      {"tseng", 0, 64, 5, true, "cmos"},
  };
}

void expect_identical(const FlowJobResult& got, const FlowJobResult& want,
                      const std::string& ctx) {
  ASSERT_TRUE(got.ok) << ctx << ": " << got.error;
  EXPECT_EQ(got.tree_checksum, want.tree_checksum) << ctx;
  EXPECT_EQ(got.placement_cost, want.placement_cost) << ctx;
  EXPECT_EQ(got.critical_path_s, want.critical_path_s) << ctx;
  EXPECT_EQ(got.route_iterations, want.route_iterations) << ctx;
  EXPECT_EQ(got.overused_nodes, want.overused_nodes) << ctx;
  EXPECT_EQ(got.nx, want.nx) << ctx;
  EXPECT_EQ(got.ny, want.ny) << ctx;
  EXPECT_EQ(got.w, want.w) << ctx;
}

TEST(ServeTsan, ConcurrentMixedArchJobsMatchSoloFlows) {
  const std::vector<JobSpec> specs = mixed_specs();

  // Solo baselines: plain run_flow, no cache, default pool — exactly
  // what a user gets from `nemfpga flow`.
  std::vector<FlowJobResult> solo;
  for (const JobSpec& s : specs) {
    FlowJob job = spec_job(s);
    FlowResult flow = run_flow(std::move(job.netlist), job.opt);
    FlowJobResult r;
    r.ok = true;
    const RrGraphView gv = flow.graph_view();
    r.nx = gv.nx();
    r.ny = gv.ny();
    r.w = flow.arch.W;
    r.route_iterations = flow.routing.iterations;
    r.overused_nodes = flow.routing.overused_nodes;
    r.tree_checksum = routing_tree_checksum(flow.routing);
    r.placement_cost = flow.placement.final_cost;
    r.critical_path_s = flow.routing.critical_path_s;
    solo.push_back(r);
  }

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    ArtifactCache cache;
    JobScheduler sched(cache, workers);
    // Two rounds of every spec in flight at once: round one races the
    // single-flight builds, round two the warm hits.
    std::vector<std::future<FlowJobResult>> futs;
    for (int round = 0; round < 2; ++round) {
      for (const JobSpec& s : specs) {
        futs.push_back(sched.submit(spec_job(s)));
      }
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const FlowJobResult got = futs[i].get();
      expect_identical(got, solo[i % specs.size()],
                       "workers=" + std::to_string(workers) + " job#" +
                           std::to_string(i) + " (" +
                           specs[i % specs.size()].name + ")");
    }
    const ArtifactCache::Stats cs = cache.stats();
    EXPECT_GT(cs.misses, 0u);
    EXPECT_GT(cs.hits + cs.single_flight_waits, 0u)
        << "the second round must reuse round one's artifacts";
    EXPECT_EQ(sched.counters().completed, futs.size());
  }
}

TEST(ServeTsan, EvictionChurnStaysRaceFreeAndDeterministic) {
  // A cache budget far below the batch's working set forces constant
  // LRU eviction *during* concurrent builds — the protect-just-inserted
  // and never-evict-in-flight rules are what TSan gets to chew on here.
  const std::vector<JobSpec> specs = mixed_specs();
  std::vector<FlowJobResult> baseline;
  {
    ArtifactCache cache;  // ample
    JobScheduler sched(cache, 2);
    std::vector<std::future<FlowJobResult>> futs;
    for (const JobSpec& s : specs) futs.push_back(sched.submit(spec_job(s)));
    for (auto& f : futs) baseline.push_back(f.get());
  }

  ArtifactCache tiny(1 << 16);  // 64 KB — every insert evicts something
  JobScheduler sched(tiny, 8);
  std::vector<std::future<FlowJobResult>> futs;
  for (int round = 0; round < 2; ++round) {
    for (const JobSpec& s : specs) futs.push_back(sched.submit(spec_job(s)));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    expect_identical(futs[i].get(), baseline[i % specs.size()],
                     "tiny-cache job#" + std::to_string(i));
  }
  EXPECT_GT(tiny.stats().evictions, 0u);
}

}  // namespace
}  // namespace nemfpga
