#include <gtest/gtest.h>

#include "device/reliability.hpp"
#include "util/stats.hpp"

namespace nemfpga {
namespace {

TEST(Wear, FreshDeviceUnworn) {
  const auto w = wear_after(fabricated_relay(), WearModel{}, 0.0);
  EXPECT_DOUBLE_EQ(w.ron_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(w.adhesion_multiplier, 1.0);
  EXPECT_FALSE(w.stuck);
  EXPECT_THROW(wear_after(fabricated_relay(), WearModel{}, -1.0),
               std::invalid_argument);
}

TEST(Wear, RonGrowsWithCycles) {
  const WearModel m;
  const RelayDesign d = fabricated_relay();
  const auto w6 = wear_after(d, m, 1e6);
  const auto w8 = wear_after(d, m, 1e8);
  const auto w10 = wear_after(d, m, 1e10);
  EXPECT_DOUBLE_EQ(w6.ron_multiplier, 1.0);
  EXPECT_NEAR(w8.ron_multiplier, 1.5, 1e-9);   // +0.25/decade * 2 decades
  EXPECT_GT(w10.ron_multiplier, w8.ron_multiplier);
  EXPECT_GE(w10.adhesion_multiplier, w8.adhesion_multiplier);
}

TEST(Wear, ExtremeCyclingCausesStiction) {
  WearModel m;
  m.adhesion_growth_per_decade = 0.5;  // aggressive surface degradation
  const RelayDesign d = fabricated_relay();
  EXPECT_FALSE(wear_after(d, m, 1e6).stuck);
  EXPECT_TRUE(wear_after(d, m, 1e12).stuck);
}

TEST(Endurance, WeibullSamplesCenterOnMedian) {
  const WearModel m;
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) {
    samples.push_back(sample_cycles_to_failure(m, rng));
  }
  EXPECT_NEAR(percentile(samples, 50.0), m.median_cycles_to_failure,
              0.1 * m.median_cycles_to_failure);
}

TEST(Endurance, ArraySurvivalMonotone) {
  const WearModel m;
  EXPECT_DOUBLE_EQ(array_survival(m, 1000, 0.0), 1.0);
  const double s1 = array_survival(m, 1000, 1e6);
  const double s2 = array_survival(m, 1000, 1e8);
  EXPECT_GT(s1, s2);
  // More relays -> lower survival at the same cycles.
  EXPECT_GT(array_survival(m, 1000, 1e8), array_survival(m, 100000, 1e8));
}

TEST(Endurance, FpgaReconfigurationBudgetIsAmple) {
  // Paper Sec 1: "FPGA routing switches are generally subjected to a
  // limited number of reconfigurations (~500)". With ~1e9-class endurance
  // and millions of relays, the budget must exceed 500 by orders of
  // magnitude.
  const WearModel m;
  const std::size_t relays_per_fpga = 4'000'000;  // millions of switches
  const double budget = reconfiguration_budget(m, relays_per_fpga, 0.99);
  EXPECT_GT(budget, 500.0 * 10.0);
}

TEST(Endurance, BudgetConsistentWithSurvival) {
  const WearModel m;
  const std::size_t n = 1'000'000;
  const double budget = reconfiguration_budget(m, n, 0.95);
  const double cycles = budget * cycles_per_reconfiguration();
  EXPECT_NEAR(array_survival(m, n, cycles), 0.95, 1e-6);
}

TEST(Endurance, InvalidArguments) {
  const WearModel m;
  EXPECT_THROW(reconfiguration_budget(m, 0, 0.9), std::invalid_argument);
  EXPECT_THROW(reconfiguration_budget(m, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(reconfiguration_budget(m, 10, 1.0), std::invalid_argument);
}

class SurvivalSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SurvivalSweep, LogicDutyWouldWearOut) {
  // The flip side of the paper's argument: at logic-style duty (switching
  // every cycle at hundreds of MHz), a year of operation exceeds the
  // endurance budget; as a static routing switch it never comes close.
  const WearModel m;
  const std::size_t n = GetParam();
  const double logic_cycles_year = 500e6 * 3600.0 * 24 * 365 * 0.15;
  EXPECT_LT(array_survival(m, n, logic_cycles_year), 1e-6);
  const double routing_cycles = 500.0 * cycles_per_reconfiguration();
  EXPECT_GT(array_survival(m, n, routing_cycles), 0.9999);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SurvivalSweep,
                         ::testing::Values(1000, 100000, 4000000));

}  // namespace
}  // namespace nemfpga
