#include <gtest/gtest.h>

#include "device/cmos.hpp"
#include "device/equivalent.hpp"

namespace nemfpga {
namespace {

TEST(CmosTech, ResistanceInverseInWidth) {
  const CmosTech t;
  EXPECT_NEAR(t.nmos_resistance(2 * t.w_min), 0.5 * t.nmos_resistance(t.w_min),
              1e-9);
}

TEST(CmosTech, MinInverterOrdersOfMagnitude) {
  const CmosTech t;
  // Sanity ranges for a 22 nm process: kOhm-scale drive resistance,
  // tens-of-aF input capacitance, nW-scale leakage.
  EXPECT_GT(t.min_inverter_resistance(), 1e3);
  EXPECT_LT(t.min_inverter_resistance(), 1e5);
  EXPECT_GT(t.min_inverter_input_cap(), 10e-18);
  EXPECT_LT(t.min_inverter_input_cap(), 1e-15);
  EXPECT_GT(t.min_inverter_leakage(), 1e-10);
  EXPECT_LT(t.min_inverter_leakage(), 1e-7);
}

TEST(CmosTech, CapacitanceLinearInWidth) {
  const CmosTech t;
  EXPECT_DOUBLE_EQ(t.gate_cap(3 * t.w_min), 3 * t.gate_cap(t.w_min));
  EXPECT_DOUBLE_EQ(t.drain_cap(5 * t.w_min), 5 * t.drain_cap(t.w_min));
  EXPECT_DOUBLE_EQ(t.leak_current(2 * t.w_min), 2 * t.leak_current(t.w_min));
}

TEST(PassTransistor, VtDropReducesSwing) {
  // Fig 8a: the pass transistor passes only Vdd - Vt.
  const CmosTech t;
  const PassTransistor pt;
  EXPECT_LT(pt.passed_high_level(t), t.vdd);
  EXPECT_GT(pt.vt_drop(t), 0.25);  // a significant fraction of Vdd
  EXPECT_GT(pt.passed_high_level(t), 0.0);
}

TEST(PassTransistor, WorseThanRelayAtComparableDrive) {
  // A key enabler of the technique (Sec 3.2): relay Ron = 2 kOhm beats the
  // effective resistance of a routing pass transistor, with no Vt drop.
  const CmosTech t;
  const PassTransistor pt;
  const auto relay = fig11_equivalent();
  EXPECT_GT(pt.on_resistance(t), relay.ron);
  // And the pass transistor leaks; the relay does not (zero off current).
  EXPECT_GT(pt.leakage(t), 0.0);
}

TEST(PassTransistor, ResistanceScalesDownWithWidth) {
  const CmosTech t;
  PassTransistor narrow, wide;
  narrow.width_mult = 4.0;
  wide.width_mult = 16.0;
  EXPECT_NEAR(wide.on_resistance(t), narrow.on_resistance(t) / 4.0, 1e-9);
  EXPECT_GT(wide.parasitic_cap(t), narrow.parasitic_cap(t));
  EXPECT_GT(wide.leakage(t), narrow.leakage(t));
}

TEST(Sram, CellFiguresArePlausible) {
  const SramCell c;
  EXPECT_GT(c.leakage_power, 0.0);
  EXPECT_LT(c.leakage_power, 1e-7);
  EXPECT_GT(c.area, 0.0);
  EXPECT_LT(c.area, 1e-12);
}

TEST(WireTech, RcPerMicron) {
  const WireTech w;
  // 22 nm PTM intermediate metal ballpark: a 100 um wire has ~300 Ohm
  // and ~20 fF.
  EXPECT_NEAR(w.r_per_m * 100e-6, 300.0, 150.0);
  EXPECT_NEAR(w.c_per_m * 100e-6, 20e-15, 10e-15);
}

TEST(Tech22, DefaultBundleConsistent) {
  const Tech22nm t = default_tech22();
  EXPECT_DOUBLE_EQ(t.cmos.vdd, 0.8);
  EXPECT_GT(t.routing_pass_transistor.on_resistance(t.cmos), 0.0);
  EXPECT_GT(t.sram.leakage_power, 0.0);
  EXPECT_GT(t.wire.c_per_m, 0.0);
}

}  // namespace
}  // namespace nemfpga
