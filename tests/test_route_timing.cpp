// Timing-driven routing regression: the blended-cost PathFinder driven by
// the incremental STA must (a) leave the congestion-only contract alone —
// pinned separately by test_route_golden — (b) actually buy critical
// path at the same channel width, (c) report a critical path that is
// *exactly* what the full post-route STA computes over its trees, (d)
// stay bit-identical at any thread count, and (e) leave the minimum
// channel width untouched (width probes are forced congestion-only, the
// iso-Wmin requirement of the paper-style comparison).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "netlist/mcnc.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"
#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

/// FNV-1a over every tree (same digest as test_route_golden).
std::uint64_t routing_checksum(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& t : r.trees) {
    mix(t.source);
    mix(t.edges.size());
    for (const auto& [from, to] : t.edges) {
      mix((static_cast<std::uint64_t>(from) << 32) | to);
    }
    for (RrNodeId s : t.sinks) mix(s);
  }
  return h;
}

struct TimingGolden {
  const char* circuit;
  std::size_t w_fixed;   ///< Channel width for the fixed-W routes.
  std::size_t w_min;     ///< Wmin — must match the congestion-only value.
  /// Required CP(timing-driven) / CP(congestion-only) at w_fixed. The
  /// measured ratios are ~0.948 (tseng) / ~0.948 (ex5p); 0.97 leaves
  /// margin without letting a regression to "no gain" pass. See
  /// EXPERIMENTS.md "Timing-driven routing" for why ~5% is the honest
  /// ceiling on this fabric (routed paths sit near the geometric
  /// stage-count floor).
  double max_cp_ratio;
};

constexpr TimingGolden kTimingGolden[] = {
    {"tseng", 48, 45, 0.97},
    {"ex5p", 48, 45, 0.97},
};

class RouteTiming : public ::testing::TestWithParam<TimingGolden> {};

TEST_P(RouteTiming, TimingDrivenImprovesCpAtUnchangedWmin) {
  const TimingGolden& gold = GetParam();
  Netlist nl = generate_benchmark(gold.circuit);
  ArchParams arch;
  arch.W = gold.w_fixed;
  Packing pk = pack_netlist(nl, arch);
  const auto [nx, ny] =
      grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
  PlaceOptions popt;
  popt.inner_num = 0.3;  // keep the test quick; still deterministic
  const Placement pl = place(nl, pk, arch, nx, ny, popt);
  const RrGraph g(arch, pl.nx, pl.ny);
  const ElectricalView view = make_view(arch, FpgaVariant::kCmosBaseline);

  RouteOptions td;
  td.timing_driven = true;

  auto run_td = [&](ThreadPool& pool) {
    ThreadPool::ScopedUse use(pool);
    // Fresh hook per route_all call: a hook instance is stateful.
    const auto hook = make_incremental_sta(nl, pk, pl, g, view,
                                           td.criticality_exp,
                                           td.max_criticality);
    RouteOptions opt = td;
    opt.timing_hook = hook.get();
    return route_all(g, pl, opt);
  };

  ThreadPool serial(1), wide(8);
  const RoutingResult r1 = run_td(serial);
  const RoutingResult r8 = run_td(wide);

  RoutingResult base;
  ChannelWidthResult w_td;
  {
    ThreadPool::ScopedUse use(serial);
    base = route_all(g, pl, {});  // congestion-only default profile
    // Width probes force timing off, so Wmin with timing-driven options
    // must equal the congestion-only golden (iso-Wmin comparisons).
    const auto hook = make_incremental_sta(nl, pk, pl, g, view,
                                           td.criticality_exp,
                                           td.max_criticality);
    RouteOptions opt = td;
    opt.timing_hook = hook.get();
    w_td = find_min_channel_width(arch, pl, 32, opt);
  }

  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(base.success);
  check_routing(g, pl, r1);

  // (d) Bit-identical at any thread count, counters included.
  EXPECT_EQ(routing_checksum(r8), routing_checksum(r1));
  EXPECT_EQ(r8.iterations, r1.iterations);
  EXPECT_EQ(r8.critical_path_s, r1.critical_path_s);
  EXPECT_EQ(r8.worst_slack_s, r1.worst_slack_s);
  EXPECT_EQ(r8.counters.heap_pushes, r1.counters.heap_pushes);
  EXPECT_EQ(r8.counters.sta_net_evals, r1.counters.sta_net_evals);
  EXPECT_EQ(r8.counters.sta_block_updates, r1.counters.sta_block_updates);

  // (c) The reported critical path is the full STA's, bitwise.
  const TimingResult sta = analyze_timing(nl, pk, pl, g, r1, view);
  EXPECT_EQ(r1.critical_path_s, sta.critical_path) << gold.circuit;
  ASSERT_GT(r1.critical_path_s, 0.0);
  // Worst connection slack at the final update is ~0 by construction
  // (the critical connection has none); tiny negative values are benign
  // forward/backward summation-order noise.
  EXPECT_NEAR(r1.worst_slack_s, 0.0, 1e-12);

  // (b) Real critical-path gain at the same width.
  const TimingResult sta_base = analyze_timing(nl, pk, pl, g, base, view);
  EXPECT_LE(r1.critical_path_s, gold.max_cp_ratio * sta_base.critical_path)
      << gold.circuit << ": td=" << r1.critical_path_s
      << " base=" << sta_base.critical_path;

  // (e) Unchanged minimum channel width.
  EXPECT_EQ(w_td.w_min, gold.w_min) << gold.circuit;

  // Incrementality did real work: far fewer net evaluations than a full
  // recompute every iteration would cost.
  EXPECT_GT(r1.counters.sta_net_evals, 0u);
  EXPECT_LT(r1.counters.sta_net_evals,
            pl.nets.size() * (r1.iterations + 1));
  EXPECT_GT(r1.counters.sta_block_updates, 0u);

  // Congestion-only results must carry no timing annotations.
  EXPECT_EQ(base.critical_path_s, 0.0);
  EXPECT_EQ(base.counters.sta_net_evals, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seed, RouteTiming,
                         ::testing::ValuesIn(kTimingGolden),
                         [](const auto& info) {
                           return std::string(info.param.circuit);
                         });

}  // namespace
}  // namespace nemfpga
