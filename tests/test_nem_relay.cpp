#include <gtest/gtest.h>

#include <cmath>

#include "device/equivalent.hpp"
#include "device/nem_relay.hpp"
#include "util/units.hpp"

namespace nemfpga {
namespace {

TEST(FabricatedRelay, MatchesMeasuredPullIn) {
  // The model is calibrated to the paper's measured Vpi = 6.2 V (in oil).
  const RelayDesign d = fabricated_relay();
  EXPECT_NEAR(d.pull_in_voltage(), 6.2, 1e-9);
}

TEST(FabricatedRelay, PullOutInMeasuredBand) {
  const RelayDesign d = fabricated_relay();
  const double vpo = d.pull_out_voltage();
  EXPECT_GE(vpo, 2.0);
  EXPECT_LE(vpo, 3.4);
}

TEST(FabricatedRelay, HysteresisWindowOpen) {
  const RelayDesign d = fabricated_relay();
  EXPECT_GT(d.hysteresis_window(), 1.0);
  EXPECT_LT(d.pull_out_voltage(), d.pull_in_voltage());
}

TEST(FabricatedRelay, DimensionsMatchPaper) {
  const RelayDesign d = fabricated_relay();
  EXPECT_DOUBLE_EQ(d.geometry.length, 23 * micro);
  EXPECT_DOUBLE_EQ(d.geometry.thickness, 500 * nano);
  EXPECT_DOUBLE_EQ(d.geometry.gap, 600 * nano);
  EXPECT_EQ(d.ambient.name, "oil");
}

TEST(ScaledRelay, SubVoltOperation) {
  // Paper: "CMOS-compatible operation voltages (~1V) can be achieved
  // through scaling" — the Fig 11 geometry must land near/below 1 V.
  const RelayDesign d = scaled_relay_22nm();
  const double vpi = d.pull_in_voltage();
  EXPECT_GT(vpi, 0.2);
  EXPECT_LT(vpi, 1.2);
  EXPECT_GT(d.pull_out_voltage(), 0.0);
  EXPECT_LT(d.pull_out_voltage(), vpi);
}

TEST(ScaledRelay, DimensionsMatchFig11) {
  const RelayDesign d = scaled_relay_22nm();
  EXPECT_DOUBLE_EQ(d.geometry.length, 275 * nano);
  EXPECT_DOUBLE_EQ(d.geometry.thickness, 11 * nano);
  EXPECT_DOUBLE_EQ(d.geometry.gap, 11 * nano);
  EXPECT_DOUBLE_EQ(d.geometry.gap_min, 3.6 * nano);
}

// The paper gives Vpi ∝ sqrt(E h^3 g0^3 / (eps L^4)). Property-check each
// dependency by perturbing one dimension at a time.
class PullInScaling : public ::testing::TestWithParam<double> {};

TEST_P(PullInScaling, LengthDependence) {
  const double scale = GetParam();
  RelayDesign d = fabricated_relay();
  const double v0 = d.pull_in_voltage();
  d.geometry.length *= scale;
  // Vpi ∝ L^-2  (w cancels; A grows with L, k shrinks with L^3)
  EXPECT_NEAR(d.pull_in_voltage() / v0, std::pow(scale, -2.0), 1e-6);
}

TEST_P(PullInScaling, ThicknessDependence) {
  const double scale = GetParam();
  RelayDesign d = fabricated_relay();
  const double v0 = d.pull_in_voltage();
  d.geometry.thickness *= scale;
  EXPECT_NEAR(d.pull_in_voltage() / v0, std::pow(scale, 1.5), 1e-6);
}

TEST_P(PullInScaling, GapDependence) {
  const double scale = GetParam();
  RelayDesign d = fabricated_relay();
  const double v0 = d.pull_in_voltage();
  d.geometry.gap *= scale;
  EXPECT_NEAR(d.pull_in_voltage() / v0, std::pow(scale, 1.5), 1e-6);
}

TEST_P(PullInScaling, WidthCancels) {
  const double scale = GetParam();
  RelayDesign d = fabricated_relay();
  const double v0 = d.pull_in_voltage();
  d.geometry.width *= scale;
  EXPECT_NEAR(d.pull_in_voltage(), v0, 1e-9);
}

TEST_P(PullInScaling, PermittivityDependence) {
  const double scale = GetParam();
  RelayDesign d = fabricated_relay();
  const double v0 = d.pull_in_voltage();
  d.ambient.relative_permittivity *= scale;
  // Larger permittivity (e.g. oil) lowers switching voltage [Lee 09].
  EXPECT_NEAR(d.pull_in_voltage() / v0, std::pow(scale, -0.5), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PullInScaling,
                         ::testing::Values(0.5, 0.8, 1.25, 2.0, 4.0));

TEST(PullOut, AdhesionLowersVpo) {
  // "Surface forces ... decrease Vpo, and increase the hysteresis window."
  RelayDesign d = fabricated_relay();
  const double vpo_with = d.pull_out_voltage();
  d.adhesion_force = 0.0;
  const double vpo_without = d.pull_out_voltage();
  EXPECT_LT(vpo_with, vpo_without);
  RelayDesign d2 = fabricated_relay();
  const double window_with = d2.hysteresis_window();
  d2.adhesion_force = 0.0;
  EXPECT_GT(window_with, d2.hysteresis_window());
}

TEST(PullOut, StictionGivesZeroVpo) {
  RelayDesign d = fabricated_relay();
  d.adhesion_force = 10.0 * d.stiffness() * (d.geometry.gap - d.geometry.gap_min);
  EXPECT_DOUBLE_EQ(d.pull_out_voltage(), 0.0);
}

TEST(PullOut, GminTermDependence) {
  // Vpo ∝ sqrt(gmin^2 (g0 - gmin)): shrinking gmin shrinks Vpo, which is the
  // paper's suggested way to widen the hysteresis window.
  RelayDesign d = fabricated_relay();
  d.adhesion_force = 0.0;
  const double vpo0 = d.pull_out_voltage();
  const double g0 = d.geometry.gap;
  const double gmin0 = d.geometry.gap_min;
  d.geometry.gap_min = 0.5 * gmin0;
  const double expected =
      vpo0 * std::sqrt((0.25 * gmin0 * gmin0 * (g0 - 0.5 * gmin0)) /
                       (gmin0 * gmin0 * (g0 - gmin0)));
  EXPECT_NEAR(d.pull_out_voltage(), expected, 1e-9);
  EXPECT_LT(d.pull_out_voltage(), vpo0);
}

TEST(RelayState, HysteresisRetainsState) {
  const RelayDesign d = fabricated_relay();
  RelayState s(d);
  EXPECT_FALSE(s.pulled_in());
  const double vpi = d.pull_in_voltage();
  const double vpo = d.pull_out_voltage();
  const double mid = 0.5 * (vpi + vpo);

  s.apply_vgs(mid);  // inside the window while off: stays off
  EXPECT_FALSE(s.pulled_in());
  s.apply_vgs(vpi + 0.1);  // pull in
  EXPECT_TRUE(s.pulled_in());
  s.apply_vgs(mid);  // inside the window while on: stays on (memory!)
  EXPECT_TRUE(s.pulled_in());
  s.apply_vgs(vpo - 0.1);  // release
  EXPECT_FALSE(s.pulled_in());
  EXPECT_THROW(s.apply_vgs(-1.0), std::invalid_argument);
}

TEST(RelayState, BoundaryVoltagesSwitch) {
  const RelayDesign d = fabricated_relay();
  RelayState s(d);
  s.apply_vgs(d.pull_in_voltage());  // exactly Vpi pulls in
  EXPECT_TRUE(s.pulled_in());
  s.apply_vgs(d.pull_out_voltage());  // exactly Vpo releases
  EXPECT_FALSE(s.pulled_in());
}

TEST(IvSweep, ShowsHysteresisAndZeroOffLeakage) {
  const RelayDesign d = fabricated_relay();
  const auto trace = sweep_iv(d, 8.0, 0.1);
  ASSERT_FALSE(trace.empty());

  const double vpi = d.pull_in_voltage();
  const double vpo = d.pull_out_voltage();
  bool saw_on_upsweep_below_vpi = false;
  std::size_t turn = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].vgs < trace[i - 1].vgs) {
      turn = i;
      break;
    }
  }
  ASSERT_GT(turn, 0u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& p = trace[i];
    if (!p.pulled_in) {
      // Off-state current sits at the measurement noise floor (10 pA).
      EXPECT_DOUBLE_EQ(p.ids, 10e-12);
    } else {
      // On-current capped by the 100 nA compliance.
      EXPECT_LE(p.ids, 100e-9 + 1e-18);
      EXPECT_GT(p.ids, 10e-12);
    }
    if (i < turn && p.pulled_in && p.vgs < vpi - 0.2) {
      saw_on_upsweep_below_vpi = true;  // would contradict pull-in physics
    }
  }
  EXPECT_FALSE(saw_on_upsweep_below_vpi);

  // Down-sweep: stays on inside the window (hysteresis), off below Vpo.
  for (std::size_t i = turn; i < trace.size(); ++i) {
    const auto& p = trace[i];
    if (p.vgs > vpo + 0.2 && p.vgs < vpi - 0.2) {
      EXPECT_TRUE(p.pulled_in);
    }
    if (p.vgs < vpo - 0.2) {
      EXPECT_FALSE(p.pulled_in);
    }
  }
}

TEST(IvSweep, ComplianceCapsCurrent) {
  const RelayDesign d = fabricated_relay();
  const auto trace = sweep_iv(d, 8.0, 0.5, /*read_bias=*/1.0,
                              /*on_resistance=*/2e3, /*compliance=*/100e-9);
  for (const auto& p : trace) {
    if (p.pulled_in) {
      EXPECT_DOUBLE_EQ(p.ids, 100e-9);
    }
  }
}

TEST(IvSweep, RejectsBadArguments) {
  const RelayDesign d = fabricated_relay();
  EXPECT_THROW(sweep_iv(d, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(sweep_iv(d, 8.0, 0.0), std::invalid_argument);
}

TEST(Equivalent, ScaledDeviceMatchesFig11) {
  const auto eq = equivalent_circuit(scaled_relay_22nm());
  EXPECT_DOUBLE_EQ(eq.ron, 2e3);  // experimental [Parsa 10]
  EXPECT_NEAR(eq.con, 20 * atto, 2 * atto);
  EXPECT_NEAR(eq.coff, 6.7 * atto, 1.0 * atto);
  EXPECT_LT(eq.coff, eq.con);
}

TEST(Equivalent, ContaminationRaisesRon) {
  // Sec 2.3: crossbar relays measured ~100 kOhm vs 2 kOhm clean.
  ContactModel dirty;
  dirty.contamination_factor = 50.0;
  const auto eq = equivalent_circuit(scaled_relay_22nm(), dirty);
  EXPECT_DOUBLE_EQ(eq.ron, 100e3);
}

TEST(Equivalent, Fig11ReferenceValues) {
  const auto eq = fig11_equivalent();
  EXPECT_DOUBLE_EQ(eq.ron, 2e3);
  EXPECT_DOUBLE_EQ(eq.con, 20 * atto);
  EXPECT_DOUBLE_EQ(eq.coff, 6.7 * atto);
}

TEST(Resonance, ScaledDeviceIsFast) {
  // Scaled beams resonate in the 100 MHz+ range -> ns-scale mechanics.
  EXPECT_GT(scaled_relay_22nm().resonant_frequency(), 5e7);
  // The large fabricated beam is orders of magnitude slower.
  EXPECT_LT(fabricated_relay().resonant_frequency(),
            scaled_relay_22nm().resonant_frequency() / 100.0);
}

}  // namespace
}  // namespace nemfpga
