// Unit tests for the two pillars of the A*/parallel router rebuild:
//  - Conflict replay: the debug_replay_every hook forces batch members
//    through the serial replay path on demand. Replay must actually run
//    (conflict_replays grows) and must not change a single routing
//    decision — the disjoint-rectangle schedule guarantees a replayed
//    member sees exactly the state its speculative attempt saw.
//  - Admissibility: with astar_factor = 1.0 the geometric lookahead is a
//    lower bound on the true remaining cost, so the directed search finds
//    every sink at Dijkstra-optimal cost. verify_lookahead shadows every
//    A* search with a zero-heuristic Dijkstra and counts violations.
#include <gtest/gtest.h>

#include "netlist/mcnc.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

struct SmallFlow {
  Netlist nl;
  ArchParams arch;
  Packing pk;
  Placement pl;

  explicit SmallFlow(const char* name, std::size_t w) {
    nl = generate_benchmark(name);
    arch.W = w;
    pk = pack_netlist(nl, arch);
    const auto [nx, ny] =
        grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
    PlaceOptions popt;
    popt.inner_num = 0.3;
    pl = place(nl, pk, arch, nx, ny, popt);
  }
};

void expect_same_trees(const RoutingResult& a, const RoutingResult& b) {
  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    EXPECT_EQ(a.trees[i].source, b.trees[i].source) << "net " << i;
    EXPECT_EQ(a.trees[i].edges, b.trees[i].edges) << "net " << i;
    EXPECT_EQ(a.trees[i].sinks, b.trees[i].sinks) << "net " << i;
  }
}

TEST(RouteParallel, InjectedConflictsReplayWithoutChangingTheRouting) {
  SmallFlow f("ex5p", 48);
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  ThreadPool wide(8);
  ThreadPool::ScopedUse use(wide);

  RouteOptions opt;  // defaults: lookahead on, net_parallel on
  const RoutingResult plain = route_all(g, f.pl, opt);
  ASSERT_TRUE(plain.success);

  RouteOptions hooked = opt;
  hooked.debug_replay_every = 3;  // every 3rd batch member replays
  const RoutingResult forced = route_all(g, f.pl, hooked);
  ASSERT_TRUE(forced.success);

  // The hook really drove members through the replay path...
  EXPECT_GT(forced.counters.conflict_replays,
            plain.counters.conflict_replays);
  // ...and replay reproduced the speculative routing bit-for-bit.
  EXPECT_EQ(forced.iterations, plain.iterations);
  expect_same_trees(forced, plain);
}

TEST(RouteParallel, LookaheadIsAdmissibleAtFactorOne) {
  SmallFlow f("ex5p", 48);
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);
  ThreadPool serial(1);
  ThreadPool::ScopedUse use(serial);

  RouteOptions opt;
  opt.astar_factor = 1.0;      // the admissible setting
  opt.net_parallel = false;    // one search at a time, simplest shadow
  opt.verify_lookahead = true; // shadow every search with a Dijkstra
  const RoutingResult r = route_all(g, f.pl, opt);

  ASSERT_TRUE(r.success);
  EXPECT_GT(r.counters.lookahead_hits, 0u);
  EXPECT_GT(r.counters.sink_searches, 0u);
  // Not one sink was found at worse-than-Dijkstra cost.
  EXPECT_EQ(r.counters.lookahead_suboptimal, 0u);
}

}  // namespace
}  // namespace nemfpga
