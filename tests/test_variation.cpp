#include <gtest/gtest.h>

#include "device/variation.hpp"
#include "util/stats.hpp"

namespace nemfpga {
namespace {

TEST(Variation, ZeroSigmaReproducesNominal) {
  Rng rng(1);
  const RelayDesign nominal = fabricated_relay();
  const VariationSpec none{};
  const auto s = sample_relay(nominal, none, rng);
  EXPECT_DOUBLE_EQ(s.vpi, nominal.pull_in_voltage());
  EXPECT_DOUBLE_EQ(s.vpo, nominal.pull_out_voltage());
}

TEST(Variation, PopulationSizeAndDeterminism) {
  Rng a(7), b(7);
  const RelayDesign nominal = fabricated_relay();
  const auto spec = fabricated_variation();
  const auto p1 = sample_population(nominal, spec, 50, a);
  const auto p2 = sample_population(nominal, spec, 50, b);
  ASSERT_EQ(p1.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(p1[i].vpi, p2[i].vpi);
    EXPECT_DOUBLE_EQ(p1[i].vpo, p2[i].vpo);
  }
}

TEST(Variation, Fig6PopulationSpreadMatchesMeasurement) {
  // Fig 6: 100 relays, Vpi spread roughly 5–7 V around the 6.2 V nominal,
  // Vpo spread roughly 2–3.4 V.
  Rng rng = Rng::from_string("fig6");
  const auto pop =
      sample_population(fabricated_relay(), fabricated_variation(), 100, rng);
  RunningStats vpi, vpo;
  for (const auto& s : pop) {
    vpi.add(s.vpi);
    vpo.add(s.vpo);
  }
  EXPECT_NEAR(vpi.mean(), 6.2, 0.3);
  EXPECT_GT(vpi.min(), 4.5);
  EXPECT_LT(vpi.max(), 7.5);
  EXPECT_GT(vpo.min(), 1.2);
  EXPECT_LT(vpo.max(), 4.0);
  // There is visible spread (this is the point of the experiment).
  EXPECT_GT(vpi.stddev(), 0.1);
  EXPECT_GT(vpo.stddev(), 0.1);
}

TEST(Variation, EnvelopeComputesExtremes) {
  std::vector<RelaySample> pop(3);
  pop[0].vpi = 6.0;
  pop[0].vpo = 3.0;
  pop[1].vpi = 6.5;
  pop[1].vpo = 2.5;
  pop[2].vpi = 5.8;
  pop[2].vpo = 3.2;
  const auto env = envelope(pop);
  EXPECT_DOUBLE_EQ(env.vpi_min, 5.8);
  EXPECT_DOUBLE_EQ(env.vpi_max, 6.5);
  EXPECT_DOUBLE_EQ(env.vpo_min, 2.5);
  EXPECT_DOUBLE_EQ(env.vpo_max, 3.2);
  EXPECT_DOUBLE_EQ(env.min_hysteresis, 5.8 - 3.2);
  EXPECT_THROW(envelope({}), std::invalid_argument);
}

TEST(Variation, PaperFeasibilityCondition) {
  // min{Vpi - Vpo} > Vpi,max - Vpi,min  (Sec 2.3).
  PopulationEnvelope ok;
  ok.vpi_min = 5.8;
  ok.vpi_max = 6.5;
  ok.vpo_max = 3.2;
  ok.min_hysteresis = 2.6;
  EXPECT_TRUE(half_select_feasible(ok));  // 2.6 > 0.7

  PopulationEnvelope bad = ok;
  bad.min_hysteresis = 0.5;  // window narrower than Vpi spread
  EXPECT_FALSE(half_select_feasible(bad));
}

TEST(Variation, MeasuredPopulationIsFeasible) {
  // The paper found valid (Vhold, Vselect) for all 100 measured relays.
  Rng rng = Rng::from_string("fig6");
  const auto pop =
      sample_population(fabricated_relay(), fabricated_variation(), 100, rng);
  EXPECT_TRUE(half_select_feasible(envelope(pop)));
}

class VariationSigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(VariationSigmaSweep, SpreadGrowsWithSigma) {
  const double mult = GetParam();
  VariationSpec spec = fabricated_variation();
  spec.sigma_length_rel *= mult;
  spec.sigma_thickness_rel *= mult;
  spec.sigma_gap_rel *= mult;
  Rng rng(99);
  const auto pop = sample_population(fabricated_relay(), spec, 200, rng);
  RunningStats vpi;
  for (const auto& s : pop) vpi.add(s.vpi);

  VariationSpec base = fabricated_variation();
  Rng rng2(99);
  const auto pop2 = sample_population(fabricated_relay(), base, 200, rng2);
  RunningStats vpi2;
  for (const auto& s : pop2) vpi2.add(s.vpi);

  if (mult > 1.0) {
    EXPECT_GT(vpi.stddev(), vpi2.stddev());
  } else if (mult < 1.0) {
    EXPECT_LT(vpi.stddev(), vpi2.stddev());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, VariationSigmaSweep,
                         ::testing::Values(0.25, 0.5, 2.0, 4.0));

TEST(Variation, LargeVariationBreaksFeasibility) {
  // "large variations can make it impossible to correctly configure all
  // NEM relays" — blow up sigma and the feasibility condition must fail.
  VariationSpec spec = fabricated_variation();
  spec.sigma_length_rel *= 8;
  spec.sigma_thickness_rel *= 8;
  spec.sigma_gap_rel *= 8;
  Rng rng(5);
  const auto pop = sample_population(fabricated_relay(), spec, 200, rng);
  EXPECT_FALSE(half_select_feasible(envelope(pop)));
}

TEST(Variation, GeometryStaysPhysical) {
  VariationSpec spec = fabricated_variation();
  spec.sigma_gap_min_rel = 0.5;  // extreme gmin variation
  Rng rng(3);
  const auto pop = sample_population(fabricated_relay(), spec, 500, rng);
  for (const auto& s : pop) {
    EXPECT_GT(s.design.geometry.gap_min, 0.0);
    EXPECT_LT(s.design.geometry.gap_min, s.design.geometry.gap);
    EXPECT_GE(s.design.adhesion_force, 0.0);
    EXPECT_GE(s.vpo, 0.0);
    EXPECT_GT(s.vpi, s.vpo);
  }
}

}  // namespace
}  // namespace nemfpga
