#include <gtest/gtest.h>

#include "circuit/vcd.hpp"
#include "core/flow.hpp"
#include "netlist/synth_gen.hpp"
#include "place/place_io.hpp"
#include "route/report.hpp"

namespace nemfpga {
namespace {

const FlowResult& shared_flow() {
  static const FlowResult flow = [] {
    SynthSpec spec;
    spec.name = "io-fix";
    spec.n_luts = 200;
    spec.n_inputs = 16;
    spec.n_outputs = 12;
    spec.n_latches = 30;
    FlowOptions opt;
    opt.arch.W = 48;
    return run_flow(generate_netlist(spec), opt);
  }();
  return flow;
}

TEST(PlacementIo, RoundTrip) {
  const auto& flow = shared_flow();
  const std::string text = write_placement_string(flow.placement);
  const Placement back =
      read_placement_string(text, flow.placement.locs.size());
  EXPECT_EQ(back.nx, flow.placement.nx);
  EXPECT_EQ(back.ny, flow.placement.ny);
  ASSERT_EQ(back.locs.size(), flow.placement.locs.size());
  for (std::size_t b = 0; b < back.locs.size(); ++b) {
    EXPECT_EQ(back.locs[b].x, flow.placement.locs[b].x);
    EXPECT_EQ(back.locs[b].y, flow.placement.locs[b].y);
    EXPECT_EQ(back.locs[b].sub, flow.placement.locs[b].sub);
  }
}

TEST(PlacementIo, ReloadedPlacementRoutes) {
  const auto& flow = shared_flow();
  Placement back = read_placement_string(
      write_placement_string(flow.placement), flow.placement.locs.size());
  back.nets = extract_placed_nets(flow.netlist, flow.packing);
  const auto r = route_all(flow.graph_view(), back);
  EXPECT_TRUE(r.success);
}

TEST(PlacementIo, RejectsMalformedInput) {
  const auto& flow = shared_flow();
  const std::size_t n = flow.placement.locs.size();
  EXPECT_THROW(read_placement_string("", n), std::runtime_error);
  EXPECT_THROW(read_placement_string("garbage header\nb0 1 1 0\n", n),
               std::runtime_error);
  // Missing blocks.
  EXPECT_THROW(
      read_placement_string("Array size: 4 x 4 logic blocks\nb0\t1\t1\t0\n",
                            n),
      std::runtime_error);
  // Duplicate block.
  EXPECT_THROW(read_placement_string(
                   "Array size: 4 x 4 logic blocks\nb0\t1\t1\t0\nb0\t2\t2\t0\n",
                   1),
               std::runtime_error);
  // Out-of-range index.
  EXPECT_THROW(read_placement_string(
                   "Array size: 4 x 4 logic blocks\nb9\t1\t1\t0\n", 1),
               std::runtime_error);
}

TEST(RouteReportTest, SummarizesRouting) {
  const auto& flow = shared_flow();
  const auto rep =
      summarize_routing(flow.graph_view(), flow.placement, flow.routing);
  EXPECT_EQ(rep.nets, flow.placement.nets.size());
  EXPECT_EQ(rep.total_segments, flow.routing.wire_segments_used);
  EXPECT_NEAR(rep.total_wire_tiles, flow.routing.total_wire_tiles, 1e-9);
  EXPECT_GT(rep.mean_net_wirelength, 0.0);
  EXPECT_GE(rep.max_net_wirelength,
            static_cast<std::size_t>(rep.mean_net_wirelength));
  EXPECT_GE(rep.occupancy_max, rep.occupancy_median);
  EXPECT_GE(rep.occupancy_median, rep.occupancy_min);
  EXPECT_LE(rep.occupancy_max, 1.0);
  // Histogram covers every net.
  std::size_t total = 0;
  for (std::size_t b : rep.wirelength_histogram) total += b;
  EXPECT_EQ(total, rep.nets);
  EXPECT_NE(rep.to_string().find("channel occupancy"), std::string::npos);
}

TEST(RouteReportTest, RejectsFailedRouting) {
  const auto& flow = shared_flow();
  RoutingResult bad;
  bad.success = false;
  EXPECT_THROW(summarize_routing(flow.graph_view(), flow.placement, bad),
               std::invalid_argument);
}

TEST(Vcd, EmitsWellFormedDump) {
  Circuit ckt;
  const auto a = ckt.add_node("sig_a");
  const auto b = ckt.add_node("sig_b");
  ckt.add_voltage_source(a, PwlWave({{0.0, 0.0}, {1e-9, 1.0}}));
  ckt.add_resistor(a, b, 1e3);
  ckt.add_capacitor(b, Circuit::ground(), 1e-12);
  TransientSim sim(ckt, 1e-11);
  const auto tr = sim.run(3e-9, 10);

  const std::string vcd = write_vcd_string(ckt, tr, {a, b});
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var real 64 ! sig_a $end"), std::string::npos);
  EXPECT_NE(vcd.find("sig_b"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("r0"), std::string::npos);  // real value records
  EXPECT_THROW(write_vcd_string(ckt, tr, {99}), std::out_of_range);
}

TEST(Vcd, DeltaSuppressionShrinksOutput) {
  Circuit ckt;
  const auto a = ckt.add_node("flat");
  ckt.add_voltage_source(a, PwlWave(1.0));
  ckt.add_resistor(a, Circuit::ground(), 1e3);
  TransientSim sim(ckt, 1e-11);
  const auto tr = sim.run(3e-9, 1);
  const std::string vcd = write_vcd_string(ckt, tr, {a});
  // Constant node: exactly one value record after the header.
  const auto first = vcd.find("r1 ");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(vcd.find("r1 ", first + 1), std::string::npos);
}

}  // namespace
}  // namespace nemfpga
