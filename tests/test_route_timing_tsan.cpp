// ThreadSanitizer coverage for the *timing-driven* net-parallel route
// stage, the companion of test_route_tsan. The incremental STA hook is
// updated only on the serial orchestration path (between iterations and
// after commits); inside a batch, workers query criticality(), the
// per-node delay table and the delay lookahead concurrently but
// read-only. Under -DNF_TSAN=ON this certifies that contract; in a
// plain build it is a fast smoke that the blended-cost search really ran
// concurrent batch members. Two iterations, not one, so the hook's
// first real (all-nets) update and a dirty-set update both happen with
// the pool live.
#include <gtest/gtest.h>

#include "netlist/mcnc.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"
#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

TEST(RouteTimingTsan, ParallelTimingDrivenIterationsAreRaceFree) {
  Netlist nl = generate_benchmark("tseng");
  ArchParams arch;
  arch.W = 48;
  Packing pk = pack_netlist(nl, arch);
  const auto [nx, ny] =
      grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
  PlaceOptions popt;
  popt.inner_num = 0.3;
  const Placement pl = place(nl, pk, arch, nx, ny, popt);
  const RrGraph g(arch, pl.nx, pl.ny);
  const ElectricalView view = make_view(arch, FpgaVariant::kCmosBaseline);

  ThreadPool wide(8);
  ThreadPool::ScopedUse use(wide);

  RouteOptions opt;  // defaults: lookahead on, net_parallel on
  opt.timing_driven = true;
  opt.max_iterations = 2;
  const auto hook = make_incremental_sta(nl, pk, pl, g, view,
                                         opt.criticality_exp,
                                         opt.max_criticality);
  opt.timing_hook = hook.get();
  const RoutingResult r = route_all(g, pl, opt);

  // Two iterations rarely clear congestion; what matters is that the
  // batched timing-driven stage ran concurrent members and the STA hook
  // actually did work between them.
  EXPECT_EQ(r.iterations, 2u);
  EXPECT_GT(r.counters.batches, 0u);
  EXPECT_GT(r.counters.nets_routed, 0u);
  EXPECT_GT(r.counters.sta_net_evals, 0u);
  EXPECT_GT(r.counters.sta_block_updates, 0u);
}

}  // namespace
}  // namespace nemfpga
