// Golden routing results: the scratch-arena / incremental-overuse rebuild
// of the router (PR 2) must be a pure constant-factor change — same Wmin,
// bit-identical trees — for the seed circuits, at any thread count. The
// golden constants below were captured from the pre-rewrite PathFinder
// implementation (commit 92268f1) and pin that behaviour down.
#include <gtest/gtest.h>

#include <cstdint>

#include "netlist/mcnc.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

/// FNV-1a over every tree's source, edge list and reached sinks, in net
/// order. Any change to any net's topology changes the digest.
std::uint64_t routing_checksum(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& t : r.trees) {
    mix(t.source);
    mix(t.edges.size());
    for (const auto& [from, to] : t.edges) {
      mix((static_cast<std::uint64_t>(from) << 32) | to);
    }
    for (RrNodeId s : t.sinks) mix(s);
  }
  return h;
}

struct Golden {
  const char* circuit;
  std::size_t w_fixed;        ///< Channel width for the fixed-W route.
  std::uint64_t checksum;     ///< routing_checksum at w_fixed.
  std::size_t iterations;     ///< PathFinder iterations at w_fixed.
  std::size_t w_min;          ///< find_min_channel_width (hint 32).
};

// Captured from the pre-rewrite router; see file header.
constexpr Golden kGolden[] = {
    {"tseng", 48, 14510951954434509804ull, 16, 45},
    {"ex5p", 48, 16079088827165314435ull, 9, 45},
};

struct GoldenFlow {
  Netlist nl;
  ArchParams arch;
  Packing pk;
  Placement pl;

  explicit GoldenFlow(const char* name, std::size_t w) {
    nl = generate_benchmark(name);
    arch.W = w;
    pk = pack_netlist(nl, arch);
    const auto [nx, ny] =
        grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
    PlaceOptions popt;
    popt.inner_num = 0.3;  // keep the test quick; still deterministic
    pl = place(nl, pk, arch, nx, ny, popt);
  }
};

class RouteGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(RouteGolden, FixedWidthTreesAndWminMatchGolden) {
  const Golden& gold = GetParam();
  GoldenFlow f(gold.circuit, gold.w_fixed);
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);

  ThreadPool serial(1), wide(8);
  RoutingResult r1, r8;
  ChannelWidthResult w1, w8;
  {
    ThreadPool::ScopedUse use(serial);
    r1 = route_all(g, f.pl);
    w1 = find_min_channel_width(f.arch, f.pl, 32);
  }
  {
    ThreadPool::ScopedUse use(wide);
    r8 = route_all(g, f.pl);
    w8 = find_min_channel_width(f.arch, f.pl, 32);
  }

  ASSERT_TRUE(r1.success);
  check_routing(g, f.pl, r1);

  // Observability counters: the search did real work, and the scratch
  // arena hit steady state — buffer growths are confined to the first few
  // nets, so the per-net loop is allocation-free for >99% of nets.
  const RouteCounters& c = r1.counters;
  EXPECT_GT(c.heap_pushes, 0u);
  EXPECT_GE(c.heap_pushes, c.heap_pops);
  EXPECT_GT(c.nodes_expanded, 0u);
  EXPECT_GT(c.sink_searches, 0u);
  EXPECT_GT(c.nets_routed, 0u);
  EXPECT_LE(c.scratch_grows * 100, c.nets_routed);

  EXPECT_EQ(routing_checksum(r1), gold.checksum) << gold.circuit;
  EXPECT_EQ(r1.iterations, gold.iterations) << gold.circuit;
  EXPECT_EQ(w1.w_min, gold.w_min) << gold.circuit;

  // Thread count must not influence any routing decision.
  EXPECT_EQ(routing_checksum(r8), routing_checksum(r1));
  EXPECT_EQ(r8.iterations, r1.iterations);
  EXPECT_EQ(w8.w_min, w1.w_min);
}

INSTANTIATE_TEST_SUITE_P(Seed, RouteGolden, ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           return std::string(info.param.circuit);
                         });

}  // namespace
}  // namespace nemfpga
