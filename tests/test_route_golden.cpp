// Golden routing results, two layers:
//  - Legacy profile (astar_factor=0, net_parallel=false): the A*/parallel
//    rebuild of the router must leave this configuration bit-identical to
//    the pre-rewrite PathFinder — the constants were captured from the
//    pre-scratch-arena implementation (commit 92268f1) and have survived
//    two search-core rewrites unchanged.
//  - Default profile (geometric lookahead + deterministic net-parallel
//    batches): its own golden constants, which additionally must be
//    bit-identical at any thread count.
#include <gtest/gtest.h>

#include <cstdint>

#include "netlist/mcnc.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

/// FNV-1a over every tree's source, edge list and reached sinks, in net
/// order. Any change to any net's topology changes the digest.
std::uint64_t routing_checksum(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& t : r.trees) {
    mix(t.source);
    mix(t.edges.size());
    for (const auto& [from, to] : t.edges) {
      mix((static_cast<std::uint64_t>(from) << 32) | to);
    }
    for (RrNodeId s : t.sinks) mix(s);
  }
  return h;
}

struct Golden {
  const char* circuit;
  std::size_t w_fixed;        ///< Channel width for the fixed-W route.
  std::uint64_t checksum;     ///< routing_checksum at w_fixed.
  std::size_t iterations;     ///< PathFinder iterations at w_fixed.
  std::size_t w_min;          ///< find_min_channel_width (hint 32).
};

// Captured from the pre-rewrite router; see file header.
constexpr Golden kLegacyGolden[] = {
    {"tseng", 48, 14510951954434509804ull, 16, 45},
    {"ex5p", 48, 16079088827165314435ull, 9, 45},
};

// Captured from the A*-lookahead net-parallel router (this PR's default).
constexpr Golden kDefaultGolden[] = {
    {"tseng", 48, 11200517890288158270ull, 21, 45},
    {"ex5p", 48, 16681933439583506956ull, 11, 45},
};

struct GoldenFlow {
  Netlist nl;
  ArchParams arch;
  Packing pk;
  Placement pl;

  explicit GoldenFlow(const char* name, std::size_t w) {
    nl = generate_benchmark(name);
    arch.W = w;
    pk = pack_netlist(nl, arch);
    const auto [nx, ny] =
        grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
    PlaceOptions popt;
    popt.inner_num = 0.3;  // keep the test quick; still deterministic
    pl = place(nl, pk, arch, nx, ny, popt);
  }
};

class RouteGoldenLegacy : public ::testing::TestWithParam<Golden> {};

TEST_P(RouteGoldenLegacy, LegacyProfileIsBitExact) {
  const Golden& gold = GetParam();
  GoldenFlow f(gold.circuit, gold.w_fixed);
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);

  RouteOptions legacy;
  legacy.astar_factor = 0.0;
  legacy.net_parallel = false;

  ThreadPool serial(1);
  ThreadPool::ScopedUse use(serial);
  const RoutingResult r = route_all(g, f.pl, legacy);
  const ChannelWidthResult w = find_min_channel_width(f.arch, f.pl, 32,
                                                      legacy);

  ASSERT_TRUE(r.success);
  check_routing(g, f.pl, r);

  // Observability counters: the search did real work, and the scratch
  // arena hit steady state — buffer growths are confined to the first few
  // nets, so the per-net loop is allocation-free for >99% of nets.
  const RouteCounters& c = r.counters;
  EXPECT_GT(c.heap_pushes, 0u);
  EXPECT_GE(c.heap_pushes, c.heap_pops);
  EXPECT_GT(c.nodes_expanded, 0u);
  EXPECT_GT(c.sink_searches, 0u);
  EXPECT_GT(c.nets_routed, 0u);
  EXPECT_LE(c.scratch_grows * 100, c.nets_routed);
  // Nothing A*/parallel may run in the legacy profile.
  EXPECT_EQ(c.lookahead_hits, 0u);
  EXPECT_EQ(c.batches, 0u);
  EXPECT_EQ(c.conflict_replays, 0u);
  EXPECT_EQ(c.t_lookahead_build_s, 0.0);

  EXPECT_EQ(routing_checksum(r), gold.checksum) << gold.circuit;
  EXPECT_EQ(r.iterations, gold.iterations) << gold.circuit;
  EXPECT_EQ(w.w_min, gold.w_min) << gold.circuit;
}

class RouteGoldenDefault : public ::testing::TestWithParam<Golden> {};

TEST_P(RouteGoldenDefault, DefaultProfileMatchesGoldenAtAnyThreadCount) {
  const Golden& gold = GetParam();
  GoldenFlow f(gold.circuit, gold.w_fixed);
  const RrGraph g(f.arch, f.pl.nx, f.pl.ny);

  ThreadPool serial(1), wide(8);
  RoutingResult r1, r8;
  ChannelWidthResult w1, w8;
  {
    ThreadPool::ScopedUse use(serial);
    r1 = route_all(g, f.pl);
    w1 = find_min_channel_width(f.arch, f.pl, 32);
  }
  {
    ThreadPool::ScopedUse use(wide);
    r8 = route_all(g, f.pl);
    w8 = find_min_channel_width(f.arch, f.pl, 32);
  }

  ASSERT_TRUE(r1.success);
  check_routing(g, f.pl, r1);

  const RouteCounters& c = r1.counters;
  EXPECT_GT(c.lookahead_hits, 0u);
  EXPECT_GT(c.batches, 0u);
  // Disjoint batches never conflict on a resource, but a speculative
  // member whose sink needs a detour outside its routing window is
  // replayed serially too (the unconstrained-retry path) — those replays
  // are decided by the frozen batch state, so the count is part of the
  // bit-determinism contract checked against r8 below, not zero.
  EXPECT_GT(c.t_lookahead_build_s, 0.0);
  EXPECT_LE(c.scratch_grows * 100, c.nets_routed);

  EXPECT_EQ(routing_checksum(r1), gold.checksum) << gold.circuit;
  EXPECT_EQ(r1.iterations, gold.iterations) << gold.circuit;
  EXPECT_EQ(w1.w_min, gold.w_min) << gold.circuit;

  // Thread count must not influence any routing decision, nor any
  // counter other than scratch_grows (per-worker arena warm-up).
  EXPECT_EQ(routing_checksum(r8), routing_checksum(r1));
  EXPECT_EQ(r8.iterations, r1.iterations);
  EXPECT_EQ(w8.w_min, w1.w_min);
  EXPECT_EQ(r8.counters.heap_pushes, c.heap_pushes);
  EXPECT_EQ(r8.counters.nodes_expanded, c.nodes_expanded);
  EXPECT_EQ(r8.counters.batches, c.batches);
  EXPECT_EQ(r8.counters.conflict_replays, c.conflict_replays);
}

INSTANTIATE_TEST_SUITE_P(Seed, RouteGoldenLegacy,
                         ::testing::ValuesIn(kLegacyGolden),
                         [](const auto& info) {
                           return std::string(info.param.circuit);
                         });
INSTANTIATE_TEST_SUITE_P(Seed, RouteGoldenDefault,
                         ::testing::ValuesIn(kDefaultGolden),
                         [](const auto& info) {
                           return std::string(info.param.circuit);
                         });

}  // namespace
}  // namespace nemfpga
