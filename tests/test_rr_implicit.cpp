// Differential equivalence of the two RR-graph backends: the implicit
// (coordinate-computed) graph must reproduce the explicit builder's node
// records AND edge lists id-by-id, in order — edge order feeds the
// router's heap tie-breaking, so order equality is what makes routing
// bit-identical across backends. The sweep covers non-square grids, odd
// and even channel widths, every segment length 1..4, fc extremes,
// dense_fanout and varying pad counts; a dedicated boundary test walks
// every border coordinate class (x=0, y=0, max edge, clamp-folded end
// segments) since packed-id arithmetic is most fragile there.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "arch/rr_graph.hpp"

namespace nemfpga {
namespace {

struct Fabric {
  std::string name;
  ArchParams arch;
  std::size_t nx, ny;
};

ArchParams small_arch(std::size_t W, std::size_t L) {
  ArchParams a;
  a.W = W;
  a.L = L;
  return a;
}

std::vector<Fabric> fabrics() {
  std::vector<Fabric> fs;
  fs.push_back({"baseline-4x4", small_arch(12, 4), 4, 4});
  fs.push_back({"nonsquare-5x2", small_arch(10, 3), 5, 2});
  fs.push_back({"nonsquare-2x7", small_arch(14, 2), 2, 7});
  fs.push_back({"min-grid-1x1", small_arch(6, 4), 1, 1});
  fs.push_back({"L1-6x3", small_arch(8, 1), 6, 3});
  fs.push_back({"odd-W", small_arch(9, 3), 3, 3});
  fs.push_back({"min-W", small_arch(2, 2), 3, 4});
  {
    Fabric f{"dense-fanout", small_arch(8, 4), 3, 3};
    f.arch.dense_fanout = true;
    fs.push_back(f);
  }
  {
    Fabric f{"fc-extremes", small_arch(16, 4), 4, 3};
    f.arch.fc_in = 1.0;
    f.arch.fc_out = 0.9;
    f.arch.io_per_pad = 3;
    fs.push_back(f);
  }
  {
    Fabric f{"fc-tiny", small_arch(20, 4), 3, 5};
    f.arch.fc_in = 0.01;  // rounds to the 1-track floor
    f.arch.fc_out = 0.01;
    f.arch.io_per_pad = 1;
    fs.push_back(f);
  }
  {
    // L > span: every wire is a single clamp-folded segment.
    Fabric f{"L-exceeds-span", small_arch(8, 4), 2, 3};
    fs.push_back(f);
  }
  return fs;
}

void expect_node_eq(const RrNode& e, const RrNode& i, RrNodeId id,
                    const std::string& name) {
  ASSERT_EQ(static_cast<int>(e.type), static_cast<int>(i.type))
      << name << " node " << id;
  EXPECT_EQ(e.increasing, i.increasing) << name << " node " << id;
  EXPECT_EQ(e.length, i.length) << name << " node " << id;
  EXPECT_EQ(e.capacity, i.capacity) << name << " node " << id;
  EXPECT_EQ(e.x_lo, i.x_lo) << name << " node " << id;
  EXPECT_EQ(e.x_hi, i.x_hi) << name << " node " << id;
  EXPECT_EQ(e.y_lo, i.y_lo) << name << " node " << id;
  EXPECT_EQ(e.y_hi, i.y_hi) << name << " node " << id;
  EXPECT_EQ(e.track, i.track) << name << " node " << id;
}

void expect_edges_eq(std::span<const RrEdge> e,
                     const std::vector<RrEdge>& i, RrNodeId id,
                     const std::string& name) {
  ASSERT_EQ(e.size(), i.size()) << name << " node " << id << " out-degree";
  for (std::size_t k = 0; k < e.size(); ++k) {
    EXPECT_EQ(e[k].to, i[k].to)
        << name << " node " << id << " edge " << k;
    EXPECT_EQ(static_cast<int>(e[k].sw), static_cast<int>(i[k].sw))
        << name << " node " << id << " edge " << k;
  }
}

// The tentpole's differential fixture: every node record and every edge
// list, in enumeration order, across all fabric shapes.
TEST(RrImplicit, NodeAndEdgeListsMatchExplicitIdById) {
  for (const Fabric& f : fabrics()) {
    const RrGraph exp(f.arch, f.nx, f.ny);
    const ImplicitRrGraph imp(f.arch, f.nx, f.ny);
    ASSERT_EQ(exp.node_count(), imp.node_count()) << f.name;
    ASSERT_EQ(exp.wire_count(), imp.wire_count()) << f.name;
    std::vector<RrEdge> buf;
    for (RrNodeId id = 0; id < exp.node_count(); ++id) {
      expect_node_eq(exp.node(id), imp.node(id), id, f.name);
      buf.clear();
      imp.append_edges(id, buf);
      expect_edges_eq(exp.edges(id), buf, id, f.name);
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << f.name << ": first divergence at node " << id;
      }
    }
    EXPECT_EQ(exp.edge_count(), imp.edge_count()) << f.name;
  }
}

// Satellite: packed-id arithmetic audit at fabric boundaries. For every
// border coordinate (x=0 / x=nx+1 columns, y=0 / y=ny+1 rows) and every
// channel end position (1 and span — where end segments clamp-fold and
// switch-box moves must stub out), recompute the implicit answer through
// the coordinate API and compare against the explicit oracle.
TEST(RrImplicit, BoundaryCoordinateSweepMatchesOracle) {
  for (const Fabric& f : fabrics()) {
    const RrGraph exp(f.arch, f.nx, f.ny);
    const ImplicitRrGraph imp(f.arch, f.nx, f.ny);
    const std::size_t nx = f.nx, ny = f.ny;
    // Every grid cell, border and interior: site classification + ids.
    for (std::size_t y = 0; y <= ny + 1; ++y) {
      for (std::size_t x = 0; x <= nx + 1; ++x) {
        ASSERT_EQ(exp.is_lb(x, y), imp.is_lb(x, y)) << f.name;
        ASSERT_EQ(exp.is_io(x, y), imp.is_io(x, y)) << f.name;
        if (!exp.is_lb(x, y) && !exp.is_io(x, y)) {
          EXPECT_THROW((void)imp.site(x, y), std::out_of_range) << f.name;
          continue;
        }
        const SiteIds& se = exp.site(x, y);
        const SiteRef si = imp.site(x, y);
        EXPECT_EQ(se.source, si.source) << f.name << " (" << x << "," << y << ")";
        EXPECT_EQ(se.sink, si.sink) << f.name << " (" << x << "," << y << ")";
        ASSERT_EQ(se.opins.size(), 1u) << f.name;
        ASSERT_EQ(se.ipins.size(), 1u) << f.name;
        EXPECT_EQ(se.opins[0], si.opin) << f.name << " (" << x << "," << y << ")";
        EXPECT_EQ(se.ipins[0], si.ipin) << f.name << " (" << x << "," << y << ")";
        EXPECT_EQ(se.pin_count_opin, si.pin_count_opin) << f.name;
        EXPECT_EQ(se.pin_count_ipin, si.pin_count_ipin) << f.name;
        // Per-physical-pin patterns (configuration-compiler surface),
        // including pin indices whose preferred side is invalid at the
        // border and fall back.
        for (std::size_t p = 0; p < se.pin_count_ipin; ++p) {
          EXPECT_EQ(exp.ipin_tap_wires(x, y, p), imp.ipin_tap_wires(x, y, p))
              << f.name << " ipin pattern (" << x << "," << y << ") pin " << p;
        }
        for (std::size_t p = 0; p < se.pin_count_opin; ++p) {
          EXPECT_EQ(exp.opin_start_wires(x, y, p),
                    imp.opin_start_wires(x, y, p))
              << f.name << " opin pattern (" << x << "," << y << ") pin " << p;
        }
      }
    }
    // Boundary wires: every wire touching a channel end (the clamp-folded
    // segments) and every wire in the outermost channels.
    std::vector<RrEdge> buf;
    for (RrNodeId id = 0; id < exp.node_count(); ++id) {
      const RrNode& n = exp.node(id);
      if (n.type != RrType::kChanX && n.type != RrType::kChanY) continue;
      const bool chanx = n.type == RrType::kChanX;
      const std::size_t span = chanx ? nx : ny;
      const std::size_t lo = chanx ? n.x_lo : n.y_lo;
      const std::size_t hi = chanx ? n.x_hi : n.y_hi;
      const std::size_t chan = chanx ? n.y_lo : n.x_lo;
      const bool at_boundary = lo == 1 || hi == span || chan == 0 ||
                               chan == (chanx ? ny : nx);
      if (!at_boundary) continue;
      buf.clear();
      imp.append_edges(id, buf);
      expect_edges_eq(exp.edges(id), buf, id, f.name + " boundary wire");
      if (HasFatalFailure()) return;
    }
  }
}

// Per-pattern differential sweep: every switch-block pattern the arch
// layer recognizes must stay node- and edge-identical across the two
// backends — both call ArchParams::sb_turn_track, but each applies it
// inside its own enumeration machinery, so this pins the composition,
// not just the shared helper. Custom rotations cover r=0 (degenerates
// to subset), a W-coprime rotation, and r > W (modulo fold).
TEST(RrImplicit, EveryPatternMatchesExplicitIdById) {
  struct Pattern {
    std::string name;
    SbPattern pattern;
    std::size_t rot;
  };
  const std::vector<Pattern> patterns = {
      {"subset", SbPattern::kSubset, 5},
      {"universal", SbPattern::kUniversal, 5},
      {"custom-rot0", SbPattern::kCustom, 0},
      {"custom-rot3", SbPattern::kCustom, 3},
      {"custom-rot19", SbPattern::kCustom, 19},
  };
  for (const Pattern& p : patterns) {
    for (Fabric f : fabrics()) {
      f.arch.sb_pattern = p.pattern;
      f.arch.sb_custom_rot = p.rot;
      const std::string name = f.name + "/" + p.name;
      const RrGraph exp(f.arch, f.nx, f.ny);
      const ImplicitRrGraph imp(f.arch, f.nx, f.ny);
      ASSERT_EQ(exp.node_count(), imp.node_count()) << name;
      std::vector<RrEdge> buf;
      for (RrNodeId id = 0; id < exp.node_count(); ++id) {
        expect_node_eq(exp.node(id), imp.node(id), id, name);
        buf.clear();
        imp.append_edges(id, buf);
        expect_edges_eq(exp.edges(id), buf, id, name);
        if (HasFatalFailure() || HasNonfatalFailure()) {
          FAIL() << name << ": first divergence at node " << id;
        }
      }
      EXPECT_EQ(exp.edge_count(), imp.edge_count()) << name;
    }
  }
}

// Patterns must actually differ from each other (a sb_turn_track bug
// that collapses every pattern to Wilton would sail through the
// differential sweep above).
TEST(RrImplicit, PatternsProduceDistinctEdgeSets) {
  ArchParams a;
  a.W = 12;
  a.L = 4;
  auto checksum = [](const ImplicitRrGraph& g) {
    std::uint64_t h = 1469598103934665603ull;
    std::vector<RrEdge> buf;
    for (RrNodeId id = 0; id < g.node_count(); ++id) {
      buf.clear();
      g.append_edges(id, buf);
      for (const RrEdge& e : buf) {
        h ^= (static_cast<std::uint64_t>(id) << 32) ^ e.to;
        h *= 1099511628211ull;
      }
    }
    return h;
  };
  std::vector<std::uint64_t> sums;
  for (SbPattern p : {SbPattern::kWilton, SbPattern::kSubset,
                      SbPattern::kUniversal, SbPattern::kCustom}) {
    ArchParams ap = a;
    ap.sb_pattern = p;
    ap.sb_custom_rot = 3;
    sums.push_back(checksum(ImplicitRrGraph(ap, 4, 4)));
  }
  for (std::size_t i = 0; i < sums.size(); ++i) {
    for (std::size_t j = i + 1; j < sums.size(); ++j) {
      EXPECT_NE(sums[i], sums[j])
          << sb_pattern_name(static_cast<SbPattern>(i)) << " vs "
          << sb_pattern_name(static_cast<SbPattern>(j));
    }
  }
}

// The view facade must dispatch identically over both backends.
TEST(RrImplicit, ViewDispatchesBothBackends) {
  const Fabric f = fabrics().front();
  const RrGraph exp(f.arch, f.nx, f.ny);
  const ImplicitRrGraph imp(f.arch, f.nx, f.ny);
  const RrGraphView ve(exp), vi(imp);
  EXPECT_FALSE(ve.implicit());
  EXPECT_TRUE(vi.implicit());
  ASSERT_EQ(ve.node_count(), vi.node_count());
  EXPECT_EQ(ve.edge_count(), vi.edge_count());
  std::vector<RrEdge> be, bi;
  for (RrNodeId id = 0; id < ve.node_count(); ++id) {
    const std::span<const RrEdge> ee = ve.edges(id, be);
    const std::span<const RrEdge> ei = vi.edges(id, bi);
    ASSERT_EQ(ee.size(), ei.size()) << "node " << id;
    std::size_t k = 0;
    vi.for_each_edge(id, [&](const RrEdge& e) {
      ASSERT_LT(k, ee.size());
      EXPECT_EQ(ee[k].to, e.to) << "node " << id << " edge " << k;
      ++k;
    });
    EXPECT_EQ(k, ee.size()) << "node " << id;
  }
}

// The point of the backend: resident memory per node must drop by well
// over the 5x acceptance floor even on a small fabric (the gap widens
// with size — the implicit state is O(W + nx + ny)).
TEST(RrImplicit, ImplicitMemoryIsFarBelowExplicit) {
  ArchParams a;
  a.W = 32;
  const RrGraph exp(a, 10, 10);
  const ImplicitRrGraph imp(a, 10, 10);
  EXPECT_EQ(exp.memory_bytes() / exp.node_count(),
            exp.memory_bytes() / exp.node_count());
  EXPECT_GE(exp.memory_bytes(), 5 * imp.memory_bytes())
      << "explicit=" << exp.memory_bytes()
      << " implicit=" << imp.memory_bytes();
  const double per_node_exp = static_cast<double>(exp.memory_bytes()) /
                              static_cast<double>(exp.node_count());
  const double per_node_imp = static_cast<double>(imp.memory_bytes()) /
                              static_cast<double>(imp.node_count());
  EXPECT_GE(per_node_exp, 5.0 * per_node_imp);
}

}  // namespace
}  // namespace nemfpga
