// Golden bit-identity for the switch-technology registry refactor: with
// the default Wilton switch block, a timing-driven flow driven by each of
// the three paper variants — addressed by registry NAME, through the
// post-refactor make_view/delay-model path — must reproduce these pinned
// constants on BOTH RR-graph backends. The constants equal what the
// pre-registry enum-switch code produced (tests/test_route_golden.cpp
// pins the same router against pre-refactor checksums and passes, which
// transfers the bit-identity proof to this fixture); any future backend
// or pattern work must leave them untouched.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>

#include "core/flow.hpp"
#include "netlist/synth_gen.hpp"
#include "service/job_scheduler.hpp"

namespace nemfpga {
namespace {

SynthSpec golden_spec() {
  SynthSpec s;
  s.name = "backend-golden";
  s.n_luts = 300;
  s.n_inputs = 24;
  s.n_outputs = 24;
  s.n_latches = 40;
  return s;
}

FlowOptions golden_options(RrBackend rr) {
  FlowOptions opt;
  opt.arch.W = 32;  // Wilton default pattern, paper-default everything else
  opt.route.timing_driven = true;
  opt.route.rr_backend = rr;
  opt.place.inner_num = 0.3;  // quick but fully deterministic
  return opt;
}

struct Golden {
  const char* backend;          ///< Registry name (device/switch_tech.hpp).
  std::uint64_t checksum;       ///< routing_tree_checksum.
  std::size_t iterations;       ///< PathFinder iterations.
  std::uint64_t critical_bits;  ///< bit_cast<uint64_t>(critical_path_s).
};

// Captured from the pre-registry flow (see file header).
constexpr Golden kGolden[] = {
    {"cmos", 11339449222817022778ull, 36, 4484225544624440111ull},
    {"nem-naive", 2912946453159584416ull, 29, 4480860159663316057ull},
    {"nem-opt", 158391265738678259ull, 22, 4479878961950401530ull},
};

class BackendGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(BackendGolden, WiltonDefaultIsBitExactOnBothRrBackends) {
  const Golden& gold = GetParam();
  const Netlist nl = generate_netlist(golden_spec());
  for (RrBackend rr : {RrBackend::kExplicit, RrBackend::kImplicit}) {
    FlowOptions opt = golden_options(rr);
    opt.timing_backend = gold.backend;
    const FlowResult r = run_flow(nl, opt);
    const char* which =
        rr == RrBackend::kExplicit ? "explicit" : "implicit";
    ASSERT_TRUE(r.routed()) << gold.backend << " " << which;
    EXPECT_EQ(routing_tree_checksum(r.routing), gold.checksum)
        << gold.backend << " " << which << " checksum "
        << routing_tree_checksum(r.routing) << "ull";
    EXPECT_EQ(r.routing.iterations, gold.iterations)
        << gold.backend << " " << which;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.routing.critical_path_s),
              gold.critical_bits)
        << gold.backend << " " << which << " critical bits "
        << std::bit_cast<std::uint64_t>(r.routing.critical_path_s) << "ull";
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, BackendGolden, ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           std::string n = info.param.backend;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// The legacy enum spellings must land on the exact same flow as the
// registry names they alias.
TEST(BackendGolden, EnumAliasesAreTheSameFlow) {
  const Netlist nl = generate_netlist(golden_spec());
  FlowOptions by_name = golden_options(RrBackend::kImplicit);
  by_name.timing_backend = "nem_opt";  // legacy alias spelling
  FlowOptions canonical = golden_options(RrBackend::kImplicit);
  canonical.timing_backend = "nem-opt";
  const FlowResult a = run_flow(nl, by_name);
  const FlowResult b = run_flow(nl, canonical);
  EXPECT_EQ(routing_tree_checksum(a.routing),
            routing_tree_checksum(b.routing));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.routing.critical_path_s),
            std::bit_cast<std::uint64_t>(b.routing.critical_path_s));
}

}  // namespace
}  // namespace nemfpga
