#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "arch/arch_model.hpp"
#include "config/bitstream.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"

namespace nemfpga {
namespace {

const FlowResult& shared_flow() {
  static const FlowResult flow = [] {
    SynthSpec spec;
    spec.name = "bitstream-fix";
    spec.n_luts = 300;
    spec.n_inputs = 18;
    spec.n_outputs = 14;
    spec.n_latches = 60;
    FlowOptions opt;
    opt.arch.W = 64;
    return run_flow(generate_netlist(spec), opt);
  }();
  return flow;
}

TEST(PinAssign, ConflictFractionWithinModelBound) {
  // Empirical measurement of the pooled-pin routing approximation: with
  // flexible tapping (any tree wire passing the site) most connections get
  // a conflict-free physical pin; the remainder (measured ~15-20% of
  // connections at Fcin = 0.2) each cost one extra CB tap relay — well
  // under 0.2% additional relays per tile. The fraction is asserted here
  // so any regression of the approximation is caught.
  const auto pins = assign_pins(shared_flow());
  EXPECT_GT(pins.total_sinks, 0u);
  EXPECT_LT(pins.conflict_fraction(), 0.25);
}

TEST(PinAssign, PinsWithinRangeAndDistinctPerSite) {
  const auto& flow = shared_flow();
  const auto pins = assign_pins(flow);
  // No two nets sinking at the same site may share an input pin.
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, int> used;
  for (std::size_t i = 0; i < flow.placement.nets.size(); ++i) {
    for (std::size_t k = 0; k < flow.placement.nets[i].sinks.size(); ++k) {
      const auto s = flow.placement.nets[i].sinks[k];
      const auto& l = flow.placement.locs[s];
      const std::size_t pin = pins.ipin_of_sink[i][k];
      ASSERT_NE(pin, kInvalidId);
      ASSERT_LT(pin, flow.graph_view().site(l.x, l.y).pin_count_ipin);
      ++used[{l.x, l.y, pin}];
      // Each connection records the wire it taps.
      EXPECT_NE(pins.tap_wire_of_sink[i][k], kNoRrNode);
    }
  }
  for (const auto& [key, count] : used) EXPECT_EQ(count, 1);
  // Output pins: each driving BLE/pad slot owns its pin, so no two nets
  // from the same site share one.
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, int> oused;
  for (std::size_t i = 0; i < flow.placement.nets.size(); ++i) {
    const auto& l = flow.placement.locs[flow.placement.nets[i].driver];
    ASSERT_NE(pins.opin_of_net[i], kInvalidId);
    ++oused[{l.x, l.y, pins.opin_of_net[i]}];
  }
  for (const auto& [key, count] : oused) EXPECT_EQ(count, 1);
}

TEST(Bitstream, GeneratesConsistentPatterns) {
  const auto& flow = shared_flow();
  const auto bs = generate_bitstream(flow);
  EXPECT_LT(bs.pins.conflict_fraction(), 0.25);
  EXPECT_EQ(bs.extra_taps, bs.pins.conflicted_sinks);
  EXPECT_GT(bs.relays_on, 0u);
  EXPECT_GT(bs.relays_total, bs.relays_on);
  EXPECT_GT(bs.utilization(), 0.0);
  EXPECT_LT(bs.utilization(), 0.5);  // routing fabrics are sparsely used

  const auto& arch = flow.arch;
  const auto comp = tile_composition(arch);
  for (const auto& t : bs.tiles) {
    // Crossbar rows: I + N sources; columns: N*K mux slots.
    for (const auto& [row, col] : t.crossbar_on) {
      EXPECT_LT(row, arch.lb_inputs() + arch.N);
      EXPECT_LT(col, arch.N * arch.K);
    }
    for (const auto& [row, col] : t.cb_on) {
      EXPECT_LT(row, arch.fc_in_tracks());
      EXPECT_LT(col, arch.lb_inputs() + arch.io_per_pad);
    }
    // SB columns: four track blocks — own X channel, folded boundary X
    // channel, own Y channel, folded boundary Y channel.
    for (const auto& [row, col] : t.sb_on) {
      EXPECT_LT(col, 4 * arch.W);
    }
    (void)comp;
  }
}

TEST(Bitstream, CrossbarCountMatchesPackedInputs) {
  const auto& flow = shared_flow();
  const auto bs = generate_bitstream(flow);
  std::size_t expect = 0;
  for (const auto& cl : flow.packing.clusters) {
    for (std::size_t idx : cl.bles) {
      expect += flow.packing.bles[idx].inputs.size();
    }
  }
  std::size_t got = 0;
  for (const auto& t : bs.tiles) got += t.crossbar_on.size();
  EXPECT_EQ(got, expect);
}

TEST(Bitstream, OneSbRelayPerRoutedWire) {
  const auto& flow = shared_flow();
  const auto bs = generate_bitstream(flow);
  std::size_t sb = 0;
  for (const auto& t : bs.tiles) sb += t.sb_on.size();
  // Every routed wire segment has exactly one driver-mux selection; wires
  // revisited by shared paths are emitted once, so the counts match.
  EXPECT_EQ(sb, flow.routing.wire_segments_used);
}

TEST(Bitstream, RelayCoordinatesUniquePerTile) {
  // Regression: SB columns used to be the bare track number, so an
  // X-channel and a Y-channel wire with the same track in one tile
  // collided on a single relay coordinate (caught by the
  // NF_CHECK_INVARIANTS roundtrip checker on the first full circuit).
  const auto& flow = shared_flow();
  const auto bs = generate_bitstream(flow);
  for (const auto& t : bs.tiles) {
    for (const auto* arr : {&t.crossbar_on, &t.cb_on, &t.sb_on}) {
      std::map<std::pair<std::uint16_t, std::uint16_t>, int> seen;
      for (const auto& rc : *arr) ++seen[rc];
      for (const auto& [rc, count] : seen) {
        ASSERT_EQ(count, 1) << "tile (" << t.x << "," << t.y << ") relay ("
                            << rc.first << "," << rc.second
                            << ") programmed twice";
      }
    }
  }
}

TEST(Programming, PlanIsPhysicallySensible) {
  const auto& flow = shared_flow();
  const auto bs = generate_bitstream(flow);
  const auto plan = plan_programming(flow, bs);
  EXPECT_GT(plan.voltages.vhold, 0.0);
  EXPECT_GT(plan.voltages.vselect, 0.0);
  EXPECT_GT(plan.row_steps, 10u);
  EXPECT_LT(plan.row_steps, 200u);
  // ns-scale mechanics, tens of steps -> sub-millisecond configuration.
  EXPECT_GT(plan.total_time, 1e-9);
  EXPECT_LT(plan.total_time, 1e-3);
  EXPECT_GT(plan.line_energy, 0.0);
  EXPECT_LT(plan.line_energy, 1e-3);
}

TEST(Programming, SettleMarginScalesTime) {
  const auto& flow = shared_flow();
  const auto bs = generate_bitstream(flow);
  const auto fast = plan_programming(flow, bs, scaled_relay_22nm(), 5.0);
  const auto slow = plan_programming(flow, bs, scaled_relay_22nm(), 20.0);
  EXPECT_NEAR(slow.total_time / fast.total_time, 4.0, 1e-6);
}

TEST(Bitstream, WorksOnCatalogCircuit) {
  FlowOptions opt;
  opt.arch.W = 118;
  const auto flow = run_flow(generate_benchmark("tseng"), opt);
  const auto bs = generate_bitstream(flow);
  EXPECT_LT(bs.pins.conflict_fraction(), 0.25);
  EXPECT_GT(bs.tiles.size(), flow.packing.clusters.size() / 2);
}

}  // namespace
}  // namespace nemfpga
