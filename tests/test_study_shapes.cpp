// Property sweep: the paper's qualitative claims must hold across
// qualitatively different workload shapes, not just the tuned fixtures —
// combinational-only, register-heavy, IO-heavy and deep/narrow circuits.
#include <gtest/gtest.h>

#include "core/study.hpp"
#include "netlist/synth_gen.hpp"

namespace nemfpga {
namespace {

struct Shape {
  const char* name;
  std::size_t luts;
  std::size_t inputs;
  std::size_t outputs;
  std::size_t latches;
  double locality;
};

class StudyShapeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(StudyShapeSweep, HeadlineInvariantsHold) {
  const Shape& sh = GetParam();
  SynthSpec spec;
  spec.name = std::string("shape-") + sh.name;
  spec.n_luts = sh.luts;
  spec.n_inputs = sh.inputs;
  spec.n_outputs = sh.outputs;
  spec.n_latches = sh.latches;
  spec.locality = sh.locality;

  FlowOptions opt;
  opt.arch.W = 64;
  const auto flow = run_flow(generate_netlist(spec), opt);
  const auto st = run_study(flow);

  // Invariant 1: relays make the same mapped design at least as fast
  // (low Ron, no Vt drop) at every sweep point up to moderate downsizing.
  EXPECT_GE(st.naive.vs.speedup, 1.0) << sh.name;
  EXPECT_GE(st.sweep.front().vs.speedup, 1.0) << sh.name;

  // Invariant 2: the technique always deepens leakage savings over naive.
  EXPECT_GT(st.preferred.vs.leakage_reduction,
            st.naive.vs.leakage_reduction) << sh.name;

  // Invariant 3: every variant strictly reduces leakage (no SRAM, no pass
  // transistors, fewer/smaller buffers) and area (stacking).
  EXPECT_GT(st.naive.vs.leakage_reduction, 1.2) << sh.name;
  EXPECT_GT(st.preferred.vs.leakage_reduction, 3.0) << sh.name;
  EXPECT_GT(st.naive.vs.area_reduction, 1.4) << sh.name;
  EXPECT_GT(st.preferred.vs.area_reduction, 1.8) << sh.name;

  // Invariant 4: iso-throughput dynamic power never increases.
  EXPECT_GT(st.naive.vs.dynamic_reduction, 1.0) << sh.name;
  EXPECT_GT(st.preferred.vs.dynamic_reduction, 1.2) << sh.name;

  // Invariant 5: the preferred corner honors the no-speed-penalty rule.
  EXPECT_GE(st.preferred.vs.speedup, 1.0) << sh.name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StudyShapeSweep,
    ::testing::Values(Shape{"comb", 350, 24, 20, 0, 1.0},
                      Shape{"registered", 300, 20, 16, 250, 1.0},
                      Shape{"io-heavy", 250, 80, 70, 30, 1.0},
                      Shape{"deep-local", 400, 10, 8, 40, 0.5},
                      Shape{"flat-global", 250, 24, 20, 30, 2.0}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      std::string n = info.param.name;
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace nemfpga
