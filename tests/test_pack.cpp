#include <gtest/gtest.h>

#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"
#include "pack/pack.hpp"

namespace nemfpga {
namespace {

ArchParams arch() {
  ArchParams a;
  a.W = 40;
  return a;
}

TEST(Pack, PairsLutWithItsFlipFlop) {
  // lut -> ff, LUT output used only by the FF: must fuse into one BLE.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId q = nl.add_net("q");
  nl.add_input("a", a);
  nl.add_lut("l", {a}, x);
  nl.add_latch("f", x, q);
  nl.add_output("q", q);
  const auto p = pack_netlist(nl, arch());
  ASSERT_EQ(p.bles.size(), 1u);
  EXPECT_NE(p.bles[0].lut, kInvalidId);
  EXPECT_NE(p.bles[0].latch, kInvalidId);
  EXPECT_EQ(p.bles[0].output, q);
  EXPECT_TRUE(p.net_absorbed[x]);
  check_packing(nl, arch(), p);
}

TEST(Pack, MultiFanoutLutOutputKeepsLatchSeparate) {
  // LUT output feeds the FF *and* another LUT: latch must not fuse.
  Netlist nl;
  const NetId a = nl.add_net("a");
  const NetId x = nl.add_net("x");
  const NetId q = nl.add_net("q");
  const NetId y = nl.add_net("y");
  nl.add_input("a", a);
  nl.add_lut("l1", {a}, x);
  nl.add_latch("f", x, q);
  nl.add_lut("l2", {x}, y);
  nl.add_output("q", q);
  nl.add_output("y", y);
  const auto p = pack_netlist(nl, arch());
  EXPECT_EQ(p.bles.size(), 3u);  // l1, l2, standalone latch
  // x is not absorbed into a BLE (it may still be absorbed into a cluster).
  for (const Ble& ble : p.bles) EXPECT_NE(ble.absorbed, x);
  check_packing(nl, arch(), p);
}

TEST(Pack, ClusterRespectsCapacity) {
  SynthSpec spec;
  spec.name = "pack-cap";
  spec.n_luts = 300;
  spec.n_inputs = 20;
  spec.n_latches = 40;
  const Netlist nl = generate_netlist(spec);
  const auto p = pack_netlist(nl, arch());
  check_packing(nl, arch(), p);
  for (const auto& cl : p.clusters) {
    EXPECT_LE(cl.bles.size(), arch().N);
    EXPECT_LE(cl.input_nets.size(), arch().lb_inputs());
  }
}

TEST(Pack, ClusterCountNearOptimal) {
  // Greedy VPack should land within ~35% of ceil(BLEs / N).
  SynthSpec spec;
  spec.name = "pack-eff";
  spec.n_luts = 1000;
  spec.n_inputs = 30;
  spec.n_latches = 150;
  const Netlist nl = generate_netlist(spec);
  const auto p = pack_netlist(nl, arch());
  const std::size_t lower = (p.bles.size() + arch().N - 1) / arch().N;
  EXPECT_GE(p.clusters.size(), lower);
  EXPECT_LE(p.clusters.size(), lower + lower * 35 / 100 + 1);
}

TEST(Pack, AbsorbsIntraClusterNets) {
  SynthSpec spec;
  spec.name = "pack-absorb";
  spec.n_luts = 500;
  spec.n_inputs = 25;
  const Netlist nl = generate_netlist(spec);
  const auto p = pack_netlist(nl, arch());
  std::size_t absorbed = 0;
  for (bool b : p.net_absorbed) absorbed += b;
  // Local netlists should absorb a healthy fraction of nets.
  EXPECT_GT(absorbed, nl.net_count() / 20);
}

TEST(Pack, IoBlocksCreated) {
  SynthSpec spec;
  spec.name = "pack-io";
  spec.n_luts = 100;
  spec.n_inputs = 12;
  spec.n_outputs = 9;
  const Netlist nl = generate_netlist(spec);
  const auto p = pack_netlist(nl, arch());
  EXPECT_EQ(p.io_block_count(), nl.input_count() + nl.output_count());
  std::size_t in_pads = 0, out_pads = 0;
  for (const auto& b : p.blocks) {
    in_pads += (b.type == PackedType::kInputPad);
    out_pads += (b.type == PackedType::kOutputPad);
  }
  EXPECT_EQ(in_pads, nl.input_count());
  EXPECT_EQ(out_pads, nl.output_count());
}

TEST(Pack, BlockOwnerConsistent) {
  SynthSpec spec;
  spec.name = "pack-owner";
  spec.n_luts = 200;
  spec.n_latches = 30;
  const Netlist nl = generate_netlist(spec);
  const auto p = pack_netlist(nl, arch());
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const auto t = nl.block(b).type;
    if (t == BlockType::kLut || t == BlockType::kLatch) {
      ASSERT_LT(p.block_owner[b], p.clusters.size());
    } else {
      ASSERT_GE(p.block_owner[b], p.clusters.size());
      ASSERT_LT(p.block_owner[b], p.blocks.size());
    }
  }
}

TEST(Pack, RejectsOverwideLut) {
  Netlist nl;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) {
    ins.push_back(nl.add_net("i" + std::to_string(i)));
    nl.add_input("in" + std::to_string(i), ins.back());
  }
  const NetId out = nl.add_net("o");
  nl.add_lut("wide", ins, out);
  nl.add_output("o", out);
  EXPECT_THROW(pack_netlist(nl, arch()), std::invalid_argument);  // K = 4
}

TEST(Pack, DeterministicAcrossRuns) {
  SynthSpec spec;
  spec.name = "pack-det";
  spec.n_luts = 400;
  const Netlist nl = generate_netlist(spec);
  const auto p1 = pack_netlist(nl, arch());
  const auto p2 = pack_netlist(nl, arch());
  ASSERT_EQ(p1.clusters.size(), p2.clusters.size());
  for (std::size_t c = 0; c < p1.clusters.size(); ++c) {
    EXPECT_EQ(p1.clusters[c].bles, p2.clusters[c].bles);
  }
}

class PackBenchmarks : public ::testing::TestWithParam<const char*> {};

TEST_P(PackBenchmarks, PacksCleanly) {
  const Netlist nl = generate_benchmark(GetParam());
  ArchParams a;
  a.W = 118;
  const auto p = pack_netlist(nl, a);
  check_packing(nl, a, p);
  // Cluster count should be in the ballpark of LUTs/N.
  EXPECT_LE(p.clusters.size(), nl.lut_count() / a.N * 2 + 10);
}

INSTANTIATE_TEST_SUITE_P(Mcnc, PackBenchmarks,
                         ::testing::Values("tseng", "ex5p", "alu4"));

}  // namespace
}  // namespace nemfpga
