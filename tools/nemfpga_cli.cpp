// nemfpga — command-line driver for the CMOS-NEM FPGA toolkit.
//
//   nemfpga flow   --benchmark alu4 [--width 118] [--study] [--activity]
//   nemfpga flow   --blif design.blif [...]
//   nemfpga flow   --synth 1000 [--inputs N] [--latches N] [...]
//   nemfpga width  --benchmark alu4            # find Wmin / 1.2x Wmin
//   nemfpga eco    --benchmark tseng [--edits 20] [--edit-seed 1]
//   nemfpga serve  [--port 0] [--threads 8] [--cache-mb 4096]
//   nemfpga device                             # relay device card
//
// Exit code 0 on success; diagnostic text on stderr, reports on stdout.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/study.hpp"
#include "device/equivalent.hpp"
#include "device/switch_tech.hpp"
#include "flow/eco.hpp"
#include "netlist/blif.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/simulate.hpp"
#include "netlist/synth_gen.hpp"
#include "route/report.hpp"
#include "service/server.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "verify/generators.hpp"

using namespace nemfpga;

namespace {

struct Args {
  std::string command;
  std::optional<std::string> benchmark;
  std::optional<std::string> blif;
  std::optional<std::size_t> synth_luts;
  std::size_t inputs = 32;
  std::size_t outputs = 32;
  std::size_t latches = 0;
  std::size_t width = 118;
  bool study = false;
  bool activity = false;
  bool timing = false;
  bool place_timing = false;
  std::size_t place_batch = 0;
  double crit_exp = 1.0;
  std::string variant = "cmos";
  std::string sb_pattern = "wilton";
  std::optional<double> downsize;
  std::size_t edits = 20;
  std::uint64_t edit_seed = 1;
  std::size_t port = 0;
  std::size_t threads = 8;
  std::size_t cache_mb = 4096;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: nemfpga <command> [options]\n"
               "commands:\n"
               "  flow    map a circuit and report timing/power/area\n"
               "  width   find the minimum routable channel width\n"
               "  eco     replay a seeded edit stream through a live\n"
               "          incremental ECO session and report per-edit\n"
               "          reroute latency\n"
               "  serve   long-lived flow-as-a-service daemon: accepts\n"
               "          place-and-route jobs as newline-delimited JSON\n"
               "          over TCP (loopback) and runs them concurrently\n"
               "          over a shared content-addressed artifact cache\n"
               "  device  print the NEM relay device card\n"
               "options:\n"
               "  --benchmark NAME   a cataloged circuit (e.g. alu4, clma)\n"
               "  --blif FILE        read a mapped BLIF netlist\n"
               "  --synth N          generate an N-LUT synthetic circuit\n"
               "  --inputs N --outputs N --latches N   synth parameters\n"
               "  --width W          channel width (default 118)\n"
               "  --timing           timing-driven routing (incremental STA\n"
               "                     criticalities blend into the PathFinder\n"
               "                     cost; delays from --variant's view)\n"
               "  --crit-exp E       criticality sharpening exponent "
               "(default 1.0)\n"
               "  --place-timing     criticality-weighted second anneal in\n"
               "                     the placer (reports both the\n"
               "                     bounding-box and weighted objectives)\n"
               "  --place-batch N    speculative move-batch size for the\n"
               "                     deterministic parallel annealer\n"
               "                     (0 = serial; results are identical at\n"
               "                     any thread count)\n"
               "  --backend B        switch-technology backend (registered:\n"
               "                     cmos | nem-naive | nem-opt | rram);\n"
               "                     --variant is an alias\n"
               "  --sb-pattern P     switch-block pattern: wilton | subset |\n"
               "                     universal | custom (default wilton)\n"
               "  --downsize D       wire-buffer downsizing (1..8); only a\n"
               "                     backend with the wire-downsize policy\n"
               "                     (nem-opt) accepts values != 1; default\n"
               "                     4 on nem-opt, 1 elsewhere\n"
               "  --study            full CMOS vs CMOS-NEM comparison\n"
               "  --activity         simulate per-net switching activities\n"
               "  --edits N          eco: edit-stream length (default 20)\n"
               "  --edit-seed S      eco: edit-stream seed (default 1)\n"
               "  --port P           serve: TCP port (default 0 = pick an\n"
               "                     ephemeral port and print it)\n"
               "  --threads N        serve: concurrent flow workers "
               "(default 8)\n"
               "  --cache-mb N       serve: artifact-cache budget "
               "(default 4096)\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + flag).c_str());
      return argv[++i];
    };
    if (flag == "--benchmark") a.benchmark = value();
    else if (flag == "--blif") a.blif = value();
    else if (flag == "--synth") a.synth_luts = std::stoul(value());
    else if (flag == "--inputs") a.inputs = std::stoul(value());
    else if (flag == "--outputs") a.outputs = std::stoul(value());
    else if (flag == "--latches") a.latches = std::stoul(value());
    else if (flag == "--width") a.width = std::stoul(value());
    else if (flag == "--variant" || flag == "--backend") a.variant = value();
    else if (flag == "--sb-pattern") a.sb_pattern = value();
    else if (flag == "--downsize") a.downsize = std::stod(value());
    else if (flag == "--timing") a.timing = true;
    else if (flag == "--place-timing") a.place_timing = true;
    else if (flag == "--place-batch") a.place_batch = std::stoul(value());
    else if (flag == "--crit-exp") a.crit_exp = std::stod(value());
    else if (flag == "--edits") a.edits = std::stoul(value());
    else if (flag == "--edit-seed") a.edit_seed = std::stoull(value());
    else if (flag == "--port") a.port = std::stoul(value());
    else if (flag == "--threads") a.threads = std::stoul(value());
    else if (flag == "--cache-mb") a.cache_mb = std::stoul(value());
    else if (flag == "--study") a.study = true;
    else if (flag == "--activity") a.activity = true;
    else usage(("unknown option " + flag).c_str());
  }
  return a;
}

Netlist load_netlist(const Args& a) {
  int sources = (a.benchmark ? 1 : 0) + (a.blif ? 1 : 0) + (a.synth_luts ? 1 : 0);
  if (sources != 1) usage("give exactly one of --benchmark/--blif/--synth");
  if (a.benchmark) return generate_benchmark(*a.benchmark);
  if (a.blif) return read_blif_file(*a.blif, 4);
  SynthSpec spec;
  spec.name = "cli-synth";
  spec.n_luts = *a.synth_luts;
  spec.n_inputs = a.inputs;
  spec.n_outputs = a.outputs;
  spec.n_latches = a.latches;
  return generate_netlist(spec);
}

/// Canonical registry name for --backend/--variant; unknown names list
/// the registered backends.
std::string parse_backend(const std::string& v) {
  if (!switch_technology_registered(v)) {
    usage(("bad value for --backend: '" + v + "' (registered: " +
           registered_switch_technology_names() + ")")
              .c_str());
  }
  return std::string(switch_technology(v).name());
}

SbPattern parse_sb_pattern(const std::string& v) {
  if (v != "wilton" && v != "subset" && v != "universal" && v != "custom") {
    usage(("bad value for --sb-pattern: '" + v +
           "' (recognized: " + sb_pattern_names() + ")")
              .c_str());
  }
  return sb_pattern_from_name(v);
}

/// Effective wire-buffer downsize: an explicit --downsize is passed
/// through verbatim (make_view rejects unusable values with a named
/// error); without one, a downsizing-capable backend gets the paper's
/// preferred 4x and everything else the neutral 1x.
double effective_downsize(const Args& a, const std::string& backend) {
  if (a.downsize) return *a.downsize;
  return switch_technology(backend).buffer_policy().supports_wire_downsize
             ? 4.0
             : 1.0;
}

int cmd_flow(const Args& a) {
  Netlist nl = load_netlist(a);
  std::fprintf(stderr, "netlist: %zu LUTs, %zu FFs, %zu IOs, %zu nets\n",
               nl.lut_count(), nl.latch_count(),
               nl.input_count() + nl.output_count(), nl.net_count());

  std::optional<ActivityResult> act;
  if (a.activity) {
    std::fprintf(stderr, "simulating switching activities...\n");
    act = estimate_activity(nl);
    std::fprintf(stderr, "mean activity: %.3f\n", act->mean_activity);
  }

  const std::string backend = parse_backend(a.variant);
  FlowOptions opt;
  opt.arch.W = a.width;
  opt.arch.sb_pattern = parse_sb_pattern(a.sb_pattern);
  opt.place.timing_driven = a.place_timing;
  opt.place.batch_moves = a.place_batch;
  if (a.timing) {
    opt.route.timing_driven = true;
    opt.route.criticality_exp = a.crit_exp;
    opt.timing_backend = backend;
  }
  std::fprintf(stderr, "mapping at W=%zu%s...\n", a.width,
               a.timing ? " (timing-driven)" : "");
  const FlowResult flow = run_flow(std::move(nl), opt);
  std::fprintf(stderr,
               "placed %zu clusters on %zux%zu; routed %zu nets in %zu "
               "iterations\n",
               flow.packing.clusters.size(), flow.placement.nx,
               flow.placement.ny, flow.placement.nets.size(),
               flow.routing.iterations);
  if (flow.placement.final_weighted_cost != flow.placement.final_cost) {
    std::fprintf(stderr,
                 "placer: bounding-box cost %.1f (criticality-weighted "
                 "objective %.1f)\n",
                 flow.placement.final_cost,
                 flow.placement.final_weighted_cost);
  } else {
    std::fprintf(stderr, "placer: bounding-box cost %.1f\n",
                 flow.placement.final_cost);
  }
  const RouteCounters& rc = flow.routing.counters;
  std::fprintf(stderr,
               "router: %llu nodes expanded, %llu heap pushes, "
               "%llu lookahead hits, %llu parallel batches, "
               "%llu conflict replays (lookahead build %.3f s)\n",
               static_cast<unsigned long long>(rc.nodes_expanded),
               static_cast<unsigned long long>(rc.heap_pushes),
               static_cast<unsigned long long>(rc.lookahead_hits),
               static_cast<unsigned long long>(rc.batches),
               static_cast<unsigned long long>(rc.conflict_replays),
               rc.t_lookahead_build_s);
  std::fprintf(stderr, "%s",
               summarize_routing(flow.graph_view(), flow.placement,
                                 flow.routing)
                   .to_string()
                   .c_str());

  PowerOptions popt;
  if (act) popt.net_activity = &act->net_activity;

  if (a.study) {
    const StudyResult st = run_study(flow, default_downsizes(), popt);
    TextTable t({"design", "critical path", "dynamic", "leakage", "area"});
    auto row = [&](const std::string& name, const VariantMetrics& m) {
      t.add_row({name, TextTable::num(m.critical_path * 1e9, 3) + " ns",
                 TextTable::num(m.dynamic_power * 1e3, 3) + " mW",
                 TextTable::num(m.leakage_power * 1e3, 3) + " mW",
                 TextTable::num(m.area * 1e6, 4) + " mm2"});
    };
    row("CMOS-only", st.baseline);
    row("CMOS-NEM naive", st.naive.metrics);
    row("CMOS-NEM opt (d=" + TextTable::num(st.preferred.downsize, 1) + ")",
        st.preferred.metrics);
    std::printf("%s\n", t.to_string().c_str());
    std::printf("preferred corner vs baseline: %.2fx speed, %.2fx dynamic, "
                "%.2fx leakage, %.2fx area\n",
                st.preferred.vs.speedup, st.preferred.vs.dynamic_reduction,
                st.preferred.vs.leakage_reduction,
                st.preferred.vs.area_reduction);
    return 0;
  }

  const auto m = evaluate_backend(flow, backend,
                                  effective_downsize(a, backend), popt);
  std::printf("backend        : %s  (sb pattern %s)\n", backend.c_str(),
              a.sb_pattern.c_str());
  std::printf("critical path  : %.3f ns  (fmax %.1f MHz)\n",
              m.critical_path * 1e9, 1e-6 / m.critical_path);
  std::printf("dynamic power  : %.3f mW\n", m.dynamic_power * 1e3);
  std::printf("leakage power  : %.3f mW\n", m.leakage_power * 1e3);
  std::printf("fabric area    : %.4f mm2\n", m.area * 1e6);
  return 0;
}

int cmd_width(const Args& a) {
  Netlist nl = load_netlist(a);
  FlowOptions opt;
  opt.arch.W = a.width;
  opt.arch.sb_pattern = parse_sb_pattern(a.sb_pattern);
  const auto cw = flow_min_channel_width(std::move(nl), opt);
  if (!cw.feasible) {
    std::fprintf(stderr,
                 "width: infeasible — the grow phase hit the W=%zu cap "
                 "without ever routing\n", cw.w_cap);
    return 1;
  }
  std::printf("Wmin        : %zu\n", cw.w_min);
  std::printf("1.2 x Wmin  : %zu (low-stress operating width)\n",
              cw.w_low_stress);
  return 0;
}

int cmd_eco(const Args& a) {
  Netlist nl = load_netlist(a);
  std::fprintf(stderr, "netlist: %zu LUTs, %zu FFs, %zu nets\n",
               nl.lut_count(), nl.latch_count(), nl.net_count());
  EcoOptions opt;
  opt.arch.W = a.width;
  opt.arch.sb_pattern = parse_sb_pattern(a.sb_pattern);
  opt.timing_backend = parse_backend(a.variant);
  const auto now_s = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  std::fprintf(stderr, "compiling base session at W=%zu...\n", a.width);
  double t0 = now_s();
  EcoFlow flow(std::move(nl), opt);
  std::fprintf(stderr, "base compile: %.2f s (%s)\n", now_s() - t0,
               flow.routed() ? "routed" : "UNROUTABLE");
  if (!flow.routed()) return 1;

  std::size_t ok = 0, rejected = 0, unroutable = 0;
  double worst_apply_s = 0.0, total_apply_s = 0.0;
  for (std::size_t step = 0; step < a.edits; ++step) {
    Rng erng = Rng::from_stream(a.edit_seed, step);
    const NetlistDelta d = verify::gen_eco_delta(
        erng, flow.netlist(), flow.packing(), flow.arch(), flow.nx(),
        flow.ny(), flow.placement().locs);
    t0 = now_s();
    const EcoResult r = flow.apply(d);
    const double dt = now_s() - t0;
    switch (r.status) {
      case EcoStatus::kOk:
        ++ok;
        total_apply_s += dt;
        worst_apply_s = dt > worst_apply_s ? dt : worst_apply_s;
        std::printf("edit %3zu: ok        %7.2f ms  %zu nets rerouted "
                    "(%zu invalidated), %zu blocks moved%s%s, "
                    "cp %+.3f ns -> %.3f ns\n",
                    step, dt * 1e3, r.nets_rerouted, r.nets_invalidated,
                    r.blocks_moved, r.full_fallback ? ", FULL FALLBACK" : "",
                    r.cycle_detected ? ", comb cycle (timing off)" : "",
                    r.cp_delta_s * 1e9, r.critical_path_s * 1e9);
        break;
      case EcoStatus::kRejected:
        ++rejected;
        std::printf("edit %3zu: rejected  (%s)\n", step,
                    r.reject_reason.c_str());
        break;
      case EcoStatus::kUnroutable:
        ++unroutable;
        std::printf("edit %3zu: UNROUTABLE at W=%zu\n", step, a.width);
        break;
      case EcoStatus::kNoop:
        std::printf("edit %3zu: noop\n", step);
        break;
    }
  }
  std::printf("\n%zu ok, %zu rejected, %zu unroutable over %zu edits\n",
              ok, rejected, unroutable, a.edits);
  if (ok > 0) {
    std::printf("apply latency: mean %.2f ms, worst %.2f ms\n",
                total_apply_s / static_cast<double>(ok) * 1e3,
                worst_apply_s * 1e3);
  }
  if (flow.has_comb_cycle()) {
    std::printf("final state has a combinational cycle: timing invalid "
                "(last valid critical path %.3f ns)\n",
                flow.critical_path_s() * 1e9);
  } else if (flow.critical_path_s() > 0.0) {
    std::printf("final critical path: %.3f ns  (fmax %.1f MHz)\n",
                flow.critical_path_s() * 1e9,
                1e-6 / flow.critical_path_s());
  }
  return 0;
}

int cmd_serve(const Args& a) {
  if (a.port > 65535) usage("--port must be <= 65535");
  ServeOptions opt;
  opt.port = static_cast<std::uint16_t>(a.port);
  opt.workers = a.threads;
  opt.cache_bytes = a.cache_mb << 20;
  ServeServer server(opt);
  std::fprintf(stderr,
               "nemfpga serve: listening on 127.0.0.1:%u (%zu workers, "
               "%zu MB artifact cache)\n",
               static_cast<unsigned>(server.port()), a.threads, a.cache_mb);
  std::fprintf(stderr,
               "protocol: newline-delimited JSON, e.g.\n"
               "  {\"op\":\"flow\",\"id\":1,\"benchmark\":\"tseng\","
               "\"w\":64}\n"
               "  {\"op\":\"stats\"} / {\"op\":\"shutdown\"}\n");
  server.run();
  std::fprintf(stderr, "nemfpga serve: %s\n", server.stats_json().c_str());
  return 0;
}

int cmd_device() {
  for (const auto& [label, d] :
       {std::pair{"fabricated (Fig 2b)", fabricated_relay()},
        std::pair{"scaled 22nm (Fig 11)", scaled_relay_22nm()}}) {
    const auto eq = equivalent_circuit(d);
    std::printf("%s:\n", label);
    std::printf("  L=%.3g um  h=%.3g nm  g0=%.3g nm  gmin=%.3g nm  (%s)\n",
                d.geometry.length * 1e6, d.geometry.thickness * 1e9,
                d.geometry.gap * 1e9, d.geometry.gap_min * 1e9,
                d.ambient.name.c_str());
    std::printf("  Vpi=%.3f V  Vpo=%.3f V  window=%.3f V  f0=%.3g MHz\n",
                d.pull_in_voltage(), d.pull_out_voltage(),
                d.hysteresis_window(), d.resonant_frequency() / 1e6);
    std::printf("  Ron=%.3g kOhm  Con=%.3g aF  Coff=%.3g aF  Ioff=0\n\n",
                eq.ron / 1e3, eq.con * 1e18, eq.coff * 1e18);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (a.command == "flow") return cmd_flow(a);
    if (a.command == "width") return cmd_width(a);
    if (a.command == "eco") return cmd_eco(a);
    if (a.command == "serve") return cmd_serve(a);
    if (a.command == "device") return cmd_device();
    usage(("unknown command " + a.command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
