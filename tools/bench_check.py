#!/usr/bin/env python3
"""Compare two bench JSON files: BENCH_route.json (schema
nemfpga-route-bench-1/2/3/4), BENCH_place.json (nemfpga-place-bench-1) or
BENCH_eco.json (nemfpga-eco-bench-1).

Usage:
    bench_check.py BASELINE.json CANDIDATE.json [--max-regress PCT]
    bench_check.py --selftest

Exit status is non-zero when the candidate run
  * is missing, malformed, or uses an unknown schema,
  * disagrees with the baseline on any correctness-bearing field
    (Wmin, tree checksum, iteration count, fixed route width), or
  * regresses total wall time by more than --max-regress percent
    (default 15; wall time is noisy, correctness fields are not).

Wall-time comparison is refused — but correctness fields and work
counters still diffed — when the two runs are not wall-comparable:
different schema versions, different thread counts, or mismatched
NF_CHECK_INVARIANTS settings. Counter comparison is likewise skipped
across a router-configuration change (schema mismatch, or different
astar_factor / net_parallel / timing_driven / crit_exp), since a
different search legitimately explores different work; the correctness
fields (Wmin, checksum, iterations, critical path) are then the only
fields that must hold, and only when the router configuration matches.
Cross-schema comparisons (e.g. a schema-2 baseline against a schema-3
timing run) are therefore always refused beyond circuit coverage: a
schema bump changes what the harness measures.

Schema 3 adds the timing-driven router: timing_driven / crit_exp select
the configuration, and critical_path_s joins the correctness fields —
the timing-driven route is bit-deterministic, so any drift between
same-configuration runs is a correctness bug, not noise.

Schema 4 adds the selectable RR backend and the partition scheduler.
The partition knobs (partition_parallel / partition_size) join the
configuration tuple: they change the (still deterministic) routing.
rr_backend deliberately does NOT — the implicit and explicit graphs are
bit-identical by construction, so cross-backend runs must agree on every
correctness field and work counter; diffing them is exactly how that
claim is audited. Wall-time comparison, however, additionally requires
the same rr_backend (per-expansion cost differs between backends), and
the memory measurements (rr_bytes, rr_bytes_per_node, peak_rss_bytes)
are never compared — except rr_nodes, which is backend-invariant and
pinned. A circuit's "infeasible" verdict is a correctness field: a
design flipping between routable and unroutable is a router bug.

The place family (nemfpga-place-bench-1, written by bench/place_perf)
follows the same philosophy with placer-shaped fields. The annealing
trajectory is pinned bit-identical across thread counts AND across the
cost kernels (naive vs incremental), so neither `threads` nor
`cost_kernel` joins the configuration tuple: diffing a 1-thread run
against an 8-thread run, or a naive-kernel run against the incremental
kernel, is exactly how those equivalence claims are audited — the
final cost, the placement checksum, and the move/accept counters must
all hold. The knobs that legitimately change the trajectory
(batch_moves, directed, timing_driven, inner_num, seed) ARE the
configuration. `rescans` is kernel-internal telemetry (the kernels
count fallback work differently), so it is only pinned when the
cost_kernel matches. Wall time additionally requires the same threads
and the same cost_kernel. A route bench and a place bench measure
different programs entirely, so cross-family comparison is a hard
error, not a waiver.

The eco family (nemfpga-eco-bench-1, written by bench/eco_perf) records
a seeded edit-stream replay through a live EcoFlow session. The stream
(edit_seed + edits), the session width and the local-replace seed ARE
the configuration: a different stream applies different edits, so
nothing beyond circuit coverage is comparable across it. Within one
configuration the status tallies (ok/rejected/unroutable), fallback and
work counters, the final tree checksum and the critical path are pinned
bit-identical at any thread count — the ECO reroute sessions run the
deterministic batched scheduler, so cross-thread diffs audit that claim
exactly like the place family's. The latency percentiles (apply_p50_s
and friends) are wall-clock samples: they are compared only between
wall-comparable runs (same schema, threads AND configuration — i.e.
identical edit streams), against the same --max-regress budget as
total_wall_s; everywhere else they are waived, never pinned. Cross-
family comparison is again a hard error.

The serve family (nemfpga-serve-bench-1, written by bench/flow_throughput)
records one job mix — N same-architecture flows differing only in
placement seed — measured as cold-seq / cold-batch / warm-batch modes
(the "circuits" rows). The mix (benchmark, jobs, w, timing, seed0,
cache_mb) IS the configuration; threads is deliberately excluded — the
scheduler is required to be bit-identical at any worker count, so the
cross-thread diff audits exactly that. Within one configuration the
per-mode batch checksum, job tallies and the cache counters (misses /
evictions / reuses / lookahead_cached) are pinned: single-flight
construction makes the build count exact no matter how many workers
race. Wall comparisons (total_wall_s and per-mode wall_s) are REFUSED
across thread counts — an 8-worker batch and a 1-worker batch measure
different machines — and budget-checked otherwise. jobs_per_s and the
artifact microbench walls are never compared (derived / noisy).
Cross-family comparison is a hard error.

The arch family (nemfpga-arch-bench-1, written by bench/arch_exploration)
records the architecture-exploration study: one mapped design per fabric
point (switch-block pattern x segment length x Fc), re-evaluated
electrically under every requested switch-technology backend. The
(benchmark, w, downsize) triple IS the configuration; each "circuits"
row is one (backend, fabric) cell keyed by name. Every metric —
routability verdict, tree checksum, critical path, dynamic/leakage
power, area — is a deterministic function of that cell, so all are
pinned bit-identical within one configuration; the per-cell wall_s and
total_wall_s are the only budget-checked fields, and only between
same-schema same-configuration runs. The paper_slice object (the
NEM-vs-CMOS reduction column at the Table 1 operating point) is pinned
too. Cross-family comparison is a hard error.

Only the Python standard library is used, so the script runs anywhere
CTest does (see the bench_smoke target).
"""

import argparse
import json
import sys

ROUTE_SCHEMAS = ("nemfpga-route-bench-1", "nemfpga-route-bench-2",
                 "nemfpga-route-bench-3", "nemfpga-route-bench-4")
PLACE_SCHEMAS = ("nemfpga-place-bench-1",)
ECO_SCHEMAS = ("nemfpga-eco-bench-1",)
SERVE_SCHEMAS = ("nemfpga-serve-bench-1",)
ARCH_SCHEMAS = ("nemfpga-arch-bench-1",)
SCHEMAS = (ROUTE_SCHEMAS + PLACE_SCHEMAS + ECO_SCHEMAS + SERVE_SCHEMAS +
           ARCH_SCHEMAS)
EXACT_FIELDS = ("wmin", "tree_checksum", "iterations", "fixed_w")
# Later-schema additions; compared with .get() so they are simply absent
# (None == None) when two older files are diffed. rr_nodes is pinned
# because the node set is backend-invariant by construction; rr_bytes
# and the RSS measurements are intentionally NOT here.
EXACT_OPTIONAL_FIELDS = ("critical_path_s", "infeasible", "rr_nodes")
COUNTER_FIELDS = ("heap_pushes", "nodes_expanded", "sink_searches")
COUNTER_OPTIONAL_FIELDS = ("sta_net_evals", "sta_block_updates")

# Place-family correctness fields (flat per-circuit keys, no "counters"
# sub-object). All of these are pinned across thread counts and across
# cost kernels: the speculative batch commit and the incremental cost
# core are both required to reproduce the serial/naive trajectory
# bit-for-bit. rescans is deliberately absent — it counts kernel-internal
# fallback work and is only comparable between identical kernels.
PLACE_EXACT_FIELDS = ("final_cost", "final_weighted_cost", "cost_checksum",
                      "moves", "accepted", "directed_moves", "batches",
                      "conflicts", "repairs", "replays",
                      "route_w", "routed", "critical_path_s")

# Eco-family correctness fields: every one is a deterministic function of
# the edit stream (part of the configuration tuple), pinned bit-identical
# at any thread count. The latency percentiles are deliberately absent —
# they are wall-clock samples, handled by the wall budget below.
ECO_EXACT_FIELDS = ("ok", "rejected", "unroutable", "full_fallbacks",
                    "nets_invalidated", "nets_rerouted", "blocks_moved",
                    "sta_nets_evaluated", "tree_checksum", "final_cycle",
                    "critical_path_s")
# Wall-clock percentile fields checked against the --max-regress budget,
# but only between wall-comparable runs (identical edit streams).
ECO_LATENCY_FIELDS = ("apply_p50_s", "apply_p99_s",
                      "reroute_p50_s", "reroute_p99_s")

# Serve-family correctness fields, pinned per mode (cold-seq /
# cold-batch / warm-batch) within one job-mix configuration at ANY
# worker count: the scheduler is bit-identical across thread counts and
# single-flight construction makes the cache's build count exact.
SERVE_EXACT_FIELDS = ("ok_jobs", "batch_checksum", "cache_misses",
                      "cache_evictions", "cache_reuses",
                      "lookahead_cached")

# Arch-family correctness fields, pinned per (backend, fabric) cell
# within one (benchmark, w, downsize) configuration: the mapping is
# deterministic and the electrical evaluation is pure arithmetic over
# it, so every metric is bit-exact run to run. wall_s is deliberately
# absent (budget-checked instead).
ARCH_EXACT_FIELDS = ("backend", "sb_pattern", "seg_len", "fc_in",
                     "downsize", "routed", "tree_checksum",
                     "critical_path_s", "dynamic_w", "leakage_w",
                     "area_m2")
# The NEM-vs-CMOS reduction column at the Table 1 point; pinned as a
# whole object within one configuration.
ARCH_SLICE_FIELDS = ("downsize", "speedup", "dynamic_reduction",
                     "leakage_reduction", "area_reduction")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") not in SCHEMAS:
        raise ValueError(f"{path}: schema {data.get('schema')!r}, "
                         f"expected one of {SCHEMAS!r}")
    if not isinstance(data.get("circuits"), list) or not data["circuits"]:
        raise ValueError(f"{path}: no circuits recorded")
    return data


def family(data):
    """Which harness produced the file: route, place, eco or serve."""
    if data.get("schema") in PLACE_SCHEMAS:
        return "place"
    if data.get("schema") in ECO_SCHEMAS:
        return "eco"
    if data.get("schema") in SERVE_SCHEMAS:
        return "serve"
    if data.get("schema") in ARCH_SCHEMAS:
        return "arch"
    return "route"


def place_config(data):
    """The fields that select which annealing trajectory ran. threads and
    cost_kernel are deliberately excluded: the placer is required to be
    bit-identical across both, so cross-thread and cross-kernel diffs
    must still pin every correctness field — that diff IS the audit."""
    return ("place-1", data.get("batch_moves"), data.get("directed"),
            data.get("timing_driven"), data.get("inner_num"),
            data.get("seed"))


def eco_config(data):
    """The fields that select which edit stream replayed: the session
    width, the stream (seed + length) and the local-replace seed. threads
    is deliberately excluded — the replay is pinned bit-identical across
    thread counts, and the cross-thread diff IS that audit."""
    return ("eco-1", data.get("w"), data.get("edits"),
            data.get("edit_seed"), data.get("seed"))


def serve_config(data):
    """The fields that select which job mix ran: the circuit, the job
    count, the width, the timing mode, the seed base and the cache
    budget (evictions depend on it). threads is deliberately excluded —
    the scheduler is pinned bit-identical at any worker count, and the
    cross-thread diff IS that audit; wall comparisons are refused across
    thread counts instead."""
    return ("serve-1", data.get("benchmark"), data.get("jobs"),
            data.get("w"), data.get("timing"), data.get("seed0"),
            data.get("cache_mb"))


def arch_config(data):
    """The fields that select which exploration ran: the circuit, the
    channel width and the downsizing factor offered to backends that
    support it. The backend/pattern/fabric axes are deliberately NOT
    part of the configuration — they key the per-cell rows, and a
    candidate sweeping a superset of cells still compares the shared
    ones."""
    return ("arch-1", data.get("benchmark"), data.get("w"),
            data.get("downsize"))


def router_config(data):
    """The fields that select which router ran. Schema 1 predates the
    A*/parallel router, so it is its own configuration; the schema tag is
    part of the key, so cross-schema runs never compare correctness or
    counters (a schema bump changes what the harness measures)."""
    schema = data.get("schema")
    if schema == "nemfpga-route-bench-1":
        return ("bench-1",)
    if schema == "nemfpga-route-bench-2":
        return ("bench-2", data.get("astar_factor"),
                data.get("net_parallel"))
    if schema == "nemfpga-route-bench-3":
        return ("bench-3", data.get("astar_factor"),
                data.get("net_parallel"), data.get("timing_driven"),
                data.get("crit_exp"))
    # Schema 4: the partition scheduler knobs select the routing, the RR
    # backend does not (bit-identical by design — cross-backend runs must
    # agree on correctness fields, which is how the claim is audited).
    return ("bench-4", data.get("astar_factor"), data.get("net_parallel"),
            data.get("timing_driven"), data.get("crit_exp"),
            data.get("partition_parallel"), data.get("partition_size"))


def compare(base, cand, max_regress_pct):
    """Return a list of human-readable failure strings (empty = pass)."""
    if family(base) != family(cand):
        # Unlike a schema bump (which waives down to circuit coverage), a
        # route file and a place file describe different programs; a diff
        # request across families is operator error and must be loud.
        return [f"cannot compare a {family(base)} bench "
                f"({base.get('schema')}) against a {family(cand)} bench "
                f"({cand.get('schema')}): different benchmark families"]
    if family(base) == "place":
        return compare_place(base, cand, max_regress_pct)
    if family(base) == "eco":
        return compare_eco(base, cand, max_regress_pct)
    if family(base) == "serve":
        return compare_serve(base, cand, max_regress_pct)
    if family(base) == "arch":
        return compare_arch(base, cand, max_regress_pct)
    return compare_route(base, cand, max_regress_pct)


def compare_arch(base, cand, max_regress_pct):
    failures = []
    notes = []
    same_config = arch_config(base) == arch_config(cand)
    if not same_config:
        notes.append(
            "arch exploration configuration differs "
            f"({arch_config(base)} vs {arch_config(cand)}): different "
            "studies ran; only checking cell coverage")
    wall_comparable = (
        base.get("schema") == cand.get("schema") and same_config)
    if not wall_comparable:
        notes.append("runs are not wall-comparable: wall budget waived")
    budget = 1.0 + max_regress_pct / 100.0
    base_by_name = {c["name"]: c for c in base["circuits"]}
    for c in cand["circuits"]:
        b = base_by_name.get(c["name"])
        if b is None:
            # Candidate may sweep a superset of cells; that is fine.
            continue
        if not same_config:
            continue
        for fld in ARCH_EXACT_FIELDS:
            if b.get(fld) != c.get(fld):
                failures.append(
                    f"{c['name']}: {fld} changed "
                    f"{b.get(fld)!r} -> {c.get(fld)!r} (the electrical "
                    "evaluation is a pure function of the mapped design; "
                    "any drift is a correctness bug)")
        if wall_comparable:
            bl, cl = b.get("wall_s"), c.get("wall_s")
            if isinstance(bl, (int, float)) and \
                    isinstance(cl, (int, float)) and \
                    bl > 0 and cl > bl * budget:
                failures.append(
                    f"{c['name']}: wall_s regressed "
                    f"{bl:.2f}s -> {cl:.2f}s "
                    f"(> {max_regress_pct:.0f}% budget)")
    missing = [n for n in base_by_name
               if n not in {c["name"] for c in cand["circuits"]}]
    if missing:
        failures.append(f"candidate dropped cells: {', '.join(missing)}")
    if same_config:
        bs, cs = base.get("paper_slice"), cand.get("paper_slice")
        if (bs is None) != (cs is None):
            failures.append(
                "paper_slice coverage changed "
                f"({'present' if bs else 'absent'} -> "
                f"{'present' if cs else 'absent'})")
        elif bs is not None:
            for fld in ARCH_SLICE_FIELDS:
                if bs.get(fld) != cs.get(fld):
                    failures.append(
                        f"paper_slice: {fld} changed "
                        f"{bs.get(fld)!r} -> {cs.get(fld)!r} (the "
                        "NEM-vs-CMOS reduction column is deterministic)")
    bw, cw = base["total_wall_s"], cand["total_wall_s"]
    if wall_comparable and bw > 0 and cw > bw * budget:
        failures.append(
            f"total_wall_s regressed {bw:.2f}s -> {cw:.2f}s "
            f"(> {max_regress_pct:.0f}% budget)")
    for n in notes:
        print(f"bench_check: note: {n}", file=sys.stderr)
    return failures


def compare_serve(base, cand, max_regress_pct):
    failures = []
    notes = []
    same_config = serve_config(base) == serve_config(cand)
    if not same_config:
        notes.append(
            "serve job-mix configuration differs "
            f"({serve_config(base)} vs {serve_config(cand)}): different "
            "flows ran; only checking mode coverage")
    # Wall comparisons are refused across thread counts: an 8-worker
    # batch and a 1-worker batch measure different machines. The pinned
    # counters below are still fully compared — the scheduler and the
    # cache's single-flight protocol are required to be worker-count
    # invariant, and that diff is the audit.
    wall_comparable = (
        base.get("schema") == cand.get("schema")
        and base.get("threads") == cand.get("threads")
        and same_config)
    if not wall_comparable:
        if base.get("threads") != cand.get("threads"):
            notes.append(
                "refusing wall comparison across thread counts "
                f"({base.get('threads')} vs {cand.get('threads')}): wall "
                "budget waived, deterministic counters still pinned")
        else:
            notes.append("runs are not wall-comparable: wall budget waived")
    budget = 1.0 + max_regress_pct / 100.0
    base_by_name = {c["name"]: c for c in base["circuits"]}
    for c in cand["circuits"]:
        b = base_by_name.get(c["name"])
        if b is None:
            continue
        if not same_config:
            continue
        for fld in SERVE_EXACT_FIELDS:
            if b.get(fld) != c.get(fld):
                failures.append(
                    f"{c['name']}: {fld} changed "
                    f"{b.get(fld)!r} -> {c.get(fld)!r} (the job mix is "
                    "pinned bit-identical at any worker count and "
                    "single-flight makes the build count exact; any "
                    "drift is a correctness bug)")
        if wall_comparable:
            bl, cl = b.get("wall_s"), c.get("wall_s")
            if isinstance(bl, (int, float)) and \
                    isinstance(cl, (int, float)) and \
                    bl > 0 and cl > bl * budget:
                failures.append(
                    f"{c['name']}: wall_s regressed "
                    f"{bl:.2f}s -> {cl:.2f}s "
                    f"(> {max_regress_pct:.0f}% budget)")
    missing = [n for n in base_by_name
               if n not in {c["name"] for c in cand["circuits"]}]
    if missing:
        failures.append(f"candidate dropped modes: {', '.join(missing)}")
    bw, cw = base["total_wall_s"], cand["total_wall_s"]
    if wall_comparable and bw > 0 and cw > bw * budget:
        failures.append(
            f"total_wall_s regressed {bw:.2f}s -> {cw:.2f}s "
            f"(> {max_regress_pct:.0f}% budget)")
    for n in notes:
        print(f"bench_check: note: {n}", file=sys.stderr)
    return failures


def compare_eco(base, cand, max_regress_pct):
    failures = []
    notes = []
    same_config = eco_config(base) == eco_config(cand)
    if not same_config:
        notes.append(
            "eco configuration differs "
            f"({eco_config(base)} vs {eco_config(cand)}): a different "
            "edit stream applies different edits; only checking circuit "
            "coverage")
    base_by_name = {c["name"]: c for c in base["circuits"]}
    # Latency percentiles compare only between identical edit streams on
    # like-for-like machines: same schema + threads + configuration.
    wall_comparable = (
        base.get("schema") == cand.get("schema")
        and base.get("threads") == cand.get("threads")
        and same_config)
    if not wall_comparable:
        notes.append(
            "runs are not wall-comparable "
            f"(threads {base.get('threads')} vs {cand.get('threads')}): "
            "wall budget and latency percentiles waived")
    budget = 1.0 + max_regress_pct / 100.0
    for c in cand["circuits"]:
        b = base_by_name.get(c["name"])
        if b is None:
            continue
        if not same_config:
            continue
        for fld in ECO_EXACT_FIELDS:
            if b.get(fld) != c.get(fld):
                failures.append(
                    f"{c['name']}: {fld} changed "
                    f"{b.get(fld)!r} -> {c.get(fld)!r} (the edit-stream "
                    "replay is pinned bit-identical at any thread count; "
                    "any drift is a correctness bug)")
        if wall_comparable:
            for fld in ECO_LATENCY_FIELDS:
                bl, cl = b.get(fld), c.get(fld)
                if isinstance(bl, (int, float)) and \
                        isinstance(cl, (int, float)) and \
                        bl > 0 and cl > bl * budget:
                    failures.append(
                        f"{c['name']}: {fld} regressed "
                        f"{bl * 1e3:.2f}ms -> {cl * 1e3:.2f}ms "
                        f"(> {max_regress_pct:.0f}% budget)")
    missing = [n for n in base_by_name
               if n not in {c["name"] for c in cand["circuits"]}]
    if missing:
        failures.append(f"candidate dropped circuits: {', '.join(missing)}")
    bw, cw = base["total_wall_s"], cand["total_wall_s"]
    if wall_comparable and bw > 0 and cw > bw * budget:
        failures.append(
            f"total_wall_s regressed {bw:.2f}s -> {cw:.2f}s "
            f"(> {max_regress_pct:.0f}% budget)")
    for n in notes:
        print(f"bench_check: note: {n}", file=sys.stderr)
    return failures


def compare_place(base, cand, max_regress_pct):
    failures = []
    notes = []
    same_config = place_config(base) == place_config(cand)
    if not same_config:
        notes.append(
            "placer configuration differs "
            f"({place_config(base)} vs {place_config(cand)}): "
            "correctness fields are not comparable; only checking "
            "circuit coverage")
    same_kernel = base.get("cost_kernel") == cand.get("cost_kernel")
    base_by_name = {c["name"]: c for c in base["circuits"]}
    for c in cand["circuits"]:
        b = base_by_name.get(c["name"])
        if b is None:
            continue
        if not same_config:
            continue
        for fld in PLACE_EXACT_FIELDS:
            if b.get(fld) != c.get(fld):
                failures.append(
                    f"{c['name']}: {fld} changed "
                    f"{b.get(fld)!r} -> {c.get(fld)!r} (the annealing "
                    "trajectory is pinned bit-identical across threads "
                    "and cost kernels; any drift is a correctness bug)")
        if same_kernel and b.get("rescans") != c.get("rescans"):
            failures.append(
                f"{c['name']}: rescans changed "
                f"{b.get('rescans')!r} -> {c.get('rescans')!r} "
                "(same cost kernel must do identical fallback work)")
    missing = [n for n in base_by_name
               if n not in {c["name"] for c in cand["circuits"]}]
    if missing:
        failures.append(f"candidate dropped circuits: {', '.join(missing)}")

    # Wall times compare only between like-for-like machines: the same
    # thread count AND the same cost kernel (the naive kernel exists to
    # price the incremental machinery — its wall clock is the baseline of
    # a speedup claim, not a regression).
    wall_comparable = (
        base.get("schema") == cand.get("schema")
        and base.get("threads") == cand.get("threads")
        and same_config
        and same_kernel)
    if not wall_comparable:
        notes.append(
            "runs are not wall-comparable "
            f"(threads {base.get('threads')} vs {cand.get('threads')}, "
            f"kernel {base.get('cost_kernel')} vs "
            f"{cand.get('cost_kernel')}): wall budget waived")
    bw, cw = base["total_wall_s"], cand["total_wall_s"]
    if wall_comparable and bw > 0 and \
            cw > bw * (1.0 + max_regress_pct / 100.0):
        failures.append(
            f"total_wall_s regressed {bw:.2f}s -> {cw:.2f}s "
            f"(> {max_regress_pct:.0f}% budget)")
    for n in notes:
        print(f"bench_check: note: {n}", file=sys.stderr)
    return failures


def compare_route(base, cand, max_regress_pct):
    failures = []
    notes = []
    same_config = router_config(base) == router_config(cand)
    if not same_config:
        notes.append(
            "router configuration differs "
            f"({router_config(base)} vs {router_config(cand)}): "
            "correctness and counter fields are not comparable; only "
            "checking circuit coverage")
    base_by_name = {c["name"]: c for c in base["circuits"]}
    for c in cand["circuits"]:
        b = base_by_name.get(c["name"])
        if b is None:
            # Candidate may run a superset of circuits; that is fine.
            continue
        if not same_config:
            continue
        for field in EXACT_FIELDS:
            if b[field] != c[field]:
                failures.append(
                    f"{c['name']}: {field} changed "
                    f"{b[field]!r} -> {c[field]!r} (routing is pinned "
                    "bit-identical; any drift is a correctness bug)")
        for field in EXACT_OPTIONAL_FIELDS:
            if b.get(field) != c.get(field):
                failures.append(
                    f"{c['name']}: {field} changed "
                    f"{b.get(field)!r} -> {c.get(field)!r} (the "
                    "timing-driven route is bit-deterministic; any drift "
                    "is a correctness bug)")
        for counter in COUNTER_FIELDS + COUNTER_OPTIONAL_FIELDS:
            bc = b["counters"].get(counter)
            cc = c["counters"].get(counter)
            if bc != cc:
                failures.append(
                    f"{c['name']}: counter {counter} changed {bc} -> {cc} "
                    "(search explored different work for identical input)")
    missing = [n for n in base_by_name
               if n not in {c["name"] for c in cand["circuits"]}]
    if missing:
        failures.append(f"candidate dropped circuits: {', '.join(missing)}")

    # Wall times are only comparable between like-for-like runs: the same
    # schema (a schema bump changes what the harness measures), the same
    # thread count, the same router configuration, and the same
    # NF_CHECK_INVARIANTS setting (legality checking costs wall time but
    # must never change the search — counters above are enforced anyway).
    base_chk = bool(base.get("invariants_checked", False))
    cand_chk = bool(cand.get("invariants_checked", False))
    # Schema 4 additionally requires the same RR backend: the implicit
    # graph trades memory for per-expansion arithmetic, so wall clocks of
    # mixed-backend runs measure different machines. Correctness fields
    # above are still fully compared across backends (absent keys on
    # older schemas compare equal, preserving pre-4 behavior).
    wall_comparable = (
        base.get("schema") == cand.get("schema")
        and base.get("threads") == cand.get("threads")
        and same_config
        and base.get("rr_backend") == cand.get("rr_backend")
        and base_chk == cand_chk)
    if not wall_comparable:
        notes.append(
            "runs are not wall-comparable "
            f"(schema {base.get('schema')} vs {cand.get('schema')}, "
            f"threads {base.get('threads')} vs {cand.get('threads')}, "
            f"backend {base.get('rr_backend')} vs {cand.get('rr_backend')}, "
            f"invariants {base_chk} vs {cand_chk}): wall budget waived")
    bw, cw = base["total_wall_s"], cand["total_wall_s"]
    if wall_comparable and bw > 0 and \
            cw > bw * (1.0 + max_regress_pct / 100.0):
        failures.append(
            f"total_wall_s regressed {bw:.2f}s -> {cw:.2f}s "
            f"(> {max_regress_pct:.0f}% budget)")
    for n in notes:
        print(f"bench_check: note: {n}", file=sys.stderr)
    return failures


def selftest():
    base = {
        "schema": "nemfpga-route-bench-2",
        "threads": 1,
        "astar_factor": 1.0,
        "net_parallel": True,
        "total_wall_s": 10.0,
        "circuits": [{
            "name": "tseng", "wmin": 45, "tree_checksum": "abc",
            "iterations": 11, "fixed_w": 54,
            "counters": {"heap_pushes": 7, "nodes_expanded": 5,
                         "sink_searches": 3},
        }],
    }
    same = json.loads(json.dumps(base))
    assert compare(base, same, 15.0) == [], "identical runs must pass"

    slow = json.loads(json.dumps(base))
    slow["total_wall_s"] = 12.0
    assert compare(base, slow, 15.0), "20% regression must fail"
    assert not compare(base, slow, 25.0), "20% within a 25% budget passes"

    drift = json.loads(json.dumps(base))
    drift["circuits"][0]["tree_checksum"] = "xyz"
    assert compare(base, drift, 15.0), "checksum drift must fail"

    drift = json.loads(json.dumps(base))
    drift["circuits"][0]["wmin"] = 46
    assert compare(base, drift, 15.0), "wmin drift must fail"

    drift = json.loads(json.dumps(base))
    drift["circuits"][0]["counters"]["heap_pushes"] = 8
    assert compare(base, drift, 15.0), "counter drift must fail"

    dropped = json.loads(json.dumps(base))
    dropped["circuits"] = [dict(base["circuits"][0], name="other")]
    assert compare(base, dropped, 15.0), "dropped circuit must fail"

    # Thread-count mismatch: wall budget waived, counters still pinned.
    threads8 = json.loads(json.dumps(base))
    threads8["threads"] = 8
    threads8["total_wall_s"] = 99.0
    assert compare(base, threads8, 15.0) == [], \
        "cross-thread wall time must not trip the budget"
    threads8["circuits"][0]["counters"]["nodes_expanded"] = 6
    assert compare(base, threads8, 15.0), \
        "counter drift across thread counts must still fail " \
        "(counters are thread-invariant by contract)"

    # Schema mismatch: neither wall nor counters comparable; coverage only.
    v1 = json.loads(json.dumps(base))
    v1["schema"] = "nemfpga-route-bench-1"
    del v1["astar_factor"], v1["net_parallel"]
    v1["total_wall_s"] = 99.0
    v1["circuits"][0]["counters"]["heap_pushes"] = 1234
    assert compare(v1, base, 15.0) == [], \
        "schema-1 vs schema-2 must not compare wall or counters"
    dropped_v1 = json.loads(json.dumps(base))
    dropped_v1["circuits"] = [dict(base["circuits"][0], name="other")]
    assert compare(v1, dropped_v1, 15.0), \
        "dropped circuit still fails across schemas"

    # Router-config mismatch within schema 2: same treatment.
    legacy = json.loads(json.dumps(base))
    legacy["astar_factor"] = 0.0
    legacy["net_parallel"] = False
    legacy["circuits"][0]["tree_checksum"] = "legacy-differs"
    legacy["circuits"][0]["counters"]["heap_pushes"] = 999
    assert compare(base, legacy, 15.0) == [], \
        "different astar/parallel config must not diff checksums"

    # NF_CHECK_INVARIANTS runs: the wall budget is waived across a flag
    # mismatch, but counter/correctness drift still fails.
    checked_slow = json.loads(json.dumps(base))
    checked_slow["invariants_checked"] = True
    checked_slow["total_wall_s"] = 20.0
    assert compare(base, checked_slow, 15.0) == [], \
        "slower run under invariant checking must not trip the wall budget"

    checked_drift = json.loads(json.dumps(checked_slow))
    checked_drift["circuits"][0]["counters"]["nodes_expanded"] = 6
    assert compare(base, checked_drift, 15.0), \
        "counter drift must fail even under invariant checking"

    checked_wmin = json.loads(json.dumps(checked_slow))
    checked_wmin["circuits"][0]["wmin"] = 46
    assert compare(base, checked_wmin, 15.0), \
        "wmin drift must fail even under invariant checking"

    both_checked_slow = json.loads(json.dumps(checked_slow))
    both_checked_base = json.loads(json.dumps(base))
    both_checked_base["invariants_checked"] = True
    assert compare(both_checked_base, both_checked_slow, 15.0), \
        "wall budget applies when both runs were checked"

    # Schema 3 (timing-driven router): critical path and STA counters are
    # pinned between same-configuration runs...
    t_base = json.loads(json.dumps(base))
    t_base["schema"] = "nemfpga-route-bench-3"
    t_base["timing_driven"] = True
    t_base["crit_exp"] = 1.0
    t_base["circuits"][0]["critical_path_s"] = 1.5958638765647902e-08
    t_base["circuits"][0]["counters"]["sta_net_evals"] = 42
    t_base["circuits"][0]["counters"]["sta_block_updates"] = 99
    t_same = json.loads(json.dumps(t_base))
    assert compare(t_base, t_same, 15.0) == [], \
        "identical schema-3 runs must pass"

    cp_drift = json.loads(json.dumps(t_base))
    cp_drift["circuits"][0]["critical_path_s"] = 1.6e-08
    assert compare(t_base, cp_drift, 15.0), \
        "critical-path drift must fail (timing routing is deterministic)"

    sta_drift = json.loads(json.dumps(t_base))
    sta_drift["circuits"][0]["counters"]["sta_net_evals"] = 43
    assert compare(t_base, sta_drift, 15.0), "STA counter drift must fail"

    # ...a timing run against a congestion-only run is a different router
    # configuration (correctness/counters waived, coverage still checked)...
    untimed = json.loads(json.dumps(t_base))
    untimed["timing_driven"] = False
    untimed["circuits"][0]["critical_path_s"] = 0.0
    untimed["circuits"][0]["tree_checksum"] = "untimed-differs"
    assert compare(t_base, untimed, 15.0) == [], \
        "timing vs congestion-only must not diff checksums"

    # ...and a schema-2 baseline against a schema-3 candidate is refused
    # beyond coverage, even with identical knob values.
    assert compare(base, t_base, 15.0) == [], \
        "schema-2 vs schema-3 must refuse wall/counter/correctness diffs"
    dropped_t = json.loads(json.dumps(t_base))
    dropped_t["circuits"] = [dict(t_base["circuits"][0], name="other")]
    assert compare(base, dropped_t, 15.0), \
        "dropped circuit still fails across schemas 2 vs 3"

    # Schema 4 (RR backends + partition scheduler).
    m_base = json.loads(json.dumps(base))
    m_base["schema"] = "nemfpga-route-bench-4"
    m_base["timing_driven"] = False
    m_base["crit_exp"] = 1.0
    m_base["rr_backend"] = "explicit"
    m_base["partition_parallel"] = False
    m_base["partition_size"] = 0
    m_base["peak_rss_bytes"] = 500_000_000
    m_base["circuits"][0]["infeasible"] = False
    m_base["circuits"][0]["rr_nodes"] = 10_000
    m_base["circuits"][0]["rr_bytes"] = 4_000_000
    m_base["circuits"][0]["rr_bytes_per_node"] = 400.0
    m_same = json.loads(json.dumps(m_base))
    assert compare(m_base, m_same, 15.0) == [], \
        "identical schema-4 runs must pass"

    # Cross-backend: correctness fields and counters stay fully pinned
    # (bit-identical by design) while the wall budget and the byte
    # measurements are waived — this diff IS the backend-equivalence
    # audit.
    imp = json.loads(json.dumps(m_base))
    imp["rr_backend"] = "implicit"
    imp["total_wall_s"] = 99.0
    imp["peak_rss_bytes"] = 50_000_000
    imp["circuits"][0]["rr_bytes"] = 40_000
    imp["circuits"][0]["rr_bytes_per_node"] = 4.0
    assert compare(m_base, imp, 15.0) == [], \
        "cross-backend wall/memory deltas must not fail"
    imp_drift = json.loads(json.dumps(imp))
    imp_drift["circuits"][0]["tree_checksum"] = "backend-diverged"
    assert compare(m_base, imp_drift, 15.0), \
        "cross-backend checksum drift must fail (backends are pinned " \
        "bit-identical)"
    imp_counter = json.loads(json.dumps(imp))
    imp_counter["circuits"][0]["counters"]["heap_pushes"] = 8
    assert compare(m_base, imp_counter, 15.0), \
        "cross-backend counter drift must fail"
    imp_nodes = json.loads(json.dumps(imp))
    imp_nodes["circuits"][0]["rr_nodes"] = 10_001
    assert compare(m_base, imp_nodes, 15.0), \
        "rr_nodes drift must fail (node set is backend-invariant)"

    # The partition scheduler is a router configuration: its runs route
    # differently (deterministically), so correctness diffs are waived.
    part = json.loads(json.dumps(m_base))
    part["partition_parallel"] = True
    part["circuits"][0]["tree_checksum"] = "partition-differs"
    assert compare(m_base, part, 15.0) == [], \
        "partition-scheduler runs are a different config"

    # Infeasibility is a correctness verdict.
    infeas = json.loads(json.dumps(m_base))
    infeas["circuits"][0]["infeasible"] = True
    infeas["circuits"][0]["wmin"] = 0
    assert compare(m_base, infeas, 15.0), \
        "a circuit flipping to infeasible must fail"

    # Schema 3 vs 4: refused beyond coverage, like every schema bump.
    assert compare(t_base, m_base, 15.0) == [], \
        "schema-3 vs schema-4 must refuse wall/counter/correctness diffs"
    dropped_m = json.loads(json.dumps(m_base))
    dropped_m["circuits"] = [dict(m_base["circuits"][0], name="other")]
    assert compare(t_base, dropped_m, 15.0), \
        "dropped circuit still fails across schemas 3 vs 4"

    # Place family (nemfpga-place-bench-1).
    p_base = {
        "schema": "nemfpga-place-bench-1",
        "threads": 1,
        "batch_moves": 0,
        "directed": True,
        "timing_driven": False,
        "inner_num": 1.0,
        "seed": 1,
        "cost_kernel": "incremental",
        "total_wall_s": 5.0,
        "peak_rss_bytes": 100_000_000,
        "circuits": [{
            "name": "synth-l", "luts": 5760, "blocks": 1500, "nets": 5251,
            "place_wall_s": 0.3, "moves": 1_000_000, "moves_per_s": 3e6,
            "accepted": 400_000, "rescans": 1234, "directed_moves": 50_000,
            "batches": 0, "conflicts": 0, "repairs": 0, "replays": 0,
            "final_cost": 4242.5, "final_weighted_cost": 4242.5,
            "cost_checksum": "a4e8f50864144d31",
            "route_w": 54, "routed": True,
            "critical_path_s": 1.5e-08,
        }],
    }
    p_same = json.loads(json.dumps(p_base))
    assert compare(p_base, p_same, 15.0) == [], \
        "identical place runs must pass"

    p_slow = json.loads(json.dumps(p_base))
    p_slow["total_wall_s"] = 6.0
    assert compare(p_base, p_slow, 15.0), "20% place regression must fail"
    assert not compare(p_base, p_slow, 25.0), \
        "20% place regression within a 25% budget passes"

    p_drift = json.loads(json.dumps(p_base))
    p_drift["circuits"][0]["cost_checksum"] = "deadbeef00000000"
    assert compare(p_base, p_drift, 15.0), \
        "placement checksum drift must fail"

    p_drift = json.loads(json.dumps(p_base))
    p_drift["circuits"][0]["final_cost"] = 4242.6
    assert compare(p_base, p_drift, 15.0), "final_cost drift must fail"

    p_drift = json.loads(json.dumps(p_base))
    p_drift["circuits"][0]["accepted"] = 400_001
    assert compare(p_base, p_drift, 15.0), \
        "accepted-move drift must fail (trajectory is pinned)"

    # Cross-thread: wall budget waived, but the batch commit protocol is
    # required to be thread-invariant, so every correctness field holds.
    p_t8 = json.loads(json.dumps(p_base))
    p_t8["threads"] = 8
    p_t8["total_wall_s"] = 99.0
    assert compare(p_base, p_t8, 15.0) == [], \
        "cross-thread place wall time must not trip the budget"
    p_t8["circuits"][0]["cost_checksum"] = "thread-diverged"
    assert compare(p_base, p_t8, 15.0), \
        "cross-thread checksum drift must fail (commit is deterministic)"

    # Cross-kernel: naive vs incremental must produce the identical
    # trajectory; rescans (kernel telemetry) and wall time are waived.
    p_naive = json.loads(json.dumps(p_base))
    p_naive["cost_kernel"] = "naive"
    p_naive["total_wall_s"] = 99.0
    p_naive["circuits"][0]["rescans"] = 999_999
    assert compare(p_base, p_naive, 15.0) == [], \
        "cross-kernel rescans/wall deltas must not fail"
    p_naive["circuits"][0]["final_cost"] = 4242.6
    assert compare(p_base, p_naive, 15.0), \
        "cross-kernel cost drift must fail (kernels are pinned identical)"

    # Same kernel: rescans is pinned.
    p_rescan = json.loads(json.dumps(p_base))
    p_rescan["circuits"][0]["rescans"] = 1235
    assert compare(p_base, p_rescan, 15.0), \
        "rescan drift under the same kernel must fail"

    # Different placer knobs: a different trajectory; coverage only.
    p_batch = json.loads(json.dumps(p_base))
    p_batch["batch_moves"] = 32
    p_batch["circuits"][0]["cost_checksum"] = "batch-differs"
    p_batch["circuits"][0]["batches"] = 31_250
    assert compare(p_base, p_batch, 15.0) == [], \
        "different batch_moves is a different config"
    p_batch_drop = json.loads(json.dumps(p_batch))
    p_batch_drop["circuits"] = [dict(p_batch["circuits"][0], name="other")]
    assert compare(p_base, p_batch_drop, 15.0), \
        "dropped circuit still fails across place configs"

    p_dropped = json.loads(json.dumps(p_base))
    p_dropped["circuits"] = [dict(p_base["circuits"][0], name="other")]
    assert compare(p_base, p_dropped, 15.0), \
        "dropped place circuit must fail"

    # Eco family (nemfpga-eco-bench-1).
    e_base = {
        "schema": "nemfpga-eco-bench-1",
        "threads": 1,
        "w": 64,
        "edits": 50,
        "edit_seed": 1,
        "seed": 1,
        "total_wall_s": 3.0,
        "peak_rss_bytes": 50_000_000,
        "circuits": [{
            "name": "tseng", "luts": 1047, "blocks": 316, "nets": 1048,
            "ok": 34, "rejected": 12, "unroutable": 0,
            "full_fallbacks": 1, "nets_invalidated": 210,
            "nets_rerouted": 1900, "blocks_moved": 40,
            "sta_nets_evaluated": 1900,
            "tree_checksum": "4726890cd53303a2",
            "final_cycle": False,
            "critical_path_s": 1.854e-08,
            "base_compile_s": 0.11,
            "apply_p50_s": 0.0014, "apply_p99_s": 0.0066,
            "reroute_p50_s": 0.0009, "reroute_p99_s": 0.0057,
            "scratch_route_s": 0.052, "speedup_p50": 57.9,
        }],
    }
    e_same = json.loads(json.dumps(e_base))
    assert compare(e_base, e_same, 15.0) == [], \
        "identical eco runs must pass"

    e_drift = json.loads(json.dumps(e_base))
    e_drift["circuits"][0]["tree_checksum"] = "deadbeef00000000"
    assert compare(e_base, e_drift, 15.0), \
        "eco tree-checksum drift must fail (replay is deterministic)"

    e_drift = json.loads(json.dumps(e_base))
    e_drift["circuits"][0]["ok"] = 33
    assert compare(e_base, e_drift, 15.0), \
        "status-tally drift must fail (same stream, same verdicts)"

    e_drift = json.loads(json.dumps(e_base))
    e_drift["circuits"][0]["nets_rerouted"] = 1901
    assert compare(e_base, e_drift, 15.0), \
        "reroute-counter drift must fail"

    # Latency percentiles: budget-checked between identical streams...
    e_slow = json.loads(json.dumps(e_base))
    e_slow["circuits"][0]["apply_p50_s"] = 0.0020
    assert compare(e_base, e_slow, 15.0), \
        "a 43% p50 latency regression must fail"
    assert not compare(e_base, e_slow, 50.0), \
        "the same regression passes inside a 50% budget"

    # ...waived (never pinned) across thread counts, while the replay's
    # correctness fields stay fully pinned — that diff is the
    # thread-invariance audit.
    e_t8 = json.loads(json.dumps(e_base))
    e_t8["threads"] = 8
    e_t8["total_wall_s"] = 99.0
    e_t8["circuits"][0]["apply_p50_s"] = 0.5
    assert compare(e_base, e_t8, 15.0) == [], \
        "cross-thread eco latency must not trip any budget"
    e_t8["circuits"][0]["tree_checksum"] = "thread-diverged"
    assert compare(e_base, e_t8, 15.0), \
        "cross-thread eco checksum drift must fail (replay is pinned)"

    # A different edit stream is a different configuration: nothing but
    # circuit coverage is comparable.
    e_seed = json.loads(json.dumps(e_base))
    e_seed["edit_seed"] = 2
    e_seed["circuits"][0]["ok"] = 7
    e_seed["circuits"][0]["tree_checksum"] = "stream-differs"
    e_seed["circuits"][0]["apply_p50_s"] = 0.9
    assert compare(e_base, e_seed, 15.0) == [], \
        "different edit_seed must refuse correctness and latency diffs"
    e_seed_drop = json.loads(json.dumps(e_seed))
    e_seed_drop["circuits"] = [dict(e_seed["circuits"][0], name="other")]
    assert compare(e_base, e_seed_drop, 15.0), \
        "dropped circuit still fails across edit streams"

    e_dropped = json.loads(json.dumps(e_base))
    e_dropped["circuits"] = [dict(e_base["circuits"][0], name="other")]
    assert compare(e_base, e_dropped, 15.0), \
        "dropped eco circuit must fail"

    # Serve family (nemfpga-serve-bench-1).
    s_base = {
        "schema": "nemfpga-serve-bench-1",
        "threads": 8,
        "benchmark": "tseng",
        "jobs": 16,
        "w": 64,
        "timing": False,
        "seed0": 1,
        "cache_mb": 4096,
        "total_wall_s": 14.0,
        "peak_rss_bytes": 90_000_000,
        "artifact_build_s": 0.041,
        "artifact_fetch_s": 1.3e-05,
        "artifact_amortization": 3192.0,
        "cache_resident_bytes": 1_000_000,
        "speedup_warm_vs_cold_seq": 1.22,
        "circuits": [
            {"name": "cold-seq", "ok_jobs": 16,
             "batch_checksum": "67e4e36fd614239f",
             "cache_misses": 0, "cache_evictions": 0, "cache_reuses": 0,
             "lookahead_cached": 0, "t_lookahead_build_s": 0.53,
             "wall_s": 5.4, "jobs_per_s": 2.96},
            {"name": "cold-batch", "ok_jobs": 16,
             "batch_checksum": "67e4e36fd614239f",
             "cache_misses": 2, "cache_evictions": 0, "cache_reuses": 30,
             "lookahead_cached": 15, "t_lookahead_build_s": 0.03,
             "wall_s": 4.6, "jobs_per_s": 3.49},
            {"name": "warm-batch", "ok_jobs": 16,
             "batch_checksum": "67e4e36fd614239f",
             "cache_misses": 0, "cache_evictions": 0, "cache_reuses": 32,
             "lookahead_cached": 16, "t_lookahead_build_s": 0.0,
             "wall_s": 4.4, "jobs_per_s": 3.62},
        ],
    }
    s_same = json.loads(json.dumps(s_base))
    assert compare(s_base, s_same, 15.0) == [], \
        "identical serve runs must pass"

    s_drift = json.loads(json.dumps(s_base))
    s_drift["circuits"][0]["batch_checksum"] = "deadbeef00000000"
    assert compare(s_base, s_drift, 15.0), \
        "serve batch-checksum drift must fail (jobs are bit-identical " \
        "to solo flows)"

    s_drift = json.loads(json.dumps(s_base))
    s_drift["circuits"][1]["cache_misses"] = 3
    assert compare(s_base, s_drift, 15.0), \
        "cache build-count drift must fail (single-flight makes it exact)"

    s_drift = json.loads(json.dumps(s_base))
    s_drift["circuits"][2]["lookahead_cached"] = 15
    assert compare(s_base, s_drift, 15.0), \
        "lookahead_cached drift must fail (warm jobs all hit)"

    s_slow = json.loads(json.dumps(s_base))
    s_slow["circuits"][2]["wall_s"] = 5.5
    assert compare(s_base, s_slow, 15.0), \
        "a 25% warm-batch wall regression must fail"
    assert not compare(s_base, s_slow, 30.0), \
        "the same regression passes inside a 30% budget"

    # Cross-thread: wall comparisons are refused, the deterministic
    # counters stay fully pinned — that diff is the worker-count
    # invariance audit.
    s_t1 = json.loads(json.dumps(s_base))
    s_t1["threads"] = 1
    s_t1["total_wall_s"] = 99.0
    s_t1["circuits"][2]["wall_s"] = 50.0
    assert compare(s_base, s_t1, 15.0) == [], \
        "cross-thread serve wall time must not trip any budget"
    s_t1["circuits"][2]["batch_checksum"] = "thread-diverged"
    assert compare(s_base, s_t1, 15.0), \
        "cross-thread serve checksum drift must fail (scheduler is pinned)"

    # A different job mix is a different configuration: coverage only.
    s_mix = json.loads(json.dumps(s_base))
    s_mix["jobs"] = 32
    s_mix["circuits"][0]["batch_checksum"] = "mix-differs"
    s_mix["circuits"][0]["cache_misses"] = 99
    assert compare(s_base, s_mix, 15.0) == [], \
        "different job count must refuse counter/checksum diffs"
    s_mix_drop = json.loads(json.dumps(s_mix))
    s_mix_drop["circuits"] = s_mix["circuits"][:2]
    assert compare(s_base, s_mix_drop, 15.0), \
        "dropped mode still fails across job mixes"

    s_dropped = json.loads(json.dumps(s_base))
    s_dropped["circuits"] = s_base["circuits"][:2]
    assert compare(s_base, s_dropped, 15.0), \
        "dropped serve mode must fail"

    # Arch family (nemfpga-arch-bench-1).
    a_base = {
        "schema": "nemfpga-arch-bench-1",
        "benchmark": "tseng",
        "w": 118,
        "downsize": 4.0,
        "total_wall_s": 8.0,
        "paper_slice": {
            "downsize": 4.0, "speedup": 1.25, "dynamic_reduction": 2.1,
            "leakage_reduction": 9.7, "area_reduction": 2.1,
        },
        "circuits": [
            {"name": "cmos/wilton/L4/fc0.2", "backend": "cmos",
             "sb_pattern": "wilton", "seg_len": 4, "fc_in": 0.2,
             "downsize": 1.0, "routed": True,
             "tree_checksum": "00deadbeef001234",
             "critical_path_s": 1.6e-08, "dynamic_w": 0.021,
             "leakage_w": 1.9e-05, "area_m2": 4.4e-06, "wall_s": 0.8},
            {"name": "nem-opt/wilton/L4/fc0.2", "backend": "nem-opt",
             "sb_pattern": "wilton", "seg_len": 4, "fc_in": 0.2,
             "downsize": 4.0, "routed": True,
             "tree_checksum": "00deadbeef001234",
             "critical_path_s": 1.2e-08, "dynamic_w": 0.010,
             "leakage_w": 2.0e-06, "area_m2": 2.1e-06, "wall_s": 0.8},
        ],
    }
    a_same = json.loads(json.dumps(a_base))
    assert compare(a_base, a_same, 15.0) == [], \
        "identical arch runs must pass"

    a_drift = json.loads(json.dumps(a_base))
    a_drift["circuits"][0]["leakage_w"] = 2.0e-05
    assert compare(a_base, a_drift, 15.0), \
        "arch metric drift must fail (evaluation is deterministic)"

    a_drift = json.loads(json.dumps(a_base))
    a_drift["circuits"][1]["routed"] = False
    assert compare(a_base, a_drift, 15.0), \
        "a cell flipping routability must fail"

    a_drift = json.loads(json.dumps(a_base))
    a_drift["circuits"][0]["tree_checksum"] = "0000000000000000"
    assert compare(a_base, a_drift, 15.0), \
        "arch mapping checksum drift must fail"

    a_slice = json.loads(json.dumps(a_base))
    a_slice["paper_slice"]["leakage_reduction"] = 9.8
    assert compare(a_base, a_slice, 15.0), \
        "paper-slice drift must fail (the reduction column is pinned)"

    a_slow = json.loads(json.dumps(a_base))
    a_slow["total_wall_s"] = 10.0
    assert compare(a_base, a_slow, 15.0), "25% arch regression must fail"
    assert not compare(a_base, a_slow, 30.0), \
        "the same regression passes inside a 30% budget"

    # A superset candidate (extra cells) is fine; dropped cells are not.
    a_super = json.loads(json.dumps(a_base))
    a_super["circuits"].append(dict(a_base["circuits"][0],
                                    name="rram/subset/L2/fc0.2",
                                    backend="rram", sb_pattern="subset"))
    assert compare(a_base, a_super, 15.0) == [], \
        "a superset arch sweep must pass"
    a_dropped = json.loads(json.dumps(a_base))
    a_dropped["circuits"] = a_base["circuits"][:1]
    assert compare(a_base, a_dropped, 15.0), \
        "dropped arch cell must fail"

    # A different study configuration: coverage only.
    a_wide = json.loads(json.dumps(a_base))
    a_wide["w"] = 64
    a_wide["circuits"][0]["leakage_w"] = 9.9
    a_wide["paper_slice"]["speedup"] = 0.5
    assert compare(a_base, a_wide, 15.0) == [], \
        "different arch configuration must refuse metric diffs"

    # Route vs place vs eco vs serve are hard errors in every direction.
    assert compare(m_base, p_base, 15.0), \
        "route-vs-place comparison must be refused loudly"
    assert compare(p_base, m_base, 15.0), \
        "place-vs-route comparison must be refused loudly"
    assert compare(e_base, m_base, 15.0), \
        "eco-vs-route comparison must be refused loudly"
    assert compare(p_base, e_base, 15.0), \
        "place-vs-eco comparison must be refused loudly"
    assert compare(s_base, m_base, 15.0), \
        "serve-vs-route comparison must be refused loudly"
    assert compare(e_base, s_base, 15.0), \
        "eco-vs-serve comparison must be refused loudly"
    assert compare(a_base, m_base, 15.0), \
        "arch-vs-route comparison must be refused loudly"
    assert compare(s_base, a_base, 15.0), \
        "serve-vs-arch comparison must be refused loudly"
    print("bench_check selftest: OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("candidate", nargs="?")
    ap.add_argument("--max-regress", type=float, default=15.0,
                    metavar="PCT",
                    help="wall-time regression budget in percent "
                         "(default 15)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the built-in unit checks and exit")
    args = ap.parse_args()

    if args.selftest:
        selftest()
        return 0
    if not args.baseline or not args.candidate:
        ap.error("baseline and candidate files are required "
                 "(or use --selftest)")

    try:
        base = load(args.baseline)
        cand = load(args.candidate)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_check: {e}", file=sys.stderr)
        return 1

    failures = compare(base, cand, args.max_regress)
    for f in failures:
        print(f"bench_check: FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"bench_check: OK ({len(cand['circuits'])} circuits, "
              f"{base['total_wall_s']:.2f}s -> {cand['total_wall_s']:.2f}s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
