#!/usr/bin/env sh
# Bounded parser fuzz campaign. Builds (if needed) and runs the
# deterministic mutation fuzzer under whatever sanitizer configuration the
# build directory was configured with. For the zero-crash guarantee the
# harness is designed around, run it against an ASan/UBSan build:
#
#   cmake -B build-asan -S . -DNF_ASAN=ON -DNF_UBSAN=ON
#   cmake --build build-asan -j --target fuzz_parsers
#   tools/run_fuzz.sh build-asan 100000
#
# Usage: tools/run_fuzz.sh [BUILD_DIR] [ITERS] [SEED]
#   BUILD_DIR  build tree containing tests/prop/fuzz_parsers (default: build)
#   ITERS      mutation iterations (default: 50000)
#   SEED       base seed; vary it to explore a different input sequence
#              (default: 1). A failing run prints the --seed/--iters pair
#              that replays the crash deterministically.
set -eu

BUILD_DIR="${1:-build}"
ITERS="${2:-50000}"
SEED="${3:-1}"

BIN="$BUILD_DIR/tests/prop/fuzz_parsers"
if [ ! -x "$BIN" ]; then
  # gtest_discover_tests layouts differ; fall back to a search.
  BIN=$(find "$BUILD_DIR" -name fuzz_parsers -type f -perm -u+x 2>/dev/null \
        | head -n 1 || true)
fi
if [ -z "${BIN:-}" ] || [ ! -x "$BIN" ]; then
  echo "run_fuzz.sh: fuzz_parsers not found under '$BUILD_DIR'" \
       "(build it first: cmake --build $BUILD_DIR --target fuzz_parsers)" >&2
  exit 2
fi

echo "run_fuzz.sh: $BIN --iters $ITERS --seed $SEED"
exec "$BIN" --iters "$ITERS" --seed "$SEED"
