#!/usr/bin/env sh
# Bounded fuzz campaign: the deterministic parser mutation fuzzer plus a
# scaled-up run of the router differential property, whose generator
# randomizes the A* lookahead weight across [0, 1.2] (0 = legacy
# Manhattan profile, 0.9..1.2 = admissible-to-mildly-weighted lookahead),
# flips net_parallel, and — since the timing-driven refactor — flips
# timing_driven (~35% of cases) with a criticality exponent drawn from
# {1.0, 1.5, ..., 3.0} and max_criticality from {0.99, 0.999}, so both
# search cores, the batch scheduler and the blended timing cost are
# exercised against the reference oracle on every campaign. Timing-driven
# cases pair the production incremental STA against the naive
# full-recompute reference hook. The placer differential campaign then
# drives the incremental bounding-box cost model against the full-rescan
# oracle over randomized move/swap sequences with randomized placer knobs
# (speculative batch sizes 2..32, directed-move generators, timing-driven
# second anneal, weighted nets), including the 1/2/8-thread bit-identity
# property for the speculative commit protocol. The ECO campaign then
# replays randomized edit streams (the generator's mutation mode: pin
# connects/disconnects/retargets, block moves/swaps, with a deliberate
# minority of precondition-violating ops) through a live EcoFlow session,
# checking every apply against the from-scratch oracle (bitwise packing/
# placed-net equivalence, legal routing, zero overuse, 1e-12 STA
# agreement); next comes the dedicated incremental-vs-full STA property
# over randomized rip-up sequences. The campaign finishes with the
# flow-cache concurrency property: randomized concurrent job mixes
# (mutated seeds/widths/timing modes, 1..8 scheduler workers, coin-flip
# tiny-budget caches that force eviction churn) submitted through the
# shared artifact cache + job scheduler, with every job's result checked
# bit-identical against a solo self-contained run_flow.
# Runs under whatever sanitizer configuration the build directory was
# configured with; for the zero-crash guarantee the harness is designed
# around, run it against an ASan/UBSan build:
#
#   cmake -B build-asan -S . -DNF_ASAN=ON -DNF_UBSAN=ON
#   cmake --build build-asan -j --target fuzz_parsers prop_route_diff \
#       prop_eco_diff prop_sta_incremental
#   tools/run_fuzz.sh build-asan 100000
#
# The generator also flips the RR-graph backend (~50% implicit), the
# region-partitioned scheduler (~40% of net_parallel cases, mixed region
# sizes) and — since the switch-technology registry refactor — the
# switch-block pattern (~55% Wilton, the rest split across subset /
# universal / custom with rotations 0..W+1 to hit the degenerate and
# modulo-folded corners), so every campaign differential-tests the
# coordinate-computed graph, the partition router and the parameterized
# sb_turn_track machinery against the stored-adjacency oracle. The
# flow-cache stage additionally pins the backend x sb_pattern artifact
# key space: combinations share one cache and must never alias.
#
# Usage: tools/run_fuzz.sh [BUILD_DIR] [ITERS] [SEED] [--implicit]
#   BUILD_DIR  build tree containing tests/prop/fuzz_parsers (default: build)
#   ITERS      mutation iterations (default: 50000); the router property
#              runs ITERS/100 randomized designs
#   SEED       base seed; vary it to explore a different input sequence
#              (default: 1). A failing run prints the --seed/--iters (or
#              NF_PROP_SEED/NF_PROP_CASE) pair that replays the failure
#              deterministically.
#   --implicit pin every router case to the implicit RR backend
#              (NF_PROP_IMPLICIT=1): a focused campaign on the computed
#              neighbor functions instead of the 50/50 default mix.
set -eu

BUILD_DIR="${1:-build}"
ITERS="${2:-50000}"
SEED="${3:-1}"
NF_PROP_IMPLICIT="${NF_PROP_IMPLICIT:-0}"
if [ "${4:-}" = "--implicit" ]; then
  NF_PROP_IMPLICIT=1
fi
export NF_PROP_IMPLICIT

find_bin() {
  # gtest_discover_tests layouts differ; fall back to a search.
  if [ -x "$BUILD_DIR/tests/prop/$1" ]; then
    echo "$BUILD_DIR/tests/prop/$1"
  else
    find "$BUILD_DIR" -name "$1" -type f -perm -u+x 2>/dev/null \
      | head -n 1 || true
  fi
}

BIN=$(find_bin fuzz_parsers)
if [ -z "${BIN:-}" ] || [ ! -x "$BIN" ]; then
  echo "run_fuzz.sh: fuzz_parsers not found under '$BUILD_DIR'" \
       "(build it first: cmake --build $BUILD_DIR --target fuzz_parsers)" >&2
  exit 2
fi

echo "run_fuzz.sh: $BIN --iters $ITERS --seed $SEED"
"$BIN" --iters "$ITERS" --seed "$SEED"

ROUTE_BIN=$(find_bin prop_route_diff)
if [ -z "${ROUTE_BIN:-}" ] || [ ! -x "$ROUTE_BIN" ]; then
  echo "run_fuzz.sh: prop_route_diff not built; skipping the router" \
       "differential campaign" >&2
  exit 0
fi

ROUTE_CASES=$((ITERS / 100))
[ "$ROUTE_CASES" -ge 50 ] || ROUTE_CASES=50
echo "run_fuzz.sh: $ROUTE_BIN (NF_PROP_CASES=$ROUTE_CASES" \
     "NF_PROP_SEED=$SEED NF_PROP_IMPLICIT=$NF_PROP_IMPLICIT," \
     "astar_factor randomized in [0, 1.2], rr_backend/partition_parallel," \
     "sb_pattern (wilton/subset/universal/custom) and" \
     "timing_driven/criticality_exp/max_criticality randomized)"
NF_PROP_CASES="$ROUTE_CASES" NF_PROP_SEED="$SEED" "$ROUTE_BIN"

PLACE_BIN=$(find_bin prop_place_diff)
if [ -z "${PLACE_BIN:-}" ] || [ ! -x "$PLACE_BIN" ]; then
  echo "run_fuzz.sh: prop_place_diff not built; skipping the placer" \
       "differential campaign" >&2
else
  PLACE_CASES=$((ITERS / 200))
  [ "$PLACE_CASES" -ge 30 ] || PLACE_CASES=30
  echo "run_fuzz.sh: $PLACE_BIN (NF_PROP_CASES=$PLACE_CASES" \
       "NF_PROP_SEED=$SEED, randomized move sequences vs full-rescan" \
       "oracle; batch_moves/directed/timing knobs and 1/2/8-thread" \
       "bit-identity randomized per case)"
  NF_PROP_CASES="$PLACE_CASES" NF_PROP_SEED="$SEED" "$PLACE_BIN"
fi

ECO_BIN=$(find_bin prop_eco_diff)
if [ -z "${ECO_BIN:-}" ] || [ ! -x "$ECO_BIN" ]; then
  echo "run_fuzz.sh: prop_eco_diff not built; skipping the ECO" \
       "edit-stream replay campaign" >&2
else
  ECO_CASES=$((ITERS / 500))
  [ "$ECO_CASES" -ge 25 ] || ECO_CASES=25
  echo "run_fuzz.sh: $ECO_BIN (NF_PROP_CASES=$ECO_CASES" \
       "NF_PROP_SEED=$SEED, randomized edit streams — connects," \
       "disconnects, retargets, moves, swaps, ~12% deliberate" \
       "precondition violations — replayed against the from-scratch" \
       "flow oracle)"
  NF_PROP_CASES="$ECO_CASES" NF_PROP_SEED="$SEED" "$ECO_BIN" \
      --gtest_filter='PropEcoDiff.ReplayMatchesFromScratch'
fi

STA_BIN=$(find_bin prop_sta_incremental)
if [ -z "${STA_BIN:-}" ] || [ ! -x "$STA_BIN" ]; then
  echo "run_fuzz.sh: prop_sta_incremental not built; skipping the" \
       "incremental-STA differential campaign" >&2
  exit 0
fi

STA_CASES=$((ITERS / 500))
[ "$STA_CASES" -ge 20 ] || STA_CASES=20
echo "run_fuzz.sh: $STA_BIN (NF_PROP_CASES=$STA_CASES NF_PROP_SEED=$SEED," \
     "randomized rip-up sequences vs full-recompute STA)"
NF_PROP_CASES="$STA_CASES" NF_PROP_SEED="$SEED" "$STA_BIN"

CACHE_BIN=$(find_bin prop_flow_cache)
if [ -z "${CACHE_BIN:-}" ] || [ ! -x "$CACHE_BIN" ]; then
  echo "run_fuzz.sh: prop_flow_cache not built; skipping the concurrent" \
       "job-mix campaign" >&2
  exit 0
fi

CACHE_CASES=$((ITERS / 1000))
[ "$CACHE_CASES" -ge 12 ] || CACHE_CASES=12
echo "run_fuzz.sh: $CACHE_BIN (NF_PROP_CASES=$CACHE_CASES" \
     "NF_PROP_SEED=$SEED, randomized concurrent job mixes — mutated" \
     "seeds/widths/timing, 1..8 workers, coin-flip tiny-budget caches —" \
     "each job checked bit-identical against a solo run_flow; plus the" \
     "backend x sb_pattern no-aliasing property on a shared cache)"
NF_PROP_CASES="$CACHE_CASES" NF_PROP_SEED="$SEED" exec "$CACHE_BIN" \
    --gtest_filter='PropFlowCache.ConcurrentJobMixesMatchSoloFlows:PropFlowCache.BackendsAndPatternsNeverAliasArtifacts'
