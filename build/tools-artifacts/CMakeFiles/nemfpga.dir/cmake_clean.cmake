file(REMOVE_RECURSE
  "../tools/nemfpga"
  "../tools/nemfpga.pdb"
  "CMakeFiles/nemfpga.dir/nemfpga_cli.cpp.o"
  "CMakeFiles/nemfpga.dir/nemfpga_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nemfpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
