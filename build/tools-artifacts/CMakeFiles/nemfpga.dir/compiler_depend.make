# Empty compiler generated dependencies file for nemfpga.
# This may be replaced when dependencies are built.
