# Empty dependencies file for fig5_crossbar_demo.
# This may be replaced when dependencies are built.
