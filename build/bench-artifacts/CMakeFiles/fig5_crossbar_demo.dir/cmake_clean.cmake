file(REMOVE_RECURSE
  "../bench/fig5_crossbar_demo"
  "../bench/fig5_crossbar_demo.pdb"
  "CMakeFiles/fig5_crossbar_demo.dir/fig5_crossbar_demo.cpp.o"
  "CMakeFiles/fig5_crossbar_demo.dir/fig5_crossbar_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_crossbar_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
