file(REMOVE_RECURSE
  "../bench/table1_channel_width"
  "../bench/table1_channel_width.pdb"
  "CMakeFiles/table1_channel_width.dir/table1_channel_width.cpp.o"
  "CMakeFiles/table1_channel_width.dir/table1_channel_width.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_channel_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
