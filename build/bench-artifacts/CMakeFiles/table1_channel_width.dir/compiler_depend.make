# Empty compiler generated dependencies file for table1_channel_width.
# This may be replaced when dependencies are built.
