# Empty dependencies file for cad_kernels.
# This may be replaced when dependencies are built.
