file(REMOVE_RECURSE
  "../bench/cad_kernels"
  "../bench/cad_kernels.pdb"
  "CMakeFiles/cad_kernels.dir/cad_kernels.cpp.o"
  "CMakeFiles/cad_kernels.dir/cad_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
