# Empty dependencies file for fig4_half_select.
# This may be replaced when dependencies are built.
