file(REMOVE_RECURSE
  "../bench/fig4_half_select"
  "../bench/fig4_half_select.pdb"
  "CMakeFiles/fig4_half_select.dir/fig4_half_select.cpp.o"
  "CMakeFiles/fig4_half_select.dir/fig4_half_select.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_half_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
