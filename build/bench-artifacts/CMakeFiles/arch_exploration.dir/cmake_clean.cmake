file(REMOVE_RECURSE
  "../bench/arch_exploration"
  "../bench/arch_exploration.pdb"
  "CMakeFiles/arch_exploration.dir/arch_exploration.cpp.o"
  "CMakeFiles/arch_exploration.dir/arch_exploration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
