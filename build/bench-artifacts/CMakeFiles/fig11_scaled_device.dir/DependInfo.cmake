
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_scaled_device.cpp" "bench-artifacts/CMakeFiles/fig11_scaled_device.dir/fig11_scaled_device.cpp.o" "gcc" "bench-artifacts/CMakeFiles/fig11_scaled_device.dir/fig11_scaled_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/device/CMakeFiles/nf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
