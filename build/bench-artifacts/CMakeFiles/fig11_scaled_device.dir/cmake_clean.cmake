file(REMOVE_RECURSE
  "../bench/fig11_scaled_device"
  "../bench/fig11_scaled_device.pdb"
  "CMakeFiles/fig11_scaled_device.dir/fig11_scaled_device.cpp.o"
  "CMakeFiles/fig11_scaled_device.dir/fig11_scaled_device.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scaled_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
