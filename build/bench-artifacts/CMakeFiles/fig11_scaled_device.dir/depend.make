# Empty dependencies file for fig11_scaled_device.
# This may be replaced when dependencies are built.
