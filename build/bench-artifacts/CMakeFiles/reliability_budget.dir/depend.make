# Empty dependencies file for reliability_budget.
# This may be replaced when dependencies are built.
