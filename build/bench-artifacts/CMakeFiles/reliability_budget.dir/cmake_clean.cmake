file(REMOVE_RECURSE
  "../bench/reliability_budget"
  "../bench/reliability_budget.pdb"
  "CMakeFiles/reliability_budget.dir/reliability_budget.cpp.o"
  "CMakeFiles/reliability_budget.dir/reliability_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
