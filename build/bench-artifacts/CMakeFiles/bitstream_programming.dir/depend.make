# Empty dependencies file for bitstream_programming.
# This may be replaced when dependencies are built.
