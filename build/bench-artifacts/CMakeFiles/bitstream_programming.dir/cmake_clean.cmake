file(REMOVE_RECURSE
  "../bench/bitstream_programming"
  "../bench/bitstream_programming.pdb"
  "CMakeFiles/bitstream_programming.dir/bitstream_programming.cpp.o"
  "CMakeFiles/bitstream_programming.dir/bitstream_programming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstream_programming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
