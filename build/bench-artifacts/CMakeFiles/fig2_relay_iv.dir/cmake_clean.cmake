file(REMOVE_RECURSE
  "../bench/fig2_relay_iv"
  "../bench/fig2_relay_iv.pdb"
  "CMakeFiles/fig2_relay_iv.dir/fig2_relay_iv.cpp.o"
  "CMakeFiles/fig2_relay_iv.dir/fig2_relay_iv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_relay_iv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
