# Empty compiler generated dependencies file for fig2_relay_iv.
# This may be replaced when dependencies are built.
