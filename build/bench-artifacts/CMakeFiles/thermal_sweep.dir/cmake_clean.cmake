file(REMOVE_RECURSE
  "../bench/thermal_sweep"
  "../bench/thermal_sweep.pdb"
  "CMakeFiles/thermal_sweep.dir/thermal_sweep.cpp.o"
  "CMakeFiles/thermal_sweep.dir/thermal_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
