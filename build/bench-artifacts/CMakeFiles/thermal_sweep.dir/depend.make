# Empty dependencies file for thermal_sweep.
# This may be replaced when dependencies are built.
