# Empty compiler generated dependencies file for ron_sensitivity.
# This may be replaced when dependencies are built.
