file(REMOVE_RECURSE
  "../bench/ron_sensitivity"
  "../bench/ron_sensitivity.pdb"
  "CMakeFiles/ron_sensitivity.dir/ron_sensitivity.cpp.o"
  "CMakeFiles/ron_sensitivity.dir/ron_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ron_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
