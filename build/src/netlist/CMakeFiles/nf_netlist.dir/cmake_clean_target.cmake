file(REMOVE_RECURSE
  "libnf_netlist.a"
)
