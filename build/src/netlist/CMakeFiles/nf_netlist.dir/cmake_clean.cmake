file(REMOVE_RECURSE
  "CMakeFiles/nf_netlist.dir/blif.cpp.o"
  "CMakeFiles/nf_netlist.dir/blif.cpp.o.d"
  "CMakeFiles/nf_netlist.dir/mcnc.cpp.o"
  "CMakeFiles/nf_netlist.dir/mcnc.cpp.o.d"
  "CMakeFiles/nf_netlist.dir/netlist.cpp.o"
  "CMakeFiles/nf_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/nf_netlist.dir/simulate.cpp.o"
  "CMakeFiles/nf_netlist.dir/simulate.cpp.o.d"
  "CMakeFiles/nf_netlist.dir/synth_gen.cpp.o"
  "CMakeFiles/nf_netlist.dir/synth_gen.cpp.o.d"
  "libnf_netlist.a"
  "libnf_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
