# Empty compiler generated dependencies file for nf_netlist.
# This may be replaced when dependencies are built.
