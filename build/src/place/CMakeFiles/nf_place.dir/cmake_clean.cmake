file(REMOVE_RECURSE
  "CMakeFiles/nf_place.dir/place.cpp.o"
  "CMakeFiles/nf_place.dir/place.cpp.o.d"
  "CMakeFiles/nf_place.dir/place_io.cpp.o"
  "CMakeFiles/nf_place.dir/place_io.cpp.o.d"
  "libnf_place.a"
  "libnf_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
