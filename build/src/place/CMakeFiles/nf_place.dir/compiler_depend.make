# Empty compiler generated dependencies file for nf_place.
# This may be replaced when dependencies are built.
