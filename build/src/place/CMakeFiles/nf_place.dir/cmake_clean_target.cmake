file(REMOVE_RECURSE
  "libnf_place.a"
)
