file(REMOVE_RECURSE
  "libnf_arch.a"
)
