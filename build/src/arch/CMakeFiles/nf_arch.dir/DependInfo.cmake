
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/arch_model.cpp" "src/arch/CMakeFiles/nf_arch.dir/arch_model.cpp.o" "gcc" "src/arch/CMakeFiles/nf_arch.dir/arch_model.cpp.o.d"
  "/root/repo/src/arch/rr_graph.cpp" "src/arch/CMakeFiles/nf_arch.dir/rr_graph.cpp.o" "gcc" "src/arch/CMakeFiles/nf_arch.dir/rr_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/nf_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
