# Empty dependencies file for nf_arch.
# This may be replaced when dependencies are built.
