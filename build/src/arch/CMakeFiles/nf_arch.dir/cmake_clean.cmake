file(REMOVE_RECURSE
  "CMakeFiles/nf_arch.dir/arch_model.cpp.o"
  "CMakeFiles/nf_arch.dir/arch_model.cpp.o.d"
  "CMakeFiles/nf_arch.dir/rr_graph.cpp.o"
  "CMakeFiles/nf_arch.dir/rr_graph.cpp.o.d"
  "libnf_arch.a"
  "libnf_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
