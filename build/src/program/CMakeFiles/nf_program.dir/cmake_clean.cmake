file(REMOVE_RECURSE
  "CMakeFiles/nf_program.dir/crossbar.cpp.o"
  "CMakeFiles/nf_program.dir/crossbar.cpp.o.d"
  "CMakeFiles/nf_program.dir/half_select.cpp.o"
  "CMakeFiles/nf_program.dir/half_select.cpp.o.d"
  "CMakeFiles/nf_program.dir/waveform.cpp.o"
  "CMakeFiles/nf_program.dir/waveform.cpp.o.d"
  "CMakeFiles/nf_program.dir/yield.cpp.o"
  "CMakeFiles/nf_program.dir/yield.cpp.o.d"
  "libnf_program.a"
  "libnf_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
