
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/program/crossbar.cpp" "src/program/CMakeFiles/nf_program.dir/crossbar.cpp.o" "gcc" "src/program/CMakeFiles/nf_program.dir/crossbar.cpp.o.d"
  "/root/repo/src/program/half_select.cpp" "src/program/CMakeFiles/nf_program.dir/half_select.cpp.o" "gcc" "src/program/CMakeFiles/nf_program.dir/half_select.cpp.o.d"
  "/root/repo/src/program/waveform.cpp" "src/program/CMakeFiles/nf_program.dir/waveform.cpp.o" "gcc" "src/program/CMakeFiles/nf_program.dir/waveform.cpp.o.d"
  "/root/repo/src/program/yield.cpp" "src/program/CMakeFiles/nf_program.dir/yield.cpp.o" "gcc" "src/program/CMakeFiles/nf_program.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/nf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/nf_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
