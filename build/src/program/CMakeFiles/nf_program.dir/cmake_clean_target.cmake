file(REMOVE_RECURSE
  "libnf_program.a"
)
