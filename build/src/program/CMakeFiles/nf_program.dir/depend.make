# Empty dependencies file for nf_program.
# This may be replaced when dependencies are built.
