file(REMOVE_RECURSE
  "CMakeFiles/nf_route.dir/report.cpp.o"
  "CMakeFiles/nf_route.dir/report.cpp.o.d"
  "CMakeFiles/nf_route.dir/route.cpp.o"
  "CMakeFiles/nf_route.dir/route.cpp.o.d"
  "libnf_route.a"
  "libnf_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
