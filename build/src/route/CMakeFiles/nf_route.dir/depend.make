# Empty dependencies file for nf_route.
# This may be replaced when dependencies are built.
