file(REMOVE_RECURSE
  "libnf_route.a"
)
