file(REMOVE_RECURSE
  "libnf_timing.a"
)
