# Empty compiler generated dependencies file for nf_timing.
# This may be replaced when dependencies are built.
