file(REMOVE_RECURSE
  "CMakeFiles/nf_timing.dir/sta.cpp.o"
  "CMakeFiles/nf_timing.dir/sta.cpp.o.d"
  "CMakeFiles/nf_timing.dir/variant.cpp.o"
  "CMakeFiles/nf_timing.dir/variant.cpp.o.d"
  "libnf_timing.a"
  "libnf_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
