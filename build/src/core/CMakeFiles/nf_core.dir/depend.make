# Empty dependencies file for nf_core.
# This may be replaced when dependencies are built.
