file(REMOVE_RECURSE
  "libnf_core.a"
)
