file(REMOVE_RECURSE
  "CMakeFiles/nf_core.dir/flow.cpp.o"
  "CMakeFiles/nf_core.dir/flow.cpp.o.d"
  "CMakeFiles/nf_core.dir/study.cpp.o"
  "CMakeFiles/nf_core.dir/study.cpp.o.d"
  "libnf_core.a"
  "libnf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
