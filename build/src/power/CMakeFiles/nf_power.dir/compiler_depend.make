# Empty compiler generated dependencies file for nf_power.
# This may be replaced when dependencies are built.
