file(REMOVE_RECURSE
  "libnf_power.a"
)
