file(REMOVE_RECURSE
  "CMakeFiles/nf_power.dir/power.cpp.o"
  "CMakeFiles/nf_power.dir/power.cpp.o.d"
  "libnf_power.a"
  "libnf_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
