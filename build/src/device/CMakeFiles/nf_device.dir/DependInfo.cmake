
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/beam_dynamics.cpp" "src/device/CMakeFiles/nf_device.dir/beam_dynamics.cpp.o" "gcc" "src/device/CMakeFiles/nf_device.dir/beam_dynamics.cpp.o.d"
  "/root/repo/src/device/equivalent.cpp" "src/device/CMakeFiles/nf_device.dir/equivalent.cpp.o" "gcc" "src/device/CMakeFiles/nf_device.dir/equivalent.cpp.o.d"
  "/root/repo/src/device/nem_relay.cpp" "src/device/CMakeFiles/nf_device.dir/nem_relay.cpp.o" "gcc" "src/device/CMakeFiles/nf_device.dir/nem_relay.cpp.o.d"
  "/root/repo/src/device/reliability.cpp" "src/device/CMakeFiles/nf_device.dir/reliability.cpp.o" "gcc" "src/device/CMakeFiles/nf_device.dir/reliability.cpp.o.d"
  "/root/repo/src/device/thermal.cpp" "src/device/CMakeFiles/nf_device.dir/thermal.cpp.o" "gcc" "src/device/CMakeFiles/nf_device.dir/thermal.cpp.o.d"
  "/root/repo/src/device/variation.cpp" "src/device/CMakeFiles/nf_device.dir/variation.cpp.o" "gcc" "src/device/CMakeFiles/nf_device.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
