# Empty compiler generated dependencies file for nf_device.
# This may be replaced when dependencies are built.
