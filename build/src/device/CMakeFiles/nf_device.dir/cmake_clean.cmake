file(REMOVE_RECURSE
  "CMakeFiles/nf_device.dir/beam_dynamics.cpp.o"
  "CMakeFiles/nf_device.dir/beam_dynamics.cpp.o.d"
  "CMakeFiles/nf_device.dir/equivalent.cpp.o"
  "CMakeFiles/nf_device.dir/equivalent.cpp.o.d"
  "CMakeFiles/nf_device.dir/nem_relay.cpp.o"
  "CMakeFiles/nf_device.dir/nem_relay.cpp.o.d"
  "CMakeFiles/nf_device.dir/reliability.cpp.o"
  "CMakeFiles/nf_device.dir/reliability.cpp.o.d"
  "CMakeFiles/nf_device.dir/thermal.cpp.o"
  "CMakeFiles/nf_device.dir/thermal.cpp.o.d"
  "CMakeFiles/nf_device.dir/variation.cpp.o"
  "CMakeFiles/nf_device.dir/variation.cpp.o.d"
  "libnf_device.a"
  "libnf_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
