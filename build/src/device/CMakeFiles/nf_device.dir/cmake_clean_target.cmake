file(REMOVE_RECURSE
  "libnf_device.a"
)
