file(REMOVE_RECURSE
  "CMakeFiles/nf_config.dir/bitstream.cpp.o"
  "CMakeFiles/nf_config.dir/bitstream.cpp.o.d"
  "libnf_config.a"
  "libnf_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
