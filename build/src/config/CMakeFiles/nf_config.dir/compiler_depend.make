# Empty compiler generated dependencies file for nf_config.
# This may be replaced when dependencies are built.
