file(REMOVE_RECURSE
  "libnf_config.a"
)
