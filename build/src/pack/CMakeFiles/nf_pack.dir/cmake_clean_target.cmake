file(REMOVE_RECURSE
  "libnf_pack.a"
)
