# Empty dependencies file for nf_pack.
# This may be replaced when dependencies are built.
