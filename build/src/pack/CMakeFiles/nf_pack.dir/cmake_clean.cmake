file(REMOVE_RECURSE
  "CMakeFiles/nf_pack.dir/pack.cpp.o"
  "CMakeFiles/nf_pack.dir/pack.cpp.o.d"
  "libnf_pack.a"
  "libnf_pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
