file(REMOVE_RECURSE
  "libnf_circuit.a"
)
