
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/buffer.cpp" "src/circuit/CMakeFiles/nf_circuit.dir/buffer.cpp.o" "gcc" "src/circuit/CMakeFiles/nf_circuit.dir/buffer.cpp.o.d"
  "/root/repo/src/circuit/logical_effort.cpp" "src/circuit/CMakeFiles/nf_circuit.dir/logical_effort.cpp.o" "gcc" "src/circuit/CMakeFiles/nf_circuit.dir/logical_effort.cpp.o.d"
  "/root/repo/src/circuit/rc_tree.cpp" "src/circuit/CMakeFiles/nf_circuit.dir/rc_tree.cpp.o" "gcc" "src/circuit/CMakeFiles/nf_circuit.dir/rc_tree.cpp.o.d"
  "/root/repo/src/circuit/spice.cpp" "src/circuit/CMakeFiles/nf_circuit.dir/spice.cpp.o" "gcc" "src/circuit/CMakeFiles/nf_circuit.dir/spice.cpp.o.d"
  "/root/repo/src/circuit/vcd.cpp" "src/circuit/CMakeFiles/nf_circuit.dir/vcd.cpp.o" "gcc" "src/circuit/CMakeFiles/nf_circuit.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/nf_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
