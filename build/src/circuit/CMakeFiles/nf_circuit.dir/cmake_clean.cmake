file(REMOVE_RECURSE
  "CMakeFiles/nf_circuit.dir/buffer.cpp.o"
  "CMakeFiles/nf_circuit.dir/buffer.cpp.o.d"
  "CMakeFiles/nf_circuit.dir/logical_effort.cpp.o"
  "CMakeFiles/nf_circuit.dir/logical_effort.cpp.o.d"
  "CMakeFiles/nf_circuit.dir/rc_tree.cpp.o"
  "CMakeFiles/nf_circuit.dir/rc_tree.cpp.o.d"
  "CMakeFiles/nf_circuit.dir/spice.cpp.o"
  "CMakeFiles/nf_circuit.dir/spice.cpp.o.d"
  "CMakeFiles/nf_circuit.dir/vcd.cpp.o"
  "CMakeFiles/nf_circuit.dir/vcd.cpp.o.d"
  "libnf_circuit.a"
  "libnf_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
