# Empty compiler generated dependencies file for nf_circuit.
# This may be replaced when dependencies are built.
