# Empty compiler generated dependencies file for nf_util.
# This may be replaced when dependencies are built.
