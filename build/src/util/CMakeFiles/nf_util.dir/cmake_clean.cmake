file(REMOVE_RECURSE
  "CMakeFiles/nf_util.dir/linear.cpp.o"
  "CMakeFiles/nf_util.dir/linear.cpp.o.d"
  "CMakeFiles/nf_util.dir/rng.cpp.o"
  "CMakeFiles/nf_util.dir/rng.cpp.o.d"
  "CMakeFiles/nf_util.dir/stats.cpp.o"
  "CMakeFiles/nf_util.dir/stats.cpp.o.d"
  "CMakeFiles/nf_util.dir/table.cpp.o"
  "CMakeFiles/nf_util.dir/table.cpp.o.d"
  "libnf_util.a"
  "libnf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
