file(REMOVE_RECURSE
  "libnf_util.a"
)
