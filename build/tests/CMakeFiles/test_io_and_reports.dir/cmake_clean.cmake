file(REMOVE_RECURSE
  "CMakeFiles/test_io_and_reports.dir/test_io_and_reports.cpp.o"
  "CMakeFiles/test_io_and_reports.dir/test_io_and_reports.cpp.o.d"
  "test_io_and_reports"
  "test_io_and_reports.pdb"
  "test_io_and_reports[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_and_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
