# Empty compiler generated dependencies file for test_io_and_reports.
# This may be replaced when dependencies are built.
