file(REMOVE_RECURSE
  "CMakeFiles/test_nem_relay.dir/test_nem_relay.cpp.o"
  "CMakeFiles/test_nem_relay.dir/test_nem_relay.cpp.o.d"
  "test_nem_relay"
  "test_nem_relay.pdb"
  "test_nem_relay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nem_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
