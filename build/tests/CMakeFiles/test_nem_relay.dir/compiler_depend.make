# Empty compiler generated dependencies file for test_nem_relay.
# This may be replaced when dependencies are built.
