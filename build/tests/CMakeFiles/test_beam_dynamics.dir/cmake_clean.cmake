file(REMOVE_RECURSE
  "CMakeFiles/test_beam_dynamics.dir/test_beam_dynamics.cpp.o"
  "CMakeFiles/test_beam_dynamics.dir/test_beam_dynamics.cpp.o.d"
  "test_beam_dynamics"
  "test_beam_dynamics.pdb"
  "test_beam_dynamics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beam_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
