# Empty compiler generated dependencies file for test_beam_dynamics.
# This may be replaced when dependencies are built.
