# Empty dependencies file for test_logical_effort.
# This may be replaced when dependencies are built.
