file(REMOVE_RECURSE
  "CMakeFiles/test_logical_effort.dir/test_logical_effort.cpp.o"
  "CMakeFiles/test_logical_effort.dir/test_logical_effort.cpp.o.d"
  "test_logical_effort"
  "test_logical_effort.pdb"
  "test_logical_effort[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logical_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
