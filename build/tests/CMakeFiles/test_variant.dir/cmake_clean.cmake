file(REMOVE_RECURSE
  "CMakeFiles/test_variant.dir/test_variant.cpp.o"
  "CMakeFiles/test_variant.dir/test_variant.cpp.o.d"
  "test_variant"
  "test_variant.pdb"
  "test_variant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
