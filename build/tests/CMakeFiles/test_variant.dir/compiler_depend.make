# Empty compiler generated dependencies file for test_variant.
# This may be replaced when dependencies are built.
