
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_study_shapes.cpp" "tests/CMakeFiles/test_study_shapes.dir/test_study_shapes.cpp.o" "gcc" "tests/CMakeFiles/test_study_shapes.dir/test_study_shapes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/nf_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/nf_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/nf_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/nf_route.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/nf_place.dir/DependInfo.cmake"
  "/root/repo/build/src/pack/CMakeFiles/nf_pack.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/nf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/nf_device.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/nf_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
