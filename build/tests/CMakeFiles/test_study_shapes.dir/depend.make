# Empty dependencies file for test_study_shapes.
# This may be replaced when dependencies are built.
