file(REMOVE_RECURSE
  "CMakeFiles/test_study_shapes.dir/test_study_shapes.cpp.o"
  "CMakeFiles/test_study_shapes.dir/test_study_shapes.cpp.o.d"
  "test_study_shapes"
  "test_study_shapes.pdb"
  "test_study_shapes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_study_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
