file(REMOVE_RECURSE
  "CMakeFiles/test_cmos.dir/test_cmos.cpp.o"
  "CMakeFiles/test_cmos.dir/test_cmos.cpp.o.d"
  "test_cmos"
  "test_cmos.pdb"
  "test_cmos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
