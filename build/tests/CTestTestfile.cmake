# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_nem_relay[1]_include.cmake")
include("/root/repo/build/tests/test_beam_dynamics[1]_include.cmake")
include("/root/repo/build/tests/test_variation[1]_include.cmake")
include("/root/repo/build/tests/test_cmos[1]_include.cmake")
include("/root/repo/build/tests/test_rc_tree[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_logical_effort[1]_include.cmake")
include("/root/repo/build/tests/test_crossbar[1]_include.cmake")
include("/root/repo/build/tests/test_waveform[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_pack[1]_include.cmake")
include("/root/repo/build/tests/test_place[1]_include.cmake")
include("/root/repo/build/tests/test_route[1]_include.cmake")
include("/root/repo/build/tests/test_variant[1]_include.cmake")
include("/root/repo/build/tests/test_sta[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_simulate[1]_include.cmake")
include("/root/repo/build/tests/test_reliability[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_bitstream[1]_include.cmake")
include("/root/repo/build/tests/test_cross_validation[1]_include.cmake")
include("/root/repo/build/tests/test_thermal[1]_include.cmake")
include("/root/repo/build/tests/test_io_and_reports[1]_include.cmake")
include("/root/repo/build/tests/test_study_shapes[1]_include.cmake")
