file(REMOVE_RECURSE
  "../examples/activity_power"
  "../examples/activity_power.pdb"
  "CMakeFiles/activity_power.dir/activity_power.cpp.o"
  "CMakeFiles/activity_power.dir/activity_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
