# Empty dependencies file for activity_power.
# This may be replaced when dependencies are built.
