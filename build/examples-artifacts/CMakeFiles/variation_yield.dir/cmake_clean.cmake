file(REMOVE_RECURSE
  "../examples/variation_yield"
  "../examples/variation_yield.pdb"
  "CMakeFiles/variation_yield.dir/variation_yield.cpp.o"
  "CMakeFiles/variation_yield.dir/variation_yield.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
