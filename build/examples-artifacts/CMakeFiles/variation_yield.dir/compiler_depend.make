# Empty compiler generated dependencies file for variation_yield.
# This may be replaced when dependencies are built.
