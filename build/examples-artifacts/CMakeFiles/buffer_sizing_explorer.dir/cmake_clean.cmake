file(REMOVE_RECURSE
  "../examples/buffer_sizing_explorer"
  "../examples/buffer_sizing_explorer.pdb"
  "CMakeFiles/buffer_sizing_explorer.dir/buffer_sizing_explorer.cpp.o"
  "CMakeFiles/buffer_sizing_explorer.dir/buffer_sizing_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_sizing_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
