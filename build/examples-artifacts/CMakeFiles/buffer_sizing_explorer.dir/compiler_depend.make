# Empty compiler generated dependencies file for buffer_sizing_explorer.
# This may be replaced when dependencies are built.
