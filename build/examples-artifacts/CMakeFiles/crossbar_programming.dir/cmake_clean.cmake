file(REMOVE_RECURSE
  "../examples/crossbar_programming"
  "../examples/crossbar_programming.pdb"
  "CMakeFiles/crossbar_programming.dir/crossbar_programming.cpp.o"
  "CMakeFiles/crossbar_programming.dir/crossbar_programming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossbar_programming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
