# Empty compiler generated dependencies file for crossbar_programming.
# This may be replaced when dependencies are built.
