// Reference STA oracle: memoized recursive arrival-time computation with
// plain hash-map net-delay evaluation, versus the production
// analyze_timing's epoch-stamped scratch + queue-based topological pass.
// Both evaluate the same max/+ arc expressions, so they agree to tight
// floating-point tolerance (summation order of the geomean accumulator is
// the only reassociated quantity).
#include "verify/oracles.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <unordered_map>

namespace nemfpga::verify {
namespace {

/// Naive per-net delay evaluation: walk the tree edges into a fresh map.
std::unordered_map<RrNodeId, double> naive_tree_delays(
    const RrGraph& g, const RouteTree& tree, const ElectricalView& view) {
  std::unordered_map<RrNodeId, double> delay;
  delay[tree.source] = view.t_output_path;
  for (const auto& [from, to] : tree.edges) {
    const auto it = delay.find(from);
    if (it == delay.end()) {
      throw std::logic_error("reference STA: edge from unknown node");
    }
    double d = it->second;
    switch (g.node(to).type) {
      case RrType::kChanX:
      case RrType::kChanY:
        d += view.t_wire_stage;
        break;
      case RrType::kIpin:
        d += view.t_input_path;
        break;
      default:
        break;
    }
    delay.try_emplace(to, d);  // first write wins, like the scratch epoch
  }
  return delay;
}

}  // namespace

TimingResult reference_analyze_timing(const Netlist& nl, const Packing& pack,
                                      const Placement& pl, const RrGraph& g,
                                      const RoutingResult& routing,
                                      const ElectricalView& view) {
  if (routing.trees.size() != pl.nets.size()) {
    throw std::invalid_argument(
        "reference_analyze_timing: routing/placement mismatch");
  }

  std::unordered_map<NetId, std::size_t> net_to_placed;
  std::vector<std::unordered_map<std::size_t, double>> sink_delay(
      pl.nets.size());
  double log_sum = 0.0;
  std::size_t n_delays = 0;
  for (std::size_t i = 0; i < pl.nets.size(); ++i) {
    net_to_placed[pl.nets[i].net] = i;
    const auto delay = naive_tree_delays(g, routing.trees[i], view);
    for (std::size_t s = 0; s < pl.nets[i].sinks.size(); ++s) {
      const BlockLoc& l = pl.locs[pl.nets[i].sinks[s]];
      const auto it = delay.find(g.site(l.x, l.y).sink);
      if (it == delay.end()) {
        throw std::logic_error("reference STA: sink not in tree");
      }
      sink_delay[i].emplace(pl.nets[i].sinks[s], it->second);
      if (it->second > 0.0) {
        log_sum += std::log(it->second);
        ++n_delays;
      }
    }
  }

  auto net_arc = [&](NetId n, BlockId sink_blk) {
    const auto pit = net_to_placed.find(n);
    if (pit == net_to_placed.end()) {
      const Net& net = nl.net(n);
      if (net.sinks.size() == 1) {
        const Block& s = nl.block(net.sinks[0]);
        const Block& d = nl.block(net.driver);
        if (s.type == BlockType::kLatch && d.type == BlockType::kLut) {
          return 0.0;
        }
      }
      return view.t_local_feedback;
    }
    const std::size_t owner = pack.block_owner[sink_blk];
    const auto it = sink_delay[pit->second].find(owner);
    if (it != sink_delay[pit->second].end()) return it->second;
    return view.t_local_feedback;
  };

  // Memoized recursive arrival times; an on-stack marker detects
  // combinational cycles (the production pass detects them by count).
  TimingResult result;
  result.arrival.assign(nl.block_count(), 0.0);
  enum class Mark : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Mark> mark(nl.block_count(), Mark::kWhite);

  std::function<double(BlockId)> arrival = [&](BlockId b) -> double {
    if (mark[b] == Mark::kBlack) return result.arrival[b];
    if (mark[b] == Mark::kGray) {
      throw std::logic_error("reference STA: combinational cycle");
    }
    const Block& blk = nl.block(b);
    double arr = 0.0;
    if (blk.type == BlockType::kLatch) {
      arr = view.t_clk_q;
    } else if (blk.type == BlockType::kLut) {
      mark[b] = Mark::kGray;
      for (NetId n : blk.inputs) {
        const BlockId drv = nl.net(n).driver;
        arr = std::max(arr, arrival(drv) + net_arc(n, b));
      }
      arr += view.t_lut;
    }
    mark[b] = Mark::kBlack;
    result.arrival[b] = arr;
    return arr;
  };

  // Evaluate every block first (dead logic and unread latches included —
  // the production pass initializes those too), then sweep the captures.
  for (BlockId b = 0; b < nl.block_count(); ++b) arrival(b);
  double cp = 0.0;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLatch) {
      const NetId d = blk.inputs[0];
      const BlockId drv = nl.net(d).driver;
      cp = std::max(cp, arrival(drv) + net_arc(d, b) + view.t_setup);
    } else if (blk.type == BlockType::kOutput) {
      const NetId n = blk.inputs[0];
      const BlockId drv = nl.net(n).driver;
      cp = std::max(cp, arrival(drv) + net_arc(n, b));
    }
  }
  result.critical_path = cp;
  result.geomean_net_delay =
      n_delays ? std::exp(log_sum / static_cast<double>(n_delays)) : 0.0;
  return result;
}

}  // namespace nemfpga::verify
