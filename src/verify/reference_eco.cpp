// Reference oracle for the ECO flow's incremental packing refresh: with
// BLE and cluster membership frozen (the session invariant EcoFlow
// maintains), every derived field of a Packing is a pure function of the
// netlist. This recomputes all of them from scratch with pack_netlist's
// exact rules — the differential harness compares it against EcoFlow's
// touched-clusters-only refresh after every applied delta.
#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "verify/oracles.hpp"

namespace nemfpga::verify {

Packing reference_refresh_packing(const Netlist& nl, const Packing& base) {
  Packing p = base;

  // Frozen geometry maps, rebuilt naively from the membership itself.
  std::vector<std::size_t> block_ble(nl.block_count(), kInvalidId);
  for (std::size_t i = 0; i < p.bles.size(); ++i) {
    if (p.bles[i].lut != kInvalidId) block_ble[p.bles[i].lut] = i;
    if (p.bles[i].latch != kInvalidId) block_ble[p.bles[i].latch] = i;
  }
  std::vector<std::size_t> ble_cluster(p.bles.size(), kInvalidId);
  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    for (std::size_t idx : p.clusters[c].bles) ble_cluster[idx] = c;
  }

  // BLE inputs: the LUT's pin list (paired or lone), the latch's for a
  // lone latch (form_bles's rule with the membership already decided).
  for (Ble& ble : p.bles) {
    const BlockId src = ble.lut != kInvalidId ? ble.lut : ble.latch;
    ble.inputs = nl.block(src).inputs;
  }

  // Cluster inputs: every net a member BLE reads that no member drives
  // (the fixpoint pack_netlist's incremental insert/erase converges to).
  for (Cluster& cl : p.clusters) {
    std::unordered_set<NetId> outputs;
    std::unordered_set<NetId> inputs;
    for (std::size_t idx : cl.bles) outputs.insert(p.bles[idx].output);
    for (std::size_t idx : cl.bles) {
      for (NetId n : p.bles[idx].inputs) {
        if (!outputs.contains(n)) inputs.insert(n);
      }
    }
    cl.input_nets.assign(inputs.begin(), inputs.end());
    std::sort(cl.input_nets.begin(), cl.input_nets.end());
  }

  // Output nets and absorption: pack_netlist's used-outside pass,
  // verbatim, over every cluster.
  p.net_absorbed.assign(nl.net_count(), false);
  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    Cluster& cl = p.clusters[c];
    cl.output_nets.clear();
    for (std::size_t idx : cl.bles) {
      const NetId out = p.bles[idx].output;
      bool used_outside = false;
      for (BlockId sink : nl.net(out).sinks) {
        const Block& sb = nl.block(sink);
        if (sb.type == BlockType::kOutput) {
          used_outside = true;
        } else {
          const std::size_t sble = block_ble[sink];
          if (sble == kInvalidId || ble_cluster[sble] != c) {
            used_outside = true;
          }
        }
        if (used_outside) break;
      }
      if (used_outside) {
        cl.output_nets.push_back(out);
      } else {
        p.net_absorbed[out] = true;
      }
    }
    std::sort(cl.output_nets.begin(), cl.output_nets.end());
  }
  for (const Ble& ble : p.bles) {
    if (ble.absorbed != kInvalidId) p.net_absorbed[ble.absorbed] = true;
  }
  return p;
}

namespace {

template <typename T>
std::string diff_vec(const char* what, std::size_t who,
                     const std::vector<T>& a, const std::vector<T>& b) {
  if (a == b) return {};
  std::ostringstream os;
  os << what << " " << who << ": sizes " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i] != b[i]) {
      os << ", first divergence at [" << i << "]: " << a[i] << " vs "
         << b[i];
      break;
    }
  }
  return os.str();
}

}  // namespace

std::string diff_packing(const Packing& a, const Packing& b) {
  if (a.bles.size() != b.bles.size()) {
    return "ble count " + std::to_string(a.bles.size()) + " vs " +
           std::to_string(b.bles.size());
  }
  for (std::size_t i = 0; i < a.bles.size(); ++i) {
    const Ble& x = a.bles[i];
    const Ble& y = b.bles[i];
    if (x.lut != y.lut || x.latch != y.latch || x.output != y.output ||
        x.absorbed != y.absorbed) {
      return "ble " + std::to_string(i) + " membership differs";
    }
    if (auto d = diff_vec("ble inputs", i, x.inputs, y.inputs); !d.empty()) {
      return d;
    }
  }
  if (a.clusters.size() != b.clusters.size()) {
    return "cluster count differs";
  }
  for (std::size_t c = 0; c < a.clusters.size(); ++c) {
    const Cluster& x = a.clusters[c];
    const Cluster& y = b.clusters[c];
    if (auto d = diff_vec("cluster bles", c, x.bles, y.bles); !d.empty()) {
      return d;
    }
    if (auto d = diff_vec("cluster input_nets", c, x.input_nets,
                          y.input_nets);
        !d.empty()) {
      return d;
    }
    if (auto d = diff_vec("cluster output_nets", c, x.output_nets,
                          y.output_nets);
        !d.empty()) {
      return d;
    }
  }
  if (a.block_owner != b.block_owner) return "block_owner differs";
  if (a.net_absorbed != b.net_absorbed) {
    for (std::size_t n = 0; n < a.net_absorbed.size(); ++n) {
      if (a.net_absorbed[n] != b.net_absorbed[n]) {
        return "net_absorbed[" + std::to_string(n) + "]: " +
               std::to_string(a.net_absorbed[n]) + " vs " +
               std::to_string(b.net_absorbed[n]);
      }
    }
    return "net_absorbed size differs";
  }
  return {};
}

}  // namespace nemfpga::verify
