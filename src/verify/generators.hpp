// Seeded random-case generators for the property-based differential
// harness: small netlists, architectures, packed+placed designs, relay
// populations, and crossbar patterns. Every generator is a pure function
// of the Rng it draws from, and the heavyweight descriptors (DesignCase)
// carry their own seeds so a case rebuilds identically during shrinking
// and replay.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "arch/rr_graph.hpp"
#include "device/variation.hpp"
#include "netlist/delta.hpp"
#include "netlist/synth_gen.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "program/crossbar.hpp"
#include "route/route.hpp"
#include "util/rng.hpp"

namespace nemfpga::verify {

/// A self-contained CAD-flow test case: the synthetic-netlist spec, the
/// architecture, and the option/seed set needed to rebuild the identical
/// packed+placed design from scratch (shrinkers mutate this descriptor and
/// the property re-derives everything from it).
struct DesignCase {
  SynthSpec spec;
  ArchParams arch;
  RouteOptions route;
  std::uint64_t place_seed = 1;
  double place_inner_num = 0.1;
  /// Placer knobs under differential test (place.hpp): speculative batch
  /// size (0 = the seed-identical serial discipline), directed move
  /// generators, and the timing-driven second anneal.
  std::size_t place_batch = 0;
  bool place_directed = false;
  bool place_timing = false;

  std::string describe() const;
};

/// Draw a small random DesignCase (6..~70 LUTs, narrow channels so the
/// router actually negotiates congestion).
DesignCase gen_design_case(Rng& rng);

/// Shrink candidates: fewer LUTs/latches/IOs, narrower W, simpler route
/// options — each strictly "smaller" so greedy shrinking terminates.
std::vector<DesignCase> shrink_design_case(const DesignCase& c);

/// The built form of a DesignCase (everything the router/STA consume).
struct BuiltDesign {
  Netlist nl;
  ArchParams arch;
  Packing pk;
  Placement pl;
  std::size_t nx = 0, ny = 0;
};

/// Deterministically rebuild (generate, pack, place) a DesignCase.
BuiltDesign build_design(const DesignCase& c);

/// A randomized ECO replay case: a base design plus a seeded edit
/// stream. The stream itself is drawn step by step with gen_eco_delta
/// against the *current* design state (edits compound), so the
/// descriptor stores only the seed and length and a replay regenerates
/// the identical stream.
struct EcoCase {
  DesignCase design;
  std::uint64_t edit_seed = 1;
  std::size_t n_edits = 4;

  std::string describe() const;
};

/// Draw a small random EcoCase (design sized like gen_design_case, 1..12
/// edits). The design's W is drawn generously so most bases route.
EcoCase gen_eco_case(Rng& rng);

/// Shrink candidates: fewer edits first (the cheapest reduction), then
/// the design shrinks of shrink_design_case.
std::vector<EcoCase> shrink_eco_case(const EcoCase& c);

/// Draw one randomized delta against the current design state: pin
/// connects/disconnects/retargets, block moves and swaps (1..3 ops).
/// Most ops satisfy the ECO preconditions; a deliberate minority
/// violates one (bad pin, occupied site, K overflow, fused net) so every
/// replay also exercises the transactional-rejection path.
NetlistDelta gen_eco_delta(Rng& rng, const Netlist& nl, const Packing& pk,
                           const ArchParams& arch, std::size_t nx,
                           std::size_t ny,
                           const std::vector<BlockLoc>& locs);

/// Random relay design near the fabricated device (varied geometry).
RelayDesign gen_relay_design(Rng& rng);

/// Random variation spec (0..~2x the fabricated tolerances).
VariationSpec gen_variation_spec(Rng& rng);

/// Random crossbar pattern with the given fill probability.
CrossbarPattern gen_pattern(Rng& rng, std::size_t rows, std::size_t cols,
                            double p_fill);

/// A valid BLIF text for parser fuzzing (random netlist, serialized).
std::string gen_blif_text(Rng& rng);

/// A valid placement text for parser fuzzing; `blocks_out` receives the
/// block count the text describes.
std::string gen_placement_text(Rng& rng, std::size_t& blocks_out);

}  // namespace nemfpga::verify
