// Reference timing hook: the naive full-recompute transcription of the
// production IncrementalSta (timing/sta.cpp). Every update() throws away
// all state and rebuilds it — every net delay re-evaluated from its tree,
// arrival times by memoized recursion, downstream delays by memoized
// recursion, criticalities by a plain sweep — using the exact arc / max /
// shaping expressions of the incremental pass. Because the incremental
// pass fully recomputes every touched block and max is order-independent,
// the two must agree *bitwise* on every query after every update; the
// differential suite (tests/prop/prop_sta_incremental.cpp) pins that.
#include "verify/oracles.hpp"

#include <algorithm>
#include <functional>

#include "timing/criticality.hpp"
#include "timing/delay_model.hpp"

namespace nemfpga::verify {
namespace {

class ReferenceSta final : public RouterTimingHook {
 public:
  ReferenceSta(const Netlist& nl, const Packing& pack, const Placement& pl,
               const RrGraphView& g, const ElectricalView& view,
               double criticality_exp, double max_criticality)
      : nl_(nl),
        pack_(pack),
        pl_(pl),
        view_(view),
        model_(make_delay_model(g, view)),
        crit_exp_(criticality_exp),
        max_crit_(max_criticality) {
    net_to_placed_.assign(nl.net_count(), kInvalidId);
    for (std::size_t i = 0; i < pl.nets.size(); ++i) {
      net_to_placed_[pl.nets[i].net] = i;
    }
  }

  const double* node_delay() const override {
    return model_.node_delay.data();
  }
  double sec_per_base() const override { return model_.sec_per_base; }
  DelayProfile delay_profile() const override { return model_.profile; }

  void update(const RrGraphView& g, const std::vector<RouteTree>& trees,
              const std::vector<std::size_t>& dirty,
              std::size_t iteration) override {
    (void)dirty;  // full recompute: the dirty set is deliberately ignored
    if (iteration <= 1) {
      // Pre-routing: the same placement-based seed the production hook
      // serves until the first routed iteration.
      if (seed_crit_.empty()) {
        seed_crit_ = placement_net_criticality(nl_, pl_.nets, pl_.locs);
        for (double& c : seed_crit_) {
          c = shaped_criticality(c, max_crit_, crit_exp_);
        }
      }
      return;
    }

    const std::size_t blocks = nl_.block_count();

    // 1. Every net delay, from scratch (one-shot scratch per net).
    sink_delay_.assign(pl_.nets.size(), {});
    for (std::size_t i = 0; i < pl_.nets.size(); ++i) {
      sink_delay_[i] =
          routed_net_delays(g, trees[i], pl_.nets[i], pl_, view_);
      ++net_evals_;
    }

    // 2. Arrival times by memoized recursion (the incremental pass's
    // exact expressions: PI = 0, latch Q = t_clk_q, LUT = fan-in max
    // folded in input order + t_lut).
    arr_.assign(blocks, 0.0);
    std::vector<char> adone(blocks, 0);
    std::function<double(BlockId)> arrival = [&](BlockId b) -> double {
      if (adone[b]) return arr_[b];
      const Block& blk = nl_.block(b);
      double arr = 0.0;
      if (blk.type == BlockType::kLatch) {
        arr = view_.t_clk_q;
      } else if (blk.type == BlockType::kLut) {
        for (NetId n : blk.inputs) {
          arr = std::max(arr, arrival(nl_.net(n).driver) + net_arc(n, b));
        }
        arr += view_.t_lut;
      }
      ++block_updates_;
      adone[b] = 1;
      arr_[b] = arr;
      return arr;
    };
    for (BlockId b = 0; b < blocks; ++b) arrival(b);

    // 3. Downstream delays by memoized recursion (registers cut paths:
    // only LUT sinks recurse, exactly the incremental down_in).
    down_.assign(blocks, 0.0);
    std::vector<char> ddone(blocks, 0);
    std::function<double(BlockId)> down_of = [&](BlockId b) -> double {
      if (ddone[b]) return down_[b];
      const Block& blk = nl_.block(b);
      double down = 0.0;
      if (blk.output != kInvalidId) {
        for (BlockId s : nl_.net(blk.output).sinks) {
          double di = 0.0;
          switch (nl_.block(s).type) {
            case BlockType::kLut:
              di = view_.t_lut + down_of(s);
              break;
            case BlockType::kLatch:
              di = view_.t_setup;
              break;
            default:
              break;  // primary output capture
          }
          down = std::max(down, net_arc(blk.output, s) + di);
        }
      }
      ++block_updates_;
      ddone[b] = 1;
      down_[b] = down;
      return down;
    };
    for (BlockId b = 0; b < blocks; ++b) down_of(b);

    // 4. Critical path: analyze_timing's capture expressions verbatim.
    double cp = 0.0;
    for (BlockId b = 0; b < blocks; ++b) {
      const Block& blk = nl_.block(b);
      if (blk.type == BlockType::kLatch) {
        const NetId d = blk.inputs[0];
        cp = std::max(cp, arr_[nl_.net(d).driver] + net_arc(d, b) +
                              view_.t_setup);
      } else if (blk.type == BlockType::kOutput) {
        const NetId n = blk.inputs[0];
        cp = std::max(cp, arr_[nl_.net(n).driver] + net_arc(n, b));
      }
    }
    d_max_ = cp;

    // 5. Per-connection criticalities: worst endpoint arrival through
    // each (net, sink_slot). The incremental pass folds the same netlist
    // sinks per slot (its CSR is filled in netlist sink order); here we
    // rescan the net's sink list per slot instead.
    double max_path = 0.0;
    crit_.assign(pl_.nets.size(), {});
    for (std::size_t i = 0; i < pl_.nets.size(); ++i) {
      const PlacedNet& pn = pl_.nets[i];
      const double arr_drv = arr_[nl_.net(pn.net).driver];
      crit_[i].assign(pn.sinks.size(), 0.0);
      for (std::size_t j = 0; j < pn.sinks.size(); ++j) {
        double worst = 0.0;
        for (BlockId s : nl_.net(pn.net).sinks) {
          const std::size_t owner = pack_.block_owner[s];
          if (owner == pn.driver) continue;  // local feedback, not routed
          if (owner != pn.sinks[j]) continue;
          double di = 0.0;
          switch (nl_.block(s).type) {
            case BlockType::kLut:
              di = view_.t_lut + down_[s];
              break;
            case BlockType::kLatch:
              di = view_.t_setup;
              break;
            default:
              break;
          }
          worst = std::max(worst, arr_drv + sink_delay_[i][j] + di);
        }
        crit_[i][j] = criticality_from_slack(d_max_ - worst, d_max_,
                                             max_crit_, crit_exp_);
        max_path = std::max(max_path, worst);
      }
    }
    worst_slack_ = d_max_ - max_path;
    have_timing_ = true;
  }

  double criticality(std::size_t net, std::size_t sink_slot) const override {
    if (!have_timing_) {
      return seed_crit_.empty() ? 0.0 : seed_crit_[net];
    }
    return crit_[net][sink_slot];
  }
  double critical_path() const override { return d_max_; }
  double worst_slack() const override { return worst_slack_; }
  std::uint64_t net_evals() const override { return net_evals_; }
  std::uint64_t block_updates() const override { return block_updates_; }

 private:
  /// analyze_timing's net_arc over the freshly rebuilt sink delays (the
  /// exact expressions of the production hook's net_arc).
  double net_arc(NetId n, BlockId sink_blk) const {
    const std::size_t placed = net_to_placed_[n];
    if (placed == kInvalidId) {
      const Net& net = nl_.net(n);
      if (net.sinks.size() == 1) {
        const Block& s = nl_.block(net.sinks[0]);
        const Block& d = nl_.block(net.driver);
        if (s.type == BlockType::kLatch && d.type == BlockType::kLut) {
          return 0.0;  // fused BLE register
        }
      }
      return view_.t_local_feedback;
    }
    const PlacedNet& pn = pl_.nets[placed];
    const std::size_t owner = pack_.block_owner[sink_blk];
    for (std::size_t j = 0; j < pn.sinks.size(); ++j) {
      if (pn.sinks[j] == owner) return sink_delay_[placed][j];
    }
    return view_.t_local_feedback;  // same-cluster sink of a global net
  }

  const Netlist& nl_;
  const Packing& pack_;
  const Placement& pl_;
  const ElectricalView view_;
  const DelayModel model_;
  const double crit_exp_;
  const double max_crit_;

  std::vector<std::size_t> net_to_placed_;
  std::vector<std::vector<double>> sink_delay_;
  std::vector<double> arr_;
  std::vector<double> down_;
  std::vector<std::vector<double>> crit_;  ///< Per net, per sink slot.
  std::vector<double> seed_crit_;
  double d_max_ = 0.0;
  double worst_slack_ = 0.0;
  bool have_timing_ = false;
  std::uint64_t net_evals_ = 0;
  std::uint64_t block_updates_ = 0;
};

}  // namespace

std::unique_ptr<RouterTimingHook> make_reference_sta(
    const Netlist& nl, const Packing& pack, const Placement& pl,
    const RrGraphView& g, const ElectricalView& view, double criticality_exp,
    double max_criticality) {
  return std::make_unique<ReferenceSta>(nl, pack, pl, g, view,
                                        criticality_exp, max_criticality);
}

}  // namespace nemfpga::verify
