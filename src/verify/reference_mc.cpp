// Reference Monte-Carlo oracles: plain serial loops stating the stream
// semantics the parallel kernels promise ("rng is consumed for exactly one
// draw; trial/relay i samples from its own child stream; reduce in index
// order"). The production paths must match these bit-for-bit at any thread
// count — that claim is what tests/prop/prop_parallel_diff checks.
#include "verify/oracles.hpp"

#include <optional>

#include "program/half_select.hpp"

namespace nemfpga::verify {

std::vector<RelaySample> reference_sample_population_parallel(
    const RelayDesign& nominal, const VariationSpec& spec, std::size_t n,
    Rng& rng) {
  const std::uint64_t stream = rng.next_u64();
  std::vector<RelaySample> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    Rng child = Rng::from_stream(stream, i);
    out[i] = sample_relay(nominal, spec, child);
  }
  return out;
}

YieldResult reference_programming_yield(const RelayDesign& nominal,
                                        const VariationSpec& spec,
                                        std::size_t rows, std::size_t cols,
                                        std::size_t trials, Rng& rng,
                                        VoltagePolicy policy) {
  YieldResult result;
  result.trials = trials;

  PopulationEnvelope nominal_env;
  nominal_env.vpi_min = nominal_env.vpi_max = nominal.pull_in_voltage();
  nominal_env.vpo_min = nominal_env.vpo_max = nominal.pull_out_voltage();
  nominal_env.min_hysteresis = nominal_env.vpi_min - nominal_env.vpo_max;
  const auto fixed = solve_program_window(nominal_env);
  if (trials == 0) return result;

  const std::uint64_t stream = rng.next_u64();
  double margin_sum = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    Rng trial_rng = Rng::from_stream(stream, t);
    const auto pop = sample_population(nominal, spec, rows * cols, trial_rng);
    const auto env = envelope(pop);

    std::optional<ProgrammingVoltages> v;
    if (policy == VoltagePolicy::kPerArrayCalibrated) {
      v = solve_program_window(env);
    } else {
      v = fixed;
    }
    if (!v || !voltages_work_for(env, *v)) continue;
    ++result.good_arrays;
    margin_sum += noise_margins(env, *v).worst();
  }
  if (result.good_arrays > 0) {
    result.mean_worst_margin = margin_sum / result.good_arrays;
  }
  return result;
}

}  // namespace nemfpga::verify
