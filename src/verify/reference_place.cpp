// Naive placement-cost oracle: the full-rescan twin of place.hpp's
// NetCostModel. No boxes, no edge-occupancy counts, no pending deltas —
// every query walks every pin of the nets it is asked about. The
// incremental engine derives each net cost from the final integer box
// coordinates only, so the two must agree *bitwise* per net; the tracked
// total (a sum of per-move deltas) drifts from the recomputed total by at
// most the floating-point accumulation bound the differential suite pins
// (tests/prop/prop_place_diff.cpp, <= 1e-9 relative).
#include <algorithm>

#include "verify/oracles.hpp"

namespace nemfpga::verify {
namespace {

/// Independent transcription of the VPR fanout correction used by the
/// production kernel (q(terminals) [Betz 99]).
double ref_q_factor(std::size_t terminals) {
  static constexpr double kTable[] = {1.0,    1.0,    1.0,    1.0,    1.0828,
                                      1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
                                      1.4493, 1.4974, 1.5455, 1.5937, 1.6418,
                                      1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
                                      1.8924, 1.9288, 1.9652, 2.0015, 2.0379,
                                      2.0743, 2.1061, 2.1379, 2.1698, 2.2016,
                                      2.2334};
  if (terminals < std::size(kTable)) return kTable[terminals];
  return 2.2334 + 0.0616 * (static_cast<double>(terminals) - 30.0) / 5.0;
}

}  // namespace

ReferenceNetBox reference_net_box(const PlacedNet& n,
                                  const std::vector<BlockLoc>& locs) {
  ReferenceNetBox b;
  b.x_lo = b.x_hi = locs[n.driver].x;
  b.y_lo = b.y_hi = locs[n.driver].y;
  for (std::size_t s : n.sinks) {
    b.x_lo = std::min(b.x_lo, locs[s].x);
    b.x_hi = std::max(b.x_hi, locs[s].x);
    b.y_lo = std::min(b.y_lo, locs[s].y);
    b.y_hi = std::max(b.y_hi, locs[s].y);
  }
  return b;
}

double reference_net_cost(const PlacedNet& n, double weight,
                          const std::vector<BlockLoc>& locs) {
  const ReferenceNetBox b = reference_net_box(n, locs);
  const double span = static_cast<double>(b.x_hi - b.x_lo) +
                      static_cast<double>(b.y_hi - b.y_lo);
  return weight * ref_q_factor(n.sinks.size() + 1) * span;
}

double reference_placement_cost(const std::vector<PlacedNet>& nets,
                                const std::vector<double>& weights,
                                const std::vector<BlockLoc>& locs) {
  double cost = 0.0;
  for (std::size_t n = 0; n < nets.size(); ++n) {
    cost += reference_net_cost(nets[n], weights[n], locs);
  }
  return cost;
}

}  // namespace nemfpga::verify
