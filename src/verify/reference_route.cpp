// Reference PathFinder oracle. This is the "straightforward implementation"
// the optimized router's comments promise bit-identity with: the same
// algorithm (same comparator, same relaxation epsilons, same deterministic
// jitter, same A* lookahead key, same batched-parallel schedule, same
// iteration schedule), expressed with per-net hash maps, whole-vector
// occupancy snapshots and full O(V) rescans instead of the production
// scratch arena, HotNode cost cache, epoch stamps and incremental overuse
// tracker. Any divergence between the two is a bug in one of them — that
// is the point.
#include "verify/oracles.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "arch/lookahead.hpp"

namespace nemfpga::verify {
namespace {

struct RefRouter {
  const RrGraphView g;
  const Placement& pl;
  const RouteOptions& opt;

  std::vector<std::uint16_t> cap;
  std::vector<std::uint32_t> occ;
  std::vector<float> history;  // float, like the production router
  std::vector<double> base_cost;
  std::vector<double> cost;  // per-iteration: base * (1 + history) * jitter
  double pres_fac;

  /// The same geometric lookahead table the production router queries
  /// (shared when the caller prebuilt one, else built here) — the A* key
  /// must be transcribed bit-exactly or the searches tie-break apart.
  std::shared_ptr<const RouteLookahead> la;

  /// Timing-driven transcription: the same borrowed RouterTimingHook the
  /// production router consumes (null when congestion-only). The hook is
  /// stateful, so a differential run hands each router its own instance.
  RouterTimingHook* const timing;
  const double* node_delay = nullptr;  ///< Per-node entering delay [s].
  double spb = 0.0;                    ///< Seconds per unit base cost.

  /// Nets that ever needed the unconstrained retry (transcribed from the
  /// production router's sticky flag — the partition classifier keeps
  /// such nets serial for the rest of the run).
  std::vector<std::uint8_t> routed_unbounded;
  /// Edge-enumeration buffer for the implicit backend (the view's
  /// edges(id, buf) fills it; explicit backends hand back stored spans).
  std::vector<RrEdge> ebuf;

  struct QItem {
    double cost;
    double known;
    RrNodeId node;
    bool operator>(const QItem& o) const { return cost > o.cost; }
  };

  RefRouter(const RrGraphView& graph, const Placement& placement,
            const RouteOptions& options)
      : g(graph), pl(placement), opt(options),
        timing(options.timing_driven ? options.timing_hook : nullptr) {
    routed_unbounded.assign(pl.nets.size(), 0);
    const std::size_t n = g.node_count();
    cap.resize(n);
    occ.assign(n, 0);
    history.assign(n, 0.0f);
    base_cost.resize(n);
    cost.resize(n);
    for (RrNodeId i = 0; i < n; ++i) {
      cap[i] = g.node(i).capacity;
      base_cost[i] = node_base_cost(g.node(i));
    }
    pres_fac = opt.first_iter_pres_fac;
    if (opt.astar_factor > 0.0) {
      if (opt.lookahead) {
        la = opt.lookahead;
      } else if (timing) {
        // Delay-annotated twin table, like the production constructor.
        const DelayProfile prof = timing->delay_profile();
        la = std::make_shared<const RouteLookahead>(g, &prof);
      } else {
        la = std::make_shared<const RouteLookahead>(g);
      }
    }
    if (timing) {
      node_delay = timing->node_delay();
      spb = timing->sec_per_base();
    }
  }

  static double node_base_cost(const RrNode& n) {
    switch (n.type) {
      case RrType::kChanX:
      case RrType::kChanY:
        return static_cast<double>(n.length);
      case RrType::kIpin:
        return 0.95;
      case RrType::kSink:
        return 0.0;
      default:
        return 1.0;
    }
  }

  bool overused(RrNodeId id) const { return occ[id] > cap[id]; }

  std::size_t overused_count() const {
    std::size_t n = 0;
    for (RrNodeId i = 0; i < g.node_count(); ++i) {
      if (overused(i)) ++n;
    }
    return n;
  }

  void begin_iteration(std::size_t iter) {
    const std::uint32_t salt = static_cast<std::uint32_t>(iter) * 40503u;
    for (RrNodeId i = 0; i < g.node_count(); ++i) {
      const std::uint32_t h = (i * 2654435761u) ^ salt;
      const double jitter =
          1.0 + 0.02 * static_cast<double>((h >> 16) & 0xff) / 255.0;
      cost[i] =
          (base_cost[i] * (1.0 + static_cast<double>(history[i]))) * jitter;
    }
  }

  double congestion_cost(RrNodeId id) const {
    const int over = static_cast<int>(occ[id]) + 1 - static_cast<int>(cap[id]);
    if (over <= 0) return cost[id];
    return cost[id] * (1.0 + over * pres_fac);
  }

  double heuristic(RrNodeId from, RrNodeId to, double crit) const {
    const RrNode a = g.node(from);
    const RrNode b = g.node(to);
    if (la) {
      if (timing) {
        // Blended halves with the relaxation weights, transcribed from
        // the production h_of: the delay half reads the lookahead's delay
        // twin table (zero when a caller-shared table lacks one, exactly
        // the production delay_tab null check).
        const double dly = la->has_delay_table()
                               ? la->delay_estimate(a, b.x_lo, b.y_lo)
                               : 0.0;
        return opt.astar_factor *
               (crit * dly +
                (1.0 - crit) * spb * la->estimate(a, b.x_lo, b.y_lo));
      }
      // A* key: lookahead table at the target sink's tile, weighted by
      // astar_factor — the exact expression the production search core
      // evaluates through its folded HotNode::la_key.
      return opt.astar_factor * la->estimate(a, b.x_lo, b.y_lo);
    }
    const auto clampdist = [](int lo1, int hi1, int lo2, int hi2) {
      if (hi1 < lo2) return lo2 - hi1;
      if (hi2 < lo1) return lo1 - hi2;
      return 0;
    };
    const int dx = clampdist(a.x_lo, a.x_hi, b.x_lo, b.x_hi);
    const int dy = clampdist(a.y_lo, a.y_hi, b.y_lo, b.y_hi);
    const double h = opt.astar_fac * static_cast<double>(dx + dy);
    // Manhattan distance bounds base cost, not delay: blend only the
    // congestion half (the production search core does the same).
    return timing ? (1.0 - crit) * spb * h : h;
  }

  /// `eff_seed` (when asked for) reports how many leading edges of the
  /// final tree were pre-seeded rather than routed by this call — zero
  /// when the unconstrained retry rebuilt the tree from scratch. The
  /// batched commit stage marks exactly the non-seed nodes, mirroring the
  /// production Scratch::seed_edges accounting.
  bool route_net(std::size_t net_idx, const PlacedNet& net, RouteTree& out,
                 std::size_t extra_bb, std::size_t* eff_seed = nullptr) {
    std::size_t seed = out.edges.size();
    bool ok = route_net_bb(net_idx, net, out, opt.bb_margin + extra_bb);
    if (!ok) {
      out = RouteTree{};
      seed = 0;
      // Same sticky flag the production route_net sets before its
      // unconstrained retry (keeps the net serial in partition mode).
      routed_unbounded[net_idx] = 1;
      ok = route_net_bb(net_idx, net, out, g.nx() + g.ny());
    }
    if (eff_seed) *eff_seed = seed;
    return ok;
  }

  bool route_net_bb(std::size_t net_idx, const PlacedNet& net, RouteTree& out,
                    std::size_t bb_margin, bool speculative = false) {
    const std::size_t seed_edges = out.edges.size();
    const BlockLoc& dloc = pl.locs[net.driver];
    const RrNodeId source = g.site(dloc.x, dloc.y).source;
    out.source = source;
    out.sinks.clear();

    int x_lo = static_cast<int>(dloc.x), x_hi = x_lo;
    int y_lo = static_cast<int>(dloc.y), y_hi = y_lo;
    std::vector<RrNodeId> sink_nodes;
    for (std::size_t s : net.sinks) {
      const BlockLoc& l = pl.locs[s];
      sink_nodes.push_back(g.site(l.x, l.y).sink);
      x_lo = std::min(x_lo, static_cast<int>(l.x));
      x_hi = std::max(x_hi, static_cast<int>(l.x));
      y_lo = std::min(y_lo, static_cast<int>(l.y));
      y_hi = std::max(y_hi, static_cast<int>(l.y));
    }
    const int m = static_cast<int>(bb_margin);
    x_lo -= m;
    x_hi += m;
    y_lo -= m;
    y_hi += m;
    auto in_bb = [&](const RrNode& n) {
      return static_cast<int>(n.x_hi) >= x_lo &&
             static_cast<int>(n.x_lo) <= x_hi &&
             static_cast<int>(n.y_hi) >= y_lo &&
             static_cast<int>(n.y_lo) <= y_hi;
    };

    // Sink order: near-to-far from the driver (same keys, same sort); in
    // timing mode the per-connection criticalities are fetched here and
    // the most critical sinks route first, with the legacy near-to-far
    // key breaking criticality ties — both transcribed from route_net_bb.
    std::vector<std::uint32_t> order(sink_nodes.size());
    std::vector<double> sink_keys(sink_nodes.size());
    std::vector<double> sink_crit;
    if (timing) sink_crit.resize(sink_nodes.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) {
      order[i] = i;
      const double crit = timing ? timing->criticality(net_idx, i) : 0.0;
      if (timing) sink_crit[i] = crit;
      sink_keys[i] = heuristic(source, sink_nodes[i], crit);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (timing && sink_crit[a] != sink_crit[b]) {
                  return sink_crit[a] > sink_crit[b];
                }
                return sink_keys[a] < sink_keys[b];
              });

    // Tree membership plus, in timing mode, each tree node's delay from
    // the source (a plain map standing in for the production
    // Scratch::node_tdel arena), so later searches seed the tree at
    // known = crit * delay-from-source.
    std::vector<RrNodeId> tree_nodes{source};
    std::unordered_set<RrNodeId> in_tree{source};
    std::unordered_map<RrNodeId, double> tdel;
    if (timing) tdel[source] = 0.0;
    for (const auto& [from, to] : out.edges) {
      if (in_tree.insert(to).second) {
        tree_nodes.push_back(to);
        if (timing) tdel[to] = tdel.at(from) + node_delay[to];
      }
    }
    const std::size_t n_seed = tree_nodes.size();

    std::vector<QItem> heap;
    for (std::uint32_t oi : order) {
      const RrNodeId target = sink_nodes[oi];
      if (in_tree.contains(target)) {
        out.sinks.push_back(target);
        continue;
      }
      const double crit = timing ? sink_crit[oi] : 0.0;
      const double inv_spb = timing ? (1.0 - crit) * spb : 0.0;
      // Per-search relaxation state: plain hash maps.
      std::unordered_map<RrNodeId, double> path_cost;
      std::unordered_map<RrNodeId, RrNodeId> prev;
      heap.clear();
      for (RrNodeId n : tree_nodes) {
        const double known = timing ? crit * tdel.at(n) : 0.0;
        path_cost[n] = known;
        prev[n] = kNoRrNode;
        heap.push_back({known + heuristic(n, target, crit), known, n});
        std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      }
      bool found = false;
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
        const QItem item = heap.back();
        heap.pop_back();
        const RrNodeId u = item.node;
        if (const auto it = path_cost.find(u);
            it != path_cost.end() && item.known > it->second + 1e-9) {
          continue;  // stale entry
        }
        if (u == target) {
          found = true;
          break;
        }
        // Weighted table A* closes expanded nodes for good (transcribed
        // from the production search core's no_reexpand sentinel).
        if (la && opt.astar_factor > 1.0) {
          path_cost[u] = -std::numeric_limits<double>::infinity();
        }
        for (const RrEdge& e : g.edges(u, ebuf)) {
          const RrNodeId v = e.to;
          const RrNode vn = g.node(v);
          if (!in_bb(vn)) continue;
          if (vn.type == RrType::kSink && v != target) continue;
          const double new_cost =
              timing ? item.known + crit * node_delay[v] +
                           inv_spb * congestion_cost(v)
                     : item.known + congestion_cost(v);
          const auto it = path_cost.find(v);
          if (it == path_cost.end() || new_cost < it->second - 1e-9) {
            path_cost[v] = new_cost;
            prev[v] = u;
            heap.push_back(
                {new_cost + heuristic(v, target, crit), new_cost, v});
            std::push_heap(heap.begin(), heap.end(), std::greater<>{});
          }
        }
      }
      if (!found) {
        if (speculative) {
          // Window escape under speculation: roll back to the seed tree
          // (the production router discards its occupancy overlay, so the
          // seed keeps its occupancy); the serial phase owns retries.
          for (std::size_t i = n_seed; i < tree_nodes.size(); ++i) {
            --occ[tree_nodes[i]];
          }
          out.edges.resize(seed_edges);
          out.sinks.clear();
          return false;
        }
        for (std::size_t i = 1; i < tree_nodes.size(); ++i) {
          --occ[tree_nodes[i]];
        }
        return false;
      }
      std::vector<std::pair<RrNodeId, RrNodeId>> path;
      RrNodeId n = target;
      while (prev.at(n) != kNoRrNode) {
        path.emplace_back(prev.at(n), n);
        n = prev.at(n);
      }
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        out.edges.push_back(*it);
        if (in_tree.insert(it->second).second) {
          tree_nodes.push_back(it->second);
          if (timing) {
            tdel[it->second] = tdel.at(it->first) + node_delay[it->second];
          }
          ++occ[it->second];
        }
      }
      out.sinks.push_back(target);
    }
    ++occ[source];
    return true;
  }

  void rip_up(const RouteTree& t) {
    if (t.source == kNoRrNode) return;
    --occ[t.source];
    std::unordered_set<RrNodeId> seen;
    for (const auto& [from, to] : t.edges) {
      (void)from;
      if (seen.insert(to).second) --occ[to];
    }
  }

  void prune_tree(const PlacedNet& net, RouteTree& t) {
    if (t.source == kNoRrNode) return;
    // Pass 1 (forward): keep the clean source-connected subtree.
    std::vector<std::pair<RrNodeId, RrNodeId>> kept;
    std::unordered_set<RrNodeId> keep;
    if (!overused(t.source)) keep.insert(t.source);
    for (const auto& e : t.edges) {
      if (keep.contains(e.first) && !overused(e.second)) {
        keep.insert(e.second);
        kept.push_back(e);
      } else {
        --occ[e.second];
      }
    }
    // Pass 2 (reverse): drop branches feeding none of the net's sinks.
    std::unordered_set<RrNodeId> useful;
    for (std::size_t s : net.sinks) {
      const BlockLoc& l = pl.locs[s];
      const RrNodeId sk = g.site(l.x, l.y).sink;
      if (keep.contains(sk)) useful.insert(sk);
    }
    std::vector<std::pair<RrNodeId, RrNodeId>> rev;
    for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
      if (useful.contains(it->second)) {
        useful.insert(it->first);
        rev.push_back(*it);
      } else {
        --occ[it->second];
      }
    }
    --occ[t.source];
    t.edges.assign(rev.rbegin(), rev.rend());
    t.sinks.clear();
  }

  void update_history() {
    for (RrNodeId i = 0; i < g.node_count(); ++i) {
      if (overused(i)) {
        history[i] += static_cast<float>(
            opt.history_fac * (static_cast<int>(occ[i]) -
                               static_cast<int>(cap[i])));
      }
    }
  }
};

}  // namespace

RoutingResult reference_route_all(const RrGraphView& g, const Placement& pl,
                                  const RouteOptions& opt) {
  RefRouter router(g, pl, opt);
  RoutingResult res;
  res.trees.assign(pl.nets.size(), {});
  std::size_t best_overuse = static_cast<std::size_t>(-1);
  std::size_t best_iter = 0;
  // Overuse history for the hopeless-probe predictor (transcribed from
  // route_all — same window, same slack, same gates).
  std::vector<std::size_t> ou_hist;
  ou_hist.reserve(opt.max_iterations);

  auto touches_overuse = [&](const RouteTree& t) {
    if (t.source == kNoRrNode) return true;
    if (router.overused(t.source)) return true;
    for (const auto& [from, to] : t.edges) {
      (void)from;
      if (router.overused(to)) return true;
    }
    return false;
  };

  std::vector<std::size_t> extra_bb(pl.nets.size(), 0);

  // Timing-driven orchestration, transcribed from route_all: the hook is
  // updated serially at the start of every iteration with the nets
  // (re)routed in the previous one, and once more over the final trees on
  // success so the reported critical path covers the last iteration.
  const bool timing_on = opt.timing_driven && opt.timing_hook != nullptr;
  std::vector<std::size_t> dirty;
  if (timing_on) dirty.reserve(pl.nets.size());

  // Batched-mode state (net_parallel): the oracle transcribes the
  // production scheduler literally — the first-fit 64-color partition
  // over margin-inflated net bounding boxes (levelized overflow above
  // 64 colors), speculative members routed against a frozen occupancy,
  // serial commit/replay in ascending net order — with whole-vector
  // occupancy snapshots standing in for the production scratch overlay.
  // The schedule depends only on the placement, so this serial
  // transcription is the committed meaning of "bit-identical at any
  // thread count".
  std::vector<std::vector<std::size_t>> batches;
  std::vector<std::size_t> live;

  // Partition-parallel state, same formulas as route_all: a fixed region
  // grid over the fabric; classification is per iteration (windows widen).
  const bool part_mode = opt.net_parallel && opt.partition_parallel;
  std::size_t preg = 0, pgx = 0, pgy = 0;
  std::vector<std::vector<std::size_t>> part_nets;
  std::vector<std::size_t> serial_nets;
  if (part_mode) {
    const std::size_t gx = g.nx() + 2, gy = g.ny() + 2;
    preg = opt.partition_size != 0
               ? opt.partition_size
               : std::max<std::size_t>(4, (std::max(gx, gy) + 3) / 4);
    preg = std::max<std::size_t>(preg, 1);
    pgx = (gx + preg - 1) / preg;
    pgy = (gy + preg - 1) / preg;
    part_nets.resize(pgx * pgy);
  }

  if (opt.net_parallel && !part_mode) {
    constexpr int kSchedMargin = 1;  // must match route_all
    const std::size_t gx = g.nx() + 2, gy = g.ny() + 2;
    std::vector<std::uint64_t> color(gx * gy, 0);
    std::vector<std::uint32_t> level(gx * gy, 64);
    for (std::size_t n = 0; n < pl.nets.size(); ++n) {
      const PlacedNet& net = pl.nets[n];
      const BlockLoc& dloc = pl.locs[net.driver];
      int bx_lo = static_cast<int>(dloc.x), bx_hi = bx_lo;
      int by_lo = static_cast<int>(dloc.y), by_hi = by_lo;
      for (std::size_t s : net.sinks) {
        const BlockLoc& l = pl.locs[s];
        bx_lo = std::min(bx_lo, static_cast<int>(l.x));
        bx_hi = std::max(bx_hi, static_cast<int>(l.x));
        by_lo = std::min(by_lo, static_cast<int>(l.y));
        by_hi = std::max(by_hi, static_cast<int>(l.y));
      }
      bx_lo = std::max(bx_lo - kSchedMargin, 0);
      by_lo = std::max(by_lo - kSchedMargin, 0);
      bx_hi = std::min(bx_hi + kSchedMargin, static_cast<int>(gx) - 1);
      by_hi = std::min(by_hi + kSchedMargin, static_cast<int>(gy) - 1);
      std::uint64_t used = 0;
      std::uint32_t lvl = 64;
      for (int x = bx_lo; x <= bx_hi; ++x) {
        const std::size_t row = static_cast<std::size_t>(x) * gy;
        for (int y = by_lo; y <= by_hi; ++y) {
          used |= color[row + y];
          lvl = std::max(lvl, level[row + y]);
        }
      }
      const std::uint32_t b =
          used != ~0ull ? static_cast<std::uint32_t>(std::countr_one(used))
                        : lvl;
      if (b >= batches.size()) batches.resize(b + 1);
      batches[b].push_back(n);
      for (int x = bx_lo; x <= bx_hi; ++x) {
        const std::size_t row = static_cast<std::size_t>(x) * gy;
        for (int y = by_lo; y <= by_hi; ++y) {
          if (b < 64) {
            color[row + y] |= 1ull << b;
          } else {
            level[row + y] = b + 1;
          }
        }
      }
    }
  }

  auto fail_out = [&]() {
    res.success = false;
    res.overused_nodes = router.overused_count();
    return res;
  };

  for (std::size_t iter = 1; iter <= opt.max_iterations; ++iter) {
    res.iterations = iter;
    if (timing_on) {
      opt.timing_hook->update(g, res.trees, dirty, iter);
      dirty.clear();
    }
    router.begin_iteration(iter);
    if (!opt.net_parallel) {
      for (std::size_t n = 0; n < pl.nets.size(); ++n) {
        if (iter > 1) {
          if (opt.incremental) {
            if (router.overused_count() == 0) break;
            if (!touches_overuse(res.trees[n])) continue;
          }
          if (opt.prune_ripup) {
            router.prune_tree(pl.nets[n], res.trees[n]);
          } else {
            router.rip_up(res.trees[n]);
            res.trees[n] = RouteTree{};
          }
          if (iter > 12) {
            extra_bb[n] = std::min<std::size_t>(extra_bb[n] + 2,
                                                g.nx() + g.ny());
          }
        }
        if (!router.route_net(n, pl.nets[n], res.trees[n], extra_bb[n])) {
          return fail_out();
        }
        if (timing_on) dirty.push_back(n);
      }
    } else if (part_mode) {
      // Region-partitioned mode, transcribed serially. Phase 1
      // (classify, net order) is route_all's verbatim — full rips are
      // lazy (right before each net's own reroute) so unprocessed nets
      // keep exerting congestion pressure; only prune_ripup trims here.
      // Phase 2 rips+routes the partitions one after another in
      // partition index order — the production parallel phase touches
      // pairwise-disjoint state, so this serial order is the committed
      // meaning of "bit-identical at any thread count"; phase 3 rips and
      // routes boundary and deferred nets interleaved in ascending net
      // order with full (unbounded-retry) semantics.
      for (auto& v : part_nets) v.clear();
      serial_nets.clear();
      const std::size_t gx = g.nx() + 2, gy = g.ny() + 2;
      const int reach = static_cast<int>(g.arch().L) - 1;
      for (std::size_t n = 0; n < pl.nets.size(); ++n) {
        if (iter > 1) {
          if (opt.incremental && !touches_overuse(res.trees[n])) continue;
          if (opt.prune_ripup) {
            router.prune_tree(pl.nets[n], res.trees[n]);
          }
          if (iter > 12) {
            extra_bb[n] = std::min<std::size_t>(extra_bb[n] + 2,
                                                g.nx() + g.ny());
          }
        }
        const PlacedNet& net = pl.nets[n];
        const BlockLoc& dloc = pl.locs[net.driver];
        int bx_lo = static_cast<int>(dloc.x), bx_hi = bx_lo;
        int by_lo = static_cast<int>(dloc.y), by_hi = by_lo;
        for (std::size_t s : net.sinks) {
          const BlockLoc& l = pl.locs[s];
          bx_lo = std::min(bx_lo, static_cast<int>(l.x));
          bx_hi = std::max(bx_hi, static_cast<int>(l.x));
          by_lo = std::min(by_lo, static_cast<int>(l.y));
          by_hi = std::max(by_hi, static_cast<int>(l.y));
        }
        const int m = static_cast<int>(opt.bb_margin + extra_bb[n]) + reach;
        bx_lo = std::max(bx_lo - m, 0);
        by_lo = std::max(by_lo - m, 0);
        bx_hi = std::min(bx_hi + m, static_cast<int>(gx) - 1);
        by_hi = std::min(by_hi + m, static_cast<int>(gy) - 1);
        const std::size_t px = static_cast<std::size_t>(bx_lo) / preg;
        const std::size_t py = static_cast<std::size_t>(by_lo) / preg;
        const bool interior =
            !router.routed_unbounded[n] &&
            static_cast<std::size_t>(bx_hi) / preg == px &&
            static_cast<std::size_t>(by_hi) / preg == py;
        if (interior) {
          part_nets[py * pgx + px].push_back(n);
        } else {
          serial_nets.push_back(n);
        }
      }

      std::size_t nonempty = 0;
      for (const auto& v : part_nets) nonempty += v.empty() ? 0 : 1;
      if (nonempty != 0) {
        for (std::size_t p = 0; p < part_nets.size(); ++p) {
          for (const std::size_t n : part_nets[p]) {
            if (iter > 1 && !opt.prune_ripup) {
              router.rip_up(res.trees[n]);
              res.trees[n] = RouteTree{};
            }
            if (router.route_net_bb(n, pl.nets[n], res.trees[n],
                                    opt.bb_margin + extra_bb[n],
                                    /*speculative=*/true)) {
              if (timing_on) dirty.push_back(n);
            } else {
              // Window escape -> deferred to the serial phase, already
              // ripped (a prune seed and its occupancy stay intact).
              if (!opt.prune_ripup) res.trees[n] = RouteTree{};
              serial_nets.push_back(n);
            }
          }
        }
        std::sort(serial_nets.begin(), serial_nets.end());
      }

      for (const std::size_t n : serial_nets) {
        if (iter > 1 && !opt.prune_ripup) {
          router.rip_up(res.trees[n]);
          res.trees[n] = RouteTree{};
        }
        if (!router.route_net(n, pl.nets[n], res.trees[n], extra_bb[n])) {
          return fail_out();
        }
        if (timing_on) dirty.push_back(n);
      }
    } else {
      // The placement-time partition computed above; rip membership is
      // decided per batch against the live occupancy.
      for (const auto& batch : batches) {
        if (iter > 1 && opt.incremental && router.overused_count() == 0) {
          break;
        }
        // Rip stage (net order): membership decided against the live
        // occupancy, exactly like the serial loop's per-net check.
        live.clear();
        for (std::size_t n : batch) {
          if (iter > 1) {
            if (opt.incremental && !touches_overuse(res.trees[n])) continue;
            if (opt.prune_ripup) {
              router.prune_tree(pl.nets[n], res.trees[n]);
            } else {
              router.rip_up(res.trees[n]);
              res.trees[n] = RouteTree{};
            }
            if (iter > 12) {
              extra_bb[n] = std::min<std::size_t>(extra_bb[n] + 2,
                                                  g.nx() + g.ny());
            }
          }
          live.push_back(n);
        }
        if (live.empty()) continue;
        if (live.size() == 1) {
          // Singleton fast path, mirrored from route_all: routed
          // directly against the live state, no speculation.
          const std::size_t n = live[0];
          if (!router.route_net(n, pl.nets[n], res.trees[n], extra_bb[n])) {
            return fail_out();
          }
          if (timing_on) dirty.push_back(n);
          continue;
        }

        // Route stage: every member speculates against the occupancy
        // frozen at batch start (snapshot/restore = the production
        // read-only shared state + per-net overlay), with no
        // unconstrained retry — window escapes go to the serial replay.
        struct Member {
          RouteTree tree;
          bool ok = false;
          std::size_t seed = 0;
        };
        std::vector<Member> members(live.size());
        for (std::size_t i = 0; i < live.size(); ++i) {
          Member& m = members[i];
          m.tree = res.trees[live[i]];
          m.seed = m.tree.edges.size();
          const std::vector<std::uint32_t> snapshot = router.occ;
          m.ok = router.route_net_bb(live[i], pl.nets[live[i]], m.tree,
                                     opt.bb_margin + extra_bb[live[i]]);
          router.occ = snapshot;
        }

        // Commit stage (ascending net order). A member re-routes serially
        // against the live state — with retry semantics — when its
        // speculative route escaped the window, claimed a node an earlier
        // member of this batch committed, or the debug hook fires.
        std::unordered_set<RrNodeId> committed;
        for (std::size_t i = 0; i < live.size(); ++i) {
          const std::size_t n = live[i];
          Member& m = members[i];
          bool replay = !m.ok;
          if (!replay && opt.debug_replay_every != 0 &&
              (i + 1) % opt.debug_replay_every == 0) {
            replay = true;
          }
          if (!replay) {
            bool hit = committed.contains(m.tree.source);
            for (std::size_t e = m.seed;
                 !hit && e < m.tree.edges.size(); ++e) {
              hit = committed.contains(m.tree.edges[e].second);
            }
            replay = hit;
          }
          if (!replay) {
            committed.insert(m.tree.source);
            ++router.occ[m.tree.source];
            for (std::size_t e = m.seed; e < m.tree.edges.size(); ++e) {
              committed.insert(m.tree.edges[e].second);
              ++router.occ[m.tree.edges[e].second];
            }
            res.trees[n] = std::move(m.tree);
          } else {
            std::size_t rseed = 0;
            if (!router.route_net(n, pl.nets[n], res.trees[n], extra_bb[n],
                                  &rseed)) {
              return fail_out();
            }
            committed.insert(res.trees[n].source);
            for (std::size_t e = rseed; e < res.trees[n].edges.size();
                 ++e) {
              committed.insert(res.trees[n].edges[e].second);
            }
          }
          if (timing_on) dirty.push_back(n);
        }
      }
    }
    res.overused_nodes = router.overused_count();
    if (res.overused_nodes == 0) {
      res.success = true;
      break;
    }
    if (res.overused_nodes < best_overuse) {
      best_overuse = res.overused_nodes;
      best_iter = iter;
    } else if (best_overuse > 20 && iter > best_iter + 15 &&
               res.overused_nodes > best_overuse * 95 / 100) {
      break;
    }
    // Infeasibility predictor, both rules mirrored from route_all: the
    // iteration-12 structural-congestion checkpoint, and the linear
    // overuse forecast over a 16-iteration window that aborts when the
    // projected convergence iteration overshoots the budget by 50%.
    ou_hist.push_back(res.overused_nodes);
    if (iter == 12 && res.overused_nodes * 4 > pl.nets.size()) {
      break;
    }
    if (iter >= 24 && res.overused_nodes > 20) {
      const std::size_t prev = ou_hist[ou_hist.size() - 17];
      if (prev > res.overused_nodes) {
        const double slope =
            static_cast<double>(prev - res.overused_nodes) / 16.0;
        const double predicted =
            static_cast<double>(iter) +
            static_cast<double>(res.overused_nodes) / slope;
        if (predicted > 1.5 * static_cast<double>(opt.max_iterations)) {
          break;
        }
      }
    }
    router.update_history();
    router.pres_fac =
        std::min(router.pres_fac * opt.pres_fac_mult, opt.pres_fac_max);
  }

  if (res.success && timing_on) {
    // Final analysis over the last iteration's reroutes so the reported
    // critical path and slack describe the returned trees.
    opt.timing_hook->update(g, res.trees, dirty, res.iterations + 1);
    dirty.clear();
    res.critical_path_s = opt.timing_hook->critical_path();
    res.worst_slack_s = opt.timing_hook->worst_slack();
  }
  if (res.success) {
    std::unordered_set<RrNodeId> counted;
    for (const auto& t : res.trees) {
      for (const auto& [from, to] : t.edges) {
        (void)from;
        const RrNode& n = g.node(to);
        if (n.type == RrType::kChanX || n.type == RrType::kChanY) {
          if (counted.insert(to).second) {
            ++res.wire_segments_used;
            res.total_wire_tiles += n.length;
          }
        }
      }
    }
  }
  return res;
}

std::string diff_routing(const RoutingResult& a, const RoutingResult& b) {
  std::ostringstream os;
  if (a.success != b.success) {
    os << "success " << a.success << " vs " << b.success;
    return os.str();
  }
  if (a.iterations != b.iterations) {
    os << "iterations " << a.iterations << " vs " << b.iterations;
    return os.str();
  }
  if (a.overused_nodes != b.overused_nodes) {
    os << "overused_nodes " << a.overused_nodes << " vs " << b.overused_nodes;
    return os.str();
  }
  if (a.trees.size() != b.trees.size()) {
    os << "tree count " << a.trees.size() << " vs " << b.trees.size();
    return os.str();
  }
  for (std::size_t i = 0; i < a.trees.size(); ++i) {
    const RouteTree& ta = a.trees[i];
    const RouteTree& tb = b.trees[i];
    if (ta.source != tb.source) {
      os << "net " << i << ": source " << ta.source << " vs " << tb.source;
      return os.str();
    }
    if (ta.edges != tb.edges) {
      os << "net " << i << ": edge lists differ (" << ta.edges.size()
         << " vs " << tb.edges.size() << " edges)";
      for (std::size_t e = 0;
           e < std::min(ta.edges.size(), tb.edges.size()); ++e) {
        if (ta.edges[e] != tb.edges[e]) {
          os << "; first diff at edge " << e << ": (" << ta.edges[e].first
             << "->" << ta.edges[e].second << ") vs (" << tb.edges[e].first
             << "->" << tb.edges[e].second << ")";
          break;
        }
      }
      return os.str();
    }
    if (ta.sinks != tb.sinks) {
      os << "net " << i << ": sink lists differ";
      return os.str();
    }
  }
  if (a.wire_segments_used != b.wire_segments_used) {
    os << "wire_segments_used " << a.wire_segments_used << " vs "
       << b.wire_segments_used;
    return os.str();
  }
  if (a.total_wire_tiles != b.total_wire_tiles) {
    os << "total_wire_tiles " << a.total_wire_tiles << " vs "
       << b.total_wire_tiles;
    return os.str();
  }
  if (a.critical_path_s != b.critical_path_s) {
    os << "critical_path_s " << a.critical_path_s << " vs "
       << b.critical_path_s;
    return os.str();
  }
  if (a.worst_slack_s != b.worst_slack_s) {
    os << "worst_slack_s " << a.worst_slack_s << " vs " << b.worst_slack_s;
    return os.str();
  }
  return {};
}

}  // namespace nemfpga::verify
