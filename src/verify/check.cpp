#include "verify/check.hpp"

#include <cstdlib>
#include <cstring>

namespace nemfpga::verify {

bool checks_enabled() {
  static const bool on = [] {
    if (const char* e = std::getenv("NF_CHECK_INVARIANTS")) {
      // Any non-empty value other than "0" enables; "0"/"" disable even
      // when the build defaulted the checks on.
      return e[0] != '\0' && std::strcmp(e, "0") != 0;
    }
#ifdef NF_CHECK_INVARIANTS_DEFAULT_ON
    return true;
#else
    return false;
#endif
  }();
  return on;
}

}  // namespace nemfpga::verify
