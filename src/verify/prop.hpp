// Minimal header-only property-based testing core for the differential
// verification harness (tests/prop/). Deliberately small: seeded
// generators, greedy shrinking, and a per-case replay seed printed on
// failure — nothing more.
//
// Model: a *generator* draws a case descriptor from an Rng; a *property*
// examines it and throws PropFailure (via prop_require / prop_fail) on
// violation; an optional *shrinker* proposes strictly-smaller descriptors,
// which the harness applies greedily while the property keeps failing.
// Case i runs on the independent stream Rng::from_stream(base_seed, i), so
// any failing case replays in isolation:
//
//   NF_PROP_SEED=<base> NF_PROP_CASE=<i> ctest -R <test> ...
//
// NF_PROP_CASES scales the case count (all suites), e.g. a nightly
// NF_PROP_CASES=5000 run. All knobs are read per check() call.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nemfpga::verify {

/// Thrown by properties on violation. Anything else escaping a property
/// (std::logic_error from an invariant checker, a crash under a sanitizer)
/// fails the case too, with the exception text as the message.
struct PropFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void prop_fail(const std::string& msg) {
  throw PropFailure(msg);
}

inline void prop_require(bool cond, const std::string& msg) {
  if (!cond) prop_fail(msg);
}

/// Require near-equality of two doubles (differential tolerance checks).
inline void prop_require_close(double a, double b, double rel_tol,
                               const std::string& what) {
  const double scale = std::max({1.0, a < 0 ? -a : a, b < 0 ? -b : b});
  const double diff = a > b ? a - b : b - a;
  if (diff > rel_tol * scale) {
    std::ostringstream os;
    os.precision(17);
    os << what << ": " << a << " vs " << b << " (|diff| " << diff
       << " > rel_tol " << rel_tol << ")";
    prop_fail(os.str());
  }
}

struct PropConfig {
  std::size_t cases = 200;
  std::uint64_t base_seed = 0x6e656d6670676131ull;  // "nemfpga1"
  std::size_t max_shrink_tries = 400;
  /// Replay mode: run exactly this case index and nothing else.
  std::optional<std::size_t> only_case;

  /// Environment-driven config: NF_PROP_CASES, NF_PROP_SEED, NF_PROP_CASE.
  /// `min_cases` is the suite's floor — the env can raise but not lower it
  /// (except in single-case replay mode).
  static PropConfig from_env(std::size_t min_cases = 200) {
    PropConfig cfg;
    cfg.cases = min_cases;
    if (const char* e = std::getenv("NF_PROP_CASES")) {
      const unsigned long long v = std::strtoull(e, nullptr, 10);
      if (v > cfg.cases) cfg.cases = static_cast<std::size_t>(v);
    }
    if (const char* e = std::getenv("NF_PROP_SEED")) {
      cfg.base_seed = std::strtoull(e, nullptr, 0);
    }
    if (const char* e = std::getenv("NF_PROP_CASE")) {
      cfg.only_case = static_cast<std::size_t>(std::strtoull(e, nullptr, 10));
    }
    return cfg;
  }
};

struct PropResult {
  std::string name;
  std::size_t cases_run = 0;
  std::uint64_t base_seed = 0;
  std::optional<std::size_t> failing_case;
  std::string message;         ///< Failure message (after shrinking).
  std::string counterexample;  ///< describe() of the shrunk failing value.
  std::size_t shrink_steps = 0;

  bool ok() const { return !failing_case.has_value(); }

  std::string report() const {
    if (ok()) {
      return name + ": " + std::to_string(cases_run) + " cases OK (seed " +
             std::to_string(base_seed) + ")";
    }
    std::ostringstream os;
    os << name << ": FAILED case " << *failing_case << " after "
       << shrink_steps << " shrink steps\n  " << message;
    if (!counterexample.empty()) {
      os << "\n  counterexample: " << counterexample;
    }
    os << "\n  replay: NF_PROP_SEED=" << base_seed
       << " NF_PROP_CASE=" << *failing_case;
    return os.str();
  }
};

/// No-shrink placeholder.
template <typename T>
inline std::vector<T> no_shrink(const T&) {
  return {};
}

namespace detail {

/// Run the property; return the failure message, or nullopt on pass.
template <typename T, typename PropFn>
std::optional<std::string> run_one(PropFn&& prop, const T& value) {
  try {
    prop(value);
    return std::nullopt;
  } catch (const std::exception& e) {
    return std::string(e.what());
  }
}

/// `describe(v)` if the type has one, else empty.
template <typename T>
std::string describe_value(const T& v) {
  if constexpr (requires { v.describe(); }) {
    return v.describe();
  } else {
    (void)v;
    return {};
  }
}

}  // namespace detail

/// Run `prop` over `cfg.cases` generated values; on the first failure,
/// shrink greedily and return the populated PropResult (also printed to
/// stderr so the replay line survives test-framework truncation).
template <typename GenFn, typename PropFn, typename ShrinkFn>
PropResult check(const std::string& name, const PropConfig& cfg, GenFn&& gen,
                 PropFn&& prop, ShrinkFn&& shrink) {
  using T = decltype(gen(std::declval<Rng&>()));
  PropResult res;
  res.name = name;
  res.base_seed = cfg.base_seed;

  const std::size_t first = cfg.only_case.value_or(0);
  const std::size_t last = cfg.only_case ? first + 1 : cfg.cases;
  for (std::size_t i = first; i < last; ++i) {
    Rng rng = Rng::from_stream(cfg.base_seed, i);
    T value = gen(rng);
    ++res.cases_run;
    auto failure = detail::run_one<T>(prop, value);
    if (!failure) continue;

    // Greedy shrink: keep the first candidate that still fails; stop at a
    // local minimum or the try budget.
    std::size_t tries = 0;
    bool improved = true;
    while (improved && tries < cfg.max_shrink_tries) {
      improved = false;
      for (T& cand : shrink(value)) {
        if (++tries > cfg.max_shrink_tries) break;
        if (auto f = detail::run_one<T>(prop, cand)) {
          value = std::move(cand);
          failure = std::move(f);
          ++res.shrink_steps;
          improved = true;
          break;
        }
      }
    }
    res.failing_case = i;
    res.message = *failure;
    res.counterexample = detail::describe_value(value);
    std::fprintf(stderr, "[prop] %s\n", res.report().c_str());
    return res;
  }
  return res;
}

template <typename GenFn, typename PropFn>
PropResult check(const std::string& name, const PropConfig& cfg, GenFn&& gen,
                 PropFn&& prop) {
  using T = decltype(gen(std::declval<Rng&>()));
  return check(name, cfg, gen, prop, no_shrink<T>);
}

/// Seed-only variant for properties that draw everything internally (no
/// shrinkable descriptor): prop receives the case Rng directly.
template <typename PropFn>
PropResult check_seeds(const std::string& name, const PropConfig& cfg,
                       PropFn&& prop) {
  return check(
      name, cfg, [](Rng& rng) { return rng; },
      [&](const Rng& rng) {
        Rng copy = rng;
        prop(copy);
      });
}

}  // namespace nemfpga::verify
