// Reference oracles: deliberately naive reimplementations of the optimized
// CAD kernels, for differential property testing (tests/prop/). Each
// oracle trades every optimization in the production kernel — scratch
// arenas, epoch stamps, incremental trackers, cost caches, thread pools —
// for the most transparent data structure that states the same algorithm
// (hash maps, full rescans, recursion, plain serial loops). The pairs are:
//
//   reference_route_all        vs  route_all        (bit-identical)
//   ReferenceOveruse           vs  OveruseTracker   (bit-identical)
//   reference_net_cost / reference_placement_cost
//                              vs  NetCostModel     (per-net bit-identical;
//                                  tracked total tolerance-bounded)
//   reference_analyze_timing   vs  analyze_timing   (tolerance-bounded)
//   reference_programming_yield vs programming_yield (bit-identical)
//   reference_sample_population_parallel
//                              vs  sample_population_parallel (bit-identical)
//
// See DESIGN.md "Verification" for why each pairing is exact or bounded.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "device/variation.hpp"
#include "program/yield.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"

namespace nemfpga::verify {

/// Naive PathFinder: hash-map relaxation state, per-net containers
/// allocated fresh, full-rescan overuse counting and history updates.
/// Must agree bit-for-bit with route_all on trees, iterations, success,
/// overuse and wire census for any (graph, placement, options).
RoutingResult reference_route_all(const RrGraphView& g, const Placement& pl,
                                  const RouteOptions& opt = {});

/// Human-readable first difference between two routing results; empty
/// string when they agree exactly (checksum-level comparison plus field
/// diagnostics, so a prop failure names the diverging net).
std::string diff_routing(const RoutingResult& a, const RoutingResult& b);

/// From-scratch oracle for the ECO flow's touched-only packing refresh:
/// recompute every derived Packing field (BLE input lists, cluster
/// input/output net sets, net absorption) from the current netlist under
/// pack_netlist's exact derivation rules, with BLE and cluster membership
/// frozen to `base`'s — the ECO session invariant. reference_eco.cpp.
Packing reference_refresh_packing(const Netlist& nl, const Packing& base);

/// First difference between two packings (membership and derived fields);
/// empty string when identical.
std::string diff_packing(const Packing& a, const Packing& b);

/// Full-rescan occupancy/overuse bookkeeping (the classic PathFinder
/// iteration pass the incremental OveruseTracker replaces).
class ReferenceOveruse {
 public:
  explicit ReferenceOveruse(std::vector<std::uint16_t> capacities)
      : cap_(std::move(capacities)), occ_(cap_.size(), 0) {}

  void inc(std::size_t id) { ++occ_[id]; }
  void dec(std::size_t id) { --occ_[id]; }
  std::uint16_t occ(std::size_t id) const { return occ_[id]; }
  bool overused(std::size_t id) const { return occ_[id] > cap_[id]; }

  /// O(V) rescan, recomputed from scratch on every call.
  std::size_t overused_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < occ_.size(); ++i) {
      if (occ_[i] > cap_[i]) ++n;
    }
    return n;
  }

  /// Overused node ids in ascending id order (the rescan order).
  std::vector<std::size_t> overused_nodes() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < occ_.size(); ++i) {
      if (occ_[i] > cap_[i]) out.push_back(i);
    }
    return out;
  }

 private:
  std::vector<std::uint16_t> cap_;
  std::vector<std::uint16_t> occ_;
};

/// Recursive (memoized DFS) static timing analysis with map-based net
/// delay evaluation; agrees with the epoch-stamped analyze_timing within
/// tight floating-point tolerance (identical arc sums, identical maxima).
TimingResult reference_analyze_timing(const Netlist& nl, const Packing& pack,
                                      const Placement& pl, const RrGraph& g,
                                      const RoutingResult& routing,
                                      const ElectricalView& view);

/// Naive full-recompute router timing hook: the oracle twin of
/// make_incremental_sta. Every update() re-evaluates every net delay and
/// rebuilds arrival / downstream-delay arrays by memoized recursion with
/// the incremental pass's exact arc expressions, so criticality(),
/// critical_path() and worst_slack() must agree with the production hook
/// *bitwise* after any update sequence (incremental full-recompute
/// equivalence — pinned by tests/prop/prop_sta_incremental.cpp). Also
/// stateful; hand each router under differential test its own instance.
std::unique_ptr<RouterTimingHook> make_reference_sta(
    const Netlist& nl, const Packing& pack, const Placement& pl,
    const RrGraphView& g, const ElectricalView& view, double criticality_exp,
    double max_criticality);

/// Full-rescan bounding box of one placed net (driver plus sinks).
struct ReferenceNetBox {
  std::size_t x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
};
ReferenceNetBox reference_net_box(const PlacedNet& n,
                                  const std::vector<BlockLoc>& locs);

/// Full-rescan cost of one placed net: weight * q(pins) * semiperimeter,
/// the exact expression NetCostModel derives incrementally. Bit-identical
/// per net by construction (both read only the final integer box).
double reference_net_cost(const PlacedNet& n, double weight,
                          const std::vector<BlockLoc>& locs);

/// Full-rescan total placement cost under per-net weights, summed in net
/// order; NetCostModel's *tracked* total (rebuild sum plus one delta per
/// committed move) must stay within 1e-9 relative of this.
double reference_placement_cost(const std::vector<PlacedNet>& nets,
                                const std::vector<double>& weights,
                                const std::vector<BlockLoc>& locs);

/// Plain serial Monte-Carlo yield loop (no thread pool, no deferred
/// reduction); the parallel programming_yield must match it bit-for-bit
/// at any thread count.
YieldResult reference_programming_yield(const RelayDesign& nominal,
                                        const VariationSpec& spec,
                                        std::size_t rows, std::size_t cols,
                                        std::size_t trials, Rng& rng,
                                        VoltagePolicy policy);

/// Serial equivalent of sample_population_parallel (one child stream per
/// index, drawn in a plain loop).
std::vector<RelaySample> reference_sample_population_parallel(
    const RelayDesign& nominal, const VariationSpec& spec, std::size_t n,
    Rng& rng);

}  // namespace nemfpga::verify
