#include "verify/generators.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "device/nem_relay.hpp"
#include "netlist/blif.hpp"
#include "place/place_io.hpp"

namespace nemfpga::verify {

std::string DesignCase::describe() const {
  std::ostringstream os;
  os << "spec{name=" << spec.name << " luts=" << spec.n_luts
     << " in=" << spec.n_inputs << " out=" << spec.n_outputs
     << " ff=" << spec.n_latches << " loc=" << spec.locality
     << " gep=" << spec.global_edge_prob << "} arch{N=" << arch.N
     << " W=" << arch.W << " L=" << arch.L << " fc_in=" << arch.fc_in
     << " fc_out=" << arch.fc_out << "} route{iters=" << route.max_iterations
     << " astar=" << route.astar_fac << " la=" << route.astar_factor
     << " par=" << route.net_parallel
     << " impl=" << (route.rr_backend == RrBackend::kImplicit)
     << " part=" << route.partition_parallel
     << " psz=" << route.partition_size << " bb=" << route.bb_margin
     << " incr=" << route.incremental << " prune=" << route.prune_ripup
     << " td=" << route.timing_driven << " cexp=" << route.criticality_exp
     << " mcrit=" << route.max_criticality
     << "} place{seed=" << place_seed << " inner=" << place_inner_num
     << " batch=" << place_batch << " dir=" << place_directed
     << " td=" << place_timing << "}";
  return os.str();
}

DesignCase gen_design_case(Rng& rng) {
  DesignCase c;
  c.spec.name = "prop" + std::to_string(rng.next_u64());
  c.spec.n_luts = 6 + rng.uniform_int(64);
  c.spec.n_inputs = 3 + rng.uniform_int(8);
  c.spec.n_outputs = 2 + rng.uniform_int(6);
  c.spec.n_latches = rng.uniform_int(c.spec.n_luts / 4 + 1);
  c.spec.lut_inputs = 4;
  c.spec.locality = rng.uniform(0.6, 1.8);
  c.spec.global_edge_prob = rng.uniform(0.0, 0.12);

  c.arch.N = 4 + rng.uniform_int(7);          // 4..10 LUTs per cluster
  c.arch.K = 4;
  c.arch.L = 1 + rng.uniform_int(4);          // segment length 1..4
  c.arch.W = 6 + 2 * rng.uniform_int(5);      // 6..14 tracks (congested)
  c.arch.fc_in = rng.uniform(0.15, 0.5);
  c.arch.fc_out = rng.uniform(0.1, 0.4);

  c.route.max_iterations = 40;
  c.route.astar_fac = 1.0 + 0.1 * rng.uniform_int(4);  // 1.0..1.3
  // Lookahead weight: off (legacy Manhattan) a third of the time, else
  // admissible-to-mildly-weighted — the range run_fuzz.sh sweeps too.
  c.route.astar_factor =
      rng.chance(0.33) ? 0.0 : 0.9 + 0.1 * rng.uniform_int(4);  // 0.9..1.2
  c.route.net_parallel = rng.chance(0.5);
  // Backend choice is correctness-neutral by construction (node ids and
  // edge order are identical), so the differential props drive it often.
  // NF_PROP_IMPLICIT=1 pins every case to the implicit backend (the
  // fuzz campaign's --implicit flag).
  const bool force_impl =
      std::getenv("NF_PROP_IMPLICIT") != nullptr &&
      std::getenv("NF_PROP_IMPLICIT")[0] == '1';
  c.route.rr_backend = force_impl || rng.chance(0.5)
                           ? RrBackend::kImplicit
                           : RrBackend::kExplicit;
  // Region-partitioned scheduler (only consulted when net_parallel):
  // exercised with both the geometry-derived default region size and
  // deliberately tiny explicit ones (many boundary nets).
  c.route.partition_parallel = rng.chance(0.4);
  c.route.partition_size = rng.chance(0.5) ? 0 : 3 + rng.uniform_int(6);
  c.route.bb_margin = 1 + rng.uniform_int(4);
  c.route.incremental = rng.chance(0.8);
  c.route.prune_ripup = rng.chance(0.25);
  // Timing-driven blend: off most of the time (the congestion-only
  // contract keeps its coverage), else random criticality shaping. The
  // property harness constructs the hooks (one per router — they are
  // stateful) from the built design; timing_hook stays null here.
  c.route.timing_driven = rng.chance(0.35);
  c.route.criticality_exp = 1.0 + 0.5 * rng.uniform_int(5);  // 1.0..3.0
  c.route.max_criticality = rng.chance(0.5) ? 0.99 : 0.999;

  c.place_seed = 1 + rng.uniform_int(1 << 20);
  c.place_inner_num = 0.1;
  // Placer disciplines: half the cases keep the seed-identical serial
  // annealer; the rest run speculative batches (deterministic at any
  // thread count) and sometimes the directed generators / the
  // criticality-weighted second anneal.
  c.place_batch = rng.chance(0.5) ? 0 : 2 + rng.uniform_int(31);  // 2..32
  c.place_directed = rng.chance(0.35);
  c.place_timing = rng.chance(0.3);
  return c;
}

std::vector<DesignCase> shrink_design_case(const DesignCase& c) {
  std::vector<DesignCase> out;
  auto push = [&](auto&& mutate) {
    DesignCase s = c;
    mutate(s);
    out.push_back(std::move(s));
  };
  if (c.spec.n_luts > 6) {
    push([&](DesignCase& s) {
      s.spec.n_luts = std::max<std::size_t>(6, c.spec.n_luts / 2);
      s.spec.n_latches = std::min(s.spec.n_latches, s.spec.n_luts / 4);
    });
    push([&](DesignCase& s) {
      s.spec.n_luts = c.spec.n_luts - 1;
      s.spec.n_latches = std::min(s.spec.n_latches, s.spec.n_luts / 4);
    });
  }
  if (c.spec.n_latches > 0) {
    push([&](DesignCase& s) { s.spec.n_latches = 0; });
  }
  if (c.spec.n_inputs > 3) {
    push([&](DesignCase& s) { s.spec.n_inputs = c.spec.n_inputs - 1; });
  }
  if (c.spec.n_outputs > 2) {
    push([&](DesignCase& s) { s.spec.n_outputs = c.spec.n_outputs - 1; });
  }
  if (c.arch.W > 6) {
    push([&](DesignCase& s) { s.arch.W = c.arch.W - 2; });
  }
  if (c.route.prune_ripup) {
    push([&](DesignCase& s) { s.route.prune_ripup = false; });
  }
  if (!c.route.incremental) {
    push([&](DesignCase& s) { s.route.incremental = true; });
  }
  // Shrink toward the congestion-only router first: a reproducer that
  // survives timing_driven=false exonerates the whole timing layer.
  if (c.route.timing_driven) {
    push([&](DesignCase& s) { s.route.timing_driven = false; });
  }
  if (c.route.criticality_exp != 1.0) {
    push([&](DesignCase& s) { s.route.criticality_exp = 1.0; });
  }
  // Shrink toward the legacy serial router: fewer moving parts in the
  // reproducer when the A* table or the batch scheduler is not at fault.
  if (c.route.astar_factor != 0.0) {
    push([&](DesignCase& s) { s.route.astar_factor = 0.0; });
  }
  // Shrink toward the stored-adjacency backend and the batched
  // scheduler: a reproducer that survives either switch localizes the
  // fault outside the implicit graph / partition router.
  if (c.route.rr_backend == RrBackend::kImplicit) {
    push([&](DesignCase& s) { s.route.rr_backend = RrBackend::kExplicit; });
  }
  if (c.route.partition_parallel) {
    push([&](DesignCase& s) { s.route.partition_parallel = false; });
  }
  if (c.route.partition_size != 0) {
    push([&](DesignCase& s) { s.route.partition_size = 0; });
  }
  if (c.route.net_parallel) {
    push([&](DesignCase& s) { s.route.net_parallel = false; });
  }
  // Shrink the placer toward the seed-identical serial uniform annealer:
  // a reproducer that survives these switches exonerates the batch
  // scheduler / directed generators / timing anneal respectively.
  if (c.place_batch != 0) {
    push([&](DesignCase& s) { s.place_batch = 0; });
  }
  if (c.place_directed) {
    push([&](DesignCase& s) { s.place_directed = false; });
  }
  if (c.place_timing) {
    push([&](DesignCase& s) { s.place_timing = false; });
  }
  return out;
}

BuiltDesign build_design(const DesignCase& c) {
  BuiltDesign d;
  d.arch = c.arch;
  d.nl = generate_netlist(c.spec);
  d.pk = pack_netlist(d.nl, d.arch);
  const auto [nx, ny] =
      grid_size_for(d.arch, d.pk.clusters.size(), d.pk.io_block_count());
  d.nx = nx;
  d.ny = ny;
  PlaceOptions popt;
  popt.seed = c.place_seed;
  popt.inner_num = c.place_inner_num;
  popt.batch_moves = c.place_batch;
  popt.directed_moves = c.place_directed;
  popt.timing_driven = c.place_timing;
  d.pl = place(d.nl, d.pk, d.arch, nx, ny, popt);
  return d;
}

RelayDesign gen_relay_design(Rng& rng) {
  RelayDesign d = fabricated_relay();
  auto& g = d.geometry;
  g.length *= rng.uniform(0.8, 1.25);
  g.thickness *= rng.uniform(0.8, 1.25);
  g.gap *= rng.uniform(0.8, 1.25);
  g.gap_min = std::clamp(g.gap_min * rng.uniform(0.7, 1.4), 0.05 * g.gap,
                         0.95 * g.gap);
  d.adhesion_force *= rng.uniform(0.0, 2.0);
  return d;
}

VariationSpec gen_variation_spec(Rng& rng) {
  const VariationSpec fab = fabricated_variation();
  VariationSpec s;
  const double scale = rng.uniform(0.0, 2.0);
  s.sigma_length_rel = fab.sigma_length_rel * scale;
  s.sigma_thickness_rel = fab.sigma_thickness_rel * scale;
  s.sigma_gap_rel = fab.sigma_gap_rel * scale;
  s.sigma_gap_min_rel = fab.sigma_gap_min_rel * scale;
  s.sigma_adhesion_rel = fab.sigma_adhesion_rel * scale;
  return s;
}

CrossbarPattern gen_pattern(Rng& rng, std::size_t rows, std::size_t cols,
                            double p_fill) {
  CrossbarPattern p(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      p.set(r, c, rng.chance(p_fill));
    }
  }
  return p;
}

std::string gen_blif_text(Rng& rng) {
  SynthSpec spec;
  spec.name = "fuzz" + std::to_string(rng.next_u64());
  spec.n_luts = 3 + rng.uniform_int(20);
  spec.n_inputs = 2 + rng.uniform_int(5);
  spec.n_outputs = 1 + rng.uniform_int(4);
  spec.n_latches = rng.uniform_int(spec.n_luts / 3 + 1);
  spec.lut_inputs = 4;
  return write_blif_string(generate_netlist(spec));
}

std::string gen_placement_text(Rng& rng, std::size_t& blocks_out) {
  Placement pl;
  pl.nx = 2 + rng.uniform_int(6);
  pl.ny = 2 + rng.uniform_int(6);
  const std::size_t n = 1 + rng.uniform_int(24);
  pl.locs.resize(n);
  for (auto& l : pl.locs) {
    l.x = rng.uniform_int(pl.nx + 2);
    l.y = rng.uniform_int(pl.ny + 2);
    l.sub = rng.uniform_int(8);
  }
  blocks_out = n;
  return write_placement_string(pl);
}

}  // namespace nemfpga::verify
