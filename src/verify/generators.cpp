#include "verify/generators.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "device/nem_relay.hpp"
#include "netlist/blif.hpp"
#include "place/place_io.hpp"

namespace nemfpga::verify {

std::string DesignCase::describe() const {
  std::ostringstream os;
  os << "spec{name=" << spec.name << " luts=" << spec.n_luts
     << " in=" << spec.n_inputs << " out=" << spec.n_outputs
     << " ff=" << spec.n_latches << " loc=" << spec.locality
     << " gep=" << spec.global_edge_prob << "} arch{N=" << arch.N
     << " W=" << arch.W << " L=" << arch.L << " fc_in=" << arch.fc_in
     << " fc_out=" << arch.fc_out
     << " sb=" << sb_pattern_name(arch.sb_pattern);
  if (arch.sb_pattern == SbPattern::kCustom) {
    os << " sbrot=" << arch.sb_custom_rot;
  }
  os << "} route{iters=" << route.max_iterations
     << " astar=" << route.astar_fac << " la=" << route.astar_factor
     << " par=" << route.net_parallel
     << " impl=" << (route.rr_backend == RrBackend::kImplicit)
     << " part=" << route.partition_parallel
     << " psz=" << route.partition_size << " bb=" << route.bb_margin
     << " incr=" << route.incremental << " prune=" << route.prune_ripup
     << " td=" << route.timing_driven << " cexp=" << route.criticality_exp
     << " mcrit=" << route.max_criticality
     << "} place{seed=" << place_seed << " inner=" << place_inner_num
     << " batch=" << place_batch << " dir=" << place_directed
     << " td=" << place_timing << "}";
  return os.str();
}

DesignCase gen_design_case(Rng& rng) {
  DesignCase c;
  c.spec.name = "prop" + std::to_string(rng.next_u64());
  c.spec.n_luts = 6 + rng.uniform_int(64);
  c.spec.n_inputs = 3 + rng.uniform_int(8);
  c.spec.n_outputs = 2 + rng.uniform_int(6);
  c.spec.n_latches = rng.uniform_int(c.spec.n_luts / 4 + 1);
  c.spec.lut_inputs = 4;
  c.spec.locality = rng.uniform(0.6, 1.8);
  c.spec.global_edge_prob = rng.uniform(0.0, 0.12);

  c.arch.N = 4 + rng.uniform_int(7);          // 4..10 LUTs per cluster
  c.arch.K = 4;
  c.arch.L = 1 + rng.uniform_int(4);          // segment length 1..4
  c.arch.W = 6 + 2 * rng.uniform_int(5);      // 6..14 tracks (congested)
  c.arch.fc_in = rng.uniform(0.15, 0.5);
  c.arch.fc_out = rng.uniform(0.1, 0.4);
  // Switch-block pattern: Wilton-weighted (the paper's default keeps the
  // most coverage), the rest split across the parameterized patterns so
  // every differential campaign also audits the pattern machinery. A
  // custom rotation draws 0..W+1 to hit the degenerate (r=0) and
  // modulo-folded (r>=W) corners.
  if (!rng.chance(0.55)) {
    switch (rng.uniform_int(3)) {
      case 0: c.arch.sb_pattern = SbPattern::kSubset; break;
      case 1: c.arch.sb_pattern = SbPattern::kUniversal; break;
      default:
        c.arch.sb_pattern = SbPattern::kCustom;
        c.arch.sb_custom_rot = rng.uniform_int(c.arch.W + 2);
        break;
    }
  }

  c.route.max_iterations = 40;
  c.route.astar_fac = 1.0 + 0.1 * rng.uniform_int(4);  // 1.0..1.3
  // Lookahead weight: off (legacy Manhattan) a third of the time, else
  // admissible-to-mildly-weighted — the range run_fuzz.sh sweeps too.
  c.route.astar_factor =
      rng.chance(0.33) ? 0.0 : 0.9 + 0.1 * rng.uniform_int(4);  // 0.9..1.2
  c.route.net_parallel = rng.chance(0.5);
  // Backend choice is correctness-neutral by construction (node ids and
  // edge order are identical), so the differential props drive it often.
  // NF_PROP_IMPLICIT=1 pins every case to the implicit backend (the
  // fuzz campaign's --implicit flag).
  const bool force_impl =
      std::getenv("NF_PROP_IMPLICIT") != nullptr &&
      std::getenv("NF_PROP_IMPLICIT")[0] == '1';
  c.route.rr_backend = force_impl || rng.chance(0.5)
                           ? RrBackend::kImplicit
                           : RrBackend::kExplicit;
  // Region-partitioned scheduler (only consulted when net_parallel):
  // exercised with both the geometry-derived default region size and
  // deliberately tiny explicit ones (many boundary nets).
  c.route.partition_parallel = rng.chance(0.4);
  c.route.partition_size = rng.chance(0.5) ? 0 : 3 + rng.uniform_int(6);
  c.route.bb_margin = 1 + rng.uniform_int(4);
  c.route.incremental = rng.chance(0.8);
  c.route.prune_ripup = rng.chance(0.25);
  // Timing-driven blend: off most of the time (the congestion-only
  // contract keeps its coverage), else random criticality shaping. The
  // property harness constructs the hooks (one per router — they are
  // stateful) from the built design; timing_hook stays null here.
  c.route.timing_driven = rng.chance(0.35);
  c.route.criticality_exp = 1.0 + 0.5 * rng.uniform_int(5);  // 1.0..3.0
  c.route.max_criticality = rng.chance(0.5) ? 0.99 : 0.999;

  c.place_seed = 1 + rng.uniform_int(1 << 20);
  c.place_inner_num = 0.1;
  // Placer disciplines: half the cases keep the seed-identical serial
  // annealer; the rest run speculative batches (deterministic at any
  // thread count) and sometimes the directed generators / the
  // criticality-weighted second anneal.
  c.place_batch = rng.chance(0.5) ? 0 : 2 + rng.uniform_int(31);  // 2..32
  c.place_directed = rng.chance(0.35);
  c.place_timing = rng.chance(0.3);
  return c;
}

std::vector<DesignCase> shrink_design_case(const DesignCase& c) {
  std::vector<DesignCase> out;
  auto push = [&](auto&& mutate) {
    DesignCase s = c;
    mutate(s);
    out.push_back(std::move(s));
  };
  if (c.spec.n_luts > 6) {
    push([&](DesignCase& s) {
      s.spec.n_luts = std::max<std::size_t>(6, c.spec.n_luts / 2);
      s.spec.n_latches = std::min(s.spec.n_latches, s.spec.n_luts / 4);
    });
    push([&](DesignCase& s) {
      s.spec.n_luts = c.spec.n_luts - 1;
      s.spec.n_latches = std::min(s.spec.n_latches, s.spec.n_luts / 4);
    });
  }
  if (c.spec.n_latches > 0) {
    push([&](DesignCase& s) { s.spec.n_latches = 0; });
  }
  if (c.spec.n_inputs > 3) {
    push([&](DesignCase& s) { s.spec.n_inputs = c.spec.n_inputs - 1; });
  }
  if (c.spec.n_outputs > 2) {
    push([&](DesignCase& s) { s.spec.n_outputs = c.spec.n_outputs - 1; });
  }
  if (c.arch.W > 6) {
    push([&](DesignCase& s) { s.arch.W = c.arch.W - 2; });
  }
  if (c.route.prune_ripup) {
    push([&](DesignCase& s) { s.route.prune_ripup = false; });
  }
  if (!c.route.incremental) {
    push([&](DesignCase& s) { s.route.incremental = true; });
  }
  // Shrink toward the congestion-only router first: a reproducer that
  // survives timing_driven=false exonerates the whole timing layer.
  if (c.route.timing_driven) {
    push([&](DesignCase& s) { s.route.timing_driven = false; });
  }
  if (c.route.criticality_exp != 1.0) {
    push([&](DesignCase& s) { s.route.criticality_exp = 1.0; });
  }
  // Shrink toward the paper's Wilton switch block: a reproducer that
  // survives the pattern swap exonerates the parameterized sb_turn_track
  // machinery (a custom case also tries the default rotation first).
  if (c.arch.sb_pattern != SbPattern::kWilton) {
    if (c.arch.sb_pattern == SbPattern::kCustom && c.arch.sb_custom_rot != 5) {
      push([&](DesignCase& s) { s.arch.sb_custom_rot = 5; });
    }
    push([&](DesignCase& s) {
      s.arch.sb_pattern = SbPattern::kWilton;
      s.arch.sb_custom_rot = 5;
    });
  }
  // Shrink toward the legacy serial router: fewer moving parts in the
  // reproducer when the A* table or the batch scheduler is not at fault.
  if (c.route.astar_factor != 0.0) {
    push([&](DesignCase& s) { s.route.astar_factor = 0.0; });
  }
  // Shrink toward the stored-adjacency backend and the batched
  // scheduler: a reproducer that survives either switch localizes the
  // fault outside the implicit graph / partition router.
  if (c.route.rr_backend == RrBackend::kImplicit) {
    push([&](DesignCase& s) { s.route.rr_backend = RrBackend::kExplicit; });
  }
  if (c.route.partition_parallel) {
    push([&](DesignCase& s) { s.route.partition_parallel = false; });
  }
  if (c.route.partition_size != 0) {
    push([&](DesignCase& s) { s.route.partition_size = 0; });
  }
  if (c.route.net_parallel) {
    push([&](DesignCase& s) { s.route.net_parallel = false; });
  }
  // Shrink the placer toward the seed-identical serial uniform annealer:
  // a reproducer that survives these switches exonerates the batch
  // scheduler / directed generators / timing anneal respectively.
  if (c.place_batch != 0) {
    push([&](DesignCase& s) { s.place_batch = 0; });
  }
  if (c.place_directed) {
    push([&](DesignCase& s) { s.place_directed = false; });
  }
  if (c.place_timing) {
    push([&](DesignCase& s) { s.place_timing = false; });
  }
  return out;
}

BuiltDesign build_design(const DesignCase& c) {
  BuiltDesign d;
  d.arch = c.arch;
  d.nl = generate_netlist(c.spec);
  d.pk = pack_netlist(d.nl, d.arch);
  const auto [nx, ny] =
      grid_size_for(d.arch, d.pk.clusters.size(), d.pk.io_block_count());
  d.nx = nx;
  d.ny = ny;
  PlaceOptions popt;
  popt.seed = c.place_seed;
  popt.inner_num = c.place_inner_num;
  popt.batch_moves = c.place_batch;
  popt.directed_moves = c.place_directed;
  popt.timing_driven = c.place_timing;
  d.pl = place(d.nl, d.pk, d.arch, nx, ny, popt);
  return d;
}

std::string EcoCase::describe() const {
  std::ostringstream os;
  os << "eco{seed=" << edit_seed << " edits=" << n_edits << "} "
     << design.describe();
  return os.str();
}

EcoCase gen_eco_case(Rng& rng) {
  EcoCase c;
  c.design = gen_design_case(rng);
  // Generous channels and iteration budget: the ECO props want routable
  // bases (congestion fights belong to the routing props), and enough
  // headroom that most edited designs stay routable too — the
  // differential replay only bites on successful applies.
  c.design.arch.W = 14 + 2 * rng.uniform_int(6);  // 14..24 tracks
  c.design.route.max_iterations = 60;
  c.edit_seed = rng.next_u64();
  c.n_edits = 1 + rng.uniform_int(12);  // 1..12 compounding deltas
  return c;
}

std::vector<EcoCase> shrink_eco_case(const EcoCase& c) {
  std::vector<EcoCase> out;
  // Fewer edits first: the cheapest reduction, and a reproducer with one
  // delta pinpoints the faulty op directly.
  if (c.n_edits > 1) {
    EcoCase s = c;
    s.n_edits = std::max<std::size_t>(1, c.n_edits / 2);
    out.push_back(s);
    s = c;
    s.n_edits = c.n_edits - 1;
    out.push_back(s);
  }
  for (const DesignCase& d : shrink_design_case(c.design)) {
    EcoCase s = c;
    s.design = d;
    out.push_back(std::move(s));
  }
  return out;
}

NetlistDelta gen_eco_delta(Rng& rng, const Netlist& nl, const Packing& pk,
                           const ArchParams& arch, std::size_t nx,
                           std::size_t ny,
                           const std::vector<BlockLoc>& locs) {
  // Candidate pools are rebuilt per call: the netlist evolves between
  // deltas, so nothing here may be cached across the edit stream.
  std::vector<BlockId> luts;
  std::vector<BlockId> fat_luts;   // >= 2 inputs (disconnectable)
  std::vector<BlockId> slim_luts;  // < K inputs (connectable)
  std::vector<BlockId> pinned;     // retargetable: has input pins, not a
                                   // fused LUT+FF latch, not a PI
  std::vector<char> fused(nl.net_count(), 0);
  for (const Ble& b : pk.bles) {
    if (b.absorbed != kInvalidId) fused[b.absorbed] = 1;
  }
  std::vector<std::size_t> block_ble(nl.block_count(), kInvalidId);
  for (std::size_t i = 0; i < pk.bles.size(); ++i) {
    if (pk.bles[i].lut != kInvalidId) block_ble[pk.bles[i].lut] = i;
    if (pk.bles[i].latch != kInvalidId) block_ble[pk.bles[i].latch] = i;
  }
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLut) {
      luts.push_back(b);
      if (blk.inputs.size() >= 2) fat_luts.push_back(b);
      if (blk.inputs.size() < arch.K) slim_luts.push_back(b);
    }
    if (blk.type == BlockType::kInput || blk.inputs.empty()) continue;
    if (blk.type == BlockType::kLatch &&
        pk.bles[block_ble[b]].lut != kInvalidId) {
      continue;  // D pin of a fused LUT+FF BLE: rejected by the ECO flow
    }
    pinned.push_back(b);
  }
  const auto pick = [&](const std::vector<BlockId>& v) {
    return v[rng.uniform_int(v.size())];
  };
  // A net the ECO flow accepts as a connection endpoint: not absorbed
  // into a fused BLE. Falls back to a raw (possibly fused) id when the
  // dice refuse to cooperate — that op simply exercises rejection.
  const auto pick_net = [&]() -> NetId {
    for (int t = 0; t < 16; ++t) {
      const NetId n = rng.uniform_int(nl.net_count());
      if (!fused[n]) return n;
    }
    return rng.uniform_int(nl.net_count());
  };
  const auto occupied = [&](const BlockLoc& l) {
    for (const BlockLoc& o : locs) {
      if (o.x == l.x && o.y == l.y && o.sub == l.sub) return true;
    }
    return false;
  };
  const auto random_core_site = [&]() {
    return BlockLoc{1 + rng.uniform_int(nx), 1 + rng.uniform_int(ny), 0};
  };
  const auto random_border_site = [&]() {
    BlockLoc l;
    l.sub = rng.uniform_int(arch.io_per_pad);
    switch (rng.uniform_int(4)) {
      case 0: l.x = 0; l.y = 1 + rng.uniform_int(ny); break;
      case 1: l.x = nx + 1; l.y = 1 + rng.uniform_int(ny); break;
      case 2: l.y = 0; l.x = 1 + rng.uniform_int(nx); break;
      default: l.y = ny + 1; l.x = 1 + rng.uniform_int(nx); break;
    }
    return l;
  };

  NetlistDelta d;
  const std::size_t n_ops = 1 + rng.uniform_int(3);  // 1..3 ops
  for (std::size_t i = 0; i < n_ops; ++i) {
    // A deliberate minority of ops violates a precondition (bad pin,
    // occupied site, K overflow, fused net) so every replay also walks
    // the transactional-rejection path of the flow under test.
    const bool sabotage = rng.chance(0.12);
    switch (rng.uniform_int(5)) {
      case 0: {  // connect
        if (sabotage && !fat_luts.empty()) {
          // Overfill: target a LUT already at (or past) the K cap by
          // stacking connects on the same fat LUT.
          const BlockId b = pick(fat_luts);
          for (std::size_t k = nl.block(b).inputs.size(); k <= arch.K; ++k) {
            d.ops.push_back(EcoOp::connect(b, pick_net()));
          }
        } else if (!slim_luts.empty()) {
          d.ops.push_back(EcoOp::connect(pick(slim_luts), pick_net()));
        }
        break;
      }
      case 1: {  // disconnect
        if (fat_luts.empty()) break;
        const BlockId b = pick(fat_luts);
        const std::size_t fanin = nl.block(b).inputs.size();
        const std::size_t pin =
            sabotage ? fanin + rng.uniform_int(3) : rng.uniform_int(fanin);
        d.ops.push_back(EcoOp::disconnect(b, pin));
        break;
      }
      case 2: {  // retarget
        if (pinned.empty()) break;
        const BlockId b = pick(pinned);
        const std::size_t fanin = nl.block(b).inputs.size();
        const std::size_t pin =
            sabotage ? fanin + rng.uniform_int(3) : rng.uniform_int(fanin);
        d.ops.push_back(EcoOp::retarget(b, pin, pick_net()));
        break;
      }
      case 3: {  // move
        const std::size_t blk = rng.uniform_int(pk.blocks.size());
        const bool logic = blk < pk.clusters.size();
        BlockLoc dest = logic ? random_core_site() : random_border_site();
        if (!sabotage) {
          for (int t = 0; t < 8 && occupied(dest); ++t) {
            dest = logic ? random_core_site() : random_border_site();
          }
        }
        d.ops.push_back(EcoOp::move_block(blk, dest.x, dest.y, dest.sub));
        break;
      }
      default: {  // swap
        const std::size_t a = rng.uniform_int(pk.blocks.size());
        std::size_t b = rng.uniform_int(pk.blocks.size());
        if (!sabotage) {
          // Stay inside a's logic/IO category (cross-category swaps are
          // rejected); retry a few times, else fall through as-is.
          for (int t = 0; t < 8; ++t) {
            if ((a < pk.clusters.size()) == (b < pk.clusters.size())) break;
            b = rng.uniform_int(pk.blocks.size());
          }
        }
        d.ops.push_back(EcoOp::swap_blocks(a, b));
        break;
      }
    }
  }
  if (d.ops.empty() && !luts.empty()) {
    // Degenerate draw (every pool empty for the chosen kinds): fall back
    // to a guaranteed-representable op so no delta is silently empty.
    const BlockId b = pick(luts);
    d.ops.push_back(EcoOp::retarget(
        b, rng.uniform_int(nl.block(b).inputs.size()), pick_net()));
  }
  return d;
}

RelayDesign gen_relay_design(Rng& rng) {
  RelayDesign d = fabricated_relay();
  auto& g = d.geometry;
  g.length *= rng.uniform(0.8, 1.25);
  g.thickness *= rng.uniform(0.8, 1.25);
  g.gap *= rng.uniform(0.8, 1.25);
  g.gap_min = std::clamp(g.gap_min * rng.uniform(0.7, 1.4), 0.05 * g.gap,
                         0.95 * g.gap);
  d.adhesion_force *= rng.uniform(0.0, 2.0);
  return d;
}

VariationSpec gen_variation_spec(Rng& rng) {
  const VariationSpec fab = fabricated_variation();
  VariationSpec s;
  const double scale = rng.uniform(0.0, 2.0);
  s.sigma_length_rel = fab.sigma_length_rel * scale;
  s.sigma_thickness_rel = fab.sigma_thickness_rel * scale;
  s.sigma_gap_rel = fab.sigma_gap_rel * scale;
  s.sigma_gap_min_rel = fab.sigma_gap_min_rel * scale;
  s.sigma_adhesion_rel = fab.sigma_adhesion_rel * scale;
  return s;
}

CrossbarPattern gen_pattern(Rng& rng, std::size_t rows, std::size_t cols,
                            double p_fill) {
  CrossbarPattern p(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      p.set(r, c, rng.chance(p_fill));
    }
  }
  return p;
}

std::string gen_blif_text(Rng& rng) {
  SynthSpec spec;
  spec.name = "fuzz" + std::to_string(rng.next_u64());
  spec.n_luts = 3 + rng.uniform_int(20);
  spec.n_inputs = 2 + rng.uniform_int(5);
  spec.n_outputs = 1 + rng.uniform_int(4);
  spec.n_latches = rng.uniform_int(spec.n_luts / 3 + 1);
  spec.lut_inputs = 4;
  return write_blif_string(generate_netlist(spec));
}

std::string gen_placement_text(Rng& rng, std::size_t& blocks_out) {
  Placement pl;
  pl.nx = 2 + rng.uniform_int(6);
  pl.ny = 2 + rng.uniform_int(6);
  const std::size_t n = 1 + rng.uniform_int(24);
  pl.locs.resize(n);
  for (auto& l : pl.locs) {
    l.x = rng.uniform_int(pl.nx + 2);
    l.y = rng.uniform_int(pl.ny + 2);
    l.sub = rng.uniform_int(8);
  }
  blocks_out = n;
  return write_placement_string(pl);
}

}  // namespace nemfpga::verify
