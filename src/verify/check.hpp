// Runtime switch for the flow-stage invariant checkers (NF_CHECK_INVARIANTS).
//
// Every CAD stage owns cheap-to-state, expensive-to-run invariants (routing
// legality, timing-graph coverage, bitstream program->readback roundtrip,
// half-select window feasibility). They are wired into the stages themselves
// behind this switch, so that with NF_CHECK_INVARIANTS=1 every existing
// test, bench, and example doubles as a whole-flow checker run — no new
// harness needed. The switch is intentionally dependency-free (this header
// is included from every layer) and resolved once per process.
//
// Enabling:
//   * environment:  NF_CHECK_INVARIANTS=1 ./build/bench/table1_channel_width
//   * build-time:   cmake -B build -DNF_CHECK_INVARIANTS=ON   (default ON for
//     that tree; NF_CHECK_INVARIANTS=0 in the environment still disables it)
//
// Violations throw std::logic_error from the stage that detected them.
#pragma once

namespace nemfpga::verify {

/// True when invariant checking is on for this process (see file header).
/// First call reads the environment; subsequent calls are a load.
bool checks_enabled();

}  // namespace nemfpga::verify
