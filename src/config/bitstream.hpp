// Configuration compiler: from a routed design to the physical relay
// configuration and its half-select programming plan.
//
// This closes the loop between the paper's two halves. The CAD flow
// produces net -> routing-resource assignments; this module
//   (1) assigns every routed net to a *concrete* physical pin (the
//       bipartite matching the pooled-pin router defers — running it here
//       also validates that simplification on real designs),
//   (2) emits the relay on/off pattern per tile (crossbar / CB / SB), and
//   (3) schedules the half-select programming sequence and estimates
//       configuration time and energy from the device physics.
#pragma once

#include <cstdint>
#include <vector>

#include "core/flow.hpp"
#include "device/nem_relay.hpp"
#include "program/half_select.hpp"

namespace nemfpga {

/// Physical pin assignment for every routed net.
///
/// Input pins: each net-sink is matched (Kuhn's maximum bipartite matching
/// per site) to a physical pin whose Fcin tap pattern intersects ANY wire
/// of the net's routed tree at that site — arriving via a different
/// passing wire is physically just tapping elsewhere along the route.
/// Output pins: the LB output feedback network (Fig 7b) lets any output
/// pin reach the union of the per-pin start patterns, so drivers take
/// their BLE's own pin; no matching needed.
struct PinAssignment {
  /// For placed net i, sink s (parallel to Placement nets/sinks): the
  /// physical input-pin index used at the sink block's site.
  std::vector<std::vector<std::size_t>> ipin_of_sink;
  /// For net i, sink s: the wire actually tapped (may differ from the
  /// router's nominal entry wire when the matching moved the tap).
  std::vector<std::vector<RrNodeId>> tap_wire_of_sink;
  /// For placed net i: the physical output-pin index at the driver site.
  std::vector<std::size_t> opin_of_net;
  /// Sinks the matching could not place on a conflict-free pin; they are
  /// assigned a free pin and counted here — each would need one extra CB
  /// tap relay in silicon (reported as Bitstream::extra_taps).
  std::size_t conflicted_sinks = 0;
  std::size_t total_sinks = 0;

  double conflict_fraction() const {
    return total_sinks ? static_cast<double>(conflicted_sinks) /
                             static_cast<double>(total_sinks)
                       : 0.0;
  }
};

/// Assign concrete pins (see PinAssignment).
PinAssignment assign_pins(const FlowResult& flow);

/// The relay states of one tile's programmable arrays.
struct TileBitstream {
  std::size_t x = 0, y = 0;
  /// Relays pulled in, as (array row, array column) per array kind. Rows
  /// are programming word lines; columns are bit lines.
  std::vector<std::pair<std::uint16_t, std::uint16_t>> crossbar_on;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> cb_on;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> sb_on;
};

struct Bitstream {
  std::vector<TileBitstream> tiles;  ///< Only tiles with any content.
  std::size_t relays_on = 0;
  std::size_t relays_total = 0;      ///< All programmable relays on chip.
  /// Connections that needed a tap outside their pin's nominal Fcin
  /// pattern (one extra relay each; see PinAssignment::conflicted_sinks).
  std::size_t extra_taps = 0;
  PinAssignment pins;

  double utilization() const {
    return relays_total
               ? static_cast<double>(relays_on) / static_cast<double>(relays_total)
               : 0.0;
  }
};

/// Compile the routed design into per-tile relay patterns.
Bitstream generate_bitstream(const FlowResult& flow);

/// Half-select programming schedule and physical cost estimate.
struct ProgrammingPlan {
  ProgrammingVoltages voltages;   ///< From the relay population window.
  std::size_t row_steps = 0;      ///< Sequential half-select row operations.
  double step_time = 0.0;         ///< [s] per row (pull-in settle + margin).
  double total_time = 0.0;        ///< [s] full-chip configuration time.
  double line_energy = 0.0;       ///< [J] programming-line switching energy.
};

/// Plan programming of the whole fabric: all tiles program in parallel
/// (each has its own column drivers); rows within each array kind are
/// stepped sequentially. `settle_margin` multiplies the mechanical
/// pull-in delay per row step.
ProgrammingPlan plan_programming(const FlowResult& flow, const Bitstream& bs,
                                 const RelayDesign& device = scaled_relay_22nm(),
                                 double settle_margin = 10.0);

}  // namespace nemfpga
