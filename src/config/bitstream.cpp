#include "config/bitstream.hpp"

#include "arch/arch_model.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

#include "device/beam_dynamics.hpp"
#include "device/equivalent.hpp"
#include "device/variation.hpp"
#include "program/half_select.hpp"
#include "verify/check.hpp"

namespace nemfpga {
namespace {

/// Invariant hook (NF_CHECK_INVARIANTS): each tile's on-relay list must be
/// duplicate-free, and half-select programming an ideal (nominal-device)
/// crossbar of that shape with the nominal window must read back exactly
/// the tile's pattern — the program→readback roundtrip.
void check_tile_roundtrip(
    const std::vector<std::pair<std::uint16_t, std::uint16_t>>& on,
    const char* what) {
  if (on.empty()) return;
  std::size_t rows = 0, cols = 0;
  for (const auto& [r, c] : on) {
    rows = std::max<std::size_t>(rows, r + 1);
    cols = std::max<std::size_t>(cols, c + 1);
  }
  CrossbarPattern target(rows, cols);
  for (const auto& [r, c] : on) {
    if (target.at(r, c)) {
      throw std::logic_error(std::string("generate_bitstream: duplicate ") +
                             what + " relay coordinate");
    }
    target.set(r, c, true);
  }
  const RelayDesign nominal = fabricated_relay();
  PopulationEnvelope env;
  env.vpi_min = env.vpi_max = nominal.pull_in_voltage();
  env.vpo_min = env.vpo_max = nominal.pull_out_voltage();
  env.min_hysteresis = env.vpi_min - env.vpo_max;
  const auto v = solve_program_window(env);
  if (!v) {
    throw std::logic_error("generate_bitstream: no nominal program window");
  }
  RelayCrossbar xbar(rows, cols, nominal);
  const CrossbarPattern readback = program_half_select(xbar, target, *v);
  if (!(readback == target)) {
    throw std::logic_error(std::string("generate_bitstream: ") + what +
                           " roundtrip mismatch");
  }
}

/// Kuhn's augmenting-path bipartite matching: items (nets) to slots (pins).
/// `candidates[i]` lists the slots item i may take. Returns slot per item
/// (kInvalidId when unmatched).
std::vector<std::size_t> kuhn_match(
    const std::vector<std::vector<std::size_t>>& candidates,
    std::size_t n_slots) {
  std::vector<std::size_t> slot_owner(n_slots, kInvalidId);
  std::vector<std::size_t> item_slot(candidates.size(), kInvalidId);
  std::vector<char> visited(n_slots, 0);

  std::function<bool(std::size_t)> try_item = [&](std::size_t item) -> bool {
    for (std::size_t s : candidates[item]) {
      if (visited[s]) continue;
      visited[s] = 1;
      if (slot_owner[s] == kInvalidId || try_item(slot_owner[s])) {
        slot_owner[s] = item;
        item_slot[item] = s;
        return true;
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::fill(visited.begin(), visited.end(), 0);
    try_item(i);
  }
  return item_slot;
}

/// Arrival wire of each (placed net, sink site) and chosen start wires of
/// each (placed net, driver).
struct RoutedPins {
  // (net index, sink block index) -> arriving wire.
  std::map<std::pair<std::size_t, std::size_t>, RrNodeId> sink_wire;
  // net index -> wire starts driven directly from the OPIN.
  std::vector<std::vector<RrNodeId>> driver_wires;
};

RoutedPins collect_routed_pins(const FlowResult& flow) {
  const RrGraphView g = flow.graph_view();
  RoutedPins rp;
  rp.driver_wires.resize(flow.placement.nets.size());
  for (std::size_t i = 0; i < flow.placement.nets.size(); ++i) {
    const RouteTree& t = flow.routing.trees[i];
    // Map site -> arriving wire, then attach to sink blocks.
    std::unordered_map<std::size_t, RrNodeId> site_wire;
    RrNodeId opin_node = kNoRrNode;
    for (const auto& [from, to] : t.edges) {
      const RrNode& n = g.node(to);
      if (n.type == RrType::kIpin) {
        site_wire[n.y_lo * 65536u + n.x_lo] = from;
      } else if (n.type == RrType::kOpin) {
        opin_node = to;
      } else if ((n.type == RrType::kChanX || n.type == RrType::kChanY) &&
                 from == opin_node && opin_node != kNoRrNode) {
        rp.driver_wires[i].push_back(to);
      }
    }
    for (std::size_t s : flow.placement.nets[i].sinks) {
      const BlockLoc& l = flow.placement.locs[s];
      const auto it = site_wire.find(l.y * 65536u + l.x);
      if (it != site_wire.end()) {
        rp.sink_wire[{i, s}] = it->second;
      }
    }
  }
  return rp;
}

}  // namespace

PinAssignment assign_pins(const FlowResult& flow) {
  const RrGraphView g = flow.graph_view();
  const RoutedPins rp = collect_routed_pins(flow);

  PinAssignment out;
  const std::size_t n_nets = flow.placement.nets.size();
  out.ipin_of_sink.resize(n_nets);
  out.tap_wire_of_sink.resize(n_nets);
  out.opin_of_net.assign(n_nets, kInvalidId);
  for (std::size_t i = 0; i < n_nets; ++i) {
    const std::size_t n_sinks = flow.placement.nets[i].sinks.size();
    out.ipin_of_sink[i].assign(n_sinks, kInvalidId);
    out.tap_wire_of_sink[i].assign(n_sinks, kNoRrNode);
    out.total_sinks += n_sinks;
  }

  // Wires of each net's routed tree (for flexible tapping).
  std::vector<std::unordered_map<RrNodeId, char>> tree_wires(n_nets);
  for (std::size_t i = 0; i < n_nets; ++i) {
    for (const auto& [from, to] : flow.routing.trees[i].edges) {
      const RrType tt = g.node(to).type;
      if (tt == RrType::kChanX || tt == RrType::kChanY) tree_wires[i][to] = 1;
    }
  }

  // ---- Input pins: per site, match arriving nets to pins whose taps -----
  // intersect the net's tree.
  struct SinkRef {
    std::size_t net, sink_idx;
    RrNodeId nominal_wire;
  };
  std::map<std::pair<std::size_t, std::size_t>, std::vector<SinkRef>> by_site;
  for (std::size_t i = 0; i < n_nets; ++i) {
    const auto& sinks = flow.placement.nets[i].sinks;
    for (std::size_t k = 0; k < sinks.size(); ++k) {
      const BlockLoc& l = flow.placement.locs[sinks[k]];
      const auto it = rp.sink_wire.find({i, sinks[k]});
      const RrNodeId nominal =
          it == rp.sink_wire.end() ? kNoRrNode : it->second;
      by_site[{l.x, l.y}].push_back({i, k, nominal});
    }
  }
  for (const auto& [xy, refs] : by_site) {
    const auto [x, y] = xy;
    const std::size_t n_pins = g.site(x, y).pin_count_ipin;
    std::vector<std::vector<RrNodeId>> taps(n_pins);
    for (std::size_t p = 0; p < n_pins; ++p) {
      taps[p] = g.ipin_tap_wires(x, y, p);
    }
    std::vector<std::vector<std::size_t>> cand(refs.size());
    for (std::size_t r = 0; r < refs.size(); ++r) {
      const auto& wires = tree_wires[refs[r].net];
      for (std::size_t p = 0; p < n_pins; ++p) {
        for (RrNodeId w : taps[p]) {
          if (wires.contains(w)) {
            cand[r].push_back(p);
            break;
          }
        }
      }
    }
    const auto match = kuhn_match(cand, n_pins);
    std::vector<char> pin_used(n_pins, 0);
    for (std::size_t r = 0; r < refs.size(); ++r) {
      if (match[r] != kInvalidId) pin_used[match[r]] = 1;
    }
    for (std::size_t r = 0; r < refs.size(); ++r) {
      const auto& ref = refs[r];
      std::size_t pin = match[r];
      RrNodeId tap = kNoRrNode;
      if (pin != kInvalidId) {
        for (RrNodeId w : taps[pin]) {
          if (tree_wires[ref.net].contains(w)) {
            tap = w;
            break;
          }
        }
      } else {
        // Conflict: take any free pin; the connection needs one extra tap
        // relay outside that pin's nominal pattern.
        ++out.conflicted_sinks;
        for (std::size_t p = 0; p < n_pins; ++p) {
          if (!pin_used[p]) {
            pin = p;
            pin_used[p] = 1;
            break;
          }
        }
        tap = ref.nominal_wire;
      }
      out.ipin_of_sink[ref.net][ref.sink_idx] = pin;
      out.tap_wire_of_sink[ref.net][ref.sink_idx] = tap;
    }
  }

  // ---- Output pins: the LB output network reaches the union pattern, ----
  // so each net takes its driving BLE's own pin (pad sub-slot for IOs).
  // Build netlist-block -> BLE position within its cluster.
  std::unordered_map<BlockId, std::size_t> ble_position;
  for (const auto& cl : flow.packing.clusters) {
    for (std::size_t k = 0; k < cl.bles.size(); ++k) {
      const Ble& ble = flow.packing.bles[cl.bles[k]];
      if (ble.lut != kInvalidId) ble_position[ble.lut] = k;
      if (ble.latch != kInvalidId) ble_position[ble.latch] = k;
    }
  }
  const Netlist& nl = flow.netlist;
  for (std::size_t i = 0; i < n_nets; ++i) {
    const BlockId drv = nl.net(flow.placement.nets[i].net).driver;
    if (nl.block(drv).type == BlockType::kInput) {
      out.opin_of_net[i] = flow.placement.locs[flow.placement.nets[i].driver].sub;
    } else {
      out.opin_of_net[i] = ble_position.at(drv);
    }
  }
  return out;
}

Bitstream generate_bitstream(const FlowResult& flow) {
  const RrGraphView g = flow.graph_view();
  const ArchParams& arch = flow.arch;
  Bitstream bs;
  bs.pins = assign_pins(flow);
  const RoutedPins rp = collect_routed_pins(flow);
  (void)rp;

  std::map<std::pair<std::size_t, std::size_t>, TileBitstream> tiles;
  auto tile = [&](std::size_t x, std::size_t y) -> TileBitstream& {
    auto& t = tiles[{x, y}];
    t.x = x;
    t.y = y;
    return t;
  };

  // ---- Connection blocks: relay (row = tap index, col = pin). ------------
  for (std::size_t i = 0; i < flow.placement.nets.size(); ++i) {
    const auto& net = flow.placement.nets[i];
    for (std::size_t k = 0; k < net.sinks.size(); ++k) {
      const BlockLoc& l = flow.placement.locs[net.sinks[k]];
      const std::size_t pin = bs.pins.ipin_of_sink[i][k];
      const RrNodeId tap_wire = bs.pins.tap_wire_of_sink[i][k];
      if (pin == kInvalidId || tap_wire == kNoRrNode) continue;
      const auto taps = g.ipin_tap_wires(l.x, l.y, pin);
      const auto tap_it = std::find(taps.begin(), taps.end(), tap_wire);
      if (tap_it == taps.end()) {
        // Conflict fallback: a tap outside the pin's nominal pattern.
        ++bs.extra_taps;
        continue;
      }
      tile(l.x, l.y).cb_on.emplace_back(
          static_cast<std::uint16_t>(tap_it - taps.begin()),
          static_cast<std::uint16_t>(pin));
    }
  }

  // ---- Switch boxes: wire driver muxes. Row = selected input index, -----
  // col = the wire's track (unique per driver within its tile's channel).
  // Build in-edge lists for used wires once.
  std::unordered_map<RrNodeId, std::vector<RrNodeId>> wire_inputs;
  for (RrNodeId u = 0; u < g.node_count(); ++u) {
    g.for_each_edge(u, [&](const RrEdge& e) {
      const RrType tt = g.node(e.to).type;
      if ((tt == RrType::kChanX || tt == RrType::kChanY) &&
          (e.sw == RrSwitch::kWireToWire || e.sw == RrSwitch::kOpinToWire)) {
        wire_inputs[e.to].push_back(u);
      }
    });
  }
  // The bit-line column must be unique per home tile, and the bare track
  // number is not: a tile owns an X and a Y channel, and the grid-edge
  // tiles additionally own the boundary channel (index 0) folded onto
  // them by the clamp below, which runs parallel to their own channel
  // with the same track numbering. Encode both distinctions into the
  // column: [0,W) X, [W,2W) folded X, [2W,3W) Y, [3W,4W) folded Y.
  // Shared route segments may select the same wire from several nets;
  // those map to the same physical relay and are emitted once.
  std::map<std::tuple<std::size_t, std::size_t, std::uint16_t, std::uint16_t>,
           RrNodeId>
      sb_seen;
  for (std::size_t i = 0; i < flow.placement.nets.size(); ++i) {
    for (const auto& [from, to] : flow.routing.trees[i].edges) {
      const RrNode& n = g.node(to);
      if (n.type != RrType::kChanX && n.type != RrType::kChanY) continue;
      const auto& ins = wire_inputs[to];
      const auto it = std::find(ins.begin(), ins.end(), from);
      if (it == ins.end()) {
        throw std::logic_error("generate_bitstream: mux input lookup failed");
      }
      // Home tile of the wire's driver = its start position, clamped into
      // the logic grid.
      const std::size_t sx = std::clamp<std::size_t>(
          n.increasing ? n.x_lo : n.x_hi, 1, flow.placement.nx);
      const std::size_t sy = std::clamp<std::size_t>(
          n.increasing ? n.y_lo : n.y_hi, 1, flow.placement.ny);
      const auto row = static_cast<std::uint16_t>(it - ins.begin());
      const bool chany = n.type == RrType::kChanY;
      const std::size_t chan = chany ? n.x_lo : n.y_lo;
      const auto col = static_cast<std::uint16_t>(
          n.track + arch.W * ((chan == 0 ? 1u : 0u) + (chany ? 2u : 0u)));
      const auto [seen, inserted] =
          sb_seen.try_emplace({sx, sy, row, col}, to);
      if (!inserted) {
        if (seen->second != to) {
          throw std::logic_error(
              "generate_bitstream: two wires map to one switch-box relay");
        }
        continue;  // same wire re-selected by another net's shared path
      }
      tile(sx, sy).sb_on.emplace_back(row, col);
    }
  }

  // ---- LB crossbars: relay (row = source index, col = BLE input slot). --
  // Sources: cluster input pins [0, I) then BLE feedback outputs [I, I+N).
  // Build per-site net -> input pin map first.
  std::map<std::pair<std::size_t, std::size_t>,
           std::unordered_map<NetId, std::size_t>>
      site_net_pin;
  for (std::size_t i = 0; i < flow.placement.nets.size(); ++i) {
    const auto& net = flow.placement.nets[i];
    for (std::size_t k = 0; k < net.sinks.size(); ++k) {
      const BlockLoc& l = flow.placement.locs[net.sinks[k]];
      site_net_pin[{l.x, l.y}][net.net] = bs.pins.ipin_of_sink[i][k];
    }
  }
  const Netlist& nl = flow.netlist;
  for (std::size_t c = 0; c < flow.packing.clusters.size(); ++c) {
    const Cluster& cl = flow.packing.clusters[c];
    const BlockLoc& l = flow.placement.locs[c];  // cluster == block index c
    // BLE output net -> feedback source index.
    std::unordered_map<NetId, std::size_t> feedback;
    for (std::size_t k = 0; k < cl.bles.size(); ++k) {
      feedback[flow.packing.bles[cl.bles[k]].output] =
          arch.lb_inputs() + k;
    }
    const auto& pin_map = site_net_pin[{l.x, l.y}];
    for (std::size_t k = 0; k < cl.bles.size(); ++k) {
      const Ble& ble = flow.packing.bles[cl.bles[k]];
      for (std::size_t m = 0; m < ble.inputs.size(); ++m) {
        const NetId in = ble.inputs[m];
        std::size_t source;
        if (const auto fb = feedback.find(in); fb != feedback.end()) {
          source = fb->second;
        } else if (const auto ip = pin_map.find(in); ip != pin_map.end()) {
          source = ip->second;
        } else {
          // Absorbed intra-BLE net (LUT->FF) or a cluster-internal net
          // that reaches this BLE purely through feedback — or, for a
          // driver-resident sink, the net originates here.
          const auto fb2 = feedback.find(in);
          if (fb2 == feedback.end()) {
            throw std::logic_error(
                "generate_bitstream: unmapped BLE input " + nl.net(in).name);
          }
          source = fb2->second;
        }
        tile(l.x, l.y).crossbar_on.emplace_back(
            static_cast<std::uint16_t>(source),
            static_cast<std::uint16_t>(k * arch.K + m));
      }
    }
  }

  for (auto& [xy, t] : tiles) {
    if (verify::checks_enabled()) {
      check_tile_roundtrip(t.crossbar_on, "crossbar");
      check_tile_roundtrip(t.cb_on, "connection-block");
      check_tile_roundtrip(t.sb_on, "switch-box");
    }
    bs.relays_on += t.crossbar_on.size() + t.cb_on.size() + t.sb_on.size();
    bs.tiles.push_back(std::move(t));
  }
  const auto comp = tile_composition(arch);
  bs.relays_total = flow.placement.nx * flow.placement.ny *
                    comp.total_routing_switches();
  return bs;
}

ProgrammingPlan plan_programming(const FlowResult& flow, const Bitstream& bs,
                                 const RelayDesign& device,
                                 double settle_margin) {
  (void)bs;
  ProgrammingPlan plan;
  PopulationEnvelope env;
  env.vpi_min = env.vpi_max = device.pull_in_voltage();
  env.vpo_min = env.vpo_max = device.pull_out_voltage();
  env.min_hysteresis = env.vpi_min - env.vpo_max;
  const auto v = solve_program_window(env);
  if (!v) throw std::runtime_error("plan_programming: no voltage window");
  plan.voltages = *v;

  // Rows stepped sequentially; all tiles' arrays program in parallel.
  const ArchParams& arch = flow.arch;
  const std::size_t xbar_rows = arch.lb_inputs() + arch.N;
  const std::size_t cb_rows = arch.fc_in_tracks();
  const std::size_t sb_rows =
      arch.fs + static_cast<std::size_t>(
                    static_cast<double>(arch.N) * arch.fc_out *
                        static_cast<double>(arch.L) +
                    0.5);
  plan.row_steps = xbar_rows + cb_rows + sb_rows;

  // Mechanical settle per row: pull-in at full select overdrive.
  const auto ev = simulate_pull_in(
      device, plan.voltages.vhold + 2.0 * plan.voltages.vselect, 1e-4);
  const double t_pull_in = ev.switched ? ev.delay : 1e-6;
  plan.step_time = settle_margin * t_pull_in;
  plan.total_time = static_cast<double>(plan.row_steps) * plan.step_time;

  // Row/column line energy: each step swings one row line per tile plus
  // the column lines; line capacitance ~ relays on the line times the
  // relay gate capacitance (use the on-state value as the bound) plus
  // metal.
  const auto eq = equivalent_circuit(device);
  const double n_tiles =
      static_cast<double>(flow.placement.nx * flow.placement.ny);
  const auto comp = tile_composition(arch);
  const double relays_per_tile =
      static_cast<double>(comp.total_routing_switches());
  const double c_lines_per_tile = relays_per_tile * 2.0 * eq.con + 50e-15;
  const double v_swing = plan.voltages.vhold + plan.voltages.vselect;
  plan.line_energy = n_tiles * c_lines_per_tile * v_swing * v_swing *
                     static_cast<double>(plan.row_steps);
  return plan;
}

}  // namespace nemfpga
