#include "pack/pack.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace nemfpga {
namespace {

/// Form BLEs: pair each latch with its driving LUT when the LUT output
/// feeds only that latch; everything else stands alone.
std::vector<Ble> form_bles(const Netlist& nl) {
  std::vector<Ble> bles;
  std::vector<bool> latch_taken(nl.block_count(), false);

  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type != BlockType::kLut) continue;
    Ble ble;
    ble.lut = b;
    ble.inputs = blk.inputs;
    ble.output = blk.output;
    const Net& out = nl.net(blk.output);
    if (out.sinks.size() == 1) {
      const Block& sink = nl.block(out.sinks[0]);
      if (sink.type == BlockType::kLatch) {
        ble.latch = out.sinks[0];
        ble.absorbed = blk.output;
        ble.output = sink.output;  // BLE output is Q
        latch_taken[out.sinks[0]] = true;
      }
    }
    bles.push_back(std::move(ble));
  }
  // Standalone latches (D driven by a PI or a multi-fanout LUT output).
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type != BlockType::kLatch || latch_taken[b]) continue;
    Ble ble;
    ble.latch = b;
    ble.inputs = blk.inputs;
    ble.output = blk.output;
    bles.push_back(std::move(ble));
  }
  return bles;
}

}  // namespace

Packing pack_netlist(const Netlist& nl, const ArchParams& arch) {
  nl.validate();
  if (nl.max_lut_inputs() > arch.K) {
    throw std::invalid_argument("pack_netlist: LUT wider than K");
  }
  Packing p;
  p.bles = form_bles(nl);
  const std::size_t n_bles = p.bles.size();
  const std::size_t cap_n = arch.N;
  const std::size_t cap_i = arch.lb_inputs();

  // net -> BLEs that consume it / BLE that drives it.
  std::vector<std::vector<std::size_t>> net_users(nl.net_count());
  std::vector<std::size_t> net_driver_ble(nl.net_count(), kInvalidId);
  for (std::size_t i = 0; i < n_bles; ++i) {
    for (NetId n : p.bles[i].inputs) net_users[n].push_back(i);
    net_driver_ble[p.bles[i].output] = i;
  }

  std::vector<bool> clustered(n_bles, false);
  std::vector<std::size_t> ble_cluster(n_bles, kInvalidId);

  // Greedy VPack loop.
  std::size_t placed = 0;
  std::size_t seed_scan = 0;
  while (placed < n_bles) {
    // Seed: next unclustered BLE with the most inputs (scan order breaks
    // ties deterministically; inputs-heavy seeds pack better [Betz 99]).
    std::size_t seed = kInvalidId;
    std::size_t best_in = 0;
    for (std::size_t i = seed_scan; i < n_bles; ++i) {
      if (clustered[i]) continue;
      if (seed == kInvalidId || p.bles[i].inputs.size() > best_in) {
        seed = i;
        best_in = p.bles[i].inputs.size();
      }
    }
    while (seed_scan < n_bles && clustered[seed_scan]) ++seed_scan;

    Cluster cl;
    std::unordered_set<NetId> cl_inputs;   // nets needed from outside
    std::unordered_set<NetId> cl_outputs;  // nets driven inside
    auto would_be_inputs = [&](const Ble& ble) {
      // Inputs the cluster would need if this BLE joined.
      std::size_t added = 0;
      for (NetId n : ble.inputs) {
        if (!cl_inputs.contains(n) && !cl_outputs.contains(n)) ++added;
      }
      // The BLE's output may satisfy existing cluster inputs (feedback).
      std::size_t satisfied = cl_inputs.contains(ble.output) ? 1 : 0;
      return cl_inputs.size() + added - satisfied;
    };
    auto attraction = [&](const Ble& ble) {
      double a = 0.0;
      for (NetId n : ble.inputs) {
        if (cl_outputs.contains(n) || cl_inputs.contains(n)) a += 1.0;
      }
      if (cl_inputs.contains(ble.output)) a += 2.0;  // absorbs a net
      return a;
    };
    auto absorb = [&](std::size_t idx) {
      const Ble& ble = p.bles[idx];
      cl.bles.push_back(idx);
      clustered[idx] = true;
      ++placed;
      cl_outputs.insert(ble.output);
      cl_inputs.erase(ble.output);
      for (NetId n : ble.inputs) {
        if (!cl_outputs.contains(n)) cl_inputs.insert(n);
      }
    };
    absorb(seed);

    while (cl.bles.size() < cap_n) {
      // Candidates: unclustered BLEs adjacent to the cluster's nets.
      std::size_t best = kInvalidId;
      double best_attr = -1.0;
      auto consider = [&](std::size_t cand) {
        if (clustered[cand]) return;
        if (would_be_inputs(p.bles[cand]) > cap_i) return;
        const double a = attraction(p.bles[cand]);
        if (a > best_attr) {
          best_attr = a;
          best = cand;
        }
      };
      for (NetId n : cl_outputs) {
        for (std::size_t u : net_users[n]) consider(u);
      }
      for (NetId n : cl_inputs) {
        if (net_driver_ble[n] != kInvalidId) consider(net_driver_ble[n]);
        for (std::size_t u : net_users[n]) consider(u);
      }
      if (best == kInvalidId) {
        // No connected candidate fits: fill the cluster with an unrelated
        // BLE that costs the fewest new inputs (VPack's hill-climb fill).
        // Unrelated fills stop short of the input limit — packing every
        // cluster to exactly I distinct inputs would demand a perfect
        // net-to-pin matching at every connection block and make the
        // design needlessly hard to route.
        const std::size_t fill_cap = cap_i > 4 ? cap_i - 4 : cap_i;
        std::size_t best_cost = fill_cap + 1;
        std::size_t scanned = 0;
        for (std::size_t cand = seed_scan; cand < n_bles && scanned < 2000;
             ++cand) {
          if (clustered[cand]) continue;
          ++scanned;
          const std::size_t cost = would_be_inputs(p.bles[cand]);
          if (cost <= fill_cap && cost < best_cost) {
            best_cost = cost;
            best = cand;
            if (cost <= cl_inputs.size() + 1) break;  // can't do better
          }
        }
        if (best == kInvalidId) break;  // cluster genuinely full
      }
      absorb(best);
    }

    cl.input_nets.assign(cl_inputs.begin(), cl_inputs.end());
    std::sort(cl.input_nets.begin(), cl.input_nets.end());
    const std::size_t cluster_idx = p.clusters.size();
    for (std::size_t idx : cl.bles) ble_cluster[idx] = cluster_idx;
    p.clusters.push_back(std::move(cl));
  }

  // Output nets: driven inside, used outside (or by a PO). Map each
  // LUT/latch block to its BLE first.
  std::vector<std::size_t> block_ble(nl.block_count(), kInvalidId);
  for (std::size_t i = 0; i < n_bles; ++i) {
    if (p.bles[i].lut != kInvalidId) block_ble[p.bles[i].lut] = i;
    if (p.bles[i].latch != kInvalidId) block_ble[p.bles[i].latch] = i;
  }
  p.net_absorbed.assign(nl.net_count(), false);
  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    Cluster& cl = p.clusters[c];
    cl.output_nets.clear();
    for (std::size_t idx : cl.bles) {
      const NetId out = p.bles[idx].output;
      bool used_outside = false;
      for (BlockId sink : nl.net(out).sinks) {
        const Block& sb = nl.block(sink);
        if (sb.type == BlockType::kOutput) {
          used_outside = true;
        } else {
          const std::size_t sble = block_ble[sink];
          if (sble == kInvalidId || ble_cluster[sble] != c) used_outside = true;
        }
        if (used_outside) break;
      }
      if (used_outside) {
        cl.output_nets.push_back(out);
      } else {
        p.net_absorbed[out] = true;
      }
    }
    std::sort(cl.output_nets.begin(), cl.output_nets.end());
  }
  // Nets absorbed inside BLEs (LUT->FF links).
  for (const Ble& ble : p.bles) {
    if (ble.absorbed != kInvalidId) p.net_absorbed[ble.absorbed] = true;
  }

  // Placeable blocks: clusters first, then IO pads.
  p.blocks.reserve(p.clusters.size() + nl.input_count() + nl.output_count());
  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    p.blocks.push_back({PackedType::kLogic, c, kInvalidId});
  }
  p.block_owner.assign(nl.block_count(), kInvalidId);
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kInput) {
      p.blocks.push_back({PackedType::kInputPad, kInvalidId, b});
      p.block_owner[b] = p.blocks.size() - 1;
    } else if (blk.type == BlockType::kOutput) {
      p.blocks.push_back({PackedType::kOutputPad, kInvalidId, b});
      p.block_owner[b] = p.blocks.size() - 1;
    }
  }
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLut || blk.type == BlockType::kLatch) {
      p.block_owner[b] = ble_cluster[block_ble[b]];
    }
  }
  return p;
}

void check_packing(const Netlist& nl, const ArchParams& arch,
                   const Packing& p) {
  std::vector<int> seen(nl.block_count(), 0);
  for (const Ble& ble : p.bles) {
    if (ble.lut != kInvalidId) ++seen[ble.lut];
    if (ble.latch != kInvalidId) ++seen[ble.latch];
  }
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const auto t = nl.block(b).type;
    const int want = (t == BlockType::kLut || t == BlockType::kLatch) ? 1 : 0;
    if (seen[b] != want) {
      throw std::logic_error("check_packing: block BLE coverage wrong");
    }
  }
  std::vector<int> ble_seen(p.bles.size(), 0);
  for (const Cluster& cl : p.clusters) {
    if (cl.bles.empty() || cl.bles.size() > arch.N) {
      throw std::logic_error("check_packing: cluster size out of range");
    }
    if (cl.input_nets.size() > arch.lb_inputs()) {
      throw std::logic_error("check_packing: cluster inputs exceed I");
    }
    for (std::size_t idx : cl.bles) ++ble_seen[idx];
  }
  for (int s : ble_seen) {
    if (s != 1) throw std::logic_error("check_packing: BLE cluster coverage");
  }
}

}  // namespace nemfpga
