// VPack-style packing: group LUTs and flip-flops into Basic Logic Elements
// (BLEs — a LUT optionally paired with the FF it feeds, Fig 7b), then
// greedily cluster BLEs into N-LUT logic blocks maximizing net sharing
// subject to the cluster input limit I. IO blocks map one PI/PO each and
// are placed on perimeter pad sites.
#pragma once

#include <vector>

#include "arch/params.hpp"
#include "netlist/netlist.hpp"

namespace nemfpga {

/// One BLE: LUT and/or latch with a single output net.
struct Ble {
  BlockId lut = kInvalidId;
  BlockId latch = kInvalidId;
  NetId output = kInvalidId;
  std::vector<NetId> inputs;
  /// The LUT->FF net absorbed inside the BLE (kInvalidId if none).
  NetId absorbed = kInvalidId;
};

/// One packed logic block (cluster of BLEs).
struct Cluster {
  std::vector<std::size_t> bles;  ///< Indices into Packing::bles.
  std::vector<NetId> input_nets;  ///< Nets entering from outside.
  std::vector<NetId> output_nets; ///< Nets driven here and used outside.
};

/// A packable/placeable unit: a logic cluster or one IO block.
enum class PackedType { kLogic, kInputPad, kOutputPad };

struct PackedBlock {
  PackedType type = PackedType::kLogic;
  std::size_t cluster = kInvalidId;  ///< For kLogic.
  BlockId io_block = kInvalidId;     ///< For pads: the netlist PI/PO block.
};

struct Packing {
  std::vector<Ble> bles;
  std::vector<Cluster> clusters;
  std::vector<PackedBlock> blocks;  ///< All placeable blocks (logic + IO).
  /// For each netlist block: owning packed-block index (kInvalidId for
  /// nothing, which never happens for valid input).
  std::vector<std::size_t> block_owner;
  /// For each net: true if entirely absorbed inside one cluster/BLE.
  std::vector<bool> net_absorbed;

  std::size_t logic_block_count() const { return clusters.size(); }
  std::size_t io_block_count() const { return blocks.size() - clusters.size(); }
};

/// Pack a validated netlist for the given architecture. Throws if any LUT
/// has more than K inputs.
Packing pack_netlist(const Netlist& nl, const ArchParams& arch);

/// Post-conditions checked by tests: every LUT/latch in exactly one BLE,
/// every BLE in exactly one cluster, cluster sizes within N and inputs
/// within I. Throws std::logic_error on violation.
void check_packing(const Netlist& nl, const ArchParams& arch,
                   const Packing& p);

}  // namespace nemfpga
