#include "core/study.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace nemfpga {

VariantMetrics evaluate_backend(const FlowResult& flow,
                                std::string_view backend,
                                double wire_buffer_downsize,
                                const PowerOptions& power_opt) {
  if (!flow.routed()) throw std::invalid_argument("evaluate_backend: unrouted");
  VariantMetrics m;
  m.backend = std::string(backend);
  m.wire_buffer_downsize = wire_buffer_downsize;

  const ElectricalView view =
      make_view(flow.arch, backend, wire_buffer_downsize);
  m.timing = analyze_timing(flow.netlist, flow.packing, flow.placement,
                            flow.graph_view(), flow.routing, view);
  m.critical_path = m.timing.critical_path;

  // Power is evaluated at the application's own operating frequency for
  // this variant (1 / critical path), as the paper does: the benefit shows
  // up as lower power at iso-throughput-per-cycle and/or speedup.
  m.power = analyze_power(flow.netlist, flow.packing, flow.placement,
                          flow.graph_view(), flow.routing, view, m.timing,
                          power_opt);
  m.dynamic_power = m.power.dynamic_total();
  m.leakage_power = m.power.leakage_total();

  const double n_tiles =
      static_cast<double>(flow.placement.nx * flow.placement.ny);
  m.area = n_tiles * view.area.footprint;
  return m;
}

VariantMetrics evaluate_variant(const FlowResult& flow, FpgaVariant variant,
                                double wire_buffer_downsize,
                                const PowerOptions& power_opt) {
  return evaluate_backend(flow, variant_backend_name(variant),
                          wire_buffer_downsize, power_opt);
}

VersusBaseline compare(const VariantMetrics& baseline,
                       const VariantMetrics& variant) {
  VersusBaseline r;
  r.speedup = baseline.critical_path / variant.critical_path;
  r.dynamic_reduction = baseline.dynamic_power / variant.dynamic_power;
  r.leakage_reduction = baseline.leakage_power / variant.leakage_power;
  r.area_reduction = baseline.area / variant.area;
  return r;
}

std::vector<double> default_downsizes() {
  return {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0};
}

StudyResult run_study(const FlowResult& flow,
                      const std::vector<double>& downsizes,
                      const PowerOptions& power_opt) {
  if (downsizes.empty()) throw std::invalid_argument("run_study: no sweep");
  StudyResult out;
  out.baseline =
      evaluate_variant(flow, FpgaVariant::kCmosBaseline, 1.0, power_opt);

  // Power is compared at iso-throughput: every variant is evaluated at the
  // baseline's operating frequency, matching the paper's "for application
  // critical path delays" framing (a faster variant could instead cash the
  // slack in as speedup — that is the other axis of Fig 12).
  PowerOptions iso = power_opt;
  if (iso.frequency <= 0.0 && out.baseline.critical_path > 0.0) {
    iso.frequency = 1.0 / out.baseline.critical_path;
  }

  // The naive variant and every sweep point are independent, read-only
  // functions of the shared FlowResult, so they evaluate concurrently;
  // parallel_map returns them in sweep order, which keeps the result
  // (including the preferred-corner tie-breaks below) identical at any
  // thread count.
  auto metrics = parallel_map(downsizes.size() + 1, [&](std::size_t i) {
    if (i == 0) {
      return evaluate_variant(flow, FpgaVariant::kNemNaive, 1.0, iso);
    }
    return evaluate_variant(flow, FpgaVariant::kNemOptimized,
                            downsizes[i - 1], iso);
  });

  out.naive.downsize = 1.0;
  out.naive.metrics = std::move(metrics[0]);
  out.naive.vs = compare(out.baseline, out.naive.metrics);

  for (std::size_t i = 0; i < downsizes.size(); ++i) {
    SweepPoint p;
    p.downsize = downsizes[i];
    p.metrics = std::move(metrics[i + 1]);
    p.vs = compare(out.baseline, p.metrics);
    out.sweep.push_back(std::move(p));
  }

  // Preferred corner: deepest downsizing (max power saving) that keeps the
  // application at least as fast as the CMOS baseline.
  const SweepPoint* best = nullptr;
  for (const auto& p : out.sweep) {
    if (p.vs.speedup >= 0.999) {
      if (!best || p.downsize > best->downsize) best = &p;
    }
  }
  // If even 1x downsizing loses speed (should not happen for NEM), fall
  // back to the fastest point.
  if (!best) {
    best = &out.sweep.front();
    for (const auto& p : out.sweep) {
      if (p.vs.speedup > best->vs.speedup) best = &p;
    }
  }
  out.preferred = *best;
  return out;
}

}  // namespace nemfpga
