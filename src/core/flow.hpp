// End-to-end CAD flow driver (the paper's Fig 10): netlist -> pack ->
// place -> route, producing one physical implementation that the variant
// analyses (CMOS-only vs CMOS-NEM) then re-evaluate electrically. The
// mapping is shared across variants, exactly as the paper maps each
// benchmark once with VPR and swaps circuit models.
#pragma once

#include <memory>

#include "arch/rr_graph.hpp"
#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/variant.hpp"

namespace nemfpga {

struct FlowOptions {
  ArchParams arch;
  PlaceOptions place;
  RouteOptions route;
  /// Electrical view driving the unified delay layer when
  /// route.timing_driven is set: run_flow builds the delay model and an
  /// incremental-STA timing hook from this variant and hands both to the
  /// router (route.timing_hook is then managed internally and must be
  /// left null by callers).
  FpgaVariant timing_variant = FpgaVariant::kCmosBaseline;
};

/// A fully mapped design (owns every intermediate product).
struct FlowResult {
  Netlist netlist;
  ArchParams arch;
  Packing packing;
  Placement placement;
  std::unique_ptr<RrGraph> graph;
  RoutingResult routing;

  bool routed() const { return routing.success; }
};

/// Run pack/place/route. Throws std::runtime_error if routing fails at the
/// requested channel width.
FlowResult run_flow(Netlist netlist, const FlowOptions& opt);

/// Determine this circuit's minimum channel width (paper Sec 3.3): packs
/// and places once, then binary-searches W.
ChannelWidthResult flow_min_channel_width(Netlist netlist,
                                          const FlowOptions& opt,
                                          std::size_t w_hint = 64);

}  // namespace nemfpga
