// End-to-end CAD flow driver (the paper's Fig 10): netlist -> pack ->
// place -> route, producing one physical implementation that the variant
// analyses (CMOS-only vs CMOS-NEM) then re-evaluate electrically. The
// mapping is shared across variants, exactly as the paper maps each
// benchmark once with VPR and swaps circuit models.
#pragma once

#include <memory>
#include <string>

#include "arch/rr_graph.hpp"
#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/variant.hpp"

namespace nemfpga {

class ArtifactCache;

struct FlowOptions {
  ArchParams arch;
  PlaceOptions place;
  RouteOptions route;
  /// Registry name of the switch-technology backend
  /// (device/switch_tech.hpp) driving the unified delay layer when
  /// route.timing_driven is set: run_flow builds the delay model and an
  /// incremental-STA timing hook from this backend's electrical view and
  /// hands both to the router (route.timing_hook is then managed
  /// internally and must be left null by callers).
  std::string timing_backend = "cmos";
  /// Shared content-addressed cache for the pre-route immutable
  /// artifacts (RR graph, lookahead table, delay model —
  /// src/service/artifact_cache.hpp). Null runs the classic fully
  /// self-contained build. The routed result is bit-identical either
  /// way (pinned by tests/prop/prop_flow_cache.cpp); the cache only
  /// changes which flow pays the build cost. Borrowed, not owned; must
  /// outlive the call.
  ArtifactCache* artifact_cache = nullptr;
};

/// A fully mapped design (owns or shares every intermediate product).
/// The RR graph is held backend-selectively: exactly one of graph /
/// igraph is non-null, per FlowOptions::route.rr_backend — implicit
/// flows no longer materialize the ~10x larger explicit graph at all.
/// Downstream consumers (bitstream, timing, power, reports) read
/// through graph_view(). The pointers are shared because the graph may
/// live in (and outlive this result via) the artifact cache.
struct FlowResult {
  Netlist netlist;
  ArchParams arch;
  Packing packing;
  Placement placement;
  std::shared_ptr<const RrGraph> graph;
  std::shared_ptr<const ImplicitRrGraph> igraph;
  RoutingResult routing;

  RrGraphView graph_view() const {
    return igraph ? RrGraphView(*igraph) : RrGraphView(*graph);
  }
  bool routed() const { return routing.success; }
};

/// Run pack/place/route. Throws std::runtime_error if routing fails at the
/// requested channel width.
FlowResult run_flow(Netlist netlist, const FlowOptions& opt);

/// Determine this circuit's minimum channel width (paper Sec 3.3): packs
/// and places once, then binary-searches W.
ChannelWidthResult flow_min_channel_width(Netlist netlist,
                                          const FlowOptions& opt,
                                          std::size_t w_hint = 64);

}  // namespace nemfpga
