// The paper's design study (Sec 3.4): evaluate one mapped design under the
// CMOS-only baseline, the naive CMOS-NEM of [Chen 10b], and the CMOS-NEM
// with selective buffer removal/downsizing across the wire-buffer
// downsizing sweep (pretend loads 1x..8x smaller); extract the iso-delay
// "preferred corner" and the headline reduction factors.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/flow.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"

namespace nemfpga {

/// Absolute metrics of one switch-technology backend on one mapped design.
struct VariantMetrics {
  std::string backend = "cmos";  ///< Registry name (device/switch_tech.hpp).
  double wire_buffer_downsize = 1.0;
  double critical_path = 0.0;   ///< [s]
  double dynamic_power = 0.0;   ///< [W]
  double leakage_power = 0.0;   ///< [W]
  double area = 0.0;            ///< Fabric footprint [m^2].
  PowerBreakdown power;
  TimingResult timing;
};

/// Ratios versus the CMOS-only baseline (>1 = CMOS-NEM is better; the
/// paper's Fig 12 axes).
struct VersusBaseline {
  double speedup = 0.0;             ///< cp_base / cp_variant.
  double dynamic_reduction = 0.0;   ///< dyn_base / dyn_variant.
  double leakage_reduction = 0.0;   ///< leak_base / leak_variant.
  double area_reduction = 0.0;      ///< area_base / area_variant.
};

/// Evaluate one registered switch-technology backend over an
/// already-mapped design.
VariantMetrics evaluate_backend(const FlowResult& flow,
                                std::string_view backend,
                                double wire_buffer_downsize = 1.0,
                                const PowerOptions& power_opt = {});

/// Paper-variant convenience: evaluate_backend(flow, variant name, ...).
VariantMetrics evaluate_variant(const FlowResult& flow, FpgaVariant variant,
                                double wire_buffer_downsize = 1.0,
                                const PowerOptions& power_opt = {});

VersusBaseline compare(const VariantMetrics& baseline,
                       const VariantMetrics& variant);

/// One point of the Fig 12 trade-off curve.
struct SweepPoint {
  double downsize = 1.0;
  VariantMetrics metrics;
  VersusBaseline vs;
};

/// The full study of one mapped design.
struct StudyResult {
  VariantMetrics baseline;           ///< CMOS-only.
  SweepPoint naive;                  ///< [Chen 10b]: relays, buffers kept.
  std::vector<SweepPoint> sweep;     ///< kNemOptimized across downsizes.
  /// Deepest power reduction with no application speed penalty
  /// (speedup >= ~1.0), the paper's "preferred corner".
  SweepPoint preferred;
};

/// Default downsizing grid (the paper sweeps pretend loads up to 8x).
std::vector<double> default_downsizes();

StudyResult run_study(const FlowResult& flow,
                      const std::vector<double>& downsizes = default_downsizes(),
                      const PowerOptions& power_opt = {});

}  // namespace nemfpga
