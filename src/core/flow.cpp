#include "core/flow.hpp"

#include <stdexcept>

#include "service/flow_artifacts.hpp"
#include "timing/sta.hpp"
#include "verify/check.hpp"

namespace nemfpga {

FlowResult run_flow(Netlist netlist, const FlowOptions& opt) {
  FlowResult r;
  r.arch = opt.arch;
  r.netlist = std::move(netlist);
  r.packing = pack_netlist(r.netlist, r.arch);
  if (verify::checks_enabled()) {
    check_packing(r.netlist, r.arch, r.packing);
  }
  const auto [nx, ny] = grid_size_for(r.arch, r.packing.clusters.size(),
                                      r.packing.io_block_count());
  r.placement = place(r.netlist, r.packing, r.arch, nx, ny, opt.place);
  if (verify::checks_enabled()) {
    check_placement(r.packing, r.arch, r.placement);
  }
  // Pre-route immutable artifacts — backend-selected RR graph, lookahead
  // table, lowered delay model — built here or served by the shared
  // artifact cache; the routed result is bit-identical either way. Both
  // RR backends produce bit-identical routing by construction, and the
  // implicit backend no longer pays for a redundant explicit graph:
  // downstream consumers (bitstream, timing, power) read graph_view().
  FlowArtifacts art =
      make_flow_artifacts(opt.artifact_cache, r.arch, nx, ny, opt.route,
                          opt.timing_backend);
  r.graph = art.rr;
  r.igraph = art.irr;
  const RrGraphView gv = art.view();
  RouteOptions ropt = opt.route;
  if (art.lookahead) {
    ropt.lookahead = art.lookahead;
    ropt.lookahead_build_s = art.lookahead_build_s;
    ropt.lookahead_from_cache = art.lookahead_from_cache;
  }
  if (ropt.timing_driven) {
    // Unified delay layer: one electrical view feeds the delay model,
    // the delay-annotated lookahead and the incremental STA driving the
    // router's criticality blend (a fresh hook per route_all call).
    const ElectricalView view = make_view(r.arch, opt.timing_backend);
    const auto hook = make_incremental_sta(
        r.netlist, r.packing, r.placement, gv, view, ropt.criticality_exp,
        ropt.max_criticality, art.delay_model);
    ropt.timing_hook = hook.get();
    r.routing = route_all(gv, r.placement, ropt);
  } else {
    r.routing = route_all(gv, r.placement, ropt);
  }
  if (!r.routing.success) {
    throw std::runtime_error(
        "run_flow: unroutable at W=" + std::to_string(r.arch.W) +
        " (overused=" + std::to_string(r.routing.overused_nodes) + ")");
  }
  return r;
}

ChannelWidthResult flow_min_channel_width(Netlist netlist,
                                          const FlowOptions& opt,
                                          std::size_t w_hint) {
  const Packing packing = pack_netlist(netlist, opt.arch);
  const auto [nx, ny] = grid_size_for(opt.arch, packing.clusters.size(),
                                      packing.io_block_count());
  const Placement pl =
      place(netlist, packing, opt.arch, nx, ny, opt.place);
  RouteOptions ropt = opt.route;
  if (opt.artifact_cache != nullptr && ropt.astar_factor > 0.0 &&
      !ropt.lookahead) {
    // The lookahead is W-independent, so the cache can hand the probe
    // table to find_min_channel_width up front — same table it would
    // build itself (Wmin probes are congestion-only, so no delay
    // annotation), now shared with every other flow on the fabric. The
    // implicit graph is only scaffolding for the table build.
    RouteOptions probe = ropt;
    probe.timing_driven = false;
    probe.rr_backend = RrBackend::kImplicit;
    const FlowArtifacts art = make_flow_artifacts(
        opt.artifact_cache, opt.arch, nx, ny, probe, opt.timing_backend);
    ropt.lookahead = art.lookahead;
    ropt.lookahead_build_s = art.lookahead_build_s;
    ropt.lookahead_from_cache = art.lookahead_from_cache;
  }
  return find_min_channel_width(opt.arch, pl, w_hint, ropt);
}

}  // namespace nemfpga
