#include "core/flow.hpp"

#include <stdexcept>

#include "verify/check.hpp"

namespace nemfpga {

FlowResult run_flow(Netlist netlist, const FlowOptions& opt) {
  FlowResult r;
  r.arch = opt.arch;
  r.netlist = std::move(netlist);
  r.packing = pack_netlist(r.netlist, r.arch);
  if (verify::checks_enabled()) {
    check_packing(r.netlist, r.arch, r.packing);
  }
  const auto [nx, ny] = grid_size_for(r.arch, r.packing.clusters.size(),
                                      r.packing.io_block_count());
  r.placement = place(r.netlist, r.packing, r.arch, nx, ny, opt.place);
  if (verify::checks_enabled()) {
    check_placement(r.packing, r.arch, r.placement);
  }
  r.graph = std::make_unique<RrGraph>(r.arch, nx, ny);
  r.routing = route_all(*r.graph, r.placement, opt.route);
  if (!r.routing.success) {
    throw std::runtime_error(
        "run_flow: unroutable at W=" + std::to_string(r.arch.W) +
        " (overused=" + std::to_string(r.routing.overused_nodes) + ")");
  }
  return r;
}

ChannelWidthResult flow_min_channel_width(Netlist netlist,
                                          const FlowOptions& opt,
                                          std::size_t w_hint) {
  const Packing packing = pack_netlist(netlist, opt.arch);
  const auto [nx, ny] = grid_size_for(opt.arch, packing.clusters.size(),
                                      packing.io_block_count());
  const Placement pl =
      place(netlist, packing, opt.arch, nx, ny, opt.place);
  return find_min_channel_width(opt.arch, pl, w_hint, opt.route);
}

}  // namespace nemfpga
