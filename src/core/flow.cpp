#include "core/flow.hpp"

#include <stdexcept>

#include "timing/sta.hpp"
#include "verify/check.hpp"

namespace nemfpga {

FlowResult run_flow(Netlist netlist, const FlowOptions& opt) {
  FlowResult r;
  r.arch = opt.arch;
  r.netlist = std::move(netlist);
  r.packing = pack_netlist(r.netlist, r.arch);
  if (verify::checks_enabled()) {
    check_packing(r.netlist, r.arch, r.packing);
  }
  const auto [nx, ny] = grid_size_for(r.arch, r.packing.clusters.size(),
                                      r.packing.io_block_count());
  r.placement = place(r.netlist, r.packing, r.arch, nx, ny, opt.place);
  if (verify::checks_enabled()) {
    check_placement(r.packing, r.arch, r.placement);
  }
  r.graph = std::make_unique<RrGraph>(r.arch, nx, ny);
  // The routing backend is selectable; downstream consumers (bitstream,
  // timing, power) keep reading the explicit graph retained in the result.
  // Both backends produce bit-identical routing by construction.
  const std::unique_ptr<ImplicitRrGraph> ig =
      opt.route.rr_backend == RrBackend::kImplicit
          ? std::make_unique<ImplicitRrGraph>(r.arch, nx, ny)
          : nullptr;
  const RrGraphView gv = ig ? RrGraphView(*ig) : RrGraphView(*r.graph);
  if (opt.route.timing_driven) {
    // Unified delay layer: one electrical view feeds the delay model,
    // the delay-annotated lookahead and the incremental STA driving the
    // router's criticality blend (a fresh hook per route_all call).
    const ElectricalView view = make_view(r.arch, opt.timing_variant);
    const auto hook =
        make_incremental_sta(r.netlist, r.packing, r.placement, gv,
                             view, opt.route.criticality_exp,
                             opt.route.max_criticality);
    RouteOptions ropt = opt.route;
    ropt.timing_hook = hook.get();
    r.routing = route_all(gv, r.placement, ropt);
  } else {
    r.routing = route_all(gv, r.placement, opt.route);
  }
  if (!r.routing.success) {
    throw std::runtime_error(
        "run_flow: unroutable at W=" + std::to_string(r.arch.W) +
        " (overused=" + std::to_string(r.routing.overused_nodes) + ")");
  }
  return r;
}

ChannelWidthResult flow_min_channel_width(Netlist netlist,
                                          const FlowOptions& opt,
                                          std::size_t w_hint) {
  const Packing packing = pack_netlist(netlist, opt.arch);
  const auto [nx, ny] = grid_size_for(opt.arch, packing.clusters.size(),
                                      packing.io_block_count());
  const Placement pl =
      place(netlist, packing, opt.arch, nx, ny, opt.place);
  return find_min_channel_width(opt.arch, pl, w_hint, opt.route);
}

}  // namespace nemfpga
