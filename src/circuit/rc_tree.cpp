#include "circuit/rc_tree.hpp"

#include <stdexcept>

namespace nemfpga {

RcTree::RcTree() {
  // Root: no parent edge, no cap until added.
  parent_.push_back(0);
  r_.push_back(0.0);
  c_.push_back(0.0);
}

RcNodeId RcTree::add_node(RcNodeId parent, double r, double c) {
  if (parent >= parent_.size()) throw std::out_of_range("RcTree: bad parent");
  if (r < 0.0 || c < 0.0) throw std::invalid_argument("RcTree: negative R/C");
  parent_.push_back(parent);
  r_.push_back(r);
  c_.push_back(c);
  return parent_.size() - 1;
}

void RcTree::add_cap(RcNodeId node, double c) {
  if (node >= parent_.size()) throw std::out_of_range("RcTree: bad node");
  if (c < 0.0) throw std::invalid_argument("RcTree: negative cap");
  c_[node] += c;
}

double RcTree::total_cap() const {
  double sum = 0.0;
  for (double c : c_) sum += c;
  return sum;
}

double RcTree::downstream_cap(RcNodeId node) const {
  if (node >= parent_.size()) throw std::out_of_range("RcTree: bad node");
  // Children always have larger ids than parents (construction order), so a
  // single reverse accumulation pass yields all subtree sums; here we only
  // need one node, but reuse the same pass for simplicity and O(n) cost.
  std::vector<double> acc = c_;
  for (std::size_t i = parent_.size(); i-- > 1;) {
    acc[parent_[i]] += acc[i];
  }
  return acc[node];
}

std::vector<double> RcTree::elmore_all(double r_drive) const {
  // Elmore to node n = sum over edges e on root->n path of R_e * C_below(e),
  // plus r_drive * C_total.
  std::vector<double> below = c_;
  for (std::size_t i = parent_.size(); i-- > 1;) {
    below[parent_[i]] += below[i];
  }
  std::vector<double> delay(parent_.size());
  delay[0] = r_drive * below[0];
  for (std::size_t i = 1; i < parent_.size(); ++i) {
    delay[i] = delay[parent_[i]] + r_[i] * below[i];
  }
  return delay;
}

double RcTree::elmore_delay(RcNodeId node, double r_drive) const {
  if (node >= parent_.size()) throw std::out_of_range("RcTree: bad node");
  return elmore_all(r_drive)[node];
}

}  // namespace nemfpga
