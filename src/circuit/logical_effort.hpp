// Inverter-chain design by the method of logical effort [Weste 10], which is
// exactly how the paper sizes its routing wire drivers (Sec 3.4): "we
// designed an inverter chain (with minimum-sized inverter as its first
// stage) to drive the capacitive load of the wire ... We swept the fanout of
// each stage ... to obtain the delay-optimal implementation", and then
// "'reduced' the size of each chain by redesigning it ... while pretending
// that it drives a smaller capacitive load (up to 8-times smaller)".
#pragma once

#include <vector>

#include "device/cmos.hpp"

namespace nemfpga {

/// A sized inverter chain. Stage i has width multiplier `stage_mult[i]`
/// relative to a minimum inverter (stage 0 is always 1.0).
struct InverterChain {
  std::vector<double> stage_mults;
  CmosTech tech;

  std::size_t stages() const { return stage_mults.size(); }
  /// Input capacitance presented by the first stage [F].
  double input_cap() const;
  /// Delay driving `c_load` [s] (Elmore per stage, self-load included).
  double delay(double c_load) const;
  /// Energy per output transition driving `c_load` [J] (all internal stage
  /// caps plus the load, at Vdd^2 — per 0->1->0 pair this counts once).
  double switching_energy(double c_load) const;
  /// Static leakage power [W].
  double leakage_power() const;
  /// Layout area in minimum-width-transistor-area (MWTA) units.
  double area_mwta() const;
};

/// Design the delay-optimal chain for `c_load`, first stage minimum sized,
/// sweeping stage count/fanout like the paper does. `max_stages` bounds the
/// search. Requires c_load > 0.
InverterChain design_optimal_chain(const CmosTech& tech, double c_load,
                                   std::size_t max_stages = 8);

/// The paper's downsizing move: design the chain for a pretend load
/// `c_load / downsize` (downsize in [1, 8]); the caller then evaluates it
/// against the *real* load, trading delay for power and area.
InverterChain design_downsized_chain(const CmosTech& tech, double c_load,
                                     double downsize,
                                     std::size_t max_stages = 8);

}  // namespace nemfpga
