#include "circuit/vcd.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace nemfpga {
namespace {

/// VCD identifier codes: printable ASCII starting at '!'.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

}  // namespace

void write_vcd(const Circuit& ckt, const std::vector<TransientPoint>& trace,
               const std::vector<CktNodeId>& nodes, std::ostream& out,
               const VcdOptions& opt) {
  std::vector<std::string> names;
  names.reserve(ckt.node_count());
  for (CktNodeId n = 0; n < ckt.node_count(); ++n) {
    names.push_back(ckt.node_name(n));
  }
  write_vcd(names, trace, nodes, out, opt);
}

void write_vcd(const std::vector<std::string>& node_names,
               const std::vector<TransientPoint>& trace,
               const std::vector<CktNodeId>& nodes, std::ostream& out,
               const VcdOptions& opt) {
  for (CktNodeId n : nodes) {
    if (n >= node_names.size()) {
      throw std::out_of_range("write_vcd: bad node id");
    }
  }
  out << "$date nemfpga $end\n";
  out << "$version nemfpga SPICE-lite $end\n";
  out << "$timescale " << opt.timescale << " $end\n";
  out << "$scope module crossbar $end\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out << "$var real 64 " << vcd_id(i) << ' ' << node_names[nodes[i]]
        << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";

  std::vector<double> last(nodes.size(),
                           std::numeric_limits<double>::quiet_NaN());
  for (const auto& p : trace) {
    bool any = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const double v = p.v[nodes[i]];
      if (std::isnan(last[i]) || std::fabs(v - last[i]) > opt.min_delta) {
        any = true;
      }
    }
    if (!any) continue;
    out << '#' << static_cast<long long>(p.time * opt.time_scale) << '\n';
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const double v = p.v[nodes[i]];
      if (std::isnan(last[i]) || std::fabs(v - last[i]) > opt.min_delta) {
        out << 'r' << v << ' ' << vcd_id(i) << '\n';
        last[i] = v;
      }
    }
  }
}

std::string write_vcd_string(const Circuit& ckt,
                             const std::vector<TransientPoint>& trace,
                             const std::vector<CktNodeId>& nodes,
                             const VcdOptions& opt) {
  std::ostringstream os;
  write_vcd(ckt, trace, nodes, os, opt);
  return os.str();
}

void write_vcd_file(const Circuit& ckt,
                    const std::vector<TransientPoint>& trace,
                    const std::vector<CktNodeId>& nodes,
                    const std::string& path, const VcdOptions& opt) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write VCD file: " + path);
  write_vcd(ckt, trace, nodes, f, opt);
}

void write_vcd_file(const std::vector<std::string>& node_names,
                    const std::vector<TransientPoint>& trace,
                    const std::vector<CktNodeId>& nodes,
                    const std::string& path, const VcdOptions& opt) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write VCD file: " + path);
  write_vcd(node_names, trace, nodes, f, opt);
}

}  // namespace nemfpga
