// RC interconnect trees and Elmore delay. Routed FPGA nets are trees of
// wire segments and switch resistances; the timing analyzer scores them by
// Elmore delay from the driver through each switch/segment to every sink,
// the same modelling level VPR's timing analysis uses.
#pragma once

#include <cstddef>
#include <vector>

namespace nemfpga {

/// Node handle within an RcTree.
using RcNodeId = std::size_t;

/// Tree of resistive edges with grounded capacitance at every node.
/// Node 0 is the root (driver output); every other node is attached under
/// an existing parent through a series resistance.
class RcTree {
 public:
  RcTree();

  /// Add a node under `parent` through series resistance r [Ohm], with
  /// grounded capacitance c [F] at the new node. Returns the new node id.
  RcNodeId add_node(RcNodeId parent, double r, double c);

  /// Add extra grounded capacitance at an existing node (sink loads,
  /// switch parasitics hanging off the net).
  void add_cap(RcNodeId node, double c);

  std::size_t node_count() const { return parent_.size(); }
  double total_cap() const;

  /// Elmore delay [s] from the root to `node`, given the driver's output
  /// resistance r_drive [Ohm] (counted against the total capacitance).
  double elmore_delay(RcNodeId node, double r_drive = 0.0) const;

  /// Elmore delays to all nodes in one O(n) pass.
  std::vector<double> elmore_all(double r_drive = 0.0) const;

  /// Capacitance at/below `node` (including the node's own cap).
  double downstream_cap(RcNodeId node) const;

 private:
  std::vector<RcNodeId> parent_;
  std::vector<double> r_;  // resistance of the edge from parent
  std::vector<double> c_;  // grounded cap at the node
};

}  // namespace nemfpga
