#include "circuit/spice.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/linear.hpp"

namespace nemfpga {

PwlWave::PwlWave(double level) { points_.emplace_back(0.0, level); }

PwlWave::PwlWave(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first < points_[i - 1].first) {
      throw std::invalid_argument("PwlWave: unsorted breakpoints");
    }
  }
}

void PwlWave::add(double t, double v) {
  if (!points_.empty() && t < points_.back().first) {
    throw std::invalid_argument("PwlWave::add: time goes backwards");
  }
  points_.emplace_back(t, v);
}

double PwlWave::at(double t) const {
  if (points_.empty()) return 0.0;
  if (t <= points_.front().first) return points_.front().second;
  if (t >= points_.back().first) return points_.back().second;
  // Binary search for the segment containing t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double time, const auto& p) { return time < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = hi.first - lo.first;
  if (span <= 0.0) return hi.second;
  const double f = (t - lo.first) / span;
  return lo.second + f * (hi.second - lo.second);
}

CktNodeId Circuit::add_node(std::string name) {
  names_.push_back(name.empty() ? "n" + std::to_string(names_.size())
                                : std::move(name));
  return names_.size() - 1;
}

void Circuit::add_resistor(CktNodeId a, CktNodeId b, double ohms) {
  if (a >= names_.size() || b >= names_.size()) {
    throw std::out_of_range("add_resistor: bad node");
  }
  if (ohms <= 0.0) throw std::invalid_argument("add_resistor: R <= 0");
  resistors_.push_back({a, b, 1.0 / ohms});
}

void Circuit::add_capacitor(CktNodeId a, CktNodeId b, double farads) {
  if (a >= names_.size() || b >= names_.size()) {
    throw std::out_of_range("add_capacitor: bad node");
  }
  if (farads < 0.0) throw std::invalid_argument("add_capacitor: C < 0");
  capacitors_.push_back({a, b, farads});
}

void Circuit::add_voltage_source(CktNodeId node, PwlWave wave) {
  if (node == ground() || node >= names_.size()) {
    throw std::out_of_range("add_voltage_source: bad node");
  }
  sources_.push_back({node, std::move(wave)});
}

SwitchId Circuit::add_switch(CktNodeId a, CktNodeId b, double ron) {
  if (a >= names_.size() || b >= names_.size()) {
    throw std::out_of_range("add_switch: bad node");
  }
  if (ron <= 0.0) throw std::invalid_argument("add_switch: Ron <= 0");
  switches_.push_back({a, b, 1.0 / ron, false});
  return switches_.size() - 1;
}

void Circuit::set_switch(SwitchId id, bool closed) {
  switches_.at(id).closed = closed;
}

bool Circuit::switch_closed(SwitchId id) const {
  return switches_.at(id).closed;
}

namespace {

/// Open switches still conduct minutely to keep floating nodes pinned
/// (mirrors the real device's tiny Coff path; value is far below signal
/// relevance).
constexpr double kOffConductance = 1e-15;

/// Tiny grounded conductance at every node so the MNA matrix is never
/// singular even for momentarily isolated nodes.
constexpr double kNodeBleed = 1e-18;

}  // namespace

TransientSim::TransientSim(Circuit& ckt, double dt) : ckt_(ckt), dt_(dt) {
  if (dt <= 0.0) throw std::invalid_argument("TransientSim: dt <= 0");
}

std::vector<TransientPoint> TransientSim::run(double t_end,
                                              std::size_t sample_every,
                                              StepHook on_step) {
  if (t_end <= 0.0) throw std::invalid_argument("TransientSim: t_end <= 0");
  if (sample_every == 0) sample_every = 1;

  const std::size_t n_nodes = ckt_.node_count();       // includes ground
  const std::size_t n_unknown = n_nodes - 1;           // ground excluded
  const std::size_t n_src = ckt_.sources().size();
  const std::size_t dim = n_unknown + n_src;

  // Unknowns: v[1..n_nodes-1], then source branch currents.
  auto idx = [](CktNodeId n) { return n - 1; };

  std::vector<double> v(n_nodes, 0.0);
  // Initial condition: nodes start at their source value (t=0) or 0.
  for (const auto& s : ckt_.sources()) v[s.node] = s.wave.at(0.0);

  LuSolver lu;
  bool need_refactor = true;

  auto build_matrix = [&](Matrix& a) {
    a.fill(0.0);
    auto stamp_g = [&](CktNodeId p, CktNodeId q, double g) {
      if (p != Circuit::ground()) a.at(idx(p), idx(p)) += g;
      if (q != Circuit::ground()) a.at(idx(q), idx(q)) += g;
      if (p != Circuit::ground() && q != Circuit::ground()) {
        a.at(idx(p), idx(q)) -= g;
        a.at(idx(q), idx(p)) -= g;
      }
    };
    for (std::size_t i = 0; i < n_unknown; ++i) a.at(i, i) += kNodeBleed;
    for (const auto& r : ckt_.resistors()) stamp_g(r.a, r.b, r.g);
    for (const auto& c : ckt_.capacitors()) stamp_g(c.a, c.b, c.c / dt_);
    for (const auto& sw : ckt_.switches()) {
      stamp_g(sw.a, sw.b, sw.closed ? sw.g_on : kOffConductance);
    }
    // Voltage sources: MNA branch rows (v_node = V, current unknown).
    for (std::size_t s = 0; s < n_src; ++s) {
      const CktNodeId node = ckt_.sources()[s].node;
      a.at(idx(node), n_unknown + s) += 1.0;
      a.at(n_unknown + s, idx(node)) += 1.0;
    }
  };

  Matrix a(dim, dim);
  std::vector<double> rhs(dim);
  std::vector<TransientPoint> out;

  const auto n_steps = static_cast<std::size_t>(t_end / dt_ + 0.5);
  out.reserve(n_steps / sample_every + 2);
  out.push_back({0.0, v});

  double t = 0.0;
  for (std::size_t step = 1; step <= n_steps; ++step) {
    t = static_cast<double>(step) * dt_;
    if (need_refactor) {
      build_matrix(a);
      if (!lu.factor(a)) {
        throw std::runtime_error("TransientSim: singular MNA matrix");
      }
      need_refactor = false;
    }
    std::fill(rhs.begin(), rhs.end(), 0.0);
    // Capacitor companion current from the previous voltages.
    for (const auto& c : ckt_.capacitors()) {
      const double i_hist = c.c / dt_ * (v[c.a] - v[c.b]);
      if (c.a != Circuit::ground()) rhs[idx(c.a)] += i_hist;
      if (c.b != Circuit::ground()) rhs[idx(c.b)] -= i_hist;
    }
    for (std::size_t s = 0; s < n_src; ++s) {
      rhs[n_unknown + s] = ckt_.sources()[s].wave.at(t);
    }
    const auto x = lu.solve(rhs);
    for (CktNodeId n = 1; n < n_nodes; ++n) v[n] = x[idx(n)];

    if (on_step) {
      // Snapshot switch states; the hook may toggle them.
      std::vector<bool> before;
      before.reserve(ckt_.switches().size());
      for (const auto& sw : ckt_.switches()) before.push_back(sw.closed);
      on_step(t, v);
      for (std::size_t i = 0; i < before.size(); ++i) {
        if (before[i] != ckt_.switches()[i].closed) need_refactor = true;
      }
    }
    if (step % sample_every == 0 || step == n_steps) out.push_back({t, v});
  }
  return out;
}

}  // namespace nemfpga
