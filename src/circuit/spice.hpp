// SPICE-lite: a small modified-nodal-analysis transient simulator, enough to
// reproduce the crossbar programming waveforms of Fig 5 (program / test /
// reset phases) and to sanity-check the RC models against a "real" solver.
//
// Elements: resistors, grounded/floating capacitors, ideal voltage sources
// (piecewise-linear waveforms), and switches (externally controlled on/off
// resistors — the electrical side of a configured NEM relay).
// Integration: backward Euler with a fixed step; the system matrix is
// re-factored only when a switch changes state.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace nemfpga {

/// Circuit node handle; node 0 is ground.
using CktNodeId = std::size_t;

/// Piecewise-linear voltage waveform: (time, value) breakpoints.
class PwlWave {
 public:
  PwlWave() = default;
  /// Constant level.
  explicit PwlWave(double level);
  /// Breakpoints must be time-sorted; the value is held flat outside them.
  explicit PwlWave(std::vector<std::pair<double, double>> points);

  double at(double t) const;

  /// Append a breakpoint (must not go backwards in time).
  void add(double t, double v);

 private:
  std::vector<std::pair<double, double>> points_;
};

/// Handle to a switch element for on/off control during simulation.
using SwitchId = std::size_t;

/// The circuit under simulation.
class Circuit {
 public:
  /// Create a named node (name used in error messages only).
  CktNodeId add_node(std::string name = "");
  static constexpr CktNodeId ground() { return 0; }

  void add_resistor(CktNodeId a, CktNodeId b, double ohms);
  void add_capacitor(CktNodeId a, CktNodeId b, double farads);
  /// Ideal voltage source from node to ground.
  void add_voltage_source(CktNodeId node, PwlWave wave);
  /// Switch between a and b: `ron` when closed, open (tiny conductance)
  /// when open. Starts open.
  SwitchId add_switch(CktNodeId a, CktNodeId b, double ron);

  std::size_t node_count() const { return names_.size(); }
  const std::string& node_name(CktNodeId n) const { return names_.at(n); }

  struct ResistorElem { CktNodeId a, b; double g; };
  struct CapacitorElem { CktNodeId a, b; double c; };
  struct SourceElem { CktNodeId node; PwlWave wave; };
  struct SwitchElem { CktNodeId a, b; double g_on; bool closed = false; };

  const std::vector<ResistorElem>& resistors() const { return resistors_; }
  const std::vector<CapacitorElem>& capacitors() const { return capacitors_; }
  const std::vector<SourceElem>& sources() const { return sources_; }
  const std::vector<SwitchElem>& switches() const { return switches_; }

  void set_switch(SwitchId id, bool closed);
  bool switch_closed(SwitchId id) const;

 private:
  std::vector<std::string> names_{"gnd"};
  std::vector<ResistorElem> resistors_;
  std::vector<CapacitorElem> capacitors_;
  std::vector<SourceElem> sources_;
  std::vector<SwitchElem> switches_;
};

/// One row of transient results.
struct TransientPoint {
  double time = 0.0;
  std::vector<double> v;  ///< Voltage per node (index = CktNodeId).
};

/// Backward-Euler transient simulator.
class TransientSim {
 public:
  /// `on_step`, if set, runs after each accepted step; it may flip switches
  /// (e.g. a relay pulling in when its |VGS| crosses Vpi), which triggers a
  /// re-factor before the next step.
  using StepHook = std::function<void(double t, const std::vector<double>& v)>;

  TransientSim(Circuit& ckt, double dt);

  /// Run from t=0 to t_end; returns sampled waveforms every `sample_every`
  /// steps (1 = every step).
  std::vector<TransientPoint> run(double t_end, std::size_t sample_every = 1,
                                  StepHook on_step = nullptr);

 private:
  Circuit& ckt_;
  double dt_;
};

}  // namespace nemfpga
