// VCD (Value Change Dump) export of SPICE-lite transients, so crossbar
// programming waveforms (Fig 5) can be inspected in any standard waveform
// viewer (GTKWave etc.). Voltages are emitted as VCD real variables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "circuit/spice.hpp"

namespace nemfpga {

struct VcdOptions {
  std::string timescale = "1ns";
  /// Time multiplier converting simulation seconds into timescale units.
  double time_scale = 1e9;
  /// Skip emitting a sample when no node moved by more than this [V].
  double min_delta = 1e-6;
};

/// Write waveforms for the selected nodes (node id -> display name taken
/// from the circuit). Nodes must be valid for the circuit that produced
/// the trace.
void write_vcd(const Circuit& ckt, const std::vector<TransientPoint>& trace,
               const std::vector<CktNodeId>& nodes, std::ostream& out,
               const VcdOptions& opt = {});

/// Same, with explicit display names (index = CktNodeId) when the Circuit
/// is no longer available (e.g. CrossbarExperimentResult::node_names).
void write_vcd(const std::vector<std::string>& node_names,
               const std::vector<TransientPoint>& trace,
               const std::vector<CktNodeId>& nodes, std::ostream& out,
               const VcdOptions& opt = {});
void write_vcd_file(const std::vector<std::string>& node_names,
                    const std::vector<TransientPoint>& trace,
                    const std::vector<CktNodeId>& nodes,
                    const std::string& path, const VcdOptions& opt = {});

std::string write_vcd_string(const Circuit& ckt,
                             const std::vector<TransientPoint>& trace,
                             const std::vector<CktNodeId>& nodes,
                             const VcdOptions& opt = {});

void write_vcd_file(const Circuit& ckt,
                    const std::vector<TransientPoint>& trace,
                    const std::vector<CktNodeId>& nodes,
                    const std::string& path, const VcdOptions& opt = {});

}  // namespace nemfpga
