#include "circuit/logical_effort.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace nemfpga {

double InverterChain::input_cap() const {
  return stage_mults.empty() ? 0.0
                             : stage_mults.front() * tech.min_inverter_input_cap();
}

double InverterChain::delay(double c_load) const {
  double total = 0.0;
  for (std::size_t i = 0; i < stage_mults.size(); ++i) {
    const double r = tech.min_inverter_resistance() / stage_mults[i];
    const double c_next = (i + 1 < stage_mults.size())
                              ? stage_mults[i + 1] * tech.min_inverter_input_cap()
                              : c_load;
    const double c_self = stage_mults[i] * tech.min_inverter_self_cap();
    // ln(2) for the 50% crossing of an RC stage.
    total += 0.69 * r * (c_next + c_self);
  }
  return total;
}

double InverterChain::switching_energy(double c_load) const {
  double cap = c_load;
  for (std::size_t i = 0; i < stage_mults.size(); ++i) {
    cap += stage_mults[i] * tech.min_inverter_self_cap();
    if (i + 1 < stage_mults.size()) {
      cap += stage_mults[i + 1] * tech.min_inverter_input_cap();
    }
  }
  return cap * tech.vdd * tech.vdd;
}

double InverterChain::leakage_power() const {
  double mults = 0.0;
  for (double m : stage_mults) mults += m;
  return mults * tech.min_inverter_leakage();
}

double InverterChain::area_mwta() const {
  // Each inverter is (1 + beta) transistor widths; area tracks total width.
  double mults = 0.0;
  for (double m : stage_mults) mults += m;
  return mults * (1.0 + tech.beta_ratio);
}

InverterChain design_optimal_chain(const CmosTech& tech, double c_load,
                                   std::size_t max_stages) {
  if (c_load <= 0.0) throw std::invalid_argument("design chain: c_load <= 0");
  if (max_stages == 0) throw std::invalid_argument("design chain: 0 stages");

  const double c_in = tech.min_inverter_input_cap();
  const double h_total = std::max(c_load / c_in, 1.0);

  InverterChain best;
  best.tech = tech;
  double best_delay = std::numeric_limits<double>::infinity();
  // Sweep the stage count; within a count, equal stage effort f = H^(1/N)
  // is delay-optimal (method of logical effort).
  for (std::size_t n = 1; n <= max_stages; ++n) {
    const double f = std::pow(h_total, 1.0 / static_cast<double>(n));
    InverterChain cand;
    cand.tech = tech;
    cand.stage_mults.resize(n);
    double mult = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      cand.stage_mults[i] = mult;
      mult *= f;
    }
    const double d = cand.delay(c_load);
    if (d < best_delay) {
      best_delay = d;
      best = cand;
    }
  }
  return best;
}

InverterChain design_downsized_chain(const CmosTech& tech, double c_load,
                                     double downsize, std::size_t max_stages) {
  if (downsize < 1.0) throw std::invalid_argument("downsize must be >= 1");
  return design_optimal_chain(tech, c_load / downsize, max_stages);
}

}  // namespace nemfpga
