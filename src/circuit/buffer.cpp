#include "circuit/buffer.hpp"

#include <cmath>
#include <stdexcept>

namespace nemfpga {
namespace {

/// Extra leakage drawn by the first-stage PMOS when its input high level is
/// degraded by `vt_drop` and NOT restored: the PMOS gate sits at Vdd - Vt,
/// leaving it weakly (or strongly) on. Exponential subthreshold factor
/// (~90 mV/decade at 22 nm), capped at the on-current ratio. This is the
/// reason CMOS-only FPGAs must attach half-latch restorers to every routing
/// buffer in the first place.
double degraded_input_leak_factor(double vt_drop) {
  if (vt_drop <= 0.0) return 1.0;
  constexpr double kSlopePerDecade = 0.090;  // V/decade
  constexpr double kCrowbarCap = 5000.0;     // bounded by drive-fight current
  return std::min(std::pow(10.0, vt_drop / kSlopePerDecade), kCrowbarCap);
}

/// Transistor-width cost of the half-latch keeper, relative to a minimum
/// inverter (a weak feedback PMOS plus its series device).
constexpr double kKeeperWidthMults = 1.5;

}  // namespace

double RoutingBuffer::delay(double c_load) const {
  double d = chain.delay(c_load);
  if (input_vt_drop > 0.0 && !chain.stage_mults.empty()) {
    // The slowly rising, degraded input stretches the first stage: its
    // effective overdrive shrinks from Vdd to Vdd - Vt, and the keeper
    // fights the transition until the half latch flips.
    const double vdd = chain.tech.vdd;
    const double slow = vdd / (vdd - input_vt_drop);
    const double r1 = chain.tech.min_inverter_resistance() / chain.stage_mults[0];
    const double c1 = (chain.stage_mults.size() > 1)
                          ? chain.stage_mults[1] * chain.tech.min_inverter_input_cap()
                          : c_load;
    const double first_stage =
        0.69 * r1 * (c1 + chain.stage_mults[0] * chain.tech.min_inverter_self_cap());
    d += (slow - 1.0) * first_stage;
  }
  return d;
}

double RoutingBuffer::switching_energy(double c_load) const {
  double e = chain.switching_energy(c_load);
  if (level_restorer) {
    // Keeper contention during each transition burns crowbar charge roughly
    // proportional to the keeper width.
    e += kKeeperWidthMults * chain.tech.min_inverter_input_cap() *
         chain.tech.vdd * chain.tech.vdd;
  }
  return e;
}

double RoutingBuffer::leakage_power() const {
  double p = chain.leakage_power();
  if (level_restorer) {
    // The keeper restores the input node to full Vdd, so there is no
    // steady-state crowbar — only the keeper's own leakage remains.
    p += kKeeperWidthMults * chain.tech.min_inverter_leakage();
  } else if (input_vt_drop > 0.0 && !chain.stage_mults.empty()) {
    // Unrestored degraded input: the first-stage PMOS leaks exponentially.
    const double first_stage_leak =
        chain.stage_mults[0] * chain.tech.min_inverter_leakage();
    p += first_stage_leak * (degraded_input_leak_factor(input_vt_drop) - 1.0);
  }
  return p;
}

double RoutingBuffer::area_mwta() const {
  double a = chain.area_mwta();
  if (level_restorer) a += kKeeperWidthMults * (1.0 + chain.tech.beta_ratio);
  return a;
}

double RoutingBuffer::input_cap() const { return chain.input_cap(); }

RoutingBuffer make_cmos_routing_buffer(const Tech22nm& tech, double c_load) {
  RoutingBuffer b;
  b.chain = design_optimal_chain(tech.cmos, c_load);
  b.level_restorer = true;
  b.input_vt_drop = tech.routing_pass_transistor.vt_drop(tech.cmos);
  return b;
}

RoutingBuffer make_nem_wire_buffer(const Tech22nm& tech, double c_load,
                                   double downsize) {
  if (downsize < 1.0) throw std::invalid_argument("downsize must be >= 1");
  RoutingBuffer b;
  b.chain = design_downsized_chain(tech.cmos, c_load, downsize);
  b.level_restorer = false;
  b.input_vt_drop = 0.0;
  return b;
}

}  // namespace nemfpga
