// Routing buffer models (paper Sec 3.2, Fig 8).
//
// CMOS-only FPGAs receive routing signals through NMOS pass transistors, so
// every routing buffer input sees a degraded high level (Vdd - Vt) and a
// slow rising edge; a half-latch level restorer is attached for signal
// restoration, costing leakage (contention + subthreshold of the
// half-selected keeper), area, and delay. NEM relay routing passes full
// swing, so CMOS-NEM buffers are plain inverter chains — and the local LB
// input/output buffers can be removed entirely while wire buffers are
// downsized.
#pragma once

#include "circuit/logical_effort.hpp"
#include "device/cmos.hpp"

namespace nemfpga {

/// One routing buffer instance (LB input, LB output, or wire buffer).
struct RoutingBuffer {
  InverterChain chain;
  /// Half-latch keeper present (CMOS-only routing).
  bool level_restorer = false;
  /// Degraded input high level [V] below Vdd (the pass-transistor Vt drop);
  /// 0 for full-swing (relay-driven) inputs.
  double input_vt_drop = 0.0;

  /// Propagation delay driving c_load [s]; a degraded, slowly-rising input
  /// stretches the first stage (the restorer only helps after it fights
  /// through the keeper).
  double delay(double c_load) const;
  /// Dynamic energy per transition driving c_load [J].
  double switching_energy(double c_load) const;
  /// Static leakage [W]: chain subthreshold leakage plus, with a degraded
  /// input level, the partially-on PMOS of the first stage and the keeper.
  double leakage_power() const;
  /// Area in minimum-width transistor units.
  double area_mwta() const;
  /// Capacitance presented to the routing network at the buffer input [F].
  double input_cap() const;
};

/// Delay-optimal CMOS-only routing buffer for `c_load`, with level restorer
/// and pass-transistor-degraded input.
RoutingBuffer make_cmos_routing_buffer(const Tech22nm& tech, double c_load);

/// CMOS-NEM wire buffer: full-swing input, no restorer, designed for a
/// pretend load `c_load / downsize` (the paper's selective downsizing).
RoutingBuffer make_nem_wire_buffer(const Tech22nm& tech, double c_load,
                                   double downsize = 1.0);

}  // namespace nemfpga
