#include "netlist/blif.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nemfpga {
namespace {

/// Split on whitespace.
std::vector<std::string> tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string t;
  while (is >> t) out.push_back(t);
  return out;
}

/// Read one logical line: strips comments (#), joins continuations (\).
bool next_line(std::istream& in, std::string& line, std::size_t& lineno) {
  line.clear();
  std::string raw;
  while (std::getline(in, raw)) {
    ++lineno;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    // Continuation?
    while (!raw.empty() && (raw.back() == '\r' || raw.back() == ' ' ||
                            raw.back() == '\t')) {
      raw.pop_back();
    }
    if (!raw.empty() && raw.back() == '\\') {
      raw.pop_back();
      line += raw;
      // The continuation character is a token separator: without this the
      // last token before the '\' glues onto the first token of the next
      // line (".inputs a b\" + "c" used to parse as "a bc").
      line += ' ';
      continue;
    }
    line += raw;
    if (!tokens(line).empty()) return true;
    line.clear();
  }
  return !tokens(line).empty();
}

[[noreturn]] void fail(std::size_t lineno, const std::string& msg) {
  throw std::runtime_error("blif:" + std::to_string(lineno) + ": " + msg);
}

}  // namespace

Netlist read_blif(std::istream& in, std::size_t max_lut_inputs) {
  std::size_t lineno = 0;
  std::string line;
  std::string model = "top";

  // First pass into memory as token rows (files are small by modern
  // standards; simplicity wins).
  struct Row {
    std::size_t lineno;
    std::vector<std::string> toks;
  };
  std::vector<Row> rows;
  while (next_line(in, line, lineno)) rows.push_back({lineno, tokens(line)});

  std::vector<std::string> inputs, outputs;
  struct Names {
    std::size_t lineno;
    std::vector<std::string> signals;  // ins..., out
    std::vector<std::string> cover;
  };
  struct Latch {
    std::size_t lineno;
    std::string d, q;
  };
  std::vector<Names> names;
  std::vector<Latch> latches;

  std::size_t i = 0;
  bool saw_model = false, saw_end = false;
  while (i < rows.size()) {
    const auto& [ln, t] = rows[i];
    if (t[0] == ".model") {
      if (saw_model) fail(ln, "multiple .model (subcircuits unsupported)");
      saw_model = true;
      if (t.size() >= 2) model = t[1];
      ++i;
    } else if (t[0] == ".inputs") {
      inputs.insert(inputs.end(), t.begin() + 1, t.end());
      ++i;
    } else if (t[0] == ".outputs") {
      outputs.insert(outputs.end(), t.begin() + 1, t.end());
      ++i;
    } else if (t[0] == ".names") {
      if (t.size() < 2) fail(ln, ".names needs at least an output");
      Names n{ln, {t.begin() + 1, t.end()}, {}};
      ++i;
      while (i < rows.size() && rows[i].toks[0][0] != '.') {
        std::string cover_row;
        for (const auto& tok : rows[i].toks) {
          if (!cover_row.empty()) cover_row += ' ';
          cover_row += tok;
        }
        n.cover.push_back(cover_row);
        ++i;
      }
      if (n.signals.size() - 1 > max_lut_inputs) {
        fail(ln, ".names wider than K=" + std::to_string(max_lut_inputs));
      }
      names.push_back(std::move(n));
    } else if (t[0] == ".latch") {
      if (t.size() < 3) fail(ln, ".latch needs input and output");
      latches.push_back({ln, t[1], t[2]});
      ++i;
    } else if (t[0] == ".end") {
      saw_end = true;
      ++i;
    } else if (t[0][0] == '.') {
      fail(ln, "unsupported directive: " + t[0]);
    } else {
      fail(ln, "unexpected token: " + t[0]);
    }
  }
  if (!saw_model) fail(0, "missing .model");
  (void)saw_end;  // .end is conventional but optional in the wild

  Netlist nl(model);
  for (const auto& name : inputs) {
    nl.add_input(name, nl.net_by_name(name));
  }
  for (const auto& n : names) {
    const std::string& out_name = n.signals.back();
    std::vector<NetId> ins;
    ins.reserve(n.signals.size() - 1);
    for (std::size_t s = 0; s + 1 < n.signals.size(); ++s) {
      ins.push_back(nl.net_by_name(n.signals[s]));
    }
    if (ins.empty()) {
      // Constant generator: model as a 0-input LUT via a 1-input LUT on
      // itself is illegal; instead treat constants as unsupported.
      fail(n.lineno, "constant .names (no inputs) unsupported");
    }
    nl.add_lut("lut:" + out_name, std::move(ins), nl.net_by_name(out_name),
               n.cover);
  }
  for (const auto& l : latches) {
    nl.add_latch("ff:" + l.q, nl.net_by_name(l.d), nl.net_by_name(l.q));
  }
  for (const auto& name : outputs) {
    const NetId n = nl.find_net(name);
    if (n == kInvalidId) fail(0, "primary output never driven: " + name);
    nl.add_output("out:" + name, n);
  }
  nl.validate();
  return nl;
}

Netlist read_blif_string(const std::string& text, std::size_t max_lut_inputs) {
  std::istringstream is(text);
  return read_blif(is, max_lut_inputs);
}

Netlist read_blif_file(const std::string& path, std::size_t max_lut_inputs) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open BLIF file: " + path);
  return read_blif(f, max_lut_inputs);
}

void write_blif(const Netlist& nl, std::ostream& out) {
  out << ".model " << nl.model_name() << "\n.inputs";
  for (const auto& b : nl.blocks()) {
    if (b.type == BlockType::kInput) out << ' ' << nl.net(b.output).name;
  }
  out << "\n.outputs";
  for (const auto& b : nl.blocks()) {
    if (b.type == BlockType::kOutput) out << ' ' << nl.net(b.inputs[0]).name;
  }
  out << "\n";
  for (const auto& b : nl.blocks()) {
    if (b.type == BlockType::kLatch) {
      out << ".latch " << nl.net(b.inputs[0]).name << ' '
          << nl.net(b.output).name << " re clk 2\n";
    }
  }
  for (const auto& b : nl.blocks()) {
    if (b.type != BlockType::kLut) continue;
    out << ".names";
    for (NetId n : b.inputs) out << ' ' << nl.net(n).name;
    out << ' ' << nl.net(b.output).name << "\n";
    if (b.truth_table.empty()) {
      // Default cover: AND of all inputs (placeholder function).
      out << std::string(b.inputs.size(), '1') << " 1\n";
    } else {
      for (const auto& row : b.truth_table) out << row << "\n";
    }
  }
  out << ".end\n";
}

std::string write_blif_string(const Netlist& nl) {
  std::ostringstream os;
  write_blif(nl, os);
  return os.str();
}

void write_blif_file(const Netlist& nl, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write BLIF file: " + path);
  write_blif(nl, f);
}

}  // namespace nemfpga
