// Technology-mapped netlist: the input to the FPGA CAD flow. Blocks are
// primary inputs/outputs, K-input LUTs, and D latches (FFs); nets connect
// one driver pin to any number of sink pins. This mirrors the post-mapping
// BLIF netlists VPR consumes.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace nemfpga {

using BlockId = std::size_t;
using NetId = std::size_t;
inline constexpr std::size_t kInvalidId = static_cast<std::size_t>(-1);

enum class BlockType { kInput, kOutput, kLut, kLatch };

struct Block {
  BlockType type = BlockType::kLut;
  std::string name;
  /// Input nets (LUT: up to K; latch: exactly 1 (D); output: exactly 1;
  /// input: none).
  std::vector<NetId> inputs;
  /// Driven net (inputs, LUTs, latches); kInvalidId for primary outputs.
  NetId output = kInvalidId;
  /// For LUTs: the .names truth-table rows (BLIF single-output cover).
  std::vector<std::string> truth_table;
};

struct Net {
  std::string name;
  BlockId driver = kInvalidId;
  std::vector<BlockId> sinks;
  std::size_t fanout() const { return sinks.size(); }
};

/// A flat mapped netlist.
class Netlist {
 public:
  explicit Netlist(std::string model_name = "top") : model_(std::move(model_name)) {}

  const std::string& model_name() const { return model_; }

  /// Create a net (initially driverless); name must be unique.
  NetId add_net(const std::string& name);
  /// Find a net by name; returns kInvalidId if absent.
  NetId find_net(const std::string& name) const;
  /// Find-or-create.
  NetId net_by_name(const std::string& name);

  BlockId add_input(const std::string& name, NetId out);
  BlockId add_output(const std::string& name, NetId in);
  BlockId add_lut(const std::string& name, std::vector<NetId> ins, NetId out,
                  std::vector<std::string> truth_table = {});
  BlockId add_latch(const std::string& name, NetId d, NetId q);

  std::size_t block_count() const { return blocks_.size(); }
  std::size_t net_count() const { return nets_.size(); }
  const Block& block(BlockId b) const { return blocks_.at(b); }
  const Net& net(NetId n) const { return nets_.at(n); }
  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<Net>& nets() const { return nets_; }

  std::size_t count(BlockType t) const;
  std::size_t lut_count() const { return count(BlockType::kLut); }
  std::size_t latch_count() const { return count(BlockType::kLatch); }
  std::size_t input_count() const { return count(BlockType::kInput); }
  std::size_t output_count() const { return count(BlockType::kOutput); }

  /// Maximum LUT fan-in present.
  std::size_t max_lut_inputs() const;
  /// Mean fanout over driven nets.
  double average_fanout() const;

  /// Structural validation: every net has exactly one driver, every block
  /// input references an existing net, no self-loop through a LUT only
  /// (combinational loops must pass through a latch). Throws on violation.
  void validate() const;

  // --- ECO mutation surface ----------------------------------------------
  // Connection-granularity edits for the incremental flow. Each consuming
  // pin owns one entry in Net::sinks (duplicates are legal when a block
  // reads the same net on two pins), and these methods keep that pairing
  // exact. LUT truth tables go stale under pin edits and are cleared; the
  // ECO flow never consumes them (only simulation/bitstream do).

  /// Append net `n` as a new input pin of LUT `b`. The arch-level fan-in
  /// cap K is the caller's to enforce (the netlist does not know it).
  void connect_input(BlockId b, NetId n);
  /// Remove input pin `pin` of LUT `b` along with its sink entry. A LUT
  /// keeps at least one input.
  void disconnect_input(BlockId b, std::size_t pin);
  /// Repoint input pin `pin` of block `b` (LUT, latch D, or PO input) at
  /// net `n`, keeping the pin count unchanged. No-op when already there.
  void retarget_input(BlockId b, std::size_t pin, NetId n);
  /// Non-throwing probe for combinational LUT->LUT cycles: where
  /// validate() throws, the ECO flow uses this to degrade timing
  /// gracefully instead of crashing.
  bool has_combinational_cycle() const;

 private:
  BlockId add_block(Block b);
  void connect_driver(NetId n, BlockId b);
  void connect_sink(NetId n, BlockId b);

  std::string model_;
  std::vector<Block> blocks_;
  std::vector<Net> nets_;
  std::unordered_map<std::string, NetId> net_names_;
};

}  // namespace nemfpga
