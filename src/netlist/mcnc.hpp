// Benchmark catalog: the 20 largest MCNC circuits [Yang 91] the paper's
// evaluation uses (geometric means in Figs 9/12) plus the four large
// industrial benchmarks [Pistorius 07] it reports individually
// (ava, oc_des_des3perf, sudoku_check, ucsb_152_tap_fir; all > 10K 4-LUTs).
//
// Block counts follow the published sizes; the netlists themselves are
// regenerated synthetically (see synth_gen.hpp and DESIGN.md).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/synth_gen.hpp"

namespace nemfpga {

struct BenchmarkInfo {
  std::string name;
  std::size_t luts = 0;     ///< 4-LUT count (published).
  std::size_t latches = 0;
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  /// Locality coefficient for the synthetic regeneration (units of
  /// sqrt(n_luts); lower = more local). The large industrial benchmarks
  /// (FIR filter, DES pipelines, sudoku checker) are highly regular
  /// datapaths, reflected as tighter locality than random control logic.
  double locality = 1.0;
};

/// The 20 largest MCNC benchmark circuits (VPR's standard suite).
const std::vector<BenchmarkInfo>& mcnc20();

/// The four large benchmarks of [Pistorius 07] reported in Fig 12.
const std::vector<BenchmarkInfo>& pistorius_large();

/// Look up either catalog by name; throws if unknown.
const BenchmarkInfo& benchmark_info(const std::string& name);

/// Generate the (synthetic) netlist for a catalog entry.
Netlist generate_benchmark(const BenchmarkInfo& info);
Netlist generate_benchmark(const std::string& name);

}  // namespace nemfpga
