#include "netlist/delta.hpp"

#include <sstream>

namespace nemfpga {

std::string EcoOp::describe() const {
  std::ostringstream os;
  switch (kind) {
    case EcoOpKind::kConnect:
      os << "connect(block=" << block << ", net=" << net << ")";
      break;
    case EcoOpKind::kDisconnect:
      os << "disconnect(block=" << block << ", pin=" << pin << ")";
      break;
    case EcoOpKind::kRetarget:
      os << "retarget(block=" << block << ", pin=" << pin << ", net=" << net
         << ")";
      break;
    case EcoOpKind::kMoveBlock:
      os << "move(packed=" << packed_a << ", to=" << dest_x << "," << dest_y
         << "." << dest_sub << ")";
      break;
    case EcoOpKind::kSwapBlocks:
      os << "swap(packed=" << packed_a << ", " << packed_b << ")";
      break;
  }
  return os.str();
}

std::string NetlistDelta::describe() const {
  std::ostringstream os;
  os << "delta{";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i) os << "; ";
    os << ops[i].describe();
  }
  os << "}";
  return os.str();
}

}  // namespace nemfpga
