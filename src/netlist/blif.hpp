// BLIF (Berkeley Logic Interchange Format) reader/writer for the mapped
// subset the flow consumes: .model/.inputs/.outputs/.names/.latch/.end.
// This is the interchange format of the MCNC benchmarks and VPR.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace nemfpga {

/// Parse a mapped BLIF netlist. Throws std::runtime_error with a line
/// number on malformed input. `max_lut_inputs` rejects covers wider than
/// the architecture's K (the input must already be tech-mapped).
Netlist read_blif(std::istream& in, std::size_t max_lut_inputs = 6);
Netlist read_blif_string(const std::string& text, std::size_t max_lut_inputs = 6);
Netlist read_blif_file(const std::string& path, std::size_t max_lut_inputs = 6);

/// Serialize back to BLIF (stable ordering; round-trips through read_blif).
void write_blif(const Netlist& nl, std::ostream& out);
std::string write_blif_string(const Netlist& nl);
void write_blif_file(const Netlist& nl, const std::string& path);

}  // namespace nemfpga
