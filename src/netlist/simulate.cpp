#include "netlist/simulate.hpp"

#include <stdexcept>

namespace nemfpga {

bool eval_cover(const std::vector<std::string>& cover,
                const std::vector<bool>& inputs) {
  if (cover.empty()) {
    // Default cover (see blif.cpp): AND of all inputs.
    for (bool b : inputs) {
      if (!b) return false;
    }
    return true;
  }
  for (const auto& row : cover) {
    bool match = true;
    std::size_t i = 0;
    for (char ch : row) {
      if (ch == ' ') break;  // pattern ends before the output column
      if (i >= inputs.size()) {
        match = false;
        break;
      }
      if (ch == '1' && !inputs[i]) match = false;
      if (ch == '0' && inputs[i]) match = false;
      // '-' matches either value.
      ++i;
      if (!match) break;
    }
    if (match && i == inputs.size()) return true;
  }
  return false;
}

ActivityResult estimate_activity(const Netlist& nl,
                                 const ActivityOptions& opt) {
  nl.validate();
  if (opt.vectors == 0) {
    throw std::invalid_argument("estimate_activity: zero vectors");
  }
  Rng rng(opt.seed);

  // Topological order of LUTs (latches break cycles).
  std::vector<BlockId> order;
  order.reserve(nl.block_count());
  {
    std::vector<std::size_t> pending(nl.block_count(), 0);
    std::vector<BlockId> ready;
    for (BlockId b = 0; b < nl.block_count(); ++b) {
      const Block& blk = nl.block(b);
      if (blk.type != BlockType::kLut) continue;
      std::size_t n_comb = 0;
      for (NetId n : blk.inputs) {
        if (nl.block(nl.net(n).driver).type == BlockType::kLut) ++n_comb;
      }
      pending[b] = n_comb;
      if (n_comb == 0) ready.push_back(b);
    }
    while (!ready.empty()) {
      const BlockId b = ready.back();
      ready.pop_back();
      order.push_back(b);
      for (BlockId s : nl.net(nl.block(b).output).sinks) {
        if (nl.block(s).type == BlockType::kLut && pending[s] > 0) {
          if (--pending[s] == 0) ready.push_back(s);
        }
      }
    }
    if (order.size() != nl.lut_count()) {
      throw std::logic_error("estimate_activity: combinational cycle");
    }
  }

  std::vector<bool> value(nl.net_count(), false);
  std::vector<bool> latch_state(nl.block_count(), false);
  std::vector<std::size_t> transitions(nl.net_count(), 0);
  std::vector<std::size_t> ones(nl.net_count(), 0);
  std::vector<bool> ins;

  auto settle = [&] {
    // Latch outputs drive their Q nets; then evaluate LUTs in topo order.
    for (BlockId b = 0; b < nl.block_count(); ++b) {
      const Block& blk = nl.block(b);
      if (blk.type == BlockType::kLatch) value[blk.output] = latch_state[b];
    }
    for (BlockId b : order) {
      const Block& blk = nl.block(b);
      ins.assign(blk.inputs.size(), false);
      for (std::size_t i = 0; i < blk.inputs.size(); ++i) {
        ins[i] = value[blk.inputs[i]];
      }
      value[blk.output] = eval_cover(blk.truth_table, ins);
    }
  };

  // Initialize PIs randomly and settle once.
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kInput) value[blk.output] = rng.chance(0.5);
  }
  settle();

  const std::size_t total = opt.warmup + opt.vectors;
  std::vector<bool> prev(nl.net_count(), false);
  for (std::size_t cycle = 0; cycle < total; ++cycle) {
    prev = value;
    // Clock edge: capture D into every latch.
    for (BlockId b = 0; b < nl.block_count(); ++b) {
      const Block& blk = nl.block(b);
      if (blk.type == BlockType::kLatch) {
        latch_state[b] = value[blk.inputs[0]];
      }
    }
    // New primary-input vector.
    for (BlockId b = 0; b < nl.block_count(); ++b) {
      const Block& blk = nl.block(b);
      if (blk.type == BlockType::kInput && rng.chance(opt.input_toggle_prob)) {
        value[blk.output] = !value[blk.output];
      }
    }
    settle();
    if (cycle < opt.warmup) continue;
    for (NetId n = 0; n < nl.net_count(); ++n) {
      transitions[n] += (value[n] != prev[n]);
      ones[n] += value[n];
    }
  }

  ActivityResult res;
  res.net_activity.resize(nl.net_count());
  res.net_p1.resize(nl.net_count());
  double sum = 0.0;
  for (NetId n = 0; n < nl.net_count(); ++n) {
    res.net_activity[n] =
        static_cast<double>(transitions[n]) / static_cast<double>(opt.vectors);
    res.net_p1[n] =
        static_cast<double>(ones[n]) / static_cast<double>(opt.vectors);
    sum += res.net_activity[n];
  }
  res.mean_activity = sum / static_cast<double>(nl.net_count());
  return res;
}

}  // namespace nemfpga
