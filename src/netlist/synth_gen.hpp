// Synthetic mapped-netlist generator. We do not have the proprietary MCNC /
// Altera benchmark BLIF files, so each named benchmark is regenerated as a
// synthetic circuit with the published block counts and realistic structure:
// locality-weighted fan-in selection (Rent-like spatial clustering), a
// register fraction, and an emergent long-tail fanout distribution. The
// generator is deterministic in the circuit name, so every run of the flow
// sees identical workloads. See DESIGN.md Sec 2 for why this substitution
// preserves the paper's (relative) claims.
#pragma once

#include <string>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace nemfpga {

struct SynthSpec {
  std::string name = "synth";
  std::size_t n_luts = 1000;
  std::size_t n_inputs = 32;
  std::size_t n_outputs = 32;
  std::size_t n_latches = 0;   ///< Registered LUT outputs.
  std::size_t lut_inputs = 4;  ///< K.
  /// Locality window in units of sqrt(n_luts): fan-ins are drawn mostly
  /// from the last `locality * sqrt(n_luts)` produced signals. Sublinear
  /// scaling keeps the wiring demand Rent-like — real circuits' channel
  /// requirements grow slowly with size, and so must ours.
  double locality = 1.0;
  /// Probability a fan-in is drawn globally instead of locally (long wires).
  double global_edge_prob = 0.04;
};

/// Generate a valid mapped netlist per the spec (validated before return).
Netlist generate_netlist(const SynthSpec& spec);

}  // namespace nemfpga
