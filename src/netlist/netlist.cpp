#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace nemfpga {

NetId Netlist::add_net(const std::string& name) {
  if (net_names_.contains(name)) {
    throw std::invalid_argument("add_net: duplicate net name: " + name);
  }
  nets_.push_back(Net{name, kInvalidId, {}});
  net_names_.emplace(name, nets_.size() - 1);
  return nets_.size() - 1;
}

NetId Netlist::find_net(const std::string& name) const {
  const auto it = net_names_.find(name);
  return it == net_names_.end() ? kInvalidId : it->second;
}

NetId Netlist::net_by_name(const std::string& name) {
  const NetId existing = find_net(name);
  return existing == kInvalidId ? add_net(name) : existing;
}

BlockId Netlist::add_block(Block b) {
  blocks_.push_back(std::move(b));
  return blocks_.size() - 1;
}

void Netlist::connect_driver(NetId n, BlockId b) {
  if (n >= nets_.size()) throw std::out_of_range("connect_driver: bad net");
  if (nets_[n].driver != kInvalidId) {
    throw std::invalid_argument("net already driven: " + nets_[n].name);
  }
  nets_[n].driver = b;
}

void Netlist::connect_sink(NetId n, BlockId b) {
  if (n >= nets_.size()) throw std::out_of_range("connect_sink: bad net");
  nets_[n].sinks.push_back(b);
}

BlockId Netlist::add_input(const std::string& name, NetId out) {
  const BlockId b = add_block({BlockType::kInput, name, {}, out, {}});
  connect_driver(out, b);
  return b;
}

BlockId Netlist::add_output(const std::string& name, NetId in) {
  const BlockId b = add_block({BlockType::kOutput, name, {in}, kInvalidId, {}});
  connect_sink(in, b);
  return b;
}

BlockId Netlist::add_lut(const std::string& name, std::vector<NetId> ins,
                         NetId out, std::vector<std::string> truth_table) {
  if (ins.empty()) throw std::invalid_argument("add_lut: no inputs: " + name);
  const BlockId b =
      add_block({BlockType::kLut, name, ins, out, std::move(truth_table)});
  for (NetId n : blocks_.back().inputs) connect_sink(n, b);
  connect_driver(out, b);
  return b;
}

BlockId Netlist::add_latch(const std::string& name, NetId d, NetId q) {
  const BlockId b = add_block({BlockType::kLatch, name, {d}, q, {}});
  connect_sink(d, b);
  connect_driver(q, b);
  return b;
}

std::size_t Netlist::count(BlockType t) const {
  std::size_t n = 0;
  for (const auto& b : blocks_) n += (b.type == t);
  return n;
}

std::size_t Netlist::max_lut_inputs() const {
  std::size_t k = 0;
  for (const auto& b : blocks_) {
    if (b.type == BlockType::kLut) k = std::max(k, b.inputs.size());
  }
  return k;
}

double Netlist::average_fanout() const {
  std::size_t driven = 0, pins = 0;
  for (const auto& n : nets_) {
    if (n.driver == kInvalidId) continue;
    ++driven;
    pins += n.sinks.size();
  }
  return driven ? static_cast<double>(pins) / static_cast<double>(driven) : 0.0;
}

namespace {

void erase_one_sink(Net& net, BlockId b, const char* who) {
  const auto it = std::find(net.sinks.begin(), net.sinks.end(), b);
  if (it == net.sinks.end()) {
    throw std::logic_error(std::string(who) +
                           ": sink entry missing on net " + net.name);
  }
  net.sinks.erase(it);
}

}  // namespace

void Netlist::connect_input(BlockId b, NetId n) {
  if (b >= blocks_.size()) throw std::out_of_range("connect_input: bad block");
  if (n >= nets_.size()) throw std::out_of_range("connect_input: bad net");
  Block& blk = blocks_[b];
  if (blk.type != BlockType::kLut) {
    throw std::invalid_argument("connect_input: only LUT pins can be added");
  }
  blk.inputs.push_back(n);
  nets_[n].sinks.push_back(b);
  blk.truth_table.clear();
}

void Netlist::disconnect_input(BlockId b, std::size_t pin) {
  if (b >= blocks_.size()) {
    throw std::out_of_range("disconnect_input: bad block");
  }
  Block& blk = blocks_[b];
  if (blk.type != BlockType::kLut) {
    throw std::invalid_argument(
        "disconnect_input: only LUT pins can be removed");
  }
  if (pin >= blk.inputs.size()) {
    throw std::out_of_range("disconnect_input: bad pin");
  }
  if (blk.inputs.size() == 1) {
    throw std::invalid_argument("disconnect_input: LUT needs one input");
  }
  erase_one_sink(nets_[blk.inputs[pin]], b, "disconnect_input");
  blk.inputs.erase(blk.inputs.begin() + static_cast<std::ptrdiff_t>(pin));
  blk.truth_table.clear();
}

void Netlist::retarget_input(BlockId b, std::size_t pin, NetId n) {
  if (b >= blocks_.size()) throw std::out_of_range("retarget_input: bad block");
  if (n >= nets_.size()) throw std::out_of_range("retarget_input: bad net");
  Block& blk = blocks_[b];
  if (blk.inputs.empty() || pin >= blk.inputs.size()) {
    throw std::out_of_range("retarget_input: bad pin");
  }
  const NetId old = blk.inputs[pin];
  if (old == n) return;
  erase_one_sink(nets_[old], b, "retarget_input");
  blk.inputs[pin] = n;
  nets_[n].sinks.push_back(b);
  if (blk.type == BlockType::kLut) blk.truth_table.clear();
}

bool Netlist::has_combinational_cycle() const {
  // Same DFS as validate()'s loop check, answering instead of throwing.
  enum class Color : unsigned char { kWhite, kGray, kBlack };
  std::vector<Color> color(blocks_.size(), Color::kWhite);
  std::vector<std::pair<BlockId, std::size_t>> stack;
  for (BlockId start = 0; start < blocks_.size(); ++start) {
    if (blocks_[start].type != BlockType::kLut) continue;
    if (color[start] != Color::kWhite) continue;
    stack.emplace_back(start, 0);
    color[start] = Color::kGray;
    while (!stack.empty()) {
      auto& [b, sink_idx] = stack.back();
      const Net& out = nets_[blocks_[b].output];
      if (sink_idx >= out.sinks.size()) {
        color[b] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const BlockId next = out.sinks[sink_idx++];
      if (blocks_[next].type != BlockType::kLut) continue;
      if (color[next] == Color::kGray) return true;
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        stack.emplace_back(next, 0);
      }
    }
  }
  return false;
}

void Netlist::validate() const {
  for (const auto& n : nets_) {
    if (n.driver == kInvalidId) {
      throw std::runtime_error("validate: undriven net: " + n.name);
    }
    if (n.driver >= blocks_.size()) {
      throw std::runtime_error("validate: bad driver on net: " + n.name);
    }
  }
  for (const auto& b : blocks_) {
    for (NetId n : b.inputs) {
      if (n >= nets_.size()) {
        throw std::runtime_error("validate: bad input net on block: " + b.name);
      }
    }
    if (b.type != BlockType::kOutput && b.output >= nets_.size()) {
      throw std::runtime_error("validate: bad output net on block: " + b.name);
    }
  }
  // Combinational-loop check: DFS over LUT->LUT edges (latches cut paths).
  enum class Color : unsigned char { kWhite, kGray, kBlack };
  std::vector<Color> color(blocks_.size(), Color::kWhite);
  std::vector<std::pair<BlockId, std::size_t>> stack;
  for (BlockId start = 0; start < blocks_.size(); ++start) {
    if (blocks_[start].type != BlockType::kLut) continue;
    if (color[start] != Color::kWhite) continue;
    stack.emplace_back(start, 0);
    color[start] = Color::kGray;
    while (!stack.empty()) {
      auto& [b, sink_idx] = stack.back();
      // Iterate combinational fanout of block b.
      const Net& out = nets_[blocks_[b].output];
      if (sink_idx >= out.sinks.size()) {
        color[b] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const BlockId next = out.sinks[sink_idx++];
      if (blocks_[next].type != BlockType::kLut) continue;
      if (color[next] == Color::kGray) {
        throw std::runtime_error("validate: combinational loop through " +
                                 blocks_[next].name);
      }
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        stack.emplace_back(next, 0);
      }
    }
  }
}

}  // namespace nemfpga
