// Logic simulation and switching-activity estimation.
//
// The paper's power flow ([Jamieson 09], Fig 10) "incorporates appropriate
// switching activities of various circuit nodes". This module provides
// them: it evaluates the mapped netlist's LUT truth tables over random
// input vectors (registers clocked between vectors) and reports per-net
// transition probabilities, which analyze_power() can consume instead of
// a flat default activity.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace nemfpga {

/// Evaluate one LUT's BLIF single-output cover for an input assignment.
/// `cover` rows are "<pattern> 1" with pattern chars in {0,1,-}; the LUT
/// outputs 1 iff any row matches (sum-of-products, on-set cover).
bool eval_cover(const std::vector<std::string>& cover,
                const std::vector<bool>& inputs);

struct ActivityOptions {
  std::size_t vectors = 1000;     ///< Random primary-input vectors.
  std::size_t warmup = 32;        ///< Cycles before statistics start.
  double input_toggle_prob = 0.5; ///< Per-PI toggle probability per cycle.
  std::uint64_t seed = 7;
};

struct ActivityResult {
  /// Per-net transition probability per clock cycle (activity factor).
  std::vector<double> net_activity;
  /// Per-net static probability of logic 1.
  std::vector<double> net_p1;
  /// Mean activity over all nets (use as a flat summary).
  double mean_activity = 0.0;
};

/// Simulate the netlist and measure activities. The netlist must validate;
/// LUTs with empty truth tables behave as AND of their inputs (the BLIF
/// writer's default cover).
ActivityResult estimate_activity(const Netlist& nl,
                                 const ActivityOptions& opt = {});

}  // namespace nemfpga
