#include "netlist/mcnc.hpp"

#include <stdexcept>

namespace nemfpga {

const std::vector<BenchmarkInfo>& mcnc20() {
  // Published post-mapping sizes (4-LUTs / FFs / PIs / POs) of the 20
  // largest MCNC circuits as used by VPR [Betz 99, Kuon 08].
  static const std::vector<BenchmarkInfo> k = {
      {"alu4", 1522, 0, 14, 8},
      {"apex2", 1878, 0, 38, 3},
      {"apex4", 1262, 0, 9, 19},
      {"bigkey", 1707, 224, 229, 197},
      {"clma", 8383, 33, 62, 82},
      {"des", 1591, 0, 256, 245},
      {"diffeq", 1497, 377, 64, 39},
      {"dsip", 1370, 224, 229, 197},
      {"elliptic", 3604, 1122, 131, 114},
      {"ex1010", 4598, 0, 10, 10},
      {"ex5p", 1064, 0, 8, 63},
      {"frisc", 3556, 886, 20, 116},
      {"misex3", 1397, 0, 14, 14},
      {"pdc", 4575, 0, 16, 40},
      {"s298", 1931, 8, 4, 6},
      {"s38417", 6406, 1636, 29, 106},
      {"s38584.1", 6447, 1452, 39, 304},
      {"seq", 1750, 0, 41, 35},
      {"spla", 3690, 0, 16, 46},
      {"tseng", 1047, 385, 52, 122},
  };
  return k;
}

const std::vector<BenchmarkInfo>& pistorius_large() {
  // LUT counts from the paper (Fig 12 legend); IO/FF counts chosen at
  // plausible industrial proportions (not published in the paper).
  static const std::vector<BenchmarkInfo> k = {
      {"ava", 12254, 2440, 130, 100, 0.85},
      {"oc_des_des3perf", 11742, 2300, 234, 128, 0.75},
      {"sudoku_check", 17188, 3400, 81, 40, 0.70},
      {"ucsb_152_tap_fir", 10199, 2000, 34, 38, 0.70},
  };
  return k;
}

const BenchmarkInfo& benchmark_info(const std::string& name) {
  for (const auto& b : mcnc20()) {
    if (b.name == name) return b;
  }
  for (const auto& b : pistorius_large()) {
    if (b.name == name) return b;
  }
  throw std::invalid_argument("unknown benchmark: " + name);
}

Netlist generate_benchmark(const BenchmarkInfo& info) {
  SynthSpec spec;
  spec.name = info.name;
  spec.n_luts = info.luts;
  spec.n_latches = info.latches;
  spec.n_inputs = info.inputs;
  spec.n_outputs = info.outputs;
  spec.lut_inputs = 4;
  spec.locality = info.locality;
  return generate_netlist(spec);
}

Netlist generate_benchmark(const std::string& name) {
  return generate_benchmark(benchmark_info(name));
}

}  // namespace nemfpga
