#include "netlist/synth_gen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nemfpga {
namespace {

/// Random single-output cover rows for a k-input LUT (used by the BLIF
/// writer and by the logic-simulation activity estimator).
std::vector<std::string> random_cover(std::size_t k, Rng& rng) {
  const std::size_t rows = 1 + rng.uniform_int(3);
  std::vector<std::string> cover;
  cover.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::string row(k, '-');
    for (auto& ch : row) {
      const auto pick = rng.uniform_int(3);
      ch = pick == 0 ? '0' : (pick == 1 ? '1' : '-');
    }
    cover.push_back(row + " 1");
  }
  return cover;
}

}  // namespace

Netlist generate_netlist(const SynthSpec& spec) {
  if (spec.n_luts == 0 || spec.n_inputs == 0 || spec.lut_inputs == 0) {
    throw std::invalid_argument("generate_netlist: empty spec");
  }
  if (spec.n_latches > spec.n_luts) {
    throw std::invalid_argument("generate_netlist: more latches than LUTs");
  }
  Rng rng = Rng::from_string(spec.name);
  Netlist nl(spec.name);

  // Primary inputs and latch outputs form the initial source pool.
  std::vector<NetId> pool;
  pool.reserve(spec.n_inputs + spec.n_latches + spec.n_luts);
  for (std::size_t i = 0; i < spec.n_inputs; ++i) {
    const NetId n = nl.add_net("pi" + std::to_string(i));
    nl.add_input("in:pi" + std::to_string(i), n);
    pool.push_back(n);
  }
  std::vector<NetId> latch_q;
  for (std::size_t i = 0; i < spec.n_latches; ++i) {
    const NetId q = nl.add_net("q" + std::to_string(i));
    latch_q.push_back(q);
    pool.push_back(q);
  }

  const std::size_t window = std::max<std::size_t>(
      8, static_cast<std::size_t>(
             spec.locality * std::sqrt(static_cast<double>(spec.n_luts))));

  std::vector<NetId> lut_out;
  lut_out.reserve(spec.n_luts);
  std::vector<NetId> ins;
  for (std::size_t j = 0; j < spec.n_luts; ++j) {
    // Fan-in count: mostly K, some narrower LUTs as real mappers produce.
    std::size_t k = spec.lut_inputs;
    if (k > 1 && rng.chance(0.30)) --k;
    if (k > 1 && rng.chance(0.10)) --k;
    k = std::min(k, pool.size());

    ins.clear();
    std::size_t guard = 0;
    while (ins.size() < k && guard++ < 200) {
      NetId pick;
      if (rng.chance(0.02)) {
        // Hub nets: control-like signals (resets, enables, selects) fan
        // out to a large share of the circuit in real designs.
        const std::size_t hubs = std::min<std::size_t>(pool.size(), 12);
        pick = pool[rng.uniform_int(hubs)];
      } else if (rng.chance(spec.global_edge_prob) || pool.size() <= window) {
        pick = pool[rng.uniform_int(pool.size())];
      } else {
        const std::size_t lo = pool.size() - window;
        pick = pool[lo + rng.uniform_int(window)];
      }
      if (std::find(ins.begin(), ins.end(), pick) == ins.end()) {
        ins.push_back(pick);
      }
    }
    const NetId out = nl.add_net("n" + std::to_string(j));
    nl.add_lut("lut" + std::to_string(j), ins, out, random_cover(ins.size(), rng));
    lut_out.push_back(out);
    pool.push_back(out);
  }

  // Latch D inputs: distinct-ish LUT outputs (duplicates allowed — two FFs
  // may legally register the same signal).
  for (std::size_t i = 0; i < spec.n_latches; ++i) {
    const NetId d = lut_out[rng.uniform_int(lut_out.size())];
    nl.add_latch("ff" + std::to_string(i), d, latch_q[i]);
  }

  // Primary outputs: prefer sink-less nets (keeps the circuit lean), then
  // fill with random late LUT outputs.
  std::vector<NetId> po;
  for (NetId n : lut_out) {
    if (po.size() >= spec.n_outputs) break;
    if (nl.net(n).sinks.empty()) po.push_back(n);
  }
  std::size_t guard = 0;
  while (po.size() < spec.n_outputs && guard++ < 50 * spec.n_outputs) {
    const NetId n = lut_out[lut_out.size() - 1 - rng.uniform_int(
                    std::min(lut_out.size(), spec.n_outputs * 4))];
    if (std::find(po.begin(), po.end(), n) == po.end()) po.push_back(n);
  }
  for (std::size_t i = 0; i < po.size(); ++i) {
    nl.add_output("po" + std::to_string(i), po[i]);
  }

  nl.validate();
  return nl;
}

}  // namespace nemfpga
