// Netlist delta: the edit language of the incremental ECO flow. A delta
// is an ordered list of connection-granularity and physical ops; the ECO
// engine (src/flow/eco.hpp) applies them transactionally — either every
// op validates and the whole delta lands, or the state is left untouched.
//
// Net-level edits decompose into pin ops: a net "appears" in the routed
// view when it gains its first external sink and "disappears" when it
// loses its last one, and resizing is a sequence of connects/disconnects.
// Physical ops (move/swap) address packed-block indices — the placeable
// units of the Packing — not netlist blocks; the netlist layer stores
// them opaquely.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace nemfpga {

enum class EcoOpKind {
  kConnect,     ///< Add net `net` as a new input pin of LUT `block`.
  kDisconnect,  ///< Remove input pin `pin` of LUT `block`.
  kRetarget,    ///< Repoint input pin `pin` of `block` at net `net`.
  kMoveBlock,   ///< Move packed block `packed_a` to (dest_x, dest_y, dest_sub).
  kSwapBlocks,  ///< Swap packed blocks `packed_a` and `packed_b`.
};

struct EcoOp {
  EcoOpKind kind = EcoOpKind::kConnect;
  BlockId block = kInvalidId;    ///< Sink block for connection ops.
  std::size_t pin = 0;           ///< Input-pin slot for disconnect/retarget.
  NetId net = kInvalidId;        ///< Net for connect/retarget.
  std::size_t packed_a = kInvalidId;  ///< Packed block for move/swap.
  std::size_t packed_b = kInvalidId;  ///< Swap partner.
  std::size_t dest_x = 0, dest_y = 0, dest_sub = 0;  ///< Move target site.

  static EcoOp connect(BlockId b, NetId n) {
    EcoOp op;
    op.kind = EcoOpKind::kConnect;
    op.block = b;
    op.net = n;
    return op;
  }
  static EcoOp disconnect(BlockId b, std::size_t pin) {
    EcoOp op;
    op.kind = EcoOpKind::kDisconnect;
    op.block = b;
    op.pin = pin;
    return op;
  }
  static EcoOp retarget(BlockId b, std::size_t pin, NetId n) {
    EcoOp op;
    op.kind = EcoOpKind::kRetarget;
    op.block = b;
    op.pin = pin;
    op.net = n;
    return op;
  }
  static EcoOp move_block(std::size_t packed, std::size_t x, std::size_t y,
                          std::size_t sub) {
    EcoOp op;
    op.kind = EcoOpKind::kMoveBlock;
    op.packed_a = packed;
    op.dest_x = x;
    op.dest_y = y;
    op.dest_sub = sub;
    return op;
  }
  static EcoOp swap_blocks(std::size_t a, std::size_t b) {
    EcoOp op;
    op.kind = EcoOpKind::kSwapBlocks;
    op.packed_a = a;
    op.packed_b = b;
    return op;
  }

  std::string describe() const;
};

struct NetlistDelta {
  std::vector<EcoOp> ops;

  bool empty() const { return ops.empty(); }
  std::string describe() const;
};

}  // namespace nemfpga
