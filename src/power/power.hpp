// FPGA power model after [Jamieson 09] (paper Sec 3.3): dynamic power from
// per-node switched capacitance at the application's operating frequency
// (taken as 1/critical-path) with a switching-activity factor, and leakage
// from per-block static power summed over the whole fabric. Reported with
// the component breakdown of Fig 9.
#pragma once

#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"

namespace nemfpga {

struct PowerBreakdown {
  // Dynamic components [W] (Fig 9 left).
  double dyn_wires = 0.0;            ///< Metal + switch loading caps.
  double dyn_routing_buffers = 0.0;  ///< Wire + LB input/output buffers.
  double dyn_luts = 0.0;             ///< LUT internals + local crossbar.
  double dyn_clocking = 0.0;         ///< Clock tree + FF clock pins.

  // Leakage components [W] (Fig 9 right).
  double leak_routing_buffers = 0.0;
  double leak_routing_sram = 0.0;
  double leak_pass_transistors = 0.0;  ///< Routing switch leakage (0 for NEM).
  double leak_luts = 0.0;              ///< LUT config SRAM + logic + FFs.

  double dynamic_total() const {
    return dyn_wires + dyn_routing_buffers + dyn_luts + dyn_clocking;
  }
  double leakage_total() const {
    return leak_routing_buffers + leak_routing_sram + leak_pass_transistors +
           leak_luts;
  }
  double total() const { return dynamic_total() + leakage_total(); }
};

struct PowerOptions {
  double activity = 0.15;    ///< Mean switching activity per net per cycle.
  double frequency = 0.0;    ///< [Hz]; 0 = derive from critical path.
  /// Optional simulated per-net activities (indexed by NetId, e.g. from
  /// estimate_activity()); when set, routing and LUT dynamic power use
  /// these instead of the flat `activity`.
  const std::vector<double>* net_activity = nullptr;
};

/// Power of the routed design under the given electrical view.
PowerBreakdown analyze_power(const Netlist& nl, const Packing& pack,
                             const Placement& pl, const RrGraphView& g,
                             const RoutingResult& routing,
                             const ElectricalView& view,
                             const TimingResult& timing,
                             const PowerOptions& opt = {});

}  // namespace nemfpga
