#include "power/power.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace nemfpga {

PowerBreakdown analyze_power(const Netlist& nl, const Packing& pack,
                             const Placement& pl, const RrGraphView& g,
                             const RoutingResult& routing,
                             const ElectricalView& view,
                             const TimingResult& timing,
                             const PowerOptions& opt) {
  if (!routing.success) {
    throw std::invalid_argument("analyze_power: routing unsuccessful");
  }
  const double f = opt.frequency > 0.0
                       ? opt.frequency
                       : (timing.critical_path > 0.0
                              ? 1.0 / timing.critical_path
                              : 0.0);
  const double vdd = view.tech.cmos.vdd;
  const double v2f = vdd * vdd * f;
  const double a = opt.activity;

  PowerBreakdown p;

  // --- Dynamic: routed wires and their drivers ---------------------------
  const double wire_cap_per_tile = view.tech.wire.c_per_m * view.tile_pitch;
  const double taps_per_wire_tile =
      static_cast<double>(view.composition.cb_switches) /
      (2.0 * static_cast<double>(view.arch.W));
  // Activity of one routed net: simulated per-net value when available
  // (clamped to a sane floor), otherwise the flat default.
  auto net_act = [&](std::size_t placed_net) {
    if (!opt.net_activity) return a;
    const NetId n = pl.nets[placed_net].net;
    if (n >= opt.net_activity->size()) return a;
    return std::max(0.005, (*opt.net_activity)[n]);
  };

  std::unordered_set<RrNodeId> counted;
  for (std::size_t i = 0; i < routing.trees.size(); ++i) {
    counted.clear();
    const double an = net_act(i);
    for (const auto& [from, to] : routing.trees[i].edges) {
      (void)from;
      if (!counted.insert(to).second) continue;
      const RrNode& n = g.node(to);
      switch (n.type) {
        case RrType::kChanX:
        case RrType::kChanY: {
          const double len = static_cast<double>(n.length);
          const double c_metal = wire_cap_per_tile * len;
          const double c_taps =
              (taps_per_wire_tile * len + view.arch.fs) * view.sw.c_off_load;
          p.dyn_wires += an * (c_metal + c_taps) * v2f;
          // The wire's driver buffer switches with it (internal caps only;
          // the load was counted as wire/tap capacitance above).
          p.dyn_routing_buffers +=
              an * view.wire_buffer.switching_energy(0.0) * f;
          break;
        }
        case RrType::kIpin:
          if (view.lb_buffers_present) {
            p.dyn_routing_buffers +=
                an * view.lb_input_buffer.switching_energy(0.0) * f;
          }
          p.dyn_wires += an * view.c_lb_input_path * v2f;
          break;
        case RrType::kOpin:
          if (view.lb_buffers_present) {
            p.dyn_routing_buffers +=
                an * view.lb_output_buffer.switching_energy(0.0) * f;
          }
          p.dyn_wires += an * view.c_lb_output_path * v2f;
          break;
        default:
          break;
      }
    }
  }

  // --- Dynamic: logic and clock ------------------------------------------
  const CmosTech& t = view.tech.cmos;
  // LUT internal switched capacitance: mux tree + output driver + the
  // local-crossbar hop feeding it.
  const double c_lut_internal =
      (1u << view.arch.K) * 4.0 * t.drain_cap(t.w_min) +
      150.0 * t.min_inverter_input_cap();
  // Glitching multiplies switching inside combinational logic well above
  // the net activity on (registered) routing [Jamieson 09].
  constexpr double kGlitchFactor = 1.8;
  if (opt.net_activity) {
    // Per-LUT: its internals switch with its output net.
    double act_sum = 0.0;
    for (BlockId b = 0; b < nl.block_count(); ++b) {
      const Block& blk = nl.block(b);
      if (blk.type != BlockType::kLut) continue;
      act_sum += (blk.output < opt.net_activity->size())
                     ? std::max(0.005, (*opt.net_activity)[blk.output])
                     : a;
    }
    p.dyn_luts = kGlitchFactor * act_sum *
                 (c_lut_internal + 0.3 * view.c_lb_input_path) * v2f;
  } else {
    p.dyn_luts = kGlitchFactor * a * static_cast<double>(nl.lut_count()) *
                 (c_lut_internal + 0.3 * view.c_lb_input_path) * v2f;
  }

  // Clock: every FF clock pin toggles every cycle (activity 1, two edges
  // handled by C V^2 f), plus a clock-spine wire per occupied tile.
  const double c_ff_clk = 12.0 * t.gate_cap(t.w_min);  // pin + local buffer
  const double c_clk_spine =
      wire_cap_per_tile * 6.0;  // H-tree ribs, spine and grid share per tile
  const double occupied_tiles = static_cast<double>(pack.clusters.size());
  p.dyn_clocking = (static_cast<double>(nl.latch_count()) * c_ff_clk +
                    occupied_tiles * c_clk_spine) *
                   vdd * vdd * f;

  // --- Leakage over the whole fabric -------------------------------------
  const double n_tiles = static_cast<double>(pl.nx * pl.ny);
  const auto& comp = view.composition;

  double buf_leak_per_tile =
      static_cast<double>(comp.wire_buffers) * view.wire_buffer.leakage_power();
  if (view.lb_buffers_present) {
    buf_leak_per_tile +=
        static_cast<double>(comp.lb_input_buffers) *
            view.lb_input_buffer.leakage_power() +
        static_cast<double>(comp.lb_output_buffers) *
            view.lb_output_buffer.leakage_power();
  }
  p.leak_routing_buffers = n_tiles * buf_leak_per_tile;

  // Configuration storage and switch off-state leakage follow the view's
  // backend figures: SRAM cells leak in volatile (CMOS) fabrics, NEM
  // relays store state mechanically and leak nothing, and resistive
  // switches leak through their finite HRS off-resistance.
  p.leak_routing_sram = n_tiles *
                        static_cast<double>(comp.routing_sram_bits) *
                        view.config_leak_per_bit;
  p.leak_pass_transistors = n_tiles *
                            static_cast<double>(comp.total_routing_switches()) *
                            view.sw.leak_per_switch * vdd * 0.5;

  const double lut_leak_per_tile =
      static_cast<double>(comp.lut_sram_bits) * view.tech.sram.leakage_power +
      static_cast<double>(comp.luts) * 22.0 * t.min_inverter_leakage() +
      static_cast<double>(comp.flip_flops) * 12.0 * t.min_inverter_leakage();
  p.leak_luts = n_tiles * lut_leak_per_tile;

  return p;
}

}  // namespace nemfpga
