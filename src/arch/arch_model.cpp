#include "arch/arch_model.hpp"

#include <algorithm>
#include <cmath>

namespace nemfpga {
namespace {

/// Two-level mux decomposition: a fan-in-n mux costs ~n + 2*sqrt(n) pass
/// transistors and 2*ceil(sqrt(n)) one-hot select SRAM bits.
struct MuxCost {
  std::size_t pass_transistors = 0;
  std::size_t sram_bits = 0;
};

MuxCost mux_cost(std::size_t fanin) {
  if (fanin <= 1) return {fanin, 0};
  const auto level = static_cast<std::size_t>(std::ceil(std::sqrt(fanin)));
  return {fanin + 2 * level, 2 * level};
}

}  // namespace

TileComposition tile_composition(const ArchParams& arch) {
  TileComposition c;
  c.luts = arch.N;
  c.flip_flops = arch.N;
  c.lut_sram_bits = arch.N * (1u << arch.K);

  // LB input crossbar: every LUT input pin selects among all LB inputs and
  // all N feedback outputs (full crossbar, Fig 7b).
  const std::size_t xbar_sources = arch.lb_inputs() + arch.N;
  const std::size_t xbar_muxes = arch.N * arch.K;
  const MuxCost xmux = mux_cost(xbar_sources);
  c.crossbar_switches = xbar_muxes * xbar_sources;
  std::size_t sram = xbar_muxes * xmux.sram_bits;

  // Connection blocks: each LB input pin muxes Fcin*W tracks.
  const MuxCost cbmux = mux_cost(arch.fc_in_tracks());
  c.cb_switches = arch.lb_inputs() * arch.fc_in_tracks();
  sram += arch.lb_inputs() * cbmux.sram_bits;

  // Switch boxes / wire drivers: 2*W/L segment wires start in each tile
  // (one horizontal + one vertical channel per tile); each start point has
  // a routing mux fed by Fs incoming wires plus the LB outputs that can
  // reach it (N * Fcout * L distributed over the wire's span).
  const std::size_t wire_starts =
      std::max<std::size_t>(1, 2 * arch.W / arch.L);
  const double opin_fanin = static_cast<double>(arch.N) * arch.fc_out *
                            static_cast<double>(arch.L);
  const std::size_t sb_fanin =
      arch.fs + static_cast<std::size_t>(opin_fanin + 0.5);
  const MuxCost sbmux = mux_cost(sb_fanin);
  c.sb_switches = wire_starts * sb_fanin;
  sram += wire_starts * sbmux.sram_bits;

  c.routing_sram_bits = sram;
  c.lb_input_buffers = arch.lb_inputs();
  c.lb_output_buffers = arch.lb_outputs();
  c.wire_buffers = wire_starts;
  return c;
}

TileArea tile_area(const TileComposition& comp,
                   const SwitchAreaPolicy& policy,
                   const BufferAreas& buffers, const AreaCosts& costs) {
  TileArea a;
  const double mw = costs.mwta_area;

  const double lut_mwta =
      static_cast<double>(comp.lut_sram_bits) * costs.lut_per_input_exp +
      static_cast<double>(comp.luts) * costs.lut_overhead +
      static_cast<double>(comp.flip_flops) * costs.flip_flop;
  a.logic = lut_mwta * mw;

  const double switch_mwta =
      static_cast<double>(comp.crossbar_switches + comp.cb_switches) *
          costs.pass_transistor_local +
      static_cast<double>(comp.sb_switches) * costs.pass_transistor_routing;
  const double sram_mwta =
      static_cast<double>(comp.routing_sram_bits) * costs.sram_bit;

  a.buffers = (static_cast<double>(comp.lb_input_buffers) * buffers.lb_input +
               static_cast<double>(comp.lb_output_buffers) * buffers.lb_output +
               static_cast<double>(comp.wire_buffers) * buffers.wire) *
              mw;

  a.routing_switches = policy.switch_mwta_factor * switch_mwta * mw;
  a.routing_sram = policy.config_bits_in_plane ? sram_mwta * mw : 0.0;
  // Switch cells in a stacked BEOL layer (relays, RRAM dots) compete with
  // the CMOS plane for the footprint: the stack cannot be smaller than
  // either plane.
  a.relay_layer = static_cast<double>(comp.total_routing_switches()) *
                  policy.stacked_cell_area;
  a.cmos_plane = a.logic + a.routing_switches + a.routing_sram + a.buffers;
  a.footprint = std::max(a.cmos_plane, a.relay_layer);
  return a;
}

TileArea tile_area(const TileComposition& comp, RoutingFabric fabric,
                   const BufferAreas& buffers, const AreaCosts& costs) {
  SwitchAreaPolicy policy;
  if (fabric == RoutingFabric::kCmosPassTransistor) {
    policy = {1.0, true, 0.0};
  } else {
    // Relays replace both the switch and its SRAM cell; they live in the
    // BEOL layer above the CMOS plane.
    policy = {0.0, false, costs.relay_cell_area};
  }
  return tile_area(comp, policy, buffers, costs);
}

double tile_pitch(const TileArea& area) { return std::sqrt(area.footprint); }

}  // namespace nemfpga
