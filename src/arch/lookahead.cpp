#include "arch/lookahead.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <utility>

#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

int node_class(const RrNode& n) {
  switch (n.type) {
    case RrType::kChanX:
      return n.increasing ? 0 : 1;
    case RrType::kChanY:
      return n.increasing ? 2 : 3;
    default:
      return 4;
  }
}

/// The tile a search "continues from" after paying for the node: a wire's
/// exit end (where its switch-box fanout lives), any other node's origin.
std::pair<int, int> ref_point(const RrNode& n) {
  if (n.type == RrType::kChanX && n.increasing) return {n.x_hi, n.y_lo};
  if (n.type == RrType::kChanY && n.increasing) return {n.x_lo, n.y_hi};
  return {n.x_lo, n.y_lo};
}

}  // namespace

std::int32_t RouteLookahead::node_key(const RrNode& n) const {
  const auto [rx, ry] = ref_point(n);
  return static_cast<std::int32_t>(
      node_class(n) * static_cast<std::int64_t>(span_) -
      static_cast<std::int64_t>(rx) * sy_ - ry);
}

RouteLookahead::RouteLookahead(const RrGraphView& real,
                               const DelayProfile* delay) {
  const auto t0 = std::chrono::steady_clock::now();
  const int nx = static_cast<int>(real.nx());
  const int ny = static_cast<int>(real.ny());
  off_x_ = nx + 1;
  off_y_ = ny + 1;
  const int sx = 2 * off_x_ + 1;
  sy_ = 2 * off_y_ + 1;
  const std::size_t span = static_cast<std::size_t>(sx) * sy_;
  span_ = span;

  // Distances are measured on a thin canonical graph instead of the real
  // one: W = 2L covers every (direction, stagger-phase) pair exactly once
  // — all wires starting at a given channel position share identical
  // geometry (the phase is position-determined) and every wire end has
  // the same three switch-box moves at any width, so base-cost distances
  // are track-collapsible. With fc = 1.0 the thin pin connectivity is a
  // superset of any real fc pattern, hence every real-graph path maps to
  // an equal-cost thin path: thin distance <= real distance, which keeps
  // the table admissible while making the build W-independent and cheap
  // enough to run once per channel-width probe.
  ArchParams thin_arch = real.arch();
  thin_arch.W = 2 * std::max<std::size_t>(1, thin_arch.L);
  thin_arch.fc_in = 1.0;
  thin_arch.fc_out = 1.0;
  // Full candidate fanout: at border positions the "wires starting here"
  // sets mix full wires with clipped stubs, so a single Wilton-preferred
  // pick (or an fc-capped pin subset) is not geometry-complete and the
  // thin graph could miss a cheap stub the real W happens to select.
  // Dense fanout makes thin connectivity a superset of every real pick.
  thin_arch.dense_fanout = true;
  const RrGraph g(thin_arch, real.nx(), real.ny());
  const std::size_t n = g.node_count();

  // Thin-graph node keys (the same folding) for the distance fold below.
  std::vector<std::int32_t> thin_key(n);
  for (RrNodeId i = 0; i < n; ++i) thin_key[i] = node_key(g.node(i));

  // Reverse CSR of the thin graph, for backward Dijkstra from each sample
  // sink.
  std::vector<std::uint32_t> roff(n + 1, 0);
  for (RrNodeId u = 0; u < n; ++u) {
    for (const RrEdge& e : g.edges(u)) ++roff[e.to + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) roff[i] += roff[i - 1];
  std::vector<RrNodeId> rpred(g.edge_count());
  {
    std::vector<std::uint32_t> fill(roff.begin(), roff.end() - 1);
    for (RrNodeId u = 0; u < n; ++u) {
      for (const RrEdge& e : g.edges(u)) rpred[fill[e.to]++] = u;
    }
  }

  // Exhaustive target sampling: one backward Dijkstra per sink-bearing
  // tile (logic and IO rows alike). The folded table is then the exact
  // per-offset minimum over every realizable (node, target) pair — a
  // true lower bound by construction, with no sampled-context gaps (a
  // sparse 9-sample fold misses the cheaper border contexts: clipped
  // stub wires cost base 1/tile where interior hops quantize to L, and
  // the IO rows at 0 and n+1 are never sampled at all, both of which
  // showed up as off-by-one admissibility violations). The thin graph
  // keeps this cheap: O(tiles) Dijkstras on an O(tiles * L)-node graph,
  // in parallel, independent of W — and the finished table is shared
  // across every channel-width probe (RouteOptions::lookahead).
  std::vector<std::pair<int, int>> samples;
  for (int xi = 0; xi <= nx + 1; ++xi) {
    for (int yi = 0; yi <= ny + 1; ++yi) {
      const bool border_x = (xi == 0 || xi == nx + 1);
      const bool border_y = (yi == 0 || yi == ny + 1);
      if (border_x && border_y) continue;  // empty corner cells
      if (g.site(xi, yi).sink != kNoRrNode) samples.emplace_back(xi, yi);
    }
  }

  // One backward Dijkstra per sample with the given per-node entering
  // costs, folded into a per-class offset table. dist[u] is the remaining
  // cost *after* paying for u, so the relaxation of reverse edge
  // (u -> pred) adds cost(u). The base table and the delay table run the
  // identical machinery over different weights; `chamfer_step` is the
  // per-tile increment of the unobserved-cell fill (1 base-cost unit for
  // the base table; 0 for the delay table, where any positive step could
  // only raise an extrapolated cell above a true remaining delay), and
  // `manhattan_fallback` selects the degenerate-class filler (Manhattan
  // for base cost, 0 — trivially a lower bound — for delay).
  auto build_table = [&](const std::vector<double>& cost, float chamfer_step,
                         bool manhattan_fallback) {
    auto sample_table = [&](std::size_t si) {
      const auto [tx, ty] = samples[si];
      const RrNodeId sink = g.site(tx, ty).sink;
      std::vector<double> dist(n, std::numeric_limits<double>::infinity());
      using Q = std::pair<double, RrNodeId>;
      std::priority_queue<Q, std::vector<Q>, std::greater<>> heap;
      dist[sink] = 0.0;
      heap.push({0.0, sink});
      while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d > dist[u]) continue;
        const double du = d + cost[u];
        for (std::uint32_t k = roff[u]; k < roff[u + 1]; ++k) {
          const RrNodeId p = rpred[k];
          if (du < dist[p]) {
            dist[p] = du;
            heap.push({du, p});
          }
        }
      }
      std::vector<float> tab(kClasses * span, kInf);
      const std::int32_t tkey = target_key(tx, ty);
      for (RrNodeId u = 0; u < n; ++u) {
        if (!std::isfinite(dist[u])) continue;
        // Round toward zero so the float table never exceeds the true
        // distance (admissibility survives the narrowing).
        float f = static_cast<float>(dist[u]);
        if (static_cast<double>(f) > dist[u]) f = std::nextafterf(f, 0.0f);
        float& cell = tab[static_cast<std::size_t>(thin_key[u] + tkey)];
        cell = std::min(cell, f);
      }
      return tab;
    };
    // Deterministic at any thread count: the per-cell minimum over
    // samples is order-independent, and each sample table is pure.
    const auto tables = parallel_map(samples.size(), sample_table);
    std::vector<float> out(kClasses * span, kInf);
    for (const auto& tab : tables) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = std::min(out[i], tab[i]);
      }
    }

    // Fill offsets no (node, target) pair realizes by a two-pass L1
    // chamfer that only writes unobserved cells. With exhaustive target
    // sampling such offsets can never be queried at runtime — every real
    // (node class, ref point) exists in the thin graph too, and every
    // routed sink lives on a sampled tile — so the fill is a smooth
    // extrapolation for safety, not part of the admissibility argument.
    std::vector<char> observed(out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      observed[i] = out[i] < kInf;
    }
    for (int c = 0; c < kClasses; ++c) {
      float* t = out.data() + c * span;
      const char* obs = observed.data() + c * span;
      auto at = [&](int dx, int dy) -> float& {
        return t[static_cast<std::size_t>(dx) * sy_ + dy];
      };
      for (int dx = 0; dx < sx; ++dx) {
        for (int dy = 0; dy < sy_; ++dy) {
          if (obs[static_cast<std::size_t>(dx) * sy_ + dy]) continue;
          float v = at(dx, dy);
          if (dx > 0) v = std::min(v, at(dx - 1, dy) + chamfer_step);
          if (dy > 0) v = std::min(v, at(dx, dy - 1) + chamfer_step);
          at(dx, dy) = v;
        }
      }
      for (int dx = sx - 1; dx >= 0; --dx) {
        for (int dy = sy_ - 1; dy >= 0; --dy) {
          if (obs[static_cast<std::size_t>(dx) * sy_ + dy]) continue;
          float v = at(dx, dy);
          if (dx + 1 < sx) v = std::min(v, at(dx + 1, dy) + chamfer_step);
          if (dy + 1 < sy_) v = std::min(v, at(dx, dy + 1) + chamfer_step);
          at(dx, dy) = v;
        }
      }
    }
    // A class with no nodes at all (degenerate fabrics) falls back to
    // plain Manhattan distance (base) or zero (delay).
    for (int c = 0; c < kClasses; ++c) {
      float* t = out.data() + c * span;
      for (int dx = 0; dx < sx; ++dx) {
        for (int dy = 0; dy < sy_; ++dy) {
          float& v = t[static_cast<std::size_t>(dx) * sy_ + dy];
          if (v == kInf) {
            v = manhattan_fallback
                    ? static_cast<float>(std::abs(dx - off_x_) +
                                         std::abs(dy - off_y_))
                    : 0.0f;
          }
        }
      }
    }
    return out;
  };

  std::vector<double> node_cost(n);
  for (RrNodeId i = 0; i < n; ++i) node_cost[i] = route_base_cost(g.node(i));
  table_ = build_table(node_cost, 1.0f, /*manhattan_fallback=*/true);
  if (delay) {
    for (RrNodeId i = 0; i < n; ++i) {
      node_cost[i] = route_delay_cost(g.node(i), *delay);
    }
    delay_table_ = build_table(node_cost, 0.0f, /*manhattan_fallback=*/false);
  }

  build_s_ = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
}

}  // namespace nemfpga
