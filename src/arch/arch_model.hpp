// Tile composition and footprint-area model.
//
// The paper drew full tile layouts in a commercial 90 nm process and scaled
// to 22 nm [Chen 10b]; we count transistors instead (the VPR approach:
// minimum-width transistor areas, MWTA) and convert with a per-node MWTA
// area constant. The CMOS-NEM variant moves every programmable routing
// switch and its configuration SRAM into the relay layer stacked between
// metal 3 and metal 5; the remaining footprint is then the larger of the
// remaining CMOS area and the relay-layer area (the stack cannot be
// smaller than either plane).
#pragma once

#include "arch/params.hpp"
#include "device/cmos.hpp"
#include "device/switch_tech.hpp"

namespace nemfpga {

/// Programmable-switch and SRAM-bit counts for one FPGA tile.
struct TileComposition {
  // Logic.
  std::size_t luts = 0;
  std::size_t flip_flops = 0;
  // Programmable switch points (pass transistors or relays).
  std::size_t crossbar_switches = 0;  ///< LB-internal input crossbar.
  std::size_t cb_switches = 0;        ///< Connection-block input muxes.
  std::size_t sb_switches = 0;        ///< Switch-box / wire-driver muxes.
  // Configuration SRAM bits controlling those switches (CMOS-only).
  std::size_t routing_sram_bits = 0;
  // LUT-internal configuration bits (stay in CMOS in both variants).
  std::size_t lut_sram_bits = 0;
  // Buffers.
  std::size_t lb_input_buffers = 0;
  std::size_t lb_output_buffers = 0;
  std::size_t wire_buffers = 0;  ///< Segment-wire drivers in this tile.

  std::size_t total_routing_switches() const {
    return crossbar_switches + cb_switches + sb_switches;
  }
};

/// Derive the per-tile composition from the architecture parameters.
TileComposition tile_composition(const ArchParams& arch);

/// Per-instance MWTA costs of the non-buffer components.
struct AreaCosts {
  double sram_bit = 5.0;            ///< 6T cell amortized with periphery.
  double lut_per_input_exp = 40.0;  ///< MWTA per LUT SRAM bit incl. mux tree,
                                    ///< input buffers, decoder and the BLE's
                                    ///< share of intra-cluster wiring.
  double lut_overhead = 250.0;      ///< Output stage, carry/cmux, drivers.
  double flip_flop = 180.0;         ///< DFF + clock gating + set/reset.
  double pass_transistor_local = 1.0;   ///< Min-width crossbar/CB switch.
  double pass_transistor_routing = 4.0; ///< Sized SB/wire-mux switch.
  /// MWTA -> m^2 at 22 nm (60 lambda^2, lambda = F/2).
  double mwta_area = 60.0 * 11e-9 * 11e-9;
  /// Relay-layer cell footprint per relay [m^2]: Fig 11 beam (275 x 40 nm)
  /// plus anchor, gate/drain contacts and programming-line pitch share.
  /// Calibrated so the stacked relay plane reproduces the paper's layout
  /// result (2.1x tile reduction with the buffer technique, Sec 3.4).
  double relay_cell_area = 0.487e-6 * 0.10e-6;
};

/// Buffer areas [MWTA per instance], computed by the caller from the sized
/// chains (they depend on the electrical loads, which arch/ does not know).
struct BufferAreas {
  double lb_input = 0.0;
  double lb_output = 0.0;
  double wire = 0.0;
};

struct TileArea {
  double logic = 0.0;           ///< [m^2] LUTs + FFs + LUT config SRAM.
  double routing_switches = 0.0;///< [m^2] crossbar + CB + SB switch area.
  double routing_sram = 0.0;    ///< [m^2] routing configuration SRAM.
  double buffers = 0.0;         ///< [m^2] all three buffer classes.
  double relay_layer = 0.0;     ///< [m^2] stacked relay plane (NEM only).
  /// CMOS plane area (logic + buffers [+ switches + SRAM if CMOS fabric]).
  double cmos_plane = 0.0;
  /// Tile footprint: max(cmos_plane, relay_layer).
  double footprint = 0.0;
};

/// Area of one tile under a switch-technology area policy: the in-plane
/// switch MWTA scales with policy.switch_mwta_factor, routing-config SRAM
/// stays in the plane only when policy.config_bits_in_plane, and a
/// stacked (BEOL) layer of policy.stacked_cell_area per switch competes
/// with the CMOS plane for the footprint.
TileArea tile_area(const TileComposition& comp,
                   const SwitchAreaPolicy& policy,
                   const BufferAreas& buffers, const AreaCosts& costs = {});

/// Legacy two-fabric convenience: kCmosPassTransistor = {1.0, true, 0},
/// kNemRelay = {0.0, false, costs.relay_cell_area}.
TileArea tile_area(const TileComposition& comp, RoutingFabric fabric,
                   const BufferAreas& buffers, const AreaCosts& costs = {});

/// Physical tile edge length [m] for wire-load extraction: sqrt(footprint).
double tile_pitch(const TileArea& area);

}  // namespace nemfpga
