// Routing-resource graph for the island-style fabric (Fig 7): the directed
// graph of logic-block pins, connection-block switches, segmented channel
// wires and switch-box connections that the PathFinder router negotiates
// over. Structure follows VPR's unidirectional (single-driver) segmented
// routing: every wire has one driver mux at its start; OPINs and other
// wires connect only there, while IPIN taps exist at every tile a wire
// passes.
//
// Grid layout: logic blocks occupy (1..nx, 1..ny); the border cells hold IO
// pads. CHANX(j) is the horizontal channel between rows j and j+1
// (j = 0..ny); CHANY(i) is vertical between columns i and i+1 (i = 0..nx).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "arch/params.hpp"

namespace nemfpga {

using RrNodeId = std::uint32_t;
inline constexpr RrNodeId kNoRrNode = 0xffffffffu;

enum class RrType : std::uint8_t { kSource, kSink, kOpin, kIpin, kChanX, kChanY };

/// Switch kind on an edge — determines the electrical model applied by the
/// timing/power analyses (pass transistor vs NEM relay vs hard wire).
enum class RrSwitch : std::uint8_t {
  kInternal,    ///< SOURCE->OPIN / IPIN->SINK bookkeeping edges.
  kOpinToWire,  ///< LB output into a wire driver mux.
  kWireToWire,  ///< Switch-box connection into a wire driver mux.
  kWireToIpin,  ///< Connection-block tap into an LB input pin.
};

struct RrNode {
  RrType type = RrType::kSource;
  bool increasing = true;      ///< Wire direction (INC = +x / +y).
  std::uint8_t length = 0;     ///< Tiles spanned (wires only).
  std::uint16_t capacity = 1;
  std::uint16_t x_lo = 0, y_lo = 0, x_hi = 0, y_hi = 0;
  std::uint16_t track = 0;     ///< Wire track index, or pin index.
};

struct RrEdge {
  RrNodeId to = 0;
  RrSwitch sw = RrSwitch::kInternal;
};

/// A block site on the grid (LB or IO pad).
struct SiteIds {
  RrNodeId source = kNoRrNode;
  RrNodeId sink = kNoRrNode;
  /// Pooled pin nodes (one OPIN of capacity N, one IPIN of capacity I) —
  /// see build_sites() for the pin-equivalence rationale.
  std::vector<RrNodeId> opins;
  std::vector<RrNodeId> ipins;
  std::size_t pin_count_opin = 0;  ///< Physical output pins represented.
  std::size_t pin_count_ipin = 0;  ///< Physical input pins represented.
};

class RrGraph {
 public:
  /// Build the graph for an nx-by-ny logic grid with IO pads on the border.
  RrGraph(const ArchParams& arch, std::size_t nx, std::size_t ny);

  const ArchParams& arch() const { return arch_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

  std::size_t node_count() const { return nodes_.size(); }
  const RrNode& node(RrNodeId id) const { return nodes_[id]; }
  /// Out-edge span of a node (CSR slice). Defined inline — this is the
  /// innermost load of the router's relaxation loop.
  std::span<const RrEdge> edges(RrNodeId id) const {
    return {edges_.data() + edge_offsets_[id],
            edges_.data() + edge_offsets_[id + 1]};
  }
  std::size_t edge_count() const { return edges_.size(); }

  /// Prefetch hints for graph-walking hot loops: pull a node record (and
  /// optionally the head of its edge span) toward the cache a few
  /// iterations before it is dereferenced. No-ops where unsupported.
  void prefetch_node(RrNodeId id) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(nodes_.data() + id);
#else
    (void)id;
#endif
  }
  void prefetch_edges(RrNodeId id) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(edges_.data() + edge_offsets_[id]);
#else
    (void)id;
#endif
  }

  /// True if (x, y) is a logic-block site; border cells are IO sites and
  /// corners are empty.
  bool is_lb(std::size_t x, std::size_t y) const;
  bool is_io(std::size_t x, std::size_t y) const;

  /// Site lookup; throws for empty (corner) cells.
  const SiteIds& site(std::size_t x, std::size_t y) const;

  /// Total wire nodes (for channel-occupancy statistics).
  std::size_t wire_count() const { return wire_count_; }

  /// The wires a specific *physical* input pin of site (x, y) taps through
  /// its connection block (the per-pin Fcin pattern whose union feeds the
  /// pooled IPIN node). Used by the configuration compiler to assign each
  /// routed net to a concrete pin.
  std::vector<RrNodeId> ipin_tap_wires(std::size_t x, std::size_t y,
                                       std::size_t pin) const;

  /// The wire starts a specific physical output pin can drive (per-pin
  /// Fcout pattern whose union the pooled OPIN carries).
  std::vector<RrNodeId> opin_start_wires(std::size_t x, std::size_t y,
                                         std::size_t pin) const;

 private:
  void build_sites();
  void build_wires();
  void build_edges();

  ArchParams arch_;
  std::size_t nx_, ny_;
  std::vector<RrNode> nodes_;
  std::vector<RrEdge> edges_;          // CSR payload
  std::vector<std::uint32_t> edge_offsets_;  // CSR index (built last)
  std::vector<std::vector<RrEdge>> adj_;     // during construction
  std::vector<SiteIds> sites_;         // (nx+2)*(ny+2), row-major
  std::size_t wire_count_ = 0;

  // Wire lookup tables, valid after build_wires():
  //  cover_x_[j][t * span + (x-1)] = wire covering (track t, position x).
  std::vector<std::vector<RrNodeId>> cover_x_, cover_y_;

  std::size_t site_index(std::size_t x, std::size_t y) const;
  RrNodeId wire_at_x(std::size_t j, std::size_t track, std::size_t x) const;
  RrNodeId wire_at_y(std::size_t i, std::size_t track, std::size_t y) const;
  /// Wires starting (driver located) at the given position in a channel.
  std::vector<RrNodeId> wires_starting_x(std::size_t j, std::size_t x,
                                         bool increasing) const;
  std::vector<RrNodeId> wires_starting_y(std::size_t i, std::size_t y,
                                         bool increasing) const;
  void add_edge(RrNodeId from, RrNodeId to, RrSwitch sw);
  void finalize_csr();

 public:
  /// Bytes of resident graph storage (node records, CSR edge arrays, site
  /// tables, wire cover maps) — the quantity the implicit backend removes.
  std::size_t memory_bytes() const;
};

/// Which RR graph representation backs a routing run. The explicit graph
/// stores node records and CSR edge lists; the implicit graph computes
/// both from channel geometry on demand. Node ids, node records and edge
/// enumeration order are identical between the two by construction (a
/// differential test sweeps them id-by-id), so routing results are
/// bit-identical either way; only memory and per-expansion cost differ.
enum class RrBackend : std::uint8_t { kExplicit, kImplicit };

#if defined(NF_RR_BACKEND_IMPLICIT)
inline constexpr RrBackend kDefaultRrBackend = RrBackend::kImplicit;
#else
inline constexpr RrBackend kDefaultRrBackend = RrBackend::kExplicit;
#endif

/// Backend-neutral site record (RrGraphView::site). The fabric pools each
/// site's pins into one OPIN and one IPIN node, so unlike SiteIds this
/// carries plain ids, not vectors.
struct SiteRef {
  RrNodeId source = kNoRrNode;
  RrNodeId sink = kNoRrNode;
  RrNodeId opin = kNoRrNode;
  RrNodeId ipin = kNoRrNode;
  std::size_t pin_count_opin = 0;
  std::size_t pin_count_ipin = 0;
};

/// The implicit (coordinate-computed) RR graph: the same fabric as RrGraph
/// with no stored adjacency. A node id is a dense mixed-radix packing of
/// its coordinates — sites first in the explicit builder's y-major scan
/// order (4 nodes per site: SOURCE, SINK, pooled OPIN, pooled IPIN), then
/// CHANX channels j = 0..ny and CHANY channels i = 0..nx, each channel
/// holding the same per-track segment layout (a per-track prefix array
/// makes id <-> (channel, track, segment) invertible in O(log W)).
/// Neighbors are derived arithmetically from the segment class (stagger
/// phase), the arch's switch-box pattern (sb_turn_track — Wilton by
/// default) and the fc tap masks; edge
/// enumeration replays the explicit builder's append order exactly, so the
/// two backends are node/edge-set- AND edge-order-identical, which is what
/// keeps heap tie-breaking — and therefore routing — bit-identical.
///
/// Resident state is O(W + nx + ny) (prefix arrays + per-position tap
/// masks): ~3 orders of magnitude below the explicit CSR at real sizes
/// (route_perf --scale reports both).
class ImplicitRrGraph {
 public:
  ImplicitRrGraph(const ArchParams& arch, std::size_t nx, std::size_t ny);

  const ArchParams& arch() const { return arch_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

  std::size_t node_count() const { return node_count_; }
  std::size_t wire_count() const { return wire_count_; }
  /// Total directed edges; enumerated on first call and cached.
  std::size_t edge_count() const;

  /// Reconstruct the node record from the packed id (O(log W)).
  RrNode node(RrNodeId id) const;

  /// Append the out-edges of `id` in the explicit builder's exact order:
  /// wire nodes get their connection-box taps in site-scan order followed
  /// by switch-box straight / +rot / -rot moves; OPIN nodes get the
  /// first-seen union of the per-pin Fcout patterns.
  void append_edges(RrNodeId id, std::vector<RrEdge>& out) const;

  bool is_lb(std::size_t x, std::size_t y) const;
  bool is_io(std::size_t x, std::size_t y) const;
  /// Site lookup; throws for empty (corner) cells.
  SiteRef site(std::size_t x, std::size_t y) const;

  /// Per-physical-pin patterns (same values as RrGraph's; used by the
  /// configuration compiler through the view).
  std::vector<RrNodeId> ipin_tap_wires(std::size_t x, std::size_t y,
                                       std::size_t pin) const;
  std::vector<RrNodeId> opin_start_wires(std::size_t x, std::size_t y,
                                         std::size_t pin) const;

  /// Resident bytes of the derived tables (the whole graph state).
  std::size_t memory_bytes() const;

 private:
  // --- Packed-id layout ---------------------------------------------------
  std::size_t site_count() const { return site_count_; }
  std::size_t site_ordinal(std::size_t x, std::size_t y) const;
  void ordinal_to_xy(std::size_t ordinal, std::size_t& x,
                     std::size_t& y) const;
  RrNodeId site_base(std::size_t x, std::size_t y) const {
    return static_cast<RrNodeId>(site_ordinal(x, y) * 4);
  }

  // --- Segment geometry (per track t over a span-long channel) -----------
  std::size_t first_len(std::size_t t, std::size_t span) const;
  std::size_t n_segs(std::size_t t, std::size_t span) const;
  std::size_t seg_index(std::size_t t, std::size_t span,
                        std::size_t pos) const;
  void seg_bounds(std::size_t t, std::size_t span, std::size_t k,
                  std::size_t& lo, std::size_t& hi) const;
  /// Does the wire covering (t, pos) start (drive) at pos?
  bool is_start(std::size_t t, std::size_t span, std::size_t pos) const;

  RrNodeId wire_id_x(std::size_t j, std::size_t t, std::size_t k) const;
  RrNodeId wire_id_y(std::size_t i, std::size_t t, std::size_t k) const;
  RrNodeId wire_at_x(std::size_t j, std::size_t track, std::size_t x) const;
  RrNodeId wire_at_y(std::size_t i, std::size_t track, std::size_t y) const;
  void wires_starting_x(std::size_t j, std::size_t x, bool increasing,
                        std::vector<RrNodeId>& out) const;
  void wires_starting_y(std::size_t i, std::size_t y, bool increasing,
                        std::vector<RrNodeId>& out) const;

  /// Nearest-track pick among the starts at (chan, pos): scan
  /// distance 0, 1, ... preferring the lower track — the same winner as
  /// the explicit builder's first-minimum scan over an ascending
  /// candidate list.
  void connect_x(std::size_t j, std::size_t pos, bool increasing,
                 std::size_t target_track, std::vector<RrEdge>& out) const;
  void connect_y(std::size_t i, std::size_t pos, bool increasing,
                 std::size_t target_track, std::vector<RrEdge>& out) const;

  // --- Connection-box tap membership --------------------------------------
  bool lb_tap_bit(std::size_t side, std::size_t pos, std::size_t t) const;
  bool io_tap_bit(std::size_t pos, std::size_t t) const;
  void append_wire_edges(const RrNode& n, RrNodeId id,
                         std::vector<RrEdge>& out) const;
  void opin_union(std::size_t x, std::size_t y,
                  std::vector<RrNodeId>& out) const;

  ArchParams arch_;
  std::size_t nx_ = 0, ny_ = 0;
  std::size_t site_count_ = 0;
  std::size_t node_count_ = 0;
  std::size_t wire_count_ = 0;
  RrNodeId wire_base_ = 0;
  std::size_t sx_ = 0, sy_ = 0;  ///< Wires per CHANX / CHANY channel.
  std::vector<std::uint32_t> px_, py_;  ///< Per-track wire prefix (size W+1).
  // Tap-membership bitmasks over tracks, indexed by channel position
  // (the 0.37 * pos term gives every position its own pattern): LB sides
  // 0..3 (below/above/left/right) and the IO single-side pattern.
  std::size_t mask_words_ = 0;
  std::size_t max_span_ = 0;
  std::vector<std::uint64_t> lb_tap_, io_tap_;
  mutable std::atomic<std::size_t> edge_count_cache_{0};
};

/// Narrow backend-dispatch facade every RR consumer routes through (the
/// router, lookahead builder, overuse tracker, bitstream emitter and the
/// verify-layer oracles). A view is two pointers; it borrows the backend,
/// which must outlive it. Explicit-backend edge access returns the stored
/// CSR span untouched (zero overhead beyond one branch); implicit-backend
/// access materializes the edges into the caller's buffer.
class RrGraphView {
 public:
  RrGraphView(const RrGraph& g) : exp_(&g) {}                // NOLINT
  RrGraphView(const ImplicitRrGraph& g) : imp_(&g) {}        // NOLINT

  bool implicit() const { return imp_ != nullptr; }
  const RrGraph* explicit_graph() const { return exp_; }

  const ArchParams& arch() const {
    return exp_ ? exp_->arch() : imp_->arch();
  }
  std::size_t nx() const { return exp_ ? exp_->nx() : imp_->nx(); }
  std::size_t ny() const { return exp_ ? exp_->ny() : imp_->ny(); }
  std::size_t node_count() const {
    return exp_ ? exp_->node_count() : imp_->node_count();
  }
  std::size_t wire_count() const {
    return exp_ ? exp_->wire_count() : imp_->wire_count();
  }
  std::size_t edge_count() const {
    return exp_ ? exp_->edge_count() : imp_->edge_count();
  }
  std::size_t memory_bytes() const {
    return exp_ ? exp_->memory_bytes() : imp_->memory_bytes();
  }

  RrNode node(RrNodeId id) const {
    return exp_ ? exp_->node(id) : imp_->node(id);
  }

  /// Out-edges of `id`. Explicit backend: the stored CSR slice (buf is
  /// untouched). Implicit backend: computed into `buf` (cleared first).
  /// The span is valid until the next use of `buf`.
  std::span<const RrEdge> edges(RrNodeId id,
                                std::vector<RrEdge>& buf) const {
    if (exp_) return exp_->edges(id);
    buf.clear();
    imp_->append_edges(id, buf);
    return {buf.data(), buf.size()};
  }

  template <typename F>
  void for_each_edge(RrNodeId id, F&& f) const {
    if (exp_) {
      for (const RrEdge& e : exp_->edges(id)) f(e);
      return;
    }
    std::vector<RrEdge> buf;
    imp_->append_edges(id, buf);
    for (const RrEdge& e : buf) f(e);
  }

  bool is_lb(std::size_t x, std::size_t y) const {
    return exp_ ? exp_->is_lb(x, y) : imp_->is_lb(x, y);
  }
  bool is_io(std::size_t x, std::size_t y) const {
    return exp_ ? exp_->is_io(x, y) : imp_->is_io(x, y);
  }
  SiteRef site(std::size_t x, std::size_t y) const {
    if (imp_) return imp_->site(x, y);
    const SiteIds& s = exp_->site(x, y);
    return {s.source,         s.sink,
            s.opins[0],       s.ipins[0],
            s.pin_count_opin, s.pin_count_ipin};
  }

  std::vector<RrNodeId> ipin_tap_wires(std::size_t x, std::size_t y,
                                       std::size_t pin) const {
    return exp_ ? exp_->ipin_tap_wires(x, y, pin)
                : imp_->ipin_tap_wires(x, y, pin);
  }
  std::vector<RrNodeId> opin_start_wires(std::size_t x, std::size_t y,
                                         std::size_t pin) const {
    return exp_ ? exp_->opin_start_wires(x, y, pin)
                : imp_->opin_start_wires(x, y, pin);
  }

  /// Prefetch hints: meaningful for the stored backend, no-ops for the
  /// computed one (there is nothing resident to pull into cache).
  void prefetch_node(RrNodeId id) const {
    if (exp_) exp_->prefetch_node(id);
  }
  void prefetch_edges(RrNodeId id) const {
    if (exp_) exp_->prefetch_edges(id);
  }

 private:
  const RrGraph* exp_ = nullptr;
  const ImplicitRrGraph* imp_ = nullptr;
};

/// Smallest square logic grid that fits `n_lbs` logic blocks and whose
/// border provides at least `n_ios` pad slots.
std::pair<std::size_t, std::size_t> grid_size_for(const ArchParams& arch,
                                                  std::size_t n_lbs,
                                                  std::size_t n_ios);

}  // namespace nemfpga
