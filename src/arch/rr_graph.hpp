// Routing-resource graph for the island-style fabric (Fig 7): the directed
// graph of logic-block pins, connection-block switches, segmented channel
// wires and switch-box connections that the PathFinder router negotiates
// over. Structure follows VPR's unidirectional (single-driver) segmented
// routing: every wire has one driver mux at its start; OPINs and other
// wires connect only there, while IPIN taps exist at every tile a wire
// passes.
//
// Grid layout: logic blocks occupy (1..nx, 1..ny); the border cells hold IO
// pads. CHANX(j) is the horizontal channel between rows j and j+1
// (j = 0..ny); CHANY(i) is vertical between columns i and i+1 (i = 0..nx).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/params.hpp"

namespace nemfpga {

using RrNodeId = std::uint32_t;
inline constexpr RrNodeId kNoRrNode = 0xffffffffu;

enum class RrType : std::uint8_t { kSource, kSink, kOpin, kIpin, kChanX, kChanY };

/// Switch kind on an edge — determines the electrical model applied by the
/// timing/power analyses (pass transistor vs NEM relay vs hard wire).
enum class RrSwitch : std::uint8_t {
  kInternal,    ///< SOURCE->OPIN / IPIN->SINK bookkeeping edges.
  kOpinToWire,  ///< LB output into a wire driver mux.
  kWireToWire,  ///< Switch-box connection into a wire driver mux.
  kWireToIpin,  ///< Connection-block tap into an LB input pin.
};

struct RrNode {
  RrType type = RrType::kSource;
  bool increasing = true;      ///< Wire direction (INC = +x / +y).
  std::uint8_t length = 0;     ///< Tiles spanned (wires only).
  std::uint16_t capacity = 1;
  std::uint16_t x_lo = 0, y_lo = 0, x_hi = 0, y_hi = 0;
  std::uint16_t track = 0;     ///< Wire track index, or pin index.
};

struct RrEdge {
  RrNodeId to = 0;
  RrSwitch sw = RrSwitch::kInternal;
};

/// A block site on the grid (LB or IO pad).
struct SiteIds {
  RrNodeId source = kNoRrNode;
  RrNodeId sink = kNoRrNode;
  /// Pooled pin nodes (one OPIN of capacity N, one IPIN of capacity I) —
  /// see build_sites() for the pin-equivalence rationale.
  std::vector<RrNodeId> opins;
  std::vector<RrNodeId> ipins;
  std::size_t pin_count_opin = 0;  ///< Physical output pins represented.
  std::size_t pin_count_ipin = 0;  ///< Physical input pins represented.
};

class RrGraph {
 public:
  /// Build the graph for an nx-by-ny logic grid with IO pads on the border.
  RrGraph(const ArchParams& arch, std::size_t nx, std::size_t ny);

  const ArchParams& arch() const { return arch_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }

  std::size_t node_count() const { return nodes_.size(); }
  const RrNode& node(RrNodeId id) const { return nodes_[id]; }
  /// Out-edge span of a node (CSR slice). Defined inline — this is the
  /// innermost load of the router's relaxation loop.
  std::span<const RrEdge> edges(RrNodeId id) const {
    return {edges_.data() + edge_offsets_[id],
            edges_.data() + edge_offsets_[id + 1]};
  }
  std::size_t edge_count() const { return edges_.size(); }

  /// Prefetch hints for graph-walking hot loops: pull a node record (and
  /// optionally the head of its edge span) toward the cache a few
  /// iterations before it is dereferenced. No-ops where unsupported.
  void prefetch_node(RrNodeId id) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(nodes_.data() + id);
#else
    (void)id;
#endif
  }
  void prefetch_edges(RrNodeId id) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(edges_.data() + edge_offsets_[id]);
#else
    (void)id;
#endif
  }

  /// True if (x, y) is a logic-block site; border cells are IO sites and
  /// corners are empty.
  bool is_lb(std::size_t x, std::size_t y) const;
  bool is_io(std::size_t x, std::size_t y) const;

  /// Site lookup; throws for empty (corner) cells.
  const SiteIds& site(std::size_t x, std::size_t y) const;

  /// Total wire nodes (for channel-occupancy statistics).
  std::size_t wire_count() const { return wire_count_; }

  /// The wires a specific *physical* input pin of site (x, y) taps through
  /// its connection block (the per-pin Fcin pattern whose union feeds the
  /// pooled IPIN node). Used by the configuration compiler to assign each
  /// routed net to a concrete pin.
  std::vector<RrNodeId> ipin_tap_wires(std::size_t x, std::size_t y,
                                       std::size_t pin) const;

  /// The wire starts a specific physical output pin can drive (per-pin
  /// Fcout pattern whose union the pooled OPIN carries).
  std::vector<RrNodeId> opin_start_wires(std::size_t x, std::size_t y,
                                         std::size_t pin) const;

 private:
  void build_sites();
  void build_wires();
  void build_edges();

  ArchParams arch_;
  std::size_t nx_, ny_;
  std::vector<RrNode> nodes_;
  std::vector<RrEdge> edges_;          // CSR payload
  std::vector<std::uint32_t> edge_offsets_;  // CSR index (built last)
  std::vector<std::vector<RrEdge>> adj_;     // during construction
  std::vector<SiteIds> sites_;         // (nx+2)*(ny+2), row-major
  std::size_t wire_count_ = 0;

  // Wire lookup tables, valid after build_wires():
  //  cover_x_[j][t * span + (x-1)] = wire covering (track t, position x).
  std::vector<std::vector<RrNodeId>> cover_x_, cover_y_;

  std::size_t site_index(std::size_t x, std::size_t y) const;
  RrNodeId wire_at_x(std::size_t j, std::size_t track, std::size_t x) const;
  RrNodeId wire_at_y(std::size_t i, std::size_t track, std::size_t y) const;
  /// Wires starting (driver located) at the given position in a channel.
  std::vector<RrNodeId> wires_starting_x(std::size_t j, std::size_t x,
                                         bool increasing) const;
  std::vector<RrNodeId> wires_starting_y(std::size_t i, std::size_t y,
                                         bool increasing) const;
  void add_edge(RrNodeId from, RrNodeId to, RrSwitch sw);
  void finalize_csr();
};

/// Smallest square logic grid that fits `n_lbs` logic blocks and whose
/// border provides at least `n_ios` pad slots.
std::pair<std::size_t, std::size_t> grid_size_for(const ArchParams& arch,
                                                  std::size_t n_lbs,
                                                  std::size_t n_ios);

}  // namespace nemfpga
