// Geometric routing lookahead for A* directed search (VPR-style "map
// lookahead"): a per-segment-class table of the expected remaining base
// cost from a signed tile offset (dx, dy) to a sink, built once per
// RrGraph + cost profile by sampled backward Dijkstra over the reverse
// graph. The router adds astar_factor * estimate to the heap key, which
// prunes wrong-direction wires and accounts for the segment-length
// quantisation a plain Manhattan heuristic cannot see.
//
// Admissibility (by construction, at astar_factor <= 1): the table stores
// shortest distances in *base-cost* space (route_base_cost below), and
// every run-time cost factor — history, the deterministic jitter, present
// congestion — multiplies the base cost by >= 1, so a base-space distance
// is a lower bound on the real remaining cost. The distances themselves
// are folded from one backward Dijkstra per sink tile over a thin
// canonical graph whose connectivity is a superset of any real channel
// width's (see the constructor), making each cell the exact minimum over
// every realizable (node, target) pair at that offset.
// RouteOptions::verify_lookahead and RouteCounters::lookahead_suboptimal
// prove the bound empirically on top: no sink is found worse than a
// zero-heuristic Dijkstra reference on the same cost state.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/rr_graph.hpp"

namespace nemfpga {

/// The router's base-cost profile, shared (single source of truth) by the
/// production router, the reference oracle and the lookahead builder.
inline double route_base_cost(const RrNode& n) {
  switch (n.type) {
    case RrType::kChanX:
    case RrType::kChanY:
      return static_cast<double>(n.length);
    case RrType::kIpin:
      return 0.95;  // slight pull toward finishing
    case RrType::kSink:
      return 0.0;
    default:
      return 1.0;
  }
}

/// Per-RR-node delay profile of the active electrical view, as consumed
/// by the delay-annotated lookahead table. src/timing/delay_model.hpp
/// derives it from an ElectricalView; arch cannot depend on timing, so
/// only the two constants cross the layer boundary.
struct DelayProfile {
  double t_wire_stage = 0.0;  ///< Delay entering any CHANX/CHANY node [s].
  double t_input_path = 0.0;  ///< Delay entering an IPIN [s].
};

/// The delay twin of route_base_cost: what entering `n` costs in seconds.
/// Single source of truth for the delay model, the timing-driven router
/// and the delay lookahead builder.
inline double route_delay_cost(const RrNode& n, const DelayProfile& p) {
  switch (n.type) {
    case RrType::kChanX:
    case RrType::kChanY:
      return p.t_wire_stage;
    case RrType::kIpin:
      return p.t_input_path;
    default:
      return 0.0;
  }
}

class RouteLookahead {
 public:
  /// Build the base-cost table; with a non-null `delay` profile also
  /// build the delay-annotated twin table (same thin canonical graph,
  /// same backward Dijkstras, node weights from route_delay_cost), which
  /// lower-bounds the remaining *delay* in seconds for the timing-driven
  /// router's blended heuristic. The same admissibility argument applies:
  /// thin connectivity supersets any real width, and rounding is always
  /// toward zero.
  explicit RouteLookahead(const RrGraphView& g,
                          const DelayProfile* delay = nullptr);

  /// Expected remaining base cost from `n` (whose own cost is already
  /// paid) to a sink at tile (tx, ty). Convenience form for sink-order
  /// keys and the reference oracle; the hot loop uses the key-based
  /// accessors below.
  double estimate(const RrNode& n, int tx, int ty) const {
    return table_[static_cast<std::size_t>(node_key(n) +
                                           target_key(tx, ty))];
  }

  /// Per-node half of the table index: class plus reference-point offset,
  /// folded so that table()[node_key(n) + target_key(tx, ty)] is the
  /// estimate — one add and one load per relaxed edge. Pure geometry of
  /// the node, so one table serves every channel width of the same
  /// fabric (find_min_channel_width shares it across probes).
  std::int32_t node_key(const RrNode& n) const;

  /// Per-search half of the index (hoisted once per sink search).
  std::int32_t target_key(int tx, int ty) const {
    return (tx + off_x_) * sy_ + (ty + off_y_);
  }

  const float* table() const { return table_.data(); }

  /// Delay twin of the base table (empty unless built with a profile).
  /// Indexed identically: delay_table()[node_key(n) + target_key(tx, ty)]
  /// is a lower bound on the remaining seconds from `n` to the sink.
  bool has_delay_table() const { return !delay_table_.empty(); }
  const float* delay_table() const { return delay_table_.data(); }
  double delay_estimate(const RrNode& n, int tx, int ty) const {
    return delay_table_[static_cast<std::size_t>(node_key(n) +
                                                 target_key(tx, ty))];
  }

  double build_seconds() const { return build_s_; }

  /// Resident size, for the artifact cache's byte-budgeted eviction.
  std::size_t memory_bytes() const {
    return sizeof(RouteLookahead) +
           (table_.capacity() + delay_table_.capacity()) * sizeof(float);
  }

  /// Wire classes get direction-aware tables; everything else (pins,
  /// sources, sinks) shares the generic class.
  static constexpr int kClasses = 5;

 private:
  int sy_ = 0;           ///< Table stride in the dy dimension.
  int off_x_ = 0, off_y_ = 0;  ///< Offset bias so indices start at 0.
  std::size_t span_ = 0;           ///< sx * sy, one class's table slice.
  std::vector<float> table_;       ///< kClasses * sx * sy, row-major.
  std::vector<float> delay_table_; ///< Same layout, seconds (optional).
  double build_s_ = 0.0;
};

}  // namespace nemfpga
