// Island-style FPGA architecture parameters (paper Table 1 / Sec 3.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace nemfpga {

/// Which technology implements the programmable routing switches.
enum class RoutingFabric {
  kCmosPassTransistor,  ///< NMOS pass transistor + SRAM cell (Fig 3a).
  kNemRelay,            ///< Single NEM relay, no SRAM (Fig 3b).
};

/// Switch-box turn pattern: which track a wire connects to when turning
/// into a perpendicular channel. Straight continuations always stay on
/// the same track; the pattern only selects the turn targets. Both
/// RR-graph backends (explicit and implicit) consume it through
/// ArchParams::sb_turn_track so they stay symmetric by construction.
enum class SbPattern : std::uint8_t {
  kWilton,     ///< Fixed +/-5 track rotation at turns (the historical
               ///< default; every golden checksum pins this pattern).
  kSubset,     ///< Disjoint/planar: turns stay on the same track.
  kUniversal,  ///< Track t turns onto W-1-t (reflection).
  kCustom,     ///< Wilton-style rotation by ArchParams::sb_custom_rot.
};

/// Registry-style names for SbPattern (CLI flags, cache keys, reports).
constexpr std::string_view sb_pattern_name(SbPattern p) {
  switch (p) {
    case SbPattern::kSubset: return "subset";
    case SbPattern::kUniversal: return "universal";
    case SbPattern::kCustom: return "custom";
    case SbPattern::kWilton: break;
  }
  return "wilton";
}

/// The recognized pattern names joined for error text.
inline std::string sb_pattern_names() {
  return "wilton / subset / universal / custom";
}

/// Parse a pattern name; throws std::invalid_argument listing the
/// recognized choices on an unknown name.
inline SbPattern sb_pattern_from_name(std::string_view name) {
  if (name == "wilton") return SbPattern::kWilton;
  if (name == "subset") return SbPattern::kSubset;
  if (name == "universal") return SbPattern::kUniversal;
  if (name == "custom") return SbPattern::kCustom;
  throw std::invalid_argument("unknown switch-block pattern '" +
                              std::string(name) +
                              "' (recognized: " + sb_pattern_names() + ")");
}

struct ArchParams {
  std::size_t N = 10;   ///< LUTs per logic block.
  std::size_t K = 4;    ///< Inputs per LUT.
  std::size_t L = 4;    ///< Segment wire length in tiles.
  double fc_in = 0.2;   ///< LB input pin flexibility.
  double fc_out = 0.1;  ///< LB output pin flexibility.
  std::size_t fs = 3;   ///< Switch box flexibility.
  std::size_t W = 118;  ///< Routing channel width (from 1.2 x Wmin).

  /// IO pads per perimeter site.
  std::size_t io_per_pad = 8;

  /// Switch-box turn pattern (see SbPattern). Wilton is the historical
  /// default every golden checksum was recorded against.
  SbPattern sb_pattern = SbPattern::kWilton;
  /// Turn rotation for SbPattern::kCustom (taken modulo W).
  std::size_t sb_custom_rot = 5;

  /// Connect every switch-box / output-pin candidate instead of the
  /// fc- and Wilton-limited selections. Never used for a routable
  /// fabric — the lookahead table (src/arch/lookahead.cpp) sets it on
  /// its thin canonical graph so that thin connectivity is a provable
  /// superset of any real graph's, which keeps the distance table a
  /// true lower bound even where border stubs make the candidate sets
  /// geometry-heterogeneous.
  bool dense_fanout = false;

  /// LB input pin count I; the standard cluster sizing I = K(N+1)/2
  /// [Betz 99] gives 22 for K=4, N=10.
  std::size_t lb_inputs() const { return K * (N + 1) / 2; }
  /// LB output pin count (= N).
  std::size_t lb_outputs() const { return N; }

  /// Tracks each LB input pin can reach through a CB.
  std::size_t fc_in_tracks() const {
    const auto t = static_cast<std::size_t>(fc_in * static_cast<double>(W) + 0.5);
    return t == 0 ? 1 : t;
  }
  /// Tracks each LB output pin can reach.
  std::size_t fc_out_tracks() const {
    const auto t = static_cast<std::size_t>(fc_out * static_cast<double>(W) + 0.5);
    return t == 0 ? 1 : t;
  }

  /// Target track when `track` turns into a perpendicular channel through
  /// a switch box; `plus` selects the up/right turn, `!plus` the
  /// down/left one. Both RR-graph backends route their turn connections
  /// through this single function, so a pattern is symmetric across the
  /// explicit and implicit builders by construction.
  ///
  /// kWilton keeps the exact legacy expressions (including the size_t
  /// wraparound semantics of `track + W - 5` when W < 5) — the historical
  /// edge enumeration feeds the router's heap tie-breaking, so changing
  /// even the W<5 corner would break golden bit-identity. kCustom uses
  /// the normalized rotation instead.
  std::size_t sb_turn_track(std::size_t track, bool plus) const {
    switch (sb_pattern) {
      case SbPattern::kSubset:
        return track;
      case SbPattern::kUniversal:
        return (W - 1) - track;
      case SbPattern::kCustom: {
        const std::size_t r = sb_custom_rot % W;
        return plus ? (track + r) % W : (track + W - r) % W;
      }
      case SbPattern::kWilton:
        break;
    }
    const std::size_t rot = 5;  // Wilton rotation applied at turns
    return plus ? (track + rot) % W : (track + W - rot) % W;
  }
};

}  // namespace nemfpga
