// Island-style FPGA architecture parameters (paper Table 1 / Sec 3.1).
#pragma once

#include <cstddef>

namespace nemfpga {

/// Which technology implements the programmable routing switches.
enum class RoutingFabric {
  kCmosPassTransistor,  ///< NMOS pass transistor + SRAM cell (Fig 3a).
  kNemRelay,            ///< Single NEM relay, no SRAM (Fig 3b).
};

struct ArchParams {
  std::size_t N = 10;   ///< LUTs per logic block.
  std::size_t K = 4;    ///< Inputs per LUT.
  std::size_t L = 4;    ///< Segment wire length in tiles.
  double fc_in = 0.2;   ///< LB input pin flexibility.
  double fc_out = 0.1;  ///< LB output pin flexibility.
  std::size_t fs = 3;   ///< Switch box flexibility.
  std::size_t W = 118;  ///< Routing channel width (from 1.2 x Wmin).

  /// IO pads per perimeter site.
  std::size_t io_per_pad = 8;

  /// Connect every switch-box / output-pin candidate instead of the
  /// fc- and Wilton-limited selections. Never used for a routable
  /// fabric — the lookahead table (src/arch/lookahead.cpp) sets it on
  /// its thin canonical graph so that thin connectivity is a provable
  /// superset of any real graph's, which keeps the distance table a
  /// true lower bound even where border stubs make the candidate sets
  /// geometry-heterogeneous.
  bool dense_fanout = false;

  /// LB input pin count I; the standard cluster sizing I = K(N+1)/2
  /// [Betz 99] gives 22 for K=4, N=10.
  std::size_t lb_inputs() const { return K * (N + 1) / 2; }
  /// LB output pin count (= N).
  std::size_t lb_outputs() const { return N; }

  /// Tracks each LB input pin can reach through a CB.
  std::size_t fc_in_tracks() const {
    const auto t = static_cast<std::size_t>(fc_in * static_cast<double>(W) + 0.5);
    return t == 0 ? 1 : t;
  }
  /// Tracks each LB output pin can reach.
  std::size_t fc_out_tracks() const {
    const auto t = static_cast<std::size_t>(fc_out * static_cast<double>(W) + 0.5);
    return t == 0 ? 1 : t;
  }
};

}  // namespace nemfpga
