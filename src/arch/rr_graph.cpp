#include "arch/rr_graph.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace nemfpga {

RrGraph::RrGraph(const ArchParams& arch, std::size_t nx, std::size_t ny)
    : arch_(arch), nx_(nx), ny_(ny) {
  if (nx == 0 || ny == 0) throw std::invalid_argument("RrGraph: empty grid");
  if (arch.W < 2 || arch.L == 0) throw std::invalid_argument("RrGraph: bad arch");
  sites_.resize((nx_ + 2) * (ny_ + 2));
  build_sites();
  build_wires();
  adj_.resize(nodes_.size());
  build_edges();
  finalize_csr();
}

std::size_t RrGraph::site_index(std::size_t x, std::size_t y) const {
  return y * (nx_ + 2) + x;
}

bool RrGraph::is_lb(std::size_t x, std::size_t y) const {
  return x >= 1 && x <= nx_ && y >= 1 && y <= ny_;
}

bool RrGraph::is_io(std::size_t x, std::size_t y) const {
  if (x > nx_ + 1 || y > ny_ + 1) return false;
  const bool border_x = (x == 0 || x == nx_ + 1);
  const bool border_y = (y == 0 || y == ny_ + 1);
  return border_x != border_y;  // border but not corner
}

const SiteIds& RrGraph::site(std::size_t x, std::size_t y) const {
  if (!is_lb(x, y) && !is_io(x, y)) {
    throw std::out_of_range("RrGraph::site: empty cell");
  }
  return sites_[site_index(x, y)];
}

void RrGraph::build_sites() {
  // Input pins are modeled as one pooled IPIN node with capacity I (the
  // LB's full input crossbar makes its input pins logically equivalent:
  // any pin can feed any LUT input, Fig 7b). Output pins are likewise one
  // pooled OPIN with capacity N. The pools carry the union of the per-pin
  // connection-block patterns, so channel/track congestion is modeled
  // exactly while the pin-assignment matching inside the CB is deferred to
  // the configuration compiler (config/bitstream.*), which measures the
  // approximation: ~80-90% of connections get a conflict-free pin; the
  // rest each need one extra CB tap relay (<0.2% relay overhead).
  auto make_site = [&](std::size_t x, std::size_t y, std::size_t n_opin,
                       std::size_t n_ipin, std::size_t src_cap,
                       std::size_t snk_cap) {
    SiteIds s;
    const auto xy = [&](RrNode& n) {
      n.x_lo = n.x_hi = static_cast<std::uint16_t>(x);
      n.y_lo = n.y_hi = static_cast<std::uint16_t>(y);
    };
    RrNode src;
    src.type = RrType::kSource;
    src.capacity = static_cast<std::uint16_t>(src_cap);
    xy(src);
    s.source = static_cast<RrNodeId>(nodes_.size());
    nodes_.push_back(src);

    RrNode snk;
    snk.type = RrType::kSink;
    snk.capacity = static_cast<std::uint16_t>(snk_cap);
    xy(snk);
    s.sink = static_cast<RrNodeId>(nodes_.size());
    nodes_.push_back(snk);

    RrNode opin;
    opin.type = RrType::kOpin;
    opin.capacity = static_cast<std::uint16_t>(n_opin);
    xy(opin);
    s.opins.push_back(static_cast<RrNodeId>(nodes_.size()));
    nodes_.push_back(opin);

    RrNode ipin;
    ipin.type = RrType::kIpin;
    ipin.capacity = static_cast<std::uint16_t>(n_ipin);
    xy(ipin);
    s.ipins.push_back(static_cast<RrNodeId>(nodes_.size()));
    nodes_.push_back(ipin);

    s.pin_count_opin = n_opin;
    s.pin_count_ipin = n_ipin;
    sites_[site_index(x, y)] = std::move(s);
  };

  for (std::size_t y = 0; y <= ny_ + 1; ++y) {
    for (std::size_t x = 0; x <= nx_ + 1; ++x) {
      if (is_lb(x, y)) {
        make_site(x, y, arch_.lb_outputs(), arch_.lb_inputs(),
                  arch_.lb_outputs(), arch_.lb_inputs());
      } else if (is_io(x, y)) {
        make_site(x, y, arch_.io_per_pad, arch_.io_per_pad, arch_.io_per_pad,
                  arch_.io_per_pad);
      }
    }
  }
}

void RrGraph::build_wires() {
  const std::size_t W = arch_.W;
  const std::size_t L = arch_.L;

  // Build one channel's wires; `span` is the number of positions (1..span).
  // cover[t * span + (pos-1)] records which wire owns (track, pos).
  auto build_channel = [&](bool horizontal, std::size_t chan_idx,
                           std::size_t span,
                           std::vector<RrNodeId>& cover) {
    cover.assign(W * span, kNoRrNode);
    for (std::size_t t = 0; t < W; ++t) {
      const bool inc = (t % 2 == 0);
      const std::size_t stagger = (t / 2) % L;
      // Segment boundaries: wires break after position (stagger), then
      // every L positions. For DEC wires mirror the pattern.
      std::size_t pos = 1;
      while (pos <= span) {
        std::size_t seg_end;
        if (inc) {
          // First segment may be a stub of length `stagger`.
          if (pos == 1 && stagger > 0) {
            seg_end = std::min(span, stagger);
          } else {
            seg_end = std::min(span, pos + L - 1);
          }
        } else {
          // Mirror: stub at the high end.
          const std::size_t from_top = span - pos + 1;
          if (pos == 1) {
            // Work from the bottom, but the stub sits at the top; compute
            // the boundary layout identically by aligning to (span-stagger).
            const std::size_t first_len = (span > stagger)
                ? ((span - stagger - 1) % L) + 1
                : span;
            seg_end = std::min(span, pos + first_len - 1);
          } else {
            seg_end = std::min(span, pos + L - 1);
          }
          (void)from_top;
        }
        RrNode n;
        n.type = horizontal ? RrType::kChanX : RrType::kChanY;
        n.increasing = inc;
        n.track = static_cast<std::uint16_t>(t);
        n.length = static_cast<std::uint8_t>(seg_end - pos + 1);
        if (horizontal) {
          n.x_lo = static_cast<std::uint16_t>(pos);
          n.x_hi = static_cast<std::uint16_t>(seg_end);
          n.y_lo = n.y_hi = static_cast<std::uint16_t>(chan_idx);
        } else {
          n.y_lo = static_cast<std::uint16_t>(pos);
          n.y_hi = static_cast<std::uint16_t>(seg_end);
          n.x_lo = n.x_hi = static_cast<std::uint16_t>(chan_idx);
        }
        const auto id = static_cast<RrNodeId>(nodes_.size());
        nodes_.push_back(n);
        ++wire_count_;
        for (std::size_t p = pos; p <= seg_end; ++p) {
          cover[t * span + (p - 1)] = id;
        }
        pos = seg_end + 1;
      }
    }
  };

  cover_x_.resize(ny_ + 1);
  for (std::size_t j = 0; j <= ny_; ++j) {
    build_channel(true, j, nx_, cover_x_[j]);
  }
  cover_y_.resize(nx_ + 1);
  for (std::size_t i = 0; i <= nx_; ++i) {
    build_channel(false, i, ny_, cover_y_[i]);
  }
}

RrNodeId RrGraph::wire_at_x(std::size_t j, std::size_t track,
                            std::size_t x) const {
  if (j > ny_ || track >= arch_.W || x < 1 || x > nx_) return kNoRrNode;
  return cover_x_[j][track * nx_ + (x - 1)];
}

RrNodeId RrGraph::wire_at_y(std::size_t i, std::size_t track,
                            std::size_t y) const {
  if (i > nx_ || track >= arch_.W || y < 1 || y > ny_) return kNoRrNode;
  return cover_y_[i][track * ny_ + (y - 1)];
}

std::vector<RrNodeId> RrGraph::wires_starting_x(std::size_t j, std::size_t x,
                                                bool increasing) const {
  std::vector<RrNodeId> out;
  if (j > ny_ || x < 1 || x > nx_) return out;
  for (std::size_t t = increasing ? 0 : 1; t < arch_.W; t += 2) {
    const RrNodeId id = wire_at_x(j, t, x);
    if (id == kNoRrNode) continue;
    const RrNode& n = nodes_[id];
    const std::size_t start = n.increasing ? n.x_lo : n.x_hi;
    if (start == x) out.push_back(id);
  }
  return out;
}

std::vector<RrNodeId> RrGraph::wires_starting_y(std::size_t i, std::size_t y,
                                                bool increasing) const {
  std::vector<RrNodeId> out;
  if (i > nx_ || y < 1 || y > ny_) return out;
  for (std::size_t t = increasing ? 0 : 1; t < arch_.W; t += 2) {
    const RrNodeId id = wire_at_y(i, t, y);
    if (id == kNoRrNode) continue;
    const RrNode& n = nodes_[id];
    const std::size_t start = n.increasing ? n.y_lo : n.y_hi;
    if (start == y) out.push_back(id);
  }
  return out;
}

void RrGraph::add_edge(RrNodeId from, RrNodeId to, RrSwitch sw) {
  adj_[from].push_back({to, sw});
}


namespace {
/// One adjacent channel of a site: (horizontal?, channel index, position).
struct SiteAdj {
  bool horizontal;
  std::size_t chan;
  std::size_t pos;
  bool valid;
};
}  // namespace

static std::array<SiteAdj, 4> site_adjacencies(std::size_t x, std::size_t y,
                                               std::size_t nx,
                                               std::size_t ny) {
  return {{
      {true, y - 1, x, y >= 1 && x >= 1 && x <= nx},   // below
      {true, y, x, y <= ny && x >= 1 && x <= nx},      // above
      {false, x - 1, y, x >= 1 && y >= 1 && y <= ny},  // left
      {false, x, y, x <= nx && y >= 1 && y <= ny},     // right
  }};
}

std::vector<RrNodeId> RrGraph::ipin_tap_wires(std::size_t x, std::size_t y,
                                              std::size_t pin) const {
  constexpr double kGolden = 0.6180339887498949;
  const auto adj = site_adjacencies(x, y, nx_, ny_);
  std::size_t side = pin % 4;
  if (!adj[side].valid) {
    side = 4;
    for (std::size_t alt = 0; alt < 4; ++alt) {
      if (adj[alt].valid) {
        side = alt;
        break;
      }
    }
    if (side == 4) return {};
  }
  const SiteAdj& a = adj[side];
  const std::size_t fc = arch_.fc_in_tracks();
  const double offset = std::fmod(
      kGolden * static_cast<double>(pin + 1) +
          0.37 * static_cast<double>(a.pos),
      1.0);
  std::vector<RrNodeId> out;
  out.reserve(fc);
  for (std::size_t k = 0; k < fc; ++k) {
    const double frac = std::fmod(
        offset + static_cast<double>(k) / static_cast<double>(fc), 1.0);
    const std::size_t track =
        static_cast<std::size_t>(frac * static_cast<double>(arch_.W)) %
        arch_.W;
    const RrNodeId wire = a.horizontal ? wire_at_x(a.chan, track, a.pos)
                                       : wire_at_y(a.chan, track, a.pos);
    if (wire != kNoRrNode &&
        std::find(out.begin(), out.end(), wire) == out.end()) {
      out.push_back(wire);
    }
  }
  return out;
}

std::vector<RrNodeId> RrGraph::opin_start_wires(std::size_t x, std::size_t y,
                                                std::size_t pin) const {
  constexpr double kGolden = 0.6180339887498949;
  const auto adj = site_adjacencies(x, y, nx_, ny_);
  std::vector<RrNodeId> all_starts;
  for (const SiteAdj& a : adj) {
    if (!a.valid) continue;
    for (bool inc : {true, false}) {
      const auto starts = a.horizontal
                              ? wires_starting_x(a.chan, a.pos, inc)
                              : wires_starting_y(a.chan, a.pos, inc);
      all_starts.insert(all_starts.end(), starts.begin(), starts.end());
    }
  }
  std::vector<RrNodeId> out;
  if (all_starts.empty()) return out;
  if (arch_.dense_fanout) {
    for (RrNodeId w : all_starts) {
      if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
    }
    return out;
  }
  const std::size_t want = std::min(all_starts.size(), arch_.fc_out_tracks());
  const double offset =
      std::fmod(kGolden * static_cast<double>(pin + 1), 1.0);
  for (std::size_t k = 0; k < want; ++k) {
    const double frac = std::fmod(
        offset + static_cast<double>(k) / static_cast<double>(want), 1.0);
    const RrNodeId w =
        all_starts[static_cast<std::size_t>(
                       frac * static_cast<double>(all_starts.size())) %
                   all_starts.size()];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  return out;
}

void RrGraph::build_edges() {
  // --- Intra-site edges and pin <-> channel edges ------------------------
  for (std::size_t y = 0; y <= ny_ + 1; ++y) {
    for (std::size_t x = 0; x <= nx_ + 1; ++x) {
      if (!is_lb(x, y) && !is_io(x, y)) continue;
      const SiteIds& s = sites_[site_index(x, y)];
      for (RrNodeId o : s.opins) add_edge(s.source, o, RrSwitch::kInternal);
      for (RrNodeId i : s.ipins) add_edge(i, s.sink, RrSwitch::kInternal);

      // OPIN pool -> wire starts and wire -> IPIN pool taps: the union
      // of the per-physical-pin patterns (opin_start_wires / ipin_tap_wires
      // are the single source of truth; the configuration compiler re-uses
      // them to assign nets to concrete pins).
      {
        std::vector<RrNodeId> opin_union;
        for (std::size_t p = 0; p < s.pin_count_opin; ++p) {
          for (RrNodeId w : opin_start_wires(x, y, p)) {
            if (std::find(opin_union.begin(), opin_union.end(), w) ==
                opin_union.end()) {
              opin_union.push_back(w);
            }
          }
        }
        for (RrNodeId w : opin_union) {
          add_edge(s.opins[0], w, RrSwitch::kOpinToWire);
        }

        std::vector<RrNodeId> ipin_union;
        for (std::size_t p = 0; p < s.pin_count_ipin; ++p) {
          for (RrNodeId w : ipin_tap_wires(x, y, p)) {
            if (std::find(ipin_union.begin(), ipin_union.end(), w) ==
                ipin_union.end()) {
              ipin_union.push_back(w);
            }
          }
        }
        for (RrNodeId w : ipin_union) {
          add_edge(w, s.ipins[0], RrSwitch::kWireToIpin);
        }
      }
    }
  }

  // --- Switch-box wire -> wire edges --------------------------------------
  // Each wire's end connects to Fs driver muxes: the straight continuation
  // (same track) plus one turn into each perpendicular direction. The turn
  // targets come from ArchParams::sb_turn_track — Wilton's +/-5 rotation by
  // default (every track reachable from every other within a handful of
  // switch boxes; a plain disjoint pattern splits the fabric into
  // near-isolated track domains), or the subset / universal / custom
  // pattern selected by arch.sb_pattern.
  auto prefer_track = [&](const std::vector<RrNodeId>& cands,
                          std::size_t track) -> RrNodeId {
    if (cands.empty()) return kNoRrNode;
    RrNodeId best = cands[0];
    std::size_t best_dist = arch_.W;
    for (RrNodeId c : cands) {
      const std::size_t ct = nodes_[c].track;
      const std::size_t d = ct > track ? ct - track : track - ct;
      if (d < best_dist) {
        best_dist = d;
        best = c;
      }
    }
    return best;
  };
  // One edge per move normally; every candidate under dense_fanout (the
  // candidate set mixes full wires and clipped border stubs, so a single
  // preferred pick is not geometry-complete — see ArchParams::dense_fanout).
  auto connect = [&](RrNodeId from, const std::vector<RrNodeId>& cands,
                     std::size_t track) {
    if (arch_.dense_fanout) {
      for (RrNodeId c : cands) add_edge(from, c, RrSwitch::kWireToWire);
      return;
    }
    const RrNodeId w = prefer_track(cands, track);
    if (w != kNoRrNode) add_edge(from, w, RrSwitch::kWireToWire);
  };
  const auto n_nodes = static_cast<RrNodeId>(nodes_.size());
  for (RrNodeId id = 0; id < n_nodes; ++id) {
    const RrNode& n = nodes_[id];
    if (n.type == RrType::kChanX) {
      const std::size_t j = n.y_lo;
      const std::size_t end = n.increasing ? n.x_hi : n.x_lo;
      // Straight continuation.
      const std::size_t next_x = n.increasing ? end + 1 : end - 1;
      if (next_x >= 1 && next_x <= nx_) {
        connect(id, wires_starting_x(j, next_x, n.increasing), n.track);
      }
      // Turns through the SB at the junction past `end`:
      // vertical channel index i = end (INC) or end - 1 (DEC).
      const std::size_t i = n.increasing ? end : end - 1;
      if (i <= nx_) {
        connect(id, wires_starting_y(i, j + 1, true),
                arch_.sb_turn_track(n.track, true));
        if (j >= 1) {
          connect(id, wires_starting_y(i, j, false),
                  arch_.sb_turn_track(n.track, false));
        }
      }
    } else if (n.type == RrType::kChanY) {
      const std::size_t i = n.x_lo;
      const std::size_t end = n.increasing ? n.y_hi : n.y_lo;
      const std::size_t next_y = n.increasing ? end + 1 : end - 1;
      if (next_y >= 1 && next_y <= ny_) {
        connect(id, wires_starting_y(i, next_y, n.increasing), n.track);
      }
      const std::size_t j = n.increasing ? end : end - 1;
      if (j <= ny_) {
        connect(id, wires_starting_x(j, i + 1, true),
                arch_.sb_turn_track(n.track, true));
        if (i >= 1) {
          connect(id, wires_starting_x(j, i, false),
                  arch_.sb_turn_track(n.track, false));
        }
      }
    }
  }
}

void RrGraph::finalize_csr() {
  edge_offsets_.assign(nodes_.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < adj_.size(); ++i) {
    edge_offsets_[i] = static_cast<std::uint32_t>(total);
    total += adj_[i].size();
  }
  edge_offsets_[adj_.size()] = static_cast<std::uint32_t>(total);
  edges_.reserve(total);
  for (auto& v : adj_) {
    edges_.insert(edges_.end(), v.begin(), v.end());
    v.clear();
    v.shrink_to_fit();
  }
  adj_.clear();
}

std::size_t RrGraph::memory_bytes() const {
  std::size_t b = sizeof(*this);
  b += nodes_.capacity() * sizeof(RrNode);
  b += edges_.capacity() * sizeof(RrEdge);
  b += edge_offsets_.capacity() * sizeof(std::uint32_t);
  for (const SiteIds& s : sites_) {
    b += sizeof(SiteIds) +
         (s.opins.capacity() + s.ipins.capacity()) * sizeof(RrNodeId);
  }
  for (const auto& v : cover_x_) {
    b += sizeof(v) + v.capacity() * sizeof(RrNodeId);
  }
  for (const auto& v : cover_y_) {
    b += sizeof(v) + v.capacity() * sizeof(RrNodeId);
  }
  return b;
}

// ---------------------------------------------------------------------------
// ImplicitRrGraph: the coordinate-computed twin of the explicit builder
// above. Every function here replays a specific loop of the explicit
// construction arithmetically; comments name the loop being mirrored. Any
// change to the explicit builder must be mirrored here (and is caught by
// tests/test_rr_implicit.cpp, which compares the two id-by-id).
// ---------------------------------------------------------------------------

ImplicitRrGraph::ImplicitRrGraph(const ArchParams& arch, std::size_t nx,
                                 std::size_t ny)
    : arch_(arch), nx_(nx), ny_(ny) {
  if (nx == 0 || ny == 0) {
    throw std::invalid_argument("RrGraph: empty grid");
  }
  if (arch.W < 2 || arch.L == 0) {
    throw std::invalid_argument("RrGraph: bad arch");
  }
  const std::size_t W = arch_.W;
  // Sites: y-major scan skipping the four empty corners, 4 nodes each.
  site_count_ = (nx_ + 2) * (ny_ + 2) - 4;
  wire_base_ = static_cast<RrNodeId>(site_count_ * 4);

  // Per-track wire prefix over one channel (all CHANX channels share the
  // segment layout for span nx, all CHANY channels for span ny — the
  // stagger phase depends only on the track).
  px_.resize(W + 1);
  py_.resize(W + 1);
  px_[0] = py_[0] = 0;
  for (std::size_t t = 0; t < W; ++t) {
    px_[t + 1] = px_[t] + static_cast<std::uint32_t>(n_segs(t, nx_));
    py_[t + 1] = py_[t] + static_cast<std::uint32_t>(n_segs(t, ny_));
  }
  sx_ = px_[W];
  sy_ = py_[W];
  wire_count_ = (ny_ + 1) * sx_ + (nx_ + 1) * sy_;
  node_count_ = wire_base_ + wire_count_;

  // Connection-box tap membership, folded over pins: which tracks the
  // pooled IPIN of a site taps from one adjacent channel side at channel
  // position `pos`. LB pins round-robin over sides (pin % 4); IO pads use
  // their single valid side for every pin, so one mask per position
  // suffices for all four borders.
  constexpr double kGolden = 0.6180339887498949;
  mask_words_ = (W + 63) / 64;
  max_span_ = std::max(nx_, ny_);
  lb_tap_.assign(4 * (max_span_ + 1) * mask_words_, 0);
  io_tap_.assign((max_span_ + 1) * mask_words_, 0);
  const std::size_t fc = arch_.fc_in_tracks();
  auto add_tracks = [&](std::uint64_t* words, std::size_t pin,
                        std::size_t pos) {
    const double offset = std::fmod(
        kGolden * static_cast<double>(pin + 1) +
            0.37 * static_cast<double>(pos),
        1.0);
    for (std::size_t k = 0; k < fc; ++k) {
      const double frac = std::fmod(
          offset + static_cast<double>(k) / static_cast<double>(fc), 1.0);
      const std::size_t track =
          static_cast<std::size_t>(frac * static_cast<double>(W)) % W;
      words[track / 64] |= std::uint64_t{1} << (track % 64);
    }
  };
  for (std::size_t pos = 1; pos <= max_span_; ++pos) {
    for (std::size_t p = 0; p < arch_.lb_inputs(); ++p) {
      const std::size_t side = p % 4;
      add_tracks(
          lb_tap_.data() + (side * (max_span_ + 1) + pos) * mask_words_, p,
          pos);
    }
    for (std::size_t p = 0; p < arch_.io_per_pad; ++p) {
      add_tracks(io_tap_.data() + pos * mask_words_, p, pos);
    }
  }
}

bool ImplicitRrGraph::is_lb(std::size_t x, std::size_t y) const {
  return x >= 1 && x <= nx_ && y >= 1 && y <= ny_;
}

bool ImplicitRrGraph::is_io(std::size_t x, std::size_t y) const {
  if (x > nx_ + 1 || y > ny_ + 1) return false;
  const bool border_x = (x == 0 || x == nx_ + 1);
  const bool border_y = (y == 0 || y == ny_ + 1);
  return border_x != border_y;
}

std::size_t ImplicitRrGraph::site_ordinal(std::size_t x,
                                          std::size_t y) const {
  // The explicit builder's scan: row 0 holds nx sites (x = 1..nx), rows
  // 1..ny hold nx+2 (both IO columns), row ny+1 again nx.
  if (y == 0) return x - 1;
  if (y <= ny_) return nx_ + (y - 1) * (nx_ + 2) + x;
  return nx_ + ny_ * (nx_ + 2) + (x - 1);
}

void ImplicitRrGraph::ordinal_to_xy(std::size_t ordinal, std::size_t& x,
                                    std::size_t& y) const {
  if (ordinal < nx_) {
    x = ordinal + 1;
    y = 0;
    return;
  }
  std::size_t o = ordinal - nx_;
  const std::size_t row = nx_ + 2;
  if (o < ny_ * row) {
    x = o % row;
    y = 1 + o / row;
    return;
  }
  o -= ny_ * row;
  x = o + 1;
  y = ny_ + 1;
}

SiteRef ImplicitRrGraph::site(std::size_t x, std::size_t y) const {
  if (!is_lb(x, y) && !is_io(x, y)) {
    throw std::out_of_range("RrGraph::site: empty cell");
  }
  const bool lb = is_lb(x, y);
  const RrNodeId b = site_base(x, y);
  SiteRef s;
  s.source = b;
  s.sink = b + 1;
  s.opin = b + 2;
  s.ipin = b + 3;
  s.pin_count_opin = lb ? arch_.lb_outputs() : arch_.io_per_pad;
  s.pin_count_ipin = lb ? arch_.lb_inputs() : arch_.io_per_pad;
  return s;
}

// --- Segment geometry -------------------------------------------------------
// build_channel() walks each track bottom-up: a first segment of
// first_len positions, then L-long chunks, the last clipped to the span.
// INC tracks put the stub (length = stagger) at the low end; DEC tracks
// mirror it to the high end, which from the bottom means the first
// segment has length ((span - stagger - 1) % L) + 1.

std::size_t ImplicitRrGraph::first_len(std::size_t t,
                                       std::size_t span) const {
  const std::size_t L = arch_.L;
  const std::size_t cls = (t / 2) % L;
  if (t % 2 == 0) {  // INC
    return cls > 0 ? std::min(span, cls) : std::min(span, L);
  }
  return span > cls ? ((span - cls - 1) % L) + 1 : span;  // DEC
}

std::size_t ImplicitRrGraph::n_segs(std::size_t t, std::size_t span) const {
  const std::size_t fl = first_len(t, span);
  if (fl >= span) return 1;
  const std::size_t L = arch_.L;
  return 1 + (span - fl + L - 1) / L;
}

std::size_t ImplicitRrGraph::seg_index(std::size_t t, std::size_t span,
                                       std::size_t pos) const {
  const std::size_t fl = first_len(t, span);
  if (pos <= fl) return 0;
  return 1 + (pos - fl - 1) / arch_.L;
}

void ImplicitRrGraph::seg_bounds(std::size_t t, std::size_t span,
                                 std::size_t k, std::size_t& lo,
                                 std::size_t& hi) const {
  const std::size_t fl = first_len(t, span);
  if (k == 0) {
    lo = 1;
    hi = fl;
    return;
  }
  const std::size_t L = arch_.L;
  lo = fl + (k - 1) * L + 1;
  hi = std::min(span, fl + k * L);
}

bool ImplicitRrGraph::is_start(std::size_t t, std::size_t span,
                               std::size_t pos) const {
  const std::size_t fl = first_len(t, span);
  const std::size_t L = arch_.L;
  if (t % 2 == 0) {  // INC wires drive from their low end.
    return pos == 1 || (pos > fl && (pos - fl - 1) % L == 0);
  }
  // DEC wires drive from their high end (a segment's last position).
  return pos == span || (pos >= fl && (pos - fl) % L == 0);
}

RrNodeId ImplicitRrGraph::wire_id_x(std::size_t j, std::size_t t,
                                    std::size_t k) const {
  return wire_base_ + static_cast<RrNodeId>(j * sx_ + px_[t] + k);
}

RrNodeId ImplicitRrGraph::wire_id_y(std::size_t i, std::size_t t,
                                    std::size_t k) const {
  return wire_base_ +
         static_cast<RrNodeId>((ny_ + 1) * sx_ + i * sy_ + py_[t] + k);
}

RrNodeId ImplicitRrGraph::wire_at_x(std::size_t j, std::size_t track,
                                    std::size_t x) const {
  if (j > ny_ || track >= arch_.W || x < 1 || x > nx_) return kNoRrNode;
  return wire_id_x(j, track, seg_index(track, nx_, x));
}

RrNodeId ImplicitRrGraph::wire_at_y(std::size_t i, std::size_t track,
                                    std::size_t y) const {
  if (i > nx_ || track >= arch_.W || y < 1 || y > ny_) return kNoRrNode;
  return wire_id_y(i, track, seg_index(track, ny_, y));
}

void ImplicitRrGraph::wires_starting_x(std::size_t j, std::size_t x,
                                       bool increasing,
                                       std::vector<RrNodeId>& out) const {
  if (j > ny_ || x < 1 || x > nx_) return;
  for (std::size_t t = increasing ? 0 : 1; t < arch_.W; t += 2) {
    if (is_start(t, nx_, x)) {
      out.push_back(wire_id_x(j, t, seg_index(t, nx_, x)));
    }
  }
}

void ImplicitRrGraph::wires_starting_y(std::size_t i, std::size_t y,
                                       bool increasing,
                                       std::vector<RrNodeId>& out) const {
  if (i > nx_ || y < 1 || y > ny_) return;
  for (std::size_t t = increasing ? 0 : 1; t < arch_.W; t += 2) {
    if (is_start(t, ny_, y)) {
      out.push_back(wire_id_y(i, t, seg_index(t, ny_, y)));
    }
  }
}

RrNode ImplicitRrGraph::node(RrNodeId id) const {
  RrNode n;
  if (id < wire_base_) {
    std::size_t x = 0, y = 0;
    ordinal_to_xy(id / 4, x, y);
    const bool lb = is_lb(x, y);
    const std::size_t out_cap = lb ? arch_.lb_outputs() : arch_.io_per_pad;
    const std::size_t in_cap = lb ? arch_.lb_inputs() : arch_.io_per_pad;
    switch (id % 4) {
      case 0:
        n.type = RrType::kSource;
        n.capacity = static_cast<std::uint16_t>(out_cap);
        break;
      case 1:
        n.type = RrType::kSink;
        n.capacity = static_cast<std::uint16_t>(in_cap);
        break;
      case 2:
        n.type = RrType::kOpin;
        n.capacity = static_cast<std::uint16_t>(out_cap);
        break;
      default:
        n.type = RrType::kIpin;
        n.capacity = static_cast<std::uint16_t>(in_cap);
        break;
    }
    n.x_lo = n.x_hi = static_cast<std::uint16_t>(x);
    n.y_lo = n.y_hi = static_cast<std::uint16_t>(y);
    return n;
  }
  std::size_t off = id - wire_base_;
  const bool horizontal = off < (ny_ + 1) * sx_;
  std::size_t chan, rem, span;
  const std::vector<std::uint32_t>* prefix;
  if (horizontal) {
    chan = off / sx_;
    rem = off % sx_;
    span = nx_;
    prefix = &px_;
  } else {
    off -= (ny_ + 1) * sx_;
    chan = off / sy_;
    rem = off % sy_;
    span = ny_;
    prefix = &py_;
  }
  const auto it =
      std::upper_bound(prefix->begin(), prefix->end(),
                       static_cast<std::uint32_t>(rem));
  const std::size_t t =
      static_cast<std::size_t>(it - prefix->begin()) - 1;
  const std::size_t k = rem - (*prefix)[t];
  std::size_t lo = 0, hi = 0;
  seg_bounds(t, span, k, lo, hi);
  n.type = horizontal ? RrType::kChanX : RrType::kChanY;
  n.increasing = (t % 2 == 0);
  n.track = static_cast<std::uint16_t>(t);
  n.length = static_cast<std::uint8_t>(hi - lo + 1);
  if (horizontal) {
    n.x_lo = static_cast<std::uint16_t>(lo);
    n.x_hi = static_cast<std::uint16_t>(hi);
    n.y_lo = n.y_hi = static_cast<std::uint16_t>(chan);
  } else {
    n.y_lo = static_cast<std::uint16_t>(lo);
    n.y_hi = static_cast<std::uint16_t>(hi);
    n.x_lo = n.x_hi = static_cast<std::uint16_t>(chan);
  }
  return n;
}

bool ImplicitRrGraph::lb_tap_bit(std::size_t side, std::size_t pos,
                                 std::size_t t) const {
  const std::uint64_t* w =
      lb_tap_.data() + (side * (max_span_ + 1) + pos) * mask_words_;
  return (w[t / 64] >> (t % 64)) & 1;
}

bool ImplicitRrGraph::io_tap_bit(std::size_t pos, std::size_t t) const {
  const std::uint64_t* w = io_tap_.data() + pos * mask_words_;
  return (w[t / 64] >> (t % 64)) & 1;
}

std::vector<RrNodeId> ImplicitRrGraph::ipin_tap_wires(std::size_t x,
                                                      std::size_t y,
                                                      std::size_t pin) const {
  constexpr double kGolden = 0.6180339887498949;
  const auto adj = site_adjacencies(x, y, nx_, ny_);
  std::size_t side = pin % 4;
  if (!adj[side].valid) {
    side = 4;
    for (std::size_t alt = 0; alt < 4; ++alt) {
      if (adj[alt].valid) {
        side = alt;
        break;
      }
    }
    if (side == 4) return {};
  }
  const SiteAdj& a = adj[side];
  const std::size_t fc = arch_.fc_in_tracks();
  const double offset = std::fmod(
      kGolden * static_cast<double>(pin + 1) +
          0.37 * static_cast<double>(a.pos),
      1.0);
  std::vector<RrNodeId> out;
  out.reserve(fc);
  for (std::size_t k = 0; k < fc; ++k) {
    const double frac = std::fmod(
        offset + static_cast<double>(k) / static_cast<double>(fc), 1.0);
    const std::size_t track =
        static_cast<std::size_t>(frac * static_cast<double>(arch_.W)) %
        arch_.W;
    const RrNodeId wire = a.horizontal ? wire_at_x(a.chan, track, a.pos)
                                       : wire_at_y(a.chan, track, a.pos);
    if (wire != kNoRrNode &&
        std::find(out.begin(), out.end(), wire) == out.end()) {
      out.push_back(wire);
    }
  }
  return out;
}

std::vector<RrNodeId> ImplicitRrGraph::opin_start_wires(
    std::size_t x, std::size_t y, std::size_t pin) const {
  constexpr double kGolden = 0.6180339887498949;
  const auto adj = site_adjacencies(x, y, nx_, ny_);
  std::vector<RrNodeId> all_starts;
  for (const SiteAdj& a : adj) {
    if (!a.valid) continue;
    for (bool inc : {true, false}) {
      if (a.horizontal) {
        wires_starting_x(a.chan, a.pos, inc, all_starts);
      } else {
        wires_starting_y(a.chan, a.pos, inc, all_starts);
      }
    }
  }
  std::vector<RrNodeId> out;
  if (all_starts.empty()) return out;
  if (arch_.dense_fanout) {
    for (RrNodeId w : all_starts) {
      if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
    }
    return out;
  }
  const std::size_t want = std::min(all_starts.size(), arch_.fc_out_tracks());
  const double offset =
      std::fmod(kGolden * static_cast<double>(pin + 1), 1.0);
  for (std::size_t k = 0; k < want; ++k) {
    const double frac = std::fmod(
        offset + static_cast<double>(k) / static_cast<double>(want), 1.0);
    const RrNodeId w =
        all_starts[static_cast<std::size_t>(
                       frac * static_cast<double>(all_starts.size())) %
                   all_starts.size()];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  return out;
}

void ImplicitRrGraph::opin_union(std::size_t x, std::size_t y,
                                 std::vector<RrNodeId>& out) const {
  const bool lb = is_lb(x, y);
  const std::size_t pins = lb ? arch_.lb_outputs() : arch_.io_per_pad;
  for (std::size_t p = 0; p < pins; ++p) {
    for (RrNodeId w : opin_start_wires(x, y, p)) {
      if (std::find(out.begin(), out.end(), w) == out.end()) {
        out.push_back(w);
      }
    }
  }
}

void ImplicitRrGraph::connect_x(std::size_t j, std::size_t pos,
                                bool increasing, std::size_t target_track,
                                std::vector<RrEdge>& out) const {
  if (j > ny_ || pos < 1 || pos > nx_) return;
  const std::size_t W = arch_.W;
  if (arch_.dense_fanout) {
    for (std::size_t t = increasing ? 0 : 1; t < W; t += 2) {
      if (is_start(t, nx_, pos)) {
        out.push_back({wire_id_x(j, t, seg_index(t, nx_, pos)),
                       RrSwitch::kWireToWire});
      }
    }
    return;
  }
  const std::size_t par = increasing ? 0 : 1;
  for (std::size_t d = 0; d < W; ++d) {
    if (target_track >= d) {
      const std::size_t t = target_track - d;
      if (t % 2 == par && is_start(t, nx_, pos)) {
        out.push_back({wire_id_x(j, t, seg_index(t, nx_, pos)),
                       RrSwitch::kWireToWire});
        return;
      }
    }
    const std::size_t t2 = target_track + d;
    if (t2 < W && t2 % 2 == par && is_start(t2, nx_, pos)) {
      out.push_back({wire_id_x(j, t2, seg_index(t2, nx_, pos)),
                     RrSwitch::kWireToWire});
      return;
    }
  }
}

void ImplicitRrGraph::connect_y(std::size_t i, std::size_t pos,
                                bool increasing, std::size_t target_track,
                                std::vector<RrEdge>& out) const {
  if (i > nx_ || pos < 1 || pos > ny_) return;
  const std::size_t W = arch_.W;
  if (arch_.dense_fanout) {
    for (std::size_t t = increasing ? 0 : 1; t < W; t += 2) {
      if (is_start(t, ny_, pos)) {
        out.push_back({wire_id_y(i, t, seg_index(t, ny_, pos)),
                       RrSwitch::kWireToWire});
      }
    }
    return;
  }
  const std::size_t par = increasing ? 0 : 1;
  for (std::size_t d = 0; d < W; ++d) {
    if (target_track >= d) {
      const std::size_t t = target_track - d;
      if (t % 2 == par && is_start(t, ny_, pos)) {
        out.push_back({wire_id_y(i, t, seg_index(t, ny_, pos)),
                       RrSwitch::kWireToWire});
        return;
      }
    }
    const std::size_t t2 = target_track + d;
    if (t2 < W && t2 % 2 == par && is_start(t2, ny_, pos)) {
      out.push_back({wire_id_y(i, t2, seg_index(t2, ny_, pos)),
                     RrSwitch::kWireToWire});
      return;
    }
  }
}

void ImplicitRrGraph::append_wire_edges(const RrNode& n, RrNodeId id,
                                        std::vector<RrEdge>& out) const {
  (void)id;
  const std::size_t t = n.track;
  if (n.type == RrType::kChanX) {
    const std::size_t j = n.y_lo;
    // Connection-box taps, in the explicit builder's y-major site-scan
    // order: first the sites of row j (this wire is their "above"
    // channel), then row j+1 ("below"), x ascending within each.
    for (std::size_t x = n.x_lo; x <= n.x_hi; ++x) {
      const bool tap = (j == 0) ? io_tap_bit(x, t) : lb_tap_bit(1, x, t);
      if (tap) {
        out.push_back({site_base(x, j) + 3, RrSwitch::kWireToIpin});
      }
    }
    for (std::size_t x = n.x_lo; x <= n.x_hi; ++x) {
      const bool tap =
          (j + 1 == ny_ + 1) ? io_tap_bit(x, t) : lb_tap_bit(0, x, t);
      if (tap) {
        out.push_back({site_base(x, j + 1) + 3, RrSwitch::kWireToIpin});
      }
    }
    // Switch-box moves past the wire's driven end: straight, then the
    // pattern's up turn, then its down turn (sb_turn_track).
    const std::size_t end = n.increasing ? n.x_hi : n.x_lo;
    const std::size_t next_x = n.increasing ? end + 1 : end - 1;
    if (next_x >= 1 && next_x <= nx_) {
      connect_x(j, next_x, n.increasing, t, out);
    }
    const std::size_t i = n.increasing ? end : end - 1;
    if (i <= nx_) {
      connect_y(i, j + 1, true, arch_.sb_turn_track(t, true), out);
      if (j >= 1) {
        connect_y(i, j, false, arch_.sb_turn_track(t, false), out);
      }
    }
  } else {
    const std::size_t i = n.x_lo;
    // Taps: for each covered row y ascending, site (i, y) sees this as
    // its "right" channel and site (i+1, y) as its "left" — the same
    // (x-ascending within a row) visit order as the explicit scan.
    for (std::size_t y = n.y_lo; y <= n.y_hi; ++y) {
      const bool tap_l = (i == 0) ? io_tap_bit(y, t) : lb_tap_bit(3, y, t);
      if (tap_l) {
        out.push_back({site_base(i, y) + 3, RrSwitch::kWireToIpin});
      }
      const bool tap_r =
          (i + 1 == nx_ + 1) ? io_tap_bit(y, t) : lb_tap_bit(2, y, t);
      if (tap_r) {
        out.push_back({site_base(i + 1, y) + 3, RrSwitch::kWireToIpin});
      }
    }
    const std::size_t end = n.increasing ? n.y_hi : n.y_lo;
    const std::size_t next_y = n.increasing ? end + 1 : end - 1;
    if (next_y >= 1 && next_y <= ny_) {
      connect_y(i, next_y, n.increasing, t, out);
    }
    const std::size_t j = n.increasing ? end : end - 1;
    if (j <= ny_) {
      connect_x(j, i + 1, true, arch_.sb_turn_track(t, true), out);
      if (i >= 1) {
        connect_x(j, i, false, arch_.sb_turn_track(t, false), out);
      }
    }
  }
}

void ImplicitRrGraph::append_edges(RrNodeId id,
                                   std::vector<RrEdge>& out) const {
  if (id < wire_base_) {
    switch (id % 4) {
      case 0:  // SOURCE -> pooled OPIN
        out.push_back({id + 2, RrSwitch::kInternal});
        return;
      case 1:  // SINK: no out-edges
        return;
      case 3:  // pooled IPIN -> SINK
        out.push_back({id - 2, RrSwitch::kInternal});
        return;
      default:
        break;
    }
    // Pooled OPIN -> wire starts: first-seen union of the per-pin Fcout
    // patterns, pins ascending (build_edges' opin_union loop).
    std::size_t x = 0, y = 0;
    ordinal_to_xy(id / 4, x, y);
    std::vector<RrNodeId> u;
    opin_union(x, y, u);
    for (RrNodeId w : u) out.push_back({w, RrSwitch::kOpinToWire});
    return;
  }
  append_wire_edges(node(id), id, out);
}

std::size_t ImplicitRrGraph::edge_count() const {
  std::size_t cached = edge_count_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  std::vector<RrEdge> buf;
  std::size_t total = 0;
  for (RrNodeId id = 0; id < node_count_; ++id) {
    buf.clear();
    append_edges(id, buf);
    total += buf.size();
  }
  edge_count_cache_.store(total, std::memory_order_relaxed);
  return total;
}

std::size_t ImplicitRrGraph::memory_bytes() const {
  return sizeof(*this) +
         (px_.capacity() + py_.capacity()) * sizeof(std::uint32_t) +
         (lb_tap_.capacity() + io_tap_.capacity()) * sizeof(std::uint64_t);
}

std::pair<std::size_t, std::size_t> grid_size_for(const ArchParams& arch,
                                                  std::size_t n_lbs,
                                                  std::size_t n_ios) {
  std::size_t n = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::ceil(std::sqrt(static_cast<double>(n_lbs)))));
  // Large fabrics get a little placement slack: ~100% logic occupancy
  // leaves the placer no room to relieve channel hot spots (VPR similarly
  // benefits from a few percent of spare sites on big designs).
  if (n > 24) n += 2;
  while (2 * (n + n) * arch.io_per_pad < n_ios) ++n;
  return {n, n};
}

}  // namespace nemfpga
