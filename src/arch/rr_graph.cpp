#include "arch/rr_graph.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace nemfpga {

RrGraph::RrGraph(const ArchParams& arch, std::size_t nx, std::size_t ny)
    : arch_(arch), nx_(nx), ny_(ny) {
  if (nx == 0 || ny == 0) throw std::invalid_argument("RrGraph: empty grid");
  if (arch.W < 2 || arch.L == 0) throw std::invalid_argument("RrGraph: bad arch");
  sites_.resize((nx_ + 2) * (ny_ + 2));
  build_sites();
  build_wires();
  adj_.resize(nodes_.size());
  build_edges();
  finalize_csr();
}

std::size_t RrGraph::site_index(std::size_t x, std::size_t y) const {
  return y * (nx_ + 2) + x;
}

bool RrGraph::is_lb(std::size_t x, std::size_t y) const {
  return x >= 1 && x <= nx_ && y >= 1 && y <= ny_;
}

bool RrGraph::is_io(std::size_t x, std::size_t y) const {
  if (x > nx_ + 1 || y > ny_ + 1) return false;
  const bool border_x = (x == 0 || x == nx_ + 1);
  const bool border_y = (y == 0 || y == ny_ + 1);
  return border_x != border_y;  // border but not corner
}

const SiteIds& RrGraph::site(std::size_t x, std::size_t y) const {
  if (!is_lb(x, y) && !is_io(x, y)) {
    throw std::out_of_range("RrGraph::site: empty cell");
  }
  return sites_[site_index(x, y)];
}

void RrGraph::build_sites() {
  // Input pins are modeled as one pooled IPIN node with capacity I (the
  // LB's full input crossbar makes its input pins logically equivalent:
  // any pin can feed any LUT input, Fig 7b). Output pins are likewise one
  // pooled OPIN with capacity N. The pools carry the union of the per-pin
  // connection-block patterns, so channel/track congestion is modeled
  // exactly while the pin-assignment matching inside the CB is deferred to
  // the configuration compiler (config/bitstream.*), which measures the
  // approximation: ~80-90% of connections get a conflict-free pin; the
  // rest each need one extra CB tap relay (<0.2% relay overhead).
  auto make_site = [&](std::size_t x, std::size_t y, std::size_t n_opin,
                       std::size_t n_ipin, std::size_t src_cap,
                       std::size_t snk_cap) {
    SiteIds s;
    const auto xy = [&](RrNode& n) {
      n.x_lo = n.x_hi = static_cast<std::uint16_t>(x);
      n.y_lo = n.y_hi = static_cast<std::uint16_t>(y);
    };
    RrNode src;
    src.type = RrType::kSource;
    src.capacity = static_cast<std::uint16_t>(src_cap);
    xy(src);
    s.source = static_cast<RrNodeId>(nodes_.size());
    nodes_.push_back(src);

    RrNode snk;
    snk.type = RrType::kSink;
    snk.capacity = static_cast<std::uint16_t>(snk_cap);
    xy(snk);
    s.sink = static_cast<RrNodeId>(nodes_.size());
    nodes_.push_back(snk);

    RrNode opin;
    opin.type = RrType::kOpin;
    opin.capacity = static_cast<std::uint16_t>(n_opin);
    xy(opin);
    s.opins.push_back(static_cast<RrNodeId>(nodes_.size()));
    nodes_.push_back(opin);

    RrNode ipin;
    ipin.type = RrType::kIpin;
    ipin.capacity = static_cast<std::uint16_t>(n_ipin);
    xy(ipin);
    s.ipins.push_back(static_cast<RrNodeId>(nodes_.size()));
    nodes_.push_back(ipin);

    s.pin_count_opin = n_opin;
    s.pin_count_ipin = n_ipin;
    sites_[site_index(x, y)] = std::move(s);
  };

  for (std::size_t y = 0; y <= ny_ + 1; ++y) {
    for (std::size_t x = 0; x <= nx_ + 1; ++x) {
      if (is_lb(x, y)) {
        make_site(x, y, arch_.lb_outputs(), arch_.lb_inputs(),
                  arch_.lb_outputs(), arch_.lb_inputs());
      } else if (is_io(x, y)) {
        make_site(x, y, arch_.io_per_pad, arch_.io_per_pad, arch_.io_per_pad,
                  arch_.io_per_pad);
      }
    }
  }
}

void RrGraph::build_wires() {
  const std::size_t W = arch_.W;
  const std::size_t L = arch_.L;

  // Build one channel's wires; `span` is the number of positions (1..span).
  // cover[t * span + (pos-1)] records which wire owns (track, pos).
  auto build_channel = [&](bool horizontal, std::size_t chan_idx,
                           std::size_t span,
                           std::vector<RrNodeId>& cover) {
    cover.assign(W * span, kNoRrNode);
    for (std::size_t t = 0; t < W; ++t) {
      const bool inc = (t % 2 == 0);
      const std::size_t stagger = (t / 2) % L;
      // Segment boundaries: wires break after position (stagger), then
      // every L positions. For DEC wires mirror the pattern.
      std::size_t pos = 1;
      while (pos <= span) {
        std::size_t seg_end;
        if (inc) {
          // First segment may be a stub of length `stagger`.
          if (pos == 1 && stagger > 0) {
            seg_end = std::min(span, stagger);
          } else {
            seg_end = std::min(span, pos + L - 1);
          }
        } else {
          // Mirror: stub at the high end.
          const std::size_t from_top = span - pos + 1;
          if (pos == 1) {
            // Work from the bottom, but the stub sits at the top; compute
            // the boundary layout identically by aligning to (span-stagger).
            const std::size_t first_len = (span > stagger)
                ? ((span - stagger - 1) % L) + 1
                : span;
            seg_end = std::min(span, pos + first_len - 1);
          } else {
            seg_end = std::min(span, pos + L - 1);
          }
          (void)from_top;
        }
        RrNode n;
        n.type = horizontal ? RrType::kChanX : RrType::kChanY;
        n.increasing = inc;
        n.track = static_cast<std::uint16_t>(t);
        n.length = static_cast<std::uint8_t>(seg_end - pos + 1);
        if (horizontal) {
          n.x_lo = static_cast<std::uint16_t>(pos);
          n.x_hi = static_cast<std::uint16_t>(seg_end);
          n.y_lo = n.y_hi = static_cast<std::uint16_t>(chan_idx);
        } else {
          n.y_lo = static_cast<std::uint16_t>(pos);
          n.y_hi = static_cast<std::uint16_t>(seg_end);
          n.x_lo = n.x_hi = static_cast<std::uint16_t>(chan_idx);
        }
        const auto id = static_cast<RrNodeId>(nodes_.size());
        nodes_.push_back(n);
        ++wire_count_;
        for (std::size_t p = pos; p <= seg_end; ++p) {
          cover[t * span + (p - 1)] = id;
        }
        pos = seg_end + 1;
      }
    }
  };

  cover_x_.resize(ny_ + 1);
  for (std::size_t j = 0; j <= ny_; ++j) {
    build_channel(true, j, nx_, cover_x_[j]);
  }
  cover_y_.resize(nx_ + 1);
  for (std::size_t i = 0; i <= nx_; ++i) {
    build_channel(false, i, ny_, cover_y_[i]);
  }
}

RrNodeId RrGraph::wire_at_x(std::size_t j, std::size_t track,
                            std::size_t x) const {
  if (j > ny_ || track >= arch_.W || x < 1 || x > nx_) return kNoRrNode;
  return cover_x_[j][track * nx_ + (x - 1)];
}

RrNodeId RrGraph::wire_at_y(std::size_t i, std::size_t track,
                            std::size_t y) const {
  if (i > nx_ || track >= arch_.W || y < 1 || y > ny_) return kNoRrNode;
  return cover_y_[i][track * ny_ + (y - 1)];
}

std::vector<RrNodeId> RrGraph::wires_starting_x(std::size_t j, std::size_t x,
                                                bool increasing) const {
  std::vector<RrNodeId> out;
  if (j > ny_ || x < 1 || x > nx_) return out;
  for (std::size_t t = increasing ? 0 : 1; t < arch_.W; t += 2) {
    const RrNodeId id = wire_at_x(j, t, x);
    if (id == kNoRrNode) continue;
    const RrNode& n = nodes_[id];
    const std::size_t start = n.increasing ? n.x_lo : n.x_hi;
    if (start == x) out.push_back(id);
  }
  return out;
}

std::vector<RrNodeId> RrGraph::wires_starting_y(std::size_t i, std::size_t y,
                                                bool increasing) const {
  std::vector<RrNodeId> out;
  if (i > nx_ || y < 1 || y > ny_) return out;
  for (std::size_t t = increasing ? 0 : 1; t < arch_.W; t += 2) {
    const RrNodeId id = wire_at_y(i, t, y);
    if (id == kNoRrNode) continue;
    const RrNode& n = nodes_[id];
    const std::size_t start = n.increasing ? n.y_lo : n.y_hi;
    if (start == y) out.push_back(id);
  }
  return out;
}

void RrGraph::add_edge(RrNodeId from, RrNodeId to, RrSwitch sw) {
  adj_[from].push_back({to, sw});
}


namespace {
/// One adjacent channel of a site: (horizontal?, channel index, position).
struct SiteAdj {
  bool horizontal;
  std::size_t chan;
  std::size_t pos;
  bool valid;
};
}  // namespace

static std::array<SiteAdj, 4> site_adjacencies(std::size_t x, std::size_t y,
                                               std::size_t nx,
                                               std::size_t ny) {
  return {{
      {true, y - 1, x, y >= 1 && x >= 1 && x <= nx},   // below
      {true, y, x, y <= ny && x >= 1 && x <= nx},      // above
      {false, x - 1, y, x >= 1 && y >= 1 && y <= ny},  // left
      {false, x, y, x <= nx && y >= 1 && y <= ny},     // right
  }};
}

std::vector<RrNodeId> RrGraph::ipin_tap_wires(std::size_t x, std::size_t y,
                                              std::size_t pin) const {
  constexpr double kGolden = 0.6180339887498949;
  const auto adj = site_adjacencies(x, y, nx_, ny_);
  std::size_t side = pin % 4;
  if (!adj[side].valid) {
    side = 4;
    for (std::size_t alt = 0; alt < 4; ++alt) {
      if (adj[alt].valid) {
        side = alt;
        break;
      }
    }
    if (side == 4) return {};
  }
  const SiteAdj& a = adj[side];
  const std::size_t fc = arch_.fc_in_tracks();
  const double offset = std::fmod(
      kGolden * static_cast<double>(pin + 1) +
          0.37 * static_cast<double>(a.pos),
      1.0);
  std::vector<RrNodeId> out;
  out.reserve(fc);
  for (std::size_t k = 0; k < fc; ++k) {
    const double frac = std::fmod(
        offset + static_cast<double>(k) / static_cast<double>(fc), 1.0);
    const std::size_t track =
        static_cast<std::size_t>(frac * static_cast<double>(arch_.W)) %
        arch_.W;
    const RrNodeId wire = a.horizontal ? wire_at_x(a.chan, track, a.pos)
                                       : wire_at_y(a.chan, track, a.pos);
    if (wire != kNoRrNode &&
        std::find(out.begin(), out.end(), wire) == out.end()) {
      out.push_back(wire);
    }
  }
  return out;
}

std::vector<RrNodeId> RrGraph::opin_start_wires(std::size_t x, std::size_t y,
                                                std::size_t pin) const {
  constexpr double kGolden = 0.6180339887498949;
  const auto adj = site_adjacencies(x, y, nx_, ny_);
  std::vector<RrNodeId> all_starts;
  for (const SiteAdj& a : adj) {
    if (!a.valid) continue;
    for (bool inc : {true, false}) {
      const auto starts = a.horizontal
                              ? wires_starting_x(a.chan, a.pos, inc)
                              : wires_starting_y(a.chan, a.pos, inc);
      all_starts.insert(all_starts.end(), starts.begin(), starts.end());
    }
  }
  std::vector<RrNodeId> out;
  if (all_starts.empty()) return out;
  if (arch_.dense_fanout) {
    for (RrNodeId w : all_starts) {
      if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
    }
    return out;
  }
  const std::size_t want = std::min(all_starts.size(), arch_.fc_out_tracks());
  const double offset =
      std::fmod(kGolden * static_cast<double>(pin + 1), 1.0);
  for (std::size_t k = 0; k < want; ++k) {
    const double frac = std::fmod(
        offset + static_cast<double>(k) / static_cast<double>(want), 1.0);
    const RrNodeId w =
        all_starts[static_cast<std::size_t>(
                       frac * static_cast<double>(all_starts.size())) %
                   all_starts.size()];
    if (std::find(out.begin(), out.end(), w) == out.end()) out.push_back(w);
  }
  return out;
}

void RrGraph::build_edges() {
  // --- Intra-site edges and pin <-> channel edges ------------------------
  for (std::size_t y = 0; y <= ny_ + 1; ++y) {
    for (std::size_t x = 0; x <= nx_ + 1; ++x) {
      if (!is_lb(x, y) && !is_io(x, y)) continue;
      const SiteIds& s = sites_[site_index(x, y)];
      for (RrNodeId o : s.opins) add_edge(s.source, o, RrSwitch::kInternal);
      for (RrNodeId i : s.ipins) add_edge(i, s.sink, RrSwitch::kInternal);

      // OPIN pool -> wire starts and wire -> IPIN pool taps: the union
      // of the per-physical-pin patterns (opin_start_wires / ipin_tap_wires
      // are the single source of truth; the configuration compiler re-uses
      // them to assign nets to concrete pins).
      {
        std::vector<RrNodeId> opin_union;
        for (std::size_t p = 0; p < s.pin_count_opin; ++p) {
          for (RrNodeId w : opin_start_wires(x, y, p)) {
            if (std::find(opin_union.begin(), opin_union.end(), w) ==
                opin_union.end()) {
              opin_union.push_back(w);
            }
          }
        }
        for (RrNodeId w : opin_union) {
          add_edge(s.opins[0], w, RrSwitch::kOpinToWire);
        }

        std::vector<RrNodeId> ipin_union;
        for (std::size_t p = 0; p < s.pin_count_ipin; ++p) {
          for (RrNodeId w : ipin_tap_wires(x, y, p)) {
            if (std::find(ipin_union.begin(), ipin_union.end(), w) ==
                ipin_union.end()) {
              ipin_union.push_back(w);
            }
          }
        }
        for (RrNodeId w : ipin_union) {
          add_edge(w, s.ipins[0], RrSwitch::kWireToIpin);
        }
      }
    }
  }

  // --- Switch-box wire -> wire edges --------------------------------------
  // Each wire's end connects to Fs driver muxes: the straight continuation
  // (same track) plus one turn into each perpendicular direction. Turns use
  // a Wilton-style track rotation (+/- a few tracks) so that every track is
  // reachable from every other within a handful of switch boxes — a plain
  // disjoint pattern would split the fabric into near-isolated track
  // domains.
  auto prefer_track = [&](const std::vector<RrNodeId>& cands,
                          std::size_t track) -> RrNodeId {
    if (cands.empty()) return kNoRrNode;
    RrNodeId best = cands[0];
    std::size_t best_dist = arch_.W;
    for (RrNodeId c : cands) {
      const std::size_t ct = nodes_[c].track;
      const std::size_t d = ct > track ? ct - track : track - ct;
      if (d < best_dist) {
        best_dist = d;
        best = c;
      }
    }
    return best;
  };
  // One edge per move normally; every candidate under dense_fanout (the
  // candidate set mixes full wires and clipped border stubs, so a single
  // preferred pick is not geometry-complete — see ArchParams::dense_fanout).
  auto connect = [&](RrNodeId from, const std::vector<RrNodeId>& cands,
                     std::size_t track) {
    if (arch_.dense_fanout) {
      for (RrNodeId c : cands) add_edge(from, c, RrSwitch::kWireToWire);
      return;
    }
    const RrNodeId w = prefer_track(cands, track);
    if (w != kNoRrNode) add_edge(from, w, RrSwitch::kWireToWire);
  };
  const std::size_t rot = 5;  // Wilton rotation applied at turns

  const auto n_nodes = static_cast<RrNodeId>(nodes_.size());
  for (RrNodeId id = 0; id < n_nodes; ++id) {
    const RrNode& n = nodes_[id];
    if (n.type == RrType::kChanX) {
      const std::size_t j = n.y_lo;
      const std::size_t end = n.increasing ? n.x_hi : n.x_lo;
      // Straight continuation.
      const std::size_t next_x = n.increasing ? end + 1 : end - 1;
      if (next_x >= 1 && next_x <= nx_) {
        connect(id, wires_starting_x(j, next_x, n.increasing), n.track);
      }
      // Turns through the SB at the junction past `end`:
      // vertical channel index i = end (INC) or end - 1 (DEC).
      const std::size_t i = n.increasing ? end : end - 1;
      if (i <= nx_) {
        connect(id, wires_starting_y(i, j + 1, true),
                (n.track + rot) % arch_.W);
        if (j >= 1) {
          connect(id, wires_starting_y(i, j, false),
                  (n.track + arch_.W - rot) % arch_.W);
        }
      }
    } else if (n.type == RrType::kChanY) {
      const std::size_t i = n.x_lo;
      const std::size_t end = n.increasing ? n.y_hi : n.y_lo;
      const std::size_t next_y = n.increasing ? end + 1 : end - 1;
      if (next_y >= 1 && next_y <= ny_) {
        connect(id, wires_starting_y(i, next_y, n.increasing), n.track);
      }
      const std::size_t j = n.increasing ? end : end - 1;
      if (j <= ny_) {
        connect(id, wires_starting_x(j, i + 1, true),
                (n.track + rot) % arch_.W);
        if (i >= 1) {
          connect(id, wires_starting_x(j, i, false),
                  (n.track + arch_.W - rot) % arch_.W);
        }
      }
    }
  }
}

void RrGraph::finalize_csr() {
  edge_offsets_.assign(nodes_.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < adj_.size(); ++i) {
    edge_offsets_[i] = static_cast<std::uint32_t>(total);
    total += adj_[i].size();
  }
  edge_offsets_[adj_.size()] = static_cast<std::uint32_t>(total);
  edges_.reserve(total);
  for (auto& v : adj_) {
    edges_.insert(edges_.end(), v.begin(), v.end());
    v.clear();
    v.shrink_to_fit();
  }
  adj_.clear();
}

std::pair<std::size_t, std::size_t> grid_size_for(const ArchParams& arch,
                                                  std::size_t n_lbs,
                                                  std::size_t n_ios) {
  std::size_t n = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::ceil(std::sqrt(static_cast<double>(n_lbs)))));
  // Large fabrics get a little placement slack: ~100% logic occupancy
  // leaves the placer no room to relieve channel hot spots (VPR similarly
  // benefits from a few percent of spare sites on big designs).
  if (n > 24) n += 2;
  while (2 * (n + n) * arch.io_per_pad < n_ios) ++n;
  return {n, n};
}

}  // namespace nemfpga
