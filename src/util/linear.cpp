#include "util/linear.hpp"

#include <cmath>
#include <stdexcept>

namespace nemfpga {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

void Matrix::fill(double value) {
  for (auto& v : data_) v = value;
}

bool LuSolver::factor(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("LuSolver: not square");
  n_ = a.rows();
  lu_ = a;
  perm_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(lu_.at(k, k));
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double mag = std::fabs(lu_.at(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != k) {
      std::swap(perm_[k], perm_[pivot]);
      for (std::size_t c = 0; c < n_; ++c) {
        std::swap(lu_.at(k, c), lu_.at(pivot, c));
      }
    }
    const double inv_diag = 1.0 / lu_.at(k, k);
    for (std::size_t r = k + 1; r < n_; ++r) {
      const double factor = lu_.at(r, k) * inv_diag;
      lu_.at(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) {
        lu_.at(r, c) -= factor * lu_.at(k, c);
      }
    }
  }
  return true;
}

std::vector<double> LuSolver::solve(const std::vector<double>& b) const {
  if (b.size() != n_) throw std::invalid_argument("LuSolver: size mismatch");
  std::vector<double> x(n_);
  // Forward substitution on the permuted RHS.
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_.at(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) sum -= lu_.at(ii, j) * x[j];
    x[ii] = sum / lu_.at(ii, ii);
  }
  return x;
}

}  // namespace nemfpga
