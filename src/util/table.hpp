// Aligned ASCII tables for the benchmark harnesses. Every bench binary
// reproduces a table or figure from the paper; this keeps their output
// uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace nemfpga {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Format a double with fixed precision (helper for row building).
  static std::string num(double v, int precision = 3);

  /// Format a ratio like "2.1x".
  static std::string ratio(double v, int precision = 2);

  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nemfpga
