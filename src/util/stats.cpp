#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace nemfpga {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min: no samples");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max: no samples");
  return max_;
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("geometric_mean: empty");
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) throw std::invalid_argument("geometric_mean: non-positive");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: bad p");
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  // Select the lo-th order statistic; the hi-th (== lo+1) is then the
  // minimum of the partitioned right tail. O(n) expected vs a full sort.
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(lo),
                   values.end());
  const double v_lo = values[lo];
  double v_hi = v_lo;
  if (hi != lo && frac > 0.0) {
    v_hi = *std::min_element(
        values.begin() + static_cast<std::ptrdiff_t>(lo) + 1, values.end());
  }
  return v_lo * (1.0 - frac) + v_hi * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::to_string(std::string_view label) const {
  std::ostringstream os;
  if (!label.empty()) os << label << "\n";
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "  [" << bin_lo(b) << ", " << bin_hi(b) << ")  " << counts_[b] << "\t";
    const auto bar = counts_[b] * 50 / peak;
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << "\n";
  }
  if (underflow_ > 0) os << "  below " << lo_ << "  " << underflow_ << "\n";
  if (overflow_ > 0) os << "  above " << hi_ << "  " << overflow_ << "\n";
  return os.str();
}

}  // namespace nemfpga
