// Small dense linear algebra for the SPICE-lite modified-nodal-analysis
// solver. Crossbar programming netlists have at most a few hundred nodes,
// so a dense LU with partial pivoting is both simple and fast enough.
#pragma once

#include <cstddef>
#include <vector>

namespace nemfpga {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  void fill(double value);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting, reusable across right-hand sides
/// (the transient solver refactors only when the switch topology changes).
class LuSolver {
 public:
  /// Factor a square matrix. Returns false if (numerically) singular.
  bool factor(const Matrix& a);

  /// Solve A x = b using the stored factors. Requires a prior successful
  /// factor() with matching dimension.
  std::vector<double> solve(const std::vector<double>& b) const;

  std::size_t dim() const { return n_; }

 private:
  std::size_t n_ = 0;
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

}  // namespace nemfpga
