#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nemfpga {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed; xoshiro requires a nonzero state, which splitmix64
  // guarantees with overwhelming probability (and we nudge if not).
  for (auto& s : s_) s = splitmix64(seed);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::from_string(std::string_view name, std::uint64_t salt) {
  // FNV-1a over the name, mixed with the salt.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ salt;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Rng(h);
}

Rng Rng::fork(std::uint64_t index) { return from_stream(next_u64(), index); }

Rng Rng::from_stream(std::uint64_t base, std::uint64_t index) {
  // Mix the index through a splitmix64 step before folding it into the
  // base so that neighbouring indices land in unrelated seed regions;
  // the Rng constructor then re-expands the combined seed.
  std::uint64_t ix = index;
  return Rng(base ^ splitmix64(ix));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) {
    // (0ULL - n) % n below would divide by zero (UB).
    throw std::invalid_argument("Rng::uniform_int: n must be > 0");
  }
  // Debiased modulo via rejection sampling.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_cached_normal_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double sigma) {
  return mean + sigma * normal();
}

bool Rng::chance(double p) {
  return uniform() < p;
}

}  // namespace nemfpga
