// Deterministic pseudo-random number generation for Monte-Carlo device
// sampling, synthetic netlist generation, and the annealing placer.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64. We own the
// implementation so results are bit-identical across platforms and standard
// libraries, which keeps the regression tests and experiment tables stable.
#pragma once

#include <cstdint>
#include <string_view>

namespace nemfpga {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derive a seed from a string (e.g. a benchmark circuit name) so each
  /// named workload gets an independent, reproducible stream.
  static Rng from_string(std::string_view name, std::uint64_t salt = 0);

  /// Child stream for task `index`, derived from one draw of this
  /// generator (the parent advances by exactly one next_u64 regardless of
  /// index). fork(i) and fork-of-the-next-call produce statistically
  /// independent streams, so Monte-Carlo loops that give task i the
  /// stream fork(i) are bit-identical at any thread count.
  Rng fork(std::uint64_t index);

  /// Child stream `index` of a fork point previously captured with
  /// next_u64(). Lets a parallel loop capture the fork point once and
  /// derive per-task generators from worker threads without touching the
  /// shared parent.
  static Rng from_stream(std::uint64_t base, std::uint64_t index);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma);

  /// Bernoulli trial.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace nemfpga
