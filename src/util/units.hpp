// Physical constants and unit helpers used across the device and circuit
// models. All quantities are SI unless a suffix says otherwise.
#pragma once

namespace nemfpga {

/// Vacuum permittivity [F/m].
inline constexpr double kEps0 = 8.8541878128e-12;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Thermal voltage kT/q at 300 K [V].
inline constexpr double kThermalVoltage300K = 0.025852;

// Unit multipliers: write `275 * nm` instead of 2.75e-7.
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;
inline constexpr double milli = 1e-3;
inline constexpr double micro = 1e-6;
inline constexpr double nano = 1e-9;
inline constexpr double pico = 1e-12;
inline constexpr double femto = 1e-15;
inline constexpr double atto = 1e-18;

}  // namespace nemfpga
