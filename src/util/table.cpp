#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace nemfpga {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::ratio(double v, int precision) {
  return num(v, precision) + "x";
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace nemfpga
