// Deterministic parallel execution for the embarrassingly parallel hot
// paths: Monte-Carlo yield trials (Sec 2.3), population sampling (Fig 6),
// channel-width probes (Sec 3.3), and the buffer-downsizing study sweep
// (Sec 3.4). Determinism is the design constraint — every parallel loop
// in this codebase must produce bit-identical results at any thread
// count, which callers achieve by (a) deriving one independent Rng stream
// per task index (Rng::fork / Rng::from_stream) instead of sharing a
// sequential generator, and (b) reducing per-task partial results in
// task-index order. The pool itself guarantees only that each index runs
// exactly once; it makes no ordering promise.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace nemfpga {

/// Fixed-size worker pool with a blocking fork-join parallel_for. The
/// calling thread always participates in the loop, so a 1-thread pool is
/// an inline serial loop with zero synchronisation.
class ThreadPool {
 public:
  /// `threads` is the total worker count including the caller; 0 and 1
  /// both mean "serial".
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute loop bodies (spawned workers + caller).
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Run body(i) for every i in [0, n), blocking until all complete.
  /// Indices are claimed dynamically in chunks, so the execution order is
  /// unspecified — bodies must be index-deterministic and share-nothing
  /// (or synchronise their shared writes). The first exception thrown by
  /// any body is rethrown here; remaining indices may be skipped. Nested
  /// calls (from inside a body) run serially on the calling thread, so
  /// composed parallel layers cannot deadlock.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide pool used by the free parallel_for/parallel_map:
  /// NF_THREADS if set (>= 1), otherwise std::thread::hardware_concurrency.
  /// Constructed once on first use; NF_THREADS is read at that point.
  static ThreadPool& global();

  /// The pool the free functions on this thread route through: the
  /// innermost active ScopedUse override, or global().
  static ThreadPool& current();

  /// RAII override of current() for the enclosing scope (this thread
  /// only). Lets tests compare NF_THREADS=1 vs NF_THREADS=8 behaviour in
  /// one process without re-reading the environment.
  class ScopedUse {
   public:
    explicit ScopedUse(ThreadPool& pool);
    ~ScopedUse();
    ScopedUse(const ScopedUse&) = delete;
    ScopedUse& operator=(const ScopedUse&) = delete;

   private:
    ThreadPool* prev_;
  };

 private:
  struct Job;

  void worker_loop();
  static void drain(Job& job);

  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
};

/// parallel_for over ThreadPool::current().
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Evaluate fn(i) for i in [0, n) on ThreadPool::current() and return the
/// results in index order (the deterministic-reduction building block).
/// fn must be safe to invoke concurrently from multiple threads.
template <typename F>
auto parallel_map(std::size_t n, F&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<F&, std::size_t>>> {
  using T = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
  std::vector<std::optional<T>> slots(n);
  parallel_for(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<T> out;
  out.reserve(n);
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

}  // namespace nemfpga
