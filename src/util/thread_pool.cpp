#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace nemfpga {
namespace {

/// True while this thread is executing a parallel_for body; nested
/// parallel calls then run inline (serial) instead of re-entering the
/// pool, which keeps composed layers (e.g. per-circuit loop around the
/// channel-width probe loop) deadlock-free.
thread_local bool t_in_parallel_region = false;

/// Innermost ScopedUse override for this thread.
thread_local ThreadPool* t_current_pool = nullptr;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("NF_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

}  // namespace

/// One fork-join loop. Workers and the caller claim index chunks from
/// `next`; `pending` counts participants that have not yet finished their
/// claim loop, and the last one out wakes the caller.
struct ThreadPool::Job {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> pending{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t spawn = threads > 1 ? threads - 1 : 0;
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_in_parallel_region = true;  // bodies running here must not re-enter
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to finish
      job = std::move(queue_.back());
      queue_.pop_back();
    }
    drain(*job);
    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->pending.fetch_sub(1) == 1) job->done_cv.notify_all();
  }
}

void ThreadPool::drain(Job& job) {
  for (;;) {
    const std::size_t begin = job.next.fetch_add(job.chunk);
    if (begin >= job.n) return;
    const std::size_t end = std::min(begin + job.chunk, job.n);
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*job.body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.mutex);
        if (!job.error) job.error = std::current_exception();
        // Cancel the remaining indices; in-flight bodies finish normally.
        job.next.store(std::numeric_limits<std::size_t>::max() / 2);
        return;
      }
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_in_parallel_region) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->body = &body;
  // Chunked dynamic claiming: big enough to amortise the atomic, small
  // enough to balance uneven task costs (routings at different widths).
  job->chunk = std::max<std::size_t>(1, n / (thread_count() * 4));
  const std::size_t tickets = std::min(workers_.size(), n - 1);
  job->pending.store(tickets + 1);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t i = 0; i < tickets; ++i) queue_.push_back(job);
  }
  queue_cv_.notify_all();

  t_in_parallel_region = true;
  drain(*job);
  t_in_parallel_region = false;

  std::unique_lock<std::mutex> lock(job->mutex);
  job->pending.fetch_sub(1);
  job->done_cv.wait(lock, [&] { return job->pending.load() == 0; });
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

ThreadPool& ThreadPool::current() {
  return t_current_pool ? *t_current_pool : global();
}

ThreadPool::ScopedUse::ScopedUse(ThreadPool& pool) : prev_(t_current_pool) {
  t_current_pool = &pool;
}

ThreadPool::ScopedUse::~ScopedUse() { t_current_pool = prev_; }

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool::current().parallel_for(n, body);
}

}  // namespace nemfpga
