// Descriptive statistics used by the variation studies (Fig 6), the yield
// analysis, and the multi-benchmark result tables (geometric means in
// Fig 12 / Sec 3.4).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nemfpga {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean; requires all values > 0.
double geometric_mean(std::span<const double> values);

/// Linear-interpolation percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::vector<double> values, double p);

/// Fixed-width histogram over [lo, hi] with uniform bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Render as rows "lo..hi : count ####" for the experiment logs.
  std::string to_string(std::string_view label = "") const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace nemfpga
