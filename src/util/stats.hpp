// Descriptive statistics used by the variation studies (Fig 6), the yield
// analysis, and the multi-benchmark result tables (geometric means in
// Fig 12 / Sec 3.4).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nemfpga {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Extremes of the samples seen so far. Throw std::logic_error when no
  /// sample has been added (a silent 0.0 would read as a measurement in
  /// the bench tables).
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean; requires all values > 0.
double geometric_mean(std::span<const double> values);

/// Linear-interpolation percentile, p in [0, 100]. Requires non-empty
/// input. Selection-based (std::nth_element on the two neighbouring
/// ranks), O(n) expected, instead of a full O(n log n) sort per call.
double percentile(std::vector<double> values, double p);

/// Fixed-width histogram over [lo, hi) with uniform bins. Out-of-range
/// samples are NOT folded into the edge bins (that silently skewed the
/// Fig 6 Vpi/Vpo distributions); they are tracked as underflow/overflow
/// and rendered separately by to_string.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  /// Every sample ever added, including out-of-range ones.
  std::size_t total() const { return total_; }
  /// Samples below lo / at-or-above hi (kept out of the bins).
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Render as rows "lo..hi : count ####" for the experiment logs, with
  /// trailing "below"/"above" rows when any sample fell out of range.
  std::string to_string(std::string_view label = "") const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace nemfpga
