// Half-select programming (paper Sec 2.2, after magnetic-core memory
// [Olsen 64]). Three levels — hold voltage Vhold, select voltage -Vselect,
// and (Vhold + Vselect) — chosen such that
//
//   Vpo < Vhold < Vpi,
//   Vpo < Vhold + Vselect < Vpi,
//   Vhold + 2 Vselect > Vpi,
//
// let a single relay in an array be pulled in while every other relay
// (half-selected or unselected) retains its state inside the hysteresis
// window. With device variation the constraints must hold for every relay:
//
//   Vpo,max < Vhold,  Vhold + Vselect < Vpi,min,  Vhold + 2 Vselect > Vpi,max.
#pragma once

#include <optional>

#include "device/variation.hpp"
#include "program/crossbar.hpp"

namespace nemfpga {

/// The two shared programming levels.
struct ProgrammingVoltages {
  double vhold = 0.0;
  double vselect = 0.0;
};

/// The three noise margins of Fig 6:
///   hold margin    = Vhold - Vpo,max
///   half margin    = Vpi,min - (Vhold + Vselect)
///   select margin  = (Vhold + 2 Vselect) - Vpi,max
struct NoiseMargins {
  double hold = 0.0;
  double half_select = 0.0;
  double full_select = 0.0;
  double worst() const;
};

/// The voltages used to configure the fabricated 2x2 crossbar (Sec 2.3).
inline ProgrammingVoltages paper_crossbar_voltages() { return {5.2, 0.8}; }

/// Do these voltages correctly program a relay with the given (vpi, vpo)?
bool voltages_work_for(double vpi, double vpo, const ProgrammingVoltages& v);

/// Do they work for an entire population envelope?
bool voltages_work_for(const PopulationEnvelope& env,
                       const ProgrammingVoltages& v);

NoiseMargins noise_margins(const PopulationEnvelope& env,
                           const ProgrammingVoltages& v);

/// Closed-form max-min-margin window solver. Balancing the three margins
/// gives m* = (2 Vpi,min - Vpo,max - Vpi,max) / 4 with
/// Vhold = Vpo,max + m*, Vselect = (Vpi,max - Vpo,max) / 2.
/// Returns nullopt when m* <= 0 — exactly the paper's feasibility condition
/// expressed on the envelope: (Vpi,min - Vpo,max) > (Vpi,max - Vpi,min).
std::optional<ProgrammingVoltages> solve_program_window(
    const PopulationEnvelope& env);

/// Program a crossbar to `target` row-by-row with the half-select scheme:
/// reset, then for each row bias it at (Vhold + Vselect) (others at Vhold)
/// and drive targeted columns to -Vselect (others to ground); finish with
/// the all-rows-at-Vhold retention bias. Returns the resulting state.
CrossbarPattern program_half_select(RelayCrossbar& xbar,
                                    const CrossbarPattern& target,
                                    const ProgrammingVoltages& v);

}  // namespace nemfpga
