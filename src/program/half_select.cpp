#include "program/half_select.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "verify/check.hpp"

namespace nemfpga {

double NoiseMargins::worst() const {
  return std::min({hold, half_select, full_select});
}

bool voltages_work_for(double vpi, double vpo, const ProgrammingVoltages& v) {
  if (v.vselect <= 0.0 || v.vhold <= 0.0) return false;
  return vpo < v.vhold &&                 // hold retains pulled-in relays
         v.vhold + v.vselect < vpi &&     // half-select must not pull in
         v.vhold + 2.0 * v.vselect > vpi; // full-select must pull in
}

bool voltages_work_for(const PopulationEnvelope& env,
                       const ProgrammingVoltages& v) {
  if (v.vselect <= 0.0 || v.vhold <= 0.0) return false;
  return env.vpo_max < v.vhold && v.vhold + v.vselect < env.vpi_min &&
         v.vhold + 2.0 * v.vselect > env.vpi_max;
}

NoiseMargins noise_margins(const PopulationEnvelope& env,
                           const ProgrammingVoltages& v) {
  NoiseMargins m;
  m.hold = v.vhold - env.vpo_max;
  m.half_select = env.vpi_min - (v.vhold + v.vselect);
  m.full_select = (v.vhold + 2.0 * v.vselect) - env.vpi_max;
  return m;
}

std::optional<ProgrammingVoltages> solve_program_window(
    const PopulationEnvelope& env) {
  // Balance the three margins (see header): all equal to m*.
  const double m = (2.0 * env.vpi_min - env.vpo_max - env.vpi_max) / 4.0;
  if (m <= 0.0) return std::nullopt;
  ProgrammingVoltages v;
  v.vhold = env.vpo_max + m;
  v.vselect = (env.vpi_max - env.vpo_max) / 2.0;
  // Invariant hook (NF_CHECK_INVARIANTS): a solved window must actually
  // work for the envelope it was solved from, and the balanced-window
  // construction makes all three noise margins equal m*.
  if (verify::checks_enabled()) {
    if (!voltages_work_for(env, v)) {
      throw std::logic_error("solve_program_window: solved window invalid");
    }
    const NoiseMargins nm = noise_margins(env, v);
    const double tol = 1e-9 * std::max(1.0, env.vpi_max);
    if (std::abs(nm.hold - m) > tol || std::abs(nm.half_select - m) > tol ||
        std::abs(nm.full_select - m) > tol) {
      throw std::logic_error("solve_program_window: margins not balanced");
    }
  }
  return v;
}

CrossbarPattern program_half_select(RelayCrossbar& xbar,
                                    const CrossbarPattern& target,
                                    const ProgrammingVoltages& v) {
  if (target.rows() != xbar.rows() || target.cols() != xbar.cols()) {
    throw std::invalid_argument("program_half_select: pattern size mismatch");
  }
  // Initially all relays are in pulled-out states (all VGS at 0).
  xbar.reset();

  std::vector<double> row_v(xbar.rows(), v.vhold);
  std::vector<double> col_v(xbar.cols(), 0.0);
  for (std::size_t r = 0; r < xbar.rows(); ++r) {
    row_v.assign(xbar.rows(), v.vhold);
    row_v[r] = v.vhold + v.vselect;
    for (std::size_t c = 0; c < xbar.cols(); ++c) {
      col_v[c] = target.at(r, c) ? -v.vselect : 0.0;
    }
    xbar.apply_bias(row_v, col_v);
  }
  // Retention bias: all rows at Vhold, all columns grounded.
  row_v.assign(xbar.rows(), v.vhold);
  col_v.assign(xbar.cols(), 0.0);
  xbar.apply_bias(row_v, col_v);
  // Invariant hook (NF_CHECK_INVARIANTS): whenever the applied voltages
  // satisfy every relay's half-select constraints, the programmed state
  // must equal the target — that implication is the whole scheme.
  if (verify::checks_enabled()) {
    bool all_ok = true;
    for (std::size_t r = 0; all_ok && r < xbar.rows(); ++r) {
      for (std::size_t c = 0; c < xbar.cols(); ++c) {
        const RelaySample& s = xbar.relay(r, c);
        if (!voltages_work_for(s.vpi, s.vpo, v)) {
          all_ok = false;
          break;
        }
      }
    }
    if (all_ok && !(xbar.state() == target)) {
      throw std::logic_error(
          "program_half_select: valid window but wrong pattern");
    }
  }
  return xbar.state();
}

}  // namespace nemfpga
