// The Fig 5 experiment in simulation: a 2x2 (or small RxC) NEM relay
// programmable routing crossbar driven through three phases —
//
//   program : half-select row-by-row configuration of the target pattern
//   test    : gates held at Vhold; out-of-phase pulses applied to the beams;
//             drains observed to verify the routed connectivity
//   reset   : all gates to 0 V; drains must go quiet (relays released)
//
// The electrical network (beams, relay switches, drain scope loads) runs on
// the SPICE-lite transient engine; relay mechanics update quasi-statically
// from the gate/beam drive (mechanical delays are orders of magnitude
// shorter than the phase durations, as in the actual experiment).
#pragma once

#include <vector>

#include "circuit/spice.hpp"
#include "program/crossbar.hpp"
#include "program/half_select.hpp"

namespace nemfpga {

struct CrossbarExperimentConfig {
  ProgrammingVoltages voltages = paper_crossbar_voltages();
  double pulse_amplitude = 0.6;  ///< Test-phase beam pulse amplitude [V].
  double slot_duration = 1e-3;   ///< Duration of one programming slot [s].
  double test_duration = 4e-3;   ///< Test phase length [s].
  double reset_duration = 2e-3;  ///< Reset phase length [s].
  double dt = 2e-6;              ///< Transient step [s].
  double relay_ron = 100e3;      ///< Measured crossbar relay Ron (Sec 2.3).
  double scope_r = 1e6;          ///< Drain probe resistance [Ohm].
  double scope_c = 50e-12;       ///< Drain probe capacitance [F].
};

/// Verdict for one drain during one half-period of the test phase.
struct DrainCheck {
  std::size_t drain = 0;
  double expected = 0.0;  ///< Quasi-static prediction from the pattern.
  double measured = 0.0;  ///< Settled simulated drain voltage.
  bool pass = false;
};

struct CrossbarExperimentResult {
  /// Mechanical state after programming (sized at experiment start).
  CrossbarPattern programmed = CrossbarPattern(1, 1);
  bool programmed_correctly = false;
  std::vector<DrainCheck> test_checks;
  bool test_passed = false;
  bool reset_verified = false;       ///< Drains quiet after reset.
  bool pass = false;                 ///< All of the above.

  std::vector<TransientPoint> waveforms;  ///< Decimated node voltages.
  std::vector<CktNodeId> beam_nodes;
  std::vector<CktNodeId> gate_nodes;
  std::vector<CktNodeId> drain_nodes;
  std::vector<std::string> node_names;    ///< Per circuit node (for VCD).
};

/// Run the full three-phase experiment for one target configuration.
/// `relays` supplies per-device variation; pass identical samples for the
/// nominal case. rows = gates/drains, cols = beams.
CrossbarExperimentResult run_crossbar_experiment(
    const CrossbarPattern& target, const std::vector<RelaySample>& relays,
    const CrossbarExperimentConfig& config = {});

/// Convenience: nominal fabricated relays everywhere.
CrossbarExperimentResult run_crossbar_experiment(
    const CrossbarPattern& target, const CrossbarExperimentConfig& config = {});

}  // namespace nemfpga
