#include "program/crossbar.hpp"

#include <cmath>
#include <stdexcept>

namespace nemfpga {

CrossbarPattern::CrossbarPattern(std::size_t rows, std::size_t cols, bool fill)
    : rows_(rows), cols_(cols), bits_(rows * cols, fill) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("CrossbarPattern: empty");
  }
}

bool CrossbarPattern::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("CrossbarPattern::at");
  return bits_[r * cols_ + c];
}

void CrossbarPattern::set(std::size_t r, std::size_t c, bool v) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("CrossbarPattern::set");
  bits_[r * cols_ + c] = v;
}

std::vector<CrossbarPattern> CrossbarPattern::all_patterns(std::size_t rows,
                                                           std::size_t cols) {
  const std::size_t n = rows * cols;
  if (n > 20) throw std::invalid_argument("all_patterns: array too large");
  std::vector<CrossbarPattern> out;
  out.reserve(1ull << n);
  for (std::size_t mask = 0; mask < (1ull << n); ++mask) {
    CrossbarPattern p(rows, cols);
    for (std::size_t i = 0; i < n; ++i) {
      p.set(i / cols, i % cols, (mask >> i) & 1);
    }
    out.push_back(std::move(p));
  }
  return out;
}

RelayCrossbar::RelayCrossbar(std::size_t rows, std::size_t cols,
                             const RelayDesign& nominal)
    : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("RelayCrossbar: empty");
  RelaySample s;
  s.design = nominal;
  s.vpi = nominal.pull_in_voltage();
  s.vpo = nominal.pull_out_voltage();
  relays_.assign(rows * cols, s);
  pulled_in_.assign(rows * cols, false);
}

RelayCrossbar::RelayCrossbar(std::size_t rows, std::size_t cols,
                             std::vector<RelaySample> relays)
    : rows_(rows), cols_(cols), relays_(std::move(relays)) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("RelayCrossbar: empty");
  if (relays_.size() != rows * cols) {
    throw std::invalid_argument("RelayCrossbar: relay count mismatch");
  }
  pulled_in_.assign(rows * cols, false);
}

std::size_t RelayCrossbar::index(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("RelayCrossbar index");
  return r * cols_ + c;
}

const RelaySample& RelayCrossbar::relay(std::size_t r, std::size_t c) const {
  return relays_[index(r, c)];
}

void RelayCrossbar::apply_bias(const std::vector<double>& row_v,
                               const std::vector<double>& col_v) {
  if (row_v.size() != rows_ || col_v.size() != cols_) {
    throw std::invalid_argument("apply_bias: line voltage count mismatch");
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t i = index(r, c);
      const double vgs = std::abs(row_v[r] - col_v[c]);
      if (vgs >= relays_[i].vpi) {
        pulled_in_[i] = true;
      } else if (vgs <= relays_[i].vpo) {
        pulled_in_[i] = false;
      }
    }
  }
}

bool RelayCrossbar::pulled_in(std::size_t r, std::size_t c) const {
  return pulled_in_[index(r, c)];
}

CrossbarPattern RelayCrossbar::state() const {
  CrossbarPattern p(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) p.set(r, c, pulled_in_[index(r, c)]);
  }
  return p;
}

void RelayCrossbar::reset() {
  apply_bias(std::vector<double>(rows_, 0.0), std::vector<double>(cols_, 0.0));
}

}  // namespace nemfpga
