#include "program/waveform.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace nemfpga {
namespace {

/// Square-ish edge width for the PWL drive waveforms.
double edge(const CrossbarExperimentConfig& cfg) { return cfg.dt / 2.0; }

struct Drives {
  std::vector<PwlWave> gates;
  std::vector<PwlWave> beams;
  double t_program_end = 0.0;
  double t_test_end = 0.0;
  double t_total = 0.0;
  double half_period = 0.0;
};

/// Build the three-phase gate/beam waveforms for the target pattern.
Drives build_drives(const CrossbarPattern& target,
                    const CrossbarExperimentConfig& cfg) {
  const std::size_t rows = target.rows();
  const std::size_t cols = target.cols();
  const double e = edge(cfg);
  Drives d;
  d.gates.resize(rows, PwlWave(0.0));
  d.beams.resize(cols, PwlWave(0.0));
  for (auto& w : d.gates) w = PwlWave(std::vector<std::pair<double, double>>{{0.0, 0.0}});
  for (auto& w : d.beams) w = PwlWave(std::vector<std::pair<double, double>>{{0.0, 0.0}});

  const double vh = cfg.voltages.vhold;
  const double vs = cfg.voltages.vselect;

  // Steps the wave to `level` at time `t` with a sharp (one-step) edge and
  // holds it until t + hold.
  auto step_to = [&](PwlWave& w, double t, double level, double hold) {
    w.add(t, w.at(t));
    w.add(t + e, level);
    w.add(t + hold, level);
  };

  // Slot 0: everything at 0 (all relays released). Then one slot per row.
  double t = cfg.slot_duration;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t g = 0; g < rows; ++g) {
      step_to(d.gates[g], t, (g == r) ? vh + vs : vh, cfg.slot_duration);
    }
    for (std::size_t c = 0; c < cols; ++c) {
      step_to(d.beams[c], t, target.at(r, c) ? -vs : 0.0, cfg.slot_duration);
    }
    t += cfg.slot_duration;
  }
  d.t_program_end = t;

  // Test phase: gates hold at Vhold; beams pulse, odd beams 180° shifted.
  // Reset phase: gates drop to 0 while the beams keep pulsing; the drains
  // must go quiet once the relays have released.
  const int n_half = 8;  // four full pulses per phase
  d.half_period = cfg.test_duration / n_half;
  d.t_test_end = t + cfg.test_duration;
  d.t_total = d.t_test_end + cfg.reset_duration;
  for (std::size_t g = 0; g < rows; ++g) {
    step_to(d.gates[g], t, vh, cfg.test_duration);
    step_to(d.gates[g], d.t_test_end, 0.0, cfg.reset_duration);
  }
  for (std::size_t c = 0; c < cols; ++c) {
    double tt = t;
    int k = 0;
    while (tt + d.half_period <= d.t_total + 1e-15) {
      const double sign = ((k + c) % 2 == 0) ? 1.0 : -1.0;
      step_to(d.beams[c], tt, sign * cfg.pulse_amplitude, d.half_period);
      tt += d.half_period;
      ++k;
    }
  }
  return d;
}

}  // namespace

CrossbarExperimentResult run_crossbar_experiment(
    const CrossbarPattern& target, const std::vector<RelaySample>& relays,
    const CrossbarExperimentConfig& cfg) {
  const std::size_t rows = target.rows();
  const std::size_t cols = target.cols();
  if (relays.size() != rows * cols) {
    throw std::invalid_argument("run_crossbar_experiment: relay count");
  }

  RelayCrossbar xbar(rows, cols, relays);
  const Drives drives = build_drives(target, cfg);

  Circuit ckt;
  CrossbarExperimentResult result;
  result.programmed = CrossbarPattern(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const auto n = ckt.add_node("beam" + std::to_string(c + 1));
    ckt.add_voltage_source(n, drives.beams[c]);
    result.beam_nodes.push_back(n);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const auto n = ckt.add_node("gate" + std::to_string(r + 1));
    ckt.add_voltage_source(n, drives.gates[r]);
    result.gate_nodes.push_back(n);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    const auto n = ckt.add_node("drain" + std::to_string(r + 1));
    ckt.add_resistor(n, Circuit::ground(), cfg.scope_r);
    ckt.add_capacitor(n, Circuit::ground(), cfg.scope_c);
    result.drain_nodes.push_back(n);
  }
  std::vector<SwitchId> sw(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      sw[r * cols + c] = ckt.add_switch(result.beam_nodes[c],
                                        result.drain_nodes[r], cfg.relay_ron);
    }
  }

  // Quasi-static mechanical update from the drive waveforms at every step.
  bool captured_program_state = false;
  std::vector<double> row_v(rows), col_v(cols);
  TransientSim sim(ckt, cfg.dt);
  auto hook = [&](double t, const std::vector<double>&) {
    for (std::size_t r = 0; r < rows; ++r) row_v[r] = drives.gates[r].at(t);
    for (std::size_t c = 0; c < cols; ++c) col_v[c] = drives.beams[c].at(t);
    xbar.apply_bias(row_v, col_v);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        ckt.set_switch(sw[r * cols + c], xbar.pulled_in(r, c));
      }
    }
    if (!captured_program_state && t >= drives.t_program_end) {
      result.programmed = xbar.state();
      captured_program_state = true;
    }
  };
  result.waveforms = sim.run(drives.t_total, 4, hook);

  result.programmed_correctly = (result.programmed == target);

  // Test-phase checks: sample each drain just before every pulse edge
  // (settled) and compare with the quasi-static divider prediction.
  auto value_at = [&](CktNodeId node, double t) {
    // Waveforms are time-sorted; linear scan is fine at these sizes.
    double v = 0.0;
    for (const auto& p : result.waveforms) {
      if (p.time > t) break;
      v = p.v[node];
    }
    return v;
  };
  result.test_passed = true;
  for (int k = 1; k <= 8; ++k) {
    const double t_sample =
        drives.t_program_end + k * drives.half_period - 4.0 * cfg.dt;
    for (std::size_t r = 0; r < rows; ++r) {
      double g_sum = 1.0 / cfg.scope_r;
      double i_sum = 0.0;
      for (std::size_t c = 0; c < cols; ++c) {
        if (result.programmed.at(r, c)) {
          g_sum += 1.0 / cfg.relay_ron;
          i_sum += drives.beams[c].at(t_sample) / cfg.relay_ron;
        }
      }
      DrainCheck check;
      check.drain = r;
      check.expected = i_sum / g_sum;
      check.measured = value_at(result.drain_nodes[r], t_sample);
      const double tol = 0.05 * cfg.pulse_amplitude;
      check.pass = std::fabs(check.measured - check.expected) < tol;
      result.test_passed = result.test_passed && check.pass;
      result.test_checks.push_back(check);
    }
  }

  // Reset check: in the tail of the reset phase every drain is quiet even
  // though the beams are still pulsing.
  result.reset_verified = true;
  const double t_tail = drives.t_test_end + 0.6 * cfg.reset_duration;
  for (const auto& p : result.waveforms) {
    if (p.time < t_tail) continue;
    for (std::size_t r = 0; r < rows; ++r) {
      if (std::fabs(p.v[result.drain_nodes[r]]) > 0.05 * cfg.pulse_amplitude) {
        result.reset_verified = false;
      }
    }
  }

  result.pass = result.programmed_correctly && result.test_passed &&
                result.reset_verified;
  result.node_names.reserve(ckt.node_count());
  for (CktNodeId n = 0; n < ckt.node_count(); ++n) {
    result.node_names.push_back(ckt.node_name(n));
  }
  return result;
}

CrossbarExperimentResult run_crossbar_experiment(
    const CrossbarPattern& target, const CrossbarExperimentConfig& cfg) {
  const RelayDesign nominal = fabricated_relay();
  RelaySample s;
  s.design = nominal;
  s.vpi = nominal.pull_in_voltage();
  s.vpo = nominal.pull_out_voltage();
  return run_crossbar_experiment(
      target, std::vector<RelaySample>(target.rows() * target.cols(), s), cfg);
}

}  // namespace nemfpga
