#include "program/yield.hpp"

#include <vector>

#include "util/thread_pool.hpp"

namespace nemfpga {

YieldResult programming_yield(const RelayDesign& nominal,
                              const VariationSpec& spec, std::size_t rows,
                              std::size_t cols, std::size_t trials, Rng& rng,
                              VoltagePolicy policy) {
  YieldResult result;
  result.trials = trials;

  // Fixed-policy voltages: balanced window for the nominal device alone.
  PopulationEnvelope nominal_env;
  nominal_env.vpi_min = nominal_env.vpi_max = nominal.pull_in_voltage();
  nominal_env.vpo_min = nominal_env.vpo_max = nominal.pull_out_voltage();
  nominal_env.min_hysteresis = nominal_env.vpi_min - nominal_env.vpo_max;
  const auto fixed = solve_program_window(nominal_env);
  if (trials == 0) return result;

  // Trial t samples from its own child stream of one shared fork point,
  // so the outcome of every trial — and therefore the whole result — is
  // bit-identical at any thread count.
  const std::uint64_t stream = rng.next_u64();
  struct TrialOutcome {
    bool good = false;
    double worst_margin = 0.0;
  };
  std::vector<TrialOutcome> outcomes(trials);
  parallel_for(trials, [&](std::size_t t) {
    Rng trial_rng = Rng::from_stream(stream, t);
    const auto pop = sample_population(nominal, spec, rows * cols, trial_rng);
    const auto env = envelope(pop);

    std::optional<ProgrammingVoltages> v;
    if (policy == VoltagePolicy::kPerArrayCalibrated) {
      v = solve_program_window(env);
    } else {
      v = fixed;
    }
    if (!v || !voltages_work_for(env, *v)) return;
    outcomes[t].good = true;
    outcomes[t].worst_margin = noise_margins(env, *v).worst();
  });

  // Reduce in trial order: floating-point addition is not associative, so
  // an arrival-order sum would depend on scheduling.
  double margin_sum = 0.0;
  for (const auto& o : outcomes) {
    if (!o.good) continue;
    ++result.good_arrays;
    margin_sum += o.worst_margin;
  }
  if (result.good_arrays > 0) {
    result.mean_worst_margin = margin_sum / result.good_arrays;
  }
  return result;
}

}  // namespace nemfpga
