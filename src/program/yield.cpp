#include "program/yield.hpp"

namespace nemfpga {

YieldResult programming_yield(const RelayDesign& nominal,
                              const VariationSpec& spec, std::size_t rows,
                              std::size_t cols, std::size_t trials, Rng& rng,
                              VoltagePolicy policy) {
  YieldResult result;
  result.trials = trials;

  // Fixed-policy voltages: balanced window for the nominal device alone.
  PopulationEnvelope nominal_env;
  nominal_env.vpi_min = nominal_env.vpi_max = nominal.pull_in_voltage();
  nominal_env.vpo_min = nominal_env.vpo_max = nominal.pull_out_voltage();
  nominal_env.min_hysteresis = nominal_env.vpi_min - nominal_env.vpo_max;
  const auto fixed = solve_program_window(nominal_env);

  double margin_sum = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto pop = sample_population(nominal, spec, rows * cols, rng);
    const auto env = envelope(pop);

    std::optional<ProgrammingVoltages> v;
    if (policy == VoltagePolicy::kPerArrayCalibrated) {
      v = solve_program_window(env);
    } else {
      v = fixed;
    }
    if (!v || !voltages_work_for(env, *v)) continue;
    ++result.good_arrays;
    margin_sum += noise_margins(env, *v).worst();
  }
  if (result.good_arrays > 0) {
    result.mean_worst_margin = margin_sum / result.good_arrays;
  }
  return result;
}

}  // namespace nemfpga
