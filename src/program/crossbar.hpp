// Relay crossbar array (paper Sec 2.2, Fig 4): relays organized with gates
// on programming row lines and beams/sources on programming column lines.
// Relay (r, c) connects column line c's signal to the row-c... — concretely,
// in the demonstrated 2x2 (Fig 5): beams are column inputs, drains are row
// outputs, and a pulled-in relay routes its beam to its drain.
#pragma once

#include <cstddef>
#include <vector>

#include "device/nem_relay.hpp"
#include "device/variation.hpp"

namespace nemfpga {

/// Boolean target/actual configuration of a crossbar.
class CrossbarPattern {
 public:
  CrossbarPattern(std::size_t rows, std::size_t cols, bool fill = false);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool at(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, bool v);
  bool operator==(const CrossbarPattern&) const = default;

  /// All 2^(rows*cols) patterns (for exhaustive verification; small arrays).
  static std::vector<CrossbarPattern> all_patterns(std::size_t rows,
                                                   std::size_t cols);

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<bool> bits_;
};

/// An array of (possibly varied) relays with hysteresis state.
class RelayCrossbar {
 public:
  /// All relays identical to `nominal`.
  RelayCrossbar(std::size_t rows, std::size_t cols,
                const RelayDesign& nominal);
  /// Per-relay varied designs (row-major; size must be rows*cols).
  RelayCrossbar(std::size_t rows, std::size_t cols,
                std::vector<RelaySample> relays);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  const RelaySample& relay(std::size_t r, std::size_t c) const;

  /// Apply one quasi-static bias step: row line r at `row_v[r]` (gates),
  /// column line c at `col_v[c]` (sources). Each relay sees
  /// |VGS| = |row_v[r] - col_v[c]| and updates its mechanical state.
  void apply_bias(const std::vector<double>& row_v,
                  const std::vector<double>& col_v);

  bool pulled_in(std::size_t r, std::size_t c) const;
  CrossbarPattern state() const;

  /// Force-release everything (mechanical reset, all VGS = 0).
  void reset();

 private:
  std::size_t index(std::size_t r, std::size_t c) const;

  std::size_t rows_;
  std::size_t cols_;
  std::vector<RelaySample> relays_;
  std::vector<bool> pulled_in_;
};

}  // namespace nemfpga
