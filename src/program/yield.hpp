// Monte-Carlo programming-yield analysis (paper Sec 2.3): "Today's FPGAs
// typically contain millions of configurable routing switches. As a result,
// large variations can make it impossible to correctly configure all NEM
// relays." This module quantifies that: the fraction of fabricated arrays
// that can be fully configured, as a function of array size and variation.
#pragma once

#include <cstddef>

#include "device/variation.hpp"
#include "program/half_select.hpp"

namespace nemfpga {

/// How the programming levels are chosen for each array.
enum class VoltagePolicy {
  /// One fixed (Vhold, Vselect) pair derived from the nominal design —
  /// what a production tester would apply wafer-wide.
  kFixedNominal,
  /// Per-array optimal levels from that array's measured envelope — the
  /// best case (what the paper did for its 100-relay study).
  kPerArrayCalibrated,
};

struct YieldResult {
  std::size_t trials = 0;
  std::size_t good_arrays = 0;
  double yield() const {
    return trials ? static_cast<double>(good_arrays) / trials : 0.0;
  }
  /// Mean worst-case noise margin across the *good* arrays [V].
  double mean_worst_margin = 0.0;
};

/// Sample `trials` arrays of rows*cols relays and report how many can be
/// correctly half-select programmed under the given policy. An array is
/// good when a single voltage pair satisfies every relay's constraints.
/// Trials run in parallel on ThreadPool::current(): `rng` is consumed for
/// exactly one draw (the fork point), each trial samples from its own
/// child stream, and partial results reduce in trial order — the result
/// is bit-identical at any NF_THREADS setting.
YieldResult programming_yield(const RelayDesign& nominal,
                              const VariationSpec& spec, std::size_t rows,
                              std::size_t cols, std::size_t trials, Rng& rng,
                              VoltagePolicy policy);

}  // namespace nemfpga
