#include "flow/eco.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "service/flow_artifacts.hpp"
#include "util/rng.hpp"
#include "verify/check.hpp"

namespace nemfpga {
namespace {

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool placed_net_equal(const PlacedNet& a, const PlacedNet& b) {
  return a.net == b.net && a.driver == b.driver && a.sinks == b.sinks;
}

}  // namespace

RrGraphView EcoFlow::graph() const {
  return ig_ ? RrGraphView(*ig_) : RrGraphView(*eg_);
}

EcoFlow::EcoFlow(Netlist netlist, const EcoOptions& opt)
    : nl_(std::move(netlist)), opt_(opt) {
  nl_.validate();
  pk_ = pack_netlist(nl_, opt_.arch);
  if (verify::checks_enabled()) check_packing(nl_, opt_.arch, pk_);
  const auto [nx, ny] =
      grid_size_for(opt_.arch, pk_.clusters.size(), pk_.io_block_count());
  nx_ = nx;
  ny_ = ny;
  pl_ = place(nl_, pk_, opt_.arch, nx_, ny_, opt_.place);
  if (verify::checks_enabled()) check_placement(pk_, opt_.arch, pl_);
  // Session artifacts (RR graph, lookahead, delay model) come from the
  // shared content-addressed cache when one is given — many sessions on
  // one fabric then share a single immutable copy of each.
  FlowArtifacts art =
      make_flow_artifacts(opt_.artifact_cache, opt_.arch, nx_, ny_,
                          opt_.route, opt_.timing_backend);
  eg_ = art.rr;
  ig_ = art.irr;
  dmodel_ = art.delay_model;
  eview_ = make_view(opt_.arch, opt_.timing_backend);

  // Frozen packing geometry: membership never changes under ECO, only
  // the derived net sets do.
  block_ble_.assign(nl_.block_count(), kInvalidId);
  for (std::size_t i = 0; i < pk_.bles.size(); ++i) {
    if (pk_.bles[i].lut != kInvalidId) block_ble_[pk_.bles[i].lut] = i;
    if (pk_.bles[i].latch != kInvalidId) block_ble_[pk_.bles[i].latch] = i;
  }
  ble_cluster_.assign(pk_.bles.size(), kInvalidId);
  for (std::size_t c = 0; c < pk_.clusters.size(); ++c) {
    for (std::size_t idx : pk_.clusters[c].bles) ble_cluster_[idx] = c;
  }
  ble_internal_net_.assign(nl_.net_count(), 0);
  for (const Ble& ble : pk_.bles) {
    if (ble.absorbed != kInvalidId) ble_internal_net_[ble.absorbed] = 1;
  }

  // Session-shared lookahead (delay-annotated when timing-driven) and the
  // base route with a fresh incremental-STA hook — run_flow's wiring,
  // except an unroutable base is recorded instead of thrown: the session
  // stays alive and apply() reports kUnroutable until the design fits.
  const RrGraphView gv = graph();
  RouteOptions ropt = opt_.route;
  std::unique_ptr<RouterTimingHook> hook;
  if (ropt.timing_driven) {
    hook = make_incremental_sta(nl_, pk_, pl_, gv, eview_,
                                ropt.criticality_exp, ropt.max_criticality,
                                dmodel_);
    ropt.timing_hook = hook.get();
  }
  if (art.lookahead) {
    lookahead_ = art.lookahead;
    ropt.lookahead = lookahead_;
    ropt.lookahead_build_s = art.lookahead_build_s;
    ropt.lookahead_from_cache = art.lookahead_from_cache;
  } else {
    lookahead_ = ropt.lookahead;
  }
  routing_ = route_all(gv, pl_, ropt);

  sink_delays_.assign(pl_.nets.size(), {});
  if (routing_.success) {
    refresh_sink_delays();
    cp_ = propagate_cp();
    had_cp_ = true;
  }
}

EcoFlow::~EcoFlow() = default;

std::size_t EcoFlow::site_key(const BlockLoc& l) const {
  return (l.y * (nx_ + 2) + l.x) * (opt_.arch.io_per_pad + 1) + l.sub;
}

void EcoFlow::build_site_occupancy() {
  site_occ_.assign((nx_ + 2) * (ny_ + 2) * (opt_.arch.io_per_pad + 1),
                   kInvalidId);
  for (std::size_t b = 0; b < pl_.locs.size(); ++b) {
    site_occ_[site_key(pl_.locs[b])] = b;
  }
}

bool EcoFlow::apply_ops(const NetlistDelta& delta, std::string& reason) {
  // Site legality mirrors check_placement: logic in the core with sub 0,
  // IO on a non-corner border site within the pad capacity.
  const auto site_ok = [&](bool logic, const BlockLoc& l) {
    if (l.x > nx_ + 1 || l.y > ny_ + 1) return false;
    if (logic) {
      return l.x >= 1 && l.x <= nx_ && l.y >= 1 && l.y <= ny_ && l.sub == 0;
    }
    const bool bx = l.x == 0 || l.x == nx_ + 1;
    const bool by = l.y == 0 || l.y == ny_ + 1;
    return bx != by && l.sub < opt_.arch.io_per_pad;
  };

  for (const EcoOp& op : delta.ops) {
    switch (op.kind) {
      case EcoOpKind::kConnect: {
        if (op.block >= nl_.block_count() ||
            nl_.block(op.block).type != BlockType::kLut) {
          reason = op.describe() + ": connect target is not a LUT";
          return false;
        }
        if (op.net >= nl_.net_count()) {
          reason = op.describe() + ": unknown net";
          return false;
        }
        if (nl_.block(op.block).inputs.size() >= opt_.arch.K) {
          reason = op.describe() + ": LUT already has K inputs";
          return false;
        }
        if (ble_internal_net_[op.net]) {
          reason = op.describe() + ": net is fused inside a LUT+FF BLE";
          return false;
        }
        nl_.connect_input(op.block, op.net);
        touched_blocks_.push_back(op.block);
        touched_nets_.push_back(op.net);
        break;
      }
      case EcoOpKind::kDisconnect: {
        if (op.block >= nl_.block_count() ||
            nl_.block(op.block).type != BlockType::kLut) {
          reason = op.describe() + ": disconnect target is not a LUT";
          return false;
        }
        const Block& blk = nl_.block(op.block);
        if (op.pin >= blk.inputs.size()) {
          reason = op.describe() + ": pin out of range";
          return false;
        }
        if (blk.inputs.size() < 2) {
          reason = op.describe() + ": a LUT keeps at least one input";
          return false;
        }
        touched_nets_.push_back(blk.inputs[op.pin]);
        nl_.disconnect_input(op.block, op.pin);
        touched_blocks_.push_back(op.block);
        break;
      }
      case EcoOpKind::kRetarget: {
        if (op.block >= nl_.block_count()) {
          reason = op.describe() + ": unknown block";
          return false;
        }
        if (op.net >= nl_.net_count()) {
          reason = op.describe() + ": unknown net";
          return false;
        }
        const Block& blk = nl_.block(op.block);
        if (blk.type == BlockType::kInput) {
          reason = op.describe() + ": primary inputs have no input pins";
          return false;
        }
        if (blk.type == BlockType::kLatch &&
            pk_.bles[block_ble_[op.block]].lut != kInvalidId) {
          reason = op.describe() + ": D input of a fused LUT+FF BLE";
          return false;
        }
        if (op.pin >= blk.inputs.size()) {
          reason = op.describe() + ": pin out of range";
          return false;
        }
        if (ble_internal_net_[op.net]) {
          reason = op.describe() + ": net is fused inside a LUT+FF BLE";
          return false;
        }
        const NetId old = blk.inputs[op.pin];
        if (old == op.net) break;
        nl_.retarget_input(op.block, op.pin, op.net);
        if (blk.type != BlockType::kOutput) {
          touched_blocks_.push_back(op.block);
        }
        touched_nets_.push_back(old);
        touched_nets_.push_back(op.net);
        break;
      }
      case EcoOpKind::kMoveBlock: {
        if (op.packed_a >= pk_.blocks.size()) {
          reason = op.describe() + ": unknown packed block";
          return false;
        }
        const bool logic = op.packed_a < pk_.clusters.size();
        const BlockLoc dest{op.dest_x, op.dest_y, op.dest_sub};
        if (!site_ok(logic, dest)) {
          reason = op.describe() + ": illegal site for the block type";
          return false;
        }
        const std::size_t key = site_key(dest);
        if (site_occ_[key] == op.packed_a) break;
        if (site_occ_[key] != kInvalidId) {
          reason = op.describe() + ": target site occupied";
          return false;
        }
        site_occ_[site_key(pl_.locs[op.packed_a])] = kInvalidId;
        site_occ_[key] = op.packed_a;
        pl_.locs[op.packed_a] = dest;
        moved_blocks_.push_back(op.packed_a);
        break;
      }
      case EcoOpKind::kSwapBlocks: {
        if (op.packed_a >= pk_.blocks.size() ||
            op.packed_b >= pk_.blocks.size()) {
          reason = op.describe() + ": unknown packed block";
          return false;
        }
        if (op.packed_a == op.packed_b) break;
        if ((op.packed_a < pk_.clusters.size()) !=
            (op.packed_b < pk_.clusters.size())) {
          reason = op.describe() + ": swap across logic/IO categories";
          return false;
        }
        std::swap(pl_.locs[op.packed_a], pl_.locs[op.packed_b]);
        site_occ_[site_key(pl_.locs[op.packed_a])] = op.packed_a;
        site_occ_[site_key(pl_.locs[op.packed_b])] = op.packed_b;
        moved_blocks_.push_back(op.packed_a);
        moved_blocks_.push_back(op.packed_b);
        break;
      }
    }
  }
  return true;
}

bool EcoFlow::refresh_packing(std::string& reason) {
  // Recompute BLE input lists for the edited blocks, then the input-net
  // sets of their clusters, under pack_netlist's exact derivation rules;
  // reject (restoring the saved fields) when a cluster would exceed the
  // input cap I. touched_blocks_ is deduplicated by the caller.
  struct SavedBle {
    std::size_t idx;
    std::vector<NetId> inputs;
  };
  struct SavedCl {
    std::size_t idx;
    std::vector<NetId> input_nets;
  };
  std::vector<SavedBle> saved_bles;
  std::vector<SavedCl> saved_cls;
  std::vector<std::size_t> clusters;
  for (BlockId b : touched_blocks_) {
    const std::size_t e = block_ble_[b];
    if (e == kInvalidId) continue;
    Ble& ble = pk_.bles[e];
    saved_bles.push_back({e, ble.inputs});
    // A paired BLE's input list is its LUT's (the latch D is the fused
    // net, which op validation keeps internal); a lone latch's is its D.
    const BlockId src = ble.lut != kInvalidId ? ble.lut : ble.latch;
    ble.inputs = nl_.block(src).inputs;
    clusters.push_back(ble_cluster_[e]);
  }
  std::sort(clusters.begin(), clusters.end());
  clusters.erase(std::unique(clusters.begin(), clusters.end()),
                 clusters.end());
  for (std::size_t c : clusters) {
    Cluster& cl = pk_.clusters[c];
    saved_cls.push_back({c, cl.input_nets});
    std::unordered_set<NetId> outputs;
    std::unordered_set<NetId> inputs;
    for (std::size_t idx : cl.bles) outputs.insert(pk_.bles[idx].output);
    for (std::size_t idx : cl.bles) {
      for (NetId n : pk_.bles[idx].inputs) {
        if (!outputs.contains(n)) inputs.insert(n);
      }
    }
    cl.input_nets.assign(inputs.begin(), inputs.end());
    std::sort(cl.input_nets.begin(), cl.input_nets.end());
    if (cl.input_nets.size() > opt_.arch.lb_inputs()) {
      reason = "cluster " + std::to_string(c) + " would need " +
               std::to_string(cl.input_nets.size()) + " inputs (cap " +
               std::to_string(opt_.arch.lb_inputs()) + ")";
      for (auto it = saved_cls.rbegin(); it != saved_cls.rend(); ++it) {
        pk_.clusters[it->idx].input_nets = std::move(it->input_nets);
      }
      for (auto it = saved_bles.rbegin(); it != saved_bles.rend(); ++it) {
        pk_.bles[it->idx].inputs = std::move(it->inputs);
      }
      return false;
    }
  }

  // Commit point: absorption and cluster-output refresh for every
  // touched net, by pack's used-outside rule. Each touched net driven by
  // clustered logic is its driver BLE's external output (fused LUT->FF
  // nets were rejected at the op layer).
  for (NetId n : touched_nets_) {
    const BlockId drv = nl_.net(n).driver;
    const Block& db = nl_.block(drv);
    if (db.type != BlockType::kLut && db.type != BlockType::kLatch) continue;
    const std::size_t c = ble_cluster_[block_ble_[drv]];
    bool used_outside = false;
    for (BlockId sink : nl_.net(n).sinks) {
      const Block& sb = nl_.block(sink);
      if (sb.type == BlockType::kOutput) {
        used_outside = true;
      } else {
        const std::size_t sble = block_ble_[sink];
        if (sble == kInvalidId || ble_cluster_[sble] != c) used_outside = true;
      }
      if (used_outside) break;
    }
    Cluster& cl = pk_.clusters[c];
    const auto it =
        std::lower_bound(cl.output_nets.begin(), cl.output_nets.end(), n);
    const bool listed = it != cl.output_nets.end() && *it == n;
    if (used_outside) {
      pk_.net_absorbed[n] = false;
      if (!listed) cl.output_nets.insert(it, n);
    } else {
      pk_.net_absorbed[n] = true;
      if (listed) cl.output_nets.erase(it);
    }
  }
  return true;
}

void EcoFlow::splice_placed_nets() {
  // pl_.nets is ascending by NetId (extract_placed_nets scan order), so a
  // per-net splice against make_placed_net keeps it bitwise-identical to
  // a from-scratch extraction. Trees and delay caches move in lockstep.
  for (NetId n : touched_nets_) {
    auto fresh = make_placed_net(nl_, pk_, n);
    const auto it = std::lower_bound(
        pl_.nets.begin(), pl_.nets.end(), n,
        [](const PlacedNet& pn, NetId id) { return pn.net < id; });
    const std::size_t slot = static_cast<std::size_t>(it - pl_.nets.begin());
    const bool present = it != pl_.nets.end() && it->net == n;
    if (present && fresh) {
      if (!placed_net_equal(*it, *fresh)) {
        *it = std::move(*fresh);
        routing_.trees[slot] = RouteTree{};
        sink_delays_[slot].clear();
      }
    } else if (present) {
      pl_.nets.erase(it);
      routing_.trees.erase(routing_.trees.begin() +
                           static_cast<std::ptrdiff_t>(slot));
      sink_delays_.erase(sink_delays_.begin() +
                         static_cast<std::ptrdiff_t>(slot));
    } else if (fresh) {
      pl_.nets.insert(it, std::move(*fresh));
      routing_.trees.insert(
          routing_.trees.begin() + static_cast<std::ptrdiff_t>(slot),
          RouteTree{});
      sink_delays_.insert(
          sink_delays_.begin() + static_cast<std::ptrdiff_t>(slot),
          std::vector<double>{});
    }
  }
}

std::size_t EcoFlow::replace_touched() {
  // Locally re-place the clusters owning edited blocks: evaluate a few
  // deterministic random free core sites through the incremental cost
  // model and keep a strictly improving best. The RNG stream is keyed by
  // (seed, apply index), never by thread count or wall clock.
  std::vector<std::size_t> cands;
  for (BlockId b : touched_blocks_) {
    const std::size_t e = block_ble_[b];
    if (e != kInvalidId) cands.push_back(ble_cluster_[e]);
  }
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  if (cands.empty()) return 0;

  NetCostModel model(&pl_.nets, pk_.blocks.size());
  model.rebuild(pl_.locs);
  Rng rng = Rng::from_stream(opt_.seed, applies_);
  NetCostModel::Pending pend;
  std::size_t moved = 0;
  for (const std::size_t blk : cands) {
    BlockLoc best{};
    double best_delta = 0.0;
    bool found = false;
    for (std::size_t t = 0; t < opt_.replace_candidates; ++t) {
      const BlockLoc cand{
          1 + static_cast<std::size_t>(rng.uniform_int(nx_)),
          1 + static_cast<std::size_t>(rng.uniform_int(ny_)), 0};
      if (site_occ_[site_key(cand)] != kInvalidId) continue;
      pend.clear();
      const double d = model.propose(pl_.locs, blk, cand,
                                     NetCostModel::kNoBlock, BlockLoc{}, pend);
      if (d < best_delta) {
        best_delta = d;
        best = cand;
        found = true;
      }
    }
    if (!found) continue;
    pend.clear();
    model.propose(pl_.locs, blk, best, NetCostModel::kNoBlock, BlockLoc{},
                  pend);
    model.commit(pend);
    site_occ_[site_key(pl_.locs[blk])] = kInvalidId;
    site_occ_[site_key(best)] = blk;
    pl_.locs[blk] = best;
    moved_blocks_.push_back(blk);
    ++moved;
  }
  return moved;
}

void EcoFlow::mark_moved_dirty() {
  if (moved_blocks_.empty()) return;
  std::sort(moved_blocks_.begin(), moved_blocks_.end());
  moved_blocks_.erase(
      std::unique(moved_blocks_.begin(), moved_blocks_.end()),
      moved_blocks_.end());
  const auto moved = [&](std::size_t b) {
    return std::binary_search(moved_blocks_.begin(), moved_blocks_.end(), b);
  };
  for (std::size_t i = 0; i < pl_.nets.size(); ++i) {
    const PlacedNet& pn = pl_.nets[i];
    bool dirty = moved(pn.driver);
    if (!dirty) {
      for (std::size_t s : pn.sinks) {
        if (moved(s)) {
          dirty = true;
          break;
        }
      }
    }
    if (dirty) {
      routing_.trees[i] = RouteTree{};
      sink_delays_[i].clear();
    }
  }
}

std::size_t EcoFlow::refresh_sink_delays() {
  const RrGraphView gv = graph();
  std::size_t evaluated = 0;
  for (std::size_t i = 0; i < pl_.nets.size(); ++i) {
    if (!sink_delays_[i].empty()) continue;  // sinks are never empty
    routed_net_delays(gv, routing_.trees[i], pl_.nets[i], pl_, eview_,
                      delay_scratch_, sink_delays_[i]);
    ++evaluated;
  }
  return evaluated;
}

double EcoFlow::propagate_cp() const {
  // analyze_timing's arrival model, verbatim, with the per-net delay
  // evaluation replaced by the session cache — max over fan-in is
  // order-independent, so the critical path is bitwise equal to a full
  // analyze_timing of the same state.
  std::vector<std::size_t> net_to_placed(nl_.net_count(), kInvalidId);
  for (std::size_t i = 0; i < pl_.nets.size(); ++i) {
    net_to_placed[pl_.nets[i].net] = i;
  }

  const auto net_arc = [&](NetId n, BlockId sink_blk) {
    const std::size_t placed = net_to_placed[n];
    if (placed == kInvalidId) {
      const Net& net = nl_.net(n);
      if (net.sinks.size() == 1) {
        const Block& s = nl_.block(net.sinks[0]);
        const Block& d = nl_.block(net.driver);
        if (s.type == BlockType::kLatch && d.type == BlockType::kLut) {
          return 0.0;  // fused BLE register
        }
      }
      return eview_.t_local_feedback;
    }
    const std::size_t owner = pk_.block_owner[sink_blk];
    const PlacedNet& pn = pl_.nets[placed];
    const auto it = std::lower_bound(pn.sinks.begin(), pn.sinks.end(), owner);
    if (it != pn.sinks.end() && *it == owner) {
      return sink_delays_[placed]
                         [static_cast<std::size_t>(it - pn.sinks.begin())];
    }
    return eview_.t_local_feedback;  // same-cluster sink of a global net
  };

  std::vector<double> arrival(nl_.block_count(), 0.0);
  std::vector<std::size_t> pending(nl_.block_count(), 0);
  std::deque<BlockId> ready;
  for (BlockId b = 0; b < nl_.block_count(); ++b) {
    const Block& blk = nl_.block(b);
    if (blk.type == BlockType::kInput) {
      ready.push_back(b);
    } else if (blk.type == BlockType::kLatch) {
      arrival[b] = eview_.t_clk_q;
      ready.push_back(b);
    } else if (blk.type == BlockType::kLut) {
      std::size_t comb_inputs = 0;
      for (NetId n : blk.inputs) {
        if (nl_.block(nl_.net(n).driver).type == BlockType::kLut) {
          ++comb_inputs;
        }
      }
      pending[b] = comb_inputs;
      if (comb_inputs == 0) ready.push_back(b);
    }
  }

  std::size_t processed_luts = 0;
  while (!ready.empty()) {
    const BlockId b = ready.front();
    ready.pop_front();
    const Block& blk = nl_.block(b);
    if (blk.type == BlockType::kLut) {
      double arr = 0.0;
      for (NetId n : blk.inputs) {
        const BlockId drv = nl_.net(n).driver;
        arr = std::max(arr, arrival[drv] + net_arc(n, b));
      }
      arrival[b] = arr + eview_.t_lut;
      ++processed_luts;
      for (BlockId s : nl_.net(blk.output).sinks) {
        if (nl_.block(s).type == BlockType::kLut && pending[s] > 0) {
          if (--pending[s] == 0) ready.push_back(s);
        }
      }
    }
  }
  if (processed_luts != nl_.lut_count()) {
    throw std::logic_error(
        "EcoFlow: combinational cycle reached timing propagation");
  }

  double cp = 0.0;
  for (BlockId b = 0; b < nl_.block_count(); ++b) {
    const Block& blk = nl_.block(b);
    if (blk.type == BlockType::kLatch) {
      const NetId d = blk.inputs[0];
      const BlockId drv = nl_.net(d).driver;
      cp = std::max(cp, arrival[drv] + net_arc(d, b) + eview_.t_setup);
    } else if (blk.type == BlockType::kOutput) {
      const NetId n = blk.inputs[0];
      const BlockId drv = nl_.net(n).driver;
      cp = std::max(cp, arrival[drv] + net_arc(n, b));
    }
  }
  return cp;
}

void EcoFlow::check_invariants() const {
  check_packing(nl_, opt_.arch, pk_);
  check_placement(pk_, opt_.arch, pl_);
  const std::vector<PlacedNet> ref = extract_placed_nets(nl_, pk_);
  if (ref.size() != pl_.nets.size()) {
    throw std::logic_error("EcoFlow: spliced net list diverged in size");
  }
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (!placed_net_equal(ref[i], pl_.nets[i])) {
      throw std::logic_error("EcoFlow: spliced net list diverged at slot " +
                             std::to_string(i));
    }
  }
  if (routing_.success) check_routing(graph(), pl_, routing_);
}

EcoResult EcoFlow::apply(const NetlistDelta& delta) {
  EcoResult r;
  const auto fill_state = [&] {
    r.cycle_detected = cycle_;
    r.legal = routing_.success;
    r.overused_nodes = routing_.overused_nodes;
    r.timing_valid = routing_.success && !cycle_;
    r.critical_path_s = r.timing_valid ? cp_ : 0.0;
  };
  if (delta.empty()) {
    r.status = EcoStatus::kNoop;
    fill_state();
    return r;
  }
  ++applies_;

  // Phase A/B: structural ops and the packing refresh, transactionally —
  // any rejection restores the netlist and locations bit-identically and
  // leaves the physical layers untouched.
  Netlist nl_snap = nl_;
  std::vector<BlockLoc> locs_snap = pl_.locs;
  touched_blocks_.clear();
  touched_nets_.clear();
  moved_blocks_.clear();
  build_site_occupancy();
  std::string reason;
  bool ok = apply_ops(delta, reason);
  if (ok) {
    std::sort(touched_blocks_.begin(), touched_blocks_.end());
    touched_blocks_.erase(
        std::unique(touched_blocks_.begin(), touched_blocks_.end()),
        touched_blocks_.end());
    std::sort(touched_nets_.begin(), touched_nets_.end());
    touched_nets_.erase(
        std::unique(touched_nets_.begin(), touched_nets_.end()),
        touched_nets_.end());
    ok = refresh_packing(reason);
  }
  if (!ok) {
    nl_ = std::move(nl_snap);
    pl_.locs = std::move(locs_snap);
    r.status = EcoStatus::kRejected;
    r.reject_reason = std::move(reason);
    fill_state();
    return r;
  }

  // Phase C: physical commit — splice the placed-net list, locally
  // re-place the touched clusters, and invalidate every net a moved
  // block touches.
  splice_placed_nets();
  if (opt_.replace_touched) replace_touched();
  mark_moved_dirty();
  r.blocks_moved = moved_blocks_.size();

  cycle_ = nl_.has_combinational_cycle();

  std::size_t invalidated = 0;
  for (const RouteTree& t : routing_.trees) {
    if (t.source == kNoRrNode) ++invalidated;
  }
  r.nets_invalidated = invalidated;

  // Reroute only when something was invalidated (or the live routing was
  // never legal). A purely-logical edit (e.g. a new same-cluster arc)
  // changes timing without touching a single wire.
  if (invalidated > 0 || !routing_.success) {
    const double t0 = wall_s();
    RouteOptions ropt = opt_.route;
    ropt.lookahead = lookahead_;
    std::unique_ptr<RouterTimingHook> hook;
    // A fresh hook per route call (one call per instance); with a
    // combinational cycle the router runs congestion-only and the
    // criticality fallback below covers timing.
    if (ropt.timing_driven && !cycle_) {
      hook = make_incremental_sta(nl_, pk_, pl_, graph(), eview_,
                                  ropt.criticality_exp, ropt.max_criticality,
                                  dmodel_);
      ropt.timing_hook = hook.get();
    }
    RoutingResult next;
    if (routing_.success) {
      next = route_incremental(graph(), pl_, std::move(routing_.trees), ropt);
    }
    if (!next.success) {
      // From-scratch fallback: an ECO session succeeds whenever a fresh
      // flow of the same design would.
      r.full_fallback = true;
      std::unique_ptr<RouterTimingHook> hook2;
      RouteOptions fopt = opt_.route;
      fopt.lookahead = lookahead_;
      if (fopt.timing_driven && !cycle_) {
        hook2 =
            make_incremental_sta(nl_, pk_, pl_, graph(), eview_,
                                 fopt.criticality_exp, fopt.max_criticality,
                                 dmodel_);
        fopt.timing_hook = hook2.get();
      }
      next = route_all(graph(), pl_, fopt);
    }
    routing_ = std::move(next);
    r.route_iterations = routing_.iterations;
    for (std::size_t i = 0; i < routing_.routed_nets.size(); ++i) {
      if (routing_.routed_nets[i]) {
        r.nets_rerouted += 1;
        sink_delays_[i].clear();
      }
    }
    r.reroute_wall_s = wall_s() - t0;
  }

  r.cycle_detected = cycle_;
  r.legal = routing_.success;
  r.overused_nodes = routing_.overused_nodes;
  if (!routing_.success) {
    // Unroutable even from scratch. Trees are partial and timing is
    // meaningless; drop every delay cache so a later recovery rebuilds
    // from clean state.
    for (auto& d : sink_delays_) d.clear();
    r.status = EcoStatus::kUnroutable;
    return r;
  }

  const double t_sta = wall_s();
  r.sta_nets_evaluated = refresh_sink_delays();
  if (cycle_) {
    // Zero-slack criticality fallback (the placement estimate's cycle
    // path): timing degrades gracefully instead of crashing.
    (void)placement_net_criticality(nl_, pl_.nets, pl_.locs);
    r.timing_valid = false;
  } else {
    const double cp = propagate_cp();
    r.timing_valid = true;
    r.critical_path_s = cp;
    if (had_cp_) r.cp_delta_s = cp - cp_;
    cp_ = cp;
    had_cp_ = true;
  }
  r.sta_wall_s = wall_s() - t_sta;

  if (verify::checks_enabled()) check_invariants();
  r.status = EcoStatus::kOk;
  return r;
}

}  // namespace nemfpga
