// Incremental ECO flow: ms-scale edit-recompile loops over a live
// place-and-route session. An EcoFlow owns one fully compiled design
// (netlist -> packing -> placement -> RR graph -> routing -> timing) and
// applies NetlistDelta edits transactionally:
//
//   1. Structural ops land on the netlist/placement with full rollback —
//      an illegal op (unknown ids, LUT wider than K, a cluster pushed
//      over its input cap I, an occupied target site, a pin internal to
//      a packed BLE) rejects the whole delta and leaves every layer
//      bit-identical.
//   2. Packing derived state (BLE inputs, cluster input/output nets,
//      net_absorbed) is recomputed for touched clusters only, under the
//      exact rules pack_netlist derives them with; BLE and cluster
//      membership is frozen for the session.
//   3. The placed-net list is spliced per touched net via
//      make_placed_net(), keeping it bitwise-identical to a from-scratch
//      extract_placed_nets() of the mutated design; connectivity-touched
//      logic blocks are locally re-placed through the incremental
//      NetCostModel (propose/commit against deterministic candidate
//      sites).
//   4. Only invalidated nets are re-routed, against the live routing's
//      occupancy and the session-shared A* lookahead
//      (route_incremental); if the seeded negotiation fails, the flow
//      falls back to a full from-scratch reroute, so an ECO session
//      succeeds whenever a from-scratch flow would.
//   5. STA re-evaluates routed net delays only for nets whose trees
//      changed (the expensive dimension — cached per-sink delays persist
//      across applies) and re-propagates arrivals over the block graph,
//      matching a full analyze_timing() of the final state bitwise. An
//      edit creating a combinational cycle degrades gracefully:
//      timing_valid goes false and criticalities fall back to the
//      placement estimate's zero-slack path instead of crashing.
//
// tests/prop/prop_eco_diff.cpp replays randomized edit streams through
// this flow and a from-scratch flow of the final netlist, proving legal
// routing, zero overuse, STA agreement to 1e-12 and a bounded quality
// envelope at 1/2/8 threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/rr_graph.hpp"
#include "core/flow.hpp"
#include "netlist/delta.hpp"
#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"

namespace nemfpga {

struct EcoOptions {
  ArchParams arch;
  /// Shared content-addressed artifact cache (see FlowOptions): the
  /// session's RR graph, lookahead table and delay model are fetched
  /// from (and published into) it, so opening many sessions on the same
  /// fabric pays the build cost once. Null builds privately. Borrowed;
  /// must outlive the session.
  ArtifactCache* artifact_cache = nullptr;
  PlaceOptions place;
  /// Route options for the base route and every ECO reroute. The
  /// lookahead is built once per session and shared; timing_hook is
  /// managed internally (a fresh incremental-STA hook per apply when
  /// timing_driven).
  RouteOptions route;
  /// Switch-technology backend (registry name) for the session's delay
  /// model and electrical view.
  std::string timing_backend = "cmos";
  /// Locally re-place connectivity-touched logic blocks through the
  /// incremental cost model before rerouting.
  bool replace_touched = true;
  /// Deterministic candidate sites evaluated per touched block.
  std::size_t replace_candidates = 8;
  /// Seed of the per-apply candidate-site RNG stream.
  std::uint64_t seed = 1;
};

enum class EcoStatus {
  kOk,          ///< Delta applied; routing legal.
  kNoop,        ///< Empty delta: state untouched.
  kRejected,    ///< An op failed validation; state untouched.
  kUnroutable,  ///< Edits applied but no legal routing exists (even from
                ///< scratch) at the session's channel width.
};

struct EcoResult {
  EcoStatus status = EcoStatus::kOk;
  std::string reject_reason;      ///< Set when status == kRejected.
  std::size_t nets_invalidated = 0;  ///< Trees cleared before reroute.
  std::size_t nets_rerouted = 0;  ///< Router reroutes (incl. congestion).
  std::size_t blocks_moved = 0;   ///< Explicit + local-replace moves.
  std::size_t route_iterations = 0;
  bool full_fallback = false;  ///< Seeded reroute failed; rerouted from
                               ///< scratch instead.
  bool legal = false;          ///< Routing success && overuse == 0.
  bool cycle_detected = false;
  bool timing_valid = false;  ///< False when a combinational cycle (or a
                              ///< failed routing) blocks STA.
  double reroute_wall_s = 0.0;
  double sta_wall_s = 0.0;
  double critical_path_s = 0.0;  ///< 0 when !timing_valid.
  double cp_delta_s = 0.0;       ///< vs. the previous timing-valid state.
  std::size_t sta_nets_evaluated = 0;  ///< routed_net_delays calls.
  std::size_t overused_nodes = 0;
};

class EcoFlow {
 public:
  /// Compile the base design. Unlike run_flow, an unroutable base does
  /// not throw — the session records it and apply() reports kUnroutable
  /// until edits (or the fallback) make the design routable.
  EcoFlow(Netlist netlist, const EcoOptions& opt);
  ~EcoFlow();

  EcoFlow(const EcoFlow&) = delete;
  EcoFlow& operator=(const EcoFlow&) = delete;

  /// Apply one delta transactionally. See the file comment.
  EcoResult apply(const NetlistDelta& delta);

  const Netlist& netlist() const { return nl_; }
  const ArchParams& arch() const { return opt_.arch; }
  const Packing& packing() const { return pk_; }
  const Placement& placement() const { return pl_; }
  const RoutingResult& routing() const { return routing_; }
  RrGraphView graph() const;
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  bool routed() const { return routing_.success; }
  bool has_comb_cycle() const { return cycle_; }
  /// Last timing-valid critical path: 0 until one exists, then retained
  /// across cycle/unroutable excursions (so the cp_delta_s of the apply
  /// that restores timing is measured against it). EcoResult's
  /// critical_path_s, by contrast, is 0 whenever !timing_valid.
  double critical_path_s() const { return cp_; }
  std::size_t applies() const { return applies_; }

 private:
  bool apply_ops(const NetlistDelta& delta, std::string& reason);
  bool refresh_packing(std::string& reason);
  void splice_placed_nets();
  std::size_t replace_touched();
  void mark_moved_dirty();
  std::size_t refresh_sink_delays();
  double propagate_cp() const;
  void build_site_occupancy();
  std::size_t site_key(const BlockLoc& l) const;
  void check_invariants() const;

  Netlist nl_;
  EcoOptions opt_;
  Packing pk_;
  Placement pl_;
  std::size_t nx_ = 0, ny_ = 0;
  std::shared_ptr<const RrGraph> eg_;
  std::shared_ptr<const ImplicitRrGraph> ig_;
  ElectricalView eview_;
  std::shared_ptr<const RouteLookahead> lookahead_;
  /// Session-shared delay model for the per-apply STA hooks (null when
  /// !route.timing_driven).
  std::shared_ptr<const DelayModel> dmodel_;

  RoutingResult routing_;  ///< routing_.trees is the live tree store.
  /// Cached per-slot routed sink delays, parallel to pl_.nets /
  /// routing_.trees; an empty inner vector marks a stale entry.
  std::vector<std::vector<double>> sink_delays_;
  NetDelayScratch delay_scratch_;

  /// Frozen packing geometry (pack-time maps the Packing itself does not
  /// retain): netlist block -> BLE index, BLE index -> cluster, and the
  /// nets hard-wired inside a fused LUT+FF BLE (never editable).
  std::vector<std::size_t> block_ble_;
  std::vector<std::size_t> ble_cluster_;
  std::vector<char> ble_internal_net_;

  /// Per-apply scratch: blocks with pin edits, nets whose connectivity
  /// changed, packed blocks that moved, and the site occupancy map.
  std::vector<BlockId> touched_blocks_;
  std::vector<NetId> touched_nets_;
  std::vector<std::size_t> moved_blocks_;
  std::vector<std::size_t> site_occ_;

  bool cycle_ = false;
  bool had_cp_ = false;
  double cp_ = 0.0;
  std::size_t applies_ = 0;
};

}  // namespace nemfpga
