// PathFinder negotiated-congestion routing [McMurchie/Ebeling via VPR]:
// every net is repeatedly ripped up and re-routed by A* over the RR graph;
// nodes start out shareable and grow present- and history-congestion costs
// until every routing resource is used within capacity. This is the router
// the paper's flow runs (VPR 5.0) to determine channel width and net
// topologies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/lookahead.hpp"
#include "arch/rr_graph.hpp"
#include "place/place.hpp"

namespace nemfpga {

/// Routed tree of one net: directed RR edges from the source out to every
/// sink (parent-before-child order).
struct RouteTree {
  RrNodeId source = kNoRrNode;
  std::vector<std::pair<RrNodeId, RrNodeId>> edges;  ///< (from, to).
  std::vector<RrNodeId> sinks;                       ///< Reached SINK nodes.
};

/// Timing feedback for the timing-driven router. The router sits below
/// the timing layer in the library graph (nf_timing links nf_route), so
/// it talks to STA through this interface: the production implementation
/// is the incremental STA of src/timing/sta.hpp (make_incremental_sta);
/// src/verify/ has a naive full-recompute transcription for differential
/// testing. Lifecycle: route_all calls update() serially at the start of
/// every PathFinder iteration with the nets (re)routed in the previous
/// one; between updates every query method must be a pure const read —
/// worker threads call criticality() concurrently during batched routing.
/// A hook instance is stateful and serves exactly one route_all call.
class RouterTimingHook {
 public:
  virtual ~RouterTimingHook() = default;
  /// Per-RR-node delay [s] of entering each node (node_count entries,
  /// from the unified delay model — timing/delay_model.hpp).
  virtual const double* node_delay() const = 0;
  /// Seconds one unit of router base cost is worth in the blended cost
  /// (the units bridge between congestion cost and delay).
  virtual double sec_per_base() const = 0;
  /// Constants for the delay-annotated lookahead table.
  virtual DelayProfile delay_profile() const = 0;
  /// Re-evaluate timing over `trees`. `dirty` lists the nets (re)routed
  /// since the previous update (their trees changed; every other tree
  /// must be unchanged). iteration 1 precedes any routing: seed the
  /// criticalities from the placement estimate instead.
  virtual void update(const RrGraphView& g,
                      const std::vector<RouteTree>& trees,
                      const std::vector<std::size_t>& dirty,
                      std::size_t iteration) = 0;
  /// Criticality in [0, max_criticality] of the connection from `net`'s
  /// driver to its sink_slot-th sink block (PlacedNet::sinks order).
  virtual double criticality(std::size_t net,
                             std::size_t sink_slot) const = 0;
  virtual double critical_path() const = 0;  ///< [s] after last update.
  virtual double worst_slack() const = 0;    ///< [s] over connections.
  virtual std::uint64_t net_evals() const = 0;      ///< Net delay evals.
  virtual std::uint64_t block_updates() const = 0;  ///< Block recomputes.
};

struct RouteOptions {
  std::size_t max_iterations = 160;
  double first_iter_pres_fac = 0.5;
  double pres_fac_mult = 1.3;
  double pres_fac_max = 1000.0;  ///< Cap so history can still break ties.
  /// Starting present-congestion factor for *seeded* sessions
  /// (route_incremental) only. A from-scratch run wants the classic
  /// near-free first iteration so nets discover their preferred wires
  /// before negotiation begins; a seeded session already holds a
  /// congestion-free routing, and rerouting the handful of cleared nets
  /// congestion-blind tramples the kept trees and drags them into
  /// negotiation for the next ~10 iterations of pres_fac growth.
  /// Starting stiff makes cleared nets respect live occupancy from
  /// their first search. Capped by pres_fac_max.
  double seeded_pres_fac = 8.0;
  double history_fac = 1.0;
  double astar_fac = 1.1;     ///< Legacy Manhattan-heuristic weight (used
                              ///< only when astar_factor == 0).
  /// Weight on the precomputed geometric lookahead table (A* directed
  /// search, src/arch/lookahead.hpp). 1.0 keeps the heuristic admissible
  /// (every sink still found at Dijkstra-optimal cost — provable via
  /// verify_lookahead); larger values search greedier (weighted A*
  /// without re-expansion, the usual VPR trade). The default 2.0 expands
  /// 3.7x fewer nodes than an undirected Dijkstra over the identical
  /// searches on pdc (route_perf --verify-la) with no loss in minimum
  /// channel width (EXPERIMENTS.md, "Router performance"). 0 disables
  /// the table entirely and restores the legacy Manhattan heuristic,
  /// which together with net_parallel=false reproduces the pre-lookahead
  /// router bit-for-bit (pinned by legacy golden fixtures).
  double astar_factor = 2.0;
  /// Prebuilt lookahead table to use instead of building one inside
  /// route_all (the table depends on the fabric and cost profile, not on
  /// W, so find_min_channel_width builds it once and shares it across
  /// every width probe). Null means build on demand when
  /// astar_factor > 0; ignored when astar_factor == 0.
  std::shared_ptr<const RouteLookahead> lookahead;
  /// Accounting metadata for a prebuilt `lookahead` (ignored otherwise):
  /// the wall seconds the caller spent building it specifically for this
  /// route — 0 when the table was reused (Wmin probes sharing one table,
  /// artifact-cache hits). route_all copies it into
  /// RouteCounters::t_lookahead_build_s so per-route build accounting
  /// stays honest whether the table was built inside or outside the call.
  double lookahead_build_s = 0.0;
  /// The prebuilt `lookahead` came out of the content-addressed artifact
  /// cache (src/service/artifact_cache.hpp) rather than being built for
  /// this flow; surfaces as RouteCounters::lookahead_cached so cross-job
  /// accounting can distinguish "built here" from "cache hit".
  bool lookahead_from_cache = false;
  std::size_t bb_margin = 3;  ///< Net bounding-box routing constraint.
  /// Deterministic net-level parallelism: partition each iteration's
  /// rip-up set into bounding-box-disjoint batches, route batch members
  /// concurrently on ThreadPool::current() against an immutable cost
  /// snapshot, and commit/replay serially in net-index order. The batch
  /// schedule depends only on (graph, placement, options), never on the
  /// thread count, so trees, iteration counts and checksums stay
  /// bit-identical at any NF_THREADS setting.
  bool net_parallel = true;
  /// Reroute only congestion-touching nets (fast) vs all nets (classic).
  bool incremental = true;
  /// Rip up only the congested branches of a rerouted net and rebuild the
  /// search from the surviving partial tree, instead of discarding the
  /// whole tree. Changes the routing result (the seed tree biases the
  /// search), so it is off by default — the default configuration is
  /// bit-compatible with the classic full rip-up router and pinned by
  /// golden tests.
  bool prune_ripup = false;
  /// Test hook: every k-th member of every parallel batch is treated as
  /// conflicted and re-routed through the serial replay path, exercising
  /// the conflict-resolution machinery on demand. 0 = off.
  std::size_t debug_replay_every = 0;
  /// Timing-driven mode (classic VPR blend): entering a node costs
  /// crit * node_delay + (1 - crit) * congestion_cost * sec_per_base,
  /// with per-connection criticalities fed back by timing_hook's
  /// incremental STA each iteration. Off by default — the default
  /// congestion-only mode stays bit-identical to the golden fixtures.
  /// Requires timing_hook; without one the router runs congestion-only.
  bool timing_driven = false;
  /// Criticality sharpening exponent (VPR's criticality_exp): consumed
  /// by the timing hook when shaping slacks into criticalities.
  double criticality_exp = 1.0;
  /// Criticality clamp < 1 so the congestion term never fully vanishes
  /// and PathFinder negotiation keeps working on critical connections.
  double max_criticality = 0.99;
  /// Timing feedback provider (borrowed, not owned; stateful — one
  /// route_all call per instance). run_flow wires the incremental STA
  /// from src/timing/sta.hpp; find_min_channel_width force-clears it so
  /// Wmin probes stay congestion-only (channel width is a routability
  /// question, and iso-delay comparisons require identical Wmin).
  RouterTimingHook* timing_hook = nullptr;
  /// Test hook: precede every A* sink search with a zero-heuristic
  /// Dijkstra on the identical cost state and count sinks the directed
  /// search found at worse cost (RouteCounters::lookahead_suboptimal —
  /// stays 0 while astar_factor <= 1, the admissibility proof). Expensive;
  /// off outside tests.
  bool verify_lookahead = false;
  /// Which RR graph representation the graph-building entry points
  /// (find_min_channel_width's probes, run_flow, route_perf) construct.
  /// route_all itself is backend-agnostic — it consumes an RrGraphView —
  /// and both backends are node/edge-order identical by construction, so
  /// the choice never changes the routing, only memory and per-edge cost.
  RrBackend rr_backend = kDefaultRrBackend;
  /// Geometric region-partitioned scheduling (requires net_parallel):
  /// each iteration splits the grid into partition_size-square tile
  /// regions; nets whose conservative routing windows (dilated by the
  /// maximum wire reach) fall inside one region route concurrently per
  /// region — each partition runs its nets serially in net order against
  /// live occupancy, touching only region-interior RR nodes, so the
  /// parallel phase is state-identical to routing the partitions one
  /// after another. Boundary nets, window-escapers and nets that ever
  /// needed an unbounded retry route serially afterwards in ascending net
  /// order. The partition, the classification and both phase orders
  /// depend only on (graph, placement, options, iteration) — never on
  /// the thread count — so results stay bit-identical at any NF_THREADS.
  /// Off by default: it changes the (still deterministic) routing
  /// relative to the batched scheduler, which the golden fixtures pin.
  bool partition_parallel = false;
  /// Region edge length in tiles for partition_parallel. 0 picks a
  /// fabric-dependent default (about a 4x4 region grid). Values are
  /// clamped so a region is never smaller than one tile.
  std::size_t partition_size = 0;
  /// Upper bound on the channel-width grow phase: find_min_channel_width
  /// reports infeasible (ChannelWidthResult::feasible == false) instead
  /// of probing beyond this.
  std::size_t max_channel_width = 1024;
};

/// Always-on router work counters (see bench/route_perf.cpp and the
/// "Router performance" section of EXPERIMENTS.md). Everything except the
/// wall times and scratch_grows is bit-deterministic for a given (graph,
/// placement, options) at any thread count.
struct RouteCounters {
  std::uint64_t heap_pushes = 0;    ///< Priority-queue insertions.
  std::uint64_t heap_pops = 0;      ///< Priority-queue removals.
  std::uint64_t nodes_expanded = 0; ///< Pops surviving the stale check.
  std::uint64_t sink_searches = 0;  ///< A* runs (excl. shared-sink hits).
  std::uint64_t nets_routed = 0;    ///< route_net calls, all iterations.
  std::uint64_t nets_rerouted = 0;  ///< Nets ripped up after iteration 1.
  /// Nets whose routing grew any scratch buffer. Stays O(log net size)
  /// for the whole run — the steady-state per-net search loop performs
  /// zero heap allocations (asserted by tests/test_route_golden.cpp).
  /// Each worker thread owns a scratch arena that warms up separately, so
  /// this counter (alone) varies with the thread count in net_parallel
  /// mode; it is excluded from the bit-determinism contract.
  std::uint64_t scratch_grows = 0;
  /// Heuristic evaluations served from the geometric lookahead table
  /// (0 when astar_factor == 0).
  std::uint64_t lookahead_hits = 0;
  /// Parallel batch dispatches (0 when net_parallel == false).
  std::uint64_t batches = 0;
  /// Batch members re-routed serially after a conflict, a bounding-box
  /// escape, or the debug_replay_every hook.
  std::uint64_t conflict_replays = 0;
  /// Sinks an A* search found at worse cost than the Dijkstra reference
  /// (only counted under RouteOptions::verify_lookahead; 0 proves the
  /// lookahead admissible on this run).
  std::uint64_t lookahead_suboptimal = 0;
  /// verify_lookahead only: total expansions the zero-heuristic reference
  /// Dijkstras performed vs what the directed searches performed on the
  /// identical cost states — the apples-to-apples measure of the table's
  /// pruning power (route_perf --verify-la prints the ratio). The
  /// reference work is excluded from nodes_expanded/heap_* above.
  std::uint64_t verify_dijkstra_expanded = 0;
  std::uint64_t verify_astar_expanded = 0;
  /// Timing-driven mode only: net delay evaluations the incremental STA
  /// performed (== total dirty-net count over all updates; a full
  /// recompute per iteration would cost nets * iterations) and STA block
  /// recomputes across the levelized forward/backward passes.
  std::uint64_t sta_net_evals = 0;
  std::uint64_t sta_block_updates = 0;
  /// 1 when the lookahead table was served by the content-addressed
  /// artifact cache instead of built for this route (set from
  /// RouteOptions::lookahead_from_cache). Distinguishes a genuine cache
  /// hit (t_lookahead_build_s == 0 because someone else paid) from a
  /// degenerate build (t_lookahead_build_s ~ 0 because the fabric is
  /// tiny) in cross-job accounting.
  std::uint64_t lookahead_cached = 0;
  double t_search_s = 0.0;   ///< Wall time in the per-net search loop.
  double t_bookkeep_s = 0.0; ///< Cost-cache rebuild + history updates.
  /// Lookahead table construction charged to this route: the in-call
  /// build when route_all built the table itself, or the caller-reported
  /// RouteOptions::lookahead_build_s for a prebuilt table (0 on reuse).
  double t_lookahead_build_s = 0.0;
  double t_sta_s = 0.0;      ///< Incremental STA updates (timing mode).
};

struct RoutingResult {
  bool success = false;
  std::size_t iterations = 0;
  std::vector<RouteTree> trees;  ///< Parallel to Placement::nets.
  std::size_t overused_nodes = 0;
  RouteCounters counters;
  /// Per-net "this session (re)routed it" flag, parallel to trees: 1 if
  /// any iteration committed a new tree for the net, 0 if the tree is
  /// untouched (possible only under route_incremental, whose kept seed
  /// trees survive unless congestion reaches them). Downstream delay
  /// caches are invalidated exactly for the flagged nets.
  std::vector<std::uint8_t> routed_nets;

  /// Wire statistics for the power/area models.
  std::size_t wire_segments_used = 0;
  double total_wire_tiles = 0.0;

  /// Timing-driven mode only (0 otherwise): post-route critical path and
  /// worst connection slack from the timing hook's final update over the
  /// successful trees.
  double critical_path_s = 0.0;
  double worst_slack_s = 0.0;
};

/// Route all placed nets over either RR backend (pass an RrGraph or an
/// ImplicitRrGraph; both convert to the view). Returns success=false if
/// congestion persists after max_iterations (caller widens W and retries).
RoutingResult route_all(const RrGraphView& g, const Placement& pl,
                        const RouteOptions& opt = {});

/// Seeded (ECO) routing: `base_trees` is a live legal routing aligned
/// with pl.nets in which the caller cleared the trees of invalidated
/// nets (RouteTree{} — source == kNoRrNode). Their occupancy is charged
/// up front, the first iteration routes only the cleared nets against
/// that live state, and later iterations run the normal incremental
/// negotiation, so kept trees are re-routed only if congestion reaches
/// them (opt.incremental is forced on). Counters and history restart
/// fresh — a seeded call is a new negotiation session over old wires,
/// not a continuation of the one that built them — but the session
/// starts at opt.seeded_pres_fac rather than first_iter_pres_fac, so
/// the cleared nets route around the live occupancy instead of through
/// it. Throws if base_trees.size() != pl.nets.size().
RoutingResult route_incremental(const RrGraphView& g, const Placement& pl,
                                std::vector<RouteTree> base_trees,
                                const RouteOptions& opt = {});

/// Validation: every tree is connected, within capacity, and reaches every
/// sink of its net. Throws std::logic_error on violation.
void check_routing(const RrGraphView& g, const Placement& pl,
                   const RoutingResult& r);

/// Search the minimum channel width Wmin for which routing succeeds, then
/// report W = ceil(1.2 * Wmin) rounded up to even ("low-stress routing"
/// [Betz 99b], Sec 3.3 of the paper). Candidate widths are probed as
/// fixed 4-way speculative batches on ThreadPool::current() (each probe
/// owns its RR graph + router state); the probe schedule is independent of
/// the thread count, so Wmin is reproducible at any NF_THREADS setting.
struct ChannelWidthResult {
  std::size_t w_min = 0;
  std::size_t w_low_stress = 0;  ///< 1.2 x Wmin, even.
  /// False when the grow phase hit RouteOptions::max_channel_width without
  /// ever routing: the design is unroutable at any modeled width. w_min
  /// and w_low_stress are 0 then, and w_cap records the cap that was hit —
  /// callers must check this instead of consuming a garbage width.
  bool feasible = true;
  std::size_t w_cap = 0;
};

ChannelWidthResult find_min_channel_width(const ArchParams& arch,
                                          const Placement& pl,
                                          std::size_t w_hint = 32,
                                          const RouteOptions& opt = {});

}  // namespace nemfpga
