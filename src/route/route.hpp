// PathFinder negotiated-congestion routing [McMurchie/Ebeling via VPR]:
// every net is repeatedly ripped up and re-routed by A* over the RR graph;
// nodes start out shareable and grow present- and history-congestion costs
// until every routing resource is used within capacity. This is the router
// the paper's flow runs (VPR 5.0) to determine channel width and net
// topologies.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/rr_graph.hpp"
#include "place/place.hpp"

namespace nemfpga {

/// Routed tree of one net: directed RR edges from the source out to every
/// sink (parent-before-child order).
struct RouteTree {
  RrNodeId source = kNoRrNode;
  std::vector<std::pair<RrNodeId, RrNodeId>> edges;  ///< (from, to).
  std::vector<RrNodeId> sinks;                       ///< Reached SINK nodes.
};

struct RouteOptions {
  std::size_t max_iterations = 160;
  double first_iter_pres_fac = 0.5;
  double pres_fac_mult = 1.3;
  double pres_fac_max = 1000.0;  ///< Cap so history can still break ties.
  double history_fac = 1.0;
  double astar_fac = 1.1;     ///< Heuristic weight (>1 = faster, greedier).
  std::size_t bb_margin = 3;  ///< Net bounding-box routing constraint.
  /// Reroute only congestion-touching nets (fast) vs all nets (classic).
  bool incremental = true;
  /// Rip up only the congested branches of a rerouted net and rebuild the
  /// search from the surviving partial tree, instead of discarding the
  /// whole tree. Changes the routing result (the seed tree biases the
  /// search), so it is off by default — the default configuration is
  /// bit-compatible with the classic full rip-up router and pinned by
  /// golden tests.
  bool prune_ripup = false;
};

/// Always-on router work counters (see bench/route_perf.cpp and the
/// "Router performance" section of EXPERIMENTS.md). Everything except the
/// wall times is bit-deterministic for a given (graph, placement,
/// options) at any thread count.
struct RouteCounters {
  std::uint64_t heap_pushes = 0;    ///< Priority-queue insertions.
  std::uint64_t heap_pops = 0;      ///< Priority-queue removals.
  std::uint64_t nodes_expanded = 0; ///< Pops surviving the stale check.
  std::uint64_t sink_searches = 0;  ///< A* runs (excl. shared-sink hits).
  std::uint64_t nets_routed = 0;    ///< route_net calls, all iterations.
  std::uint64_t nets_rerouted = 0;  ///< route_net calls after iteration 1.
  /// Nets whose routing grew any scratch buffer. Stays O(log net size)
  /// for the whole run — the steady-state per-net search loop performs
  /// zero heap allocations (asserted by tests/test_route_golden.cpp).
  std::uint64_t scratch_grows = 0;
  double t_search_s = 0.0;   ///< Wall time in the per-net search loop.
  double t_bookkeep_s = 0.0; ///< Cost-cache rebuild + history updates.
};

struct RoutingResult {
  bool success = false;
  std::size_t iterations = 0;
  std::vector<RouteTree> trees;  ///< Parallel to Placement::nets.
  std::size_t overused_nodes = 0;
  RouteCounters counters;

  /// Wire statistics for the power/area models.
  std::size_t wire_segments_used = 0;
  double total_wire_tiles = 0.0;
};

/// Route all placed nets. Returns success=false if congestion persists
/// after max_iterations (caller widens W and retries).
RoutingResult route_all(const RrGraph& g, const Placement& pl,
                        const RouteOptions& opt = {});

/// Validation: every tree is connected, within capacity, and reaches every
/// sink of its net. Throws std::logic_error on violation.
void check_routing(const RrGraph& g, const Placement& pl,
                   const RoutingResult& r);

/// Search the minimum channel width Wmin for which routing succeeds, then
/// report W = ceil(1.2 * Wmin) rounded up to even ("low-stress routing"
/// [Betz 99b], Sec 3.3 of the paper). Candidate widths are probed as
/// fixed 4-way speculative batches on ThreadPool::current() (each probe
/// owns its RrGraph + router state); the probe schedule is independent of
/// the thread count, so Wmin is reproducible at any NF_THREADS setting.
struct ChannelWidthResult {
  std::size_t w_min = 0;
  std::size_t w_low_stress = 0;  ///< 1.2 x Wmin, even.
};

ChannelWidthResult find_min_channel_width(const ArchParams& arch,
                                          const Placement& pl,
                                          std::size_t w_hint = 32,
                                          const RouteOptions& opt = {});

}  // namespace nemfpga
