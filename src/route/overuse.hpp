// Incremental occupancy / overuse bookkeeping for the PathFinder router.
// The classic implementation rescans every RR node each iteration to count
// overuse and bump history costs; this tracker keeps an exact running
// count and a lazily-compacted list of the currently-overused nodes,
// updated O(1) on every occupancy change, so those passes touch only the
// congested fraction of the graph. Exposed as its own header so the
// consistency invariants can be unit-tested directly
// (tests/test_route_golden.cpp).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "arch/rr_graph.hpp"

namespace nemfpga {

class OveruseTracker {
 public:
  explicit OveruseTracker(const RrGraphView& g) {
    std::vector<std::uint16_t> cap(g.node_count());
    for (RrNodeId i = 0; i < g.node_count(); ++i) cap[i] = g.node(i).capacity;
    init(std::move(cap));
  }

  /// Capacity-vector constructor for unit tests.
  explicit OveruseTracker(std::vector<std::uint16_t> capacities) {
    init(std::move(capacities));
  }

  /// Deferred-side-effect occupancy changes for the partition-parallel
  /// router. Workers own disjoint RR-node-id sets, so the per-id state
  /// (occ_, over_) can be written directly without synchronization; the
  /// two pieces of *shared* state — the overuse count and the lazy list —
  /// are recorded here instead and folded in by absorb() at the join
  /// point, in deterministic partition order.
  struct DeferredOps {
    std::vector<RrNodeId> newly_over;  ///< Became overused (list candidates).
    std::ptrdiff_t n_over_delta = 0;
  };

  void inc_deferred(RrNodeId id, DeferredOps& ops) {
    ++occ_[id];
    if (!over_[id] && occ_[id] > cap_[id]) {
      over_[id] = 1;
      ++ops.n_over_delta;
      ops.newly_over.push_back(id);
    }
  }

  void dec_deferred(RrNodeId id, DeferredOps& ops) {
    --occ_[id];
    if (over_[id] && occ_[id] <= cap_[id]) {
      over_[id] = 0;
      --ops.n_over_delta;
    }
  }

  /// Fold a worker's deferred shared-state changes in. The in_list_ check
  /// happens here, exactly as inc() would have done it (lazily-dropped
  /// entries still flagged in_list_ suppress duplicates the same way).
  void absorb(DeferredOps& ops) {
    n_over_ = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(n_over_) + ops.n_over_delta);
    for (const RrNodeId id : ops.newly_over) {
      if (!in_list_[id]) {
        in_list_[id] = 1;
        list_.push_back(id);
      }
    }
    ops.newly_over.clear();
    ops.n_over_delta = 0;
  }

  std::size_t size() const { return occ_.size(); }
  std::uint16_t occ(RrNodeId id) const { return occ_[id]; }
  std::uint16_t capacity(RrNodeId id) const { return cap_[id]; }
  bool overused(RrNodeId id) const { return over_[id] != 0; }

  /// Exact number of currently-overused nodes; O(1).
  std::size_t overused_count() const { return n_over_; }

  /// Raw views for the router's relaxation loop.
  const std::uint16_t* occ_data() const { return occ_.data(); }
  const std::uint16_t* cap_data() const { return cap_.data(); }

  void inc(RrNodeId id) {
    ++occ_[id];
    if (!over_[id] && occ_[id] > cap_[id]) {
      over_[id] = 1;
      ++n_over_;
      if (!in_list_[id]) {
        in_list_[id] = 1;
        list_.push_back(id);
      }
    }
  }

  void dec(RrNodeId id) {
    --occ_[id];
    if (over_[id] && occ_[id] <= cap_[id]) {
      over_[id] = 0;
      --n_over_;
      // The list entry is dropped lazily at the next for_each_overused.
    }
  }

  /// Visit every currently-overused node exactly once as f(id, overuse),
  /// compacting the lazy list in place. Visit order is the order nodes
  /// first became overused (deterministic for a given operation sequence);
  /// callers must not depend on it beyond that.
  template <typename F>
  void for_each_overused(F&& f) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < list_.size(); ++r) {
      const RrNodeId id = list_[r];
      if (over_[id]) {
        f(id, static_cast<int>(occ_[id]) - static_cast<int>(cap_[id]));
        list_[w++] = id;
      } else {
        in_list_[id] = 0;
      }
    }
    list_.resize(w);
  }

  /// O(V) ground truth, for tests: does the incremental state agree with
  /// a full recount?
  bool consistent() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < occ_.size(); ++i) {
      const bool over = occ_[i] > cap_[i];
      if (over != (over_[i] != 0)) return false;
      if (over) ++n;
      if (over && !in_list_[i]) return false;  // overused ⇒ listed
    }
    return n == n_over_;
  }

 private:
  void init(std::vector<std::uint16_t> capacities) {
    cap_ = std::move(capacities);
    occ_.assign(cap_.size(), 0);
    over_.assign(cap_.size(), 0);
    in_list_.assign(cap_.size(), 0);
    list_.reserve(64);
  }

  std::vector<std::uint16_t> occ_;
  std::vector<std::uint16_t> cap_;
  std::vector<std::uint8_t> over_;     ///< occ > cap, maintained exactly.
  std::vector<std::uint8_t> in_list_;  ///< id present in list_ (lazy).
  std::vector<RrNodeId> list_;         ///< Superset of overused nodes.
  std::size_t n_over_ = 0;
};

}  // namespace nemfpga
