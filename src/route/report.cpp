#include "route/report.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <stdexcept>
#include <unordered_set>

#include "util/stats.hpp"

namespace nemfpga {

RouteReport summarize_routing(const RrGraphView& g, const Placement& pl,
                              const RoutingResult& r) {
  if (!r.success) throw std::invalid_argument("summarize_routing: unrouted");
  RouteReport rep;
  rep.nets = pl.nets.size();
  rep.wirelength_histogram.assign(16, 0);
  // A successful timing-driven route always carries a positive critical
  // path from the final STA update; congestion-only results leave it 0.
  rep.timing_driven = r.critical_path_s > 0.0;
  rep.critical_path_s = r.critical_path_s;
  rep.worst_slack_s = r.worst_slack_s;
  rep.sta_net_evals = r.counters.sta_net_evals;
  rep.sta_block_updates = r.counters.sta_block_updates;

  // Per-position channel occupancy. Key: channel id * span + position.
  // Capacity per position is W; count used wire-tiles there.
  const std::size_t w = g.arch().W;
  std::unordered_map<std::size_t, std::size_t> chan_use;
  auto chan_key = [&](const RrNode& n, std::size_t pos) {
    // CHANX(j): key block 0; CHANY(i): key block 1.
    const bool horiz = n.type == RrType::kChanX;
    const std::size_t chan = horiz ? n.y_lo : n.x_lo;
    return ((horiz ? 0u : 1u) * (g.ny() + 1) + chan) * (g.nx() + 2) + pos;
  };

  std::unordered_set<RrNodeId> seen_global;
  std::size_t max_wl = 0;
  double sum_wl = 0.0;
  for (std::size_t i = 0; i < r.trees.size(); ++i) {
    std::size_t net_wl = 0;
    std::unordered_set<RrNodeId> seen_net;
    for (const auto& [from, to] : r.trees[i].edges) {
      (void)from;
      const RrNode& n = g.node(to);
      if (n.type != RrType::kChanX && n.type != RrType::kChanY) continue;
      if (!seen_net.insert(to).second) continue;
      net_wl += n.length;
      if (seen_global.insert(to).second) {
        ++rep.total_segments;
        rep.total_wire_tiles += n.length;
        const bool horiz = n.type == RrType::kChanX;
        const std::size_t lo = horiz ? n.x_lo : n.y_lo;
        const std::size_t hi = horiz ? n.x_hi : n.y_hi;
        for (std::size_t p = lo; p <= hi; ++p) ++chan_use[chan_key(n, p)];
      }
    }
    sum_wl += static_cast<double>(net_wl);
    max_wl = std::max(max_wl, net_wl);
    const std::size_t bin = std::min<std::size_t>(net_wl / 2, 15);
    ++rep.wirelength_histogram[bin];
  }
  rep.mean_net_wirelength =
      rep.nets ? sum_wl / static_cast<double>(rep.nets) : 0.0;
  rep.max_net_wirelength = max_wl;

  if (!chan_use.empty()) {
    std::vector<double> occ;
    occ.reserve(chan_use.size());
    for (const auto& [key, used] : chan_use) {
      (void)key;
      occ.push_back(static_cast<double>(used) / static_cast<double>(w));
    }
    rep.occupancy_min = *std::min_element(occ.begin(), occ.end());
    rep.occupancy_max = *std::max_element(occ.begin(), occ.end());
    rep.occupancy_median = percentile(occ, 50.0);
  }
  return rep;
}

std::string RouteReport::to_string() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "routed nets          : " << nets << "\n";
  os << "wire segments used   : " << total_segments << " ("
     << total_wire_tiles << " tile-lengths)\n";
  os << "mean net wirelength  : " << mean_net_wirelength << " tiles (max "
     << max_net_wirelength << ")\n";
  os << "channel occupancy    : min " << 100.0 * occupancy_min << "%, median "
     << 100.0 * occupancy_median << "%, max " << 100.0 * occupancy_max
     << "%\n";
  os << "net wirelength histogram (2-tile bins):";
  for (std::size_t b : wirelength_histogram) os << ' ' << b;
  os << "\n";
  if (timing_driven) {
    std::ostringstream ts;
    ts.setf(std::ios::fixed);
    ts.precision(3);
    ts << "critical path        : " << critical_path_s * 1e9 << " ns\n";
    ts << "worst conn. slack    : " << worst_slack_s * 1e12 << " ps\n";
    ts << "incremental STA      : " << sta_net_evals << " net delay evals, "
       << sta_block_updates << " block updates\n";
    os << ts.str();
  }
  return os.str();
}

}  // namespace nemfpga
