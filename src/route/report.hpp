// Routing-quality reports: per-net wirelength statistics and channel
// occupancy maps. VPR prints the same summaries after routing; downstream
// users read them to judge mapping quality and channel-width headroom.
#pragma once

#include <cstdint>
#include <string>

#include "route/route.hpp"

namespace nemfpga {

struct RouteReport {
  std::size_t nets = 0;
  std::size_t total_segments = 0;       ///< Wire segments used (unique).
  double total_wire_tiles = 0.0;        ///< Sum of segment lengths.
  double mean_net_wirelength = 0.0;     ///< Tiles per net.
  std::size_t max_net_wirelength = 0;
  /// Channel occupancy: fraction of wire capacity used, per channel
  /// quartile (min / median / max over all channel positions).
  double occupancy_min = 0.0;
  double occupancy_median = 0.0;
  double occupancy_max = 0.0;
  /// Net wirelength histogram (tiles): bins [0,2) [2,4) ... [30,inf).
  std::vector<std::size_t> wirelength_histogram;
  /// Timing section, present only when the routing was timing-driven
  /// (route_all annotates the result from its final STA update).
  bool timing_driven = false;
  double critical_path_s = 0.0;        ///< [s] post-route critical path.
  double worst_slack_s = 0.0;          ///< [s] worst connection slack.
  std::uint64_t sta_net_evals = 0;     ///< Net delay re-evaluations.
  std::uint64_t sta_block_updates = 0; ///< Levelized block visits.

  std::string to_string() const;
};

/// Summarize a successful routing.
RouteReport summarize_routing(const RrGraphView& g, const Placement& pl,
                              const RoutingResult& r);

}  // namespace nemfpga
